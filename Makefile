GO ?= go

.PHONY: all build vet test race race-soak bench bench-quick allocs profile fuzz chaos chaos-repl chaos-cluster contract matrix stream-conformance ci artifacts benchreport clean

# Committed shard-scaling floor for `make bench-quick`: the 4-shard
# batching win measured for BENCH_6 sits at ~4x on the reference box;
# 3.0 leaves noise headroom while still catching any real regression
# of the lock-free ingest path.
MIN_SPEEDUP4 ?= 3.0

# Committed streaming detection-latency floor for `make bench-quick`:
# the online path's worst detected-attack latency in the deterministic
# zoo comparison sits at ~8.7 rating-days; 12 leaves headroom while
# still failing if streaming ever slips past it on an attack it
# catches, or loses an attack the batch path catches.
MAX_STREAM_LATENCY ?= 12

# Per-target budget for the fuzz sweep; go-fuzz corpora live in
# testdata/fuzz and regressions found there replay in plain `go test`.
FUZZTIME ?= 10s

# Seeds per chaos sweep; each seed drives an independent
# fault-injection schedule (short writes, sync errors, crashes).
CHAOS_SEEDS ?= 64

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-soak replays the seeded concurrent workloads under the race
# detector with fresh schedules (-count=1): router-fed sharded engines
# cross-checked against the single-threaded oracle, shard-count
# invariance, and the sharded daemon's journal round trips.
race-soak:
	$(GO) test -race -count=1 -run 'Soak|Invariance|Router|ShardDaemon|ShardJournal' \
		./internal/shard/ ./cmd/ratingd/

bench:
	$(GO) test -bench=. -benchmem .

# bench-quick is the ingest-perf smoke: just the shard-scaling section
# of the benchreport, gated on the committed speedup floor. It fails —
# and so fails `make ci` — if the lock-free ingest path's 4-shard win
# regresses below MIN_SPEEDUP4.
bench-quick:
	$(GO) run ./cmd/benchreport -run tab1 -walrecords 0 -telemetryreps 0 \
		-servingratings 0 -replratings 0 -detection "" -streamratings 0 \
		-clusterratings 0 \
		-minspeedup4 $(MIN_SPEEDUP4) -maxstreamlatency $(MAX_STREAM_LATENCY) \
		-out /dev/null

# allocs runs the steady-state allocation pins (testing.AllocsPerRun),
# which only exist in non-race builds — the race runtime's bookkeeping
# would drown the counts — so ci needs this plain pass on top of its
# race pass.
allocs:
	$(GO) test -count=1 -run 'Allocs' ./internal/shard/

# profile writes CPU and heap profiles of the full benchreport run;
# inspect with `go tool pprof cpu.prof` / `go tool pprof mem.prof`.
profile:
	$(GO) run ./cmd/benchreport -out /dev/null -cpuprofile cpu.prof -memprofile mem.prof

# fuzz runs each fuzz target for FUZZTIME: WAL frame parsing and record
# decoding (corrupt bytes must error, never panic), the server's
# rating-batch JSON decoder (hostile bodies must map to 4xx), the
# NDJSON stream framing (hostile streams must keep the in-band error
# protocol intact), and the stream fast-path parser (differential
# against the strict decoder, bit-identical or bail).
fuzz:
	$(GO) test -fuzz FuzzParseFrames -fuzztime $(FUZZTIME) ./internal/wal/
	$(GO) test -fuzz FuzzDecodeRecord -fuzztime $(FUZZTIME) ./internal/wal/
	$(GO) test -fuzz FuzzSubmitRatings -fuzztime $(FUZZTIME) ./internal/server/
	$(GO) test -fuzz FuzzStreamNDJSON -fuzztime $(FUZZTIME) ./internal/server/
	$(GO) test -fuzz FuzzParseRatingLine -fuzztime $(FUZZTIME) ./internal/server/
	$(GO) test -fuzz FuzzShardIndex -fuzztime $(FUZZTIME) ./internal/shard/
	$(GO) test -fuzz FuzzCollusionGraph -fuzztime $(FUZZTIME) ./internal/collusion/

# ci is the gate every change must pass: static checks, a full build,
# the test suite under the race detector, the non-race allocation
# pins, a fresh-schedule soak of the sharded engine, a one-shot smoke
# run of the tab1 macro benchmark (exercises the parallel Monte-Carlo
# path end to end without benchmark-grade runtimes), the chaos sweep,
# the detector×attack matrix grid, and the shard-scaling floor check.
ci:
	$(MAKE) vet
	$(GO) build ./...
	$(GO) test -race ./...
	$(MAKE) allocs
	$(MAKE) race-soak
	$(MAKE) stream-conformance
	$(MAKE) contract
	$(GO) test -run=NONE -bench=BenchmarkTab1 -benchtime=1x .
	$(MAKE) chaos
	$(MAKE) chaos-repl
	$(MAKE) chaos-cluster
	$(MAKE) matrix
	$(MAKE) bench-quick

# matrix prints the detector×attack benchmark grid: every detector
# stack (AR charging, collusion graph, iterative filtering, combined)
# against every adversary-zoo strategy, scored by AUC, detection rate,
# detection latency, and aggregation error. The grid is bit-identical
# at any -workers count; the checked-in regression pin is
# testdata/golden_matrix.txt (regenerate deliberately with
# `go test -run TestGoldenMatrix -update .`).
matrix:
	$(GO) run ./cmd/experiments -exp matrix -mode quick

# stream-conformance pins the streaming detection path to the batch
# oracle under the race detector: byte-identical fingerprints across
# shard counts with the aux detectors live, the incremental collusion
# accumulator's property equivalence with batch Detect, and the
# mid-window crash — recovery must replay to the exact suspicion and
# trust state of a run that never died.
stream-conformance:
	$(GO) test -race -count=1 -run 'TestStream' ./internal/shard/
	$(GO) test -race -count=1 -run 'TestAccumulator' ./internal/collusion/
	$(GO) test -race -count=1 -run 'TestStreamChaosMidWindowCrash' ./cmd/ratingd/

# contract replays the checked-in wire-contract fixtures: every v1
# endpoint's golden response, every error code in the catalogue, and
# the envelope validity of each non-2xx body. Regenerate intentional
# contract changes with:  go test ./internal/server -run TestWireContract -update
contract:
	$(GO) test -count=1 -run 'TestWireContract|TestContractFixtures' ./internal/server/

# chaos runs the fault-injection and crash-recovery suites under the
# race detector with a dense seed sweep: every-boundary crash replay,
# torn-tail truncation, the seeded failpoint schedules in internal/wal
# and internal/faultinject, and the admission-control overload soak
# (4x capacity; sheds must be typed 429s and the server must drain
# back to baseline).
chaos:
	CHAOS_SEEDS=$(CHAOS_SEEDS) $(GO) test -race -count=1 \
		-run 'Chaos|Crash|Torn|Recover|Fault|Inject|Durab|Overload' \
		./internal/wal/ ./internal/faultinject/ ./cmd/ratingd/ ./internal/server/

# chaos-repl soaks the replication path under the race detector:
# primary killed mid-batch (promotion must lose zero acked records),
# follower killed mid-snapshot-bootstrap (partial snapshot must never
# touch the engine; the re-bootstrap must converge), a flapping stream
# proxy (>= 20 severs/garbles; every flap must re-converge to lag 0
# with resyncs observed), plus the daemon-level failover wiring
# (replica gate, manual and primary-death promotion).
chaos-repl:
	$(GO) test -race -count=1 -run 'TestChaosRepl|TestTwoNodeConformance|TestFollowerBootstrap' ./internal/repl/
	$(GO) test -race -count=1 -run 'TestDaemonFollower|TestDaemonAutoPromote' ./cmd/ratingd/

# chaos-cluster soaks the partitioned serving tier under the race
# detector: the N-node byte-conformance matrix against the
# single-system oracle, the wrong_node/stale_epoch contract paths, and
# the daemon-level node-kill soak — the dead keyspace range must shed
# with typed 503s, every acked write must survive the hard kill, and
# the restarted member must recover from its WAL and re-converge to
# the oracle's exact state.
chaos-cluster:
	$(GO) test -race -count=1 -run 'TestCluster|TestTable|TestEvenTable|TestOwner|TestDoc|TestWrongNode|TestStaleEpoch|TestRouter|TestSingleNodeCluster|TestMergedPagination|TestMemberRefuses' ./internal/cluster/
	$(GO) test -race -count=1 -run 'TestChaosCluster' ./cmd/ratingd/

artifacts:
	$(GO) run ./cmd/experiments -run all -mode full -csv artifacts/

benchreport:
	$(GO) run ./cmd/benchreport -out BENCH_10.json

clean:
	rm -rf artifacts/
