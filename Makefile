GO ?= go

.PHONY: all build test race bench ci artifacts benchreport clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# ci is the gate every change must pass: static checks, a full build,
# the test suite under the race detector, and a one-shot smoke run of
# the tab1 macro benchmark (exercises the parallel Monte-Carlo path
# end to end without benchmark-grade runtimes).
ci:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(GO) test -run=NONE -bench=BenchmarkTab1 -benchtime=1x .

artifacts:
	$(GO) run ./cmd/experiments -run all -mode full -csv artifacts/

benchreport:
	$(GO) run ./cmd/benchreport -out BENCH_1.json

clean:
	rm -rf artifacts/
