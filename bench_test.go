package repro_test

import (
	"runtime"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/experiments"
	"repro/internal/randx"
	"repro/internal/signal"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Every table and figure of the paper has a benchmark that regenerates
// it (Quick mode: shrunk Monte-Carlo counts, identical workload shape).
// `go test -bench=. -benchmem` therefore reruns the entire evaluation;
// cmd/experiments renders the same artifacts at full scale.

var benchResult experiments.Result

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, int64(i)+1, experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		benchResult = res
	}
}

// benchExperimentWorkers measures the same experiment with the
// Monte-Carlo fan-out at full GOMAXPROCS width. Results are
// bit-identical to the serial run; only wall time changes.
func benchExperimentWorkers(b *testing.B, id string) {
	b.Helper()
	opt := experiments.Options{Workers: runtime.GOMAXPROCS(0)}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunWith(id, int64(i)+1, experiments.Quick, opt)
		if err != nil {
			b.Fatal(err)
		}
		benchResult = res
	}
}

// --- Paper artifacts (see DESIGN.md's per-experiment index) ---

func BenchmarkFig2RawRatings(b *testing.B)               { benchExperiment(b, "fig2") }
func BenchmarkFig3Histogram(b *testing.B)                { benchExperiment(b, "fig3") }
func BenchmarkFig4ModelError(b *testing.B)               { benchExperiment(b, "fig4") }
func BenchmarkTab1DetectionRates(b *testing.B)           { benchExperiment(b, "tab1") }
func BenchmarkTab1DetectionRatesParallel(b *testing.B)   { benchExperimentWorkers(b, "tab1") }
func BenchmarkFig5Netflix(b *testing.B)                  { benchExperiment(b, "fig5") }
func BenchmarkTab2Aggregators(b *testing.B)              { benchExperiment(b, "tab2") }
func BenchmarkFig6TrustEvolution(b *testing.B)           { benchExperiment(b, "fig6") }
func BenchmarkFig6TrustEvolutionParallel(b *testing.B)   { benchExperimentWorkers(b, "fig6") }
func BenchmarkFig7TrustMonth6(b *testing.B)              { benchExperiment(b, "fig7") }
func BenchmarkFig8TrustMonth12(b *testing.B)             { benchExperiment(b, "fig8") }
func BenchmarkFig9DetectionCapability(b *testing.B)      { benchExperiment(b, "fig9") }
func BenchmarkFig10HonestProducts(b *testing.B)          { benchExperiment(b, "fig10") }
func BenchmarkFig11DishonestProducts(b *testing.B)       { benchExperiment(b, "fig11") }
func BenchmarkFig12DishonestProductsBias02(b *testing.B) { benchExperiment(b, "fig12") }

// --- Ablations of the design choices DESIGN.md calls out ---

func BenchmarkAblationDemean(b *testing.B)       { benchExperiment(b, "ablation-demean") }
func BenchmarkAblationARMethod(b *testing.B)     { benchExperiment(b, "ablation-armethod") }
func BenchmarkAblationOrder(b *testing.B)        { benchExperiment(b, "ablation-order") }
func BenchmarkAblationWindow(b *testing.B)       { benchExperiment(b, "ablation-window") }
func BenchmarkAblationThresholdROC(b *testing.B) { benchExperiment(b, "ablation-threshold") }
func BenchmarkAblationTrustFloor(b *testing.B)   { benchExperiment(b, "ablation-floor") }
func BenchmarkAblationWhiteness(b *testing.B)    { benchExperiment(b, "ablation-whiteness") }
func BenchmarkAblationForgetting(b *testing.B)   { benchExperiment(b, "ablation-forgetting") }
func BenchmarkAblationAttacks(b *testing.B)      { benchExperiment(b, "ablation-attacks") }
func BenchmarkAblationBaselines(b *testing.B)    { benchExperiment(b, "ablation-baselines") }
func BenchmarkAblationChurn(b *testing.B)        { benchExperiment(b, "ablation-churn") }
func BenchmarkAblationLatency(b *testing.B)      { benchExperiment(b, "ablation-latency") }
func BenchmarkAblationPrior(b *testing.B)        { benchExperiment(b, "ablation-prior") }

// --- Micro-benchmarks of the hot kernels ---

var (
	sinkModel  repro.ARModel
	sinkReport repro.DetectionReport
	sinkFloat  float64
)

func benchWindow(n int) []float64 {
	rng := randx.New(42)
	x := make([]float64, n)
	for i := range x {
		x[i] = randx.Quantize(rng.NormalVar(0.7, 0.04), 11, true)
	}
	return x
}

func BenchmarkARCovarianceFit50(b *testing.B) {
	x := benchWindow(50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := repro.FitAR(x, 4, repro.AROptions{Method: repro.ARCovariance})
		if err != nil {
			b.Fatal(err)
		}
		sinkModel = m
	}
}

func BenchmarkARCovarianceFitWS50(b *testing.B) {
	// The zero-allocation path: one warm Workspace reused across fits,
	// as the detector hot loop runs it.
	x := benchWindow(50)
	ws := signal.NewWorkspace()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := signal.FitWS(x, 4, signal.Options{Method: signal.MethodCovariance}, ws)
		if err != nil {
			b.Fatal(err)
		}
		sinkModel = m
	}
}

func BenchmarkARYuleWalkerFit50(b *testing.B) {
	x := benchWindow(50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := repro.FitAR(x, 4, repro.AROptions{Method: repro.ARYuleWalker})
		if err != nil {
			b.Fatal(err)
		}
		sinkModel = m
	}
}

func BenchmarkARBurgFit50(b *testing.B) {
	x := benchWindow(50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := repro.FitAR(x, 4, repro.AROptions{Method: repro.ARBurg})
		if err != nil {
			b.Fatal(err)
		}
		sinkModel = m
	}
}

func benchTrace(b *testing.B) []repro.Rating {
	b.Helper()
	ls, err := sim.GenerateIllustrative(randx.New(7), sim.DefaultIllustrative())
	if err != nil {
		b.Fatal(err)
	}
	return sim.Ratings(ls)
}

func BenchmarkDetectIllustrativeTrace(b *testing.B) {
	rs := benchTrace(b)
	cfg := repro.DetectorConfig{Mode: repro.WindowByCount, Size: 50, Step: 25, Threshold: 0.105}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := repro.Detect(rs, cfg)
		if err != nil {
			b.Fatal(err)
		}
		sinkReport = rep
	}
}

func BenchmarkDetectIllustrativeTraceWS(b *testing.B) {
	// Detection with a warm reused Workspace — the steady-state cost a
	// ProcessWindow worker pays per object.
	rs := benchTrace(b)
	cfg := repro.DetectorConfig{Mode: repro.WindowByCount, Size: 50, Step: 25, Threshold: 0.105}
	ws := detector.NewWorkspace()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := detector.DetectWS(rs, cfg, ws)
		if err != nil {
			b.Fatal(err)
		}
		sinkReport = rep
	}
}

func BenchmarkBetaFilter(b *testing.B) {
	rs := benchTrace(b)
	f := repro.BetaFilter{Q: 0.1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := f.Apply(rs)
		if err != nil {
			b.Fatal(err)
		}
		sinkFloat = float64(len(res.Accepted))
	}
}

func BenchmarkAggregateM3(b *testing.B) {
	rng := randx.New(9)
	const n = 100
	ratings := make([]float64, n)
	trusts := make([]float64, n)
	for i := range ratings {
		ratings[i] = rng.Float64()
		trusts[i] = 0.5 + 0.5*rng.Float64()
	}
	agg := repro.ModifiedWeightedAverage{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v, err := agg.Aggregate(ratings, trusts)
		if err != nil {
			b.Fatal(err)
		}
		sinkFloat = v
	}
}

func BenchmarkSystemProcessWindow(b *testing.B) {
	rs := benchTrace(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys, err := repro.NewSystem(repro.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.SubmitAll(rs); err != nil {
			b.Fatal(err)
		}
		if _, err := sys.ProcessWindow(0, 60); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Telemetry overhead (ISSUE 3) ---
//
// The paired enabled/disabled benchmarks quantify the cost of the
// instrumentation layer itself; the instrumented ProcessWindow pair
// quantifies what the hot path actually pays end to end (budget: <2%,
// checked by cmd/benchreport).

func BenchmarkTelemetryCounter(b *testing.B) {
	c := telemetry.NewRegistry().Counter("bench_total", "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkTelemetryCounterDisabled(b *testing.B) {
	var r *telemetry.Registry // nil registry: the disabled path
	c := r.Counter("bench_total", "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkTelemetryHistogramObserve(b *testing.B) {
	h := telemetry.NewRegistry().Histogram("bench_seconds", "bench", telemetry.DefLatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.00042)
	}
}

func BenchmarkTelemetryHistogramDisabled(b *testing.B) {
	var r *telemetry.Registry
	h := r.Histogram("bench_seconds", "bench", telemetry.DefLatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.00042)
	}
}

func BenchmarkTelemetrySpan(b *testing.B) {
	h := telemetry.NewRegistry().Histogram("bench_span_seconds", "bench", telemetry.DefLatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := h.Start()
		sp.End()
	}
}

func BenchmarkTelemetrySpanDisabled(b *testing.B) {
	var r *telemetry.Registry
	h := r.Histogram("bench_span_seconds", "bench", telemetry.DefLatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := h.Start()
		sp.End()
	}
}

func BenchmarkSystemProcessWindowInstrumented(b *testing.B) {
	// Identical workload to BenchmarkSystemProcessWindow, with the full
	// per-stage span instrumentation live.
	rs := benchTrace(b)
	reg := telemetry.NewRegistry()
	m := core.NewMetrics(reg)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys, err := core.NewSystem(core.Config{Metrics: m})
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.SubmitAll(rs); err != nil {
			b.Fatal(err)
		}
		if _, err := sys.ProcessWindow(0, 60); err != nil {
			b.Fatal(err)
		}
	}
}
