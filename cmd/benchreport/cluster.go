package main

// The cluster section prices the partitioned serving tier: the same
// rating stream is ingested once through a plain single-node daemon
// and once through the routing proxy fronting a three-member cluster
// (every request crosses one extra HTTP hop to its keyspace owner),
// then the scatter-gather read paths and the scan/apply window
// exchange are timed against the member set.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/randx"
	"repro/internal/rating"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/trust"
)

// ClusterStats measures the routing tier against direct single-node
// serving on one fixed workload.
type ClusterStats struct {
	Ratings     int `json:"ratings"`
	Nodes       int `json:"nodes"`
	ShardsPer   int `json:"shards_per_node"`
	SubmitChunk int `json:"submit_chunk"`
	Submitters  int `json:"submitters"`
	GOMAXPROCS  int `json:"gomaxprocs"`

	// Ingest: identical stream, direct vs through the router's
	// owner-forwarding hop.
	DirectWallNS        int64   `json:"direct_wall_ns"`
	DirectRatingsPerSec float64 `json:"direct_ratings_per_sec"`
	RouterWallNS        int64   `json:"router_wall_ns"`
	RouterRatingsPerSec float64 `json:"router_ratings_per_sec"`
	IngestOverheadPct   float64 `json:"ingest_overhead_percent"`

	// One maintenance window through the scan/apply exchange: every
	// member scanned, evidence folded, trust broadcast back.
	WindowExchangeNS int64 `json:"window_exchange_ns"`

	// Scatter-gather read latency across the member set.
	ReadReps            int   `json:"read_reps"`
	ScatterStatsNSPerOp int64 `json:"scatter_stats_ns_per_op"`
	ScatterMalicNSPerOp int64 `json:"scatter_malicious_ns_per_op"`

	WallNS int64 `json:"wall_ns"`
}

// clusterIngest pushes the stream through one base URL from
// concurrent chunked submitters, the same shape as the shard-scaling
// section.
func clusterIngest(base string, rs []rating.Rating, chunk, submitters int) (time.Duration, error) {
	client := server.NewClient(base, nil)
	ctx := context.Background()
	began := time.Now()
	var next atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, submitters)
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := make([]server.RatingPayload, 0, chunk)
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= len(rs) {
					return
				}
				hi := lo + chunk
				if hi > len(rs) {
					hi = len(rs)
				}
				payload = payload[:0]
				for _, r := range rs[lo:hi] {
					payload = append(payload, server.RatingPayload{
						Rater: int(r.Rater), Object: int(r.Object), Value: r.Value, Time: r.Time,
					})
				}
				if _, err := client.Submit(ctx, payload); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(began)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return wall, nil
}

// startBenchMember assembles one in-process cluster member: engine,
// membership, server. Returned closer shuts the test server down.
func startBenchMember(table cluster.Table, selfURL string, shards int, swap func(http.Handler)) error {
	engine, err := shard.NewEngine(core.Config{}, shards)
	if err != nil {
		return err
	}
	member, err := cluster.NewMember(table, selfURL, engine)
	if err != nil {
		return err
	}
	srv, err := server.NewWith(engine,
		server.WithCluster(member),
		server.WithFeatures(api.DiscoveryFeatures{StreamIngest: true, Cluster: true}),
	)
	if err != nil {
		return err
	}
	member.SetOnApply(srv.InvalidateAll)
	mux := http.NewServeMux()
	member.Routes(mux)
	mux.Handle("/", srv)
	swap(mux)
	return nil
}

// measureCluster runs the full section: direct ingest baseline,
// routed ingest, one window exchange, and the scatter-gather reads.
func measureCluster(n int, seed int64) (stats ClusterStats, err error) {
	const (
		nodes       = 3
		shardsPer   = 2
		objects     = 48
		raters      = 512
		submitChunk = 256
		submitters  = 16
		readReps    = 200
	)
	rng := randx.New(seed)
	rs := make([]rating.Rating, n)
	for i := range rs {
		rs[i] = rating.Rating{
			Rater:  rating.RaterID(rng.Intn(raters) + 1),
			Object: rating.ObjectID(rng.Intn(objects)),
			Value:  rng.Float64(),
			Time:   rng.Float64() * 365,
		}
	}
	stats = ClusterStats{
		Ratings: n, Nodes: nodes, ShardsPer: shardsPer,
		SubmitChunk: submitChunk, Submitters: submitters,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		ReadReps:   readReps,
	}
	began := time.Now()
	defer func() { stats.WallNS = time.Since(began).Nanoseconds() }()

	// Direct baseline: one node, no routing hop.
	directEngine, err := shard.NewEngine(core.Config{}, shardsPer)
	if err != nil {
		return stats, err
	}
	directSrv, err := server.NewWith(directEngine)
	if err != nil {
		return stats, err
	}
	direct := httptest.NewServer(directSrv)
	defer direct.Close()
	wall, err := clusterIngest(direct.URL, rs, submitChunk, submitters)
	if err != nil {
		return stats, fmt.Errorf("direct ingest: %w", err)
	}
	stats.DirectWallNS = wall.Nanoseconds()
	stats.DirectRatingsPerSec = float64(n) / wall.Seconds()

	// The cluster: stable-URL members behind handler slots, the router
	// in front.
	handlers := make([]atomic.Pointer[http.Handler], nodes)
	members := make([]*httptest.Server, nodes)
	urls := make([]string, nodes)
	for i := range members {
		i := i
		members[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			(*handlers[i].Load()).ServeHTTP(w, r)
		}))
		defer members[i].Close()
		var placeholder http.Handler = http.NotFoundHandler()
		handlers[i].Store(&placeholder)
		urls[i] = members[i].URL
	}
	table, err := cluster.EvenTable(1, urls)
	if err != nil {
		return stats, err
	}
	for i := range members {
		i := i
		if err := startBenchMember(table, urls[i], shardsPer, func(h http.Handler) {
			handlers[i].Store(&h)
		}); err != nil {
			return stats, err
		}
	}
	rt, err := cluster.NewRouter(table, cluster.RouterConfig{Trust: &trust.ManagerConfig{}})
	if err != nil {
		return stats, err
	}
	front := httptest.NewServer(rt)
	defer front.Close()

	wall, err = clusterIngest(front.URL, rs, submitChunk, submitters)
	if err != nil {
		return stats, fmt.Errorf("routed ingest: %w", err)
	}
	stats.RouterWallNS = wall.Nanoseconds()
	stats.RouterRatingsPerSec = float64(n) / wall.Seconds()
	stats.IngestOverheadPct = 100 * (wall.Seconds() - float64(stats.DirectWallNS)/1e9) / (float64(stats.DirectWallNS) / 1e9)

	// One full scan/apply window exchange across the member set.
	client := server.NewClient(front.URL, nil)
	ctx := context.Background()
	wBegan := time.Now()
	if _, err := client.Process(ctx, 0, 365); err != nil {
		return stats, fmt.Errorf("window exchange: %w", err)
	}
	stats.WindowExchangeNS = time.Since(wBegan).Nanoseconds()

	// Scatter-gather reads: merged stats and the k-way malicious merge.
	rBegan := time.Now()
	for i := 0; i < readReps; i++ {
		if _, err := client.Stats(ctx); err != nil {
			return stats, fmt.Errorf("scatter stats: %w", err)
		}
	}
	stats.ScatterStatsNSPerOp = time.Since(rBegan).Nanoseconds() / readReps
	rBegan = time.Now()
	for i := 0; i < readReps; i++ {
		if _, err := client.Malicious(ctx); err != nil {
			return stats, fmt.Errorf("scatter malicious: %w", err)
		}
	}
	stats.ScatterMalicNSPerOp = time.Since(rBegan).Nanoseconds() / readReps
	return stats, nil
}
