package main

import (
	"fmt"
	"time"

	"repro/internal/experiments"
)

// DetectionStats embeds the detector×attack benchmark matrix in the
// report: per-cell ranking quality (AUC over 1-trust scores), detection
// rate, detection latency in days after campaign start, and aggregation
// error on attacked objects. Unlike the other sections this one records
// result numbers, not just wall time — the grid is the PR's scored
// artifact, and keeping it in BENCH history makes detector regressions
// diffable the same way perf regressions are.
type DetectionStats struct {
	Mode      string                   `json:"mode"`
	Runs      int                      `json:"runs"`
	Detectors []string                 `json:"detectors"`
	Attacks   []string                 `json:"attacks"`
	Cells     []experiments.MatrixCell `json:"cells"`
	WallNS    int64                    `json:"wall_ns"`
}

// measureDetection runs the matrix grid at the requested fidelity. The
// grid is bit-identical at every worker count, so opt.Workers only
// moves WallNS.
func measureDetection(mode string, seed int64, opt experiments.Options) (DetectionStats, error) {
	var m experiments.Mode
	switch mode {
	case "quick":
		m = experiments.Quick
	case "full":
		m = experiments.Full
	default:
		return DetectionStats{}, fmt.Errorf("unknown detection mode %q (want quick or full)", mode)
	}
	began := time.Now()
	res, err := experiments.RunMatrix(seed, m, opt)
	if err != nil {
		return DetectionStats{}, err
	}
	return DetectionStats{
		Mode:      mode,
		Runs:      res.Runs,
		Detectors: res.Detectors,
		Attacks:   res.Attacks,
		Cells:     res.Cells,
		WallNS:    time.Since(began).Nanoseconds(),
	}, nil
}
