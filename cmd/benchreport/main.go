// Command benchreport runs registered experiments in Quick mode and
// writes a machine-readable performance report: per-experiment wall
// time and heap-allocation statistics (bytes and object counts from
// runtime.MemStats deltas), plus environment metadata. The default
// output name BENCH_1.json is the checked-in report format; bump the
// number for later snapshots so history stays diffable.
//
// The report also measures crash-recovery replay throughput: a
// synthetic write-ahead log is generated, then recovered (full read,
// CRC verification, decode) and replayed into a fresh system, timing
// the path a restarting ratingd takes.
//
// It also measures the telemetry tax: the full ProcessWindow
// pipeline is timed with per-stage span instrumentation live and
// again with a nil registry (the no-op path), and the relative
// overhead is reported. The budget is <2%.
//
// It also measures shard scaling: the same out-of-order rating
// stream is ingested through the batching router at 1, 2, 4, and 8
// shards, and the report records the 4-shard speedup over the
// single-shard baseline (target: at least 1.5x).
//
// It also measures the HTTP serving layer: NDJSON streaming ingest
// against chunked unary POSTs at 4 shards (target: at least 2x), and
// the read cache against aggregate recomputation (target: at least
// 5x, with a byte-identical conformance gate before timing).
//
// It also measures WAL replication: a live follower's catch-up
// throughput over the long-poll NDJSON stream, and its steady-state
// lag percentiles (records and seconds) while the primary ingests
// paced batches.
//
// It also measures partitioned serving: the same stream ingested
// through a plain single-node daemon and through the routing proxy
// fronting a three-member cluster (one extra owner-forwarding hop per
// request), plus the scan/apply window exchange and the
// scatter-gather read paths across the member set.
//
// It also measures the streaming detection path (-stream-detect):
// per-attack detection latency of online stream alerts versus batch
// maintenance windows on the adversary-zoo workload, and the ingest
// throughput cost of keeping streaming on at 4 shards.
//
// Finally it records the detector×attack benchmark matrix (AUC,
// detection rate, latency, aggregation error per cell) so detector
// regressions show up in BENCH history alongside perf regressions.
//
//	benchreport                      # all experiments -> BENCH_10.json
//	benchreport -run tab1 -out -     # one experiment  -> stdout
//	benchreport -workers 4 -walrecords 100000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/parallel"
	"repro/internal/randx"
	"repro/internal/rating"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/wal"
)

// Report is the top-level JSON document.
type Report struct {
	GoVersion   string             `json:"go_version"`
	GOMAXPROCS  int                `json:"gomaxprocs"`
	Workers     int                `json:"workers"`
	Mode        string             `json:"mode"`
	Seed        int64              `json:"seed"`
	Experiments []ExperimentStats  `json:"experiments"`
	WALReplay   *WALReplayStats    `json:"wal_replay,omitempty"`
	Telemetry   *TelemetryStats    `json:"telemetry_overhead,omitempty"`
	ShardScale  *ShardScalingStats `json:"shard_scaling,omitempty"`
	Serving     *ServingStats      `json:"serving,omitempty"`
	Replication *ReplicationStats  `json:"replication,omitempty"`
	Cluster     *ClusterStats      `json:"cluster,omitempty"`
	Streaming   *StreamingStats    `json:"streaming,omitempty"`
	Detection   *DetectionStats    `json:"detection,omitempty"`
	TotalWallNS int64              `json:"total_wall_ns"`
}

// ShardScalingStats measures ingest throughput through the batching
// router at increasing shard counts on one fixed out-of-order
// workload. The win on a single CPU is batching amortization, not
// parallelism: a shard's 256-rating batch covers a longer stretch of
// the submission stream as shards grow, so each object's sorted
// history is re-merged correspondingly fewer times. The section runs
// at GOMAXPROCS = NumCPU (recorded per section) so multi-core boxes
// also measure the parallel win.
type ShardScalingStats struct {
	Ratings     int                `json:"ratings"`
	Objects     int                `json:"objects"`
	BatchSize   int                `json:"batch_size"`
	SubmitChunk int                `json:"submit_chunk"`
	Submitters  int                `json:"submitters"`
	GOMAXPROCS  int                `json:"gomaxprocs"`
	Configs     []ShardConfigStats `json:"configs"`
	SpeedupAt4  float64            `json:"speedup_at_4"`
	WallNS      int64              `json:"wall_ns"`
}

// ShardConfigStats is one shard count's ingest measurement.
type ShardConfigStats struct {
	Shards        int     `json:"shards"`
	WallNS        int64   `json:"wall_ns"`
	RatingsPerSec float64 `json:"ratings_per_sec"`
}

// TelemetryStats compares the instrumented ProcessWindow pipeline
// against the no-op (nil registry) path on the same workload.
type TelemetryStats struct {
	Reps            int     `json:"reps"`
	BaselineWallNS  int64   `json:"baseline_wall_ns"`
	TelemetryWallNS int64   `json:"telemetry_wall_ns"`
	OverheadPercent float64 `json:"overhead_percent"`
}

// WALReplayStats measures crash-recovery throughput: how fast a
// write-ahead log of accepted ratings is read back, checksum-verified,
// decoded, and re-applied at startup.
type WALReplayStats struct {
	Records       int     `json:"records"`
	WallNS        int64   `json:"wall_ns"`
	RecordsPerSec float64 `json:"records_per_sec"`
}

// ExperimentStats is one experiment's measurement.
type ExperimentStats struct {
	ID         string `json:"id"`
	WallNS     int64  `json:"wall_ns"`
	AllocBytes uint64 `json:"alloc_bytes"`
	Allocs     uint64 `json:"allocs"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchreport", flag.ContinueOnError)
	var (
		runID      = fs.String("run", "all", "experiment ID to measure, or \"all\"")
		seed       = fs.Int64("seed", 1, "top-level random seed")
		workers    = fs.Int("workers", 0, "Monte-Carlo worker goroutines (0 = GOMAXPROCS)")
		out        = fs.String("out", "BENCH_10.json", "output path, or \"-\" for stdout")
		walRecs    = fs.Int("walrecords", 50000, "WAL records for the recovery-replay benchmark (0 skips it)")
		telReps    = fs.Int("telemetryreps", 20, "ProcessWindow repetitions for the telemetry-overhead benchmark (0 skips it)")
		shardRecs  = fs.Int("shardratings", 480000, "ratings for the shard-scaling ingest benchmark (0 skips it)")
		serveRecs  = fs.Int("servingratings", 240000, "ratings for the HTTP serving benchmark (0 skips it)")
		replRecs   = fs.Int("replratings", 120000, "ratings for the replication catch-up/lag benchmark (0 skips it)")
		clusterRec = fs.Int("clusterratings", 120000, "ratings for the partitioned-cluster routing benchmark (0 skips it)")
		detMode    = fs.String("detection", "quick", "detector×attack matrix fidelity: quick or full (empty skips it)")
		streamAtt  = fs.String("streamattacks", "constant,camouflage,on-off,ramp,trust-then-strike,sybil,whitewash,rotating,oscillate", "comma-separated zoo attacks for the streaming detection-latency benchmark (empty skips it)")
		streamRecs = fs.Int("streamratings", 240000, "ratings for the streaming ingest-overhead benchmark (0 skips it)")
		minSpeed4  = fs.Float64("minspeedup4", 0, "fail unless shard_scaling.speedup_at_4 reaches this floor (0 disables)")
		maxSLat    = fs.Float64("maxstreamlatency", 0, "fail if any batch-detected attack's streaming latency exceeds this many days (0 disables)")
		maxSOver   = fs.Float64("maxstreamoverhead", 0, "fail if streaming ingest overhead exceeds this percent (0 disables)")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile of the measured sections to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile (after a final GC) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchreport: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "benchreport: memprofile:", err)
			}
		}()
	}

	ids := []string{*runID}
	if *runID == "all" {
		ids = experiments.IDs()
	}

	report := Report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    parallel.Workers(*workers),
		Mode:       "quick",
		Seed:       *seed,
	}
	opt := experiments.Options{Workers: *workers}
	for _, id := range ids {
		stats, err := measure(id, *seed, opt)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		report.Experiments = append(report.Experiments, stats)
		report.TotalWallNS += stats.WallNS
	}

	if *walRecs > 0 {
		stats, err := measureWALReplay(*walRecs, *seed)
		if err != nil {
			return fmt.Errorf("wal replay: %w", err)
		}
		report.WALReplay = &stats
		report.TotalWallNS += stats.WallNS
	}

	if *telReps > 0 {
		stats, err := measureTelemetryOverhead(*telReps, *seed)
		if err != nil {
			return fmt.Errorf("telemetry overhead: %w", err)
		}
		report.Telemetry = &stats
		report.TotalWallNS += stats.BaselineWallNS + stats.TelemetryWallNS
	}

	// The ingest-path sections run at GOMAXPROCS = NumCPU (restored
	// afterwards) so multi-core boxes measure the parallel win too; the
	// setting used is recorded per section.
	if *shardRecs > 0 {
		if err := atNumCPU(func() error {
			stats, err := measureShardScaling(*shardRecs, *seed)
			if err != nil {
				return fmt.Errorf("shard scaling: %w", err)
			}
			report.ShardScale = &stats
			report.TotalWallNS += stats.WallNS
			return nil
		}); err != nil {
			return err
		}
		// The committed regression floor (see `make bench-quick`): a
		// change that drags the 4-shard batching win below it fails the
		// run outright instead of silently shipping a slower report.
		if *minSpeed4 > 0 && report.ShardScale.SpeedupAt4 < *minSpeed4 {
			return fmt.Errorf("shard scaling: speedup_at_4 %.2f below committed floor %.2f",
				report.ShardScale.SpeedupAt4, *minSpeed4)
		}
	}

	if *serveRecs > 0 {
		if err := atNumCPU(func() error {
			stats, err := measureServing(*serveRecs, *seed)
			if err != nil {
				return fmt.Errorf("serving: %w", err)
			}
			report.Serving = &stats
			report.TotalWallNS += stats.WallNS
			return nil
		}); err != nil {
			return err
		}
	}

	if *replRecs > 0 {
		if err := atNumCPU(func() error {
			stats, err := measureReplication(*replRecs, *seed)
			if err != nil {
				return fmt.Errorf("replication: %w", err)
			}
			report.Replication = &stats
			report.TotalWallNS += stats.WallNS
			return nil
		}); err != nil {
			return err
		}
	}

	if *clusterRec > 0 {
		if err := atNumCPU(func() error {
			stats, err := measureCluster(*clusterRec, *seed)
			if err != nil {
				return fmt.Errorf("cluster: %w", err)
			}
			report.Cluster = &stats
			report.TotalWallNS += stats.WallNS
			return nil
		}); err != nil {
			return err
		}
	}

	if *streamAtt != "" || *streamRecs > 0 {
		var stats StreamingStats
		began := time.Now()
		if *streamAtt != "" {
			lat, err := measureStreamLatency(splitList(*streamAtt), *seed)
			if err != nil {
				return fmt.Errorf("streaming latency: %w", err)
			}
			stats.Latency = lat
		}
		if *streamRecs > 0 {
			if err := atNumCPU(func() error {
				ingest, err := measureStreamIngest(*streamRecs, *seed)
				if err != nil {
					return fmt.Errorf("streaming ingest: %w", err)
				}
				stats.Ingest = &ingest
				return nil
			}); err != nil {
				return err
			}
		}
		stats.WallNS = time.Since(began).Nanoseconds()
		report.Streaming = &stats
		report.TotalWallNS += stats.WallNS

		// The committed streaming regression floors (see `make
		// bench-quick`): the online path must not lose an attack the
		// batch path catches, must not detect later than the pinned
		// bound on anything it does catch, and must not tax ingest
		// beyond the pinned overhead.
		if *maxSLat > 0 {
			for _, l := range stats.Latency {
				if l.BatchDetected && !l.StreamDetected {
					return fmt.Errorf("streaming latency: %s: batch detects but streaming does not", l.Attack)
				}
				if l.StreamDetected && l.StreamLatencyDays > *maxSLat {
					return fmt.Errorf("streaming latency: %s: %.1f days above committed floor %.1f",
						l.Attack, l.StreamLatencyDays, *maxSLat)
				}
			}
		}
		if *maxSOver > 0 && stats.Ingest != nil && stats.Ingest.OverheadPercent > *maxSOver {
			return fmt.Errorf("streaming ingest: overhead %.1f%% above committed floor %.1f%%",
				stats.Ingest.OverheadPercent, *maxSOver)
		}
	}

	if *detMode != "" {
		stats, err := measureDetection(*detMode, *seed, opt)
		if err != nil {
			return fmt.Errorf("detection: %w", err)
		}
		report.Detection = &stats
		report.TotalWallNS += stats.WallNS
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "-" {
		_, err := stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}

// splitList parses a comma-separated flag value, dropping empty and
// surrounding-space-only elements.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// atNumCPU runs f with GOMAXPROCS raised to the machine's CPU count
// and restores the previous setting afterwards.
func atNumCPU(f func() error) error {
	prev := runtime.GOMAXPROCS(runtime.NumCPU())
	defer runtime.GOMAXPROCS(prev)
	return f()
}

// replaySink absorbs replayed WAL records into a real system store, so
// the benchmark times the same apply path a restarting daemon runs.
type replaySink struct{ sys *core.System }

func (t replaySink) Submit(r rating.Rating) error { return t.sys.Submit(r) }

func (t replaySink) Process(start, end float64) error {
	_, err := t.sys.ProcessWindow(start, end)
	return err
}

// measureWALReplay generates a synthetic log of n accepted ratings
// (setup, untimed), then times recovery: open the log, verify and
// decode every frame, and replay into a fresh system.
func measureWALReplay(n int, seed int64) (WALReplayStats, error) {
	dir, err := os.MkdirTemp("", "benchwal")
	if err != nil {
		return WALReplayStats{}, err
	}
	defer os.RemoveAll(dir)

	log, _, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncNever})
	if err != nil {
		return WALReplayStats{}, err
	}
	rng := randx.New(seed)
	const batch = 256
	recs := make([]wal.Record, 0, batch)
	for i := 0; i < n; i++ {
		recs = append(recs, wal.RatingRecord(rating.Rating{
			Rater:  rating.RaterID(rng.Intn(500)),
			Object: rating.ObjectID(rng.Intn(50)),
			Value:  rng.Float64(),
			Time:   float64(i) * 1e-3,
		}))
		if len(recs) == batch {
			if err := log.AppendAll(recs); err != nil {
				return WALReplayStats{}, err
			}
			recs = recs[:0]
		}
	}
	if err := log.AppendAll(recs); err != nil {
		return WALReplayStats{}, err
	}
	if err := log.Close(); err != nil {
		return WALReplayStats{}, err
	}

	sys, err := core.NewSystem(core.Config{})
	if err != nil {
		return WALReplayStats{}, err
	}
	began := time.Now()
	reopened, rec, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncNever})
	if err != nil {
		return WALReplayStats{}, err
	}
	applied := wal.Replay(replaySink{sys: sys}, rec.Records, nil)
	wall := time.Since(began)
	if err := reopened.Close(); err != nil {
		return WALReplayStats{}, err
	}
	if applied != n {
		return WALReplayStats{}, fmt.Errorf("replayed %d of %d records", applied, n)
	}
	return WALReplayStats{
		Records:       n,
		WallNS:        wall.Nanoseconds(),
		RecordsPerSec: float64(n) / wall.Seconds(),
	}, nil
}

// measureTelemetryOverhead times reps full ProcessWindow runs over the
// paper's illustrative attacked trace, once with per-stage telemetry
// live and once with a nil registry, interleaved to cancel thermal and
// GC drift. It reports the relative wall-time overhead.
func measureTelemetryOverhead(reps int, seed int64) (TelemetryStats, error) {
	labeled, err := sim.GenerateIllustrative(randx.New(seed), sim.DefaultIllustrative())
	if err != nil {
		return TelemetryStats{}, err
	}
	rs := sim.Ratings(labeled)

	metrics := core.NewMetrics(telemetry.NewRegistry())
	once := func(m *core.Metrics) (time.Duration, error) {
		sys, err := core.NewSystem(core.Config{Metrics: m})
		if err != nil {
			return 0, err
		}
		if err := sys.SubmitAll(rs); err != nil {
			return 0, err
		}
		began := time.Now()
		if _, err := sys.ProcessWindow(0, 60); err != nil {
			return 0, err
		}
		return time.Since(began), nil
	}
	// Warm up both paths once before timing.
	if _, err := once(nil); err != nil {
		return TelemetryStats{}, err
	}
	if _, err := once(metrics); err != nil {
		return TelemetryStats{}, err
	}
	var base, tel time.Duration
	for i := 0; i < reps; i++ {
		d, err := once(nil)
		if err != nil {
			return TelemetryStats{}, err
		}
		base += d
		if d, err = once(metrics); err != nil {
			return TelemetryStats{}, err
		}
		tel += d
	}
	return TelemetryStats{
		Reps:            reps,
		BaselineWallNS:  base.Nanoseconds(),
		TelemetryWallNS: tel.Nanoseconds(),
		OverheadPercent: 100 * (tel.Seconds() - base.Seconds()) / base.Seconds(),
	}, nil
}

// measureShardScaling times ingesting one fixed stream of
// time-jittered ratings through the router at 1, 2, 4, and 8 shards.
// Submissions arrive as small chunks from concurrent clients — the
// shape under which per-shard group commit earns its keep — and every
// configuration must ingest the identical stream completely.
func measureShardScaling(n int, seed int64) (ShardScalingStats, error) {
	const (
		objects     = 48
		raters      = 512
		batchSize   = 256
		submitChunk = 256
		submitters  = 32
	)
	rng := randx.New(seed)
	rs := make([]rating.Rating, n)
	for i := range rs {
		rs[i] = rating.Rating{
			Rater:  rating.RaterID(rng.Intn(raters) + 1),
			Object: rating.ObjectID(rng.Intn(objects)),
			Value:  rng.Float64(),
			// Arrival order deliberately scrambled relative to event
			// time, so every flush merges into the middle of history.
			Time: rng.Float64() * 365,
		}
	}
	stats := ShardScalingStats{
		Ratings: n, Objects: objects,
		BatchSize: batchSize, SubmitChunk: submitChunk, Submitters: submitters,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	var base time.Duration
	for _, shards := range []int{1, 2, 4, 8} {
		engine, err := shard.NewEngine(core.Config{}, shards)
		if err != nil {
			return stats, err
		}
		router, err := shard.NewRouter(shard.RouterConfig{
			Shards:    shards,
			BatchSize: batchSize,
			Flush:     engine.SubmitShard,
		})
		if err != nil {
			return stats, err
		}
		runtime.GC()
		began := time.Now()
		var next atomic.Int64
		var wg sync.WaitGroup
		errs := make([]error, submitters)
		for w := 0; w < submitters; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for {
					lo := int(next.Add(submitChunk)) - submitChunk
					if lo >= n {
						return
					}
					hi := lo + submitChunk
					if hi > n {
						hi = n
					}
					if err := router.Submit(rs[lo:hi]); err != nil {
						errs[w] = err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		if err := router.Flush(); err != nil {
			return stats, err
		}
		wall := time.Since(began)
		if err := router.Close(); err != nil {
			return stats, err
		}
		for _, err := range errs {
			if err != nil {
				return stats, err
			}
		}
		if got := engine.Len(); got != n {
			return stats, fmt.Errorf("%d shards: ingested %d of %d ratings", shards, got, n)
		}
		if shards == 1 {
			base = wall
		} else if shards == 4 && base > 0 {
			stats.SpeedupAt4 = base.Seconds() / wall.Seconds()
		}
		stats.Configs = append(stats.Configs, ShardConfigStats{
			Shards:        shards,
			WallNS:        wall.Nanoseconds(),
			RatingsPerSec: float64(n) / wall.Seconds(),
		})
		stats.WallNS += wall.Nanoseconds()
	}
	return stats, nil
}

// measure runs one experiment and reports its wall time and the heap
// traffic it caused. A GC fence before each side of the MemStats read
// keeps other experiments' garbage out of the deltas; alloc counters in
// MemStats are monotone, so the subtraction is exact.
func measure(id string, seed int64, opt experiments.Options) (ExperimentStats, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	began := time.Now()
	if _, err := experiments.RunWith(id, seed, experiments.Quick, opt); err != nil {
		return ExperimentStats{}, err
	}
	wall := time.Since(began)
	runtime.ReadMemStats(&after)
	return ExperimentStats{
		ID:         id,
		WallNS:     wall.Nanoseconds(),
		AllocBytes: after.TotalAlloc - before.TotalAlloc,
		Allocs:     after.Mallocs - before.Mallocs,
	}, nil
}
