// Command benchreport runs registered experiments in Quick mode and
// writes a machine-readable performance report: per-experiment wall
// time and heap-allocation statistics (bytes and object counts from
// runtime.MemStats deltas), plus environment metadata. The default
// output name BENCH_1.json is the checked-in report format; bump the
// number for later snapshots so history stays diffable.
//
//	benchreport                      # all experiments -> BENCH_1.json
//	benchreport -run tab1 -out -     # one experiment  -> stdout
//	benchreport -workers 4
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
	"repro/internal/parallel"
)

// Report is the top-level JSON document.
type Report struct {
	GoVersion   string            `json:"go_version"`
	GOMAXPROCS  int               `json:"gomaxprocs"`
	Workers     int               `json:"workers"`
	Mode        string            `json:"mode"`
	Seed        int64             `json:"seed"`
	Experiments []ExperimentStats `json:"experiments"`
	TotalWallNS int64             `json:"total_wall_ns"`
}

// ExperimentStats is one experiment's measurement.
type ExperimentStats struct {
	ID         string `json:"id"`
	WallNS     int64  `json:"wall_ns"`
	AllocBytes uint64 `json:"alloc_bytes"`
	Allocs     uint64 `json:"allocs"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchreport", flag.ContinueOnError)
	var (
		runID   = fs.String("run", "all", "experiment ID to measure, or \"all\"")
		seed    = fs.Int64("seed", 1, "top-level random seed")
		workers = fs.Int("workers", 0, "Monte-Carlo worker goroutines (0 = GOMAXPROCS)")
		out     = fs.String("out", "BENCH_1.json", "output path, or \"-\" for stdout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ids := []string{*runID}
	if *runID == "all" {
		ids = experiments.IDs()
	}

	report := Report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    parallel.Workers(*workers),
		Mode:       "quick",
		Seed:       *seed,
	}
	opt := experiments.Options{Workers: *workers}
	for _, id := range ids {
		stats, err := measure(id, *seed, opt)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		report.Experiments = append(report.Experiments, stats)
		report.TotalWallNS += stats.WallNS
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "-" {
		_, err := stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}

// measure runs one experiment and reports its wall time and the heap
// traffic it caused. A GC fence before each side of the MemStats read
// keeps other experiments' garbage out of the deltas; alloc counters in
// MemStats are monotone, so the subtraction is exact.
func measure(id string, seed int64, opt experiments.Options) (ExperimentStats, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	began := time.Now()
	if _, err := experiments.RunWith(id, seed, experiments.Quick, opt); err != nil {
		return ExperimentStats{}, err
	}
	wall := time.Since(began)
	runtime.ReadMemStats(&after)
	return ExperimentStats{
		ID:         id,
		WallNS:     wall.Nanoseconds(),
		AllocBytes: after.TotalAlloc - before.TotalAlloc,
		Allocs:     after.Mallocs - before.Mallocs,
	}, nil
}
