package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestSingleExperimentToStdout(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-run", "tab2", "-out", "-", "-walrecords", "0", "-telemetryreps", "0", "-clusterratings", "0", "-shardratings", "0", "-servingratings", "0", "-replratings", "0", "-detection", "", "-streamattacks", "", "-streamratings", "0"}, &buf); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal([]byte(buf.String()), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].ID != "tab2" {
		t.Fatalf("experiments: %+v", rep.Experiments)
	}
	e := rep.Experiments[0]
	if e.WallNS <= 0 || e.Allocs == 0 || e.AllocBytes == 0 {
		t.Fatalf("degenerate stats: %+v", e)
	}
	if rep.TotalWallNS != e.WallNS {
		t.Fatalf("total %d != sum %d", rep.TotalWallNS, e.WallNS)
	}
	if rep.Workers < 1 || rep.GOMAXPROCS < 1 || rep.GoVersion == "" {
		t.Fatalf("metadata: %+v", rep)
	}
}

func TestWALReplayStats(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-run", "tab2", "-out", "-", "-walrecords", "2000", "-telemetryreps", "0", "-clusterratings", "0", "-shardratings", "0", "-servingratings", "0", "-replratings", "0", "-detection", "", "-streamattacks", "", "-streamratings", "0"}, &buf); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal([]byte(buf.String()), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	w := rep.WALReplay
	if w == nil {
		t.Fatal("wal_replay missing from report")
	}
	if w.Records != 2000 || w.WallNS <= 0 || w.RecordsPerSec <= 0 {
		t.Fatalf("degenerate WAL replay stats: %+v", w)
	}
	if rep.TotalWallNS != rep.Experiments[0].WallNS+w.WallNS {
		t.Fatalf("total %d does not include replay %d", rep.TotalWallNS, w.WallNS)
	}
}

func TestWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := run([]string{"-run", "fig2", "-out", path, "-workers", "2", "-telemetryreps", "0", "-clusterratings", "0", "-shardratings", "0", "-servingratings", "0", "-replratings", "0", "-detection", "", "-streamattacks", "", "-streamratings", "0"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Workers != 2 {
		t.Fatalf("workers = %d, want 2", rep.Workers)
	}
}

func TestAllCoversRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	var buf strings.Builder
	if err := run([]string{"-out", "-"}, &buf); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal([]byte(buf.String()), &rep); err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool, len(rep.Experiments))
	for _, e := range rep.Experiments {
		got[e.ID] = true
	}
	for _, id := range experiments.IDs() {
		if !got[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
}

func TestShardScalingStats(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-run", "tab2", "-out", "-", "-walrecords", "0", "-telemetryreps", "0", "-clusterratings", "0", "-shardratings", "4000", "-servingratings", "0", "-replratings", "0", "-detection", "", "-streamattacks", "", "-streamratings", "0"}, &buf); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal([]byte(buf.String()), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	s := rep.ShardScale
	if s == nil {
		t.Fatal("shard_scaling missing from report")
	}
	if s.Ratings != 4000 || len(s.Configs) != 4 {
		t.Fatalf("degenerate shard scaling stats: %+v", s)
	}
	for i, want := range []int{1, 2, 4, 8} {
		c := s.Configs[i]
		if c.Shards != want || c.WallNS <= 0 || c.RatingsPerSec <= 0 {
			t.Fatalf("config %d degenerate: %+v", i, c)
		}
	}
	// The speedup ratio itself is asserted only for sanity here (the
	// 1.5x target needs benchmark-size workloads, not test-size ones).
	if s.SpeedupAt4 <= 0 {
		t.Fatalf("speedup_at_4 = %v", s.SpeedupAt4)
	}
	if rep.TotalWallNS != rep.Experiments[0].WallNS+s.WallNS {
		t.Fatalf("total %d does not include shard scaling %d", rep.TotalWallNS, s.WallNS)
	}
}

func TestServingStats(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-run", "tab2", "-out", "-", "-walrecords", "0", "-telemetryreps", "0", "-clusterratings", "0", "-shardratings", "0", "-servingratings", "600", "-replratings", "0", "-detection", "", "-streamattacks", "", "-streamratings", "0"}, &buf); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal([]byte(buf.String()), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	s := rep.Serving
	if s == nil {
		t.Fatal("serving missing from report")
	}
	if s.Ratings != 600 || s.UnaryWallNS <= 0 || s.StreamWallNS <= 0 || s.StreamSpeedup <= 0 {
		t.Fatalf("degenerate ingest stats: %+v", s)
	}
	if s.UncachedReads <= 0 || s.CachedReads <= 0 || s.CacheSpeedup <= 0 {
		t.Fatalf("degenerate read stats: %+v", s)
	}
	// The speedup targets need benchmark-size workloads; here only the
	// conformance gate is load-bearing.
	if !s.CacheConformant {
		t.Fatal("cached reads diverged from uncached")
	}
	if rep.TotalWallNS != rep.Experiments[0].WallNS+s.WallNS {
		t.Fatalf("total %d does not include serving %d", rep.TotalWallNS, s.WallNS)
	}
}

func TestReplicationStats(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-run", "tab2", "-out", "-", "-walrecords", "0", "-telemetryreps", "0", "-clusterratings", "0", "-shardratings", "0", "-servingratings", "0", "-replratings", "800", "-detection", "", "-streamattacks", "", "-streamratings", "0"}, &buf); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal([]byte(buf.String()), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	r := rep.Replication
	if r == nil {
		t.Fatal("replication missing from report")
	}
	if r.Ratings != 800 || r.Shards <= 0 || r.CatchupWallNS <= 0 || r.CatchupRecsPerSec <= 0 {
		t.Fatalf("degenerate catch-up stats: %+v", r)
	}
	// Throughput targets need benchmark-size workloads; here the
	// load-bearing assertions are that the follower really converged
	// (measureReplication fails otherwise) and that lag was sampled.
	if r.SteadyLagSamples <= 0 {
		t.Fatalf("no steady-state lag samples: %+v", r)
	}
	if rep.TotalWallNS != rep.Experiments[0].WallNS+r.WallNS {
		t.Fatalf("total %d does not include replication %d", rep.TotalWallNS, r.WallNS)
	}
}

func TestDetectionStats(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full detector×attack grid")
	}
	var buf strings.Builder
	if err := run([]string{"-run", "fig2", "-out", "-", "-walrecords", "0", "-telemetryreps", "0", "-clusterratings", "0", "-shardratings", "0", "-servingratings", "0", "-replratings", "0", "-detection", "quick", "-streamattacks", "", "-streamratings", "0"}, &buf); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal([]byte(buf.String()), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	d := rep.Detection
	if d == nil {
		t.Fatal("detection missing from report")
	}
	if d.Mode != "quick" || d.Runs <= 0 || d.WallNS <= 0 {
		t.Fatalf("degenerate detection stats: mode=%q runs=%d wall=%d", d.Mode, d.Runs, d.WallNS)
	}
	if len(d.Detectors) < 3 || len(d.Attacks) < 5 {
		t.Fatalf("grid too small: %d detectors x %d attacks", len(d.Detectors), len(d.Attacks))
	}
	if want := len(d.Detectors) * len(d.Attacks); len(d.Cells) != want {
		t.Fatalf("%d cells, want %d", len(d.Cells), want)
	}
	if rep.TotalWallNS != rep.Experiments[0].WallNS+d.WallNS {
		t.Fatalf("total %d does not include detection %d", rep.TotalWallNS, d.WallNS)
	}
}

func TestStreamingStats(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-run", "fig2", "-out", "-", "-walrecords", "0", "-telemetryreps", "0", "-clusterratings", "0", "-shardratings", "0", "-servingratings", "0", "-replratings", "0", "-detection", "", "-streamattacks", "trust-then-strike", "-streamratings", "2000"}, &buf); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal([]byte(buf.String()), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	s := rep.Streaming
	if s == nil {
		t.Fatal("streaming missing from report")
	}
	if len(s.Latency) != 1 || s.Latency[0].Attack != "trust-then-strike" {
		t.Fatalf("latency section: %+v", s.Latency)
	}
	l := s.Latency[0]
	if l.StreamLatencyDays < 0 || l.BatchLatencyDays < 0 {
		t.Fatalf("negative latency: %+v", l)
	}
	// The strike phase is the AR detector's easiest prey; if the
	// streaming path stops catching it the section is measuring
	// nothing.
	if !l.StreamDetected {
		t.Fatalf("streaming missed trust-then-strike: %+v", l)
	}
	in := s.Ingest
	if in == nil {
		t.Fatal("ingest section missing")
	}
	if in.Ratings != 2000 || in.Shards != 4 || in.BaselineWallNS <= 0 || in.StreamWallNS <= 0 {
		t.Fatalf("degenerate ingest stats: %+v", in)
	}
	if in.Pushed+in.LateDropped+in.Shed != 2000 {
		t.Fatalf("push accounting: pushed %d + late %d + shed %d != 2000", in.Pushed, in.LateDropped, in.Shed)
	}
	if rep.TotalWallNS != rep.Experiments[0].WallNS+s.WallNS {
		t.Fatalf("total %d does not include streaming %d", rep.TotalWallNS, s.WallNS)
	}
}

func TestClusterStats(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-run", "tab2", "-out", "-", "-walrecords", "0", "-telemetryreps", "0", "-shardratings", "0", "-servingratings", "0", "-replratings", "0", "-detection", "", "-streamattacks", "", "-streamratings", "0", "-clusterratings", "1500"}, &buf); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal([]byte(buf.String()), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	c := rep.Cluster
	if c == nil {
		t.Fatal("cluster missing from report")
	}
	if c.Ratings != 1500 || c.Nodes != 3 || c.DirectWallNS <= 0 || c.RouterWallNS <= 0 {
		t.Fatalf("degenerate ingest stats: %+v", c)
	}
	// Overhead ratios need benchmark-size workloads; load-bearing here
	// is that the exchange and scatter paths really ran.
	if c.WindowExchangeNS <= 0 || c.ScatterStatsNSPerOp <= 0 || c.ScatterMalicNSPerOp <= 0 {
		t.Fatalf("degenerate exchange/read stats: %+v", c)
	}
	if rep.TotalWallNS != rep.Experiments[0].WallNS+c.WallNS {
		t.Fatalf("total %d does not include cluster %d", rep.TotalWallNS, c.WallNS)
	}
}

func TestStreamingLatencyFloor(t *testing.T) {
	// An absurdly tight floor must fail the run: streaming detects
	// trust-then-strike, so its latency exceeds 1e-9 and the
	// committed-floor check fires.
	err := run([]string{"-run", "fig2", "-out", "-", "-walrecords", "0", "-telemetryreps", "0", "-clusterratings", "0", "-shardratings", "0", "-servingratings", "0", "-replratings", "0", "-detection", "", "-streamattacks", "trust-then-strike", "-streamratings", "0", "-maxstreamlatency", "1e-9"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "committed floor") {
		t.Fatalf("floor breach not reported: %v", err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "fig99", "-out", "-"}, io.Discard); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTelemetryOverheadStats(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-run", "fig2", "-out", "-", "-walrecords", "0", "-telemetryreps", "3", "-clusterratings", "0", "-shardratings", "0", "-servingratings", "0", "-replratings", "0", "-detection", "", "-streamattacks", "", "-streamratings", "0"}, &buf); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal([]byte(buf.String()), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	tel := rep.Telemetry
	if tel == nil {
		t.Fatal("telemetry_overhead missing from report")
	}
	if tel.Reps != 3 || tel.BaselineWallNS <= 0 || tel.TelemetryWallNS <= 0 {
		t.Fatalf("degenerate telemetry stats: %+v", tel)
	}
	if rep.TotalWallNS != rep.Experiments[0].WallNS+tel.BaselineWallNS+tel.TelemetryWallNS {
		t.Fatalf("total %d does not include telemetry %+v", rep.TotalWallNS, tel)
	}
}
