package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/randx"
	"repro/internal/rating"
	"repro/internal/repl"
	"repro/internal/shard"
	"repro/internal/wal"
)

// ReplicationStats measures the primary→follower WAL replication path
// end to end over real HTTP: how fast a live follower streams and
// applies a burst it is behind on (catch-up), and how far behind it
// runs while the primary ingests at a sustainable pace (steady-state
// lag percentiles, sampled from the follower's own lag accounting).
type ReplicationStats struct {
	Ratings           int     `json:"ratings"`
	Shards            int     `json:"shards"`
	CatchupWallNS     int64   `json:"catchup_wall_ns"`
	CatchupRecsPerSec float64 `json:"catchup_records_per_sec"`
	SteadyBatches     int     `json:"steady_batches"`
	SteadyBatchSize   int     `json:"steady_batch_size"`
	SteadyLagSamples  int     `json:"steady_lag_samples"`
	SteadyLagRecsP50  float64 `json:"steady_lag_records_p50"`
	SteadyLagRecsP99  float64 `json:"steady_lag_records_p99"`
	SteadyLagSecsP50  float64 `json:"steady_lag_seconds_p50"`
	SteadyLagSecsP99  float64 `json:"steady_lag_seconds_p99"`
	WallNS            int64   `json:"wall_ns"`
}

// benchReplJournal is the minimal primary-side journal the benchmark
// needs: per-shard WAL appends mirrored into the engine, and barrier-
// height/snapshot support for follower bootstraps.
type benchReplJournal struct {
	mu     sync.Mutex
	engine *shard.Engine
	logs   []*wal.Log
	seq    uint64
}

func (j *benchReplJournal) NextBarrierSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

func (j *benchReplJournal) Snapshot() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	for i, l := range j.logs {
		i := i
		if err := l.Snapshot(func(w io.Writer) error {
			return shard.WriteShardSnapshot(j.engine, i, j.seq-1, w)
		}); err != nil {
			return err
		}
	}
	return nil
}

func (j *benchReplJournal) submit(rs []rating.Rating) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	byShard := make(map[int][]wal.Record, len(j.logs))
	split := make(map[int][]rating.Rating, len(j.logs))
	for _, r := range rs {
		s := j.engine.ShardFor(r.Object)
		byShard[s] = append(byShard[s], wal.RatingRecord(r))
		split[s] = append(split[s], r)
	}
	for s, recs := range byShard {
		if err := j.logs[s].AppendAll(recs); err != nil {
			return err
		}
		if err := j.engine.SubmitShard(s, split[s]); err != nil {
			return err
		}
	}
	return nil
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// measureReplication bootstraps a follower against an empty primary,
// then (1) times the follower streaming and applying an n-rating burst
// it watched land on the primary, and (2) samples the follower's lag
// while the primary ingests small paced batches.
func measureReplication(n int, seed int64) (ReplicationStats, error) {
	const shards = 2
	stats := ReplicationStats{Ratings: n, Shards: shards}

	dir, err := os.MkdirTemp("", "benchrepl")
	if err != nil {
		return stats, err
	}
	defer os.RemoveAll(dir)

	engine, err := shard.NewEngine(core.Config{}, shards)
	if err != nil {
		return stats, err
	}
	logs := make([]*wal.Log, shards)
	for i := range logs {
		if logs[i], _, err = wal.Open(wal.Options{
			Dir: filepath.Join(dir, fmt.Sprintf("shard-%04d", i)), Policy: wal.SyncNever,
		}); err != nil {
			return stats, err
		}
		defer logs[i].Close()
	}
	journal := &benchReplJournal{engine: engine, logs: logs, seq: 1}

	primary := repl.NewPrimary(repl.PrimaryConfig{
		Epoch: 1, Logs: logs, Journal: journal,
		LongPoll: 500 * time.Millisecond, Poll: 200 * time.Microsecond,
		Heartbeat: 50 * time.Millisecond,
	})
	mux := http.NewServeMux()
	primary.Routes(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	fengine, err := shard.NewEngine(core.Config{}, shards)
	if err != nil {
		return stats, err
	}
	follower := repl.NewFollower(repl.FollowerConfig{
		PrimaryURL:   ts.URL,
		Engine:       fengine,
		Seed:         seed,
		ReconnectMin: time.Millisecond,
		ReconnectMax: 50 * time.Millisecond,
		FrameTimeout: 5 * time.Second,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan struct{})
	go func() { defer close(runDone); _ = follower.Run(ctx) }()
	defer func() { follower.Stop(); <-runDone }()

	// Lag alone is not enough to detect convergence: right after a burst
	// lands on the primary, the follower's lag view is still the stale
	// pre-burst one (lag 0) until the next frame arrives. Gate on the
	// follower engine actually holding every submitted rating too.
	caughtUpTo := func(want int) func() bool {
		return func() bool {
			records, _, ok := follower.Lag()
			return ok && records == 0 && fengine.Len() == want
		}
	}
	waitUntil := func(what string, cond func() bool) error {
		deadline := time.Now().Add(2 * time.Minute)
		for time.Now().Before(deadline) {
			if cond() {
				return nil
			}
			time.Sleep(200 * time.Microsecond)
		}
		return fmt.Errorf("replication: timed out waiting for %s", what)
	}
	if err := waitUntil("bootstrap", caughtUpTo(0)); err != nil {
		return stats, err
	}

	// Catch-up: land the whole burst on the primary, then time until the
	// live follower has streamed and applied every record of it.
	rng := randx.New(seed)
	const chunk = 512
	rs := make([]rating.Rating, 0, chunk)
	began := time.Now()
	for i := 0; i < n; i++ {
		rs = append(rs, rating.Rating{
			Rater:  rating.RaterID(rng.Intn(512) + 1),
			Object: rating.ObjectID(rng.Intn(48)),
			Value:  rng.Float64(),
			Time:   rng.Float64() * 365,
		})
		if len(rs) == chunk {
			if err := journal.submit(rs); err != nil {
				return stats, err
			}
			rs = rs[:0]
		}
	}
	if err := journal.submit(rs); err != nil {
		return stats, err
	}
	if err := waitUntil("catch-up", caughtUpTo(n)); err != nil {
		got := fengine.Len()
		return stats, fmt.Errorf("%w (follower holds %d of %d ratings)", err, got, n)
	}
	wall := time.Since(began)
	stats.CatchupWallNS = wall.Nanoseconds()
	stats.CatchupRecsPerSec = float64(n) / wall.Seconds()
	stats.WallNS += wall.Nanoseconds()

	// Steady state: paced small batches, with a sampler reading the
	// follower's lag accounting throughout.
	const (
		steadyBatches = 200
		steadyBatch   = 64
		pace          = 500 * time.Microsecond
		sampleEvery   = 250 * time.Microsecond
	)
	stats.SteadyBatches, stats.SteadyBatchSize = steadyBatches, steadyBatch
	var lagRecs, lagSecs []float64
	sampleDone := make(chan struct{})
	stopSampling := make(chan struct{})
	go func() {
		defer close(sampleDone)
		t := time.NewTicker(sampleEvery)
		defer t.Stop()
		for {
			select {
			case <-stopSampling:
				return
			case <-t.C:
				records, seconds, ok := follower.Lag()
				if ok {
					lagRecs = append(lagRecs, float64(records))
					lagSecs = append(lagSecs, seconds)
				}
			}
		}
	}()
	began = time.Now()
	batch := make([]rating.Rating, steadyBatch)
	for b := 0; b < steadyBatches; b++ {
		for i := range batch {
			batch[i] = rating.Rating{
				Rater:  rating.RaterID(rng.Intn(512) + 1),
				Object: rating.ObjectID(rng.Intn(48)),
				Value:  rng.Float64(),
				Time:   rng.Float64() * 365,
			}
		}
		if err := journal.submit(batch); err != nil {
			return stats, err
		}
		time.Sleep(pace)
	}
	if err := waitUntil("steady-state drain", caughtUpTo(n+steadyBatches*steadyBatch)); err != nil {
		return stats, err
	}
	close(stopSampling)
	<-sampleDone
	stats.WallNS += time.Since(began).Nanoseconds()

	sort.Float64s(lagRecs)
	sort.Float64s(lagSecs)
	stats.SteadyLagSamples = len(lagRecs)
	stats.SteadyLagRecsP50 = percentile(lagRecs, 0.50)
	stats.SteadyLagRecsP99 = percentile(lagRecs, 0.99)
	stats.SteadyLagSecsP50 = percentile(lagSecs, 0.50)
	stats.SteadyLagSecsP99 = percentile(lagSecs, 0.99)
	return stats, nil
}
