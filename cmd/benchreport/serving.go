package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/randx"
	"repro/internal/rating"
	"repro/internal/server"
	"repro/internal/shard"
)

// ServingStats measures the HTTP serving layer introduced with the v1
// wire contract: bulk NDJSON streaming ingest against chunked unary
// POSTs (both over real loopback HTTP, 4 shards), and the read cache
// against recomputation on the aggregate endpoint (handler path, no
// socket, so the comparison isolates compute). CacheConformant
// records that every cached response byte-matched the uncached one
// before timing started.
type ServingStats struct {
	Ratings     int `json:"ratings"`
	Objects     int `json:"objects"`
	Shards      int `json:"shards"`
	StreamConns int `json:"stream_conns"`
	UnaryChunk  int `json:"unary_chunk"`
	Submitters  int `json:"submitters"`
	GOMAXPROCS  int `json:"gomaxprocs"`

	UnaryWallNS   int64   `json:"unary_wall_ns"`
	UnaryPerSec   float64 `json:"unary_ratings_per_sec"`
	StreamWallNS  int64   `json:"stream_wall_ns"`
	StreamPerSec  float64 `json:"stream_ratings_per_sec"`
	StreamSpeedup float64 `json:"stream_speedup"`

	UncachedReads   int     `json:"uncached_reads"`
	UncachedWallNS  int64   `json:"uncached_wall_ns"`
	UncachedPerSec  float64 `json:"uncached_reads_per_sec"`
	CachedReads     int     `json:"cached_reads"`
	CachedWallNS    int64   `json:"cached_wall_ns"`
	CachedPerSec    float64 `json:"cached_reads_per_sec"`
	CacheSpeedup    float64 `json:"cache_speedup"`
	CacheConformant bool    `json:"cache_conformant"`

	WallNS int64 `json:"wall_ns"`
}

// benchJournal adapts an engine+router pair to the server's Journal
// and AsyncSubmitter, mirroring the daemon's sharded wiring minus the
// WAL (this benchmark isolates protocol cost, not fsync cost).
type benchJournal struct {
	engine *shard.Engine
	router *shard.Router
}

func (j *benchJournal) SubmitAll(rs []rating.Rating) error { return j.router.Submit(rs) }

func (j *benchJournal) SubmitAsync(rs []rating.Rating) (func() error, error) {
	return j.router.SubmitAsync(rs)
}

func (j *benchJournal) ProcessWindow(start, end float64) (core.ProcessReport, error) {
	if err := j.router.Flush(); err != nil {
		return core.ProcessReport{}, err
	}
	return j.engine.ProcessWindow(start, end)
}

func (j *benchJournal) Restore(r io.Reader) error { return j.engine.LoadSnapshot(r) }

// newServingBackend builds a 4-shard engine fronted by a batching
// router and an HTTP server, the daemon's deployment shape.
func newServingBackend(shards int, opts ...server.Option) (*shard.Engine, *shard.Router, *httptest.Server, error) {
	engine, err := shard.NewEngine(core.Config{}, shards)
	if err != nil {
		return nil, nil, nil, err
	}
	router, err := shard.NewRouter(shard.RouterConfig{
		Shards: shards, BatchSize: 256, Flush: engine.SubmitShard,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	j := &benchJournal{engine: engine, router: router}
	srv, err := server.NewWith(engine, append([]server.Option{server.WithJournal(j)}, opts...)...)
	if err != nil {
		router.Close()
		return nil, nil, nil, err
	}
	return engine, router, httptest.NewServer(srv), nil
}

// measureServing times the streaming-vs-unary ingest paths and the
// cached-vs-uncached read path.
func measureServing(n int, seed int64) (ServingStats, error) {
	const (
		objects     = 8 // few objects -> long histories -> real aggregate cost
		raters      = 512
		shards      = 4
		unaryChunk  = 16
		submitters  = 32
		streamConns = 4
		readReqs    = 20000
		readBudget  = 3 * time.Second // cap per read loop; uncached recompute is slow by design
	)
	stats := ServingStats{
		Ratings: n, Objects: objects, Shards: shards,
		StreamConns: streamConns, UnaryChunk: unaryChunk, Submitters: submitters,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	rng := randx.New(seed)
	rs := make([]rating.Rating, n)
	for i := range rs {
		// Client-shaped precision: scores on a millistep grid and times
		// at microday (~0.1s) granularity, the decimal widths real
		// submitters produce — not the 17-significant-digit artifacts of
		// a raw Float64, which no rating client emits.
		rs[i] = rating.Rating{
			Rater:  rating.RaterID(rng.Intn(raters) + 1),
			Object: rating.ObjectID(rng.Intn(objects)),
			Value:  math.Round(rng.Float64()*1000) / 1000,
			Time:   math.Round(rng.Float64()*365*1e6) / 1e6,
		}
	}
	ctx := context.Background()

	// --- Unary ingest: concurrent chunked POSTs of JSON arrays. ---
	engine, router, ts, err := newServingBackend(shards)
	if err != nil {
		return stats, err
	}
	client := server.NewClient(ts.URL, ts.Client())
	payloads := make([]server.RatingPayload, n)
	for i, r := range rs {
		payloads[i] = server.RatingPayload{
			Rater: int(r.Rater), Object: int(r.Object), Value: r.Value, Time: r.Time,
		}
	}
	runtime.GC()
	began := time.Now()
	var next atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, submitters)
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				lo := int(next.Add(unaryChunk)) - unaryChunk
				if lo >= n {
					return
				}
				hi := min(lo+unaryChunk, n)
				if _, err := client.Submit(ctx, payloads[lo:hi]); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := router.Flush(); err != nil {
		return stats, err
	}
	unaryWall := time.Since(began)
	ts.Close()
	if err := router.Close(); err != nil {
		return stats, err
	}
	for _, err := range errs {
		if err != nil {
			return stats, err
		}
	}
	if got := engine.Len(); got != n {
		return stats, fmt.Errorf("unary ingest applied %d of %d", got, n)
	}
	stats.UnaryWallNS = unaryWall.Nanoseconds()
	stats.UnaryPerSec = float64(n) / unaryWall.Seconds()

	// --- Streaming ingest: the same ratings as NDJSON over a few
	// persistent connections. Bodies are rendered untimed. ---
	bodies := make([]*bytes.Reader, streamConns)
	per := (n + streamConns - 1) / streamConns
	for c := 0; c < streamConns; c++ {
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		lo, hi := c*per, min((c+1)*per, n)
		for _, p := range payloads[lo:hi] {
			if err := enc.Encode(p); err != nil {
				return stats, err
			}
		}
		bodies[c] = bytes.NewReader(buf.Bytes())
	}
	engine, router, ts, err = newServingBackend(shards)
	if err != nil {
		return stats, err
	}
	client = server.NewClient(ts.URL, ts.Client())
	runtime.GC()
	began = time.Now()
	streamErrs := make([]error, streamConns)
	var swg sync.WaitGroup
	for c := 0; c < streamConns; c++ {
		swg.Add(1)
		go func(c int) {
			defer swg.Done()
			sum, rejects, err := client.SubmitStream(ctx, bodies[c])
			if err != nil {
				streamErrs[c] = err
				return
			}
			if len(rejects) != 0 || sum.Accepted != sum.Lines {
				streamErrs[c] = fmt.Errorf("stream conn %d: summary %+v, %d rejects", c, sum, len(rejects))
			}
		}(c)
	}
	swg.Wait()
	if err := router.Flush(); err != nil {
		return stats, err
	}
	streamWall := time.Since(began)
	ts.Close()
	if err := router.Close(); err != nil {
		return stats, err
	}
	for _, err := range streamErrs {
		if err != nil {
			return stats, err
		}
	}
	if got := engine.Len(); got != n {
		return stats, fmt.Errorf("stream ingest applied %d of %d", got, n)
	}
	stats.StreamWallNS = streamWall.Nanoseconds()
	stats.StreamPerSec = float64(n) / streamWall.Seconds()
	stats.StreamSpeedup = unaryWall.Seconds() / streamWall.Seconds()

	// --- Read path: cached vs uncached aggregates over the ingested
	// state. Handler-level (no socket), isolating recompute cost. ---
	if _, err := engine.ProcessWindow(0, 365); err != nil {
		return stats, err
	}
	uncachedSrv, err := server.NewWith(engine, server.WithReadCache(-1))
	if err != nil {
		return stats, err
	}
	cachedSrv, err := server.NewWith(engine)
	if err != nil {
		return stats, err
	}
	get := func(s *server.Server, obj int) (int, []byte) {
		req := httptest.NewRequest("GET", fmt.Sprintf("/v1/objects/%d/aggregate", obj), nil)
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		return w.Code, w.Body.Bytes()
	}
	// Conformance gate before timing: cached answers must byte-match.
	stats.CacheConformant = true
	for obj := 0; obj < objects; obj++ {
		cu, bu := get(uncachedSrv, obj)
		cc, bc := get(cachedSrv, obj) // fill
		cc2, bc2 := get(cachedSrv, obj)
		if cu != cc || cc != cc2 || !bytes.Equal(bu, bc) || !bytes.Equal(bu, bc2) {
			stats.CacheConformant = false
			return stats, fmt.Errorf("object %d: cached response diverges (%d/%d/%d)", obj, cu, cc, cc2)
		}
	}
	// Each loop runs up to readReqs requests within a wall budget — the
	// uncached side recomputes the full aggregate per request, so at
	// long histories it measures far fewer iterations. Rates are
	// per-iteration-honest either way.
	bench := func(s *server.Server) (time.Duration, int) {
		runtime.GC()
		began := time.Now()
		i := 0
		for ; i < readReqs; i++ {
			if code, _ := get(s, i%objects); code != 200 {
				panic(fmt.Sprintf("read returned %d", code))
			}
			if i%objects == objects-1 && time.Since(began) > readBudget {
				i++
				break
			}
		}
		return time.Since(began), i
	}
	uncachedWall, uncachedReads := bench(uncachedSrv)
	cachedWall, cachedReads := bench(cachedSrv)
	stats.UncachedReads = uncachedReads
	stats.UncachedWallNS = uncachedWall.Nanoseconds()
	stats.UncachedPerSec = float64(uncachedReads) / uncachedWall.Seconds()
	stats.CachedReads = cachedReads
	stats.CachedWallNS = cachedWall.Nanoseconds()
	stats.CachedPerSec = float64(cachedReads) / cachedWall.Seconds()
	stats.CacheSpeedup = stats.CachedPerSec / stats.UncachedPerSec

	stats.WallNS = stats.UnaryWallNS + stats.StreamWallNS + stats.UncachedWallNS + stats.CachedWallNS
	return stats, nil
}
