package main

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/randx"
	"repro/internal/rating"
	"repro/internal/shard"
	"repro/internal/sim"
)

// The streaming-detection section answers two questions about the
// -stream-detect path. How much earlier does the online detector raise
// a campaign than batch maintenance windows do (detection latency, in
// rating-days, per adversary-zoo strategy)? And what does keeping it on
// cost at ingest (throughput with streaming enabled versus the same
// engine without it)?
//
// The latency runs are deterministic: one shard means one pump
// consuming time-ordered batches FIFO from a single submitter, so
// alert times are a pure function of the seed. Both paths see the
// identical combined workload and the identical count-window detector
// configuration; the batch side closes sequential 10-day maintenance
// windows the way matrixRun does, so its latency quantizes to window
// ends while the streaming side can alert mid-window — the gap is the
// section's headline number.

// Zoo campaign shape shared by every latency run. The background is
// sim.DefaultZoo (honest variance 0.05); the campaign's tight variance
// is the paper's low-error signature the AR detector keys on.
const (
	slAStart    = 20
	slAEnd      = 44
	slRate      = 4
	slBias      = 0.35
	slVariance  = 0.005
	slColluders = 8

	slWindowDays = 10
	slWindows    = 6

	// Count-window detector shared by both paths. The threshold is
	// calibrated on the default zoo background the same way
	// zooARThreshold is on the matrix background: below the honest
	// bulk's window error, so honest windows never charge.
	slSize      = 30
	slStep      = 15
	slThreshold = 0.15

	// slAlertThreshold is the accrued stream suspicion at which a
	// rater alerts.
	slAlertThreshold = 0.3
)

// StreamingStats is the report section.
type StreamingStats struct {
	Latency []StreamLatencyStats `json:"latency,omitempty"`
	Ingest  *StreamIngestStats   `json:"ingest,omitempty"`
	WallNS  int64                `json:"wall_ns"`
}

// StreamLatencyStats is one attack strategy's streaming-versus-batch
// detection latency, in days after campaign onset. Undetected runs are
// censored at the remaining horizon.
type StreamLatencyStats struct {
	Attack            string  `json:"attack"`
	StreamDetected    bool    `json:"stream_detected"`
	StreamLatencyDays float64 `json:"stream_latency_days"`
	BatchDetected     bool    `json:"batch_detected"`
	BatchLatencyDays  float64 `json:"batch_latency_days"`
	// LeadDays is batch latency minus stream latency: how many
	// rating-days of early warning the online path buys.
	LeadDays float64 `json:"lead_days"`
}

// StreamIngestStats compares ingest throughput through the batching
// router at 4 shards with streaming detection enabled against the same
// engine without it. The timed region is submit-to-flush — the ack
// path; detection drains asynchronously, and DrainWallNS records how
// long the pumps took to finish after ingest stopped.
type StreamIngestStats struct {
	Ratings               int     `json:"ratings"`
	Shards                int     `json:"shards"`
	GOMAXPROCS            int     `json:"gomaxprocs"`
	BaselineWallNS        int64   `json:"baseline_wall_ns"`
	BaselineRatingsPerSec float64 `json:"baseline_ratings_per_sec"`
	StreamWallNS          int64   `json:"stream_wall_ns"`
	StreamRatingsPerSec   float64 `json:"stream_ratings_per_sec"`
	OverheadPercent       float64 `json:"overhead_percent"`
	DrainWallNS           int64   `json:"drain_wall_ns"`
	Pushed                int64   `json:"pushed"`
	LateDropped           int64   `json:"late_dropped"`
	Shed                  int64   `json:"shed"`
	Alerts                int     `json:"alerts"`
}

// slStrategies maps the CLI names to zoo strategies with their free
// knobs tuned to the default zoo background (honest phases mimic its
// variance, not the illustrative workload's).
func slStrategies() map[string]attack.Strategy {
	v := sim.DefaultZoo().GoodVar
	m := make(map[string]attack.Strategy)
	for _, s := range []attack.Strategy{
		attack.Constant{},
		attack.Camouflage{HonestVariance: v},
		attack.OnOff{BurstDays: 3, SleepDays: 3},
		attack.Ramp{},
		attack.TrustThenStrike{BuildRatio: 0.5, HonestVariance: v},
		attack.Sybil{},
		attack.Whitewash{IdentityRatings: 3},
		attack.RotatingTarget{},
		attack.Oscillate{HonestDays: 4, AttackDays: 4, HonestVariance: v},
	} {
		m[s.Name()] = s
	}
	return m
}

func slDetector() detector.Config {
	return detector.Config{Size: slSize, Step: slStep, Threshold: slThreshold}
}

// measureStreamLatency runs the latency comparison for each named
// attack.
func measureStreamLatency(names []string, seed int64) ([]StreamLatencyStats, error) {
	zoo := slStrategies()
	out := make([]StreamLatencyStats, 0, len(names))
	for i, name := range names {
		strat, ok := zoo[name]
		if !ok {
			known := make([]string, 0, len(zoo))
			for k := range zoo {
				known = append(known, k)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("unknown attack %q (known: %v)", name, known)
		}
		stats, err := streamLatencyOne(strat, randx.Derive(seed, i))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		out = append(out, stats)
	}
	return out, nil
}

func streamLatencyOne(strat attack.Strategy, seed int64) (StreamLatencyStats, error) {
	trace, err := sim.GenerateZoo(randx.DeriveRand(seed, 0), sim.DefaultZoo())
	if err != nil {
		return StreamLatencyStats{}, err
	}
	campaign, err := strat.Plan(randx.Derive(seed, 1), attack.Params{
		Object:    1,
		Targets:   trace.ObjectIDs(),
		Start:     slAStart,
		End:       slAEnd,
		Rate:      slRate,
		Bias:      slBias,
		Variance:  slVariance,
		Levels:    trace.Params.RLevels,
		Colluders: slColluders,
	}, trace.QualityOf)
	if err != nil {
		return StreamLatencyStats{}, err
	}
	combined := append(append([]sim.LabeledRating(nil), trace.Ratings...), campaign...)
	sim.SortByTime(combined)
	malicious := make(map[rating.RaterID]bool)
	for _, l := range campaign {
		if l.Unfair {
			malicious[l.Rating.Rater] = true
		}
	}
	rs := sim.Ratings(combined)

	horizon := float64(slWindows * slWindowDays)
	stats := StreamLatencyStats{
		Attack:            strat.Name(),
		StreamLatencyDays: horizon - slAStart, // censored until detected
		BatchLatencyDays:  horizon - slAStart,
	}

	// Batch side: sequential maintenance windows, latency quantized to
	// the first window end that flags a true campaign identity.
	sys, err := core.NewSystem(core.Config{Detector: slDetector()})
	if err != nil {
		return StreamLatencyStats{}, err
	}
	if err := sys.SubmitAll(rs); err != nil {
		return StreamLatencyStats{}, err
	}
	for k := 0; k < slWindows && !stats.BatchDetected; k++ {
		start, end := float64(k*slWindowDays), float64((k+1)*slWindowDays)
		if _, err := sys.ProcessWindow(start, end); err != nil {
			return StreamLatencyStats{}, err
		}
		for _, id := range sys.MaliciousRaters() {
			if malicious[id] {
				stats.BatchDetected = true
				stats.BatchLatencyDays = end - slAStart
				break
			}
		}
	}

	// Streaming side: one shard, one submitter, time-ordered chunks —
	// alert times are deterministic.
	engine, err := shard.NewEngine(core.Config{Detector: slDetector()}, 1)
	if err != nil {
		return StreamLatencyStats{}, err
	}
	st, err := engine.EnableStreaming(shard.StreamConfig{
		Detector:       slDetector(),
		AlertThreshold: slAlertThreshold,
	})
	if err != nil {
		return StreamLatencyStats{}, err
	}
	const chunk = 256
	for lo := 0; lo < len(rs); lo += chunk {
		hi := lo + chunk
		if hi > len(rs) {
			hi = len(rs)
		}
		if err := engine.SubmitShard(0, rs[lo:hi]); err != nil {
			return StreamLatencyStats{}, err
		}
	}
	st.Sync()
	st.Close()
	alerts, _ := st.Alerts().Alerts(0)
	for _, a := range alerts {
		if !malicious[a.Rater] {
			continue
		}
		lat := a.FirstFlagged - slAStart
		if lat < 0 {
			lat = 0
		}
		if !stats.StreamDetected || lat < stats.StreamLatencyDays {
			stats.StreamLatencyDays = lat
		}
		stats.StreamDetected = true
	}
	stats.LeadDays = stats.BatchLatencyDays - stats.StreamLatencyDays
	return stats, nil
}

// measureStreamIngest times the same time-ordered rating stream
// through the batching router at 4 shards, once without streaming and
// once with it enabled — the live -stream-detect regime, where arrival
// order is rating-clock order.
func measureStreamIngest(n int, seed int64) (StreamIngestStats, error) {
	const (
		shards      = 4
		objects     = 48
		raters      = 512
		batchSize   = 256
		submitChunk = 256
		submitters  = 32
	)
	rng := randx.New(seed)
	rs := make([]rating.Rating, n)
	for i := range rs {
		rs[i] = rating.Rating{
			Rater:  rating.RaterID(rng.Intn(raters) + 1),
			Object: rating.ObjectID(rng.Intn(objects)),
			Value:  rng.Float64(),
			// Strictly increasing event time: the streaming regime.
			Time: float64(i) * 365 / float64(n),
		}
	}
	stats := StreamIngestStats{
		Ratings: n, Shards: shards,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	ingest := func(streaming bool) (time.Duration, error) {
		engine, err := shard.NewEngine(core.Config{}, shards)
		if err != nil {
			return 0, err
		}
		var st *shard.Streaming
		if streaming {
			if st, err = engine.EnableStreaming(shard.StreamConfig{
				AlertThreshold: slAlertThreshold,
			}); err != nil {
				return 0, err
			}
		}
		router, err := shard.NewRouter(shard.RouterConfig{
			Shards:    shards,
			BatchSize: batchSize,
			Flush:     engine.SubmitShard,
		})
		if err != nil {
			return 0, err
		}
		runtime.GC()
		began := time.Now()
		var next atomic.Int64
		var wg sync.WaitGroup
		errs := make([]error, submitters)
		for w := 0; w < submitters; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for {
					lo := int(next.Add(submitChunk)) - submitChunk
					if lo >= n {
						return
					}
					hi := lo + submitChunk
					if hi > n {
						hi = n
					}
					if err := router.Submit(rs[lo:hi]); err != nil {
						errs[w] = err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		if err := router.Flush(); err != nil {
			return 0, err
		}
		wall := time.Since(began)
		if err := router.Close(); err != nil {
			return 0, err
		}
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
		if got := engine.Len(); got != n {
			return 0, fmt.Errorf("streaming=%v: ingested %d of %d ratings", streaming, got, n)
		}
		if st != nil {
			drainBegan := time.Now()
			st.Sync()
			stats.DrainWallNS = time.Since(drainBegan).Nanoseconds()
			st.Close()
			ss := st.Stats()
			stats.Pushed = ss.Pushed
			stats.LateDropped = ss.LateDropped
			stats.Shed = ss.Shed
			stats.Alerts = ss.Alerts
		}
		return wall, nil
	}

	// Warm up once, then measure baseline and streaming.
	if _, err := ingest(false); err != nil {
		return stats, err
	}
	base, err := ingest(false)
	if err != nil {
		return stats, err
	}
	stream, err := ingest(true)
	if err != nil {
		return stats, err
	}
	stats.BaselineWallNS = base.Nanoseconds()
	stats.BaselineRatingsPerSec = float64(n) / base.Seconds()
	stats.StreamWallNS = stream.Nanoseconds()
	stats.StreamRatingsPerSec = float64(n) / stream.Seconds()
	stats.OverheadPercent = 100 * (stream.Seconds() - base.Seconds()) / base.Seconds()
	return stats, nil
}
