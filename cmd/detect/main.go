// Command detect runs the AR signal-modeling detector (Procedure 1)
// over a rating trace and reports suspicious windows and rater
// suspicion.
//
//	detect -in trace.csv                        # ratesim CSV
//	detect -in mv_0000001.txt -format netflix   # Netflix Prize per-movie file
//	ratesim -scenario illustrative | detect -threshold 0.105
//
// The CSV format is ratesim's: a header row, then
// time,rater,object,value[,...]; extra columns are ignored. Multiple
// objects are detected independently and rater suspicion is merged
// across them, as the paper prescribes.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"

	"repro/internal/detector"
	"repro/internal/netflix"
	"repro/internal/rating"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "detect:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("detect", flag.ContinueOnError)
	var (
		in        = fs.String("in", "-", "input file (\"-\" for stdin)")
		format    = fs.String("format", "csv", "csv (ratesim) or netflix (per-movie file)")
		size      = fs.Int("size", 50, "ratings per window (count mode)")
		step      = fs.Int("step", 25, "window step in ratings")
		order     = fs.Int("order", 4, "AR model order")
		threshold = fs.Float64("threshold", 0.105, "model-error threshold")
		timeMode  = fs.Bool("time", false, "use time windows instead of count windows")
		whiteness = fs.Bool("whiteness", false, "use the Ljung-Box whiteness baseline detector instead of the AR detector")
		alpha     = fs.Float64("alpha", 0.05, "whiteness significance level (with -whiteness)")
		width     = fs.Float64("width", 10, "window width in days (time mode)")
		timeStep  = fs.Float64("timestep", 5, "window step in days (time mode)")
		topN      = fs.Int("top", 10, "how many most-suspicious raters to print")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var reader io.Reader = stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		reader = f
	}

	byObject, err := load(reader, *format)
	if err != nil {
		return err
	}

	cfg := detector.Config{
		Mode:      detector.WindowByCount,
		Size:      *size,
		Step:      *step,
		Order:     *order,
		Threshold: *threshold,
		Scale:     1,
	}
	if *timeMode {
		cfg.Mode = detector.WindowByTime
		cfg.Width = *width
		cfg.TimeStep = *timeStep
	}

	objects := make([]rating.ObjectID, 0, len(byObject))
	for obj := range byObject {
		objects = append(objects, obj)
	}
	sort.Slice(objects, func(i, j int) bool { return objects[i] < objects[j] })

	var reports []detector.Report
	for _, obj := range objects {
		rs := byObject[obj]
		rating.SortByTime(rs)
		var (
			rep detector.Report
			err error
		)
		if *whiteness {
			rep, err = detector.DetectWhiteness(rs, detector.WhitenessConfig{Config: cfg, Alpha: *alpha})
		} else {
			rep, err = detector.Detect(rs, cfg)
		}
		if err != nil {
			return fmt.Errorf("object %d: %w", obj, err)
		}
		reports = append(reports, rep)
		fmt.Fprintf(out, "object %d: %d ratings, %d windows\n", obj, len(rs), len(rep.Windows))
		for _, w := range rep.Windows {
			if !w.Fitted {
				continue
			}
			mark := " "
			if w.Suspicious {
				mark = "*"
			}
			fmt.Fprintf(out, "  window %2d [%8.2f, %8.2f) n=%-4d err=%.4f %s\n",
				w.Window.Index, w.Window.Start, w.Window.End, len(w.Window.Ratings),
				w.Model.NormalizedError, mark)
		}
	}

	merged := detector.Merge(reports...)
	type entry struct {
		id rating.RaterID
		s  detector.RaterStats
	}
	var entries []entry
	for id, s := range merged {
		if s.Suspicion > 0 {
			entries = append(entries, entry{id, s})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].s.Suspicion != entries[j].s.Suspicion {
			return entries[i].s.Suspicion > entries[j].s.Suspicion
		}
		return entries[i].id < entries[j].id
	})
	fmt.Fprintf(out, "\n%d raters with nonzero suspicion; top %d:\n", len(entries), *topN)
	for i, e := range entries {
		if i >= *topN {
			break
		}
		fmt.Fprintf(out, "  rater %-8d C=%.3f suspicious=%d/%d ratings\n",
			e.id, e.s.Suspicion, e.s.SuspiciousRatings, e.s.TotalRatings)
	}
	return nil
}

func load(r io.Reader, format string) (map[rating.ObjectID][]rating.Rating, error) {
	switch format {
	case "netflix":
		movie, err := netflix.ParseMovie(r)
		if err != nil {
			return nil, err
		}
		return map[rating.ObjectID][]rating.Rating{
			rating.ObjectID(movie.ID): movie.Ratings,
		}, nil
	case "csv":
		return loadCSV(r)
	default:
		return nil, fmt.Errorf("unknown format %q", format)
	}
}

func loadCSV(r io.Reader) (map[rating.ObjectID][]rating.Rating, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("no data rows")
	}
	out := make(map[rating.ObjectID][]rating.Rating)
	for i, row := range rows[1:] {
		if len(row) < 4 {
			return nil, fmt.Errorf("row %d: want at least 4 columns, got %d", i+2, len(row))
		}
		tm, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			return nil, fmt.Errorf("row %d time: %w", i+2, err)
		}
		rater, err := strconv.Atoi(row[1])
		if err != nil {
			return nil, fmt.Errorf("row %d rater: %w", i+2, err)
		}
		object, err := strconv.Atoi(row[2])
		if err != nil {
			return nil, fmt.Errorf("row %d object: %w", i+2, err)
		}
		value, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			return nil, fmt.Errorf("row %d value: %w", i+2, err)
		}
		rt := rating.Rating{
			Rater:  rating.RaterID(rater),
			Object: rating.ObjectID(object),
			Value:  value,
			Time:   tm,
		}
		if err := rt.Validate(); err != nil {
			return nil, fmt.Errorf("row %d: %w", i+2, err)
		}
		out[rt.Object] = append(out[rt.Object], rt)
	}
	return out, nil
}
