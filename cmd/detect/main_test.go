package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

const traceCSV = `time,rater,object,value,class,unfair
0.5,1,1,0.7,reliable,false
1.5,2,1,0.7,reliable,false
2.5,3,1,0.7,reliable,false
3.5,4,1,0.7,reliable,false
4.5,5,1,0.7,reliable,false
5.5,6,1,0.7,reliable,false
6.5,7,1,0.7,reliable,false
7.5,8,1,0.7,reliable,false
8.5,9,1,0.7,reliable,false
9.5,10,1,0.7,reliable,false
10.5,11,1,0.7,reliable,false
11.5,12,1,0.7,reliable,false
`

const netflixFile = `1:
101,3,2004-01-01
102,4,2004-01-02
103,3,2004-01-03
104,4,2004-01-04
105,3,2004-01-05
106,4,2004-01-06
107,3,2004-01-07
108,4,2004-01-08
109,3,2004-01-09
110,4,2004-01-10
`

func TestDetectFromStdinCSV(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-size", "10", "-step", "5", "-order", "2", "-threshold", "0.5"},
		strings.NewReader(traceCSV), &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "object 1: 12 ratings") {
		t.Fatalf("output:\n%s", got)
	}
	// Constant ratings: windows must be flagged and every rater listed.
	if !strings.Contains(got, "*") {
		t.Fatalf("no suspicious window marked:\n%s", got)
	}
	if !strings.Contains(got, "raters with nonzero suspicion") {
		t.Fatalf("no suspicion summary:\n%s", got)
	}
}

func TestDetectFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.csv")
	if err := os.WriteFile(path, []byte(traceCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-size", "10", "-step", "10", "-order", "2", "-threshold", "0.5"}, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "object 1") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestDetectNetflixFormat(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-format", "netflix", "-size", "10", "-step", "10", "-order", "2", "-threshold", "0.9"},
		strings.NewReader(netflixFile), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "object 1: 10 ratings") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestDetectTimeMode(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-time", "-width", "6", "-timestep", "3", "-order", "2", "-threshold", "0.5"},
		strings.NewReader(traceCSV), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "windows") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestDetectErrors(t *testing.T) {
	cases := []struct {
		name  string
		args  []string
		stdin string
	}{
		{"unknown format", []string{"-format", "xml"}, traceCSV},
		{"missing file", []string{"-in", "/does/not/exist"}, ""},
		{"empty csv", nil, "time,rater,object,value\n"},
		{"short row", nil, "h\n1,2\n"},
		{"bad time", nil, "time,rater,object,value\nx,1,1,0.5\n"},
		{"bad rater", nil, "time,rater,object,value\n1,x,1,0.5\n"},
		{"bad object", nil, "time,rater,object,value\n1,1,x,0.5\n"},
		{"bad value", nil, "time,rater,object,value\n1,1,1,x\n"},
		{"out-of-range value", nil, "time,rater,object,value\n1,1,1,7\n"},
		{"bad netflix", []string{"-format", "netflix"}, "garbage"},
		{"bad flag", []string{"-nope"}, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(c.args, strings.NewReader(c.stdin), &out); err == nil {
				t.Fatalf("no error for %s", c.name)
			}
		})
	}
}

func TestDetectMultipleObjects(t *testing.T) {
	csv := "time,rater,object,value\n"
	for i := 0; i < 12; i++ {
		csv += strings.Join([]string{
			// object 1 constant, object 2 constant; both flaggable
			f(float64(i)), itoa(i), "1", "0.8",
		}, ",") + "\n"
		csv += strings.Join([]string{
			f(float64(i)), itoa(100 + i), "2", "0.3",
		}, ",") + "\n"
	}
	var out bytes.Buffer
	err := run([]string{"-size", "10", "-step", "10", "-order", "2", "-threshold", "0.5"},
		strings.NewReader(csv), &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "object 1") || !strings.Contains(got, "object 2") {
		t.Fatalf("missing per-object output:\n%s", got)
	}
}

func f(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }
func itoa(v int) string  { return strconv.Itoa(v) }

func TestDetectWhitenessFlag(t *testing.T) {
	// An oscillating stream is the whiteness detector's home turf.
	csv := "time,rater,object,value\n"
	for i := 0; i < 120; i++ {
		v := "0.3"
		if (i/15)%2 == 0 {
			v = "0.8"
		}
		csv += f(float64(i)) + "," + itoa(i) + ",1," + v + "\n"
	}
	var out bytes.Buffer
	err := run([]string{"-whiteness", "-size", "60", "-step", "30"},
		strings.NewReader(csv), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "*") {
		t.Fatalf("oscillation not flagged by whiteness detector:\n%s", out.String())
	}
}
