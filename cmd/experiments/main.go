// Command experiments regenerates the paper's tables and figures.
//
//	experiments -list
//	experiments -run fig4
//	experiments -run all -mode full -csv out/
//
// Each experiment prints a text report (paper claim, measured headline
// numbers, series/tables); -csv additionally writes every series and
// table as CSV for plotting.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		list   = fs.Bool("list", false, "list experiment IDs and exit")
		runID  = fs.String("run", "all", "experiment ID to run, or \"all\"")
		seed   = fs.Int64("seed", 1, "top-level random seed")
		mode   = fs.String("mode", "full", "fidelity: full or quick")
		csvDir = fs.String("csv", "", "directory to write CSV artifacts into (optional)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Fprintln(out, id)
		}
		return nil
	}

	var m experiments.Mode
	switch *mode {
	case "full":
		m = experiments.Full
	case "quick":
		m = experiments.Quick
	default:
		return fmt.Errorf("unknown mode %q (want full or quick)", *mode)
	}

	ids := []string{*runID}
	if *runID == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		res, err := experiments.Run(id, *seed, m)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if err := experiments.RenderText(out, res); err != nil {
			return err
		}
		fmt.Fprintln(out)
		if *csvDir != "" {
			if err := experiments.WriteCSV(*csvDir, res); err != nil {
				return err
			}
		}
	}
	return nil
}
