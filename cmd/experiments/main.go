// Command experiments regenerates the paper's tables and figures.
//
//	experiments -list
//	experiments -run fig4
//	experiments -run all -mode full -csv out/
//	experiments -run all -mode quick -workers 4
//	experiments -exp matrix -mode quick
//
// Each experiment prints a text report (paper claim, measured headline
// numbers, series/tables); -csv additionally writes every series and
// table as CSV for plotting. Monte-Carlo experiments fan out over
// -workers goroutines (0 = GOMAXPROCS); results are bit-identical for
// every worker count, so the flag only changes wall-clock time. The
// per-experiment wall times and the effective worker count are printed
// to stderr so stdout stays deterministic.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/parallel"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out, summary io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		list    = fs.Bool("list", false, "list experiment IDs and exit")
		runID   = fs.String("run", "all", "experiment ID to run, or \"all\"")
		expID   = fs.String("exp", "", "alias for -run")
		seed    = fs.Int64("seed", 1, "top-level random seed")
		mode    = fs.String("mode", "full", "fidelity: full or quick")
		csvDir  = fs.String("csv", "", "directory to write CSV artifacts into (optional)")
		workers = fs.Int("workers", 0, "Monte-Carlo worker goroutines (0 = GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *expID != "" {
		*runID = *expID
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Fprintln(out, id)
		}
		return nil
	}

	var m experiments.Mode
	switch *mode {
	case "full":
		m = experiments.Full
	case "quick":
		m = experiments.Quick
	default:
		return fmt.Errorf("unknown mode %q (want full or quick)", *mode)
	}

	opt := experiments.Options{Workers: *workers}
	fmt.Fprintf(summary, "workers: %d\n", parallel.Workers(*workers))

	ids := []string{*runID}
	if *runID == "all" {
		ids = experiments.IDs()
	}
	total := time.Duration(0)
	for _, id := range ids {
		began := time.Now()
		res, err := experiments.RunWith(id, *seed, m, opt)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		elapsed := time.Since(began)
		total += elapsed
		fmt.Fprintf(summary, "%-20s %12s\n", id, elapsed.Round(time.Microsecond))
		if err := experiments.RenderText(out, res); err != nil {
			return err
		}
		fmt.Fprintln(out)
		if *csvDir != "" {
			if err := experiments.WriteCSV(*csvDir, res); err != nil {
				return err
			}
		}
	}
	fmt.Fprintf(summary, "%-20s %12s\n", "total", total.Round(time.Microsecond))
	return nil
}
