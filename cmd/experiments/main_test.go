package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListFlag(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fig4") || !strings.Contains(buf.String(), "tab2") {
		t.Fatalf("list output:\n%s", buf.String())
	}
}

func TestRunQuickSingle(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-run", "tab2", "-mode", "quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "modified-weighted-average") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-run", "fig2", "-mode", "quick", "-csv", dir}, io.Discard); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no CSV written")
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".csv" {
			t.Fatalf("unexpected artifact %s", e.Name())
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "fig99", "-mode", "quick"}, io.Discard); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestUnknownMode(t *testing.T) {
	if err := run([]string{"-run", "tab2", "-mode", "turbo"}, io.Discard); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}, io.Discard); err == nil {
		t.Fatal("bad flag accepted")
	}
}
