package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListFlag(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-list"}, &buf, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fig4") || !strings.Contains(buf.String(), "tab2") {
		t.Fatalf("list output:\n%s", buf.String())
	}
}

func TestRunQuickSingle(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-run", "tab2", "-mode", "quick"}, &buf, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "modified-weighted-average") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-run", "fig2", "-mode", "quick", "-csv", dir}, io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no CSV written")
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".csv" {
			t.Fatalf("unexpected artifact %s", e.Name())
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "fig99", "-mode", "quick"}, io.Discard, io.Discard); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestUnknownMode(t *testing.T) {
	if err := run([]string{"-run", "tab2", "-mode", "turbo"}, io.Discard, io.Discard); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}, io.Discard, io.Discard); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestWorkersFlagAndSummary(t *testing.T) {
	var out, summary strings.Builder
	if err := run([]string{"-run", "tab2", "-mode", "quick", "-workers", "3"}, &out, &summary); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summary.String(), "workers: 3") {
		t.Fatalf("summary missing worker count:\n%s", summary.String())
	}
	if !strings.Contains(summary.String(), "tab2") || !strings.Contains(summary.String(), "total") {
		t.Fatalf("summary missing wall times:\n%s", summary.String())
	}
	if strings.Contains(out.String(), "workers:") {
		t.Fatal("summary leaked into stdout")
	}
}

func TestWorkersInvariance(t *testing.T) {
	render := func(workers string) string {
		var out strings.Builder
		if err := run([]string{"-run", "tab1", "-mode", "quick", "-seed", "7", "-workers", workers}, &out, io.Discard); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	if render("1") != render("4") {
		t.Fatal("tab1 output differs between 1 and 4 workers")
	}
}
