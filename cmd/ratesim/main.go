// Command ratesim generates synthetic rating traces with ground-truth
// labels — the paper's two evaluation workloads plus the Netflix-like
// movie trace — as CSV on stdout.
//
//	ratesim -scenario illustrative -seed 1 > trace.csv
//	ratesim -scenario illustrative -attack=false
//	ratesim -scenario marketplace -months 6
//	ratesim -scenario movie -days 700
//
// CSV columns: time,rater,object,value,class,unfair.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/internal/netflix"
	"repro/internal/randx"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ratesim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ratesim", flag.ContinueOnError)
	var (
		scenario = fs.String("scenario", "illustrative", "illustrative, marketplace or movie")
		seed     = fs.Int64("seed", 1, "random seed")
		attack   = fs.Bool("attack", true, "include collaborative raters (illustrative/movie)")
		months   = fs.Int("months", 12, "marketplace months")
		days     = fs.Int("days", 700, "movie trace days")
		bias     = fs.Float64("bias", 0, "override biasShift2 (0 = paper default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rng := randx.New(*seed)

	var labeled []sim.LabeledRating
	switch *scenario {
	case "illustrative":
		p := sim.DefaultIllustrative()
		p.Attack = *attack
		if *bias != 0 {
			p.BiasShift2 = *bias
		}
		ls, err := sim.GenerateIllustrative(rng, p)
		if err != nil {
			return err
		}
		labeled = ls
	case "marketplace":
		p := sim.DefaultMarketplace()
		p.Months = *months
		if *bias != 0 {
			p.BiasShift2 = *bias
		}
		trace, err := sim.GenerateMarketplace(rng, p)
		if err != nil {
			return err
		}
		labeled = trace.Ratings
	case "movie":
		movie, err := netflix.GenerateSynthetic(rng, netflix.SyntheticParams{Days: *days})
		if err != nil {
			return err
		}
		if *attack {
			a := netflix.DefaultAttack()
			if *bias != 0 {
				a.BiasShift2 = *bias
			}
			labeled, err = netflix.InsertCollaborative(rng.Split(), movie, a)
			if err != nil {
				return err
			}
		} else {
			for _, r := range movie.Ratings {
				labeled = append(labeled, sim.LabeledRating{Rating: r, Class: sim.Reliable})
			}
		}
	default:
		return fmt.Errorf("unknown scenario %q", *scenario)
	}

	w := csv.NewWriter(out)
	if err := w.Write([]string{"time", "rater", "object", "value", "class", "unfair"}); err != nil {
		return err
	}
	for _, l := range labeled {
		rec := []string{
			strconv.FormatFloat(l.Rating.Time, 'f', 6, 64),
			strconv.Itoa(int(l.Rating.Rater)),
			strconv.Itoa(int(l.Rating.Object)),
			strconv.FormatFloat(l.Rating.Value, 'f', 4, 64),
			l.Class.String(),
			strconv.FormatBool(l.Unfair),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
