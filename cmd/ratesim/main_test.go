package main

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return buf.String()
}

func parseCSV(t *testing.T, out string) [][]string {
	t.Helper()
	rows, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestIllustrativeCSV(t *testing.T) {
	rows := parseCSV(t, runCLI(t, "-scenario", "illustrative", "-seed", "1"))
	if len(rows) < 100 {
		t.Fatalf("%d rows", len(rows))
	}
	header := rows[0]
	want := []string{"time", "rater", "object", "value", "class", "unfair"}
	for i, col := range want {
		if header[i] != col {
			t.Fatalf("header = %v", header)
		}
	}
	var sawUnfair bool
	prev := -1.0
	for _, row := range rows[1:] {
		tm, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			t.Fatal(err)
		}
		if tm < prev {
			t.Fatal("rows not time-sorted")
		}
		prev = tm
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil || v < 0 || v > 1 {
			t.Fatalf("value %q", row[3])
		}
		if row[5] == "true" {
			sawUnfair = true
		}
	}
	if !sawUnfair {
		t.Fatal("no unfair ratings in attacked trace")
	}
}

func TestIllustrativeNoAttack(t *testing.T) {
	rows := parseCSV(t, runCLI(t, "-scenario", "illustrative", "-attack=false"))
	for _, row := range rows[1:] {
		if row[5] == "true" {
			t.Fatal("unfair rating in attack-free trace")
		}
	}
}

func TestMarketplaceScenario(t *testing.T) {
	rows := parseCSV(t, runCLI(t, "-scenario", "marketplace", "-months", "2"))
	if len(rows) < 50 {
		t.Fatalf("%d rows", len(rows))
	}
	objects := map[string]bool{}
	for _, row := range rows[1:] {
		objects[row[2]] = true
	}
	if len(objects) != 10 { // 2 months x 5 products
		t.Fatalf("%d objects, want 10", len(objects))
	}
}

func TestMovieScenario(t *testing.T) {
	rows := parseCSV(t, runCLI(t, "-scenario", "movie", "-days", "100"))
	if len(rows) < 50 {
		t.Fatalf("%d rows", len(rows))
	}
}

func TestDeterministicOutput(t *testing.T) {
	a := runCLI(t, "-scenario", "illustrative", "-seed", "7")
	b := runCLI(t, "-scenario", "illustrative", "-seed", "7")
	if a != b {
		t.Fatal("same seed produced different traces")
	}
}

func TestBiasOverride(t *testing.T) {
	// A much larger bias must raise the unfair ratings' mean.
	meanUnfair := func(out string) float64 {
		rows := parseCSV(t, out)
		var sum float64
		var n int
		for _, row := range rows[1:] {
			if row[5] == "true" && row[4] == "type2-collaborative" {
				v, _ := strconv.ParseFloat(row[3], 64)
				sum += v
				n++
			}
		}
		if n == 0 {
			t.Fatal("no type-2 ratings")
		}
		return sum / float64(n)
	}
	low := meanUnfair(runCLI(t, "-seed", "3", "-bias", "0.05"))
	high := meanUnfair(runCLI(t, "-seed", "3", "-bias", "0.3"))
	if high <= low {
		t.Fatalf("bias override ineffective: %.3f vs %.3f", low, high)
	}
}

func TestUnknownScenario(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scenario", "nope"}, &buf); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &buf); err == nil {
		t.Fatal("bad flag accepted")
	}
}
