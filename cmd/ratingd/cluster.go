// Cluster router mode: -route -cluster node1,node2,... serves the
// stateless proxy tier in front of a partitioned cluster. The router
// holds no rating state — single-object traffic forwards to the
// keyspace owner, cross-object reads scatter-gather across the
// members, and /v1/process runs the scan/apply exchange — so any
// number of routers can front the same member set.
package main

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/internal/trust"
)

// splitClusterURLs parses the -cluster flag: comma-separated base
// URLs, whitespace-tolerant, trailing slashes dropped so flag values
// match the canonical table form.
func splitClusterURLs(s string) []string {
	var urls []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p != "" {
			urls = append(urls, p)
		}
	}
	return urls
}

type routerOptions struct {
	addr       string
	members    []string
	epoch      uint64
	trust      trust.ManagerConfig
	reqTimeout time.Duration
	maxBody    int64
	pprof      bool
}

// runRouter builds the routing table, the proxy, and serves until
// interrupted. The trust config must match the members': the router
// folds window evidence with the same Procedure 2 parameters the
// members apply.
func runRouter(o routerOptions) error {
	table, err := cluster.EvenTable(o.epoch, o.members)
	if err != nil {
		return err
	}
	started := time.Now()
	reg := telemetry.NewRegistry()
	registerProcessMetrics(reg, started)

	rt, err := cluster.NewRouter(table, cluster.RouterConfig{
		Trust: &o.trust,
		ServerOptions: []server.Option{
			server.WithMaxBodyBytes(o.maxBody),
			server.WithRequestTimeout(o.reqTimeout),
			server.WithTelemetry(reg),
		},
	})
	if err != nil {
		return err
	}

	httpSrv := &http.Server{
		Addr:              o.addr,
		Handler:           telemetryMux(rt, reg, o.pprof),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("ratingd routing a %d-node cluster on %s (epoch %d)\n", len(o.members), o.addr, o.epoch)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case <-stop:
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return httpSrv.Shutdown(ctx)
}
