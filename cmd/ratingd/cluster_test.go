package main

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/rating"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/shard/shardtest"
	"repro/internal/telemetry"
	"repro/internal/trust"
)

// clusterMemberProc is one member "process": the engine, sharded WAL,
// journal, and server assembled exactly the way run() does in member
// mode, behind an httptest server whose URL survives kills. kill()
// aborts every request and abandons the live parts without closing —
// a SIGKILL, not a drain — and start() on the same WAL dir is the
// restart that must recover every acked write.
type clusterMemberProc struct {
	t       *testing.T
	dir     string
	url     string
	table   cluster.Table
	shards  int
	handler atomic.Pointer[http.Handler]
	ts      *httptest.Server

	engine  *shard.Engine
	journal *shardJournal
	ws      *shardWALs
}

func newClusterMemberProc(t *testing.T, shards int) *clusterMemberProc {
	t.Helper()
	p := &clusterMemberProc{t: t, dir: t.TempDir(), shards: shards}
	var dead http.Handler = http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	})
	p.handler.Store(&dead)
	p.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		(*p.handler.Load()).ServeHTTP(w, r)
	}))
	t.Cleanup(p.ts.Close)
	p.url = p.ts.URL
	return p
}

func (p *clusterMemberProc) start() {
	t := p.t
	t.Helper()
	engine, j, ws := openShardDaemon(t, p.dir, p.shards)
	member, err := cluster.NewMember(p.table, p.url, engine)
	if err != nil {
		t.Fatal(err)
	}
	member.SetSnapshotter(j)
	srv, err := server.NewWith(engine,
		server.WithJournal(j),
		server.WithCluster(member),
		server.WithFeatures(api.DiscoveryFeatures{StreamIngest: true, Cluster: true}),
	)
	if err != nil {
		t.Fatal(err)
	}
	member.SetOnApply(srv.InvalidateAll)
	// The recovered state becomes the log baseline, as run() does.
	if err := j.Snapshot(); err != nil {
		t.Fatal(err)
	}
	var h http.Handler = telemetryMux(srv, telemetry.NewRegistry(), false, member.Routes)
	p.engine, p.journal, p.ws = engine, j, ws
	p.handler.Store(&h)
}

func (p *clusterMemberProc) kill() {
	var dead http.Handler = http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	})
	p.handler.Store(&dead)
	// Stop the batching goroutines; nothing is pending (BatchSize 1),
	// and crucially the WAL logs are NOT closed — no final snapshot,
	// no fsync beyond what each ack already forced.
	_ = p.journal.router.Close()
	p.engine, p.journal, p.ws = nil, nil, nil
}

func (p *clusterMemberProc) stop() {
	if p.journal == nil {
		return
	}
	closeShardDaemon(p.t, p.journal, p.ws)
	p.journal, p.ws = nil, nil
}

func fetchClusterDoc(t *testing.T, base string) api.ClusterResponse {
	t.Helper()
	res, data := getBody(t, base+"/v1/cluster")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("cluster doc: %d %s", res.StatusCode, data)
	}
	var doc api.ClusterResponse
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("cluster doc decode: %v (%s)", err, data)
	}
	return doc
}

// TestChaosCluster kills one member of a three-node cluster mid-soak
// and requires: typed 503 shedding for exactly the dead keyspace
// range while the rest keeps serving, every acked write surviving the
// hard kill, and — after the restart recovers the member from its WAL
// — the cluster converging to the byte-exact state of a single
// never-partitioned core.System fed the same acked traffic.
func TestChaosCluster(t *testing.T) {
	w := shardtest.Workload{Seed: 912, Objects: 12, Raters: 24, Malicious: 5, Months: 3, PerMonth: 200}
	months := w.Generate()

	// The oracle sees exactly the traffic the cluster acks.
	oracle, err := core.NewSystem(core.Config{})
	if err != nil {
		t.Fatal(err)
	}

	procs := make([]*clusterMemberProc, 3)
	urls := make([]string, len(procs))
	for i := range procs {
		procs[i] = newClusterMemberProc(t, 2)
		urls[i] = procs[i].url
	}
	table, err := cluster.EvenTable(1, urls)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range procs {
		p.table = table
		p.start()
	}
	t.Cleanup(func() {
		for _, p := range procs {
			p.stop()
		}
	})

	// Every node must own at least one object or the kill phase tests
	// nothing; the seed is chosen so the 8 objects spread.
	owned := map[int]int{}
	for obj := 0; obj < w.Objects; obj++ {
		owned[table.OwnerOfObject(rating.ObjectID(obj))]++
	}
	for n := range procs {
		if owned[n] == 0 {
			t.Fatalf("node %d owns no objects; pick a different seed (spread %v)", n, owned)
		}
	}

	rt, err := cluster.NewRouter(table, cluster.RouterConfig{Trust: &trust.ManagerConfig{}})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt)
	t.Cleanup(front.Close)
	ctx := context.Background()
	client := server.NewClient(front.URL, nil)

	submit := func(rs []rating.Rating) {
		t.Helper()
		payload := make([]server.RatingPayload, len(rs))
		for i, r := range rs {
			payload[i] = server.RatingPayload{
				Rater: int(r.Rater), Object: int(r.Object), Value: r.Value, Time: r.Time,
			}
		}
		if _, err := client.Submit(ctx, payload); err != nil {
			t.Fatalf("submit: %v", err)
		}
		if err := oracle.SubmitAll(rs); err != nil {
			t.Fatal(err)
		}
	}
	process := func(start, end float64) {
		t.Helper()
		if _, err := client.Process(ctx, start, end); err != nil {
			t.Fatalf("process [%g,%g): %v", start, end, err)
		}
		if _, err := oracle.ProcessWindow(start, end); err != nil {
			t.Fatal(err)
		}
	}
	wantUnavailable := func(what string, err error) {
		t.Helper()
		var apiErr *server.APIError
		if !errors.As(err, &apiErr) {
			t.Fatalf("%s: got %v, want a typed APIError", what, err)
		}
		if apiErr.Status != http.StatusServiceUnavailable || apiErr.Code != api.CodeUnavailable {
			t.Fatalf("%s: got %d %s, want 503 %s", what, apiErr.Status, apiErr.Code, api.CodeUnavailable)
		}
	}

	// Month 0: the whole cluster up.
	submit(months[0].Ratings)
	process(months[0].Start, months[0].End)

	// Hard-kill member 1 mid-soak.
	ackedOnVictim := 0
	for _, r := range months[0].Ratings {
		if table.OwnerOfObject(r.Object) == 1 {
			ackedOnVictim++
		}
	}
	procs[1].kill()

	// The dead range sheds with typed 503s; the live ranges keep
	// serving. Month 1 splits by ownership.
	var deadRs, liveRs []rating.Rating
	for _, r := range months[1].Ratings {
		if table.OwnerOfObject(r.Object) == 1 {
			deadRs = append(deadRs, r)
		} else {
			liveRs = append(liveRs, r)
		}
	}
	submit(liveRs)

	_, err = client.Submit(ctx, []server.RatingPayload{{
		Rater: int(deadRs[0].Rater), Object: int(deadRs[0].Object),
		Value: deadRs[0].Value, Time: deadRs[0].Time,
	}})
	wantUnavailable("submit into dead range", err)

	deadObj := ownedObject(t, table, 1)
	_, err = client.Aggregate(ctx, int(deadObj))
	wantUnavailable("aggregate in dead range", err)
	liveObj := ownedObject(t, table, 0)
	if _, err := client.Aggregate(ctx, int(liveObj)); err != nil {
		t.Fatalf("aggregate in live range while node 1 down: %v", err)
	}

	// A window needs every non-empty range scanned: refused, not
	// half-applied.
	_, err = client.Process(ctx, months[1].Start, months[1].End)
	wantUnavailable("process with a node down", err)

	// Trust is replicated, so reads fail over to live members.
	if _, err := client.Trust(ctx, 0); err != nil {
		t.Fatalf("trust read while node 1 down: %v", err)
	}

	// The routing doc reports the outage.
	doc := fetchClusterDoc(t, front.URL)
	for i, n := range doc.Nodes {
		want := "ok"
		if i == 1 {
			want = "down"
		}
		if n.Status != want {
			t.Fatalf("node %d status %q, want %q (doc %+v)", i, n.Status, want, doc.Nodes)
		}
	}

	// Restart: WAL recovery must hold every acked write.
	procs[1].start()
	if !procs[1].ws.recovered {
		t.Fatal("restarted member recovered nothing")
	}
	if got := procs[1].engine.Len(); got != ackedOnVictim {
		t.Fatalf("restarted member holds %d ratings, want the %d acked before the kill", got, ackedOnVictim)
	}
	if got := procs[1].engine.LastWindowEnd(); got != months[0].End {
		t.Fatalf("restarted member window high-water %g, want %g", got, months[0].End)
	}
	doc = fetchClusterDoc(t, front.URL)
	if doc.Nodes[1].Status != "ok" {
		t.Fatalf("restarted node still %q in the routing doc", doc.Nodes[1].Status)
	}

	// The shed writes retry against the recovered owner, the deferred
	// window closes, and month 2 runs clean.
	submit(deadRs)
	process(months[1].Start, months[1].End)
	submit(months[2].Ratings)
	process(months[2].Start, months[2].End)

	// Conformance: the cluster is byte-identical to the oracle.
	got, err := shardtest.Fingerprint(rt, w.Objects)
	if err != nil {
		t.Fatal(err)
	}
	want, err := shardtest.Fingerprint(oracle, w.Objects)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("post-chaos cluster diverges from the never-partitioned oracle:\n--- oracle\n%s--- cluster\n%s", want, got)
	}

	// Every member — including the restarted one — converged to the
	// identical replicated trust map.
	base := procs[0].engine.TrustSnapshot()
	for i, p := range procs[1:] {
		snap := p.engine.TrustSnapshot()
		if len(snap) != len(base) {
			t.Fatalf("member %d: %d trust records, member 0 has %d", i+1, len(snap), len(base))
		}
		for id, v := range base {
			if snap[id] != v {
				t.Fatalf("member %d: trust[%d]=%v, member 0 has %v", i+1, id, snap[id], v)
			}
		}
	}
}

// ownedObject finds a low-numbered object the table assigns to node n.
func ownedObject(t *testing.T, table cluster.Table, n int) rating.ObjectID {
	t.Helper()
	for obj := 0; obj < 1000; obj++ {
		if table.OwnerOfObject(rating.ObjectID(obj)) == n {
			return rating.ObjectID(obj)
		}
	}
	t.Fatalf("node %d owns none of the first 1000 objects", n)
	return 0
}
