package main

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/core"
	"repro/internal/rating"
	"repro/internal/server"
	"repro/internal/wal"
)

// daemonJournal is what run() needs from either journal flavor: the
// server.Journal mutations plus the maintenance hooks the background
// loops drive.
type daemonJournal interface {
	server.Journal
	// Snapshot rebases the log(s) on the current state and compacts.
	Snapshot() error
	// Sync flushes buffered frames to disk (used under -fsync interval).
	Sync() error
}

// walJournal implements server.Journal over a write-ahead log. Its
// mutex makes [append to the log + apply to the system] atomic with
// respect to snapshot capture, so a snapshot never reflects a record
// the log doesn't cover (or vice versa) — the invariant that makes
// snapshot + tail replay reconstruct the exact pre-crash state.
type walJournal struct {
	mu  sync.Mutex
	log *wal.Log
	sys server.Backend
}

// SubmitAll logs the batch in one all-or-nothing write, then applies
// it. A logging failure refuses the batch (the caller 503s and the
// client retries); nothing is applied that the log doesn't hold.
func (j *walJournal) SubmitAll(rs []rating.Rating) error {
	recs := make([]wal.Record, len(rs))
	for i, r := range rs {
		recs[i] = wal.RatingRecord(r)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.log.AppendAll(recs); err != nil {
		return err
	}
	return j.sys.SubmitAll(rs)
}

// ProcessWindow logs the window command, then runs it. Replay re-runs
// the same windows in the same order, so trust state is reproduced
// deterministically.
func (j *walJournal) ProcessWindow(start, end float64) (core.ProcessReport, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.log.Append(wal.ProcessRecord(start, end)); err != nil {
		return core.ProcessReport{}, err
	}
	return j.sys.ProcessWindow(start, end)
}

// Restore replaces the state and immediately rebases the log on a
// fresh snapshot of it, so old segments can't replay on top of the
// restored state after a crash.
func (j *walJournal) Restore(r io.Reader) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.sys.LoadSnapshot(r); err != nil {
		return err
	}
	if err := j.log.Snapshot(j.sys.WriteSnapshot); err != nil {
		return fmt.Errorf("rebase log after restore: %w", err)
	}
	return nil
}

// Snapshot captures the current state as the log's new baseline and
// compacts covered segments.
func (j *walJournal) Snapshot() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.log.Snapshot(j.sys.WriteSnapshot)
}

// Sync flushes the log's buffered frames to disk.
func (j *walJournal) Sync() error { return j.log.Sync() }

// replayTarget adapts the system for wal.Replay.
type replayTarget struct{ sys server.Backend }

func (t replayTarget) Submit(r rating.Rating) error { return t.sys.Submit(r) }

func (t replayTarget) Process(start, end float64) error {
	_, err := t.sys.ProcessWindow(start, end)
	return err
}
