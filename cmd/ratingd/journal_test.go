package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/rating"
	"repro/internal/server"
	"repro/internal/wal"
)

// openDaemon wires the daemon's pieces the way run() does: WAL open,
// recovery replay onto a fresh server, journal installed.
func openDaemon(t *testing.T, dir string) (*server.Server, *walJournal, *wal.Recovery) {
	t.Helper()
	log, rec, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncAlways})
	if err != nil {
		t.Fatalf("open wal: %v", err)
	}
	j := &walJournal{log: log}
	srv, err := server.New(core.Config{}, server.WithJournal(j))
	if err != nil {
		t.Fatal(err)
	}
	j.sys = srv.System()
	if rec.Snapshot != nil {
		if err := srv.System().LoadSnapshot(bytes.NewReader(rec.Snapshot)); err != nil {
			t.Fatalf("recovery snapshot: %v", err)
		}
	}
	wal.Replay(replayTarget{sys: srv.System()}, rec.Records, t.Logf)
	return srv, j, rec
}

// Ratings accepted through the HTTP surface survive an abrupt stop
// (no final snapshot): the journal holds them and replay restores
// them, including the trust effects of a processed window.
func TestDaemonRecoversAcceptedRatingsAfterAbruptStop(t *testing.T) {
	dir := t.TempDir()
	srv, j, _ := openDaemon(t, dir)
	ts := httptest.NewServer(srv)
	client := server.NewClient(ts.URL, ts.Client())
	ctx := context.Background()

	var batch []server.RatingPayload
	for i := 0; i < 25; i++ {
		batch = append(batch, server.RatingPayload{
			Rater: i%5 + 1, Object: 7, Value: 0.8, Time: float64(i),
		})
	}
	if _, err := client.Submit(ctx, batch); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Process(ctx, 0, 30); err != nil {
		t.Fatal(err)
	}
	wantTrust := srv.System().TrustIn(1)
	ts.Close()
	// Abrupt stop: close the log without snapshotting.
	if err := j.log.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, _, rec := openDaemon(t, dir)
	if len(rec.Records) != 26 { // 25 ratings + 1 process command
		t.Fatalf("recovered %d records, want 26", len(rec.Records))
	}
	if got := srv2.System().Len(); got != 25 {
		t.Fatalf("recovered %d ratings, want 25", got)
	}
	if got := srv2.System().TrustIn(1); got != wantTrust {
		t.Fatalf("recovered trust %g, want %g", got, wantTrust)
	}
}

// A journal snapshot compacts the log: recovery after it replays no
// records, and state still matches.
func TestDaemonSnapshotCompactsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	srv, j, _ := openDaemon(t, dir)
	for i := 0; i < 10; i++ {
		if err := j.SubmitAll([]rating.Rating{{
			Rater: rating.RaterID(i), Object: 3, Value: 0.4, Time: float64(i),
		}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot traffic lands in the tail.
	if err := j.SubmitAll([]rating.Rating{{Rater: 99, Object: 3, Value: 0.6, Time: 42}}); err != nil {
		t.Fatal(err)
	}
	want := srv.System().Len()
	if err := j.log.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, _, rec := openDaemon(t, dir)
	if rec.Snapshot == nil {
		t.Fatal("no snapshot recovered")
	}
	if len(rec.Records) != 1 {
		t.Fatalf("tail has %d records, want 1", len(rec.Records))
	}
	if got := srv2.System().Len(); got != want {
		t.Fatalf("recovered %d ratings, want %d", got, want)
	}
}

// Restore through the journal rebases the log: a crash right after a
// restore must come back with the restored state, not replay stale
// pre-restore records on top of it.
func TestDaemonRestoreRebasesLog(t *testing.T) {
	dir := t.TempDir()
	srv, j, _ := openDaemon(t, dir)
	if err := j.SubmitAll([]rating.Rating{{Rater: 1, Object: 1, Value: 0.2, Time: 1}}); err != nil {
		t.Fatal(err)
	}

	// Build a replacement state with different contents.
	donor, err := core.NewSafeSystem(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := donor.Submit(rating.Rating{Rater: rating.RaterID(50 + i), Object: 9, Value: 0.9, Time: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var snap bytes.Buffer
	if err := donor.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	if err := j.Restore(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := srv.System().Len(); got != 5 {
		t.Fatalf("restored live state has %d ratings, want 5", got)
	}
	if err := j.log.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, _, rec := openDaemon(t, dir)
	if len(rec.Records) != 0 {
		t.Fatalf("stale records survived restore: %d", len(rec.Records))
	}
	if got := srv2.System().Len(); got != 5 {
		t.Fatalf("recovered %d ratings after restore, want 5", got)
	}
	if tr := srv2.System().TrustIn(1); tr != srv2.System().TrustIn(12345) {
		t.Fatalf("pre-restore rater left trust residue: %g", tr)
	}
}

// A failing journal append must refuse the write without applying it,
// and the daemon keeps serving afterwards (the WAL seals the damaged
// segment and rotates).
func TestDaemonJournalFailureRefusesWrite(t *testing.T) {
	dir := t.TempDir()
	srv, j, _ := openDaemon(t, dir)
	// Close the log out from under the journal: every append now fails.
	if err := j.log.Close(); err != nil {
		t.Fatal(err)
	}
	err := j.SubmitAll([]rating.Rating{{Rater: 1, Object: 1, Value: 0.5, Time: 1}})
	if err == nil {
		t.Fatal("append on closed log accepted")
	}
	if got := srv.System().Len(); got != 0 {
		t.Fatalf("unjournaled rating applied: %d", got)
	}
}

// The full run() path: start on a port, let it fail to bind a second
// time, and confirm flag validation still works with WAL flags.
func TestRunRejectsBadFsyncPolicy(t *testing.T) {
	if err := run([]string{"-fsync", "sometimes"}); err == nil {
		t.Fatal("bad fsync policy accepted")
	}
}
