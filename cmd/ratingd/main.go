// Command ratingd serves the trust-enhanced rating system over HTTP.
//
//	ratingd -addr :8080
//	ratingd -addr :8080 -snapshot state.json   # load state, save on exit
//	ratingd -addr :8080 -wal ./wal             # crash-safe: log + recover
//
// With -wal, every accepted rating batch and maintenance window is
// written to an append-only, checksummed log before it is applied, and
// startup recovers state by loading the latest durable snapshot and
// replaying the log tail — tolerating a torn final record from a
// crash. Periodic snapshots compact the log in the background.
//
// Endpoints are documented in internal/server (wire types in
// internal/api). Example session:
//
//	curl -X POST localhost:8080/v1/ratings -d '[{"rater":1,"object":42,"value":0.8,"time":3.5}]'
//	curl -X POST localhost:8080/v1/ratings:stream --data-binary @ratings.ndjson
//	curl -X POST localhost:8080/v1/process -d '{"start":0,"end":30}'
//	curl localhost:8080/v1/objects/42/aggregate
//	curl localhost:8080/v1/raters/1/trust
//	curl 'localhost:8080/v1/malicious?offset=0&limit=100'
//
// Reads are served from a precisely-invalidated cache (-read-cache);
// mutating routes can shed under overload with typed 429s once
// -admit-max is set.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/faultinject"
	"repro/internal/parallel"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/telemetry"
	"repro/internal/trust"
	"repro/internal/wal"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ratingd:", err)
		os.Exit(1)
	}
}

func run(args []string) (retErr error) {
	fs := flag.NewFlagSet("ratingd", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		snapshot  = fs.String("snapshot", "", "state file: loaded at start if present, written on exit")
		threshold = fs.Float64("threshold", 0.1, "detector model-error threshold")
		width     = fs.Float64("width", 10, "detector window width (days)")
		step      = fs.Float64("step", 5, "detector window step (days)")
		order     = fs.Int("order", 4, "AR model order")
		b         = fs.Float64("b", 1, "Procedure 2's b (suspicion weight)")
		forget    = fs.Float64("forget", 1, "per-day trust forgetting factor")

		streamDetect   = fs.Bool("stream-detect", false, "online streaming detection: per-object detector streams fed at submit time, alerts on /v1/alerts; forces the sharded engine backend")
		streamWindow   = fs.Int("stream-window", 50, "streaming detector: ratings per count window")
		streamStep     = fs.Int("stream-step", 25, "streaming detector: ratings between window starts")
		alertThreshold = fs.Float64("alert-threshold", 0.5, "accrued suspicion at which a rater is alerted")
		maintainEvery  = fs.Float64("maintain-every", 0, "streaming: auto-close an authoritative maintenance window every this many rating-days; 0 leaves windows to /v1/process")

		shards        = fs.Int("shards", 1, "shard workers partitioning state by object; 1 keeps the single-system engine")
		batchSize     = fs.Int("batch", 256, "sharded mode: ratings coalesced per shard flush (group commit)")
		batchInterval = fs.Duration("batch-interval", 2*time.Millisecond, "sharded mode: max wait before a partial batch flushes; negative flushes on size only")

		walDir        = fs.String("wal", "", "write-ahead-log directory; empty disables the WAL")
		fsyncMode     = fs.String("fsync", "always", "WAL fsync policy: always|interval|never")
		fsyncInterval = fs.Duration("fsync-interval", 100*time.Millisecond, "background fsync cadence under -fsync interval")
		segmentBytes  = fs.Int64("wal-segment-bytes", 4<<20, "WAL segment rotation size")
		snapEvery     = fs.Duration("snap-every", 5*time.Minute, "background snapshot+compaction cadence; 0 disables")

		reqTimeout = fs.Duration("request-timeout", 30*time.Second, "per-request handling timeout; 0 disables")
		maxBody    = fs.Int64("max-body-bytes", 8<<20, "maximum request body size")

		readCache   = fs.Int("read-cache", 0, "read-cache capacity in objects; 0 uses the default (4096), negative disables caching")
		streamBatch = fs.Int("stream-batch", 512, "ratings coalesced per group-commit submit on /v1/ratings:stream")
		admitMax    = fs.Int("admit-max", 0, "mutating requests allowed to execute at once; 0 disables admission control")
		admitQueue  = fs.Int("admit-queue", 0, "mutating requests that may queue for a slot beyond -admit-max")
		admitWait   = fs.Duration("admit-wait", 250*time.Millisecond, "longest a queued mutating request waits for a slot before a 429 shed")
		admitRetry  = fs.Duration("admit-retry-after", 0, "Retry-After hint on shed responses; 0 derives it from -admit-wait")

		routeMode    = fs.Bool("route", false, "run as a stateless cluster router: forward single-object traffic to the keyspace owner in -cluster and scatter-gather cross-object reads")
		clusterList  = fs.String("cluster", "", "comma-separated member base URLs; the 2^32 keyspace splits evenly across them in list order")
		clusterSelf  = fs.String("cluster-self", "", "member mode: this node's own base URL exactly as it appears in -cluster")
		clusterEpoch = fs.Uint64("cluster-epoch", 1, "routing-table version; requests pinning another epoch are refused with a typed 409 stale_epoch")

		follow        = fs.String("follow", "", "run as a bounded-staleness read replica of this primary base URL")
		maxLag        = fs.Duration("max-lag", 0, "replica: refuse reads (typed 503 replica_stale) once replicated state is older than this; 0 disables")
		maxLagRecords = fs.Uint64("max-lag-records", 0, "replica: refuse reads once this many records behind the primary; 0 disables")
		promoteAfter  = fs.Duration("promote-after", 0, "replica: self-promote to primary once the primary has been silent this long; 0 disables")
		promoteURL    = fs.String("promote", "", "one-shot: promote the ratingd follower at this base URL to primary, then exit")
		replSeed      = fs.Int64("repl-seed", 0, "replica: reconnect-jitter seed; 0 derives one from the clock so identically-launched followers still diverge")

		pprofOn           = fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		telemetryInterval = fs.Duration("telemetry-interval", 0, "print a summary line to stderr at this cadence; 0 disables")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *promoteURL != "" {
		return promoteRemote(*promoteURL)
	}
	if *routeMode && *clusterList == "" {
		return errors.New("-route needs the member list: -cluster url1,url2,...")
	}
	if *clusterList != "" && *follow != "" {
		return errors.New("-cluster and -follow are mutually exclusive; cluster members replicate trust through the router's apply broadcast")
	}
	if *clusterList != "" && !*routeMode && *clusterSelf == "" {
		return errors.New("-cluster without -route runs a member; name this node's own URL with -cluster-self")
	}
	if *routeMode {
		// The router is stateless — no engine, journal, or WAL — so it
		// skips the backend build entirely and serves the proxy tier.
		return runRouter(routerOptions{
			addr:       *addr,
			members:    splitClusterURLs(*clusterList),
			epoch:      *clusterEpoch,
			trust:      trust.ManagerConfig{B: *b, Forgetting: *forget},
			reqTimeout: *reqTimeout,
			maxBody:    *maxBody,
			pprof:      *pprofOn,
		})
	}

	var policy wal.SyncPolicy
	switch *fsyncMode {
	case "always":
		policy = wal.SyncAlways
	case "interval":
		policy = wal.SyncInterval
	case "never":
		policy = wal.SyncNever
	default:
		return fmt.Errorf("unknown -fsync policy %q", *fsyncMode)
	}

	started := time.Now()
	reg := telemetry.NewRegistry()
	registerProcessMetrics(reg, started)
	installParallelObserver(reg)
	defer parallel.SetObserver(nil)

	cfg := core.Config{
		Detector: detector.Config{
			Width:     *width,
			TimeStep:  *step,
			Order:     *order,
			Threshold: *threshold,
		},
		Trust:   trust.ManagerConfig{B: *b, Forgetting: *forget},
		Metrics: core.NewMetrics(reg),
	}

	warnf := func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, "ratingd: "+format+"\n", a...)
	}

	// Build the backend and its journal. Recovery runs before the
	// server exists: whatever the WAL holds decides the starting state.
	walMetrics := wal.NewMetrics(reg)
	mkWALOpts := func(dir string) wal.Options {
		return wal.Options{
			Dir:          dir,
			Policy:       policy,
			SegmentBytes: *segmentBytes,
			Warnf:        warnf,
			Metrics:      walMetrics,
		}
	}
	usingWAL := *walDir != ""

	var (
		backend      server.Backend
		journal      daemonJournal
		router       *shard.Router
		recovered    bool
		followEngine *shard.Engine  // non-nil in -follow mode
		shardMetrics *shard.Metrics // non-nil whenever the engine backend is used
		walEpoch     int            // live manifest epoch in sharded-WAL mode
		walLogs      []*wal.Log     // per-shard logs in sharded-WAL mode
	)
	shardEngineBackend, err := useShardEngine(*shards, *walDir)
	if err != nil {
		return err
	}
	if *streamDetect {
		if *follow != "" {
			// Alerts reflect live detection state, which only the primary
			// computes; followers refuse /v1/alerts with 421 not_primary.
			return errors.New("-stream-detect runs on primaries only; drop -follow or detect on the primary")
		}
		// The streaming path lives in the sharded engine; a single shard
		// still uses it (one worker, same conformance guarantees).
		shardEngineBackend = true
	}
	if *clusterList != "" {
		// Member state lives in the sharded engine: the scan/apply
		// exchange and point-range reads are engine operations.
		shardEngineBackend = true
	}
	if *follow != "" {
		// Follower: the primary is authoritative, so nothing local is
		// recovered and no journal is installed — the replica gate
		// refuses mutations before they could want one. The engine
		// backend is used at any -shards count (shard.Recover remaps
		// replicated state by hash, so the counts need not match the
		// primary's).
		if *snapshot != "" {
			return fmt.Errorf("-snapshot cannot seed a follower; state replicates from %s", *follow)
		}
		engine, err := shard.NewEngine(cfg, *shards)
		if err != nil {
			return err
		}
		shardMetrics = shard.NewMetrics(reg, *shards)
		engine.SetMetrics(shardMetrics)
		backend = engine
		followEngine = engine
		if usingWAL {
			if m, ok, err := readManifest(*walDir); err != nil {
				return err
			} else if ok {
				warnf("wal: %s holds epoch %d (%d shards); it stays untouched while following %s and is superseded at promotion",
					*walDir, m.Epoch, m.Shards, *follow)
			}
		}
	} else if shardEngineBackend {
		engine, err := shard.NewEngine(cfg, *shards)
		if err != nil {
			return err
		}
		shardMetrics = shard.NewMetrics(reg, *shards)
		engine.SetMetrics(shardMetrics)
		backend = engine

		sj := newShardJournal(engine, nil, 1)
		if usingWAL {
			ws, err := openShardWALs(*walDir, *shards, engine, mkWALOpts, warnf)
			if err != nil {
				return err
			}
			defer func() {
				for _, l := range ws.logs {
					if err := l.Close(); err != nil && !errors.Is(err, wal.ErrClosed) {
						retErr = errors.Join(retErr, fmt.Errorf("close shard wal: %w", err))
					}
				}
			}()
			sj.logs = ws.logs
			sj.seq = ws.seq
			recovered = ws.recovered
			walEpoch = ws.epoch
			walLogs = ws.logs
		}
		// The router fronts the journal even without a WAL: batching is
		// what amortizes per-submission store merges across shards.
		router, err = shard.NewRouter(shard.RouterConfig{
			Shards:    *shards,
			BatchSize: *batchSize,
			Interval:  *batchInterval,
			Flush:     sj.flush,
			Metrics:   shardMetrics,
		})
		if err != nil {
			return err
		}
		sj.router = router
		journal = sj
	} else {
		if usingWAL {
			// Refuse a directory the sharded layout owns: falling back to
			// an empty root log would silently serve zero state.
			if m, ok, err := readManifest(*walDir); err != nil {
				return err
			} else if ok {
				return fmt.Errorf("wal dir %s is sharded (%d shards, epoch %d); rerun with -shards >= 2",
					*walDir, m.Shards, m.Epoch)
			}
		}
		sys, err := core.NewSafeSystem(cfg)
		if err != nil {
			return err
		}
		backend = sys

		var rec *wal.Recovery
		var wj *walJournal
		if usingWAL {
			log, r, err := wal.Open(mkWALOpts(*walDir))
			if err != nil {
				return fmt.Errorf("open wal: %w", err)
			}
			defer func() {
				if err := log.Close(); err != nil && !errors.Is(err, wal.ErrClosed) {
					retErr = errors.Join(retErr, fmt.Errorf("close wal: %w", err))
				}
			}()
			rec = r
			wj = &walJournal{log: log, sys: sys}
			journal = wj
		}

		// Recover: snapshot baseline + log-tail replay. Recovery is
		// best-effort by design — a damaged snapshot or record is warned
		// about and skipped, never a refusal to start.
		if wj != nil {
			if rec.Snapshot != nil {
				if err := sys.LoadSnapshot(bytes.NewReader(rec.Snapshot)); err != nil {
					warnf("recovery: snapshot unusable, replaying log from scratch: %v", err)
				}
			}
			applied := wal.Replay(replayTarget{sys: sys}, rec.Records, warnf)
			walMetrics.ReplayedRecords.Add(uint64(applied))
			if rec.Snapshot != nil || len(rec.Records) > 0 {
				fmt.Printf("recovered %d ratings (%d/%d log records from %d segments)\n",
					sys.Len(), applied, len(rec.Records), rec.Segments)
			}
			recovered = rec.Snapshot != nil || len(rec.Records) > 0
		}
	}

	// Cluster member: keyspace ownership checks on the shared handlers
	// plus the member-only scan/apply endpoints. The shard journal is
	// the member's snapshotter, so an apply broadcast is durable before
	// it is acked (member WALs never hold process records).
	var member *cluster.Member
	if *clusterList != "" {
		table, err := cluster.EvenTable(*clusterEpoch, splitClusterURLs(*clusterList))
		if err != nil {
			return err
		}
		member, err = cluster.NewMember(table, strings.TrimRight(*clusterSelf, "/"), backend.(*shard.Engine))
		if err != nil {
			return err
		}
		if usingWAL && journal != nil {
			member.SetSnapshotter(journal)
		}
	}

	opts := []server.Option{
		server.WithMaxBodyBytes(*maxBody),
		server.WithRequestTimeout(*reqTimeout),
		server.WithTelemetry(reg),
		server.WithReadCache(*readCache),
		server.WithStreamBatch(*streamBatch),
	}
	if *admitMax > 0 {
		opts = append(opts, server.WithAdmission(server.AdmissionConfig{
			MaxConcurrent: *admitMax,
			MaxQueue:      *admitQueue,
			MaxWait:       *admitWait,
			RetryAfter:    *admitRetry,
		}))
	}
	if journal != nil {
		opts = append(opts, server.WithJournal(journal))
	}
	if member != nil {
		opts = append(opts,
			server.WithCluster(member),
			server.WithFeatures(api.DiscoveryFeatures{
				StreamIngest: true,
				StreamDetect: *streamDetect,
				Cluster:      true,
			}),
		)
	}
	srv, err := server.NewWith(backend, opts...)
	if err != nil {
		return err
	}
	registerTrustMetrics(reg, srv.System())
	if member != nil {
		// An apply broadcast changes trust and verdicts for raters this
		// node never saw ratings from; drop every cached read.
		member.SetOnApply(srv.InvalidateAll)
	}

	// Replication wiring: either a follower node (replica gate plus
	// in-place promotion) or, on a sharded-WAL primary, the
	// stream/snapshot/status endpoints followers replicate from.
	var (
		node        *replNode
		replPrimary *repl.Primary
	)
	if *follow != "" {
		replMetrics := repl.NewMetrics(reg)
		seed := *replSeed
		if seed == 0 {
			seed = time.Now().UnixNano()
		}
		primaryURL := strings.TrimRight(*follow, "/")
		follower := repl.NewFollower(repl.FollowerConfig{
			PrimaryURL: primaryURL,
			Engine:     followEngine,
			Metrics:    replMetrics,
			Seed:       seed,
			OnApply:    srv.InvalidateRatings,
			OnWindow:   srv.InvalidateAll,
			Warnf:      warnf,
		})
		node = newReplNode(replNodeConfig{
			Follower:      follower,
			Server:        srv,
			Engine:        followEngine,
			Metrics:       replMetrics,
			PrimaryURL:    primaryURL,
			WALDir:        *walDir,
			MkOpts:        mkWALOpts,
			BatchSize:     *batchSize,
			BatchInterval: *batchInterval,
			ShardMetrics:  shardMetrics,
			MaxLagRecords: *maxLagRecords,
			MaxLagSeconds: maxLag.Seconds(),
			Warnf:         warnf,
		})
		srv.SetReplica(node.replicaInfo())
		go func() { _ = follower.Run(context.Background()) }()
		defer func() {
			if err := node.close(); err != nil {
				retErr = errors.Join(retErr, err)
			}
		}()
		fmt.Printf("following %s (max lag: %d records / %s)\n", primaryURL, *maxLagRecords, *maxLag)
	} else if *shards > 1 && usingWAL {
		replPrimary = repl.NewPrimary(repl.PrimaryConfig{
			Epoch:   walEpoch,
			Logs:    walLogs,
			Journal: journal.(*shardJournal),
			Metrics: repl.NewMetrics(reg),
		})
	}

	// A -snapshot file seeds state only when the WAL recovered
	// nothing (or the WAL is off); otherwise the WAL is authoritative.
	if *snapshot != "" && !recovered {
		if err := loadSnapshot(srv, *snapshot); err != nil {
			return err
		}
	}
	if *snapshot != "" {
		// Persist on every exit path — clean shutdown, listener
		// failure, or shutdown error — not just the signal path.
		defer func() {
			if err := saveSnapshot(srv, *snapshot); err != nil {
				retErr = errors.Join(retErr, fmt.Errorf("save snapshot: %w", err))
				return
			}
			fmt.Printf("state saved to %s\n", *snapshot)
		}()
	}
	if usingWAL && journal != nil {
		// Make the recovered + seeded state the log's baseline so a
		// crash before the first background snapshot replays little.
		defer func() {
			if err := journal.Snapshot(); err != nil {
				retErr = errors.Join(retErr, fmt.Errorf("final wal snapshot: %w", err))
			}
		}()
		if err := journal.Snapshot(); err != nil {
			return fmt.Errorf("initial wal snapshot: %w", err)
		}
	}

	// Streaming detection goes live after recovery and seeding, so the
	// stream rebuild sees the full recovered store, and ResumeAfter —
	// the recovered window high-water mark — keeps the catch-up pass
	// from re-charging windows that are already durable.
	if *streamDetect {
		engine, ok := backend.(*shard.Engine)
		if !ok {
			return errors.New("-stream-detect: backend is not the sharded engine")
		}
		scfg := shard.StreamConfig{
			Detector: detector.Config{
				Size:      *streamWindow,
				Step:      *streamStep,
				Order:     *order,
				Threshold: *threshold,
			},
			AlertThreshold: *alertThreshold,
			MaintainEvery:  *maintainEvery,
			ResumeAfter:    engine.LastWindowEnd(),
		}
		if *maintainEvery > 0 {
			scfg.OnWindowDue = func(start, end float64) {
				var err error
				if journal != nil {
					_, err = journal.ProcessWindow(start, end)
				} else {
					_, err = engine.ProcessWindow(start, end)
				}
				if err != nil {
					warnf("streaming window [%g,%g): %v", start, end, err)
					return
				}
				srv.InvalidateAll()
			}
		}
		streaming, err := engine.EnableStreaming(scfg)
		if err != nil {
			return err
		}
		defer streaming.Close()
		srv.SetAlerts(alertFeed{log: streaming.Alerts()})
		fmt.Printf("streaming detection enabled (window %d/%d ratings, alert threshold %g, maintain every %g days, resume after %g)\n",
			*streamWindow, *streamStep, *alertThreshold, *maintainEvery, scfg.ResumeAfter)
	}

	// Background maintenance: interval fsync and periodic
	// snapshot+compaction.
	bg := make(chan struct{})
	defer close(bg)
	if node != nil && *promoteAfter > 0 {
		go node.deathWatch(bg, *promoteAfter)
	}
	if usingWAL && journal != nil && policy == wal.SyncInterval && *fsyncInterval > 0 {
		go func() {
			t := time.NewTicker(*fsyncInterval)
			defer t.Stop()
			for {
				select {
				case <-bg:
					return
				case <-t.C:
					if err := journal.Sync(); err != nil && !errors.Is(err, wal.ErrClosed) {
						warnf("background fsync: %v", err)
					}
				}
			}
		}()
	}
	if usingWAL && journal != nil && *snapEvery > 0 {
		go func() {
			t := time.NewTicker(*snapEvery)
			defer t.Stop()
			for {
				select {
				case <-bg:
					return
				case <-t.C:
					if err := journal.Snapshot(); err != nil && !errors.Is(err, wal.ErrClosed) {
						warnf("background snapshot: %v", err)
					}
				}
			}
		}()
	}

	if router != nil {
		// Registered after every other cleanup so it runs first on
		// shutdown: drain pending batches into the logs and engine
		// before the final snapshot captures them.
		defer func() {
			if err := router.Close(); err != nil {
				retErr = errors.Join(retErr, fmt.Errorf("close router: %w", err))
			}
		}()
	}

	if *telemetryInterval > 0 {
		go summaryLoop(bg, *telemetryInterval, reg, srv.System(), started)
	}

	var mounts []func(*http.ServeMux)
	if member != nil {
		mounts = append(mounts, member.Routes)
	}
	switch {
	case node != nil:
		mounts = append(mounts, node.routes)
	case replPrimary != nil:
		mounts = append(mounts, replPrimary.Routes)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           telemetryMux(srv, reg, *pprofOn, mounts...),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("ratingd listening on %s\n", *addr)
	if member != nil {
		t := member.Table()
		fmt.Printf("cluster member %s (epoch %d, %d nodes)\n", *clusterSelf, t.Epoch, len(t.Nodes))
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case <-stop:
	}

	// Graceful drain: stop accepting, finish in-flight requests, then
	// the deferred final snapshot + WAL close run.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return httpSrv.Shutdown(ctx)
}

func loadSnapshot(srv *server.Server, path string) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil // first start
	}
	if err != nil {
		return err
	}
	defer f.Close()
	if err := srv.System().LoadSnapshot(f); err != nil {
		return fmt.Errorf("load %s: %w", path, err)
	}
	fmt.Printf("state loaded from %s\n", path)
	return nil
}

// saveSnapshot writes the state atomically AND durably: the temp file
// is fsynced before the rename and the directory entry after it, so a
// power cut can't leave an empty or half-written snapshot under the
// final name.
func saveSnapshot(srv *server.Server, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := srv.System().WriteSnapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return faultinject.OS().SyncDir(filepath.Dir(path))
}
