// Command ratingd serves the trust-enhanced rating system over HTTP.
//
//	ratingd -addr :8080
//	ratingd -addr :8080 -snapshot state.json   # load state, save on SIGINT
//
// Endpoints are documented in internal/server. Example session:
//
//	curl -X POST localhost:8080/v1/ratings -d '[{"rater":1,"object":42,"value":0.8,"time":3.5}]'
//	curl -X POST localhost:8080/v1/process -d '{"start":0,"end":30}'
//	curl localhost:8080/v1/objects/42/aggregate
//	curl localhost:8080/v1/raters/1/trust
//	curl localhost:8080/v1/malicious
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/server"
	"repro/internal/trust"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ratingd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ratingd", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		snapshot  = fs.String("snapshot", "", "state file: loaded at start if present, written on shutdown")
		threshold = fs.Float64("threshold", 0.1, "detector model-error threshold")
		width     = fs.Float64("width", 10, "detector window width (days)")
		step      = fs.Float64("step", 5, "detector window step (days)")
		order     = fs.Int("order", 4, "AR model order")
		b         = fs.Float64("b", 1, "Procedure 2's b (suspicion weight)")
		forget    = fs.Float64("forget", 1, "per-day trust forgetting factor")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv, err := server.New(core.Config{
		Detector: detector.Config{
			Width:     *width,
			TimeStep:  *step,
			Order:     *order,
			Threshold: *threshold,
		},
		Trust: trust.ManagerConfig{B: *b, Forgetting: *forget},
	})
	if err != nil {
		return err
	}

	if *snapshot != "" {
		if err := loadSnapshot(srv, *snapshot); err != nil {
			return err
		}
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("ratingd listening on %s\n", *addr)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case <-stop:
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	if *snapshot != "" {
		if err := saveSnapshot(srv, *snapshot); err != nil {
			return err
		}
		fmt.Printf("state saved to %s\n", *snapshot)
	}
	return nil
}

func loadSnapshot(srv *server.Server, path string) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil // first start
	}
	if err != nil {
		return err
	}
	defer f.Close()
	if err := srv.System().LoadSnapshot(f); err != nil {
		return fmt.Errorf("load %s: %w", path, err)
	}
	fmt.Printf("state loaded from %s\n", path)
	return nil
}

func saveSnapshot(srv *server.Server, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := srv.System().WriteSnapshot(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
