package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/server"
)

func newTestDaemonServer(t *testing.T) *server.Server {
	t.Helper()
	srv, err := server.New(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func TestSaveAndLoadSnapshot(t *testing.T) {
	srv := newTestDaemonServer(t)
	path := filepath.Join(t.TempDir(), "state.json")
	if err := saveSnapshot(srv, path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	// Reload into a fresh server.
	srv2 := newTestDaemonServer(t)
	if err := loadSnapshot(srv2, path); err != nil {
		t.Fatal(err)
	}
}

func TestLoadSnapshotMissingFileIsFirstStart(t *testing.T) {
	srv := newTestDaemonServer(t)
	if err := loadSnapshot(srv, filepath.Join(t.TempDir(), "nope.json")); err != nil {
		t.Fatalf("missing snapshot must be tolerated: %v", err)
	}
}

func TestLoadSnapshotGarbage(t *testing.T) {
	srv := newTestDaemonServer(t)
	path := filepath.Join(t.TempDir(), "state.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := loadSnapshot(srv, path); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}

func TestSaveSnapshotAtomic(t *testing.T) {
	srv := newTestDaemonServer(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := saveSnapshot(srv, path); err != nil {
		t.Fatal(err)
	}
	// No temp file left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "state.json" {
		t.Fatalf("dir contents: %v", entries)
	}
}

func TestSaveSnapshotBadDir(t *testing.T) {
	srv := newTestDaemonServer(t)
	if err := saveSnapshot(srv, "/does/not/exist/state.json"); err == nil {
		t.Fatal("unwritable path accepted")
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-b", "7"}); err == nil {
		t.Fatal("invalid trust config accepted")
	}
}
