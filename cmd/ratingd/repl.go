package main

// Replication role wiring. A -follow daemon starts as a
// bounded-staleness read replica of its primary and can flip — once,
// in place, without restarting — into a primary: on demand (POST
// /v1/repl/promote, or the `ratingd -promote <url>` one-shot) or
// automatically when the primary has been silent past -promote-after.
// Promotion truncates to the follower's last complete barrier (the
// follower drops pending barriers rather than half-applying them) and
// commits that state as a fresh WAL epoch through the same manifest
// machinery shard-count migrations use, so the new primary can
// immediately serve bootstraps and streams to surviving followers.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/wal"
)

// replNodeConfig carries everything promotion needs from run()'s flag
// set, captured up front so the flip never blocks on missing wiring.
type replNodeConfig struct {
	Follower   *repl.Follower
	Server     *server.Server
	Engine     *shard.Engine
	Metrics    *repl.Metrics
	PrimaryURL string
	// WALDir is where promotion commits the new epoch; empty promotes
	// without durability (and without serving replication onward).
	WALDir string
	MkOpts func(dir string) wal.Options
	// Router shape for the promoted journal, mirroring primary mode.
	BatchSize     int
	BatchInterval time.Duration
	ShardMetrics  *shard.Metrics
	// Staleness bounds enforced by the server's replica gate.
	MaxLagRecords uint64
	MaxLagSeconds float64
	Warnf         func(string, ...any)
}

// replNode owns the daemon's replication role and its /v1/repl routes.
type replNode struct {
	cfg replNodeConfig

	mu       sync.Mutex
	promoted bool
	epoch    int
	journal  *shardJournal
	router   *shard.Router
	primMux  *http.ServeMux // promoted primary's repl routes; nil without a WAL
}

func newReplNode(cfg replNodeConfig) *replNode {
	if cfg.Warnf == nil {
		cfg.Warnf = func(string, ...any) {}
	}
	return &replNode{cfg: cfg}
}

// replicaInfo is the server's per-request staleness sample while the
// node serves as a replica; promotion clears the marker so this stops
// being consulted.
func (n *replNode) replicaInfo() func() server.ReplicaInfo {
	return func() server.ReplicaInfo {
		records, seconds, ok := n.cfg.Follower.Lag()
		return server.ReplicaInfo{
			Primary:       n.cfg.PrimaryURL,
			Ready:         ok,
			LagRecords:    records,
			LagSeconds:    seconds,
			MaxLagRecords: n.cfg.MaxLagRecords,
			MaxLagSeconds: n.cfg.MaxLagSeconds,
		}
	}
}

// routes mounts the follower-role replication endpoints on the daemon
// mux. Stream and snapshot answer not_primary until promotion, then
// delegate to the promoted primary's handlers.
func (n *replNode) routes(mux *http.ServeMux) {
	mux.HandleFunc("GET /v1/repl/status", n.handleStatus)
	mux.HandleFunc("GET /v1/repl/stream", n.handleReplicated)
	mux.HandleFunc("GET /v1/repl/snapshot", n.handleReplicated)
	mux.HandleFunc("POST /v1/repl/promote", n.handlePromote)
}

func (n *replNode) handleStatus(w http.ResponseWriter, r *http.Request) {
	n.mu.Lock()
	promoted, primMux := n.promoted, n.primMux
	n.mu.Unlock()
	if !promoted {
		writeJSON(w, http.StatusOK, n.cfg.Follower.Status())
		return
	}
	if primMux != nil {
		primMux.ServeHTTP(w, r)
		return
	}
	n.mu.Lock()
	st := n.statusLocked()
	n.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (n *replNode) handleReplicated(w http.ResponseWriter, r *http.Request) {
	n.mu.Lock()
	promoted, primMux := n.promoted, n.primMux
	n.mu.Unlock()
	if primMux != nil {
		primMux.ServeHTTP(w, r)
		return
	}
	if promoted {
		writeJSON(w, http.StatusServiceUnavailable, api.NewError(api.CodeUnavailable,
			"promoted without -wal; this primary cannot serve replication"))
		return
	}
	writeJSON(w, http.StatusMisdirectedRequest, api.NewError(api.CodeNotPrimary,
		"this node is a follower; replicate from the primary").
		WithPrimary(n.cfg.PrimaryURL))
}

func (n *replNode) handlePromote(w http.ResponseWriter, r *http.Request) {
	st, err := n.promote("requested via POST /v1/repl/promote")
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable,
			api.NewError(api.CodeUnavailable, "%s", err.Error()))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// statusLocked reports the promoted role; before promotion the
// follower's own Status is authoritative.
func (n *replNode) statusLocked() api.ReplStatusResponse {
	st := api.ReplStatusResponse{
		Role:       api.RolePrimary,
		Epoch:      n.epoch,
		Shards:     n.cfg.Engine.Shards(),
		BarrierSeq: n.journal.NextBarrierSeq() - 1,
	}
	for i, l := range n.journal.logs {
		tail := l.Tail()
		st.Cursors = append(st.Cursors, api.ReplCursor{
			Shard: i, Seg: tail.Seg, Off: tail.Off, Records: l.AppendedRecords(),
		})
	}
	return st
}

func (n *replNode) isPromoted() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.promoted
}

// promote flips the node into a primary. Idempotent: a second call
// (operator race, death watch firing behind a manual promote) returns
// the promoted status without re-running the flip.
func (n *replNode) promote(why string) (api.ReplStatusResponse, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.promoted {
		return n.statusLocked(), nil
	}
	n.cfg.Warnf("repl: promoting to primary: %s", why)

	// Stop replication; the engine is left at the last complete
	// barrier plus fully-applied batches, never a half-applied window.
	seq := n.cfg.Follower.Promote()
	epoch := n.cfg.Follower.Epoch() + 1

	sj := newShardJournal(n.cfg.Engine, nil, seq)
	if n.cfg.WALDir != "" {
		if err := os.MkdirAll(n.cfg.WALDir, 0o755); err != nil {
			return api.ReplStatusResponse{}, err
		}
		// Never reuse an epoch a stale local manifest already names —
		// a follower re-pointed here before promotion may have left one.
		if m, ok, err := readManifest(n.cfg.WALDir); err == nil && ok && m.Epoch >= epoch {
			epoch = m.Epoch + 1
		}
		w, err := migrateToEpoch(n.cfg.WALDir, epoch, n.cfg.Engine.Shards(), n.cfg.Engine, seq, n.cfg.MkOpts)
		if err != nil {
			return api.ReplStatusResponse{}, fmt.Errorf("commit promoted epoch %d: %w", epoch, err)
		}
		sj.logs = w.logs
	}
	router, err := shard.NewRouter(shard.RouterConfig{
		Shards:    n.cfg.Engine.Shards(),
		BatchSize: n.cfg.BatchSize,
		Interval:  n.cfg.BatchInterval,
		Flush:     sj.flush,
		Metrics:   n.cfg.ShardMetrics,
	})
	if err != nil {
		closeLogSet(sj.logs)
		return api.ReplStatusResponse{}, err
	}
	sj.router = router
	n.journal, n.router, n.epoch = sj, router, epoch
	if sj.logs != nil {
		p := repl.NewPrimary(repl.PrimaryConfig{
			Epoch: epoch, Logs: sj.logs, Journal: sj, Metrics: n.cfg.Metrics,
		})
		n.primMux = http.NewServeMux()
		p.Routes(n.primMux)
	}
	// Flip the serving layer: install the journal first so the very
	// next request admitted past the cleared gate writes through it.
	n.cfg.Server.SetJournal(sj)
	n.cfg.Server.SetReplica(nil)
	n.promoted = true
	n.cfg.Warnf("repl: promoted to primary (epoch %d, next barrier %d)", epoch, seq)
	return n.statusLocked(), nil
}

// deathWatch promotes the node once the primary has been silent past
// `after`. It only fires on a bootstrapped follower — promoting a
// replica that never reached its primary would crown an empty store.
func (n *replNode) deathWatch(done <-chan struct{}, after time.Duration) {
	tick := after / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case <-t.C:
			if n.isPromoted() {
				return
			}
			lc := n.cfg.Follower.LastContact()
			if lc.IsZero() || time.Since(lc) < after {
				continue
			}
			if _, err := n.promote(fmt.Sprintf("primary silent %s, past -promote-after %s",
				time.Since(lc).Round(time.Millisecond), after)); err != nil {
				n.cfg.Warnf("repl: auto-promotion failed: %v", err)
			}
			return
		}
	}
}

// close stops replication — or, on a promoted node, drains the
// promoted journal, rebases its logs, and closes them — at shutdown.
func (n *replNode) close() error {
	n.cfg.Follower.Stop()
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.promoted {
		return nil
	}
	var errs []error
	if err := n.router.Close(); err != nil {
		errs = append(errs, fmt.Errorf("close promoted router: %w", err))
	}
	if n.journal.logs != nil {
		if err := n.journal.Snapshot(); err != nil {
			errs = append(errs, fmt.Errorf("final promoted snapshot: %w", err))
		}
		for i, l := range n.journal.logs {
			if err := l.Close(); err != nil && !errors.Is(err, wal.ErrClosed) {
				errs = append(errs, fmt.Errorf("close promoted shard %d wal: %w", i, err))
			}
		}
	}
	return errors.Join(errs...)
}

// promoteRemote is the `ratingd -promote <url>` one-shot: ask the
// daemon at base to promote, print the resulting role, exit.
func promoteRemote(base string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(base, "/")+"/v1/repl/promote", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 2048))
		return fmt.Errorf("promote %s: status %d: %s", base, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var st api.ReplStatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return fmt.Errorf("promote %s: decode response: %w", base, err)
	}
	fmt.Printf("promoted: role=%s epoch=%d shards=%d barrier=%d\n",
		st.Role, st.Epoch, st.Shards, st.BarrierSeq)
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
