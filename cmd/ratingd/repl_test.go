package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/telemetry"
)

// primaryDaemon assembles the primary exactly the way run() does:
// engine + sharded WAL + shardJournal + router + server, with the
// replication endpoints mounted on the daemon mux.
type primaryDaemon struct {
	ts      *httptest.Server
	journal *shardJournal
}

func startPrimaryDaemon(t *testing.T, shards int) *primaryDaemon {
	t.Helper()
	engine, err := shard.NewEngine(core.Config{}, shards)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := openShardWALs(t.TempDir(), shards, engine, testWALOpts, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { closeLogSet(ws.logs) })
	sj := newShardJournal(engine, ws.logs, ws.seq)
	router, err := shard.NewRouter(shard.RouterConfig{
		Shards: shards, BatchSize: 64, Interval: time.Millisecond, Flush: sj.flush,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { router.Close() })
	sj.router = router
	srv, err := server.NewWith(engine, server.WithJournal(sj))
	if err != nil {
		t.Fatal(err)
	}
	p := repl.NewPrimary(repl.PrimaryConfig{
		Epoch: ws.epoch, Logs: ws.logs, Journal: sj,
		LongPoll: time.Second, Poll: time.Millisecond, Heartbeat: 20 * time.Millisecond,
	})
	ts := httptest.NewServer(telemetryMux(srv, telemetry.NewRegistry(), false, p.Routes))
	t.Cleanup(ts.Close)
	return &primaryDaemon{ts: ts, journal: sj}
}

// followerDaemon assembles the follower the way run() does in -follow
// mode: engine backend, no journal, replica gate sampling the
// follower's lag, and the replNode routes on the daemon mux.
type followerDaemon struct {
	ts     *httptest.Server
	node   *replNode
	walDir string
}

func startFollowerDaemon(t *testing.T, primaryURL string, shards int) *followerDaemon {
	t.Helper()
	engine, err := shard.NewEngine(core.Config{}, shards)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.NewWith(engine)
	if err != nil {
		t.Fatal(err)
	}
	follower := repl.NewFollower(repl.FollowerConfig{
		PrimaryURL:   primaryURL,
		Engine:       engine,
		Seed:         7,
		ReconnectMin: 2 * time.Millisecond,
		ReconnectMax: 50 * time.Millisecond,
		FrameTimeout: 2 * time.Second,
		OnApply:      srv.InvalidateRatings,
		OnWindow:     func() { srv.InvalidateAll() },
		Warnf:        t.Logf,
	})
	walDir := t.TempDir()
	node := newReplNode(replNodeConfig{
		Follower:      follower,
		Server:        srv,
		Engine:        engine,
		PrimaryURL:    primaryURL,
		WALDir:        walDir,
		MkOpts:        testWALOpts,
		BatchSize:     64,
		BatchInterval: time.Millisecond,
		MaxLagRecords: 10_000,
		Warnf:         t.Logf,
	})
	srv.SetReplica(node.replicaInfo())
	runDone := make(chan struct{})
	go func() { defer close(runDone); _ = follower.Run(context.Background()) }()
	t.Cleanup(func() {
		if err := node.close(); err != nil {
			t.Errorf("node close: %v", err)
		}
		<-runDone
	})
	ts := httptest.NewServer(telemetryMux(srv, telemetry.NewRegistry(), false, node.routes))
	t.Cleanup(ts.Close)
	return &followerDaemon{ts: ts, node: node, walDir: walDir}
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	res, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(res.Body)
	res.Body.Close()
	return res, data
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(res.Body)
	res.Body.Close()
	return res, data
}

func replStatus(t *testing.T, base string) api.ReplStatusResponse {
	t.Helper()
	res, data := getBody(t, base+"/v1/repl/status")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("repl status: %d %s", res.StatusCode, data)
	}
	var st api.ReplStatusResponse
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("repl status decode: %v (%s)", err, data)
	}
	return st
}

func waitDaemon(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// The full daemon story end to end: a follower replicates a sharded-
// WAL primary, serves byte-identical lag-stamped reads, refuses writes
// with a redirect to the primary, and — promoted via the one-shot
// client — commits a fresh WAL epoch and starts accepting writes.
func TestDaemonFollowerServesAndPromotes(t *testing.T) {
	p := startPrimaryDaemon(t, 2)

	var batch []string
	for i := 0; i < 20; i++ {
		batch = append(batch, fmt.Sprintf(`{"rater":%d,"object":%d,"value":%g,"time":%g}`,
			i%5+1, i%3+1, 0.2+float64(i%4)*0.2, float64(i)))
	}
	if res, data := postJSON(t, p.ts.URL+"/v1/ratings", "["+strings.Join(batch, ",")+"]"); res.StatusCode != http.StatusOK {
		t.Fatalf("primary submit: %d %s", res.StatusCode, data)
	}
	if res, data := postJSON(t, p.ts.URL+"/v1/process", `{"start":0,"end":30}`); res.StatusCode != http.StatusOK {
		t.Fatalf("primary process: %d %s", res.StatusCode, data)
	}

	f := startFollowerDaemon(t, p.ts.URL, 2)
	waitDaemon(t, 10*time.Second, "follower convergence", func() bool {
		st := replStatus(t, f.ts.URL)
		return st.Role == api.RoleFollower && st.BarrierSeq == 1 && st.LagRecords == 0
	})

	// Reads: byte-identical to the primary, stamped with the lag header.
	for _, path := range []string{"/v1/stats", "/v1/objects/1/aggregate", "/v1/raters/1/trust"} {
		resP, bodyP := getBody(t, p.ts.URL+path)
		resF, bodyF := getBody(t, f.ts.URL+path)
		if resP.StatusCode != resF.StatusCode || string(bodyP) != string(bodyF) {
			t.Fatalf("%s: replica differs: %d %s vs %d %s", path, resP.StatusCode, bodyP, resF.StatusCode, bodyF)
		}
		if resF.Header.Get(server.ReplicaLagHeader) == "" {
			t.Fatalf("%s: replica read missing %s", path, server.ReplicaLagHeader)
		}
	}

	// Writes redirect to the primary; so does a replication request.
	res, data := postJSON(t, f.ts.URL+"/v1/ratings", `[{"rater":9,"object":1,"value":0.5,"time":3}]`)
	var env api.Error
	if json.Unmarshal(data, &env); res.StatusCode != http.StatusMisdirectedRequest ||
		env.Code != api.CodeNotPrimary || env.Primary != p.ts.URL {
		t.Fatalf("follower write: %d %s", res.StatusCode, data)
	}
	if res, data := getBody(t, f.ts.URL+"/v1/repl/snapshot"); res.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("follower bootstrap-serve: %d %s", res.StatusCode, data)
	}

	// Promote through the `ratingd -promote <url>` one-shot path.
	if err := promoteRemote(f.ts.URL); err != nil {
		t.Fatal(err)
	}
	st := replStatus(t, f.ts.URL)
	if st.Role != api.RolePrimary || st.Epoch != 2 || st.BarrierSeq != 1 {
		t.Fatalf("promoted status: %+v", st)
	}
	if m, ok, err := readManifest(f.walDir); err != nil || !ok || m.Epoch != 2 || m.Shards != 2 {
		t.Fatalf("promoted manifest: %+v ok=%v err=%v", m, ok, err)
	}

	// The promoted node accepts writes and windows through its new WAL.
	if res, data := postJSON(t, f.ts.URL+"/v1/ratings", `[{"rater":9,"object":1,"value":0.5,"time":3}]`); res.StatusCode != http.StatusOK {
		t.Fatalf("promoted submit: %d %s", res.StatusCode, data)
	}
	if res, data := postJSON(t, f.ts.URL+"/v1/process", `{"start":0,"end":30}`); res.StatusCode != http.StatusOK {
		t.Fatalf("promoted process: %d %s", res.StatusCode, data)
	}
	if res, _ := getBody(t, f.ts.URL+"/v1/stats"); res.Header.Get(server.ReplicaLagHeader) != "" {
		t.Fatal("promoted node still stamps replica lag")
	}
	if got := replStatus(t, f.ts.URL); got.BarrierSeq != 2 {
		t.Fatalf("promoted barrier height: %+v", got)
	}

	// Promotion is idempotent.
	if res, data := postJSON(t, f.ts.URL+"/v1/repl/promote", ""); res.StatusCode != http.StatusOK {
		t.Fatalf("re-promote: %d %s", res.StatusCode, data)
	}
}

// With -promote-after, a bootstrapped follower crowns itself once the
// primary goes silent past the deadline.
func TestDaemonAutoPromoteOnPrimaryDeath(t *testing.T) {
	p := startPrimaryDaemon(t, 1)
	if res, data := postJSON(t, p.ts.URL+"/v1/ratings", `[{"rater":1,"object":1,"value":0.5,"time":1}]`); res.StatusCode != http.StatusOK {
		t.Fatalf("primary submit: %d %s", res.StatusCode, data)
	}

	f := startFollowerDaemon(t, p.ts.URL, 1)
	waitDaemon(t, 10*time.Second, "follower convergence", func() bool {
		return replStatus(t, f.ts.URL).LagRecords == 0 && f.node.cfg.Follower.LastContact() != (time.Time{})
	})

	done := make(chan struct{})
	defer close(done)
	go f.node.deathWatch(done, 150*time.Millisecond)

	p.ts.CloseClientConnections()
	p.ts.Close()

	waitDaemon(t, 10*time.Second, "auto-promotion", func() bool { return f.node.isPromoted() })
	if st := replStatus(t, f.ts.URL); st.Role != api.RolePrimary {
		t.Fatalf("post-death status: %+v", st)
	}
	if res, data := postJSON(t, f.ts.URL+"/v1/ratings", `[{"rater":2,"object":1,"value":0.7,"time":2}]`); res.StatusCode != http.StatusOK {
		t.Fatalf("post-death submit: %d %s", res.StatusCode, data)
	}
}
