package main

import (
	"context"
	"errors"
	"io"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/rating"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/shard/shardtest"
	"repro/internal/wal"
)

func testWALOpts(dir string) wal.Options {
	return wal.Options{Dir: dir, Policy: wal.SyncNever}
}

// openShardDaemon wires the sharded pieces the way run() does: epoch
// layout open + recovery, journal, batching router.
func openShardDaemon(t *testing.T, dir string, shards int) (*shard.Engine, *shardJournal, *shardWALs) {
	t.Helper()
	engine, err := shard.NewEngine(core.Config{}, shards)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := openShardWALs(dir, shards, engine, testWALOpts, t.Logf)
	if err != nil {
		t.Fatalf("open shard wals: %v", err)
	}
	j := newShardJournal(engine, ws.logs, ws.seq)
	// BatchSize 1 so every Submit flushes immediately; the ticker is
	// off to keep tests free of timing.
	r, err := shard.NewRouter(shard.RouterConfig{
		Shards: shards, BatchSize: 1, Interval: -1, Flush: j.flush,
	})
	if err != nil {
		t.Fatal(err)
	}
	j.router = r
	return engine, j, ws
}

func closeShardDaemon(t *testing.T, j *shardJournal, ws *shardWALs) {
	t.Helper()
	if err := j.router.Close(); err != nil {
		t.Fatal(err)
	}
	for _, l := range ws.logs {
		if err := l.Close(); err != nil && !errors.Is(err, wal.ErrClosed) {
			t.Fatal(err)
		}
	}
}

func engineFingerprint(t *testing.T, e *shard.Engine, objects int) string {
	t.Helper()
	fp, err := shardtest.Fingerprint(e, objects)
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

// Ratings and windows accepted through the sharded journal survive an
// abrupt stop with no final snapshot: per-shard tails plus barrier
// records reconstruct the exact state.
func TestShardDaemonRoundTrip(t *testing.T) {
	w := shardtest.Workload{Seed: 31, Months: 2, PerMonth: 200}
	months := w.Generate()
	dir := t.TempDir()

	_, j, ws := openShardDaemon(t, dir, 2)
	engine := j.engine
	for _, m := range months {
		if err := j.SubmitAll(m.Ratings); err != nil {
			t.Fatal(err)
		}
		if _, err := j.ProcessWindow(m.Start, m.End); err != nil {
			t.Fatal(err)
		}
	}
	want := engineFingerprint(t, engine, 5)
	closeShardDaemon(t, j, ws) // abrupt: no snapshot

	engine2, j2, ws2 := openShardDaemon(t, dir, 2)
	defer closeShardDaemon(t, j2, ws2)
	if !ws2.recovered {
		t.Fatal("no prior state recovered")
	}
	if got := engineFingerprint(t, engine2, 5); got != want {
		t.Fatalf("recovered state diverges:\nwant %q\ngot  %q", want, got)
	}
}

// Restarting with a different -shards value migrates the directory to
// a new epoch: same state, new layout, old epoch retired.
func TestShardDaemonShardCountMigration(t *testing.T) {
	w := shardtest.Workload{Seed: 32, Months: 2, PerMonth: 200}
	months := w.Generate()
	dir := t.TempDir()

	_, j, ws := openShardDaemon(t, dir, 2)
	for _, m := range months {
		if err := j.SubmitAll(m.Ratings); err != nil {
			t.Fatal(err)
		}
		if _, err := j.ProcessWindow(m.Start, m.End); err != nil {
			t.Fatal(err)
		}
	}
	want := engineFingerprint(t, j.engine, 5)
	closeShardDaemon(t, j, ws)

	engine2, j2, ws2 := openShardDaemon(t, dir, 3)
	if !ws2.recovered {
		t.Fatal("migration did not report recovered state")
	}
	if got := engineFingerprint(t, engine2, 5); got != want {
		t.Fatalf("migrated state diverges:\nwant %q\ngot  %q", want, got)
	}
	m, ok, err := readManifest(dir)
	if err != nil || !ok {
		t.Fatalf("manifest after migration: ok=%v err=%v", ok, err)
	}
	if m.Epoch != 2 || m.Shards != 3 {
		t.Fatalf("manifest = %+v, want epoch 2 shards 3", m)
	}
	if _, err := os.Stat(epochPath(dir, 1)); !os.IsNotExist(err) {
		t.Fatalf("retired epoch 1 still present (err=%v)", err)
	}
	closeShardDaemon(t, j2, ws2)

	// The migrated layout must itself recover cleanly.
	engine3, j3, ws3 := openShardDaemon(t, dir, 3)
	defer closeShardDaemon(t, j3, ws3)
	if got := engineFingerprint(t, engine3, 5); got != want {
		t.Fatalf("post-migration restart diverges:\nwant %q\ngot  %q", want, got)
	}
}

// A pre-sharding WAL (segments directly in the root) migrates into
// epoch 1 with its ratings and window effects intact, and a second
// restart does not replay the legacy records again.
func TestShardDaemonLegacyMigration(t *testing.T) {
	dir := t.TempDir()
	log, _, err := wal.Open(testWALOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := core.NewSystem(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		r := rating.Rating{Rater: rating.RaterID(i%5 + 1), Object: 7, Value: 0.8, Time: float64(i)}
		if err := log.Append(wal.RatingRecord(r)); err != nil {
			t.Fatal(err)
		}
		if err := oracle.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Append(wal.ProcessRecord(0, 30)); err != nil {
		t.Fatal(err)
	}
	if _, err := oracle.ProcessWindow(0, 30); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	want, err := shardtest.Fingerprint(oracle, 8)
	if err != nil {
		t.Fatal(err)
	}

	engine, j, ws := openShardDaemon(t, dir, 2)
	if !ws.recovered {
		t.Fatal("legacy state not recovered")
	}
	if got := engineFingerprint(t, engine, 8); got != want {
		t.Fatalf("legacy migration diverges:\nwant %q\ngot  %q", want, got)
	}
	closeShardDaemon(t, j, ws)

	// Restart: the manifest supersedes the legacy segments still on
	// disk, so nothing replays twice.
	engine2, j2, ws2 := openShardDaemon(t, dir, 2)
	defer closeShardDaemon(t, j2, ws2)
	if got := engine2.Len(); got != 25 {
		t.Fatalf("after restart Len = %d, want 25 (legacy log replayed twice?)", got)
	}
	if got := engineFingerprint(t, engine2, 8); got != want {
		t.Fatalf("post-migration restart diverges:\nwant %q\ngot  %q", want, got)
	}
}

// A crash during the legacy migration — epoch-0001 created, SOME
// shard snapshots written, manifest not yet committed — must not be
// adopted as a complete epoch: that would silently drop every shard
// whose snapshot was never written. The legacy log in the root is
// still authoritative, so the migration re-runs from scratch.
func TestShardDaemonInterruptedLegacyMigrationRetries(t *testing.T) {
	dir := t.TempDir()
	log, _, err := wal.Open(testWALOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := core.NewSystem(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var ratings []rating.Rating
	for i := 0; i < 40; i++ {
		// Objects spread over both shards so a dropped shard is visible.
		r := rating.Rating{Rater: rating.RaterID(i%8 + 1), Object: rating.ObjectID(i % 5), Value: 0.8, Time: float64(i) / 2}
		ratings = append(ratings, r)
		if err := log.Append(wal.RatingRecord(r)); err != nil {
			t.Fatal(err)
		}
		if err := oracle.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Append(wal.ProcessRecord(0, 30)); err != nil {
		t.Fatal(err)
	}
	if _, err := oracle.ProcessWindow(0, 30); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	want, err := shardtest.Fingerprint(oracle, 5)
	if err != nil {
		t.Fatal(err)
	}

	// Reproduce the crash window: the migration replayed the legacy log
	// into the engine and wrote shard 0's snapshot into epoch-0001, then
	// died before shard 1's snapshot and the manifest commit.
	partial, err := shard.NewEngine(core.Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := partial.SubmitAll(ratings); err != nil {
		t.Fatal(err)
	}
	if _, err := partial.ProcessWindow(0, 30); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		el, _, err := wal.Open(testWALOpts(shardWALPath(dir, 1, i)))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			if err := el.Snapshot(func(w io.Writer) error {
				return shard.WriteShardSnapshot(partial, 0, 0, w)
			}); err != nil {
				t.Fatal(err)
			}
		}
		if err := el.Close(); err != nil {
			t.Fatal(err)
		}
	}

	engine, j, ws := openShardDaemon(t, dir, 2)
	defer closeShardDaemon(t, j, ws)
	if !ws.recovered {
		t.Fatal("legacy state not recovered")
	}
	if got := engine.Len(); got != 40 {
		t.Fatalf("after interrupted migration Len = %d, want 40 (half-written epoch adopted?)", got)
	}
	if got := engineFingerprint(t, engine, 5); got != want {
		t.Fatalf("re-run migration diverges:\nwant %q\ngot  %q", want, got)
	}
	m, ok, err := readManifest(dir)
	if err != nil || !ok {
		t.Fatalf("manifest after re-run migration: ok=%v err=%v", ok, err)
	}
	if m.Epoch != 1 || m.Shards != 2 {
		t.Fatalf("manifest = %+v, want epoch 1 shards 2", m)
	}
}

// A barrier broadcast that fails after reaching some logs wedges the
// journal: accepting more writes would turn a recoverable torn
// barrier into an unrecoverable mid-stream inconsistency.
func TestShardJournalWedgesOnPartialBarrier(t *testing.T) {
	dir := t.TempDir()
	_, j, ws := openShardDaemon(t, dir, 2)
	defer closeShardDaemon(t, j, ws)

	if err := j.SubmitAll([]rating.Rating{{Rater: 1, Object: 0, Value: 0.5, Time: 1}}); err != nil {
		t.Fatal(err)
	}
	// Kill shard 1's log out from under the journal: the barrier lands
	// in log 0, then fails — a partial broadcast.
	if err := ws.logs[1].Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := j.ProcessWindow(0, 30); err == nil {
		t.Fatal("partial barrier broadcast did not error")
	}
	if err := j.flush(0, []rating.Rating{{Rater: 2, Object: 0, Value: 0.6, Time: 2}}); !errors.Is(err, errJournalWedged) {
		t.Fatalf("flush after partial barrier = %v, want errJournalWedged", err)
	}
	if _, err := j.ProcessWindow(0, 30); !errors.Is(err, errJournalWedged) {
		t.Fatalf("window after partial barrier = %v, want errJournalWedged", err)
	}
}

// The full HTTP surface works in front of the sharded engine: submit,
// process, and reads all route through the journal and router.
func TestShardDaemonServesHTTP(t *testing.T) {
	dir := t.TempDir()
	engine, j, ws := openShardDaemon(t, dir, 4)
	defer closeShardDaemon(t, j, ws)
	srv, err := server.NewWith(engine, server.WithJournal(j))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := server.NewClient(ts.URL, ts.Client())
	ctx := context.Background()

	var batch []server.RatingPayload
	for i := 0; i < 40; i++ {
		batch = append(batch, server.RatingPayload{
			Rater: i%8 + 1, Object: i % 5, Value: 0.8, Time: float64(i) / 2,
		})
	}
	if _, err := client.Submit(ctx, batch); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Process(ctx, 0, 30); err != nil {
		t.Fatal(err)
	}
	if got := engine.Len(); got != 40 {
		t.Fatalf("Len = %d, want 40", got)
	}
	agg, err := client.Aggregate(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Value <= 0 {
		t.Fatalf("aggregate for object 3 = %+v", agg)
	}
}

// The legacy single-system path refuses a directory the sharded
// layout owns rather than serving empty state beside it.
func TestLegacyPathRefusesShardedDir(t *testing.T) {
	dir := t.TempDir()
	if err := writeManifest(dir, walManifest{Version: manifestVersion, Epoch: 1, Shards: 4}); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-wal", dir, "-addr", "127.0.0.1:0"})
	if err == nil || !strings.Contains(err.Error(), "sharded") {
		t.Fatalf("run on sharded dir with -shards=1 = %v, want sharded-dir refusal", err)
	}
}

// A promoted single-shard follower leaves a sharded WAL directory with
// shards=1; restarting against it at the default -shards 1 must open
// the sharded layout and recover, not refuse (regression: the legacy
// path's sharded-dir guard used to reject its own manifest).
func TestShardedDirAtOneShardReopens(t *testing.T) {
	dir := t.TempDir()
	engine, err := shard.NewEngine(core.Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		r := rating.Rating{Rater: rating.RaterID(i%4 + 1), Object: rating.ObjectID(i % 3), Value: 0.6, Time: float64(i)}
		if err := engine.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	// The shape promotion writes: a fresh fully-snapshotted 1-shard
	// epoch committed by the manifest flip.
	if _, err := migrateToEpoch(dir, 2, 1, engine, 1, testWALOpts); err != nil {
		t.Fatal(err)
	}

	if ok, err := useShardEngine(1, dir); err != nil || !ok {
		t.Fatalf("useShardEngine(1, promoted dir) = %v, %v; want true", ok, err)
	}
	if ok, err := useShardEngine(1, t.TempDir()); err != nil || ok {
		t.Fatalf("useShardEngine(1, empty dir) = %v, %v; want false", ok, err)
	}

	reopened, err := shard.NewEngine(core.Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := openShardWALs(dir, 1, reopened, testWALOpts, t.Logf)
	if err != nil {
		t.Fatalf("reopen promoted 1-shard dir: %v", err)
	}
	defer closeLogSet(ws.logs)
	if !ws.recovered || ws.epoch != 2 || reopened.Len() != 12 {
		t.Fatalf("recovered=%v epoch=%d len=%d, want true/2/12", ws.recovered, ws.epoch, reopened.Len())
	}
}
