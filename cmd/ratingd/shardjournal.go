package main

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/core"
	"repro/internal/rating"
	"repro/internal/shard"
	"repro/internal/wal"
)

// errJournalWedged is returned once a barrier broadcast partially
// failed: some shard logs hold a window the others don't, and any
// further append would turn recoverable crash damage into a
// mid-stream inconsistency that recovery refuses to replay.
var errJournalWedged = errors.New("shard journal wedged after partial barrier broadcast; restart to recover")

// shardJournal implements server.Journal over one write-ahead log per
// shard. Ratings fan out through the batching router and land in the
// log of the shard that owns their object; maintenance windows are
// broadcast to every log as sequence-numbered barrier records, which
// is what lets recovery realign the independent per-shard histories
// into one global order.
//
// Locking mirrors walJournal's invariant, split for concurrency:
// rating flushes hold the read lock (different shards append in
// parallel), while barriers, restores, and snapshots hold the write
// lock so they observe no half-applied batch.
type shardJournal struct {
	mu     sync.RWMutex
	engine *shard.Engine
	router *shard.Router
	logs   []*wal.Log // nil when the WAL is disabled
	seq    uint64     // next barrier sequence number
	broken bool

	// recs[i] is shard i's reusable WAL record buffer. Shard i's flush
	// runs only on its router worker goroutine, so the buffer is
	// single-writer and the steady-state log path allocates nothing.
	recs [][]wal.Record
}

// newShardJournal wires a journal to its engine, per-shard logs (nil
// when the WAL is disabled) and next barrier sequence.
func newShardJournal(engine *shard.Engine, logs []*wal.Log, seq uint64) *shardJournal {
	return &shardJournal{
		engine: engine,
		logs:   logs,
		seq:    seq,
		recs:   make([][]wal.Record, engine.Shards()),
	}
}

// flush is the router's FlushFunc: append one shard's coalesced batch
// to that shard's log, then apply it to the engine. Runs on the
// shard's worker goroutine, so distinct shards log and apply
// concurrently under the shared read lock. The append is buffered and
// made durable by an explicit group commit: the write and the fsync
// are split so one leader fsync can cover every batch written before
// it (wal.Commit), collapsing the per-batch fsync tax when flushes
// pile up behind a slow disk.
func (j *shardJournal) flush(i int, rs []rating.Rating) error {
	j.mu.RLock()
	defer j.mu.RUnlock()
	if j.broken {
		return errJournalWedged
	}
	if j.logs != nil {
		recs := j.recs[i][:0]
		for _, r := range rs {
			recs = append(recs, wal.RatingRecord(r))
		}
		j.recs[i] = recs
		token, err := j.logs[i].AppendAllBuffered(recs)
		if err != nil {
			return err
		}
		if err := j.logs[i].Commit(token); err != nil {
			return err
		}
	}
	return j.engine.SubmitShard(i, rs)
}

// SubmitAll routes the batch through the router, blocking until every
// shard's flush has logged and applied its slice.
func (j *shardJournal) SubmitAll(rs []rating.Rating) error {
	return j.router.Submit(rs)
}

// SubmitAsync implements server.AsyncSubmitter: the streaming ingest
// endpoint enqueues a batch and keeps decoding while the router's
// group commit logs and applies it. The returned wait reports the
// flush outcome; the caller's slice is copied before return.
func (j *shardJournal) SubmitAsync(rs []rating.Rating) (func() error, error) {
	return j.router.SubmitAsync(rs)
}

// ProcessWindow broadcasts the window's barrier to every shard log,
// then runs it. A failure before any log accepted the barrier is a
// clean refusal; a failure after the first acceptance wedges the
// journal — the histories have diverged and only a restart (which
// drops the torn trailing barrier) can reconcile them.
func (j *shardJournal) ProcessWindow(start, end float64) (core.ProcessReport, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.broken {
		return core.ProcessReport{}, errJournalWedged
	}
	if j.logs != nil {
		rec := wal.BarrierRecord(j.seq, start, end)
		for i, l := range j.logs {
			if err := l.Append(rec); err != nil {
				if i > 0 {
					j.broken = true
					return core.ProcessReport{}, fmt.Errorf(
						"barrier %d reached %d/%d shard logs: %w", j.seq, i, len(j.logs), err)
				}
				return core.ProcessReport{}, err
			}
		}
	}
	j.seq++
	return j.engine.ProcessWindow(start, end)
}

// NextBarrierSeq reports the sequence number the next maintenance
// barrier will carry; the replication primary (repl.Journal) serves
// NextBarrierSeq()-1 as its barrier height.
func (j *shardJournal) NextBarrierSeq() uint64 {
	j.mu.RLock()
	defer j.mu.RUnlock()
	return j.seq
}

// Restore replaces the engine state and rebases every shard log on a
// snapshot of it, so stale segments can't replay over the restored
// state after a crash.
func (j *shardJournal) Restore(r io.Reader) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.broken {
		return errJournalWedged
	}
	if err := j.engine.LoadSnapshot(r); err != nil {
		return err
	}
	if err := j.snapshotLocked(); err != nil {
		return fmt.Errorf("rebase shard logs after restore: %w", err)
	}
	return nil
}

// Snapshot captures the current per-shard state as each log's new
// baseline and compacts covered segments. The write lock keeps every
// shard's snapshot at the same barrier height.
func (j *shardJournal) Snapshot() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshotLocked()
}

func (j *shardJournal) snapshotLocked() error {
	if j.logs == nil {
		return nil
	}
	barrier := j.seq - 1 // last applied window
	for i, l := range j.logs {
		i := i
		if err := l.Snapshot(func(w io.Writer) error {
			return shard.WriteShardSnapshot(j.engine, i, barrier, w)
		}); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Sync flushes every shard log's buffered frames to disk; used by the
// background fsync loop under -fsync interval.
func (j *shardJournal) Sync() error {
	for i, l := range j.logs {
		if err := l.Sync(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}
