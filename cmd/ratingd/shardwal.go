package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/faultinject"
	"repro/internal/parallel"
	"repro/internal/shard"
	"repro/internal/wal"
)

// A sharded -wal directory is laid out as
//
//	MANIFEST                     {"version":1,"epoch":3,"shards":4}
//	epoch-0003/shard-0000/...    one WAL per shard for the live epoch
//	epoch-0003/shard-0001/...
//
// The manifest is the single atomic commit point: whatever epoch it
// names is authoritative, and everything else in the directory is
// garbage from a superseded epoch or an interrupted migration. That
// is what makes shard-count changes crash-safe — the new epoch's logs
// are fully written and snapshotted BEFORE the manifest flips, so a
// crash at any instant leaves either the complete old epoch or the
// complete new one.
const (
	manifestName    = "MANIFEST"
	manifestVersion = 1
	epochPrefix     = "epoch-"
	shardPrefix     = "shard-"
)

type walManifest struct {
	Version int `json:"version"`
	Epoch   int `json:"epoch"`
	Shards  int `json:"shards"`
}

func epochDirName(epoch int) string       { return fmt.Sprintf("%s%04d", epochPrefix, epoch) }
func shardSubdirName(i int) string        { return fmt.Sprintf("%s%04d", shardPrefix, i) }
func manifestPath(root string) string     { return filepath.Join(root, manifestName) }
func epochPath(root string, e int) string { return filepath.Join(root, epochDirName(e)) }

func shardWALPath(root string, epoch, i int) string {
	return filepath.Join(epochPath(root, epoch), shardSubdirName(i))
}

// readManifest reports ok=false when the file does not exist; any
// other failure (corruption, wrong version) is an error — guessing at
// the layout of a durability directory is how data gets lost.
func readManifest(root string) (walManifest, bool, error) {
	data, err := os.ReadFile(manifestPath(root))
	if os.IsNotExist(err) {
		return walManifest{}, false, nil
	}
	if err != nil {
		return walManifest{}, false, err
	}
	var m walManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return walManifest{}, false, fmt.Errorf("manifest %s corrupt: %w", manifestPath(root), err)
	}
	if m.Version != manifestVersion {
		return walManifest{}, false, fmt.Errorf("manifest %s: unsupported version %d", manifestPath(root), m.Version)
	}
	if m.Epoch < 1 || m.Shards < 1 {
		return walManifest{}, false, fmt.Errorf("manifest %s: invalid epoch=%d shards=%d", manifestPath(root), m.Epoch, m.Shards)
	}
	return m, true, nil
}

// writeManifest commits atomically and durably: temp file, fsync,
// rename, directory fsync — the same discipline as snapshot writes.
func writeManifest(root string, m walManifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp := manifestPath(root) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, manifestPath(root)); err != nil {
		return err
	}
	return faultinject.OS().SyncDir(root)
}

// scanEpochs lists epoch numbers present on disk, ascending.
func scanEpochs(root string) ([]int, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var epochs []int
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), epochPrefix) {
			continue
		}
		if n, err := strconv.Atoi(e.Name()[len(epochPrefix):]); err == nil && n >= 1 {
			epochs = append(epochs, n)
		}
	}
	sort.Ints(epochs)
	return epochs, nil
}

// countShardDirs counts contiguous shard-NNNN subdirectories of an
// epoch directory, which is the shard count that epoch was run with.
func countShardDirs(root string, epoch int) (int, error) {
	n := 0
	for {
		if _, err := os.Stat(shardWALPath(root, epoch, n)); err != nil {
			if os.IsNotExist(err) {
				return n, nil
			}
			return 0, err
		}
		n++
	}
}

// hasLegacyWAL reports whether root holds a pre-sharding single log:
// wal segments or snapshots directly in the root directory.
func hasLegacyWAL(root string) (bool, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if strings.HasPrefix(e.Name(), "wal-") || strings.HasPrefix(e.Name(), "snap-") {
			return true, nil
		}
	}
	return false, nil
}

// shardWALs is the result of opening (and, when needed, migrating)
// the sharded log directory: the live epoch's logs, the next barrier
// sequence number, and whether any prior state was recovered.
type shardWALs struct {
	logs      []*wal.Log
	seq       uint64
	epoch     int
	recovered bool
}

// openLogSet opens one WAL per shard under the given epoch, in
// parallel (each open scans and fsyncs its own directory). On partial
// failure every opened log is closed before returning.
func openLogSet(root string, epoch, n int, mkOpts func(dir string) wal.Options) ([]*wal.Log, []shard.RecoveredShard, error) {
	type opened struct {
		log *wal.Log
		rec *wal.Recovery
	}
	res, err := parallel.Map(n, 0, func(i int) (opened, error) {
		l, rec, err := wal.Open(mkOpts(shardWALPath(root, epoch, i)))
		if err != nil {
			return opened{}, fmt.Errorf("shard %d: %w", i, err)
		}
		return opened{l, rec}, nil
	})
	if err != nil {
		for _, o := range res {
			if o.log != nil {
				o.log.Close()
			}
		}
		return nil, nil, err
	}
	logs := make([]*wal.Log, n)
	recs := make([]shard.RecoveredShard, n)
	for i, o := range res {
		logs[i] = o.log
		recs[i] = shard.RecoveredShard{Snapshot: o.rec.Snapshot, Records: o.rec.Records}
	}
	return logs, recs, nil
}

func closeLogSet(logs []*wal.Log) {
	for _, l := range logs {
		if l != nil {
			l.Close()
		}
	}
}

// rebaseLogs writes every shard's current state into its log as the
// new baseline, all at the same barrier height.
func rebaseLogs(logs []*wal.Log, engine *shard.Engine, barrier uint64) error {
	for i, l := range logs {
		i := i
		if err := l.Snapshot(func(w io.Writer) error {
			return shard.WriteShardSnapshot(engine, i, barrier, w)
		}); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// openShardWALs opens the sharded log directory for `shards` workers,
// recovering prior state into engine. Three shapes of prior content
// are handled:
//
//   - same shard count: open the live epoch and replay it;
//   - different shard count: recover the old epoch (ratings remap by
//     hash), write a fully-snapshotted new epoch, then commit the
//     manifest flip and retire the old directory;
//   - a legacy unsharded log in the root: replay it directly, then
//     migrate into epoch 1 the same way (old segments are left in
//     place but superseded by the manifest).
func openShardWALs(root string, shards int, engine *shard.Engine,
	mkOpts func(dir string) wal.Options, warnf func(string, ...any)) (*shardWALs, error) {

	m, ok, err := readManifest(root)
	if err != nil {
		return nil, err
	}
	if !ok {
		// No manifest. Legacy segments in the root take precedence over
		// any epoch directory: the legacy migration writes per-shard
		// snapshots before its manifest commit, so an epoch without a
		// manifest beside legacy files is an interrupted migration whose
		// snapshots may cover only some shards — adopting it would
		// silently drop every shard not yet snapshotted. Re-running the
		// migration from the legacy log (which is still complete) starts
		// over cleanly; migrateToEpoch deletes the half-written epoch.
		legacy, err := hasLegacyWAL(root)
		if err != nil {
			return nil, err
		}
		epochs, err := scanEpochs(root)
		if err != nil {
			return nil, err
		}
		if legacy {
			if len(epochs) > 0 {
				warnf("wal: legacy log plus uncommitted %s: re-running interrupted migration",
					epochDirName(epochs[len(epochs)-1]))
			}
			return migrateLegacyWAL(root, shards, engine, mkOpts, warnf)
		}
		if len(epochs) > 0 {
			// No legacy log, so this epoch can only be a crash before the
			// very first manifest commit of a fresh directory — its
			// content is at most a replayable prefix of what the manifest
			// would have committed, so adopting it loses nothing.
			epoch := epochs[len(epochs)-1]
			n, err := countShardDirs(root, epoch)
			if err != nil {
				return nil, err
			}
			if n == 0 {
				n = shards
			}
			warnf("wal: no manifest but found %s (%d shards); adopting it", epochDirName(epoch), n)
			m, ok = walManifest{Version: manifestVersion, Epoch: epoch, Shards: n}, true
			if err := writeManifest(root, m); err != nil {
				return nil, err
			}
		}
	}

	if !ok {
		// Fresh directory: create epoch 1 and commit it.
		if err := os.MkdirAll(root, 0o755); err != nil {
			return nil, err
		}
		logs, _, err := openLogSet(root, 1, shards, mkOpts)
		if err != nil {
			return nil, err
		}
		if err := writeManifest(root, walManifest{Version: manifestVersion, Epoch: 1, Shards: shards}); err != nil {
			closeLogSet(logs)
			return nil, err
		}
		return &shardWALs{logs: logs, seq: 1, epoch: 1}, nil
	}

	// Best-effort cleanup of epochs the manifest has superseded (a
	// crash between manifest flip and directory removal leaves them).
	if epochs, err := scanEpochs(root); err == nil {
		for _, e := range epochs {
			if e != m.Epoch {
				warnf("wal: removing superseded %s", epochDirName(e))
				if err := os.RemoveAll(epochPath(root, e)); err != nil {
					warnf("wal: could not remove %s: %v", epochDirName(e), err)
				}
			}
		}
	}

	if m.Shards == shards {
		logs, recs, err := openLogSet(root, m.Epoch, shards, mkOpts)
		if err != nil {
			return nil, err
		}
		stats, err := shard.Recover(engine, recs, warnf)
		if err != nil {
			closeLogSet(logs)
			return nil, fmt.Errorf("recover epoch %d: %w", m.Epoch, err)
		}
		recovered := stats.SnapshotRatings > 0 || stats.Applied > 0 || stats.Windows > 0
		if recovered {
			fmt.Printf("recovered %d ratings, %d windows across %d shards (epoch %d)\n",
				engine.Len(), stats.Windows, shards, m.Epoch)
		}
		return &shardWALs{logs: logs, seq: stats.NextSeq, epoch: m.Epoch, recovered: recovered}, nil
	}

	// Shard count changed: recover the old epoch (Recover remaps every
	// rating to its new shard by hash), then migrate to a new epoch.
	oldLogs, recs, err := openLogSet(root, m.Epoch, m.Shards, mkOpts)
	if err != nil {
		return nil, err
	}
	stats, err := shard.Recover(engine, recs, warnf)
	closeLogSet(oldLogs)
	if err != nil {
		return nil, fmt.Errorf("recover epoch %d (%d shards): %w", m.Epoch, m.Shards, err)
	}
	warnf("wal: shard count %d -> %d; migrating %d ratings to epoch %d",
		m.Shards, shards, engine.Len(), m.Epoch+1)
	w, err := migrateToEpoch(root, m.Epoch+1, shards, engine, stats.NextSeq, mkOpts)
	if err != nil {
		return nil, err
	}
	// The old epoch is superseded; losing this removal only costs disk
	// until the next startup's cleanup pass.
	if err := os.RemoveAll(epochPath(root, m.Epoch)); err != nil {
		warnf("wal: could not remove retired %s: %v", epochDirName(m.Epoch), err)
	}
	w.recovered = stats.SnapshotRatings > 0 || stats.Applied > 0 || stats.Windows > 0
	return w, nil
}

// migrateToEpoch writes the engine's current state into a fresh,
// fully-snapshotted epoch and then — only then — flips the manifest.
func migrateToEpoch(root string, epoch, shards int, engine *shard.Engine, seq uint64,
	mkOpts func(dir string) wal.Options) (*shardWALs, error) {
	// A half-written target epoch from an interrupted migration (at a
	// possibly different shard count) is garbage: start clean.
	if err := os.RemoveAll(epochPath(root, epoch)); err != nil {
		return nil, err
	}
	logs, _, err := openLogSet(root, epoch, shards, mkOpts)
	if err != nil {
		return nil, err
	}
	if err := rebaseLogs(logs, engine, seq-1); err != nil {
		closeLogSet(logs)
		return nil, fmt.Errorf("snapshot epoch %d: %w", epoch, err)
	}
	if err := writeManifest(root, walManifest{Version: manifestVersion, Epoch: epoch, Shards: shards}); err != nil {
		closeLogSet(logs)
		return nil, fmt.Errorf("commit epoch %d: %w", epoch, err)
	}
	return &shardWALs{logs: logs, seq: seq, epoch: epoch}, nil
}

// migrateLegacyWAL replays a pre-sharding single log into the engine
// and migrates it into epoch 1. The legacy segments are not deleted —
// once the manifest exists they are ignored, and leaving them costs
// only disk while keeping the migration window crash-safe.
func migrateLegacyWAL(root string, shards int, engine *shard.Engine,
	mkOpts func(dir string) wal.Options, warnf func(string, ...any)) (*shardWALs, error) {

	log, rec, err := wal.Open(mkOpts(root))
	if err != nil {
		return nil, fmt.Errorf("open legacy wal: %w", err)
	}
	// Read-only use: recovery already happened in Open; close before
	// the epoch takes over so no new frames land in the old layout.
	if err := log.Close(); err != nil {
		return nil, err
	}
	if rec.Snapshot != nil {
		if err := engine.LoadSnapshot(bytes.NewReader(rec.Snapshot)); err != nil {
			warnf("legacy recovery: snapshot unusable, replaying log from scratch: %v", err)
		}
	}
	applied := wal.Replay(replayTarget{sys: engine}, rec.Records, warnf)
	warnf("wal: migrating legacy log (%d ratings, %d replayed records) to sharded epoch 1", engine.Len(), applied)
	w, err := migrateToEpoch(root, 1, shards, engine, 1, mkOpts)
	if err != nil {
		return nil, err
	}
	w.recovered = rec.Snapshot != nil || len(rec.Records) > 0
	return w, nil
}

// useShardEngine reports whether the daemon should serve through the
// engine-backed sharded path: always above one shard, and at exactly
// one shard when the WAL directory's manifest says the layout is
// sharded at one — the restart shape a promoted single-shard follower
// leaves behind. A manifest with MORE shards than requested stays on
// the legacy path, whose guard refuses it rather than silently serving
// empty state beside it.
func useShardEngine(shards int, walDir string) (bool, error) {
	if shards > 1 {
		return true, nil
	}
	if walDir == "" {
		return false, nil
	}
	m, ok, err := readManifest(walDir)
	if err != nil {
		return false, err
	}
	return ok && m.Shards == 1, nil
}
