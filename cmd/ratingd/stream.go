package main

// Streaming-detection wiring: -stream-detect switches the engine's
// online detection path on and exposes its alert log on /v1/alerts.
// The daemon adapts shard.Streaming's alert log to the server's
// AlertSource (the server package never imports shard), and — when
// -maintain-every is set — lets the rating clock drive authoritative
// maintenance windows through the journal so they are durable exactly
// like client-issued /v1/process calls.

import (
	"context"
	"time"

	"repro/internal/api"
	"repro/internal/shard"
)

// alertFeed adapts a shard.AlertLog to server.AlertSource.
type alertFeed struct{ log *shard.AlertLog }

func toAPIAlerts(as []shard.Alert) []api.Alert {
	if len(as) == 0 {
		return nil
	}
	out := make([]api.Alert, len(as))
	for i, a := range as {
		out[i] = api.Alert{
			Seq:          a.Seq,
			Rater:        int(a.Rater),
			Source:       a.Source,
			Suspicion:    a.Suspicion,
			FirstFlagged: a.FirstFlagged,
			WallNS:       a.Wall.UnixNano(),
		}
	}
	return out
}

func (f alertFeed) Alerts(since uint64) ([]api.Alert, uint64) {
	as, next := f.log.Alerts(since)
	return toAPIAlerts(as), next
}

func (f alertFeed) WaitAlerts(ctx context.Context, since uint64, wait time.Duration) ([]api.Alert, uint64) {
	as, next := f.log.WaitAlerts(ctx, since, wait)
	return toAPIAlerts(as), next
}
