package main

import (
	"sort"
	"sync"
	"testing"

	"repro/internal/detector"
	"repro/internal/rating"
	"repro/internal/shard"
	"repro/internal/shard/shardtest"
)

// chaosStreamWorkload is one time-sorted rating sequence: the live
// streaming regime, where arrival order is rating-clock order and the
// store's per-object order therefore equals the push order a stream
// rebuild replays.
func chaosStreamWorkload() []rating.Rating {
	w := shardtest.Workload{Seed: 11, Objects: 5, Raters: 20, Malicious: 4, Months: 3, PerMonth: 300, BurstLen: 60}
	var all []rating.Rating
	for _, m := range w.Generate() {
		all = append(all, m.Ratings...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Time < all[j].Time })
	return all
}

// submitSeq submits one rating at a time, in order. One big SubmitAll
// would spread the batch across per-shard rings that drain
// concurrently, letting a later-time rating on one shard fire a
// window close while an earlier-time rating on another shard is still
// in flight — fine for a live system, but the chaos comparison needs
// every window to see identical evidence in both runs.
func submitSeq(t *testing.T, j *shardJournal, rs []rating.Rating) {
	t.Helper()
	for i := range rs {
		if err := j.SubmitAll(rs[i : i+1]); err != nil {
			t.Fatal(err)
		}
	}
}

// enableChaosStreaming switches streaming detection on the way run()
// does: auto windows every 30 rating-days, closed through the journal
// so barriers are durable, window starts recorded for the assertions.
func enableChaosStreaming(t *testing.T, e *shard.Engine, j *shardJournal, resumeAfter float64, fired *[][2]float64, mu *sync.Mutex) *shard.Streaming {
	t.Helper()
	s, err := e.EnableStreaming(shard.StreamConfig{
		Detector:       detector.Config{Size: 30, Step: 15, Threshold: 0.08},
		AlertThreshold: 0.3,
		MaintainEvery:  30,
		ResumeAfter:    resumeAfter,
		OnWindowDue: func(start, end float64) {
			if _, err := j.ProcessWindow(start, end); err != nil {
				t.Errorf("window [%g,%g): %v", start, end, err)
				return
			}
			mu.Lock()
			*fired = append(*fired, [2]float64{start, end})
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestStreamChaosMidWindowCrash kills a -stream-detect daemon mid-way
// through its second maintenance window — after window [0,30) closed
// durably, with in-memory stream suspicion accrued past t=30 that no
// snapshot captured — and requires recovery to reach the exact state
// of a never-crashed run: the WAL tails rebuild the engine, the
// streams rebuild from the time-sorted stores, ResumeAfter keeps the
// catch-up pass from re-charging the already-durable window, and after
// the remaining traffic both the engine fingerprint and the streaming
// suspicion fingerprint are byte-identical to a run that never died.
func TestStreamChaosMidWindowCrash(t *testing.T) {
	all := chaosStreamWorkload()
	const cut = 45.0 // mid-window [30,60): the crash point
	var prefix, rest []rating.Rating
	for _, r := range all {
		if r.Time < cut {
			prefix = append(prefix, r)
		} else {
			rest = append(rest, r)
		}
	}
	if len(prefix) == 0 || len(rest) == 0 {
		t.Fatalf("degenerate cut: %d before, %d after", len(prefix), len(rest))
	}

	// Reference: the never-crashed run.
	var mu sync.Mutex
	var refFired [][2]float64
	refEngine, refJ, refWS := openShardDaemon(t, t.TempDir(), 2)
	refStream := enableChaosStreaming(t, refEngine, refJ, 0, &refFired, &mu)
	submitSeq(t, refJ, all)
	refStream.Sync()
	refStream.Close()
	wantEngine := engineFingerprint(t, refEngine, 5)
	wantStream := refStream.Fingerprint()
	closeShardDaemon(t, refJ, refWS)
	mu.Lock()
	if len(refFired) < 2 {
		t.Fatalf("reference run fired %d windows", len(refFired))
	}
	mu.Unlock()

	// Crash run, phase 1: ingest up to the cut, then die abruptly — no
	// final snapshot, pumps' in-memory suspicion and alert log lost.
	dir := t.TempDir()
	var crashFired [][2]float64
	e1, j1, ws1 := openShardDaemon(t, dir, 2)
	s1 := enableChaosStreaming(t, e1, j1, 0, &crashFired, &mu)
	submitSeq(t, j1, prefix)
	s1.Sync()
	s1.Close()
	closeShardDaemon(t, j1, ws1)
	mu.Lock()
	if len(crashFired) != 1 || crashFired[0] != [2]float64{0, 30} {
		t.Fatalf("pre-crash windows: %v, want exactly [0,30)", crashFired)
	}
	mu.Unlock()

	// Recovery: the WAL tails must restore the window high-water mark,
	// streams rebuild from the stores, and the catch-up pass must NOT
	// re-fire the durable [0,30) — re-charging it would double-apply
	// Procedure 2 and diverge from the reference trust state.
	e2, j2, ws2 := openShardDaemon(t, dir, 2)
	if !ws2.recovered {
		t.Fatal("no prior state recovered")
	}
	if got := e2.LastWindowEnd(); got != 30 {
		t.Fatalf("recovered window high-water %g, want 30", got)
	}
	var replayFired [][2]float64
	s2 := enableChaosStreaming(t, e2, j2, e2.LastWindowEnd(), &replayFired, &mu)
	submitSeq(t, j2, rest)
	s2.Sync()
	s2.Close()
	defer closeShardDaemon(t, j2, ws2)

	mu.Lock()
	for _, win := range replayFired {
		if win[0] < 30 {
			t.Errorf("recovered run re-fired durable window [%g,%g)", win[0], win[1])
		}
	}
	if len(replayFired) == 0 {
		t.Error("recovered run fired no windows")
	}
	mu.Unlock()

	if got := engineFingerprint(t, e2, 5); got != wantEngine {
		t.Errorf("recovered engine state diverges from never-crashed run:\nwant %q\ngot  %q", wantEngine, got)
	}
	if got := s2.Fingerprint(); got != wantStream {
		t.Errorf("recovered stream state diverges from never-crashed run:\nwant %q\ngot  %q", wantStream, got)
	}
}
