package main

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"time"

	"repro/internal/parallel"
	"repro/internal/server"
	"repro/internal/telemetry"
)

// trustBounds are the cumulative "le" bins for the live trust-record
// distribution exposed as trust_records{le="..."}.
var trustBounds = []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1}

// registerProcessMetrics adds process-level gauges: uptime, goroutine
// count, and heap usage, all sampled at scrape time.
func registerProcessMetrics(reg *telemetry.Registry, started time.Time) {
	reg.GaugeFunc("process_uptime_seconds", "seconds since the server started",
		func() float64 { return time.Since(started).Seconds() })
	reg.GaugeFunc("process_goroutines", "current goroutine count",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("process_heap_bytes", "bytes of allocated heap objects",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
}

// registerTrustMetrics exposes the live trust state: rater count and a
// cumulative distribution of trust values, both read under the
// system's lock at scrape time.
func registerTrustMetrics(reg *telemetry.Registry, sys server.Backend) {
	reg.GaugeFunc("trust_raters", "raters with a live trust record",
		func() float64 { return float64(sys.RaterCount()) })
	reg.GaugeVecFunc("trust_records", "cumulative count of raters with trust <= le", "le",
		func() map[string]float64 {
			dist := sys.TrustDistribution(trustBounds)
			out := make(map[string]float64, len(dist))
			for i, n := range dist {
				out[fmt.Sprintf("%g", trustBounds[i])] = float64(n)
			}
			return out
		})
}

// installParallelObserver bridges internal/parallel's fan-out reports
// into the registry: items processed, runs, and per-run worker
// utilization (busy time over wall time x pool width).
func installParallelObserver(reg *telemetry.Registry) {
	items := reg.Counter("parallel_items_total", "items processed by parallel fan-out")
	runs := reg.Counter("parallel_runs_total", "parallel fan-out invocations")
	util := reg.Histogram("parallel_worker_utilization",
		"per-run worker busy fraction: busy/(wall*workers)",
		[]float64{0.1, 0.25, 0.5, 0.75, 0.9, 1})
	itemsPerSec := reg.Gauge("parallel_items_per_second", "throughput of the most recent fan-out")
	parallel.SetObserver(func(r parallel.Report) {
		items.Add(uint64(r.Items))
		runs.Inc()
		if r.Wall > 0 && r.Workers > 0 {
			util.Observe(r.Busy.Seconds() / (r.Wall.Seconds() * float64(r.Workers)))
			itemsPerSec.Set(float64(r.Items) / r.Wall.Seconds())
		}
	})
}

// telemetryMux mounts the observability endpoints next to the API:
// Prometheus text at /metrics, an expvar-style JSON dump at
// /debug/vars, and — only when enabled — the pprof profile handlers.
// extra, when non-nil, mounts additional daemon-level routes (the
// replication endpoints) ahead of the API catch-all.
func telemetryMux(api http.Handler, reg *telemetry.Registry, enablePprof bool, extra ...func(*http.ServeMux)) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", reg.JSONHandler())
	if enablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	for _, mount := range extra {
		if mount != nil {
			mount(mux)
		}
	}
	mux.Handle("/", api)
	return mux
}

// summaryLoop prints a one-line operational summary to stderr every
// interval until done is closed.
func summaryLoop(done <-chan struct{}, interval time.Duration, reg *telemetry.Registry, sys server.Backend, started time.Time) {
	requests := reg.CounterVec("http_requests_total", "requests by route and status", "route", "code")
	windows := reg.Counter("pipeline_windows_total", "maintenance windows processed")
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case <-t.C:
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			fmt.Fprintf(os.Stderr,
				"ratingd: up %s  requests=%d  windows=%d  ratings=%d  raters=%d  goroutines=%d  heap=%.1fMiB\n",
				time.Since(started).Round(time.Second), requests.Total(), windows.Value(),
				sys.Len(), sys.RaterCount(), runtime.NumGoroutine(), float64(ms.HeapAlloc)/(1<<20))
		}
	}
}
