package main

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/parallel"
	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/internal/wal"
)

// newInstrumentedStack wires the full daemon topology — registry, WAL,
// instrumented system, instrumented server, observability mux — the
// same way run() does, but against an in-memory filesystem and an
// httptest listener.
func newInstrumentedStack(t *testing.T, pprofOn bool) (*httptest.Server, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	registerProcessMetrics(reg, time.Now())
	installParallelObserver(reg)
	t.Cleanup(func() { parallel.SetObserver(nil) })

	fs := faultinject.NewMemFS()
	log, _, err := wal.Open(wal.Options{Dir: "wal", FS: fs, Metrics: wal.NewMetrics(reg)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { log.Close() })
	journal := &walJournal{log: log}

	srv, err := server.New(core.Config{Metrics: core.NewMetrics(reg)},
		server.WithTelemetry(reg), server.WithJournal(journal))
	if err != nil {
		t.Fatal(err)
	}
	journal.sys = srv.System()
	registerTrustMetrics(reg, srv.System())

	ts := httptest.NewServer(telemetryMux(srv, reg, pprofOn, nil))
	t.Cleanup(ts.Close)
	return ts, reg
}

// TestMetricsEndpointCoversAllSubsystems is the acceptance check for
// the telemetry layer: after real traffic, /metrics must return valid
// Prometheus text exposing server, WAL, pipeline, trust, parallel, and
// process metrics.
func TestMetricsEndpointCoversAllSubsystems(t *testing.T) {
	ts, _ := newInstrumentedStack(t, false)

	// Drive traffic: submit ratings across two objects, run a window.
	var body strings.Builder
	body.WriteString("[")
	for i := 0; i < 120; i++ {
		if i > 0 {
			body.WriteString(",")
		}
		sign := i % 2
		body.WriteString(`{"rater":` + itoa(i%12) + `,"object":` + itoa(41+sign) +
			`,"value":0.7,"time":` + itoa(i/4) + `}`)
	}
	body.WriteString("]")
	resp, err := ts.Client().Post(ts.URL+"/v1/ratings", "application/json", strings.NewReader(body.String()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	resp, err = ts.Client().Post(ts.URL+"/v1/process", "application/json", strings.NewReader(`{"start":0,"end":30}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("process = %d", resp.StatusCode)
	}

	resp, err = ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)

	for _, want := range []string{
		// Server.
		`http_requests_total{route="/v1/ratings",code="200"} 1`,
		`http_requests_total{route="/v1/process",code="200"} 1`,
		`http_request_seconds_bucket{route="/v1/process",le="+Inf"} 1`,
		"http_inflight_requests 0",
		// WAL: every rating is its own record, plus one process record.
		"wal_appended_records_total 121",
		"wal_fsync_seconds_count",
		"wal_segment_seq 0",
		// Pipeline.
		"pipeline_windows_total 1",
		`pipeline_stage_seconds_count{stage="ar_fit"} 2`,
		"pipeline_ratings_considered_total 120",
		// Trust: 12 raters all got records; last bin is cumulative-total.
		"trust_raters 12",
		`trust_records{le="1"} 12`,
		// Parallel fan-out observed via the bridge.
		"parallel_items_total 2",
		"parallel_runs_total 1",
		// Process gauges.
		"process_uptime_seconds",
		"process_goroutines",
		"process_heap_bytes",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", out)
	}

	// Every sample line must parse: name{labels} value.
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if i := strings.LastIndexByte(line, ' '); i < 0 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

// TestDebugVarsIsValidJSON scrapes /debug/vars and decodes it.
func TestDebugVarsIsValidJSON(t *testing.T) {
	ts, _ := newInstrumentedStack(t, false)
	resp, err := ts.Client().Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/vars = %d", resp.StatusCode)
	}
	var vars map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	for _, key := range []string{"http_inflight_requests", "process_goroutines", "wal_segment_seq"} {
		if _, ok := vars[key]; !ok {
			t.Errorf("/debug/vars missing %q", key)
		}
	}
}

// TestPprofGating checks /debug/pprof/ is only mounted behind -pprof.
func TestPprofGating(t *testing.T) {
	on, _ := newInstrumentedStack(t, true)
	resp, err := on.Client().Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pprof enabled but index = %d", resp.StatusCode)
	}

	off, _ := newInstrumentedStack(t, false)
	resp, err = off.Client().Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == 200 {
		t.Fatal("pprof reachable without -pprof")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
