package repro_test

import (
	"fmt"
	"log"

	"repro"
)

// Example shows the minimal lifecycle: submit ratings, run one
// maintenance window, read the trust-weighted aggregate.
func Example() {
	// MinWindow keeps the AR detector away from windows too sparse to
	// fit honestly — production deployments set it well above the bare
	// algebraic minimum (see §IV's configuration).
	sys, err := repro.NewSystem(repro.Config{
		Detector: repro.DetectorConfig{MinWindow: 25},
	})
	if err != nil {
		log.Fatal(err)
	}
	// Ten noisy-but-honest raters plus one detractor.
	honest := []float64{0.9, 0.6, 0.8, 0.7, 0.5, 0.9, 0.8, 0.4, 0.7, 0.9}
	for i, v := range honest {
		_ = sys.Submit(repro.Rating{
			Rater:  repro.RaterID(i + 1),
			Object: 42,
			Value:  v,
			Time:   float64(i + 1),
		})
	}
	_ = sys.Submit(repro.Rating{Rater: 11, Object: 42, Value: 0.2, Time: 11})

	if _, err := sys.ProcessWindow(0, 30); err != nil {
		log.Fatal(err)
	}
	agg, err := sys.Aggregate(42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aggregate %.2f from %d raters\n", agg.Value, agg.Used)
	// Output:
	// aggregate 0.67 from 11 raters
}

// ExampleDetect runs Procedure 1 standalone over a constant clique —
// the most extreme collusion signature (a perfectly predictable
// window).
func ExampleDetect() {
	var rs []repro.Rating
	for i := 0; i < 40; i++ {
		rs = append(rs, repro.Rating{
			Rater: repro.RaterID(i),
			Value: 0.9,
			Time:  float64(i),
		})
	}
	rep, err := repro.Detect(rs, repro.DetectorConfig{
		Mode: repro.WindowByCount, Size: 20, Step: 10, Threshold: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d of %d windows suspicious\n", len(rep.SuspiciousWindows()), len(rep.Windows))
	// Output:
	// 3 of 3 windows suspicious
}

// ExampleModifiedWeightedAverage reproduces the paper's Method 3 on a
// tiny instance: the distrusted rater is excluded entirely.
func ExampleModifiedWeightedAverage() {
	agg := repro.ModifiedWeightedAverage{}
	ratings := []float64{0.8, 0.1}
	trusts := []float64{0.9, 0.3} // second rater below the 0.5 floor
	v, err := agg.Aggregate(ratings, trusts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.1f\n", v)
	// Output:
	// 0.8
}

// ExampleFitAR fits the covariance-method AR model the detector uses
// and reads its normalized error: a pure sinusoid is perfectly
// predictable.
func ExampleFitAR() {
	x := make([]float64, 100)
	for i := range x {
		// Period-4 oscillation.
		switch i % 4 {
		case 0:
			x[i] = 0.9
		case 1:
			x[i] = 0.5
		case 2:
			x[i] = 0.1
		default:
			x[i] = 0.5
		}
	}
	m, err := repro.FitAR(x, 4, repro.AROptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("normalized error below 0.001: %v\n", m.NormalizedError < 0.001)
	// Output:
	// normalized error below 0.001: true
}

// ExampleNewScheduler drives maintenance by advancing a clock instead
// of tracking window boundaries by hand.
func ExampleNewScheduler() {
	sys, err := repro.NewSystem(repro.Config{})
	if err != nil {
		log.Fatal(err)
	}
	sched, err := repro.NewScheduler(sys, 0, 30)
	if err != nil {
		log.Fatal(err)
	}
	_ = sys.Submit(repro.Rating{Rater: 1, Object: 1, Value: 0.7, Time: 5})

	reports, err := sched.AdvanceTo(65) // two complete 30-day windows
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("processed %d windows, next starts at day %.0f\n", len(reports), sched.Pending())
	// Output:
	// processed 2 windows, next starts at day 60
}

// ExampleEntropyTrust shows the entropy trust mapping of Sun et al.:
// certainty in either direction maps away from zero.
func ExampleEntropyTrust() {
	fmt.Printf("%.2f %.2f %.2f\n",
		repro.EntropyTrust(0.1),
		repro.EntropyTrust(0.5),
		repro.EntropyTrust(0.9))
	// Output:
	// -0.53 0.00 0.53
}
