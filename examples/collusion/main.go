// Collusion detection walkthrough — the paper's §III.A.2 illustrative
// experiment end to end: generate 60 days of ratings for one product
// with a smart collaborative attack in days 30-44, show that the
// histogram and the Beta filter cannot see it, then expose it with the
// AR model error (Fig 4's lower plot, rendered as ASCII).
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
	"repro/internal/randx"
	"repro/internal/sim"
	"repro/internal/stat"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	p := sim.DefaultIllustrative()
	rng := randx.New(2026)

	attacked, err := sim.GenerateIllustrative(rng, p)
	if err != nil {
		return err
	}
	pHonest := p
	pHonest.Attack = false
	honest, err := sim.GenerateIllustrative(rng.Split(), pHonest)
	if err != nil {
		return err
	}

	var unfair int
	for _, l := range attacked {
		if l.Unfair {
			unfair++
		}
	}
	fmt.Printf("trace: %d ratings, %d of them collaborative (days %.0f-%.0f, bias +%.2f)\n",
		len(attacked), unfair, p.AStart, p.AEnd, p.BiasShift2)

	// 1. The majority-rule filter barely reacts: the colluders stay
	// close to the majority on purpose.
	res, err := (repro.BetaFilter{Q: 0.1}).Apply(sim.Ratings(attacked))
	if err != nil {
		return err
	}
	caught := 0
	for _, r := range res.Rejected {
		if r.Rater >= 100000 {
			caught++
		}
	}
	fmt.Printf("beta filter (q=0.1): rejected %d ratings, only %d of %d colluders\n",
		len(res.Rejected), caught, unfair)

	// 2. The aggregate is visibly manipulated.
	maClean := stat.Mean(valuesBetween(honest, p.AStart, p.AEnd))
	maAttacked := stat.Mean(valuesBetween(attacked, p.AStart, p.AEnd))
	fmt.Printf("mean rating in attack interval: %.3f honest-only vs %.3f under attack\n\n",
		maClean, maAttacked)

	// 3. The AR model error exposes the interval.
	cfg := repro.DetectorConfig{
		Mode: repro.WindowByCount, Size: 50, Step: 25,
		Order: 4, Threshold: 0.105,
	}
	repA, err := repro.Detect(sim.Ratings(attacked), cfg)
	if err != nil {
		return err
	}
	repH, err := repro.Detect(sim.Ratings(honest), cfg)
	if err != nil {
		return err
	}

	fmt.Println("AR model error per window (* = flagged suspicious):")
	fmt.Println("  honest-only trace:")
	printErrors(repH)
	fmt.Println("  trace under attack:")
	printErrors(repA)

	suspects := repro.MergeDetections(repA)
	var colluders, bystanders int
	for id, s := range suspects {
		if s.Suspicion == 0 {
			continue
		}
		if id >= 100000 {
			colluders++
		} else {
			bystanders++
		}
	}
	fmt.Printf("\nraters accruing suspicion: %d colluders, %d honest bystanders\n",
		colluders, bystanders)
	return nil
}

func valuesBetween(ls []sim.LabeledRating, lo, hi float64) []float64 {
	var out []float64
	for _, l := range ls {
		if l.Rating.Time >= lo && l.Rating.Time <= hi {
			out = append(out, l.Rating.Value)
		}
	}
	return out
}

func printErrors(rep repro.DetectionReport) {
	const barWidth = 50
	for _, w := range rep.Windows {
		if !w.Fitted {
			continue
		}
		bar := int(w.Model.NormalizedError / 0.3 * barWidth)
		if bar > barWidth {
			bar = barWidth
		}
		mark := " "
		if w.Suspicious {
			mark = "*"
		}
		fmt.Printf("    day %5.1f-%5.1f  %.4f %s|%s\n",
			w.Window.Start, w.Window.End, w.Model.NormalizedError, mark,
			strings.Repeat("#", bar))
	}
}
