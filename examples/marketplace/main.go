// Marketplace demo — a compressed version of the paper's §IV year: 800
// raters (reliable / careless / potential-collaborative), five products
// per month of which one is dishonest and recruits colluders, processed
// month by month through the trust-enhanced system. Prints the trust
// evolution of each rater class and the final product aggregates.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/randx"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	p := sim.DefaultMarketplace()
	// σ-semantics spreads (see DESIGN.md) and a 6-month demo year.
	p.GoodVar, p.CarelessVar, p.BadVar = 0.04, 0.09, 0.0004
	p.Months = 6

	trace, err := sim.GenerateMarketplace(randx.New(7), p)
	if err != nil {
		return err
	}
	fmt.Printf("generated %d ratings for %d products from %d raters\n\n",
		len(trace.Ratings), len(trace.Products), p.TotalRaters())

	sys, err := repro.NewSystem(repro.Config{
		Filter: repro.BetaFilter{Q: 0.1},
		Detector: repro.DetectorConfig{
			Width: 10, TimeStep: 5, Order: 4,
			Threshold: 0.10, MinWindow: 25,
		},
		Trust: repro.TrustConfig{B: 1},
	})
	if err != nil {
		return err
	}
	if err := sys.SubmitAll(sim.Ratings(trace.Ratings)); err != nil {
		return err
	}

	fmt.Println("month | reliable | careless |   PC   | malicious")
	for m := 0; m < p.Months; m++ {
		start := float64(m * p.DaysPerMonth)
		if _, err := sys.ProcessWindow(start, start+float64(p.DaysPerMonth)+1e-9); err != nil {
			return err
		}
		sums := map[sim.RaterClass]float64{}
		counts := map[sim.RaterClass]int{}
		for id := 0; id < p.TotalRaters(); id++ {
			class := p.RaterClassOf(repro.RaterID(id))
			sums[class] += sys.TrustIn(repro.RaterID(id))
			counts[class]++
		}
		fmt.Printf("%5d | %8.3f | %8.3f | %6.3f | %d\n",
			m+1,
			sums[sim.Reliable]/float64(counts[sim.Reliable]),
			sums[sim.Careless]/float64(counts[sim.Careless]),
			sums[sim.PotentialCollaborative]/float64(counts[sim.PotentialCollaborative]),
			len(sys.MaliciousRaters()))
	}

	fmt.Println("\nfinal aggregates (simple average vs trust-enhanced):")
	for _, pr := range trace.DishonestProducts() {
		ls := trace.ByProduct(pr.ID)
		if len(ls) == 0 {
			continue
		}
		var sum float64
		for _, l := range ls {
			sum += l.Rating.Value
		}
		simple := sum / float64(len(ls))
		agg, err := sys.Aggregate(pr.ID)
		if err != nil {
			return err
		}
		fmt.Printf("  dishonest product %2d: quality %.3f | simple %.3f (off by %+.3f) | proposed %.3f (off by %+.3f)\n",
			pr.ID, pr.Quality, simple, simple-pr.Quality, agg.Value, agg.Value-pr.Quality)
	}
	return nil
}
