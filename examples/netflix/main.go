// Netflix trace demo — the paper's Fig 5 on the drop-in substitute for
// the withdrawn Netflix Prize data: generate a Dinosaur-Planet-like
// synthetic movie trace (~700 days of 1-5 star ratings with bursty
// volume), insert the paper's exact collaborative attack (days 212-272),
// and show the AR model error dipping inside the attack window.
//
// To run on real Netflix Prize data instead:
//
//	go run ./cmd/detect -in mv_0000001.txt -format netflix
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
	"repro/internal/netflix"
	"repro/internal/randx"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := randx.New(11)
	movie, err := netflix.GenerateSynthetic(rng, netflix.SyntheticParams{})
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d ratings over %.0f days\n", movie.Title, len(movie.Ratings), movie.Span())

	attack := netflix.DefaultAttack()
	attacked, err := netflix.InsertCollaborative(rng.Split(), movie, attack)
	if err != nil {
		return err
	}
	fmt.Printf("inserted collaborative ratings in days %.0f-%.0f (type-1 power %.1f, type-2 power %.1f)\n\n",
		attack.AStart, attack.AEnd, attack.RecruitPower1, attack.RecruitPower2)

	cfg := repro.DetectorConfig{
		Mode: repro.WindowByCount, Size: 50, Step: 50,
		Order: 4, Threshold: 0.999, // report the raw error series
	}
	repOrig, err := repro.Detect(movie.Ratings, cfg)
	if err != nil {
		return err
	}
	repAttacked, err := repro.Detect(sim.Ratings(attacked), cfg)
	if err != nil {
		return err
	}

	fmt.Println("AR model error by day (o = original, x = with attack; [] marks the attack window):")
	centersO, errsO := repOrig.ModelErrors()
	centersA, errsA := repAttacked.ModelErrors()
	printSeries("original ", centersO, errsO, attack)
	fmt.Println()
	printSeries("attacked ", centersA, errsA, attack)

	// Headline: mean error inside the window.
	fmt.Printf("\nmean error in attack window: original %.4f vs attacked %.4f\n",
		meanIn(centersO, errsO, attack), meanIn(centersA, errsA, attack))
	return nil
}

func printSeries(label string, centers, errs []float64, a netflix.AttackParams) {
	const barWidth = 46
	var maxErr float64
	for _, e := range errs {
		if e > maxErr {
			maxErr = e
		}
	}
	if maxErr == 0 {
		maxErr = 1
	}
	for i := range centers {
		// Thin the output: every third window.
		if i%3 != 0 {
			continue
		}
		bar := int(errs[i] / maxErr * barWidth)
		mark := "  "
		if centers[i] >= a.AStart && centers[i] <= a.AEnd {
			mark = "[]"
		}
		fmt.Printf("  %s day %5.0f %s %.4f |%s\n",
			label, centers[i], mark, errs[i], strings.Repeat("#", bar))
	}
}

func meanIn(centers, errs []float64, a netflix.AttackParams) float64 {
	var sum float64
	var n int
	for i, c := range centers {
		if c >= a.AStart && c <= a.AEnd {
			sum += errs[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
