// Quickstart: build the trust-enhanced rating system, feed it ratings
// for one product — including a small colluding clique — run a
// maintenance pass, and read the trust-weighted aggregate.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := repro.NewSystem(repro.Config{
		// The defaults are the paper's pipeline: Beta filter (q = 0.1),
		// covariance-method AR detector, beta trust, Method-3
		// aggregation. We only tighten the detector threshold for this
		// tiny example.
		Detector: repro.DetectorConfig{Threshold: 0.05, Width: 10, TimeStep: 5},
	})
	if err != nil {
		return err
	}

	const product = repro.ObjectID(42)
	rng := rand.New(rand.NewSource(1))

	// 30 days of honest ratings: quality 0.7, noisy raters.
	id := repro.RaterID(1)
	for day := 0.0; day < 30; day++ {
		for k := 0; k < 3; k++ {
			v := clamp(0.7 + 0.2*rng.NormFloat64())
			if err := sys.Submit(repro.Rating{
				Rater: id, Object: product,
				Value: math.Round(v*10) / 10,
				Time:  day + rng.Float64(),
			}); err != nil {
				return err
			}
			id++
		}
	}
	// Days 15-25: a colluding clique pushes tightly clustered 0.9s at
	// twice the honest arrival rate.
	clique := repro.RaterID(1000)
	for day := 15.0; day < 25; day++ {
		for k := 0; k < 6; k++ {
			if err := sys.Submit(repro.Rating{
				Rater: clique, Object: product, Value: 0.9,
				Time: day + rng.Float64(),
			}); err != nil {
				return err
			}
			clique++
		}
	}

	// One maintenance pass over the month: filter, detect, update trust.
	report, err := sys.ProcessWindow(0, 30)
	if err != nil {
		return err
	}
	for _, obj := range report.Objects {
		fmt.Printf("object %d: %d ratings considered, %d filtered out\n",
			obj.Object, obj.Considered, obj.Filtered)
		for _, w := range obj.Detection.Windows {
			if w.Suspicious {
				fmt.Printf("  suspicious window [%.0f, %.0f): model error %.4f\n",
					w.Window.Start, w.Window.End, w.Model.NormalizedError)
			}
		}
	}

	agg, err := sys.Aggregate(product)
	if err != nil {
		return err
	}
	fmt.Printf("\naggregated rating: %.3f (from %d raters, %d filtered, fallback=%v)\n",
		agg.Value, agg.Used, agg.Filtered, agg.FellBack)

	honest, cliqueTrust := sys.TrustIn(1), sys.TrustIn(1000)
	fmt.Printf("trust: honest rater %.3f, clique member %.3f\n", honest, cliqueTrust)
	var cliqueFlagged, honestFlagged int
	for _, id := range sys.MaliciousRaters() {
		if id >= 1000 {
			cliqueFlagged++
		} else {
			honestFlagged++
		}
	}
	// With one rating per rater, honest raters caught inside the
	// attacked window cannot out-accumulate the single charge; in the
	// paper's year-long scenario their growing S washes this out
	// (Figs 6-8).
	fmt.Printf("flagged malicious: %d/60 clique members, %d honest bystanders\n",
		cliqueFlagged, honestFlagged)
	return nil
}

func clamp(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
