// Red-team demo — attack the trust-enhanced rating system with every
// adaptive collusion strategy from the attack library (the paper's §V
// future work) and print a robustness scoreboard: how often each
// campaign is detected and how much it moves the naive versus the
// trust-weighted aggregate.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/attack"
	"repro/internal/randx"
	"repro/internal/sim"
	"repro/internal/stat"
)

const runsPerStrategy = 10

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("strategy            detect  naive-damage  defended-damage")
	rng := randx.New(2026)
	for _, strat := range attack.All() {
		detected := 0
		var naive, defended []float64
		for i := 0; i < runsPerStrategy; i++ {
			d, n, def, err := oneRun(rng.Split(), strat)
			if err != nil {
				return fmt.Errorf("%s: %w", strat.Name(), err)
			}
			if d {
				detected++
			}
			naive = append(naive, n)
			defended = append(defended, def)
		}
		fmt.Printf("%-18s  %3d/%-2d  %+12.4f  %+15.4f\n",
			strat.Name(), detected, runsPerStrategy, stat.Mean(naive), stat.Mean(defended))
	}
	fmt.Println("\ndamage = shift of the aggregate versus the honest-only pipeline")
	return nil
}

func oneRun(rng *randx.Rand, strat repro.AttackStrategy) (detected bool, naive, defended float64, err error) {
	p := sim.DefaultIllustrative()
	p.Attack = false
	honest, err := sim.GenerateIllustrative(rng, p)
	if err != nil {
		return false, 0, 0, err
	}
	campaign, err := strat.Plan(rng.Int63(), repro.AttackParams{
		Object:   p.Object,
		Start:    p.AStart,
		End:      p.AEnd,
		Rate:     p.ArrivalRate,
		Bias:     p.BiasShift2,
		Variance: p.BadVar,
		Levels:   p.RLevels,
	}, attack.FlatQuality(p.Quality))
	if err != nil {
		return false, 0, 0, err
	}
	combined := append(append([]sim.LabeledRating(nil), honest...), campaign...)
	sim.SortByTime(combined)
	attacked := sim.Ratings(combined)
	clean := sim.Ratings(honest)

	rep, err := repro.Detect(attacked, repro.DetectorConfig{
		Mode: repro.WindowByCount, Size: 50, Step: 25, Threshold: 0.105,
	})
	if err != nil {
		return false, 0, 0, err
	}
	for _, i := range rep.SuspiciousWindows() {
		w := rep.Windows[i]
		if w.Window.End >= p.AStart && w.Window.Start <= p.AEnd {
			detected = true
			break
		}
	}

	attackedAgg, err := pipelineAggregate(attacked)
	if err != nil {
		return false, 0, 0, err
	}
	cleanAgg, err := pipelineAggregate(clean)
	if err != nil {
		return false, 0, 0, err
	}
	naive = stat.Mean(values(attacked)) - stat.Mean(values(clean))
	defended = attackedAgg - cleanAgg
	return detected, naive, defended, nil
}

func pipelineAggregate(rs []repro.Rating) (float64, error) {
	sys, err := repro.NewSystem(repro.Config{
		Detector: repro.DetectorConfig{Width: 10, TimeStep: 5, Threshold: 0.105, MinWindow: 25},
	})
	if err != nil {
		return 0, err
	}
	if err := sys.SubmitAll(rs); err != nil {
		return 0, err
	}
	for _, w := range [][2]float64{{0, 30}, {30, 60}} {
		if _, err := sys.ProcessWindow(w[0], w[1]); err != nil {
			return 0, err
		}
	}
	agg, err := sys.Aggregate(0)
	if err != nil {
		return 0, err
	}
	return agg.Value, nil
}

func values(rs []repro.Rating) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.Value
	}
	return out
}
