// Streaming demo — the online path: ratings arrive one at a time, the
// DetectorStream emits a verdict at every window boundary the moment it
// completes, and a Scheduler runs the full system's monthly maintenance
// as the clock advances. The attack is caught while it is still in
// progress, not at end-of-batch.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/randx"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	p := sim.DefaultIllustrative()
	p.BadVar = 0.002
	trace, err := sim.GenerateIllustrative(randx.New(9), p)
	if err != nil {
		return err
	}
	fmt.Printf("replaying %d ratings (attack in days %.0f-%.0f)\n\n", len(trace), p.AStart, p.AEnd)

	stream, err := repro.NewDetectorStream(repro.DetectorConfig{
		Mode: repro.WindowByCount, Size: 50, Step: 25, Threshold: 0.105,
	})
	if err != nil {
		return err
	}

	sys, err := repro.NewSystem(repro.Config{
		Detector: repro.DetectorConfig{Width: 10, TimeStep: 5, Threshold: 0.105, MinWindow: 25},
	})
	if err != nil {
		return err
	}
	sched, err := repro.NewScheduler(sys, 0, 30)
	if err != nil {
		return err
	}

	var firstAlarm float64 = -1
	for _, l := range trace {
		if err := sys.Submit(l.Rating); err != nil {
			return err
		}
		reports, err := stream.Push(l.Rating)
		if err != nil {
			return err
		}
		for _, w := range reports {
			status := "ok        "
			if w.Suspicious {
				status = "SUSPICIOUS"
				if firstAlarm < 0 {
					firstAlarm = l.Rating.Time
				}
			}
			fmt.Printf("day %5.1f  window %2d [%5.1f, %5.1f)  err=%.4f  %s\n",
				l.Rating.Time, w.Window.Index, w.Window.Start, w.Window.End,
				w.Model.NormalizedError, status)
		}
		// The maintenance scheduler fires as simulated time passes.
		if _, err := sched.AdvanceTo(l.Rating.Time); err != nil {
			return err
		}
	}
	if _, err := sched.AdvanceTo(p.SimuTime); err != nil {
		return err
	}

	if firstAlarm >= 0 {
		fmt.Printf("\nfirst alarm raised at day %.1f — %.1f days into the attack\n",
			firstAlarm, firstAlarm-p.AStart)
	} else {
		fmt.Println("\nno alarm raised")
	}

	var colluders, flagged int
	for id, st := range stream.PerRater() {
		if id >= 100000 {
			colluders++
			if st.Suspicion > 0 {
				flagged++
			}
		}
	}
	fmt.Printf("streaming detector: %d/%d colluders accrued suspicion\n", flagged, colluders)
	fmt.Printf("system: %d raters below the malicious threshold after maintenance\n",
		len(sys.MaliciousRaters()))
	return nil
}
