package repro_test

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"

	"repro"
	"repro/internal/randx"
)

func TestFacadeSafeSystemAndSnapshot(t *testing.T) {
	s, err := repro.NewSafeSystem(repro.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(repro.Rating{Rater: 1, Object: 1, Value: 0.7, Time: 1}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := repro.NewSafeSystem(repro.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 1 {
		t.Fatalf("Len = %d", restored.Len())
	}
}

func TestFacadeHTTPService(t *testing.T) {
	srv, err := repro.NewServer(repro.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	client := repro.NewServiceClient(ts.URL, ts.Client())
	ctx := context.Background()
	if !client.Healthy(ctx) {
		t.Fatal("unhealthy")
	}
	n, err := client.Submit(ctx, []repro.RatingPayload{
		{Rater: 1, Object: 9, Value: 0.8, Time: 1},
		{Rater: 2, Object: 9, Value: 0.6, Time: 2},
	})
	if err != nil || n != 2 {
		t.Fatalf("submit: %d, %v", n, err)
	}
	agg, err := client.Aggregate(ctx, 9)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Value != 0.7 {
		t.Fatalf("aggregate = %+v", agg)
	}
}

func TestFacadeWhitenessDetector(t *testing.T) {
	var rs []repro.Rating
	for i := 0; i < 200; i++ {
		v := 0.3
		if (i/20)%2 == 0 {
			v = 0.8
		}
		rs = append(rs, repro.Rating{Rater: repro.RaterID(i), Value: v, Time: float64(i)})
	}
	rep, err := repro.DetectWhiteness(rs, repro.WhitenessConfig{
		Config: repro.DetectorConfig{Mode: repro.WindowByCount, Size: 100, Step: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.SuspiciousWindows()) == 0 {
		t.Fatal("oscillation not flagged")
	}
}

func TestFacadeSelectAROrder(t *testing.T) {
	rng := randx.New(1)
	x := make([]float64, 200)
	prev := 0.0
	for i := range x {
		prev = 0.8*prev + rng.Normal(0, 0.1)
		x[i] = prev
	}
	best, all, err := repro.SelectAROrder(x, 6, repro.ARCriterionMDL, repro.AROptions{Demean: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 6 {
		t.Fatalf("%d candidates", len(all))
	}
	if best.Order < 1 || best.Order > 3 {
		t.Fatalf("MDL picked order %d for AR(1)", best.Order)
	}
}

func TestFacadeAttackStrategies(t *testing.T) {
	strategies := repro.AttackStrategies()
	if len(strategies) != 9 {
		t.Fatalf("%d strategies", len(strategies))
	}
	params := repro.AttackParams{Start: 0, End: 10, Rate: 5, Bias: 0.2, Variance: 0.01}
	quality := repro.AttackQuality(func(repro.ObjectID, float64) float64 { return 0.5 })
	for i, s := range strategies {
		ls, err := s.Plan(randx.Derive(2, i), params, quality)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(ls) == 0 {
			t.Fatalf("%s: empty campaign", s.Name())
		}
	}
}

func TestFacadeOpinionAlgebra(t *testing.T) {
	a, err := repro.OpinionFromEvidence(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := repro.OpinionFromRating(0.8)
	if err != nil {
		t.Fatal(err)
	}
	d, err := repro.DiscountOpinion(a, b)
	if err != nil {
		t.Fatal(err)
	}
	c, err := repro.ConsensusOpinion(a, d)
	if err != nil {
		t.Fatal(err)
	}
	if e := c.Expectation(); e <= 0 || e >= 1 {
		t.Fatalf("expectation %g", e)
	}
	v, err := (repro.SubjectiveLogicAggregation{}).Aggregate([]float64{0.8}, []float64{0.9})
	if err != nil || v <= 0 || v >= 1 {
		t.Fatalf("aggregate %g, %v", v, err)
	}
}
