package repro

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/experiments"
)

const goldenMatrixPath = "testdata/golden_matrix.txt"

// renderGoldenMatrix runs the quick detector×attack grid and renders
// every cell with %.17g so the file round-trips bit-exactly. Any change
// to the adversary zoo, the collusion graph, the iterative filter, the
// AR charging path, or the seed-derivation scheme shows up as a diff
// against the checked-in fixture.
func renderGoldenMatrix(t *testing.T) string {
	t.Helper()
	m, err := experiments.RunMatrix(1, experiments.Quick, experiments.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# golden detector×attack matrix: seed=1 quick mode, %d runs per cell\n", m.Runs)
	fmt.Fprintf(&b, "detectors %s\n", strings.Join(m.Detectors, " "))
	fmt.Fprintf(&b, "attacks %s\n", strings.Join(m.Attacks, " "))
	for _, c := range m.Cells {
		fmt.Fprintf(&b, "cell %s %s auc %.17g detect %.17g latency %.17g aggerr %.17g\n",
			c.Detector, c.Attack, c.AUC, c.DetectRate, c.LatencyDays, c.AggError)
	}
	return b.String()
}

// TestGoldenMatrix locks the detector×attack benchmark matrix to an
// exact numerical grid. Regenerate deliberately with:
//
//	go test -run TestGoldenMatrix -update .
func TestGoldenMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full detector×attack grid")
	}
	checkGolden(t, goldenMatrixPath, renderGoldenMatrix(t))
}
