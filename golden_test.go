package repro

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"

	"repro/internal/randx"
	"repro/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files instead of comparing")

const goldenPath = "testdata/golden_pipeline.txt"

// renderGoldenTrace runs the full detector pipeline on the paper's
// fixed-seed attacked stream and renders every numerically meaningful
// output as text: the normalized model-error trace per window, the
// suspicious window set, per-rater suspicion statistics, and the
// malicious set produced by the end-to-end trust system. Floats are
// printed with %.17g so the file round-trips bit-exactly; any change
// to the filter, AR fit, suspicion charging, or trust update shows up
// as a diff against the checked-in golden file.
func renderGoldenTrace(t *testing.T) string {
	t.Helper()
	rng := randx.New(42)
	labeled, err := sim.GenerateIllustrative(rng, sim.DefaultIllustrative())
	if err != nil {
		t.Fatal(err)
	}
	rs := sim.Ratings(labeled)

	cfg := DetectorConfig{Mode: WindowByCount, Size: 50, Step: 25, Threshold: 0.105}
	rep, err := Detect(rs, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "# golden pipeline trace: seed=42 illustrative attack, count windows 50/25, threshold=0.105\n")
	fmt.Fprintf(&b, "ratings %d\n", len(rs))

	fmt.Fprintf(&b, "windows %d\n", len(rep.Windows))
	for i, w := range rep.Windows {
		if !w.Fitted {
			fmt.Fprintf(&b, "window %d unfitted [%.17g,%.17g)\n", i, w.Window.Start, w.Window.End)
			continue
		}
		fmt.Fprintf(&b, "window %d err %.17g suspicious %v level %.17g\n",
			i, w.Model.NormalizedError, w.Suspicious, w.Level)
	}
	fmt.Fprintf(&b, "suspicious_windows %v\n", rep.SuspiciousWindows())

	ids := make([]int64, 0, len(rep.PerRater))
	for id := range rep.PerRater {
		ids = append(ids, int64(id))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		st := rep.PerRater[RaterID(id)]
		if st.SuspiciousRatings == 0 {
			continue // keep the file focused on charged raters
		}
		fmt.Fprintf(&b, "rater %d suspicion %.17g suspicious %d total %d\n",
			id, st.Suspicion, st.SuspiciousRatings, st.TotalRatings)
	}

	// End-to-end: the same stream through the full trust system.
	sys, err := NewSystem(Config{Detector: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SubmitAll(rs); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.ProcessWindow(0, 61); err != nil {
		t.Fatal(err)
	}
	mal := sys.MaliciousRaters()
	malIDs := make([]int64, len(mal))
	for i, id := range mal {
		malIDs[i] = int64(id)
	}
	sort.Slice(malIDs, func(i, j int) bool { return malIDs[i] < malIDs[j] })
	fmt.Fprintf(&b, "system_malicious %v\n", malIDs)
	return b.String()
}

// TestGoldenPipeline locks the detector + trust pipeline to an exact
// numerical trace. Regenerate deliberately with:
//
//	go test -run TestGoldenPipeline -update .
func TestGoldenPipeline(t *testing.T) {
	got := renderGoldenTrace(t)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got == string(want) {
		return
	}
	// Report the first few diverging lines, not a wall of text.
	gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	diffs := 0
	for i := 0; i < len(gl) || i < len(wl); i++ {
		var g, w string
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if g != w {
			t.Errorf("line %d:\n  got  %q\n  want %q", i+1, g, w)
			if diffs++; diffs >= 5 {
				t.Fatalf("... further diffs suppressed (%d vs %d lines total)", len(gl), len(wl))
			}
		}
	}
}

// TestGoldenTraceIsDeterministic guards the golden test itself: two
// fresh runs in the same process must render identical bytes, or the
// golden comparison would flake.
func TestGoldenTraceIsDeterministic(t *testing.T) {
	if renderGoldenTrace(t) != renderGoldenTrace(t) {
		t.Fatal("pipeline trace differs between identical runs")
	}
}
