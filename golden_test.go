package repro

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"

	"repro/internal/randx"
	"repro/internal/shard"
	"repro/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files instead of comparing")

const (
	goldenPath        = "testdata/golden_pipeline.txt"
	goldenShardedPath = "testdata/golden_pipeline_sharded.txt"
)

// goldenSystem is the slice of the system surface the golden trace
// exercises; core.System and shard.Engine both satisfy it, which is
// what lets one renderer pin both engines to the same bytes.
type goldenSystem interface {
	SubmitAll(rs []Rating) error
	ProcessWindow(start, end float64) (ProcessReport, error)
	MaliciousRaters() []RaterID
}

// renderGoldenTrace runs the full detector pipeline on the paper's
// fixed-seed attacked stream and renders every numerically meaningful
// output as text: the normalized model-error trace per window, the
// suspicious window set, per-rater suspicion statistics, and the
// malicious set produced by the end-to-end trust system. Floats are
// printed with %.17g so the file round-trips bit-exactly; any change
// to the filter, AR fit, suspicion charging, or trust update shows up
// as a diff against the checked-in golden file.
func renderGoldenTrace(t *testing.T, mkSys func(Config) (goldenSystem, error)) string {
	t.Helper()
	rng := randx.New(42)
	labeled, err := sim.GenerateIllustrative(rng, sim.DefaultIllustrative())
	if err != nil {
		t.Fatal(err)
	}
	rs := sim.Ratings(labeled)

	cfg := DetectorConfig{Mode: WindowByCount, Size: 50, Step: 25, Threshold: 0.105}
	rep, err := Detect(rs, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "# golden pipeline trace: seed=42 illustrative attack, count windows 50/25, threshold=0.105\n")
	fmt.Fprintf(&b, "ratings %d\n", len(rs))

	fmt.Fprintf(&b, "windows %d\n", len(rep.Windows))
	for i, w := range rep.Windows {
		if !w.Fitted {
			fmt.Fprintf(&b, "window %d unfitted [%.17g,%.17g)\n", i, w.Window.Start, w.Window.End)
			continue
		}
		fmt.Fprintf(&b, "window %d err %.17g suspicious %v level %.17g\n",
			i, w.Model.NormalizedError, w.Suspicious, w.Level)
	}
	fmt.Fprintf(&b, "suspicious_windows %v\n", rep.SuspiciousWindows())

	ids := make([]int64, 0, len(rep.PerRater))
	for id := range rep.PerRater {
		ids = append(ids, int64(id))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		st := rep.PerRater[RaterID(id)]
		if st.SuspiciousRatings == 0 {
			continue // keep the file focused on charged raters
		}
		fmt.Fprintf(&b, "rater %d suspicion %.17g suspicious %d total %d\n",
			id, st.Suspicion, st.SuspiciousRatings, st.TotalRatings)
	}

	// End-to-end: the same stream through the full trust system.
	sys, err := mkSys(Config{Detector: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SubmitAll(rs); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.ProcessWindow(0, 61); err != nil {
		t.Fatal(err)
	}
	mal := sys.MaliciousRaters()
	malIDs := make([]int64, len(mal))
	for i, id := range mal {
		malIDs[i] = int64(id)
	}
	sort.Slice(malIDs, func(i, j int) bool { return malIDs[i] < malIDs[j] })
	fmt.Fprintf(&b, "system_malicious %v\n", malIDs)
	return b.String()
}

// checkGolden compares got against the file at path, rewriting the
// file instead when -update is set.
func checkGolden(t *testing.T, path, got string) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got == string(want) {
		return
	}
	// Report the first few diverging lines, not a wall of text.
	gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	diffs := 0
	for i := 0; i < len(gl) || i < len(wl); i++ {
		var g, w string
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if g != w {
			t.Errorf("line %d:\n  got  %q\n  want %q", i+1, g, w)
			if diffs++; diffs >= 5 {
				t.Fatalf("... further diffs suppressed (%d vs %d lines total)", len(gl), len(wl))
			}
		}
	}
}

func singleSystem(cfg Config) (goldenSystem, error) { return NewSystem(cfg) }

func shardedSystem(cfg Config) (goldenSystem, error) { return shard.NewEngine(cfg, 4) }

// TestGoldenPipeline locks the detector + trust pipeline to an exact
// numerical trace. Regenerate deliberately with:
//
//	go test -run TestGoldenPipeline -update .
func TestGoldenPipeline(t *testing.T) {
	checkGolden(t, goldenPath, renderGoldenTrace(t, singleSystem))
}

// TestGoldenPipelineSharded runs the identical trace through a 4-shard
// engine. Its golden file must match the single-system one
// byte-for-byte: sharding is a throughput layout, never a numerical
// change.
func TestGoldenPipelineSharded(t *testing.T) {
	checkGolden(t, goldenShardedPath, renderGoldenTrace(t, shardedSystem))
	if *updateGolden {
		return
	}
	single, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := os.ReadFile(goldenShardedPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(single) != string(sharded) {
		t.Fatalf("%s and %s differ: the sharded engine changed the pipeline's numbers", goldenPath, goldenShardedPath)
	}
}

// TestGoldenTraceIsDeterministic guards the golden test itself: two
// fresh runs in the same process must render identical bytes, or the
// golden comparison would flake.
func TestGoldenTraceIsDeterministic(t *testing.T) {
	if renderGoldenTrace(t, singleSystem) != renderGoldenTrace(t, singleSystem) {
		t.Fatal("pipeline trace differs between identical runs")
	}
}
