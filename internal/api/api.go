// Package api is the versioned v1 wire contract of the rating
// service: every request and response struct the HTTP handlers emit
// and the typed client consumes, plus the error envelope all non-2xx
// responses share. Handlers and client import these shapes from here
// — never declare ad-hoc per-handler structs — so a field rename is a
// single, reviewable change that the wire-contract golden tests
// (internal/server/contract_test.go) will flag loudly.
//
// Compatibility rules for v1:
//
//   - Existing fields keep their JSON names and types.
//   - New fields are additive and either optional in requests or
//     omitted-when-absent in responses (so default responses are
//     byte-identical across releases).
//   - Every non-2xx response body is an Error envelope.
package api

import "repro/internal/rating"

// RatingPayload is the wire form of one rating, used both in the
// unary submit batch (a JSON array of these) and as one NDJSON line
// of the streaming ingest endpoint.
type RatingPayload struct {
	Rater  int     `json:"rater"`
	Object int     `json:"object"`
	Value  float64 `json:"value"`
	Time   float64 `json:"time"`
}

// Rating converts the payload to the engine's rating type.
func (p RatingPayload) Rating() rating.Rating {
	return rating.Rating{
		Rater:  rating.RaterID(p.Rater),
		Object: rating.ObjectID(p.Object),
		Value:  p.Value,
		Time:   p.Time,
	}
}

// SubmitResponse reports how many ratings a unary submit accepted.
type SubmitResponse struct {
	Accepted int `json:"accepted"`
}

// ProcessRequest is the maintenance-window request body.
type ProcessRequest struct {
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// ProcessResponse summarizes one maintenance pass. Degraded counts
// objects whose detector pass failed and fell back to filter-only
// evidence.
type ProcessResponse struct {
	Objects      int `json:"objects"`
	Observations int `json:"observations"`
	Suspicious   int `json:"suspiciousWindows"`
	Degraded     int `json:"degradedObjects"`
}

// AggregateResponse is the wire form of an object's trust-weighted
// aggregate.
type AggregateResponse struct {
	Object   int     `json:"object"`
	Value    float64 `json:"value"`
	Used     int     `json:"used"`
	Filtered int     `json:"filtered"`
	FellBack bool    `json:"fellBack"`
}

// TrustResponse is the wire form of a rater's trust.
type TrustResponse struct {
	Rater int     `json:"rater"`
	Trust float64 `json:"trust"`
}

// Page describes the slice of a paginated collection a response
// holds. It is present only when the request asked for pagination
// (limit or offset), so unpaginated responses keep their original
// shape.
type Page struct {
	// Total is the collection size before pagination.
	Total int `json:"total"`
	// Offset is the number of leading entries skipped.
	Offset int `json:"offset"`
	// Limit echoes the requested page size; 0 means unlimited.
	Limit int `json:"limit"`
}

// MaliciousResponse lists flagged raters in ascending ID order. Page
// is set only on paginated requests.
type MaliciousResponse struct {
	Raters []int `json:"raters"`
	Page   *Page `json:"page,omitempty"`
}

// TrustDistribution bins every tracked rater's trust into the
// requested sorted upper bounds. Counts are cumulative ("le"
// semantics): Counts[i] is the number of raters with trust <=
// Bounds[i].
type TrustDistribution struct {
	Bounds []float64 `json:"bounds"`
	Counts []int     `json:"counts"`
}

// StatsResponse summarizes the system's state. Distribution is set
// only when the request carried a bounds parameter.
type StatsResponse struct {
	Ratings      int                `json:"ratings"`
	Raters       int                `json:"raters"`
	Malicious    int                `json:"malicious"`
	Distribution *TrustDistribution `json:"trust_distribution,omitempty"`
}

// StreamLineError is one rejected line of a streaming ingest: the
// 1-based line number, the error code (an Error code), and a message.
// Accepted lines produce no output — a bulk stream's response traffic
// is proportional to its failures, not its size.
type StreamLineError struct {
	Line    int    `json:"line"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

// StreamSummary is the final NDJSON line of a streaming ingest
// response. Lines counts physical input lines examined — blank lines
// included — so it maps 1:1 to the client's own framing and a client
// resumes an interrupted stream at line Lines+1. When the stream was
// cut short (a submit failure after acceptance started, an oversized
// line, or overload shedding), Code and Message carry the terminal
// error — with the backoff hint in RetryAfter seconds when Code is
// "overloaded" — and clients must treat lines after Lines as never
// examined.
type StreamSummary struct {
	Accepted   int     `json:"accepted"`
	Rejected   int     `json:"rejected"`
	Lines      int     `json:"lines"`
	Code       string  `json:"code,omitempty"`
	Message    string  `json:"message,omitempty"`
	RetryAfter float64 `json:"retry_after,omitempty"`
}

// Alert is one newly-flagged rater pushed by the streaming detection
// path. Seq positions the alert in the node's append-only alert log;
// clients resume a poll by passing the response's Next back as since.
type Alert struct {
	// Seq is the alert's position in the log, ascending from 1.
	Seq uint64 `json:"seq"`
	// Rater is the flagged rater.
	Rater int `json:"rater"`
	// Source names the detection path that flagged the rater:
	// "stream" (online AR detector), "window" (authoritative
	// maintenance-window charging) or "collusion" (incremental
	// collusion graph).
	Source string `json:"source"`
	// Suspicion is the evidence level at flag time; its meaning is
	// per-source (accrued stream suspicion, post-window trust, or
	// collusion suspicion mass).
	Suspicion float64 `json:"suspicion"`
	// FirstFlagged is the rating-clock time (days) of the evidence
	// that tripped the flag.
	FirstFlagged float64 `json:"first_flagged"`
	// WallNS is the wall-clock flag time in Unix nanoseconds; zero
	// (omitted) when the source does not track wall time.
	WallNS int64 `json:"wall_ns,omitempty"`
}

// AlertsResponse is the long-poll alerts read. Alerts holds every
// alert with Seq > since (empty — never null — when the poll timed
// out); Next is the log's tail sequence, passed back as since to
// resume without gaps or duplicates.
type AlertsResponse struct {
	Alerts []Alert `json:"alerts"`
	Next   uint64  `json:"next"`
}

// HealthResponse is the liveness probe's body.
type HealthResponse struct {
	Status string `json:"status"`
}
