package api

import (
	"encoding/json"
	"net/http"
	"testing"
)

func TestErrorValidate(t *testing.T) {
	cases := []struct {
		name string
		e    Error
		ok   bool
	}{
		{"valid", Error{Code: CodeBadRequest, Message: "decode ratings: EOF"}, true},
		{"retry hint", Error{Code: CodeOverloaded, Message: "shed", RetryAfter: 0.25}, true},
		{"unknown code", Error{Code: "nope", Message: "x"}, false},
		{"empty code", Error{Message: "x"}, false},
		{"empty message", Error{Code: CodeInternal}, false},
		{"negative retry", Error{Code: CodeOverloaded, Message: "x", RetryAfter: -1}, false},
	}
	for _, tc := range cases {
		if err := tc.e.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestCodeForStatusCoversCatalogue(t *testing.T) {
	for _, status := range []int{
		http.StatusBadRequest, http.StatusNotFound, http.StatusConflict,
		http.StatusRequestEntityTooLarge, http.StatusTooManyRequests,
		http.StatusServiceUnavailable, http.StatusInternalServerError,
	} {
		if code := CodeForStatus(status); !KnownCode(code) {
			t.Errorf("status %d maps to unknown code %q", status, code)
		}
	}
}

// The envelope's wire shape is load-bearing: retry_after must vanish
// when unset so non-shed errors keep their two-field body.
func TestErrorWireShape(t *testing.T) {
	b, err := json.Marshal(&Error{Code: CodeNotFound, Message: "unknown object 9"})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"code":"not_found","message":"unknown object 9"}`
	if string(b) != want {
		t.Fatalf("envelope = %s, want %s", b, want)
	}
	b, err = json.Marshal(&Error{Code: CodeOverloaded, Message: "shed", RetryAfter: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	want = `{"code":"overloaded","message":"shed","retry_after":0.5}`
	if string(b) != want {
		t.Fatalf("envelope = %s, want %s", b, want)
	}
}

// Optional response sections must be omitted when absent, keeping
// default responses byte-identical to the pre-pagination contract.
func TestOptionalSectionsOmitted(t *testing.T) {
	b, _ := json.Marshal(MaliciousResponse{Raters: []int{}})
	if string(b) != `{"raters":[]}` {
		t.Fatalf("unpaginated malicious = %s", b)
	}
	b, _ = json.Marshal(StatsResponse{Ratings: 1, Raters: 2, Malicious: 0})
	if string(b) != `{"ratings":1,"raters":2,"malicious":0}` {
		t.Fatalf("default stats = %s", b)
	}
}
