// Cluster wire shapes: the routing-table document served on
// GET /v1/cluster, the internal scan/apply exchange the router uses to
// run a maintenance window across members, and the GET /v1 discovery
// document. These live in the v1 contract alongside the rest of the
// surface — the router and members speak only these shapes, so a
// member from one build and a router from another interoperate as
// long as both honor v1's compatibility rules.

package api

// Version headers of the v1 surface.
const (
	// VersionHeader stamps every v1 response with the contract major
	// version, so a client can detect a v2 server before decoding.
	VersionHeader = "X-Api-Version"
	// Version is the current contract major version.
	Version = "1"
	// ClusterEpochHeader pins a request to a routing-table epoch. A
	// node whose table has a different epoch answers 409 stale_epoch
	// instead of acting on a stale ownership view.
	ClusterEpochHeader = "X-Cluster-Epoch"
	// RequestIDHeader carries the client's idempotency/attribution
	// token; error envelopes echo it as request_id.
	RequestIDHeader = "X-Request-Id"
)

// ClusterNode is one member's row in the routing table: the contiguous
// keyspace range it owns and, on GET /v1/cluster, its live health.
type ClusterNode struct {
	// URL is the node's base URL (scheme://host:port).
	URL string `json:"url"`
	// Lo is the first owned point of the 2^32 object-hash keyspace.
	Lo uint32 `json:"lo"`
	// Hi is one past the last owned point (exclusive; up to 2^32).
	// An empty range has Hi == Lo.
	Hi uint64 `json:"hi"`
	// Status is "ok" or "down", probed by the router at serve time;
	// empty when the document comes from a member (members know the
	// table, not liveness).
	Status string `json:"status,omitempty"`
	// WindowEnd is the node's last charged maintenance-window end
	// (rating-clock days); the router surfaces it so operators can
	// spot a member lagging the cluster's window high-water mark.
	WindowEnd float64 `json:"window_end,omitempty"`
	// Self marks the node serving this document.
	Self bool `json:"self,omitempty"`
}

// ClusterResponse is the GET /v1/cluster document: the epoch-stamped
// ownership table every router and client routes by.
type ClusterResponse struct {
	// Epoch versions the table; it rides on every cross-node request
	// as X-Cluster-Epoch.
	Epoch uint64 `json:"epoch"`
	// Nodes lists the members in ascending Lo order, covering the
	// keyspace exactly.
	Nodes []ClusterNode `json:"nodes"`
}

// RaterEvidence is one rater's per-object Procedure 2 evidence from a
// member's scan: the observation counts plus the single float the
// trust fold is order-sensitive in (suspicion mass). JSON float64
// round-trips are exact, so folding these on the router in ascending
// object order reproduces the single-system fold bit for bit.
type RaterEvidence struct {
	Rater      int     `json:"rater"`
	N          int     `json:"n"`
	Filtered   int     `json:"f"`
	Suspicious int     `json:"s"`
	Mass       float64 `json:"mass"`
}

// ObjectEvidence is one object's scan outcome on its owning member.
type ObjectEvidence struct {
	Object     int `json:"object"`
	Considered int `json:"considered"`
	Filtered   int `json:"filtered"`
	// Windows is the detector window count; SuspiciousWindows the
	// subset flagged.
	Windows           int  `json:"windows"`
	SuspiciousWindows int  `json:"suspicious_windows"`
	Degraded          bool `json:"degraded,omitempty"`
	// Raters holds the per-rater evidence in ascending rater order.
	Raters []RaterEvidence `json:"raters"`
}

// ClusterScanRequest asks a member to scan its owned objects for one
// maintenance window without charging trust — the router folds all
// members' evidence and broadcasts the merged result via apply.
type ClusterScanRequest struct {
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// ClusterScanResponse is the member's evidence, objects ascending.
type ClusterScanResponse struct {
	Objects []ObjectEvidence `json:"objects"`
}

// ClusterApplyRequest carries the router's merged window observations
// to every member: each applies the identical batch to its replicated
// trust state, so all nodes answer trust reads identically.
type ClusterApplyRequest struct {
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	// Observations holds the merged fold in ascending rater order.
	Observations []RaterEvidence `json:"observations"`
}

// ClusterApplyResponse acknowledges a durable apply.
type ClusterApplyResponse struct {
	Raters    int     `json:"raters"`
	WindowEnd float64 `json:"window_end"`
}

// DiscoveryLimits publishes the server's request bounds.
type DiscoveryLimits struct {
	// MaxBodyBytes is the unary request-body cap.
	MaxBodyBytes int64 `json:"max_body_bytes"`
	// MaxStreamLineBytes is the NDJSON per-line cap.
	MaxStreamLineBytes int64 `json:"max_stream_line_bytes"`
	// RequestTimeoutSeconds is the per-request handling deadline.
	RequestTimeoutSeconds float64 `json:"request_timeout_seconds"`
}

// DiscoveryFeatures flags the optional subsystems this node runs.
type DiscoveryFeatures struct {
	StreamIngest bool `json:"stream_ingest"`
	StreamDetect bool `json:"stream_detect"`
	Replication  bool `json:"replication"`
	Cluster      bool `json:"cluster"`
	Router       bool `json:"router"`
}

// DiscoveryResponse is the GET /v1 document: the contract version,
// the route list, the node's limits, and its feature flags.
type DiscoveryResponse struct {
	Version  string            `json:"version"`
	Routes   []string          `json:"routes"`
	Limits   DiscoveryLimits   `json:"limits"`
	Features DiscoveryFeatures `json:"features"`
}
