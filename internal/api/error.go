package api

import (
	"fmt"
	"net/http"
)

// Error codes of the v1 surface. The catalogue is closed: handlers
// must pick one of these, and the contract tests reject envelopes
// carrying a code outside it. Clients switch on Code, never on the
// human-readable Message.
const (
	// CodeBadRequest: the request is malformed — undecodable body,
	// invalid rating, bad path or query parameter. Retrying cannot
	// help.
	CodeBadRequest = "bad_request"
	// CodeNotFound: the referenced object or resource does not exist.
	CodeNotFound = "not_found"
	// CodeConflict: the state cannot answer the request (e.g. an
	// aggregate over an object with no usable ratings).
	CodeConflict = "conflict"
	// CodePayloadTooLarge: the request body exceeded the server's
	// size limit.
	CodePayloadTooLarge = "payload_too_large"
	// CodeOverloaded: admission control shed the request; retry after
	// RetryAfter seconds.
	CodeOverloaded = "overloaded"
	// CodeTimeout: the request exceeded the server's per-request
	// handling deadline.
	CodeTimeout = "timeout"
	// CodeUnavailable: a dependency (journal, leader execution) was
	// unavailable; the mutation was not applied and a retry is safe.
	CodeUnavailable = "unavailable"
	// CodeInternal: a handler bug; the request's effect is unknown.
	CodeInternal = "internal"
	// CodeReplicaStale: the node is a read replica whose lag exceeds
	// its -max-lag bound; reads here could be arbitrarily stale. Retry
	// here later or read from the primary.
	CodeReplicaStale = "replica_stale"
	// CodeNotPrimary: the node is a read replica and cannot accept
	// mutations; the envelope's Primary field carries the primary's
	// URL when known. Re-issue the request there.
	CodeNotPrimary = "not_primary"
	// CodeWrongNode: the node is a cluster member that does not own
	// the request's keyspace point; the envelope's Owner field carries
	// the owning node's base URL. Re-issue the request there (the
	// typed client follows automatically, capped hops).
	CodeWrongNode = "wrong_node"
	// CodeStaleEpoch: the request pinned a cluster routing-table epoch
	// (X-Cluster-Epoch) that does not match the node's table. The
	// sender's view of ownership is stale; refresh from GET /v1/cluster
	// before retrying.
	CodeStaleEpoch = "stale_epoch"
)

// knownCodes is the closed catalogue.
var knownCodes = map[string]bool{
	CodeBadRequest:      true,
	CodeNotFound:        true,
	CodeConflict:        true,
	CodePayloadTooLarge: true,
	CodeOverloaded:      true,
	CodeTimeout:         true,
	CodeUnavailable:     true,
	CodeInternal:        true,
	CodeReplicaStale:    true,
	CodeNotPrimary:      true,
	CodeWrongNode:       true,
	CodeStaleEpoch:      true,
}

// KnownCode reports whether code is in the v1 catalogue.
func KnownCode(code string) bool { return knownCodes[code] }

// Error is the envelope every non-2xx response carries. RetryAfter,
// when positive, is the server's backoff hint in seconds (fractional
// allowed); it accompanies the HTTP Retry-After header on shed (429)
// responses.
type Error struct {
	Code       string  `json:"code"`
	Message    string  `json:"message"`
	RetryAfter float64 `json:"retry_after,omitempty"`
	// Primary is the primary's base URL, set on not_primary envelopes
	// so a redirected client knows where mutations go.
	Primary string `json:"primary,omitempty"`
	// Owner is the owning cluster node's base URL, set on wrong_node
	// envelopes so a misdirected client knows where the key lives.
	Owner string `json:"owner,omitempty"`
	// RequestID echoes the request's X-Request-ID header (when the
	// client sent one) so failures are attributable across cross-node
	// hops and retries.
	RequestID string `json:"request_id,omitempty"`
}

// NewError constructs a catalogue error envelope. Every handler must
// build its envelopes through this helper — it is the single
// construction point the error-catalogue test audits — and it panics
// on a code outside the closed catalogue, turning a typo into an
// immediate test failure instead of a silent contract break.
func NewError(code, format string, args ...any) *Error {
	if !KnownCode(code) {
		panic(fmt.Sprintf("api: NewError with unknown code %q", code))
	}
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// WithRetryAfter sets the backoff hint (seconds) and returns e.
func (e *Error) WithRetryAfter(seconds float64) *Error {
	e.RetryAfter = seconds
	return e
}

// WithPrimary sets the primary's base URL and returns e.
func (e *Error) WithPrimary(url string) *Error {
	e.Primary = url
	return e
}

// WithOwner sets the owning node's base URL and returns e.
func (e *Error) WithOwner(url string) *Error {
	e.Owner = url
	return e
}

// WithRequestID echoes the request ID and returns e.
func (e *Error) WithRequestID(id string) *Error {
	e.RequestID = id
	return e
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// Validate checks the envelope against the contract: a known code and
// a non-empty message, with a non-negative retry hint.
func (e *Error) Validate() error {
	if !KnownCode(e.Code) {
		return fmt.Errorf("api: unknown error code %q", e.Code)
	}
	if e.Message == "" {
		return fmt.Errorf("api: %s envelope with empty message", e.Code)
	}
	if e.RetryAfter < 0 {
		return fmt.Errorf("api: negative retry_after %g", e.RetryAfter)
	}
	return nil
}

// CodeForStatus maps an HTTP status to the default error code, for
// paths that know the status but not a more specific cause.
func CodeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return CodeBadRequest
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusConflict:
		return CodeConflict
	case http.StatusRequestEntityTooLarge:
		return CodePayloadTooLarge
	case http.StatusTooManyRequests:
		return CodeOverloaded
	case http.StatusMisdirectedRequest:
		return CodeNotPrimary
	case http.StatusServiceUnavailable:
		return CodeUnavailable
	default:
		return CodeInternal
	}
}
