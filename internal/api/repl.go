package api

// Replication wire contract (v1).
//
// A follower bootstraps with GET /v1/repl/snapshot, then tails each
// shard log with GET /v1/repl/stream?shard=&epoch=&seg=&off= — a
// long-poll NDJSON stream of ReplFrame lines. Every frame carries the
// cursor (seg, off) just PAST itself, so the client resumes exactly
// where it stopped by echoing the last frame's cursor; a stream may
// end at any time (long-poll window, primary restart, network) and
// the cursor is the only state that matters. Frames also carry the
// primary's cumulative appended-record count (total) and wall clock
// (ts), which the follower turns into lag in records and seconds.

// Replication frame types.
const (
	// FrameRecords: Records holds a batch of ratings to apply.
	FrameRecords = "records"
	// FrameBarrier: a maintenance window broadcast at barrier sequence
	// Seq; the follower aligns all shard streams at Seq, then runs the
	// window [Start, End).
	FrameBarrier = "barrier"
	// FrameProcess: a single-log maintenance window (unsharded WAL).
	FrameProcess = "process"
	// FrameSegment: the cursor rolled into a new segment; no payload.
	FrameSegment = "segment"
	// FrameHeartbeat: nothing new; refreshes total/ts so an idle
	// follower's lag stays measured.
	FrameHeartbeat = "heartbeat"
	// FrameReset: the cursor's segment is gone (compacted past);
	// the follower must re-bootstrap from a fresh snapshot.
	FrameReset = "reset"
)

// ReplFrame is one NDJSON line of the replication stream.
type ReplFrame struct {
	Type  string `json:"type"`
	Shard int    `json:"shard"`
	// Seg/Off is the cursor just past this frame: echo it to resume.
	Seg int   `json:"seg"`
	Off int64 `json:"off"`
	// Total is the primary's cumulative appended-record count for this
	// shard log; comparable only within one primary process lifetime.
	Total uint64 `json:"total"`
	// TS is the primary's wall clock, unix seconds (fractional).
	TS      float64         `json:"ts"`
	Records []RatingPayload `json:"records,omitempty"`
	// Seq/Start/End describe barrier and process frames.
	Seq   uint64  `json:"seq,omitempty"`
	Start float64 `json:"start,omitempty"`
	End   float64 `json:"end,omitempty"`
}

// ReplCursor is one shard log's replication position.
type ReplCursor struct {
	Shard int   `json:"shard"`
	Seg   int   `json:"seg"`
	Off   int64 `json:"off"`
	// Records is cumulative appended (primary) or applied-since-
	// bootstrap-base (follower) records for this shard.
	Records uint64 `json:"records"`
}

// Replication roles.
const (
	RolePrimary  = "primary"
	RoleFollower = "follower"
)

// ReplStatusResponse is GET /v1/repl/status on either role.
type ReplStatusResponse struct {
	Role   string `json:"role"`
	Epoch  int    `json:"epoch"`
	Shards int    `json:"shards"`
	// BarrierSeq is the last maintenance barrier applied (0 = none).
	BarrierSeq uint64 `json:"barrier_seq"`
	// Primary is the upstream URL (followers only).
	Primary string `json:"primary,omitempty"`
	// LagRecords/LagSeconds measure follower staleness; 0 on the
	// primary. LagSeconds is wall-clock age of the reflected state.
	LagRecords uint64  `json:"lag_records"`
	LagSeconds float64 `json:"lag_seconds"`
	// Resyncs counts torn-frame/decode resyncs; Reconnects counts
	// stream connections established after the first.
	Resyncs    uint64       `json:"resyncs"`
	Reconnects uint64       `json:"reconnects"`
	Cursors    []ReplCursor `json:"cursors,omitempty"`
}

// ReplShardSnapshot is one shard log's verified snapshot in a
// bootstrap response. Data is the raw snapshot file — trailing CRC32C
// footer included — so the follower verifies the bytes end-to-end
// (wal.SplitSnapshotFooter) before trusting them.
type ReplShardSnapshot struct {
	Shard int `json:"shard"`
	// Seg is the segment the snapshot covers up to: tailing resumes at
	// cursor (Seg, 0).
	Seg int `json:"seg"`
	// Base is the primary's appended-record count at snapshot time —
	// the baseline follower lag is measured from (also bound into
	// Data's footer).
	Base uint64 `json:"base"`
	Data []byte `json:"data"` // base64 on the wire
}

// ReplBootstrapResponse is GET /v1/repl/snapshot: a fresh, verified
// snapshot of every shard log plus the barrier height it reflects.
type ReplBootstrapResponse struct {
	Epoch      int    `json:"epoch"`
	Shards     int    `json:"shards"`
	BarrierSeq uint64 `json:"barrier_seq"`
	// TS is the primary's wall clock when the snapshot was cut.
	TS        float64             `json:"ts"`
	Snapshots []ReplShardSnapshot `json:"snapshots"`
}
