// Package attack is the adversary zoo: adaptive collusion strategies
// against the trust-enhanced rating system — the paper's stated future
// work ("we will study the possible attacks to the proposed
// solutions"). Each Strategy plans a campaign of unfair ratings on top
// of an honest background stream from an explicit seed, so a campaign
// is a pure function of (seed, params) and the detector×attack matrix
// experiment can derive per-cell seeds the same way internal/parallel
// derives per-item streams (randx.Derive).
//
// Strategies are deliberately stronger than the paper's type-1/type-2
// raters:
//
//   - Constant: the paper's type-2 clique (baseline).
//   - Camouflage: colluders match the honest variance so the window
//     variance signature disappears; only the mean shifts.
//   - OnOff: alternating burst/sleep intervals, defeating detectors
//     that need sustained low-error windows.
//   - Ramp: the bias grows slowly across the attack interval, keeping
//     every window marginal.
//   - TrustThenStrike: colluders first submit honest ratings to build
//     trust (Procedure 2's S), then strike — attacking the trust floor
//     of the modified weighted average.
//   - Sybil: each unfair rating comes from a fresh identity, so
//     per-rater suspicion never accumulates across windows or objects.
//   - Whitewash: sybil with re-registration pacing — an identity is
//     retired after a few ratings and replaced by a fresh one, staying
//     below any per-rater evidence threshold without paying sybil's
//     one-rating-per-identity cost.
//   - RotatingTarget: the clique rotates its campaign across a pool of
//     target objects window by window, so no single object's window
//     accumulates a clean clique signature — but the group co-rates
//     the same objects at the same times, the signature the collusion
//     graph mines.
//   - Oscillate: identities alternate honest and malicious phases,
//     rebuilding trust between strikes — trust-then-burn, repeated.
package attack

import (
	"fmt"

	"repro/internal/randx"
	"repro/internal/rating"
	"repro/internal/sim"
)

// Quality maps (object, time) to the object's true quality. Strategies
// track it so campaigns stay a fixed bias above a drifting target, as
// the paper's colluders do.
type Quality func(obj rating.ObjectID, t float64) float64

// FlatQuality lifts a single-object quality curve to a Quality that
// ignores the object — the single-target campaigns' common case.
func FlatQuality(q func(float64) float64) Quality {
	return func(_ rating.ObjectID, t float64) float64 { return q(t) }
}

// Params shape a collusion campaign.
type Params struct {
	// Object is the primary target object.
	Object rating.ObjectID
	// Targets is the target pool for multi-object strategies
	// (RotatingTarget); empty means just Object.
	Targets []rating.ObjectID
	// Start and End delimit the campaign in days.
	Start, End float64
	// Rate is the unfair-rating arrival rate per day.
	Rate float64
	// Bias is the shift the campaign aims to inject above the honest
	// quality.
	Bias float64
	// Variance of the unfair ratings (strategy-dependent meaning).
	Variance float64
	// Levels quantizes values; 0 means 11 zero-based levels.
	Levels int
	// Colluders is the clique size (identities available). 0 means one
	// identity per rating for Sybil and Rate·(End−Start) otherwise.
	Colluders int
	// FirstRater is the first colluder ID; successive identities count
	// up from it. Zero means 100000 (the sim convention).
	FirstRater rating.RaterID
}

func (p Params) withDefaults() Params {
	if p.Levels == 0 {
		p.Levels = 11
	}
	if p.FirstRater == 0 {
		p.FirstRater = 100000
	}
	if p.Colluders == 0 {
		n := int(p.Rate * (p.End - p.Start))
		if n < 1 {
			n = 1
		}
		p.Colluders = n
	}
	if len(p.Targets) == 0 {
		p.Targets = []rating.ObjectID{p.Object}
	}
	return p
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	switch {
	case p.End < p.Start:
		return fmt.Errorf("attack: interval [%g,%g]", p.Start, p.End)
	case p.Rate < 0:
		return fmt.Errorf("attack: rate %g", p.Rate)
	case p.Variance < 0:
		return fmt.Errorf("attack: variance %g", p.Variance)
	case p.Colluders < 0:
		return fmt.Errorf("attack: %d colluders", p.Colluders)
	}
	return nil
}

// Strategy plans a campaign. Plan is a pure function of (seed, p): the
// same seed replans the identical campaign, which is what lets the
// matrix experiment fan cells out over workers without a shared
// stream.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Plan returns the campaign's unfair ratings, labeled. The returned
	// slice need not be sorted.
	Plan(seed int64, p Params, quality Quality) ([]sim.LabeledRating, error)
}

// All returns every implemented strategy, baseline first — the
// adversary zoo the detector×attack matrix scores against.
func All() []Strategy {
	return []Strategy{
		Constant{},
		Camouflage{HonestVariance: 0.2},
		OnOff{BurstDays: 3, SleepDays: 3},
		Ramp{},
		TrustThenStrike{BuildRatio: 0.5},
		Sybil{},
		Whitewash{IdentityRatings: 3},
		RotatingTarget{},
		Oscillate{HonestDays: 4, AttackDays: 4},
	}
}

// emit quantizes and labels one unfair rating against obj.
func emit(p Params, id rating.RaterID, obj rating.ObjectID, value, tm float64) sim.LabeledRating {
	return sim.LabeledRating{
		Rating: rating.Rating{
			Rater:  id,
			Object: obj,
			Value:  randx.Quantize(value, p.Levels, true),
			Time:   tm,
		},
		Class:  sim.Type2Collaborative,
		Unfair: true,
	}
}

// Constant is the paper's type-2 clique: Poisson arrivals with a fixed
// moderate bias and small variance.
type Constant struct{}

var _ Strategy = Constant{}

// Name implements Strategy.
func (Constant) Name() string { return "constant" }

// Plan implements Strategy.
func (Constant) Plan(seed int64, p Params, quality Quality) ([]sim.LabeledRating, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := randx.New(seed)
	var out []sim.LabeledRating
	for i, tm := range rng.PoissonProcess(p.Rate, p.Start, p.End) {
		id := p.FirstRater + rating.RaterID(i%p.Colluders)
		out = append(out, emit(p, id, p.Object, rng.NormalVar(quality(p.Object, tm)+p.Bias, p.Variance), tm))
	}
	return out, nil
}

// Camouflage matches the honest variance so the clique's tight
// clustering — the main AR signature — disappears; only the mean moves.
type Camouflage struct {
	// HonestVariance is the variance to mimic (the workload's goodVar).
	HonestVariance float64
}

var _ Strategy = Camouflage{}

// Name implements Strategy.
func (Camouflage) Name() string { return "camouflage" }

// Plan implements Strategy.
func (c Camouflage) Plan(seed int64, p Params, quality Quality) ([]sim.LabeledRating, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	variance := c.HonestVariance
	if variance <= 0 {
		variance = 0.2
	}
	rng := randx.New(seed)
	var out []sim.LabeledRating
	for i, tm := range rng.PoissonProcess(p.Rate, p.Start, p.End) {
		id := p.FirstRater + rating.RaterID(i%p.Colluders)
		out = append(out, emit(p, id, p.Object, rng.NormalVar(quality(p.Object, tm)+p.Bias, variance), tm))
	}
	return out, nil
}

// OnOff alternates burst and sleep intervals inside the campaign.
type OnOff struct {
	// BurstDays and SleepDays set the duty cycle; zero values mean 3/3.
	BurstDays, SleepDays float64
}

var _ Strategy = OnOff{}

// Name implements Strategy.
func (OnOff) Name() string { return "on-off" }

// Plan implements Strategy.
func (o OnOff) Plan(seed int64, p Params, quality Quality) ([]sim.LabeledRating, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	burst, sleep := o.BurstDays, o.SleepDays
	if burst <= 0 {
		burst = 3
	}
	if sleep <= 0 {
		sleep = 3
	}
	rng := randx.New(seed)
	var out []sim.LabeledRating
	i := 0
	for start := p.Start; start < p.End; start += burst + sleep {
		end := start + burst
		if end > p.End {
			end = p.End
		}
		// Double the rate inside bursts so the injected mass matches a
		// sustained campaign with the same Params.Rate.
		for _, tm := range rng.PoissonProcess(2*p.Rate, start, end) {
			id := p.FirstRater + rating.RaterID(i%p.Colluders)
			out = append(out, emit(p, id, p.Object, rng.NormalVar(quality(p.Object, tm)+p.Bias, p.Variance), tm))
			i++
		}
	}
	return out, nil
}

// Ramp grows the bias linearly from zero to the target across the
// campaign, keeping each window's shift marginal.
type Ramp struct{}

var _ Strategy = Ramp{}

// Name implements Strategy.
func (Ramp) Name() string { return "ramp" }

// Plan implements Strategy.
func (Ramp) Plan(seed int64, p Params, quality Quality) ([]sim.LabeledRating, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	span := p.End - p.Start
	rng := randx.New(seed)
	var out []sim.LabeledRating
	for i, tm := range rng.PoissonProcess(p.Rate, p.Start, p.End) {
		frac := 0.0
		if span > 0 {
			frac = (tm - p.Start) / span
		}
		id := p.FirstRater + rating.RaterID(i%p.Colluders)
		out = append(out, emit(p, id, p.Object, rng.NormalVar(quality(p.Object, tm)+p.Bias*frac, p.Variance), tm))
	}
	return out, nil
}

// TrustThenStrike spends the first BuildRatio of the campaign rating
// honestly (accumulating S in Procedure 2), then strikes with the full
// bias — the canonical attack on trust-floor aggregation.
type TrustThenStrike struct {
	// BuildRatio in (0, 1) is the fraction of the campaign spent
	// building trust; zero means 0.5.
	BuildRatio float64
	// HonestVariance is the variance of the trust-building ratings;
	// zero means 0.2.
	HonestVariance float64
}

var _ Strategy = TrustThenStrike{}

// Name implements Strategy.
func (TrustThenStrike) Name() string { return "trust-then-strike" }

// Plan implements Strategy.
func (t TrustThenStrike) Plan(seed int64, p Params, quality Quality) ([]sim.LabeledRating, error) {
	ratio := t.BuildRatio
	if ratio <= 0 || ratio >= 1 {
		ratio = 0.5
	}
	if p.Colluders == 0 {
		// The same clique must appear in both phases, so the identity
		// pool is one phase's worth of arrivals, not the campaign's.
		n := int(ratio * p.Rate * (p.End - p.Start))
		if n < 1 {
			n = 1
		}
		p.Colluders = n
	}
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	honestVar := t.HonestVariance
	if honestVar <= 0 {
		honestVar = 0.2
	}
	pivot := p.Start + ratio*(p.End-p.Start)
	rng := randx.New(seed)
	var out []sim.LabeledRating
	for i, tm := range rng.PoissonProcess(p.Rate, p.Start, p.End) {
		id := p.FirstRater + rating.RaterID(i%p.Colluders)
		if tm < pivot {
			// Trust-building phase: honest-looking ratings. Still from
			// colluder identities, but not unfair — label accordingly.
			l := emit(p, id, p.Object, rng.NormalVar(quality(p.Object, tm), honestVar), tm)
			l.Unfair = false
			l.Class = sim.PotentialCollaborative
			out = append(out, l)
			continue
		}
		out = append(out, emit(p, id, p.Object, rng.NormalVar(quality(p.Object, tm)+p.Bias, p.Variance), tm))
	}
	return out, nil
}

// Sybil gives every unfair rating a fresh identity so no rater ever
// accumulates suspicion across windows.
type Sybil struct{}

var _ Strategy = Sybil{}

// Name implements Strategy.
func (Sybil) Name() string { return "sybil" }

// Plan implements Strategy.
func (Sybil) Plan(seed int64, p Params, quality Quality) ([]sim.LabeledRating, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := randx.New(seed)
	var out []sim.LabeledRating
	next := p.FirstRater
	for _, tm := range rng.PoissonProcess(p.Rate, p.Start, p.End) {
		out = append(out, emit(p, next, p.Object, rng.NormalVar(quality(p.Object, tm)+p.Bias, p.Variance), tm))
		next++
	}
	return out, nil
}

// Whitewash models re-registration: an identity submits a handful of
// unfair ratings, is abandoned before per-rater evidence can pile up,
// and the attacker re-registers under a fresh ID. It sits between
// Constant (one stable clique, maximal per-rater evidence) and Sybil
// (one rating per identity, maximal registration cost).
type Whitewash struct {
	// IdentityRatings is how many ratings an identity submits before
	// re-registering; zero means 3.
	IdentityRatings int
}

var _ Strategy = Whitewash{}

// Name implements Strategy.
func (Whitewash) Name() string { return "whitewash" }

// Plan implements Strategy.
func (w Whitewash) Plan(seed int64, p Params, quality Quality) ([]sim.LabeledRating, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	life := w.IdentityRatings
	if life <= 0 {
		life = 3
	}
	rng := randx.New(seed)
	var out []sim.LabeledRating
	id := p.FirstRater
	used := 0
	for _, tm := range rng.PoissonProcess(p.Rate, p.Start, p.End) {
		if used == life {
			id++
			used = 0
		}
		out = append(out, emit(p, id, p.Object, rng.NormalVar(quality(p.Object, tm)+p.Bias, p.Variance), tm))
		used++
	}
	return out, nil
}

// RotatingTarget rotates the clique's campaign across the target pool:
// during rotation slot k the whole clique rates Targets[k mod len].
// Each object sees the clique only every len(Targets) slots — too
// thin for a per-object window signature — but the clique co-rates
// the same objects at the same times, which is exactly the co-rating
// correlation a collusion graph mines.
type RotatingTarget struct {
	// RotateDays is the rotation slot length; zero means 10 (the §IV
	// detector window width, so each visit spans about one window).
	RotateDays float64
}

var _ Strategy = RotatingTarget{}

// Name implements Strategy.
func (RotatingTarget) Name() string { return "rotating" }

// Plan implements Strategy.
func (r RotatingTarget) Plan(seed int64, p Params, quality Quality) ([]sim.LabeledRating, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rotate := r.RotateDays
	if rotate <= 0 {
		rotate = 10
	}
	rng := randx.New(seed)
	var out []sim.LabeledRating
	for i, tm := range rng.PoissonProcess(p.Rate, p.Start, p.End) {
		slot := int((tm - p.Start) / rotate)
		obj := p.Targets[slot%len(p.Targets)]
		id := p.FirstRater + rating.RaterID(i%p.Colluders)
		out = append(out, emit(p, id, obj, rng.NormalVar(quality(obj, tm)+p.Bias, p.Variance), tm))
	}
	return out, nil
}

// Oscillate alternates honest and malicious phases per the duty cycle:
// the clique rebuilds trust with honest ratings between strikes, so
// the beta record's S keeps pace with the F the strikes accrue —
// trust-then-burn, repeated for the whole campaign.
type Oscillate struct {
	// HonestDays and AttackDays set the duty cycle; zero values mean
	// 4/4.
	HonestDays, AttackDays float64
	// HonestVariance is the variance of the trust-rebuilding ratings;
	// zero means 0.2.
	HonestVariance float64
}

var _ Strategy = Oscillate{}

// Name implements Strategy.
func (Oscillate) Name() string { return "oscillate" }

// Plan implements Strategy.
func (o Oscillate) Plan(seed int64, p Params, quality Quality) ([]sim.LabeledRating, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	honestDays, attackDays := o.HonestDays, o.AttackDays
	if honestDays <= 0 {
		honestDays = 4
	}
	if attackDays <= 0 {
		attackDays = 4
	}
	honestVar := o.HonestVariance
	if honestVar <= 0 {
		honestVar = 0.2
	}
	period := honestDays + attackDays
	rng := randx.New(seed)
	var out []sim.LabeledRating
	for i, tm := range rng.PoissonProcess(p.Rate, p.Start, p.End) {
		id := p.FirstRater + rating.RaterID(i%p.Colluders)
		phase := tm - p.Start
		for phase >= period {
			phase -= period
		}
		if phase < honestDays {
			l := emit(p, id, p.Object, rng.NormalVar(quality(p.Object, tm), honestVar), tm)
			l.Unfair = false
			l.Class = sim.PotentialCollaborative
			out = append(out, l)
			continue
		}
		out = append(out, emit(p, id, p.Object, rng.NormalVar(quality(p.Object, tm)+p.Bias, p.Variance), tm))
	}
	return out, nil
}
