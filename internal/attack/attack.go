// Package attack implements adaptive collusion strategies against the
// trust-enhanced rating system — the paper's stated future work ("we
// will study the possible attacks to the proposed solutions"). Each
// Strategy plans a campaign of unfair ratings for one object on top of
// an honest background stream; the robustness experiment
// (ablation-attacks) scores the detector and the aggregation pipeline
// against every strategy.
//
// Strategies are deliberately stronger than the paper's type-1/type-2
// raters:
//
//   - Constant: the paper's type-2 clique (baseline).
//   - Camouflage: colluders match the honest variance so the window
//     variance signature disappears; only the mean shifts.
//   - OnOff: alternating burst/sleep intervals, defeating detectors
//     that need sustained low-error windows.
//   - Ramp: the bias grows slowly across the attack interval, keeping
//     every window marginal.
//   - TrustThenStrike: colluders first submit honest ratings to build
//     trust (Procedure 2's S), then strike — attacking the trust floor
//     of the modified weighted average.
//   - Sybil: each unfair rating comes from a fresh identity, so
//     per-rater suspicion never accumulates across windows or objects.
package attack

import (
	"fmt"

	"repro/internal/randx"
	"repro/internal/rating"
	"repro/internal/sim"
)

// Params shape a collusion campaign.
type Params struct {
	// Object is the target object.
	Object rating.ObjectID
	// Start and End delimit the campaign in days.
	Start, End float64
	// Rate is the unfair-rating arrival rate per day.
	Rate float64
	// Bias is the shift the campaign aims to inject above the honest
	// quality.
	Bias float64
	// Variance of the unfair ratings (strategy-dependent meaning).
	Variance float64
	// Levels quantizes values; 0 means 11 zero-based levels.
	Levels int
	// Colluders is the clique size (identities available). 0 means one
	// identity per rating for Sybil and Rate·(End−Start) otherwise.
	Colluders int
	// FirstRater is the first colluder ID; successive identities count
	// up from it. Zero means 100000 (the sim convention).
	FirstRater rating.RaterID
}

func (p Params) withDefaults() Params {
	if p.Levels == 0 {
		p.Levels = 11
	}
	if p.FirstRater == 0 {
		p.FirstRater = 100000
	}
	if p.Colluders == 0 {
		n := int(p.Rate * (p.End - p.Start))
		if n < 1 {
			n = 1
		}
		p.Colluders = n
	}
	return p
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	switch {
	case p.End < p.Start:
		return fmt.Errorf("attack: interval [%g,%g]", p.Start, p.End)
	case p.Rate < 0:
		return fmt.Errorf("attack: rate %g", p.Rate)
	case p.Variance < 0:
		return fmt.Errorf("attack: variance %g", p.Variance)
	case p.Colluders < 0:
		return fmt.Errorf("attack: %d colluders", p.Colluders)
	}
	return nil
}

// Strategy plans a campaign. Quality maps a time to the object's true
// quality (so strategies can track drifting targets, as the paper's
// colluders do).
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Plan returns the campaign's unfair ratings, labeled. The returned
	// slice need not be sorted.
	Plan(rng *randx.Rand, p Params, quality func(float64) float64) ([]sim.LabeledRating, error)
}

// All returns every implemented strategy, baseline first.
func All() []Strategy {
	return []Strategy{
		Constant{},
		Camouflage{HonestVariance: 0.2},
		OnOff{BurstDays: 3, SleepDays: 3},
		Ramp{},
		TrustThenStrike{BuildRatio: 0.5},
		Sybil{},
	}
}

// emit quantizes and labels one unfair rating.
func emit(p Params, id rating.RaterID, value, tm float64) sim.LabeledRating {
	return sim.LabeledRating{
		Rating: rating.Rating{
			Rater:  id,
			Object: p.Object,
			Value:  randx.Quantize(value, p.Levels, true),
			Time:   tm,
		},
		Class:  sim.Type2Collaborative,
		Unfair: true,
	}
}

// Constant is the paper's type-2 clique: Poisson arrivals with a fixed
// moderate bias and small variance.
type Constant struct{}

var _ Strategy = Constant{}

// Name implements Strategy.
func (Constant) Name() string { return "constant" }

// Plan implements Strategy.
func (Constant) Plan(rng *randx.Rand, p Params, quality func(float64) float64) ([]sim.LabeledRating, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var out []sim.LabeledRating
	for i, tm := range rng.PoissonProcess(p.Rate, p.Start, p.End) {
		id := p.FirstRater + rating.RaterID(i%p.Colluders)
		out = append(out, emit(p, id, rng.NormalVar(quality(tm)+p.Bias, p.Variance), tm))
	}
	return out, nil
}

// Camouflage matches the honest variance so the clique's tight
// clustering — the main AR signature — disappears; only the mean moves.
type Camouflage struct {
	// HonestVariance is the variance to mimic (the workload's goodVar).
	HonestVariance float64
}

var _ Strategy = Camouflage{}

// Name implements Strategy.
func (Camouflage) Name() string { return "camouflage" }

// Plan implements Strategy.
func (c Camouflage) Plan(rng *randx.Rand, p Params, quality func(float64) float64) ([]sim.LabeledRating, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	variance := c.HonestVariance
	if variance <= 0 {
		variance = 0.2
	}
	var out []sim.LabeledRating
	for i, tm := range rng.PoissonProcess(p.Rate, p.Start, p.End) {
		id := p.FirstRater + rating.RaterID(i%p.Colluders)
		out = append(out, emit(p, id, rng.NormalVar(quality(tm)+p.Bias, variance), tm))
	}
	return out, nil
}

// OnOff alternates burst and sleep intervals inside the campaign.
type OnOff struct {
	// BurstDays and SleepDays set the duty cycle; zero values mean 3/3.
	BurstDays, SleepDays float64
}

var _ Strategy = OnOff{}

// Name implements Strategy.
func (OnOff) Name() string { return "on-off" }

// Plan implements Strategy.
func (o OnOff) Plan(rng *randx.Rand, p Params, quality func(float64) float64) ([]sim.LabeledRating, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	burst, sleep := o.BurstDays, o.SleepDays
	if burst <= 0 {
		burst = 3
	}
	if sleep <= 0 {
		sleep = 3
	}
	var out []sim.LabeledRating
	i := 0
	for start := p.Start; start < p.End; start += burst + sleep {
		end := start + burst
		if end > p.End {
			end = p.End
		}
		// Double the rate inside bursts so the injected mass matches a
		// sustained campaign with the same Params.Rate.
		for _, tm := range rng.PoissonProcess(2*p.Rate, start, end) {
			id := p.FirstRater + rating.RaterID(i%p.Colluders)
			out = append(out, emit(p, id, rng.NormalVar(quality(tm)+p.Bias, p.Variance), tm))
			i++
		}
	}
	return out, nil
}

// Ramp grows the bias linearly from zero to the target across the
// campaign, keeping each window's shift marginal.
type Ramp struct{}

var _ Strategy = Ramp{}

// Name implements Strategy.
func (Ramp) Name() string { return "ramp" }

// Plan implements Strategy.
func (Ramp) Plan(rng *randx.Rand, p Params, quality func(float64) float64) ([]sim.LabeledRating, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	span := p.End - p.Start
	var out []sim.LabeledRating
	for i, tm := range rng.PoissonProcess(p.Rate, p.Start, p.End) {
		frac := 0.0
		if span > 0 {
			frac = (tm - p.Start) / span
		}
		id := p.FirstRater + rating.RaterID(i%p.Colluders)
		out = append(out, emit(p, id, rng.NormalVar(quality(tm)+p.Bias*frac, p.Variance), tm))
	}
	return out, nil
}

// TrustThenStrike spends the first BuildRatio of the campaign rating
// honestly (accumulating S in Procedure 2), then strikes with the full
// bias — the canonical attack on trust-floor aggregation.
type TrustThenStrike struct {
	// BuildRatio in (0, 1) is the fraction of the campaign spent
	// building trust; zero means 0.5.
	BuildRatio float64
	// HonestVariance is the variance of the trust-building ratings;
	// zero means 0.2.
	HonestVariance float64
}

var _ Strategy = TrustThenStrike{}

// Name implements Strategy.
func (TrustThenStrike) Name() string { return "trust-then-strike" }

// Plan implements Strategy.
func (t TrustThenStrike) Plan(rng *randx.Rand, p Params, quality func(float64) float64) ([]sim.LabeledRating, error) {
	ratio := t.BuildRatio
	if ratio <= 0 || ratio >= 1 {
		ratio = 0.5
	}
	if p.Colluders == 0 {
		// The same clique must appear in both phases, so the identity
		// pool is one phase's worth of arrivals, not the campaign's.
		n := int(ratio * p.Rate * (p.End - p.Start))
		if n < 1 {
			n = 1
		}
		p.Colluders = n
	}
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	honestVar := t.HonestVariance
	if honestVar <= 0 {
		honestVar = 0.2
	}
	pivot := p.Start + ratio*(p.End-p.Start)
	var out []sim.LabeledRating
	for i, tm := range rng.PoissonProcess(p.Rate, p.Start, p.End) {
		id := p.FirstRater + rating.RaterID(i%p.Colluders)
		if tm < pivot {
			// Trust-building phase: honest-looking ratings. Still from
			// colluder identities, but not unfair — label accordingly.
			l := emit(p, id, rng.NormalVar(quality(tm), honestVar), tm)
			l.Unfair = false
			l.Class = sim.PotentialCollaborative
			out = append(out, l)
			continue
		}
		out = append(out, emit(p, id, rng.NormalVar(quality(tm)+p.Bias, p.Variance), tm))
	}
	return out, nil
}

// Sybil gives every unfair rating a fresh identity so no rater ever
// accumulates suspicion across windows.
type Sybil struct{}

var _ Strategy = Sybil{}

// Name implements Strategy.
func (Sybil) Name() string { return "sybil" }

// Plan implements Strategy.
func (Sybil) Plan(rng *randx.Rand, p Params, quality func(float64) float64) ([]sim.LabeledRating, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var out []sim.LabeledRating
	next := p.FirstRater
	for _, tm := range rng.PoissonProcess(p.Rate, p.Start, p.End) {
		out = append(out, emit(p, next, rng.NormalVar(quality(tm)+p.Bias, p.Variance), tm))
		next++
	}
	return out, nil
}
