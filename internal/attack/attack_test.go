package attack

import (
	"testing"
	"testing/quick"

	"repro/internal/randx"
	"repro/internal/rating"
	"repro/internal/sim"
	"repro/internal/stat"
)

func testParams() Params {
	return Params{
		Object:   1,
		Start:    30,
		End:      44,
		Rate:     3,
		Bias:     0.15,
		Variance: 0.02,
	}
}

var flatQuality = FlatQuality(func(float64) float64 { return 0.7 })

func TestParamsDefaults(t *testing.T) {
	p := testParams().withDefaults()
	if p.Levels != 11 {
		t.Fatalf("levels = %d", p.Levels)
	}
	if p.FirstRater != 100000 {
		t.Fatalf("first rater = %d", p.FirstRater)
	}
	if p.Colluders != 42 { // 3/day * 14 days
		t.Fatalf("colluders = %d", p.Colluders)
	}
	if len(p.Targets) != 1 || p.Targets[0] != 1 {
		t.Fatalf("targets = %v", p.Targets)
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{Start: 10, End: 5},
		{Rate: -1},
		{Variance: -1},
		{Colluders: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestAllStrategiesBasicContract(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			ls, err := s.Plan(1, testParams(), flatQuality)
			if err != nil {
				t.Fatal(err)
			}
			if len(ls) == 0 {
				t.Fatal("no ratings planned")
			}
			var unfair int
			for _, l := range ls {
				if err := l.Rating.Validate(); err != nil {
					t.Fatal(err)
				}
				if l.Rating.Time < 30 || l.Rating.Time >= 44 {
					t.Fatalf("rating at %g outside campaign", l.Rating.Time)
				}
				if l.Rating.Object != 1 {
					t.Fatalf("wrong object %d", l.Rating.Object)
				}
				if l.Unfair {
					unfair++
				}
			}
			if unfair == 0 {
				t.Fatal("no unfair ratings planned")
			}
		})
	}
}

func TestStrategyNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range All() {
		if seen[s.Name()] {
			t.Fatalf("duplicate strategy name %q", s.Name())
		}
		seen[s.Name()] = true
	}
	if len(seen) != 9 {
		t.Fatalf("%d strategies", len(seen))
	}
}

func TestConstantBiasAndVariance(t *testing.T) {
	p := testParams()
	p.Rate = 50 // plenty of samples
	ls, err := Constant{}.Plan(2, p, flatQuality)
	if err != nil {
		t.Fatal(err)
	}
	values := make([]float64, len(ls))
	for i, l := range ls {
		values[i] = l.Rating.Value
	}
	if m := stat.Mean(values); m < 0.80 || m > 0.90 {
		t.Fatalf("mean %g, want near 0.85", m)
	}
	if v := stat.Variance(values); v > 0.05 {
		t.Fatalf("variance %g, want tight", v)
	}
}

func TestCamouflageMatchesHonestVariance(t *testing.T) {
	p := testParams()
	p.Rate = 50
	ls, err := Camouflage{HonestVariance: 0.2}.Plan(3, p, flatQuality)
	if err != nil {
		t.Fatal(err)
	}
	values := make([]float64, len(ls))
	for i, l := range ls {
		values[i] = l.Rating.Value
	}
	// Variance must be far larger than the constant clique's 0.02
	// (clamping to [0,1] shrinks it below the nominal 0.2).
	if v := stat.Variance(values); v < 0.05 {
		t.Fatalf("camouflage variance %g too tight", v)
	}
}

func TestOnOffLeavesGaps(t *testing.T) {
	p := testParams()
	p.Start, p.End = 0, 30
	p.Rate = 10
	ls, err := OnOff{BurstDays: 3, SleepDays: 3}.Plan(4, p, flatQuality)
	if err != nil {
		t.Fatal(err)
	}
	// No rating may fall in a sleep interval [3,6), [9,12), ...
	for _, l := range ls {
		phase := int(l.Rating.Time/3) % 2
		if phase == 1 {
			t.Fatalf("rating at %g inside a sleep interval", l.Rating.Time)
		}
	}
}

func TestRampGrowsBias(t *testing.T) {
	p := testParams()
	p.Start, p.End = 0, 40
	p.Rate = 20
	p.Variance = 0.001
	ls, err := Ramp{}.Plan(5, p, flatQuality)
	if err != nil {
		t.Fatal(err)
	}
	var early, late []float64
	for _, l := range ls {
		if l.Rating.Time < 10 {
			early = append(early, l.Rating.Value)
		}
		if l.Rating.Time > 30 {
			late = append(late, l.Rating.Value)
		}
	}
	if stat.Mean(late) <= stat.Mean(early)+0.05 {
		t.Fatalf("ramp did not grow: early %.3f late %.3f", stat.Mean(early), stat.Mean(late))
	}
}

func TestTrustThenStrikePhases(t *testing.T) {
	p := testParams()
	p.Start, p.End = 0, 40
	p.Rate = 10
	ls, err := TrustThenStrike{BuildRatio: 0.5}.Plan(6, p, flatQuality)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range ls {
		if l.Rating.Time < 20 && l.Unfair {
			t.Fatalf("unfair rating at %g during build phase", l.Rating.Time)
		}
		if l.Rating.Time >= 20 && !l.Unfair {
			t.Fatalf("honest rating at %g during strike phase", l.Rating.Time)
		}
	}
	// Build-phase ratings come from the same identities as the strike.
	builders := map[int]bool{}
	strikers := map[int]bool{}
	for _, l := range ls {
		if l.Unfair {
			strikers[int(l.Rating.Rater)] = true
		} else {
			builders[int(l.Rating.Rater)] = true
		}
	}
	shared := 0
	for id := range strikers {
		if builders[id] {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("no identity overlap between build and strike phases")
	}
}

func TestSybilFreshIdentities(t *testing.T) {
	ls, err := Sybil{}.Plan(7, testParams(), flatQuality)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, l := range ls {
		if seen[int(l.Rating.Rater)] {
			t.Fatalf("sybil reused identity %d", l.Rating.Rater)
		}
		seen[int(l.Rating.Rater)] = true
	}
}

func TestWhitewashRetiresIdentities(t *testing.T) {
	p := testParams()
	p.Rate = 10
	ls, err := Whitewash{IdentityRatings: 3}.Plan(10, p, flatQuality)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, l := range ls {
		counts[int(l.Rating.Rater)]++
	}
	if len(counts) < 2 {
		t.Fatalf("whitewash used only %d identities", len(counts))
	}
	for id, n := range counts {
		if n > 3 {
			t.Fatalf("identity %d submitted %d ratings, want <= 3", id, n)
		}
	}
}

func TestRotatingTargetCoversPool(t *testing.T) {
	p := testParams()
	p.Start, p.End = 0, 40
	p.Rate = 10
	p.Targets = []rating.ObjectID{1, 2, 3}
	ls, err := RotatingTarget{RotateDays: 10}.Plan(11, p, flatQuality)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[rating.ObjectID]bool{}
	for _, l := range ls {
		seen[l.Rating.Object] = true
		// Slot k attacks target k mod 3.
		slot := int(l.Rating.Time / 10)
		if want := p.Targets[slot%3]; l.Rating.Object != want {
			t.Fatalf("rating at %g on object %d, want %d", l.Rating.Time, l.Rating.Object, want)
		}
	}
	if len(seen) < 3 {
		t.Fatalf("rotation covered %d of 3 targets", len(seen))
	}
}

func TestOscillatePhases(t *testing.T) {
	p := testParams()
	p.Start, p.End = 0, 40
	p.Rate = 10
	ls, err := Oscillate{HonestDays: 4, AttackDays: 4}.Plan(12, p, flatQuality)
	if err != nil {
		t.Fatal(err)
	}
	var honest, unfair int
	for _, l := range ls {
		phase := l.Rating.Time
		for phase >= 8 {
			phase -= 8
		}
		if phase < 4 {
			if l.Unfair {
				t.Fatalf("unfair rating at %g inside an honest phase", l.Rating.Time)
			}
			honest++
		} else {
			if !l.Unfair {
				t.Fatalf("honest rating at %g inside an attack phase", l.Rating.Time)
			}
			unfair++
		}
	}
	if honest == 0 || unfair == 0 {
		t.Fatalf("oscillate phases missing: %d honest, %d unfair", honest, unfair)
	}
}

func TestColludersBoundIdentities(t *testing.T) {
	p := testParams()
	p.Colluders = 5
	ls, err := Constant{}.Plan(8, p, flatQuality)
	if err != nil {
		t.Fatal(err)
	}
	ids := map[int]bool{}
	for _, l := range ls {
		ids[int(l.Rating.Rater)] = true
	}
	if len(ids) > 5 {
		t.Fatalf("%d identities used, want <= 5", len(ids))
	}
}

// Property: every strategy is deterministic in the seed and respects
// the campaign interval and object.
func TestStrategiesDeterministicProperty(t *testing.T) {
	prop := func(seed int64, idx uint8) bool {
		strategies := All()
		s := strategies[int(idx)%len(strategies)]
		p := testParams()
		a, err1 := s.Plan(seed, p, flatQuality)
		b, err2 := s.Plan(seed, p, flatQuality)
		if err1 != nil || err2 != nil || len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: planned campaigns mix cleanly with an honest stream (all
// labels preserved after sorting).
func TestStrategiesComposeWithHonestStream(t *testing.T) {
	rng := randx.New(9)
	honest, err := sim.GenerateIllustrative(rng, func() sim.IllustrativeParams {
		p := sim.DefaultIllustrative()
		p.Attack = false
		return p
	}())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range All() {
		ls, err := s.Plan(rng.Int63(), testParams(), flatQuality)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		combined := append(append([]sim.LabeledRating(nil), honest...), ls...)
		sim.SortByTime(combined)
		for i := 1; i < len(combined); i++ {
			if combined[i].Rating.Time < combined[i-1].Rating.Time {
				t.Fatalf("%s: combined stream not sorted", s.Name())
			}
		}
	}
}
