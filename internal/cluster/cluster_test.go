package cluster

// In-process cluster harness: N member daemons (shard engine + API
// server + cluster-internal routes) behind httptest listeners, fronted
// by a Router. Member handlers are swappable through an atomic pointer
// so tests can kill and revive a node without its URL changing.

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/trust"
)

// memberNode is one in-process cluster member.
type memberNode struct {
	url     string
	eng     *shard.Engine
	member  *Member
	srv     *server.Server
	hs      *httptest.Server
	handler atomic.Pointer[http.Handler]
}

// down makes the node unreachable: every request aborts the
// connection, which clients see as a transport error, exactly like a
// killed process behind a stable address.
func (n *memberNode) down() {
	var h http.Handler = http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	})
	n.handler.Store(&h)
}

// up restores the node's real handler.
func (n *memberNode) up() {
	var h http.Handler = n.serveMux()
	n.handler.Store(&h)
}

func (n *memberNode) serveMux() http.Handler {
	mux := http.NewServeMux()
	n.member.Routes(mux)
	mux.Handle("/", n.srv)
	return mux
}

// testCluster is N members plus the router, all in-process.
type testCluster struct {
	table   Table
	members []*memberNode
	router  *Router
	front   *httptest.Server // the router's public HTTP face
}

// newTestCluster builds an n-node cluster, each member running a
// shard.Engine with the given shard count.
func newTestCluster(t *testing.T, nodes, shards int) *testCluster {
	t.Helper()
	return newTestClusterTable(t, nodes, shards, nil)
}

// newTestClusterTable is newTestCluster with an optional custom range
// assignment: mkTable receives the member URLs and returns the table
// (nil means EvenTable at epoch 1).
func newTestClusterTable(t *testing.T, nodes, shards int, mkTable func(urls []string) Table) *testCluster {
	t.Helper()
	tc := &testCluster{}
	urls := make([]string, nodes)
	for i := 0; i < nodes; i++ {
		n := &memberNode{}
		var placeholder http.Handler = http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			http.Error(w, "not wired yet", http.StatusServiceUnavailable)
		})
		n.handler.Store(&placeholder)
		n.hs = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			(*n.handler.Load()).ServeHTTP(w, r)
		}))
		t.Cleanup(n.hs.Close)
		n.url = n.hs.URL
		urls[i] = n.url
		tc.members = append(tc.members, n)
	}

	if mkTable != nil {
		tc.table = mkTable(urls)
	} else {
		table, err := EvenTable(1, urls)
		if err != nil {
			t.Fatal(err)
		}
		tc.table = table
	}

	for _, n := range tc.members {
		eng, err := shard.NewEngine(core.Config{}, shards)
		if err != nil {
			t.Fatal(err)
		}
		n.eng = eng
		member, err := NewMember(tc.table, n.url, eng)
		if err != nil {
			t.Fatal(err)
		}
		n.member = member
		srv, err := server.NewWith(eng,
			server.WithCluster(member),
			server.WithFeatures(api.DiscoveryFeatures{StreamIngest: true, Cluster: true}),
		)
		if err != nil {
			t.Fatal(err)
		}
		n.srv = srv
		member.SetOnApply(srv.InvalidateAll)
		n.up()
	}

	router, err := NewRouter(tc.table, RouterConfig{Trust: &trust.ManagerConfig{}})
	if err != nil {
		t.Fatal(err)
	}
	tc.router = router
	tc.front = httptest.NewServer(router)
	t.Cleanup(tc.front.Close)
	return tc
}
