package cluster

// N-node conformance: the partitioned cluster must be externally
// indistinguishable from one core.System. The seeded shardtest
// workload is replayed through the router — submits fan out to
// keyspace owners, windows run the scan/apply exchange, reads merge —
// and the full trace (every observation, trust value, aggregate, and
// verdict at %.17g) must be byte-identical to the single-threaded
// oracle's, for 1-, 2- and 3-node clusters at several shard counts.

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/shard/shardtest"
)

func oracleTrace(t *testing.T, w shardtest.Workload) string {
	t.Helper()
	oracle, err := core.NewSystem(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := shardtest.Run(oracle, w)
	if err != nil {
		t.Fatal(err)
	}
	return trace
}

func TestClusterConformance(t *testing.T) {
	for _, nodes := range []int{1, 2, 3} {
		for _, shards := range []int{1, 2, 4, 8} {
			nodes, shards := nodes, shards
			t.Run(fmt.Sprintf("nodes=%d/shards=%d", nodes, shards), func(t *testing.T) {
				t.Parallel()
				w := shardtest.Workload{Seed: 4200 + int64(10*nodes+shards), Months: 2, PerMonth: 250}
				want := oracleTrace(t, w)

				tc := newTestCluster(t, nodes, shards)
				got, err := shardtest.Run(tc.router, w)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("cluster trace diverged from oracle:\n--- oracle\n%s--- cluster\n%s", want, got)
				}

				// Trust replicated: every member holds the identical full
				// trust map, including nodes that own few objects.
				base := tc.members[0].eng.TrustSnapshot()
				for i, n := range tc.members[1:] {
					snap := n.eng.TrustSnapshot()
					if len(snap) != len(base) {
						t.Fatalf("member %d: %d trust records, member 0 has %d", i+1, len(snap), len(base))
					}
					for id, v := range base {
						if snap[id] != v {
							t.Fatalf("member %d: trust[%d]=%v, member 0 has %v", i+1, id, snap[id], v)
						}
					}
				}
			})
		}
	}
}

// TestClusterConformanceEmptyRange pins the degenerate ownership case:
// a member owning zero keyspace still replicates trust and still takes
// applies, and the cluster's trace stays byte-identical to the oracle.
func TestClusterConformanceEmptyRange(t *testing.T) {
	w := shardtest.Workload{Seed: 77, Months: 2, PerMonth: 200}
	want := oracleTrace(t, w)

	tc := newTestClusterTable(t, 3, 2, func(urls []string) Table {
		return Table{Epoch: 1, Nodes: []Node{
			{URL: urls[0], Lo: 0, Hi: 1 << 31},
			{URL: urls[1], Lo: 1 << 31, Hi: 1 << 31}, // owns nothing
			{URL: urls[2], Lo: 1 << 31, Hi: 1 << 32},
		}}
	})
	got, err := shardtest.Run(tc.router, w)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("empty-range cluster diverged from oracle:\n--- oracle\n%s--- cluster\n%s", want, got)
	}

	// The empty member holds no ratings but the full replicated trust
	// state.
	if n := tc.members[1].eng.Len(); n != 0 {
		t.Fatalf("empty-range member stores %d ratings", n)
	}
	if got, want := len(tc.members[1].eng.TrustSnapshot()), len(tc.members[0].eng.TrustSnapshot()); got != want || want == 0 {
		t.Fatalf("empty-range member has %d trust records, want %d (nonzero)", got, want)
	}
}

// TestClusterSnapshotRoundTrip: the router's merged snapshot restores
// into a fresh cluster with a different node count, and the restored
// cluster serves identical state.
func TestClusterSnapshotRoundTrip(t *testing.T) {
	w := shardtest.Workload{Seed: 81, Months: 1, PerMonth: 200}
	src := newTestCluster(t, 2, 2)
	if _, err := shardtest.Run(src.router, w); err != nil {
		t.Fatal(err)
	}
	srcFP, err := shardtest.Fingerprint(src.router, w.Objects)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := src.router.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst := newTestCluster(t, 3, 4)
	if err := dst.router.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dstFP, err := shardtest.Fingerprint(dst.router, w.Objects)
	if err != nil {
		t.Fatal(err)
	}
	if dstFP != srcFP {
		t.Fatalf("restored 3-node cluster diverged from 2-node source:\n--- source\n%s--- restored\n%s", srcFP, dstFP)
	}
}
