package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"repro/internal/api"
	"repro/internal/rating"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/trust"
)

// Snapshotter makes a member's applied window durable before it is
// acked: the daemon's shard journal implements it (shard snapshots
// carry the full global trust record set, so a snapshot after
// ApplyObservations persists the merged window without ever writing a
// process record into a member WAL — replaying one locally would
// recompute the window from this node's objects only and diverge).
type Snapshotter interface {
	Snapshot() error
}

// Member is one node's view of the cluster: the shared routing table,
// this node's index in it, and the engine the scan/apply exchange
// drives. It implements server.ClusterView, so installing it on the
// node's Server scopes the public surface to the owned range.
type Member struct {
	table Table
	self  int
	eng   *shard.Engine

	// snap, when set, is called after every applied window, before the
	// apply is acked.
	snap Snapshotter
	// onApply, when set, runs after every applied window (the daemon
	// hooks the server's read-cache invalidation here: an apply
	// rewrites trust, which feeds every cached read).
	onApply func()
}

// NewMember builds the member for selfURL under table.
func NewMember(table Table, selfURL string, eng *shard.Engine) (*Member, error) {
	if err := table.Validate(); err != nil {
		return nil, err
	}
	self := table.IndexOf(selfURL)
	if self < 0 {
		return nil, fmt.Errorf("cluster: self URL %q is not in the table", selfURL)
	}
	if eng == nil {
		return nil, fmt.Errorf("cluster: nil engine")
	}
	return &Member{table: table, self: self, eng: eng}, nil
}

// SetSnapshotter installs the durability hook run before an apply is
// acked.
func (m *Member) SetSnapshotter(s Snapshotter) { m.snap = s }

// SetOnApply installs the post-apply hook (read-cache invalidation).
func (m *Member) SetOnApply(f func()) { m.onApply = f }

// Table returns the member's routing table.
func (m *Member) Table() Table { return m.table }

// Epoch implements server.ClusterView.
func (m *Member) Epoch() uint64 { return m.table.Epoch }

// OwnsObject implements server.ClusterView.
func (m *Member) OwnsObject(obj rating.ObjectID) bool {
	return m.table.OwnerOfObject(obj) == m.self
}

// OwnerURL implements server.ClusterView.
func (m *Member) OwnerURL(obj rating.ObjectID) string {
	return m.table.Nodes[m.table.OwnerOfObject(obj)].URL
}

// Doc implements server.ClusterView: the table with this node's row
// marked and carrying its window high-water mark.
func (m *Member) Doc() api.ClusterResponse {
	doc := m.table.Doc(m.self)
	doc.Nodes[m.self].WindowEnd = m.eng.LastWindowEnd()
	return doc
}

var _ server.ClusterView = (*Member)(nil)

// Routes mounts the cluster-internal exchange on mux, ahead of the
// public API catch-all:
//
//	POST /v1/cluster/scan    scan owned objects for one window
//	POST /v1/cluster/apply   apply the router's merged observations
func (m *Member) Routes(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/cluster/scan", m.handleScan)
	mux.HandleFunc("POST /v1/cluster/apply", m.handleApply)
}

// writeJSON mirrors the server's responder; these routes mount outside
// the server's middleware stack, so they stamp the version themselves.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set(api.VersionHeader, api.Version)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, r *http.Request, status int, e *api.Error) {
	if rid := r.Header.Get(api.RequestIDHeader); rid != "" {
		e.RequestID = rid
	}
	writeJSON(w, status, e)
}

// checkEpoch enforces X-Cluster-Epoch pinning on the internal routes,
// mirroring the server's clusterGate.
func (m *Member) checkEpoch(w http.ResponseWriter, r *http.Request) bool {
	pinned := r.Header.Get(api.ClusterEpochHeader)
	if pinned == "" {
		return true
	}
	epoch, err := strconv.ParseUint(pinned, 10, 64)
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, api.NewError(api.CodeBadRequest,
			"%s %q: must be a non-negative integer", api.ClusterEpochHeader, pinned))
		return false
	}
	if epoch != m.table.Epoch {
		writeErr(w, r, http.StatusConflict, api.NewError(api.CodeStaleEpoch,
			"request pinned cluster epoch %d but this node's table is epoch %d; refresh from GET /v1/cluster",
			epoch, m.table.Epoch))
		return false
	}
	return true
}

func (m *Member) handleScan(w http.ResponseWriter, r *http.Request) {
	if !m.checkEpoch(w, r) {
		return
	}
	var req api.ClusterScanRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, r, http.StatusBadRequest, api.NewError(api.CodeBadRequest,
			"decode scan request: %v", err))
		return
	}
	if req.End <= req.Start {
		writeErr(w, r, http.StatusBadRequest, api.NewError(api.CodeBadRequest,
			"scan window [%g,%g)", req.Start, req.End))
		return
	}
	evidence, err := m.eng.ScanWindow(req.Start, req.End)
	if err != nil {
		writeErr(w, r, http.StatusConflict, api.NewError(api.CodeConflict, "%v", err))
		return
	}
	resp := api.ClusterScanResponse{Objects: make([]api.ObjectEvidence, len(evidence))}
	for i, ev := range evidence {
		oe := api.ObjectEvidence{
			Object:            int(ev.Object),
			Considered:        ev.Considered,
			Filtered:          ev.Filtered,
			Windows:           ev.Windows,
			SuspiciousWindows: ev.SuspiciousWindows,
			Degraded:          ev.Degraded,
			Raters:            make([]api.RaterEvidence, len(ev.Raters)),
		}
		for j, re := range ev.Raters {
			oe.Raters[j] = api.RaterEvidence{
				Rater: int(re.Rater), N: re.N, Filtered: re.Filtered,
				Suspicious: re.Suspicious, Mass: re.Mass,
			}
		}
		resp.Objects[i] = oe
	}
	writeJSON(w, http.StatusOK, resp)
}

func (m *Member) handleApply(w http.ResponseWriter, r *http.Request) {
	if !m.checkEpoch(w, r) {
		return
	}
	var req api.ClusterApplyRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, r, http.StatusBadRequest, api.NewError(api.CodeBadRequest,
			"decode apply request: %v", err))
		return
	}
	if req.End <= req.Start {
		writeErr(w, r, http.StatusBadRequest, api.NewError(api.CodeBadRequest,
			"apply window [%g,%g)", req.Start, req.End))
		return
	}
	// Idempotence at window granularity: a router retrying a partially
	// broadcast apply must not double-charge nodes that already took
	// it. The window high-water mark is durable (snapshots carry it),
	// so this holds across member restarts too.
	if req.End <= m.eng.LastWindowEnd() {
		writeJSON(w, http.StatusOK, api.ClusterApplyResponse{
			Raters:    len(req.Observations),
			WindowEnd: m.eng.LastWindowEnd(),
		})
		return
	}
	obs := make(map[rating.RaterID]trust.Observation, len(req.Observations))
	for _, re := range req.Observations {
		obs[rating.RaterID(re.Rater)] = trust.Observation{
			N: re.N, Filtered: re.Filtered, Suspicious: re.Suspicious,
			SuspicionMass: re.Mass,
		}
	}
	if err := m.eng.ApplyObservations(obs, req.End); err != nil {
		writeErr(w, r, http.StatusBadRequest, api.NewError(api.CodeBadRequest, "%v", err))
		return
	}
	if m.snap != nil {
		// The charge must be durable before the ack: a member WAL never
		// holds a process record (replaying one here would refold the
		// window from local objects only), so the snapshot is what
		// carries the applied trust across a crash.
		if err := m.snap.Snapshot(); err != nil {
			writeErr(w, r, http.StatusServiceUnavailable, api.NewError(api.CodeUnavailable,
				"apply snapshot: %v", err))
			return
		}
	}
	if m.onApply != nil {
		m.onApply()
	}
	writeJSON(w, http.StatusOK, api.ClusterApplyResponse{
		Raters:    len(req.Observations),
		WindowEnd: m.eng.LastWindowEnd(),
	})
}

// SortedObservations renders a folded observation map as ascending
// wire evidence — the canonical apply-request order.
func SortedObservations(obs map[rating.RaterID]trust.Observation) []api.RaterEvidence {
	ids := make([]rating.RaterID, 0, len(obs))
	for id := range obs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]api.RaterEvidence, len(ids))
	for i, id := range ids {
		o := obs[id]
		out[i] = api.RaterEvidence{
			Rater: int(id), N: o.N, Filtered: o.Filtered,
			Suspicious: o.Suspicious, Mass: o.SuspicionMass,
		}
	}
	return out
}
