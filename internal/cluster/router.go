package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/rating"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/trust"
)

// RouterConfig customizes a Router.
type RouterConfig struct {
	// HTTPClient drives every member call; nil means
	// http.DefaultClient.
	HTTPClient *http.Client
	// Retry, when MaxAttempts > 1, enables idempotent retries on the
	// typed member clients. Off by default: a router that retries a
	// dead member for seconds cannot shed its range promptly.
	Retry server.RetryPolicy
	// Trust, when set, lets the router answer TrustSnapshot locally by
	// rebuilding a manager from a member snapshot's records.
	Trust *trust.ManagerConfig
	// ServerOptions is appended to the router's inner Server options
	// (telemetry, timeouts, body caps, admission).
	ServerOptions []server.Option
}

// Router fronts a member cluster behind the exact public v1 surface a
// single daemon serves. It implements server.Backend and
// server.Journal over HTTP fan-out, so the inner server.Server's own
// handlers produce the responses — a one-node cluster is byte-for-byte
// a plain daemon.
//
// Single-object traffic (submit, aggregate) forwards to the keyspace
// owner; cross-object reads scatter to every member and fold in the
// canonical ascending order, so merged answers are identical to one
// core.System's. Maintenance windows run the cluster's scan/apply
// exchange: every member scans its owned range, the router folds the
// evidence exactly as Pipeline.Charge would, and broadcasts one merged
// observation batch that lands every member on identical trust state.
//
// A member the router cannot reach surfaces as a typed 503
// (unavailable) on requests needing that member's range — the router
// sheds the range rather than serving wrong answers from a partial
// scatter.
type Router struct {
	table    Table
	hc       *http.Client
	clients  []*server.Client // one per member, epoch pinned
	trustCfg *trust.ManagerConfig

	inner *server.Server
	mux   *http.ServeMux
}

// NewRouter builds the routing tier for table.
func NewRouter(table Table, cfg RouterConfig) (*Router, error) {
	if err := table.Validate(); err != nil {
		return nil, err
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	rt := &Router{table: table, hc: hc, trustCfg: cfg.Trust}
	epoch := strconv.FormatUint(table.Epoch, 10)
	for _, n := range table.Nodes {
		copts := []server.ClientOption{server.WithHeader(api.ClusterEpochHeader, epoch)}
		if cfg.Retry.MaxAttempts > 1 {
			copts = append(copts, server.WithRetry(cfg.Retry))
		}
		rt.clients = append(rt.clients, server.NewClient(n.URL, hc, copts...))
	}

	opts := []server.Option{
		server.WithJournal(rt),
		// Members invalidate their own caches on apply; a second cache
		// here would serve stale reads the members already dropped.
		server.WithReadCache(-1),
		server.WithFeatures(api.DiscoveryFeatures{
			StreamIngest: true, Cluster: true, Router: true,
		}),
	}
	opts = append(opts, cfg.ServerOptions...)
	inner, err := server.NewWith(rt, opts...)
	if err != nil {
		return nil, err
	}
	rt.inner = inner

	// Routes needing genuine scatter-gather or cluster-aware error
	// control are intercepted ahead of the inner server; everything
	// else (submit, stream, process, aggregate, snapshot, discovery)
	// reaches the inner handlers, which call back into the Router's
	// Backend/Journal methods — shared handlers, shared shapes.
	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("GET /v1/stats", rt.handleStats)
	rt.mux.HandleFunc("GET /v1/malicious", rt.handleMalicious)
	rt.mux.HandleFunc("GET /v1/raters/{id}/trust", rt.handleTrust)
	rt.mux.HandleFunc("GET /v1/cluster", rt.handleCluster)
	rt.mux.Handle("/", inner)
	return rt, nil
}

// Table returns the router's routing table.
func (rt *Router) Table() Table { return rt.table }

// ServeHTTP implements http.Handler: the router-wide epoch gate, then
// the intercept mux.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if pinned := r.Header.Get(api.ClusterEpochHeader); pinned != "" {
		epoch, err := strconv.ParseUint(pinned, 10, 64)
		if err != nil {
			writeErr(w, r, http.StatusBadRequest, api.NewError(api.CodeBadRequest,
				"%s %q: must be a non-negative integer", api.ClusterEpochHeader, pinned))
			return
		}
		if epoch != rt.table.Epoch {
			writeErr(w, r, http.StatusConflict, api.NewError(api.CodeStaleEpoch,
				"request pinned cluster epoch %d but this node's table is epoch %d; refresh from GET /v1/cluster",
				epoch, rt.table.Epoch))
			return
		}
	}
	rt.mux.ServeHTTP(w, r)
}

// unavailable wraps a member failure so the inner handlers map it to a
// typed 503: the router sheds the member's keyspace range instead of
// answering from a partial scatter.
func (rt *Router) unavailable(node int, err error) error {
	return fmt.Errorf("%w: node %s: %v", server.ErrUnavailable, rt.table.Nodes[node].URL, err)
}

// ---- server.Backend / server.Journal: mutations ----

// Submit implements server.Backend.
func (rt *Router) Submit(r rating.Rating) error { return rt.SubmitAll([]rating.Rating{r}) }

// SubmitAll implements server.Backend and server.Journal: the batch is
// split by keyspace owner and forwarded, ascending node order. Members
// journal before acking, so an acked forward is durable.
func (rt *Router) SubmitAll(rs []rating.Rating) error {
	byNode := make(map[int][]server.RatingPayload)
	for _, r := range rs {
		n := rt.table.OwnerOfObject(r.Object)
		byNode[n] = append(byNode[n], server.RatingPayload{
			Rater: int(r.Rater), Object: int(r.Object), Value: r.Value, Time: r.Time,
		})
	}
	nodes := make([]int, 0, len(byNode))
	for n := range byNode {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	for _, n := range nodes {
		if _, err := rt.clients[n].Submit(context.Background(), byNode[n]); err != nil {
			return rt.unavailable(n, err)
		}
	}
	return nil
}

// ProcessWindow implements server.Backend and server.Journal: the
// cluster's scan/apply exchange.
//
// Every member scans its owned objects for the window and returns
// per-(object,rater) evidence — integer counts plus the one float each
// (object,rater) pair contributes, so the fold below replays
// Pipeline.Charge's arithmetic exactly. The router merges the evidence
// ascending by object, folds it into one observation batch, and
// broadcasts the batch to every member (trust is replicated, so all
// members — including ones owning an empty range — take the apply).
//
// Any unreachable member aborts before anything is applied; a failure
// mid-broadcast leaves the cluster mixed, but applies are idempotent
// at window granularity, so retrying the same window converges every
// member.
func (rt *Router) ProcessWindow(start, end float64) (core.ProcessReport, error) {
	ctx := context.Background()
	merged := make([]shard.ObjectEvidence, 0)
	var faux []core.ObjectReport
	for i := range rt.table.Nodes {
		if rt.table.Nodes[i].Empty() {
			continue
		}
		var resp api.ClusterScanResponse
		err := rt.postJSON(ctx, i, "/v1/cluster/scan",
			api.ClusterScanRequest{Start: start, End: end}, &resp)
		if err != nil {
			return core.ProcessReport{}, rt.unavailable(i, err)
		}
		for _, oe := range resp.Objects {
			ev := shard.ObjectEvidence{
				Object:            rating.ObjectID(oe.Object),
				Considered:        oe.Considered,
				Filtered:          oe.Filtered,
				Windows:           oe.Windows,
				SuspiciousWindows: oe.SuspiciousWindows,
				Degraded:          oe.Degraded,
				Raters:            make([]shard.RaterEvidence, len(oe.Raters)),
			}
			for j, re := range oe.Raters {
				ev.Raters[j] = shard.RaterEvidence{
					Rater: rating.RaterID(re.Rater), N: re.N, Filtered: re.Filtered,
					Suspicious: re.Suspicious, Mass: re.Mass,
				}
			}
			merged = append(merged, ev)
		}
	}
	// Object IDs are disjoint across members (each object has one
	// keyspace owner); sorting restores the oracle's global ascending
	// fold order.
	sort.Slice(merged, func(i, j int) bool { return merged[i].Object < merged[j].Object })
	obs := shard.FoldEvidence(merged)

	applyReq := api.ClusterApplyRequest{
		Start: start, End: end, Observations: SortedObservations(obs),
	}
	for i := range rt.table.Nodes {
		var resp api.ClusterApplyResponse
		if err := rt.postJSON(ctx, i, "/v1/cluster/apply", applyReq, &resp); err != nil {
			return core.ProcessReport{}, rt.unavailable(i, err)
		}
	}

	// Rebuild the report shape handleProcess summarizes: object counts
	// are real; the detection windows are placeholders carrying only
	// the counts (total and suspicious) the summary reads.
	for _, ev := range merged {
		or := core.ObjectReport{
			Object:     ev.Object,
			Considered: ev.Considered,
			Filtered:   ev.Filtered,
			Degraded:   ev.Degraded,
		}
		if ev.Windows > 0 {
			or.Detection.Windows = make([]detector.WindowReport, ev.Windows)
			for k := 0; k < ev.SuspiciousWindows; k++ {
				or.Detection.Windows[k].Suspicious = true
			}
		}
		faux = append(faux, or)
	}
	return core.ProcessReport{Start: start, End: end, Objects: faux, Observations: obs}, nil
}

// Restore implements server.Journal: LoadSnapshot through the members'
// own journaled restore path.
func (rt *Router) Restore(r io.Reader) error { return rt.LoadSnapshot(r) }

// ---- server.Backend: single-object reads ----

// Aggregate implements server.Backend: forward to the keyspace owner,
// mapping the typed envelope back to the sentinel errors the inner
// handler classifies.
func (rt *Router) Aggregate(obj rating.ObjectID) (core.AggregateResult, error) {
	n := rt.table.OwnerOfObject(obj)
	resp, err := rt.clients[n].Aggregate(context.Background(), int(obj))
	if err != nil {
		if apiErr, ok := err.(*server.APIError); ok {
			switch apiErr.Code {
			case api.CodeNotFound:
				return core.AggregateResult{}, fmt.Errorf("cluster: %s: %w", apiErr.Message, rating.ErrUnknownObject)
			case api.CodeConflict:
				return core.AggregateResult{}, fmt.Errorf("cluster: %s: %w", apiErr.Message, trust.ErrNoRatings)
			}
		}
		return core.AggregateResult{}, rt.unavailable(n, err)
	}
	return core.AggregateResult{
		Object:   rating.ObjectID(resp.Object),
		Value:    resp.Value,
		Used:     resp.Used,
		Filtered: resp.Filtered,
		FellBack: resp.FellBack,
	}, nil
}

// TrustIn implements server.Backend. Trust is replicated, so any
// member can answer; the rater's keyspace owner is asked first to
// spread load, then the rest. An unreachable cluster reports zero —
// the HTTP route intercepts above this method and sheds with a typed
// 503 instead.
func (rt *Router) TrustIn(id rating.RaterID) float64 {
	v, err := rt.trustIn(id)
	if err != nil {
		return 0
	}
	return v
}

func (rt *Router) trustIn(id rating.RaterID) (float64, error) {
	ctx := context.Background()
	first := rt.table.OwnerOfRater(id)
	var lastErr error
	for k := 0; k < len(rt.clients); k++ {
		n := (first + k) % len(rt.clients)
		v, err := rt.clients[n].Trust(ctx, int(id))
		if err == nil {
			return v, nil
		}
		lastErr = rt.unavailable(n, err)
	}
	return 0, lastErr
}

// ---- server.Backend: cross-member reads ----

// statsFrom fetches one member's stats.
func (rt *Router) statsFrom(n int, bounds []float64) (server.StatsResponse, error) {
	ctx := context.Background()
	if len(bounds) > 0 {
		return rt.clients[n].StatsWithBounds(ctx, bounds)
	}
	return rt.clients[n].Stats(ctx)
}

// Len implements server.Backend: the cluster-wide rating count, the
// sum over members. Best-effort (unreachable members count zero); the
// stats route intercepts above this and sheds instead.
func (rt *Router) Len() int {
	total := 0
	for i := range rt.clients {
		if st, err := rt.statsFrom(i, nil); err == nil {
			total += st.Ratings
		}
	}
	return total
}

// RaterCount implements server.Backend; trust is replicated, any
// member knows. Best-effort zero when nothing is reachable.
func (rt *Router) RaterCount() int {
	for i := range rt.clients {
		if st, err := rt.statsFrom(i, nil); err == nil {
			return st.Raters
		}
	}
	return 0
}

// MaliciousRaters implements server.Backend via the point-range
// scatter; best-effort nil when a member is unreachable (the HTTP
// route intercepts above this and sheds instead).
func (rt *Router) MaliciousRaters() []rating.RaterID {
	ids, err := rt.mergedMalicious()
	if err != nil {
		return nil
	}
	return ids
}

// mergedMalicious scatters the members' disjoint point ranges and
// merges the ID-sorted slices back into one ascending list — exactly
// the list one trust.Manager would produce.
func (rt *Router) mergedMalicious() ([]rating.RaterID, error) {
	ctx := context.Background()
	lists := make([][]int, 0, len(rt.clients))
	for i, n := range rt.table.Nodes {
		if n.Empty() {
			continue
		}
		resp, err := rt.clients[i].MaliciousPointRange(ctx, n.Lo, n.Hi)
		if err != nil {
			return nil, rt.unavailable(i, err)
		}
		lists = append(lists, resp.Raters)
	}
	// K-way merge by rater ID: the point ranges are disjoint, so every
	// rater appears in exactly one list, and each list is ID-sorted.
	idx := make([]int, len(lists))
	var out []rating.RaterID
	for {
		best, bestList := 0, -1
		for l, list := range lists {
			if idx[l] >= len(list) {
				continue
			}
			if bestList < 0 || list[idx[l]] < best {
				best, bestList = list[idx[l]], l
			}
		}
		if bestList < 0 {
			return out, nil
		}
		out = append(out, rating.RaterID(best))
		idx[bestList]++
	}
}

// TrustSnapshot implements server.Backend: trust is replicated, so one
// member's records rebuild the full map. Requires RouterConfig.Trust;
// nil otherwise (no HTTP route consumes this).
func (rt *Router) TrustSnapshot() map[rating.RaterID]float64 {
	if rt.trustCfg == nil {
		return nil
	}
	v, err := rt.memberView(0)
	if err != nil {
		return nil
	}
	m, err := trust.NewManager(*rt.trustCfg)
	if err != nil {
		return nil
	}
	if err := m.Restore(v.Records); err != nil {
		return nil
	}
	return m.Snapshot()
}

// TrustDistribution implements server.Backend; any member answers for
// the replicated trust state.
func (rt *Router) TrustDistribution(bounds []float64) []int {
	for i := range rt.clients {
		if st, err := rt.statsFrom(i, bounds); err == nil && st.Distribution != nil {
			return st.Distribution.Counts
		}
	}
	return nil
}

// ---- server.Backend: snapshots ----

// memberView fetches and decodes one member's full snapshot.
func (rt *Router) memberView(n int) (core.StateView, error) {
	var buf bytes.Buffer
	if err := rt.clients[n].Snapshot(context.Background(), &buf); err != nil {
		return core.StateView{}, rt.unavailable(n, err)
	}
	return core.DecodeSnapshot(&buf)
}

// WriteSnapshot implements server.Backend: the cluster-wide state as
// one snapshot — every member's ratings concatenated in node order
// (each member's slice already carries the store's canonical per-object
// ordering) and the replicated trust records from the first reachable
// member.
func (rt *Router) WriteSnapshot(w io.Writer) error {
	var full core.StateView
	for i, n := range rt.table.Nodes {
		if n.Empty() {
			continue
		}
		v, err := rt.memberView(i)
		if err != nil {
			return err
		}
		full.Ratings = append(full.Ratings, v.Ratings...)
		if full.Records == nil {
			full.Records = v.Records
		}
	}
	if full.Records == nil {
		full.Records = map[rating.RaterID]trust.Record{}
	}
	return full.Encode(w)
}

// LoadSnapshot implements server.Backend: split the snapshot's ratings
// by keyspace owner and restore every member — each gets its owned
// ratings plus the full replicated record set. Members restore through
// their journaled path, so the split state is durable before the call
// returns.
func (rt *Router) LoadSnapshot(r io.Reader) error {
	v, err := core.DecodeSnapshot(r)
	if err != nil {
		return err
	}
	parts := make([][]rating.Rating, len(rt.table.Nodes))
	for _, rr := range v.Ratings {
		n := rt.table.OwnerOfObject(rr.Object)
		parts[n] = append(parts[n], rr)
	}
	ctx := context.Background()
	for i := range rt.table.Nodes {
		part := core.StateView{Ratings: parts[i], Records: v.Records}
		var buf bytes.Buffer
		if err := part.Encode(&buf); err != nil {
			return err
		}
		if err := rt.clients[i].Restore(ctx, &buf); err != nil {
			return rt.unavailable(i, err)
		}
	}
	return nil
}

var (
	_ server.Backend = (*Router)(nil)
	_ server.Journal = (*Router)(nil)
	_ http.Handler   = (*Router)(nil)
)

// ---- intercepted routes ----

// handleStats merges member stats: rating counts sum across the
// disjoint partitions; rater counts, malicious totals and the trust
// distribution come from the replicated trust state (the first
// member). Any unreachable member sheds the whole answer — a partial
// sum is a wrong answer, not a degraded one.
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	var bounds []float64
	if boundsS := r.URL.Query().Get("bounds"); boundsS != "" {
		var err error
		if bounds, err = server.ParseBounds(boundsS); err != nil {
			writeErr(w, r, http.StatusBadRequest, api.NewError(api.CodeBadRequest, "%v", err))
			return
		}
	}
	resp := api.StatsResponse{}
	for i := range rt.table.Nodes {
		// Only the first member computes the distribution; the others
		// contribute just their partition's rating count.
		nodeBounds := bounds
		if i != 0 {
			nodeBounds = nil
		}
		st, err := rt.statsFrom(i, nodeBounds)
		if err != nil {
			writeErr(w, r, http.StatusServiceUnavailable, api.NewError(api.CodeUnavailable,
				"node %s: %v", rt.table.Nodes[i].URL, err))
			return
		}
		resp.Ratings += st.Ratings
		if i == 0 {
			resp.Raters, resp.Malicious = st.Raters, st.Malicious
			resp.Distribution = st.Distribution
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMalicious scatters the members' point ranges and serves the
// merged ascending list with the same pagination contract as a single
// daemon — parameter parsing and envelope shapes included.
func (rt *Router) handleMalicious(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limitS, offsetS := q.Get("limit"), q.Get("offset")
	paginated := limitS != "" || offsetS != ""
	limit, offset := 0, 0
	var err error
	if limitS != "" {
		if limit, err = strconv.Atoi(limitS); err != nil || limit < 0 {
			writeErr(w, r, http.StatusBadRequest, api.NewError(api.CodeBadRequest,
				"limit %q: must be a non-negative integer", limitS))
			return
		}
	}
	if offsetS != "" {
		if offset, err = strconv.Atoi(offsetS); err != nil || offset < 0 {
			writeErr(w, r, http.StatusBadRequest, api.NewError(api.CodeBadRequest,
				"offset %q: must be a non-negative integer", offsetS))
			return
		}
	}

	ids, err := rt.mergedMalicious()
	if err != nil {
		writeErr(w, r, http.StatusServiceUnavailable, api.NewError(api.CodeUnavailable, "%v", err))
		return
	}
	total := len(ids)
	page := ids
	if paginated {
		if offset > len(page) {
			page = nil
		} else {
			page = page[offset:]
		}
		if limit > 0 && limit < len(page) {
			page = page[:limit]
		}
	}
	resp := api.MaliciousResponse{Raters: make([]int, 0, len(page))}
	for _, id := range page {
		resp.Raters = append(resp.Raters, int(id))
	}
	if paginated {
		resp.Page = &api.Page{Total: total, Offset: offset, Limit: limit}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleTrust answers a rater's trust from any reachable member
// (replicated state), shedding with a typed 503 only when the whole
// cluster is unreachable.
func (rt *Router) handleTrust(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, api.NewError(api.CodeBadRequest, "rater id: %v", err))
		return
	}
	v, err := rt.trustIn(rating.RaterID(id))
	if err != nil {
		writeErr(w, r, http.StatusServiceUnavailable, api.NewError(api.CodeUnavailable, "%v", err))
		return
	}
	writeJSON(w, http.StatusOK, api.TrustResponse{Rater: id, Trust: v})
}

// handleCluster serves the routing table with live per-member health:
// each member is probed for its own cluster doc, contributing its
// window high-water mark; an unreachable member is reported down, not
// omitted.
func (rt *Router) handleCluster(w http.ResponseWriter, _ *http.Request) {
	doc := rt.table.Doc(-1)
	for i := range rt.table.Nodes {
		nodeDoc, err := rt.fetchClusterDoc(i)
		if err != nil {
			doc.Nodes[i].Status = "down"
			continue
		}
		doc.Nodes[i].Status = "ok"
		for _, n := range nodeDoc.Nodes {
			if n.Self {
				doc.Nodes[i].WindowEnd = n.WindowEnd
			}
		}
	}
	writeJSON(w, http.StatusOK, doc)
}

// fetchClusterDoc probes one member's GET /v1/cluster.
func (rt *Router) fetchClusterDoc(n int) (api.ClusterResponse, error) {
	req, err := http.NewRequestWithContext(context.Background(), http.MethodGet,
		rt.table.Nodes[n].URL+"/v1/cluster", nil)
	if err != nil {
		return api.ClusterResponse{}, err
	}
	resp, err := rt.hc.Do(req)
	if err != nil {
		return api.ClusterResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return api.ClusterResponse{}, fmt.Errorf("status %d", resp.StatusCode)
	}
	var doc api.ClusterResponse
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return api.ClusterResponse{}, err
	}
	return doc, nil
}

// postJSON is the cluster-internal exchange (scan/apply): typed
// clients cover the public surface only, so these two routes speak
// raw JSON with the same epoch pinning.
func (rt *Router) postJSON(ctx context.Context, n int, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		rt.table.Nodes[n].URL+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(api.ClusterEpochHeader, strconv.FormatUint(rt.table.Epoch, 10))
	resp, err := rt.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var envelope api.Error
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if json.Unmarshal(data, &envelope) == nil && envelope.Code != "" {
			return fmt.Errorf("%s: status %d (%s): %s", path, resp.StatusCode, envelope.Code, envelope.Message)
		}
		return fmt.Errorf("%s: status %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
