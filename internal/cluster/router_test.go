package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/rating"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/shard/shardtest"
)

// ownedBy returns an object ID whose keyspace owner is node n.
func ownedBy(t *testing.T, table Table, n int) rating.ObjectID {
	t.Helper()
	for id := 0; id < 1_000_000; id++ {
		if table.OwnerOfObject(rating.ObjectID(id)) == n {
			return rating.ObjectID(id)
		}
	}
	t.Fatalf("no object owned by node %d in 1e6 IDs", n)
	return 0
}

// TestWrongNodeFollow: a client pointed at the wrong member gets the
// typed 421 carrying the owner's URL and transparently re-issues the
// call there.
func TestWrongNodeFollow(t *testing.T) {
	tc := newTestCluster(t, 2, 2)
	obj := ownedBy(t, tc.table, 1)

	// The client deliberately talks to member 0, which does not own obj.
	c := server.NewClient(tc.members[0].url, nil)
	n, err := c.Submit(context.Background(), []server.RatingPayload{
		{Rater: 1, Object: int(obj), Value: 0.5, Time: 1},
	})
	if err != nil {
		t.Fatalf("submit via wrong node: %v", err)
	}
	if n != 1 {
		t.Fatalf("accepted %d", n)
	}
	// The rating landed on the owner, not the node the client dialed.
	if got := tc.members[1].eng.Len(); got != 1 {
		t.Fatalf("owner stores %d ratings, want 1", got)
	}
	if got := tc.members[0].eng.Len(); got != 0 {
		t.Fatalf("wrong node stores %d ratings, want 0", got)
	}
}

// TestWrongNodeEnvelope pins the wire shape: typed code, owner URL,
// echoed request ID, 421 status.
func TestWrongNodeEnvelope(t *testing.T) {
	tc := newTestCluster(t, 2, 2)
	obj := ownedBy(t, tc.table, 1)

	body := fmt.Sprintf(`[{"rater":1,"object":%d,"value":0.5,"time":1}]`, obj)
	req, _ := http.NewRequest(http.MethodPost, tc.members[0].url+"/v1/ratings", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(api.RequestIDHeader, "req-421")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("status %d, want 421", resp.StatusCode)
	}
	if v := resp.Header.Get(api.VersionHeader); v != api.Version {
		t.Fatalf("%s = %q", api.VersionHeader, v)
	}
	var e api.Error
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Code != api.CodeWrongNode {
		t.Fatalf("code %q", e.Code)
	}
	if e.Owner != tc.members[1].url {
		t.Fatalf("owner %q, want %q", e.Owner, tc.members[1].url)
	}
	if e.RequestID != "req-421" {
		t.Fatalf("request_id %q", e.RequestID)
	}
}

// pingPongView claims every object is owned elsewhere — the
// pathological routing loop the client's hop cap exists for.
type pingPongView struct{ owner string }

func (v pingPongView) Epoch() uint64                   { return 1 }
func (v pingPongView) OwnsObject(rating.ObjectID) bool { return false }
func (v pingPongView) OwnerURL(rating.ObjectID) string { return v.owner }
func (v pingPongView) Doc() api.ClusterResponse        { return api.ClusterResponse{Epoch: 1} }

func TestWrongNodeHopCap(t *testing.T) {
	// Two servers, each insisting the other is the owner.
	mk := func() (*server.Server, *httptest.Server) {
		sys, err := core.NewSafeSystem(core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.NewWith(sys)
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(srv)
		t.Cleanup(hs.Close)
		return srv, hs
	}
	srvA, hsA := mk()
	srvB, hsB := mk()
	srvA.SetCluster(pingPongView{owner: hsB.URL})
	srvB.SetCluster(pingPongView{owner: hsA.URL})

	c := server.NewClient(hsA.URL, nil)
	_, err := c.Submit(context.Background(), []server.RatingPayload{
		{Rater: 1, Object: 5, Value: 0.5, Time: 1},
	})
	var apiErr *server.APIError
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeWrongNode {
		t.Fatalf("want terminal wrong_node after hop cap, got %v", err)
	}
}

// TestStaleEpochPinning: a request pinning the wrong epoch is refused
// with the typed 409 on members and on the router; pinning the live
// epoch passes.
func TestStaleEpochPinning(t *testing.T) {
	tc := newTestCluster(t, 2, 2)
	for _, base := range []string{tc.members[0].url, tc.front.URL} {
		req, _ := http.NewRequest(http.MethodGet, base+"/v1/stats", nil)
		req.Header.Set(api.ClusterEpochHeader, "99")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var e api.Error
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict || e.Code != api.CodeStaleEpoch {
			t.Fatalf("%s: status %d code %q, want 409 stale_epoch", base, resp.StatusCode, e.Code)
		}

		req, _ = http.NewRequest(http.MethodGet, base+"/v1/stats", nil)
		req.Header.Set(api.ClusterEpochHeader, "1")
		resp, err = http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: pinned current epoch refused with %d", base, resp.StatusCode)
		}

		req, _ = http.NewRequest(http.MethodGet, base+"/v1/stats", nil)
		req.Header.Set(api.ClusterEpochHeader, "not-a-number")
		resp, err = http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: garbage epoch answered %d, want 400", base, resp.StatusCode)
		}
	}
}

// TestRouterShedsDownNode: with one member unreachable the router
// sheds exactly that member's range — typed 503s for requests needing
// it, normal service for everything else — and recovers when the
// member returns.
func TestRouterShedsDownNode(t *testing.T) {
	tc := newTestCluster(t, 2, 2)
	obj0, obj1 := ownedBy(t, tc.table, 0), ownedBy(t, tc.table, 1)
	c := server.NewClient(tc.front.URL, nil)
	ctx := context.Background()

	submit := func(obj rating.ObjectID, tm float64) error {
		_, err := c.Submit(ctx, []server.RatingPayload{{Rater: 1, Object: int(obj), Value: 0.5, Time: tm}})
		return err
	}
	if err := submit(obj0, 1); err != nil {
		t.Fatal(err)
	}
	if err := submit(obj1, 2); err != nil {
		t.Fatal(err)
	}

	tc.members[1].down()

	// Writes into the dead range shed with the typed 503.
	err := submit(obj1, 3)
	var apiErr *server.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable || apiErr.Code != api.CodeUnavailable {
		t.Fatalf("submit into dead range: want typed 503 unavailable, got %v", err)
	}
	// The live range keeps serving.
	if err := submit(obj0, 4); err != nil {
		t.Fatalf("submit into live range while peer down: %v", err)
	}
	// Aggregate owned by the dead member sheds; live member's serves.
	if _, err := c.Aggregate(ctx, int(obj1)); err == nil {
		t.Fatal("aggregate on dead range should shed")
	} else if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("aggregate on dead range: want 503, got %v", err)
	}
	// Scatter reads need every member: they shed.
	if _, err := c.Stats(ctx); err == nil {
		t.Fatal("stats should shed with a member down")
	}
	if _, err := c.Malicious(ctx); err == nil {
		t.Fatal("malicious should shed with a member down")
	}
	// Trust is replicated: the router falls over to the live member.
	if _, err := c.Trust(ctx, 1); err != nil {
		t.Fatalf("trust read with replicated state: %v", err)
	}
	// Windows refuse to run on a partial cluster.
	if _, err := c.Process(ctx, 0, 30); err == nil {
		t.Fatal("process should refuse with a member down")
	}
	// The cluster doc reports the outage instead of hiding it.
	doc := fetchRouterDoc(t, tc.front.URL)
	if doc.Nodes[0].Status != "ok" || doc.Nodes[1].Status != "down" {
		t.Fatalf("doc statuses %q/%q, want ok/down", doc.Nodes[0].Status, doc.Nodes[1].Status)
	}

	tc.members[1].up()
	if err := submit(obj1, 5); err != nil {
		t.Fatalf("submit after member recovery: %v", err)
	}
	if _, err := c.Stats(ctx); err != nil {
		t.Fatalf("stats after member recovery: %v", err)
	}
	doc = fetchRouterDoc(t, tc.front.URL)
	if doc.Nodes[1].Status != "ok" {
		t.Fatalf("doc status %q after recovery", doc.Nodes[1].Status)
	}
}

func fetchRouterDoc(t *testing.T, base string) api.ClusterResponse {
	t.Helper()
	resp, err := http.Get(base + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/cluster: status %d", resp.StatusCode)
	}
	var doc api.ClusterResponse
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestSingleNodeClusterMatchesPlainDaemon drives identical requests
// through a plain (non-cluster) server and a one-node cluster's router
// and requires byte-identical response bodies — the router's public
// surface IS the daemon's.
func TestSingleNodeClusterMatchesPlainDaemon(t *testing.T) {
	w := shardtest.Workload{Seed: 55, Months: 2, PerMonth: 200}

	eng, err := shard.NewEngine(core.Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	plainSrv, err := server.NewWith(eng)
	if err != nil {
		t.Fatal(err)
	}
	plain := httptest.NewServer(plainSrv)
	defer plain.Close()

	tc := newTestCluster(t, 1, 2)

	// Drive the same workload through both fronts via HTTP.
	for _, base := range []string{plain.URL, tc.front.URL} {
		c := server.NewClient(base, nil)
		for m, month := range w.Generate() {
			payloads := make([]server.RatingPayload, len(month.Ratings))
			for i, r := range month.Ratings {
				payloads[i] = server.RatingPayload{
					Rater: int(r.Rater), Object: int(r.Object), Value: r.Value, Time: r.Time,
				}
			}
			if _, err := c.Submit(context.Background(), payloads); err != nil {
				t.Fatalf("%s month %d submit: %v", base, m, err)
			}
			if _, err := c.Process(context.Background(), month.Start, month.End); err != nil {
				t.Fatalf("%s month %d process: %v", base, m, err)
			}
		}
	}

	get := func(base, path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	paths := []string{
		"/v1/stats",
		"/v1/stats?bounds=0.2,0.5,0.9",
		"/v1/malicious",
		"/v1/malicious?limit=2&offset=0",
		"/v1/malicious?limit=2&offset=2",
		"/v1/malicious?offset=1",
		"/v1/malicious?limit=-1", // error envelopes must match too
		"/v1/stats?bounds=nope",
	}
	for obj := 0; obj < w.Objects; obj++ {
		paths = append(paths, fmt.Sprintf("/v1/objects/%d/aggregate", obj))
	}
	for id := 0; id < 25; id++ {
		paths = append(paths, fmt.Sprintf("/v1/raters/%d/trust", id))
	}
	for _, p := range paths {
		plainStatus, plainBody := get(plain.URL, p)
		clusterStatus, clusterBody := get(tc.front.URL, p)
		if plainStatus != clusterStatus || plainBody != clusterBody {
			t.Errorf("GET %s diverged:\nplain   %d %s\ncluster %d %s",
				p, plainStatus, plainBody, clusterStatus, clusterBody)
		}
	}
}

// TestMergedPaginationAcrossNodes: pagination over the merged
// malicious list must behave as if one system held the whole list,
// with pages spanning member boundaries seamlessly.
func TestMergedPaginationAcrossNodes(t *testing.T) {
	w := shardtest.Workload{Seed: 91, Months: 2, PerMonth: 250, Malicious: 6}
	tc := newTestCluster(t, 3, 2)
	if _, err := shardtest.Run(tc.router, w); err != nil {
		t.Fatal(err)
	}

	c := server.NewClient(tc.front.URL, nil)
	ctx := context.Background()
	full, err := c.Malicious(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 3 {
		t.Fatalf("workload produced only %d malicious raters; need >=3 for boundary pages", len(full))
	}
	for i := 1; i < len(full); i++ {
		if full[i-1] >= full[i] {
			t.Fatalf("merged list not strictly ascending: %v", full)
		}
	}
	// The malicious raters' points span more than one member range —
	// otherwise this test wouldn't cross a boundary.
	owners := map[int]bool{}
	for _, id := range full {
		owners[tc.table.OwnerOfRater(rating.RaterID(id))] = true
	}
	if len(owners) < 2 {
		t.Skipf("all %d malicious raters landed on one member; seed needs adjusting", len(full))
	}

	// Every (offset, limit) window equals the corresponding slice of
	// the full merged list, and totals are cluster-wide.
	for offset := 0; offset <= len(full)+1; offset++ {
		for _, limit := range []int{1, 2, len(full)} {
			page, err := c.MaliciousPage(ctx, offset, limit)
			if err != nil {
				t.Fatal(err)
			}
			want := []int{}
			if offset <= len(full) {
				want = full[offset:]
				if limit < len(want) {
					want = want[:limit]
				}
			}
			if len(page.Raters) != len(want) {
				t.Fatalf("offset=%d limit=%d: got %v want %v", offset, limit, page.Raters, want)
			}
			for i := range want {
				if page.Raters[i] != want[i] {
					t.Fatalf("offset=%d limit=%d: got %v want %v", offset, limit, page.Raters, want)
				}
			}
			if page.Page == nil || page.Page.Total != len(full) {
				t.Fatalf("offset=%d limit=%d: page meta %+v, want total %d", offset, limit, page.Page, len(full))
			}
		}
	}
}

// TestRouterDiscovery: the router's /v1 document advertises the
// cluster features; a member's advertises cluster membership without
// the router flag.
func TestRouterDiscovery(t *testing.T) {
	tc := newTestCluster(t, 2, 2)
	var doc api.DiscoveryResponse
	resp, err := http.Get(tc.front.URL + "/v1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Version != api.Version {
		t.Fatalf("version %q", doc.Version)
	}
	if !doc.Features.Cluster || !doc.Features.Router || !doc.Features.StreamIngest {
		t.Fatalf("router features %+v", doc.Features)
	}
	if len(doc.Routes) == 0 {
		t.Fatal("no routes advertised")
	}

	resp2, err := http.Get(tc.members[0].url + "/v1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var mdoc api.DiscoveryResponse
	if err := json.NewDecoder(resp2.Body).Decode(&mdoc); err != nil {
		t.Fatal(err)
	}
	if !mdoc.Features.Cluster || mdoc.Features.Router {
		t.Fatalf("member features %+v", mdoc.Features)
	}
}

// TestMemberRefusesLocalProcess: a cluster member must never run a
// maintenance window locally — its scan covers only its owned range.
func TestMemberRefusesLocalProcess(t *testing.T) {
	tc := newTestCluster(t, 2, 2)
	c := server.NewClient(tc.members[0].url, nil)
	_, err := c.Process(context.Background(), 0, 30)
	var apiErr *server.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusConflict || apiErr.Code != api.CodeConflict {
		t.Fatalf("member-local process: want typed 409 conflict, got %v", err)
	}
}
