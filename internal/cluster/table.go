// Package cluster implements static-membership partitioned serving:
// N nodes each own a contiguous range of the 2^32 FNV-1a object-hash
// keyspace, pinned in a versioned, epoch-stamped routing table. Rating
// data partitions by object range; trust state replicates to every
// node (Procedure 2's per-rater update is independent across raters,
// so broadcasting one merged observation batch lands every node on
// identical trust). A router tier (Router) fans the full v1 surface
// out by object ID and folds cross-object reads in the canonical
// ascending-object order, so a cluster answers byte-identically to a
// single core.System.
package cluster

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/api"
	"repro/internal/rating"
	"repro/internal/shard"
)

// ringSize is one past the last keyspace point: ranges are [Lo, Hi)
// with Hi up to 2^32.
const ringSize = uint64(1) << 32

// Node is one member's routing-table row: its base URL and the
// contiguous keyspace range it owns.
type Node struct {
	// URL is the node's base URL, no trailing slash.
	URL string
	// Lo is the first owned point; Hi is one past the last (exclusive,
	// up to 2^32). Hi == Lo is an empty range.
	Lo uint32
	Hi uint64
}

// Contains reports whether point p falls in the node's range.
func (n Node) Contains(p uint32) bool {
	return uint64(p) >= uint64(n.Lo) && uint64(p) < n.Hi
}

// Empty reports whether the node owns no points.
func (n Node) Empty() bool { return n.Hi == uint64(n.Lo) }

// Table is the epoch-stamped ownership map. Nodes are in ascending Lo
// order and cover [0, 2^32) exactly — Validate enforces it — so every
// keyspace point has exactly one owner and lookup is a binary search.
type Table struct {
	Epoch uint64
	Nodes []Node
}

// Validate checks the table covers the keyspace exactly once:
// non-empty, sorted ascending, first Lo == 0, each Hi == next Lo,
// last Hi == 2^32. Empty ranges (Hi == Lo) are allowed — a node can
// be a trust replica that owns no objects — but the non-empty ranges
// must still tile the ring.
func (t Table) Validate() error {
	if len(t.Nodes) == 0 {
		return fmt.Errorf("cluster: empty table")
	}
	next := uint64(0)
	for i, n := range t.Nodes {
		if n.URL == "" {
			return fmt.Errorf("cluster: node %d: empty URL", i)
		}
		if strings.HasSuffix(n.URL, "/") {
			return fmt.Errorf("cluster: node %d: URL %q has a trailing slash", i, n.URL)
		}
		if uint64(n.Lo) != next {
			return fmt.Errorf("cluster: node %d: range starts at %d, want %d (ranges must tile [0,2^32))", i, n.Lo, next)
		}
		if n.Hi < uint64(n.Lo) || n.Hi > ringSize {
			return fmt.Errorf("cluster: node %d: hi %d outside [%d,%d]", i, n.Hi, n.Lo, ringSize)
		}
		next = n.Hi
	}
	if next != ringSize {
		return fmt.Errorf("cluster: table covers [0,%d), want [0,%d)", next, ringSize)
	}
	seen := make(map[string]bool, len(t.Nodes))
	for i, n := range t.Nodes {
		if seen[n.URL] {
			return fmt.Errorf("cluster: node %d: duplicate URL %q", i, n.URL)
		}
		seen[n.URL] = true
	}
	return nil
}

// EvenTable splits the keyspace into len(urls) near-equal contiguous
// ranges, one per URL in the given order, at the given epoch. This is
// the static membership a `-cluster node1,node2,...` flag produces:
// every router and member started with the same list derives the same
// table, so ownership agrees without coordination.
func EvenTable(epoch uint64, urls []string) (Table, error) {
	if len(urls) == 0 {
		return Table{}, fmt.Errorf("cluster: no nodes")
	}
	n := uint64(len(urls))
	t := Table{Epoch: epoch, Nodes: make([]Node, len(urls))}
	for i, u := range urls {
		lo := ringSize * uint64(i) / n
		hi := ringSize * uint64(i+1) / n
		t.Nodes[i] = Node{URL: strings.TrimSuffix(u, "/"), Lo: uint32(lo), Hi: hi}
	}
	if err := t.Validate(); err != nil {
		return Table{}, err
	}
	return t, nil
}

// Owner returns the index of the node owning point p. The table must
// be valid; Owner panics on an uncovered point (impossible after
// Validate).
func (t Table) Owner(p uint32) int {
	// First node with Hi > p; empty ranges never contain p, and the
	// search lands past them.
	i := sort.Search(len(t.Nodes), func(i int) bool { return t.Nodes[i].Hi > uint64(p) })
	if i >= len(t.Nodes) || !t.Nodes[i].Contains(p) {
		panic(fmt.Sprintf("cluster: point %d has no owner (invalid table)", p))
	}
	return i
}

// OwnerOfObject returns the index of the node owning an object.
func (t Table) OwnerOfObject(obj rating.ObjectID) int {
	return t.Owner(shard.KeyPoint(obj))
}

// OwnerOfRater returns the index of the node that answers
// scatter-gather rater queries for a rater (trust is replicated, so
// this partitions work, not data).
func (t Table) OwnerOfRater(r rating.RaterID) int {
	return t.Owner(shard.RaterPoint(r))
}

// IndexOf returns the index of the node with the given URL, or -1.
func (t Table) IndexOf(url string) int {
	url = strings.TrimSuffix(url, "/")
	for i, n := range t.Nodes {
		if n.URL == url {
			return i
		}
	}
	return -1
}

// Doc renders the table as the wire document (no health probing; the
// router fills Status at serve time). self, when non-negative, marks
// that row.
func (t Table) Doc(self int) api.ClusterResponse {
	doc := api.ClusterResponse{Epoch: t.Epoch, Nodes: make([]api.ClusterNode, len(t.Nodes))}
	for i, n := range t.Nodes {
		doc.Nodes[i] = api.ClusterNode{URL: n.URL, Lo: n.Lo, Hi: n.Hi, Self: i == self}
	}
	return doc
}
