package cluster

import (
	"strings"
	"testing"

	"repro/internal/rating"
	"repro/internal/shard"
)

func TestEvenTableTilesKeyspace(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 16} {
		urls := make([]string, n)
		for i := range urls {
			urls[i] = "http://node" + strings.Repeat("x", i) // distinct
		}
		table, err := EvenTable(7, urls)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := table.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if table.Epoch != 7 {
			t.Fatalf("n=%d: epoch %d", n, table.Epoch)
		}
		if table.Nodes[0].Lo != 0 || table.Nodes[n-1].Hi != 1<<32 {
			t.Fatalf("n=%d: keyspace not tiled: first lo=%d last hi=%d",
				n, table.Nodes[0].Lo, table.Nodes[n-1].Hi)
		}
		// Ring endpoints and a spread of points resolve to the node
		// whose range contains them.
		for _, p := range []uint32{0, 1, 1 << 16, 1<<31 - 1, 1 << 31, 1<<32 - 1} {
			owner := table.Owner(p)
			if !table.Nodes[owner].Contains(p) {
				t.Fatalf("n=%d: Owner(%d)=%d but range [%d,%d) does not contain it",
					n, p, owner, table.Nodes[owner].Lo, table.Nodes[owner].Hi)
			}
		}
	}
}

func TestTableValidateRejectsBadTables(t *testing.T) {
	cases := []struct {
		name  string
		table Table
	}{
		{"empty", Table{Epoch: 1}},
		{"gap", Table{Epoch: 1, Nodes: []Node{
			{URL: "http://a", Lo: 0, Hi: 10},
			{URL: "http://b", Lo: 20, Hi: 1 << 32},
		}}},
		{"overlap", Table{Epoch: 1, Nodes: []Node{
			{URL: "http://a", Lo: 0, Hi: 30},
			{URL: "http://b", Lo: 20, Hi: 1 << 32},
		}}},
		{"first not zero", Table{Epoch: 1, Nodes: []Node{
			{URL: "http://a", Lo: 5, Hi: 1 << 32},
		}}},
		{"last short", Table{Epoch: 1, Nodes: []Node{
			{URL: "http://a", Lo: 0, Hi: 1<<32 - 1},
		}}},
		{"dup url", Table{Epoch: 1, Nodes: []Node{
			{URL: "http://a", Lo: 0, Hi: 100},
			{URL: "http://a", Lo: 100, Hi: 1 << 32},
		}}},
		{"trailing slash", Table{Epoch: 1, Nodes: []Node{
			{URL: "http://a/", Lo: 0, Hi: 1 << 32},
		}}},
		{"empty url", Table{Epoch: 1, Nodes: []Node{
			{URL: "", Lo: 0, Hi: 1 << 32},
		}}},
	}
	for _, tc := range cases {
		if err := tc.table.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid table", tc.name)
		}
	}
}

func TestTableAllowsEmptyRanges(t *testing.T) {
	table := Table{Epoch: 3, Nodes: []Node{
		{URL: "http://a", Lo: 0, Hi: 1 << 31},
		{URL: "http://b", Lo: 1 << 31, Hi: 1 << 31}, // empty
		{URL: "http://c", Lo: 1 << 31, Hi: 1 << 32},
	}}
	if err := table.Validate(); err != nil {
		t.Fatal(err)
	}
	if !table.Nodes[1].Empty() {
		t.Fatal("middle node should report Empty")
	}
	// No point ever lands on the empty range.
	for _, p := range []uint32{0, 1<<31 - 1, 1 << 31, 1<<32 - 1} {
		if owner := table.Owner(p); owner == 1 {
			t.Fatalf("Owner(%d) resolved to the empty range", p)
		}
	}
}

func TestOwnerAgreesWithKeyPoints(t *testing.T) {
	table, err := EvenTable(1, []string{"http://a", "http://b", "http://c"})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 1000; id++ {
		obj := rating.ObjectID(id)
		if got, want := table.OwnerOfObject(obj), table.Owner(shard.KeyPoint(obj)); got != want {
			t.Fatalf("object %d: OwnerOfObject=%d Owner(KeyPoint)=%d", id, got, want)
		}
		r := rating.RaterID(id)
		if got, want := table.OwnerOfRater(r), table.Owner(shard.RaterPoint(r)); got != want {
			t.Fatalf("rater %d: OwnerOfRater=%d Owner(RaterPoint)=%d", id, got, want)
		}
	}
	// The hash spreads objects across all three nodes.
	seen := map[int]bool{}
	for id := 0; id < 1000; id++ {
		seen[table.OwnerOfObject(rating.ObjectID(id))] = true
	}
	if len(seen) != 3 {
		t.Fatalf("1000 objects landed on %d of 3 nodes", len(seen))
	}
}

func TestDocMarksSelf(t *testing.T) {
	table, err := EvenTable(9, []string{"http://a", "http://b"})
	if err != nil {
		t.Fatal(err)
	}
	doc := table.Doc(1)
	if doc.Epoch != 9 || len(doc.Nodes) != 2 {
		t.Fatalf("doc %+v", doc)
	}
	if doc.Nodes[0].Self || !doc.Nodes[1].Self {
		t.Fatalf("self marks wrong: %+v", doc.Nodes)
	}
	// Doc(-1) — the router's view — marks nobody.
	for _, n := range table.Doc(-1).Nodes {
		if n.Self {
			t.Fatal("router doc marked a node as self")
		}
	}
}
