package collusion

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rating"
)

// Metric selects the pairwise similarity indicator.
type Metric int

const (
	// MetricPCC is the Pearson correlation coefficient over shared
	// residual cells (the default).
	MetricPCC Metric = iota + 1
	// MetricCosine is the cosine similarity over shared residual cells.
	MetricCosine
)

// Config parameterizes a collusion-graph pass. Zero values select
// defaults tuned for the §IV windowing (10-day detector windows).
type Config struct {
	// Metric selects the similarity indicator; zero means MetricPCC.
	Metric Metric
	// BucketDays is the co-rating time-bucket width: two raters
	// co-rate when they rate the same object inside the same bucket.
	// Zero means 10 (the §IV detector window width).
	BucketDays float64
	// MinCoRatings is the minimum number of shared (object, bucket)
	// cells a rater pair needs before its similarity is considered.
	// Zero means 3; values below 2 are invalid (similarity over fewer
	// than two points is meaningless).
	MinCoRatings int
	// MinSimilarity is the edge threshold: pairs at or above it enter
	// the collusion graph. Zero means 0.8; must lie in (0, 1].
	MinSimilarity float64
	// MinGroupSize is the smallest mined group that is reported (and
	// charged). Zero means 3; must be at least 2.
	MinGroupSize int
}

func (c Config) withDefaults() Config {
	if c.Metric == 0 {
		c.Metric = MetricPCC
	}
	if c.BucketDays == 0 {
		c.BucketDays = 10
	}
	if c.MinCoRatings == 0 {
		c.MinCoRatings = 3
	}
	if c.MinSimilarity == 0 {
		c.MinSimilarity = 0.8
	}
	if c.MinGroupSize == 0 {
		c.MinGroupSize = 3
	}
	return c
}

// Validate reports configuration errors after defaulting.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Metric != MetricPCC && c.Metric != MetricCosine {
		return fmt.Errorf("collusion: unknown metric %d", int(c.Metric))
	}
	if c.BucketDays <= 0 || math.IsNaN(c.BucketDays) || math.IsInf(c.BucketDays, 0) {
		return fmt.Errorf("collusion: bucket %g days", c.BucketDays)
	}
	if c.MinCoRatings < 2 {
		return fmt.Errorf("collusion: min co-ratings %d", c.MinCoRatings)
	}
	if c.MinSimilarity <= 0 || c.MinSimilarity > 1 || math.IsNaN(c.MinSimilarity) {
		return fmt.Errorf("collusion: min similarity %g outside (0,1]", c.MinSimilarity)
	}
	if c.MinGroupSize < 2 {
		return fmt.Errorf("collusion: min group size %d", c.MinGroupSize)
	}
	return nil
}

// Edge is one qualifying rater pair of the collusion graph (A < B).
type Edge struct {
	A, B rating.RaterID
	// Similarity is the configured metric over the pair's shared
	// residual cells, in [-1, 1] (edges require >= MinSimilarity).
	Similarity float64
	// Shared is the number of co-rated (object, bucket) cells.
	Shared int
}

// Group is one mined collusion group: a connected component of the
// thresholded graph with at least MinGroupSize members.
type Group struct {
	// Members are the group's raters, ascending.
	Members []rating.RaterID
	// Cohesion is the mean similarity over the group's edges, in
	// [MinSimilarity, 1].
	Cohesion float64
}

// Report is the outcome of one collusion-graph pass.
type Report struct {
	// Edges are the graph's qualifying pairs, sorted by (A, B).
	Edges []Edge
	// Groups are the mined groups, sorted by first member.
	Groups []Group
	// Suspicion maps each grouped rater to its suspicion mass in
	// [0, 1]: the mean similarity of the rater's in-group edges,
	// clamped at zero. Raters outside every group are absent.
	Suspicion map[rating.RaterID]float64
}

// cell identifies one co-rating cell.
type cell struct {
	obj    rating.ObjectID
	bucket int64
}

// profile is one rater's co-rating vector: mean residual per cell.
type profile struct {
	id    rating.RaterID
	cells map[cell]float64
}

// Detect builds the co-rating profiles over rs (any objects, any
// order), computes pairwise similarity for every rater pair sharing at
// least MinCoRatings cells, thresholds the pairs into a collusion
// graph, and mines groups as connected components. Malformed values
// (NaN/Inf times or values) are ignored rather than rejected, so the
// detector never fails a maintenance window.
func Detect(rs []rating.Rating, cfg Config) (Report, error) {
	if err := cfg.Validate(); err != nil {
		return Report{}, err
	}
	cfg = cfg.withDefaults()

	// Drop malformed records (NaN/Inf values or times) up front, then
	// canonicalize input order so the report is a pure function of the
	// rating multiset: the mean folds below accumulate floats in
	// whatever order ratings arrive, and addition does not commute at
	// the last ulp.
	sorted := make([]rating.Rating, 0, len(rs))
	for _, r := range rs {
		if math.IsNaN(r.Value) || math.IsInf(r.Value, 0) ||
			math.IsNaN(r.Time) || math.IsInf(r.Time, 0) {
			continue
		}
		sorted = append(sorted, r)
	}
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Rater != b.Rater {
			return a.Rater < b.Rater
		}
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		return a.Value < b.Value
	})

	profiles := buildProfiles(sorted, cfg.BucketDays)
	edges := buildEdges(profiles, cfg)
	groups, suspicion := mineGroups(edges, cfg.MinGroupSize)
	return Report{Edges: edges, Groups: groups, Suspicion: suspicion}, nil
}

// buildProfiles folds rs into per-rater mean-residual vectors keyed by
// (object, time bucket). Residuals are against the cell's mean over
// all raters, so a whole cell agreeing with itself is not suspicious —
// only raters deviating from the cell consensus in the same direction
// correlate.
func buildProfiles(rs []rating.Rating, bucketDays float64) []profile {
	type cellAgg struct {
		sum float64
		n   int
	}
	cellMean := make(map[cell]*cellAgg)
	type raterCell struct {
		sum float64
		n   int
	}
	byRater := make(map[rating.RaterID]map[cell]*raterCell)
	for _, r := range rs {
		if math.IsNaN(r.Value) || math.IsInf(r.Value, 0) ||
			math.IsNaN(r.Time) || math.IsInf(r.Time, 0) {
			continue
		}
		c := cell{obj: r.Object, bucket: int64(math.Floor(r.Time / bucketDays))}
		agg := cellMean[c]
		if agg == nil {
			agg = &cellAgg{}
			cellMean[c] = agg
		}
		agg.sum += r.Value
		agg.n++
		cells := byRater[r.Rater]
		if cells == nil {
			cells = make(map[cell]*raterCell)
			byRater[r.Rater] = cells
		}
		rc := cells[c]
		if rc == nil {
			rc = &raterCell{}
			cells[c] = rc
		}
		rc.sum += r.Value
		rc.n++
	}

	ids := make([]rating.RaterID, 0, len(byRater))
	for id := range byRater {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	out := make([]profile, 0, len(ids))
	for _, id := range ids {
		cells := make(map[cell]float64, len(byRater[id]))
		for c, rc := range byRater[id] {
			agg := cellMean[c]
			cells[c] = rc.sum/float64(rc.n) - agg.sum/float64(agg.n)
		}
		out = append(out, profile{id: id, cells: cells})
	}
	return out
}

// buildEdges enumerates rater pairs that share cells (via an inverted
// cell → raters index, so disjoint raters are never paired), computes
// the configured similarity over each qualifying pair's shared cells
// in canonical cell order, and keeps pairs at or above the threshold.
func buildEdges(profiles []profile, cfg Config) []Edge {
	// index of profiles by position; the inverted index stores
	// positions so pair keys are cheap ints.
	byCell := make(map[cell][]int)
	for i, p := range profiles {
		for c := range p.cells {
			byCell[c] = append(byCell[c], i)
		}
	}
	// Count shared cells per pair. Profile positions ascend with rater
	// ID, so pair (i, j) with i < j is already canonical.
	type pairKey struct{ i, j int }
	shared := make(map[pairKey]int)
	for _, members := range byCell {
		// members is ascending: profiles were visited in ID order.
		for a := 0; a < len(members); a++ {
			for b := a + 1; b < len(members); b++ {
				shared[pairKey{members[a], members[b]}]++
			}
		}
	}
	pairs := make([]pairKey, 0, len(shared))
	for k, n := range shared {
		if n >= cfg.MinCoRatings {
			pairs = append(pairs, k)
		}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].i != pairs[b].i {
			return pairs[a].i < pairs[b].i
		}
		return pairs[a].j < pairs[b].j
	})

	var edges []Edge
	var xs, ys []float64
	var cells []cell
	for _, k := range pairs {
		pi, pj := profiles[k.i], profiles[k.j]
		// Shared cells in canonical (object, bucket) order so the
		// similarity's float folds are schedule-free.
		cells = cells[:0]
		for c := range pi.cells {
			if _, ok := pj.cells[c]; ok {
				cells = append(cells, c)
			}
		}
		sort.Slice(cells, func(a, b int) bool {
			if cells[a].obj != cells[b].obj {
				return cells[a].obj < cells[b].obj
			}
			return cells[a].bucket < cells[b].bucket
		})
		xs, ys = xs[:0], ys[:0]
		for _, c := range cells {
			xs = append(xs, pi.cells[c])
			ys = append(ys, pj.cells[c])
		}
		var sim float64
		switch cfg.Metric {
		case MetricCosine:
			sim = Cosine(xs, ys)
		default:
			sim = Pearson(xs, ys)
		}
		if sim >= cfg.MinSimilarity {
			edges = append(edges, Edge{A: pi.id, B: pj.id, Similarity: sim, Shared: len(cells)})
		}
	}
	return edges
}

// mineGroups finds the connected components of the edge set with
// union-find, keeps those with at least minSize members, and assigns
// each grouped rater the mean similarity of its in-group edges as
// suspicion mass (clamped to [0, 1]).
func mineGroups(edges []Edge, minSize int) ([]Group, map[rating.RaterID]float64) {
	parent := make(map[rating.RaterID]rating.RaterID)
	var find func(rating.RaterID) rating.RaterID
	find = func(x rating.RaterID) rating.RaterID {
		p, ok := parent[x]
		if !ok {
			parent[x] = x
			return x
		}
		if p == x {
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(a, b rating.RaterID) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		// Smaller root wins, keeping components keyed deterministically.
		if rb < ra {
			ra, rb = rb, ra
		}
		parent[rb] = ra
	}
	for _, e := range edges {
		union(e.A, e.B)
	}

	members := make(map[rating.RaterID][]rating.RaterID)
	for _, e := range edges {
		// Collect each rater once: an ID may appear in many edges.
		for _, id := range [2]rating.RaterID{e.A, e.B} {
			root := find(id)
			list := members[root]
			if len(list) == 0 || !containsID(list, id) {
				members[root] = append(list, id)
			}
		}
	}

	roots := make([]rating.RaterID, 0, len(members))
	for root, list := range members {
		if len(list) >= minSize {
			roots = append(roots, root)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })

	suspicion := make(map[rating.RaterID]float64)
	var groups []Group
	for _, root := range roots {
		list := members[root]
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		inGroup := make(map[rating.RaterID]bool, len(list))
		for _, id := range list {
			inGroup[id] = true
		}
		var cohesion float64
		edgeCount := 0
		perSum := make(map[rating.RaterID]float64, len(list))
		perN := make(map[rating.RaterID]int, len(list))
		for _, e := range edges {
			if !inGroup[e.A] || !inGroup[e.B] {
				continue
			}
			cohesion += e.Similarity
			edgeCount++
			perSum[e.A] += e.Similarity
			perN[e.A]++
			perSum[e.B] += e.Similarity
			perN[e.B]++
		}
		if edgeCount == 0 {
			continue // unreachable: every component member has an edge
		}
		groups = append(groups, Group{Members: list, Cohesion: cohesion / float64(edgeCount)})
		for _, id := range list {
			if perN[id] == 0 {
				continue
			}
			s := perSum[id] / float64(perN[id])
			if s < 0 {
				s = 0
			}
			if s > 1 {
				s = 1
			}
			suspicion[id] = s
		}
	}
	return groups, suspicion
}

func containsID(list []rating.RaterID, id rating.RaterID) bool {
	for _, v := range list {
		if v == id {
			return true
		}
	}
	return false
}
