package collusion

import (
	"math"
	"testing"

	"repro/internal/randx"
	"repro/internal/rating"
)

// colludedWorkload builds a stream where honest raters track per-object
// quality with independent noise while a clique pushes the same +bias
// on the same objects at the same times.
func colludedWorkload(seed int64) ([]rating.Rating, []rating.RaterID) {
	rng := randx.New(seed)
	quality := []float64{0.3, 0.5, 0.7, 0.6}
	var rs []rating.Rating
	// 12 honest raters, each rating every object in every 10-day bucket.
	for id := 0; id < 12; id++ {
		for bucket := 0; bucket < 4; bucket++ {
			for obj := range quality {
				rs = append(rs, rating.Rating{
					Rater:  rating.RaterID(id),
					Object: rating.ObjectID(obj),
					Value:  clamp01(quality[obj] + rng.Normal(0, 0.15)),
					Time:   float64(bucket*10) + rng.Uniform(0, 10),
				})
			}
		}
	}
	// A 4-rater clique co-rating the same objects with a shared bias
	// profile: +0.3 on even buckets, -0.3 on odd ones, so residuals
	// correlate strongly pairwise.
	clique := []rating.RaterID{100, 101, 102, 103}
	for _, id := range clique {
		for bucket := 0; bucket < 4; bucket++ {
			bias := 0.3
			if bucket%2 == 1 {
				bias = -0.3
			}
			for obj := range quality {
				rs = append(rs, rating.Rating{
					Rater:  id,
					Object: rating.ObjectID(obj),
					Value:  clamp01(quality[obj] + bias + rng.Normal(0, 0.02)),
					Time:   float64(bucket*10) + rng.Uniform(0, 10),
				})
			}
		}
	}
	return rs, clique
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func TestDetectFindsClique(t *testing.T) {
	rs, clique := colludedWorkload(1)
	rep, err := Detect(rs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Groups) == 0 {
		t.Fatal("no groups mined")
	}
	grouped := map[rating.RaterID]bool{}
	for _, g := range rep.Groups {
		for _, id := range g.Members {
			grouped[id] = true
		}
	}
	for _, id := range clique {
		if !grouped[id] {
			t.Fatalf("clique member %d not mined (groups %v)", id, rep.Groups)
		}
		s, ok := rep.Suspicion[id]
		if !ok || s < 0.5 {
			t.Fatalf("clique member %d suspicion %g, want >= 0.5", id, s)
		}
	}
	// Honest raters deviate independently; none should carry high
	// suspicion.
	for id, s := range rep.Suspicion {
		if id < 100 && s > 0.9 {
			t.Fatalf("honest rater %d suspicion %g", id, s)
		}
	}
}

func TestDetectHonestOnlyStaysQuiet(t *testing.T) {
	rs, _ := colludedWorkload(2)
	honest := rs[:0:0]
	for _, r := range rs {
		if r.Rater < 100 {
			honest = append(honest, r)
		}
	}
	rep, err := Detect(honest, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Independent noise makes high-similarity triples rare; allow a
	// stray pair edge but no mined group of colluder-grade cohesion.
	for _, g := range rep.Groups {
		if g.Cohesion > 0.95 && len(g.Members) >= 4 {
			t.Fatalf("honest workload mined a tight group: %+v", g)
		}
	}
}

func TestDetectDeterministic(t *testing.T) {
	rs, _ := colludedWorkload(3)
	a, err := Detect(rs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// A different (reversed) input order must not change the report:
	// profiles and pairs are canonicalized internally.
	rev := make([]rating.Rating, len(rs))
	for i, r := range rs {
		rev[len(rs)-1-i] = r
	}
	b, err := Detect(rev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Edges) != len(b.Edges) || len(a.Groups) != len(b.Groups) {
		t.Fatalf("order-dependent report: %d/%d edges, %d/%d groups",
			len(a.Edges), len(b.Edges), len(a.Groups), len(b.Groups))
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, a.Edges[i], b.Edges[i])
		}
	}
	for id, s := range a.Suspicion {
		if b.Suspicion[id] != s {
			t.Fatalf("suspicion for %d differs: %g vs %g", id, s, b.Suspicion[id])
		}
	}
}

func TestDetectIgnoresMalformedRatings(t *testing.T) {
	rs := []rating.Rating{
		{Rater: 1, Object: 1, Value: math.NaN(), Time: 1},
		{Rater: 2, Object: 1, Value: 0.5, Time: math.Inf(1)},
		{Rater: 3, Object: 1, Value: 0.5, Time: 1},
	}
	rep, err := Detect(rs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Edges) != 0 || len(rep.Groups) != 0 {
		t.Fatalf("malformed ratings produced edges: %+v", rep)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Metric: 9},
		{BucketDays: -1},
		{BucketDays: math.NaN()},
		{MinCoRatings: 1},
		{MinSimilarity: 1.5},
		{MinSimilarity: -0.1},
		{MinGroupSize: 1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
}

func TestCosineMetric(t *testing.T) {
	rs, clique := colludedWorkload(4)
	rep, err := Detect(rs, Config{Metric: MetricCosine, MinSimilarity: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	grouped := map[rating.RaterID]bool{}
	for _, g := range rep.Groups {
		for _, id := range g.Members {
			grouped[id] = true
		}
	}
	found := 0
	for _, id := range clique {
		if grouped[id] {
			found++
		}
	}
	if found < 3 {
		t.Fatalf("cosine metric mined %d of 4 clique members", found)
	}
}
