package collusion

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/rating"
)

// FuzzCollusionGraph feeds arbitrary bytes through Detect: the first
// four bytes pick a (possibly invalid) Config, the rest decode into
// ratings whose value/time are raw float64 bit patterns, so NaN, Inf,
// subnormals and huge magnitudes all occur. Whatever the input, Detect
// must never panic, and any report it does return must have suspicion
// masses inside [0, 1] with edges and groups internally consistent.
func FuzzCollusionGraph(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	// One valid-looking record.
	rec := make([]byte, 4+18)
	rec[4], rec[5] = 7, 2
	binary.LittleEndian.PutUint64(rec[6:], math.Float64bits(0.5))
	binary.LittleEndian.PutUint64(rec[14:], math.Float64bits(12.0))
	f.Add(rec)
	// A NaN value and an Inf time.
	bad := make([]byte, 4+36)
	binary.LittleEndian.PutUint64(bad[6:], math.Float64bits(math.NaN()))
	binary.LittleEndian.PutUint64(bad[14:], math.Float64bits(3.0))
	bad[22], bad[23] = 9, 1
	binary.LittleEndian.PutUint64(bad[24:], math.Float64bits(0.25))
	binary.LittleEndian.PutUint64(bad[32:], math.Float64bits(math.Inf(1)))
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, rs := decodeFuzzInput(data)
		rep, err := Detect(rs, cfg)
		if err != nil {
			// Invalid configs are rejected, never panicked on.
			return
		}
		for id, s := range rep.Suspicion {
			if math.IsNaN(s) || s < 0 || s > 1 {
				t.Fatalf("rater %d suspicion %g outside [0,1]", id, s)
			}
		}
		for _, e := range rep.Edges {
			if e.A >= e.B {
				t.Fatalf("edge not canonical: %+v", e)
			}
			if math.IsNaN(e.Similarity) || e.Similarity < -1 || e.Similarity > 1 {
				t.Fatalf("edge similarity %g outside [-1,1]", e.Similarity)
			}
		}
		for _, g := range rep.Groups {
			if len(g.Members) < 2 {
				t.Fatalf("group with %d members", len(g.Members))
			}
			if math.IsNaN(g.Cohesion) {
				t.Fatalf("NaN cohesion: %+v", g)
			}
			for _, id := range g.Members {
				if _, ok := rep.Suspicion[id]; !ok {
					t.Fatalf("grouped rater %d has no suspicion mass", id)
				}
			}
		}
	})
}

// decodeFuzzInput maps bytes onto a Config (first 4 bytes) and ratings
// (18-byte records: rater, object, value bits, time bits). Small
// moduli keep raters and objects colliding so the graph actually forms.
func decodeFuzzInput(data []byte) (Config, []rating.Rating) {
	var cfg Config
	if len(data) >= 4 {
		cfg = Config{
			Metric:       Metric(data[0] % 4),
			BucketDays:   float64(data[1] % 32),
			MinCoRatings: int(data[2] % 6),
			MinGroupSize: int(data[3] % 6),
		}
		data = data[4:]
	}
	var rs []rating.Rating
	for len(data) >= 18 {
		rs = append(rs, rating.Rating{
			Rater:  rating.RaterID(data[0] % 16),
			Object: rating.ObjectID(data[1] % 8),
			Value:  math.Float64frombits(binary.LittleEndian.Uint64(data[2:10])),
			Time:   math.Float64frombits(binary.LittleEndian.Uint64(data[10:18])),
		})
		data = data[18:]
	}
	return cfg, rs
}
