package collusion

import (
	"math"
	"sort"

	"repro/internal/rating"
)

// obs is one accepted rating's contribution to a (rater, cell) profile
// entry. Only time and value matter: rater and cell are the map keys.
type obs struct {
	time, value float64
}

// obsList holds one (rater, cell) observation sequence. The streaming
// ingest path pushes per-object ratings in non-decreasing time order,
// so the list is usually already sorted; dirty marks the rare
// out-of-order append so Snapshot only re-sorts what it must.
type obsList struct {
	obs   []obs
	dirty bool
}

// Accumulator is the incremental form of Detect: ratings are folded in
// as they arrive (any order, any chunking) and Snapshot materializes
// the same Report that batch Detect would produce over the accumulated
// multiset — bit-identical, including every float fold.
//
// The trick is that Detect's only order sensitivity is the float folds
// inside buildProfiles, which run over ratings sorted by (rater,
// object, time, value). Restricted to one (object, bucket) cell that
// order is "raters ascending, each rater's observations by (time,
// value)" — a shape the accumulator can replay from per-(rater, cell)
// observation lists no matter how the ratings arrived. Everything
// downstream (edges, groups, suspicion) is a pure function of the
// profiles.
//
// An Accumulator is single-goroutine; callers that share one across
// shards must serialize access.
type Accumulator struct {
	cfg     Config
	byRater map[rating.RaterID]map[cell]*obsList
	n       int
}

// NewAccumulator validates cfg and returns an empty accumulator.
func NewAccumulator(cfg Config) (*Accumulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Accumulator{
		cfg:     cfg.withDefaults(),
		byRater: make(map[rating.RaterID]map[cell]*obsList),
	}, nil
}

// Accumulate folds ratings into the co-rating profiles. Malformed
// records (NaN/Inf values or times) are dropped, mirroring Detect.
func (a *Accumulator) Accumulate(rs ...rating.Rating) {
	for _, r := range rs {
		if math.IsNaN(r.Value) || math.IsInf(r.Value, 0) ||
			math.IsNaN(r.Time) || math.IsInf(r.Time, 0) {
			continue
		}
		c := cell{obj: r.Object, bucket: int64(math.Floor(r.Time / a.cfg.BucketDays))}
		cells := a.byRater[r.Rater]
		if cells == nil {
			cells = make(map[cell]*obsList)
			a.byRater[r.Rater] = cells
		}
		list := cells[c]
		if list == nil {
			list = &obsList{}
			cells[c] = list
		}
		o := obs{time: r.Time, value: r.Value}
		if k := len(list.obs); k > 0 && obsLess(o, list.obs[k-1]) {
			list.dirty = true
		}
		list.obs = append(list.obs, o)
		a.n++
	}
}

// Len returns how many ratings have been accepted since the last Reset.
func (a *Accumulator) Len() int { return a.n }

// Reset drops all accumulated state.
func (a *Accumulator) Reset() {
	a.byRater = make(map[rating.RaterID]map[cell]*obsList)
	a.n = 0
}

// Snapshot materializes the collusion report over everything
// accumulated so far. It is read-only with respect to the logical
// state: accumulating more ratings afterwards and snapshotting again
// is equivalent to a fresh batch Detect over the larger multiset.
func (a *Accumulator) Snapshot() Report {
	ids := make([]rating.RaterID, 0, len(a.byRater))
	for id := range a.byRater {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	// Replay buildProfiles' folds: rater-ascending outer order, each
	// (rater, cell) chunk in (time, value) order. Each cell's mean
	// accumulator therefore sees the exact addition sequence the batch
	// pass produces from its global sort.
	type cellAgg struct {
		sum float64
		n   int
	}
	cellMean := make(map[cell]*cellAgg)
	raterSums := make([]map[cell]float64, len(ids))
	for i, id := range ids {
		sums := make(map[cell]float64, len(a.byRater[id]))
		for c, list := range a.byRater[id] {
			if list.dirty {
				sort.Slice(list.obs, func(x, y int) bool { return obsLess(list.obs[x], list.obs[y]) })
				list.dirty = false
			}
			agg := cellMean[c]
			if agg == nil {
				agg = &cellAgg{}
				cellMean[c] = agg
			}
			var sum float64
			for _, o := range list.obs {
				sum += o.value
				agg.sum += o.value
			}
			agg.n += len(list.obs)
			sums[c] = sum
		}
		raterSums[i] = sums
	}

	profiles := make([]profile, 0, len(ids))
	for i, id := range ids {
		cells := make(map[cell]float64, len(raterSums[i]))
		for c, sum := range raterSums[i] {
			agg := cellMean[c]
			n := len(a.byRater[id][c].obs)
			cells[c] = sum/float64(n) - agg.sum/float64(agg.n)
		}
		profiles = append(profiles, profile{id: id, cells: cells})
	}

	edges := buildEdges(profiles, a.cfg)
	groups, suspicion := mineGroups(edges, a.cfg.MinGroupSize)
	return Report{Edges: edges, Groups: groups, Suspicion: suspicion}
}

func obsLess(a, b obs) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.value < b.value
}
