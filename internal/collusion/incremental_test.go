package collusion

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/randx"
	"repro/internal/rating"
)

func TestNewAccumulatorValidation(t *testing.T) {
	if _, err := NewAccumulator(Config{MinCoRatings: 1}); err == nil {
		t.Fatal("bad config accepted")
	}
	if _, err := NewAccumulator(Config{}); err != nil {
		t.Fatal(err)
	}
}

// genCollusionTrace builds a rating multiset with enough structure for
// the graph to be non-trivial: a few honest raters plus a clique that
// co-rates the same objects in the same buckets, salted with malformed
// records that both paths must drop.
func genCollusionTrace(rng *randx.Rand) []rating.Rating {
	n := 40 + rng.Intn(200)
	rs := make([]rating.Rating, 0, n+8)
	clique := 3 + rng.Intn(4)
	objects := 1 + rng.Intn(4)
	for i := 0; i < n; i++ {
		r := rating.Rating{
			Rater:  rating.RaterID(rng.Intn(12)),
			Object: rating.ObjectID(rng.Intn(objects)),
			Value:  randx.Quantize(rng.Float64(), 11, true),
			Time:   rng.Float64() * 90,
		}
		if rng.Float64() < 0.5 {
			// Clique member: biased value, bucket-aligned time.
			r.Rater = rating.RaterID(100 + rng.Intn(clique))
			r.Value = randx.Quantize(0.8+0.2*rng.Float64(), 11, true)
			r.Time = float64(rng.Intn(9)) * 10
		}
		if rng.Float64() < 0.25 {
			// Duplicate timestamps exercise the (time, value) tie-break.
			r.Time = math.Floor(r.Time)
		}
		rs = append(rs, r)
	}
	// Malformed records: dropped identically by Detect and Accumulate.
	rs = append(rs,
		rating.Rating{Rater: 1, Object: 0, Value: math.NaN(), Time: 5},
		rating.Rating{Rater: 2, Object: 0, Value: 0.5, Time: math.Inf(1)},
		rating.Rating{Rater: 3, Object: 0, Value: math.Inf(-1), Time: 5},
		rating.Rating{Rater: 4, Object: 0, Value: 0.5, Time: math.NaN()},
	)
	rng.Shuffle(len(rs), func(i, j int) { rs[i], rs[j] = rs[j], rs[i] })
	return rs
}

// Property: for arbitrary rating multisets, arbitrary arrival order,
// and arbitrary chunking, the incremental accumulator's Snapshot is
// bit-identical to batch Detect — every edge similarity, cohesion, and
// suspicion float included.
func TestAccumulatorMatchesDetectProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := randx.New(seed)
		rs := genCollusionTrace(rng)
		cfg := Config{MinCoRatings: 2, MinSimilarity: 0.5, MinGroupSize: 2}

		batch, err := Detect(rs, cfg)
		if err != nil {
			return false
		}
		acc, err := NewAccumulator(cfg)
		if err != nil {
			return false
		}
		// Feed in random chunks, snapshotting mid-stream to prove
		// Snapshot does not perturb later results.
		for i := 0; i < len(rs); {
			k := 1 + rng.Intn(16)
			if i+k > len(rs) {
				k = len(rs) - i
			}
			acc.Accumulate(rs[i : i+k]...)
			i += k
			if rng.Float64() < 0.2 {
				_ = acc.Snapshot()
			}
		}
		inc := acc.Snapshot()
		if !reflect.DeepEqual(batch, inc) {
			t.Logf("seed %d: batch %+v vs incremental %+v", seed, batch, inc)
			return false
		}
		// A second snapshot must be identical to the first.
		return reflect.DeepEqual(inc, acc.Snapshot())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAccumulatorReset(t *testing.T) {
	acc, err := NewAccumulator(Config{})
	if err != nil {
		t.Fatal(err)
	}
	acc.Accumulate(rating.Rating{Rater: 1, Object: 1, Value: 0.5, Time: 1})
	if acc.Len() != 1 {
		t.Fatalf("len = %d", acc.Len())
	}
	acc.Reset()
	if acc.Len() != 0 {
		t.Fatalf("len after reset = %d", acc.Len())
	}
	rep := acc.Snapshot()
	if len(rep.Edges) != 0 || len(rep.Groups) != 0 || len(rep.Suspicion) != 0 {
		t.Fatalf("non-empty report after reset: %+v", rep)
	}
}
