// Package collusion implements co-rating collusion-graph detection in
// the spirit of Allahbakhsh et al. ("Detecting, Representing and
// Querying Collusion in Online Rating Systems"): pairwise rater
// similarity indicators over co-rated (object, time-bucket) cells, a
// thresholded collusion graph over raters, and group mining that emits
// suspected cliques with a per-rater suspicion mass in [0, 1]
// compatible with Procedure 2's charging (Observation.SuspicionMass).
//
// Similarity is computed on residuals — each rating minus its cell's
// mean — so honest raters who all track an object's true quality stay
// uncorrelated while a clique pushing the same bias direction lights
// up. The whole pass is deterministic: cells, raters and pairs are
// always visited in sorted order, so the report is a pure function of
// the input ratings and the config.
package collusion

import "math"

// Pearson returns the Pearson correlation coefficient of the paired
// samples x and y. It is NaN-free by construction: mismatched or
// too-short inputs and constant vectors (zero variance on either side)
// return 0, and float drift is clamped so the result always lies in
// [-1, 1].
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	n := float64(len(x))
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 || math.IsNaN(sxy) || math.IsInf(sxy, 0) {
		return 0
	}
	return clampUnit(sxy / math.Sqrt(sxx*syy))
}

// Cosine returns the cosine similarity of the paired samples x and y.
// Like Pearson it is NaN-free: mismatched or empty inputs and
// zero-norm vectors return 0, and the result is clamped to [-1, 1].
func Cosine(x, y []float64) float64 {
	if len(x) != len(y) || len(x) == 0 {
		return 0
	}
	var dot, nx, ny float64
	for i := range x {
		dot += x[i] * y[i]
		nx += x[i] * x[i]
		ny += y[i] * y[i]
	}
	if nx == 0 || ny == 0 || math.IsNaN(dot) || math.IsInf(dot, 0) {
		return 0
	}
	return clampUnit(dot / math.Sqrt(nx*ny))
}

func clampUnit(v float64) float64 {
	switch {
	case math.IsNaN(v):
		return 0
	case v > 1:
		return 1
	case v < -1:
		return -1
	default:
		return v
	}
}
