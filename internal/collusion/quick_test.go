package collusion

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Property tests (testing/quick) for the similarity indicators: both
// must be bounded in [-1, 1], symmetric under swapping the raters,
// invariant under permuting the co-rating order, and NaN-free even on
// constant vectors.

type pairedVectors struct {
	X, Y []float64
}

// Generate produces equal-length vectors of finite values in a rating-
// like range, occasionally constant to hit the zero-variance branch.
func (pairedVectors) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(size%16+2) + 2
	x := make([]float64, n)
	y := make([]float64, n)
	if r.Intn(5) == 0 {
		c := r.Float64()
		for i := range x {
			x[i] = c
			y[i] = r.Float64()
		}
	} else {
		for i := range x {
			x[i] = r.Float64()*2 - 1
			y[i] = r.Float64()*2 - 1
		}
	}
	return reflect.ValueOf(pairedVectors{X: x, Y: y})
}

func TestIndicatorsBoundedAndFinite(t *testing.T) {
	prop := func(v pairedVectors) bool {
		for _, s := range []float64{Pearson(v.X, v.Y), Cosine(v.X, v.Y)} {
			if math.IsNaN(s) || s < -1 || s > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIndicatorsSymmetric(t *testing.T) {
	prop := func(v pairedVectors) bool {
		return Pearson(v.X, v.Y) == Pearson(v.Y, v.X) &&
			Cosine(v.X, v.Y) == Cosine(v.Y, v.X)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIndicatorsPermutationInvariant(t *testing.T) {
	prop := func(v pairedVectors, seed int64) bool {
		perm := rand.New(rand.NewSource(seed)).Perm(len(v.X))
		px := make([]float64, len(v.X))
		py := make([]float64, len(v.Y))
		for i, j := range perm {
			px[i], py[i] = v.X[j], v.Y[j]
		}
		// Permuting co-rating positions reorders the same sum terms;
		// allow float-fold slack but no more.
		const tol = 1e-9
		return math.Abs(Pearson(px, py)-Pearson(v.X, v.Y)) < tol &&
			math.Abs(Cosine(px, py)-Cosine(v.X, v.Y)) < tol
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIndicatorsConstantVectorsNaNFree(t *testing.T) {
	prop := func(c float64, n uint8) bool {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			c = 0.5
		}
		x := make([]float64, int(n%16)+2)
		for i := range x {
			x[i] = c
		}
		p, cs := Pearson(x, x), Cosine(x, x)
		if math.IsNaN(p) || math.IsNaN(cs) {
			return false
		}
		// Constant vectors carry no correlation signal: Pearson must
		// refuse to call them similar.
		return p == 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIndicatorsMismatchedLengths(t *testing.T) {
	if Pearson([]float64{1, 2}, []float64{1}) != 0 {
		t.Fatal("Pearson on mismatched lengths")
	}
	if Cosine([]float64{1, 2}, []float64{1}) != 0 {
		t.Fatal("Cosine on mismatched lengths")
	}
}
