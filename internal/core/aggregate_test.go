package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/detector"
	"repro/internal/filter"
	"repro/internal/rating"
	"repro/internal/trust"
)

// driveTrust pushes a rater's trust up (honest) or down (suspicious)
// through real processing on a dedicated object.
func driveTrust(t *testing.T, s *System, id rating.RaterID, obj rating.ObjectID, up bool) {
	t.Helper()
	for i := 0; i < 40; i++ {
		v := 0.9 // constant stream: flagged, trust falls
		if up {
			v = []float64{0.1, 0.9, 0.3, 0.7, 0.5, 0.8, 0.2, 0.6}[i%8] // noisy: unpredictable
		}
		if err := s.Submit(rating.Rating{Rater: id, Object: obj, Value: v, Time: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestAggregateDropsMaliciousBeforeFilter verifies the hardening found
// by the ablation-attacks study: a detected clique must not be able to
// steer the Beta filter's majority estimate at aggregation time.
func TestAggregateDropsMaliciousBeforeFilter(t *testing.T) {
	s := newTestSystem(t, Config{
		Filter:   filter.Beta{Q: 0.2},
		Detector: detector.Config{Threshold: 0.05},
	})
	// Honest rater 1 (trusted after processing), clique rater 2
	// (distrusted after processing).
	driveTrust(t, s, 1, 100, true)
	driveTrust(t, s, 2, 200, false)
	if _, err := s.ProcessWindow(0, 40); err != nil {
		t.Fatal(err)
	}
	if s.TrustIn(1) <= 0.5 || s.TrustIn(2) >= 0.5 {
		t.Fatalf("trust setup failed: %g / %g", s.TrustIn(1), s.TrustIn(2))
	}

	// Object 300: honest rater 1 rates 0.2; clique floods 0.9s from
	// rater 2. Without the pre-drop, the clique majority would make the
	// filter reject rater 1's 0.2; with it, the clique is invisible to
	// the filter and the aggregate follows rater 1.
	if err := s.Submit(rating.Rating{Rater: 1, Object: 300, Value: 0.2, Time: 50}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.Submit(rating.Rating{Rater: 2, Object: 300, Value: 0.9, Time: 50 + float64(i)/100}); err != nil {
			t.Fatal(err)
		}
	}
	agg, err := s.Aggregate(300)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(agg.Value-0.2) > 1e-9 {
		t.Fatalf("aggregate = %+v, want 0.2 (clique neutralized)", agg)
	}
	if agg.Used != 1 {
		t.Fatalf("used %d raters, want 1", agg.Used)
	}
}

// TestAggregateAllMaliciousFallsBack covers the degenerate case: when
// every rater of an object is distrusted, the aggregate still answers
// (via the fallback) instead of erroring.
func TestAggregateAllMaliciousFallsBack(t *testing.T) {
	s := newTestSystem(t, Config{
		Filter:   filter.Noop{},
		Detector: detector.Config{Threshold: 0.05},
	})
	driveTrust(t, s, 2, 200, false)
	if _, err := s.ProcessWindow(0, 40); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(rating.Rating{Rater: 2, Object: 300, Value: 0.9, Time: 50}); err != nil {
		t.Fatal(err)
	}
	agg, err := s.Aggregate(300)
	if err != nil {
		t.Fatal(err)
	}
	if !agg.FellBack || agg.Value != 0.9 {
		t.Fatalf("aggregate = %+v, want fallback over the only rating", agg)
	}
}

// TestAggregateNeutralRatersSurviveDrop: fresh raters sit exactly at
// 0.5 and must NOT be pre-dropped (>= threshold keeps them); they are
// excluded by M3's floor but still feed the filter and fallback.
func TestAggregateNeutralRatersSurviveDrop(t *testing.T) {
	s := newTestSystem(t, Config{Filter: filter.Noop{}})
	_ = s.Submit(rating.Rating{Rater: 1, Object: 1, Value: 0.4, Time: 1})
	_ = s.Submit(rating.Rating{Rater: 2, Object: 1, Value: 0.6, Time: 2})
	agg, err := s.Aggregate(1)
	if err != nil {
		t.Fatal(err)
	}
	if !agg.FellBack || agg.Used != 2 || math.Abs(agg.Value-0.5) > 1e-9 {
		t.Fatalf("aggregate = %+v", agg)
	}
}

// TestAggregateCustomMaliciousThreshold: the pre-drop respects the
// configured threshold.
func TestAggregateCustomMaliciousThreshold(t *testing.T) {
	cfg := Config{Filter: filter.Noop{}}
	cfg.Trust.MaliciousThreshold = 0.4
	s := newTestSystem(t, cfg)
	driveTrust(t, s, 2, 200, false)
	if _, err := s.ProcessWindow(0, 40); err != nil {
		t.Fatal(err)
	}
	tr := s.TrustIn(2)
	if tr >= 0.4 {
		t.Skipf("trust %g not below custom threshold; scenario too weak", tr)
	}
	_ = s.Submit(rating.Rating{Rater: 2, Object: 300, Value: 0.9, Time: 50})
	_ = s.Submit(rating.Rating{Rater: 3, Object: 300, Value: 0.3, Time: 51})
	agg, err := s.Aggregate(300)
	if err != nil {
		t.Fatal(err)
	}
	// Rater 2 dropped; rater 3 neutral -> fallback over 0.3 alone.
	if math.Abs(agg.Value-0.3) > 1e-9 || agg.Used != 1 {
		t.Fatalf("aggregate = %+v", agg)
	}
}

func TestAggregateWindow(t *testing.T) {
	s := newTestSystem(t, Config{Filter: filter.Noop{}})
	// Quality shift: early ratings 0.3, recent ratings 0.9.
	for i := 0; i < 5; i++ {
		_ = s.Submit(rating.Rating{Rater: rating.RaterID(i), Object: 1, Value: 0.3, Time: float64(i)})
		_ = s.Submit(rating.Rating{Rater: rating.RaterID(10 + i), Object: 1, Value: 0.9, Time: 30 + float64(i)})
	}
	all, err := s.Aggregate(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(all.Value-0.6) > 1e-9 {
		t.Fatalf("all-time aggregate = %g", all.Value)
	}
	recent, err := s.AggregateWindow(1, 30, 60)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(recent.Value-0.9) > 1e-9 || recent.Used != 5 {
		t.Fatalf("recent aggregate = %+v", recent)
	}
	early, err := s.AggregateWindow(1, 0, 30)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(early.Value-0.3) > 1e-9 {
		t.Fatalf("early aggregate = %+v", early)
	}
}

func TestAggregateWindowValidation(t *testing.T) {
	s := newTestSystem(t, Config{})
	if _, err := s.AggregateWindow(1, 10, 10); err == nil {
		t.Fatal("empty window accepted")
	}
	_ = s.Submit(rating.Rating{Rater: 1, Object: 1, Value: 0.5, Time: 5})
	// A window containing no ratings surfaces ErrNoRatings.
	if _, err := s.AggregateWindow(1, 100, 200); !errors.Is(err, trust.ErrNoRatings) {
		t.Fatalf("err = %v", err)
	}
}
