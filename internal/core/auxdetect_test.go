package core

import (
	"testing"

	"repro/internal/collusion"
	"repro/internal/detector"
	"repro/internal/randx"
	"repro/internal/rating"
)

// auxWorkload: persistent honest raters tracking true quality per
// object plus a clique pushing an alternating shared bias — the shape
// the collusion graph is built to catch.
func auxWorkload(seed int64) ([]rating.Rating, []rating.RaterID) {
	rng := randx.New(seed)
	quality := []float64{0.3, 0.6, 0.8}
	var rs []rating.Rating
	for id := 0; id < 10; id++ {
		for day := 0; day < 30; day += 5 {
			for obj, q := range quality {
				rs = append(rs, rating.Rating{
					Rater:  rating.RaterID(id),
					Object: rating.ObjectID(obj),
					Value:  clamp01(q + rng.Normal(0, 0.1)),
					Time:   float64(day) + rng.Uniform(0, 5),
				})
			}
		}
	}
	clique := []rating.RaterID{100, 101, 102}
	for _, id := range clique {
		for day := 0; day < 30; day += 5 {
			bias := 0.35
			if (day/10)%2 == 1 {
				bias = -0.35
			}
			for obj, q := range quality {
				rs = append(rs, rating.Rating{
					Rater:  id,
					Object: rating.ObjectID(obj),
					Value:  clamp01(q + bias + rng.Normal(0, 0.02)),
					Time:   float64(day) + rng.Uniform(0, 5),
				})
			}
		}
	}
	return rs, clique
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func TestChargeWindowChargesClique(t *testing.T) {
	rs, clique := auxWorkload(9)
	sys, err := NewSystem(Config{
		Collusion: &collusion.Config{MinCoRatings: 2, MinGroupSize: 3},
		Iterative: &detector.IterativeConfig{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SubmitAll(rs); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.ProcessWindow(0, 30)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range clique {
		o := rep.Observations[id]
		if o.SuspicionMass == 0 {
			t.Fatalf("clique rater %d got no suspicion mass: %+v", id, o)
		}
		if o.Suspicious == 0 {
			t.Fatalf("clique rater %d got no suspicious count: %+v", id, o)
		}
		if o.Filtered+o.Suspicious > o.N {
			t.Fatalf("clique rater %d violates f+s<=n: %+v", id, o)
		}
		if sys.TrustIn(id) >= sys.TrustIn(0) {
			t.Fatalf("clique rater %d trust %g not below honest %g",
				id, sys.TrustIn(id), sys.TrustIn(0))
		}
	}
}

func TestChargeWindowDisabledIsNoOp(t *testing.T) {
	rs, _ := auxWorkload(10)
	base, err := NewSystem(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := base.SubmitAll(rs); err != nil {
		t.Fatal(err)
	}
	want, err := base.ProcessWindow(0, 30)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: the baseline config (nil aux detectors) must produce the
	// exact observations the pre-aux pipeline did — here approximated by
	// ChargeWindow being a strict no-op on the same scans.
	pipe, err := NewPipeline(Config{})
	if err != nil {
		t.Fatal(err)
	}
	obsCopy := make(map[rating.RaterID]float64, len(want.Observations))
	for id, o := range want.Observations {
		obsCopy[id] = o.SuspicionMass
	}
	if err := pipe.ChargeWindow(want.Observations, nil); err != nil {
		t.Fatal(err)
	}
	for id, o := range want.Observations {
		if o.SuspicionMass != obsCopy[id] {
			t.Fatalf("no-op ChargeWindow moved rater %d mass", id)
		}
	}
}
