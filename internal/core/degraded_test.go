package core

import (
	"strings"
	"testing"

	"repro/internal/rating"
	"repro/internal/signal"
)

// With a deliberately broken AR estimator, every object whose windows
// are large enough to fit fails detection. The maintenance window must
// survive anyway: the failing object is reported degraded and falls
// back to filter-only evidence, while objects that never reach the
// estimator (too few ratings per window) stay clean.
func TestProcessWindowDegradesPerObject(t *testing.T) {
	sys, err := NewSystem(Config{})
	if err != nil {
		t.Fatal(err)
	}
	sys.cfg.Detector.Signal.Method = signal.Method(99) // always-failing fit

	// Object 1: dense, so the detector attempts (and fails) a fit.
	for i := 0; i < 40; i++ {
		if err := sys.Submit(rating.Rating{
			Rater: rating.RaterID(i % 5), Object: 1,
			Value: float64(i%10) / 10, Time: float64(i) * 0.25,
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Object 2: too sparse for any window to be fitted.
	for i := 0; i < 3; i++ {
		if err := sys.Submit(rating.Rating{
			Rater: rating.RaterID(10 + i), Object: 2,
			Value: 0.9, Time: float64(i) * 3,
		}); err != nil {
			t.Fatal(err)
		}
	}

	rep, err := sys.ProcessWindow(0, 10)
	if err != nil {
		t.Fatalf("window failed instead of degrading: %v", err)
	}
	if len(rep.Objects) != 2 {
		t.Fatalf("objects in report: %d", len(rep.Objects))
	}
	byObj := map[rating.ObjectID]ObjectReport{}
	for _, o := range rep.Objects {
		byObj[o.Object] = o
	}
	deg := byObj[1]
	if !deg.Degraded || !strings.Contains(deg.DetectorError, "object 1") {
		t.Fatalf("object 1 not degraded: %+v", deg)
	}
	if len(deg.Detection.Windows) != 0 {
		t.Fatal("degraded object still carries detection windows")
	}
	if ok := byObj[2]; ok.Degraded || ok.DetectorError != "" {
		t.Fatalf("object 2 wrongly degraded: %+v", ok)
	}
	if got := rep.DegradedObjects(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("DegradedObjects = %v", got)
	}

	// Filter-only evidence still reached Procedure 2: every rater of
	// the degraded object has an observation with n > 0 and no
	// suspicion mass.
	for r := 0; r < 5; r++ {
		obs, ok := rep.Observations[rating.RaterID(r)]
		if !ok || obs.N == 0 {
			t.Fatalf("rater %d lost its observations: %+v", r, obs)
		}
		if obs.Suspicious != 0 || obs.SuspicionMass != 0 {
			t.Fatalf("degraded object produced suspicion: %+v", obs)
		}
	}
	// And the trust manager was updated (records exist for raters).
	if tr := sys.TrustIn(0); tr <= 0 || tr > 1 {
		t.Fatalf("trust after degraded window: %g", tr)
	}
}

// A healthy configuration must behave exactly as before: no degraded
// objects, detection reports intact.
func TestProcessWindowNoDegradationOnHealthyFit(t *testing.T) {
	sys, err := NewSystem(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := sys.Submit(rating.Rating{
			Rater: rating.RaterID(i % 5), Object: 7,
			Value: float64(i%10) / 10, Time: float64(i) * 0.25,
		}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := sys.ProcessWindow(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(rep.DegradedObjects()); n != 0 {
		t.Fatalf("%d degraded objects on healthy config", n)
	}
	if len(rep.Objects) != 1 || len(rep.Objects[0].Detection.Windows) == 0 {
		t.Fatalf("detection windows missing: %+v", rep.Objects)
	}
}
