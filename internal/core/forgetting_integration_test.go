package core

import (
	"testing"

	"repro/internal/detector"
	"repro/internal/randx"
	"repro/internal/rating"
	"repro/internal/trust"
)

// buildTurncoatTrace builds many months of one rater's activity: honest
// noisy ratings (each month on a fresh object) for the first
// `honestMonths`, then constant clique-style ratings.
func buildTurncoatTrace(honestMonths, colludeMonths int) []rating.Rating {
	rng := randx.New(5)
	var rs []rating.Rating
	month := 0
	emit := func(value func() float64) {
		start := float64(month * 30)
		for i := 0; i < 30; i++ {
			rs = append(rs, rating.Rating{
				Rater:  1,
				Object: rating.ObjectID(month + 1),
				Value:  value(),
				Time:   start + float64(i),
			})
		}
		month++
	}
	for m := 0; m < honestMonths; m++ {
		emit(func() float64 { return randx.Quantize(rng.NormalVar(0.6, 0.04), 11, true) })
	}
	for m := 0; m < colludeMonths; m++ {
		emit(func() float64 { return 0.9 })
	}
	return rs
}

// monthsToFlag processes the trace month by month and returns how many
// collusion months pass before the rater drops below the malicious
// line (-1 if never).
func monthsToFlag(t *testing.T, forgetting float64, honestMonths, colludeMonths int) int {
	t.Helper()
	sys, err := NewSystem(Config{
		Detector: detector.Config{Threshold: 0.05},
		Trust:    trust.ManagerConfig{Forgetting: forgetting},
	})
	if err != nil {
		t.Fatal(err)
	}
	rs := buildTurncoatTrace(honestMonths, colludeMonths)
	if err := sys.SubmitAll(rs); err != nil {
		t.Fatal(err)
	}
	total := honestMonths + colludeMonths
	for m := 0; m < total; m++ {
		start := float64(m * 30)
		if _, err := sys.ProcessWindow(start, start+30); err != nil {
			t.Fatal(err)
		}
		if m >= honestMonths && sys.TrustIn(1) < 0.5 {
			return m - honestMonths + 1
		}
	}
	return -1
}

// TestForgettingCatchesTurncoatFaster is the end-to-end version of the
// ablation-forgetting study: a rater with a long honest history turns
// colluder; with record-maintenance forgetting configured the full
// system flags them strictly sooner than without.
func TestForgettingCatchesTurncoatFaster(t *testing.T) {
	const honestMonths, colludeMonths = 8, 20
	without := monthsToFlag(t, 1.0, honestMonths, colludeMonths)
	with := monthsToFlag(t, 0.97, honestMonths, colludeMonths)
	if with < 0 {
		t.Fatal("forgetting system never flagged the turncoat")
	}
	if without >= 0 && with >= without {
		t.Fatalf("forgetting (%d months) not faster than none (%d months)", with, without)
	}
	if without < 0 {
		// Even better: the memoryful system never catches up within the
		// horizon while the forgetting one does.
		t.Logf("no-forgetting system never flagged within %d months; forgetting took %d", colludeMonths, with)
	}
}

// TestForgettingStableForHonest: forgetting must not destabilize a
// consistently honest rater.
func TestForgettingStableForHonest(t *testing.T) {
	sys, err := NewSystem(Config{
		Detector: detector.Config{Threshold: 0.05},
		Trust:    trust.ManagerConfig{Forgetting: 0.97},
	})
	if err != nil {
		t.Fatal(err)
	}
	rs := buildTurncoatTrace(10, 0)
	if err := sys.SubmitAll(rs); err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 10; m++ {
		start := float64(m * 30)
		if _, err := sys.ProcessWindow(start, start+30); err != nil {
			t.Fatal(err)
		}
	}
	if tr := sys.TrustIn(1); tr < 0.8 {
		t.Fatalf("honest trust %g under forgetting", tr)
	}
}
