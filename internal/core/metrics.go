package core

import (
	"repro/internal/telemetry"
)

// Stage names used by the maintenance-pipeline spans, mirroring the
// paper's Procedure 1 + Procedure 2 structure.
const (
	// StageFilter is feature extraction I: the rating filter's pass
	// over one object's window.
	StageFilter = "filter"
	// StageARFit is feature extraction II: Procedure 1's windowed AR
	// fits and model-error scan for one object.
	StageARFit = "ar_fit"
	// StageCharge folds filter and detector evidence into per-rater
	// Procedure 2 observations.
	StageCharge = "charge"
	// StageTrustUpdate applies the observations to the trust manager.
	StageTrustUpdate = "trust_update"
)

// Metrics is the detection pipeline's telemetry surface. A nil
// *Metrics (the default Config) disables instrumentation.
type Metrics struct {
	// Pipeline times the named stages above; per-object stages
	// (filter, ar_fit) are observed once per object, the others once
	// per maintenance window.
	Pipeline *telemetry.Pipeline
	// WindowSeconds times whole ProcessWindow calls.
	WindowSeconds *telemetry.Histogram
	// WindowObjects observes how many objects each window touched.
	WindowObjects *telemetry.Histogram
	// RatingsConsidered counts ratings that fell inside a processed
	// window (pre-filter).
	RatingsConsidered *telemetry.Counter
	// RatingsFiltered counts ratings the filter rejected.
	RatingsFiltered *telemetry.Counter
	// SuspiciousWindows counts detector windows flagged suspicious.
	SuspiciousWindows *telemetry.Counter
	// DegradedObjects counts objects whose detector pass failed and
	// fell back to filter-only evidence.
	DegradedObjects *telemetry.Counter
	// WindowsProcessed counts completed maintenance windows.
	WindowsProcessed *telemetry.Counter
}

// NewMetrics registers the pipeline metric family on r (nil r gives a
// Metrics of nil fields, which is still safe to install).
func NewMetrics(r *telemetry.Registry) *Metrics {
	return &Metrics{
		Pipeline:          telemetry.NewPipeline(r, "pipeline_stage_seconds", "detector pipeline stage latency"),
		WindowSeconds:     r.Histogram("pipeline_window_seconds", "ProcessWindow wall time", nil),
		WindowObjects:     r.Histogram("pipeline_window_objects", "objects per maintenance window", []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}),
		RatingsConsidered: r.Counter("pipeline_ratings_considered_total", "ratings inside processed windows"),
		RatingsFiltered:   r.Counter("pipeline_ratings_filtered_total", "ratings rejected by the filter"),
		SuspiciousWindows: r.Counter("pipeline_suspicious_windows_total", "detector windows flagged suspicious"),
		DegradedObjects:   r.Counter("pipeline_degraded_objects_total", "objects degraded to filter-only evidence"),
		WindowsProcessed:  r.Counter("pipeline_windows_total", "completed maintenance windows"),
	}
}

// Nil-safe accessors: the System calls these unconditionally; with a
// nil *Metrics each is one branch and no clock read.

func (m *Metrics) stage(name string) telemetry.Span {
	if m == nil {
		return telemetry.Span{}
	}
	return m.Pipeline.Start(name)
}

func (m *Metrics) startWindow() telemetry.Span {
	if m == nil {
		return telemetry.Span{}
	}
	return m.WindowSeconds.Start()
}

func (m *Metrics) windowDone(rep *ProcessReport) {
	if m == nil {
		return
	}
	m.WindowsProcessed.Inc()
	m.WindowObjects.Observe(float64(len(rep.Objects)))
	for _, o := range rep.Objects {
		m.RatingsConsidered.Add(uint64(o.Considered))
		m.RatingsFiltered.Add(uint64(o.Filtered))
		m.SuspiciousWindows.Add(uint64(len(o.Detection.SuspiciousWindows())))
		if o.Degraded {
			m.DegradedObjects.Inc()
		}
	}
}
