package core

import (
	"strings"
	"testing"

	"repro/internal/rating"
	"repro/internal/randx"
	"repro/internal/telemetry"
)

// TestProcessWindowMetrics runs a maintenance window on an
// instrumented system and checks the stage spans and per-window
// counters land in the registry.
func TestProcessWindowMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	sys, err := NewSystem(Config{Metrics: NewMetrics(reg)})
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(3)
	for i := 0; i < 400; i++ {
		r := rating.Rating{
			Rater:  rating.RaterID(i % 40),
			Object: rating.ObjectID(i % 2),
			Value:  randx.Quantize(rng.NormalVar(0.7, 0.04), 11, true),
			Time:   float64(i) * 0.15,
		}
		if err := sys.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := sys.ProcessWindow(0, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Objects) != 2 {
		t.Fatalf("objects = %d", len(rep.Objects))
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`pipeline_stage_seconds_count{stage="filter"} 2`,
		`pipeline_stage_seconds_count{stage="ar_fit"} 2`,
		`pipeline_stage_seconds_count{stage="charge"} 1`,
		`pipeline_stage_seconds_count{stage="trust_update"} 1`,
		"pipeline_window_seconds_count 1",
		"pipeline_windows_total 1",
		"pipeline_ratings_considered_total 400",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q in:\n%s", want, out)
		}
	}
}

// TestProcessWindowMetricsParallelMatchesSerial reruns the same
// instrumented window at several worker counts: reports must stay
// bit-identical and the per-object stage counts unchanged (histograms
// are concurrency-safe, so spans from worker goroutines all land).
func TestProcessWindowMetricsParallelMatchesSerial(t *testing.T) {
	build := func(workers int, m *Metrics) ProcessReport {
		sys, err := NewSystem(Config{Workers: workers, Metrics: m})
		if err != nil {
			t.Fatal(err)
		}
		rng := randx.New(11)
		for i := 0; i < 600; i++ {
			r := rating.Rating{
				Rater:  rating.RaterID(i % 30),
				Object: rating.ObjectID(i % 6),
				Value:  randx.Quantize(rng.NormalVar(0.6, 0.05), 11, true),
				Time:   float64(i) * 0.1,
			}
			if err := sys.Submit(r); err != nil {
				t.Fatal(err)
			}
		}
		rep, err := sys.ProcessWindow(0, 60)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	base := build(1, nil)
	for _, workers := range []int{1, 4} {
		reg := telemetry.NewRegistry()
		m := NewMetrics(reg)
		rep := build(workers, m)
		if len(rep.Objects) != len(base.Objects) {
			t.Fatalf("workers=%d: %d objects vs %d", workers, len(rep.Objects), len(base.Objects))
		}
		for i := range rep.Objects {
			if rep.Objects[i].Object != base.Objects[i].Object ||
				rep.Objects[i].Filtered != base.Objects[i].Filtered {
				t.Fatalf("workers=%d: object %d diverged", workers, i)
			}
		}
		var sb strings.Builder
		if err := reg.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(sb.String(), `pipeline_stage_seconds_count{stage="ar_fit"} 6`) {
			t.Errorf("workers=%d: ar_fit span count wrong:\n%s", workers, sb.String())
		}
	}
}
