package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/collusion"
	"repro/internal/detector"
	"repro/internal/rating"
	"repro/internal/trust"
)

// Pipeline is the stateless per-object detection and aggregation
// machinery of a System, factored out so a sharded engine can run the
// exact same arithmetic per shard and still produce bit-identical
// results: every float operation an object's maintenance scan or
// aggregation performs lives here, and the callers only decide which
// objects to scan and in which order to fold the evidence.
type Pipeline struct {
	cfg Config
}

// NewPipeline validates cfg and returns the pipeline. The same
// defaulting rules as NewSystem apply.
func NewPipeline(cfg Config) (*Pipeline, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Detector.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if cfg.Collusion != nil {
		if err := cfg.Collusion.Validate(); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	if cfg.Iterative != nil {
		if err := cfg.Iterative.Validate(); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	return &Pipeline{cfg: cfg}, nil
}

// Config returns the defaulted configuration the pipeline runs with.
func (p *Pipeline) Config() Config { return p.cfg }

// ObjectScan is one object's maintenance-window outcome: the report
// plus the raw in-window ratings Procedure 2 charges n from. OK is
// false when the object had no ratings in the window.
type ObjectScan struct {
	Report ObjectReport
	Window []rating.Rating
	OK     bool
}

// ScanObject runs one object's share of a maintenance window over
// [start, end): restrict `all` (the object's time-sorted ratings) to
// the window, split normal from abnormal with the filter, and scan the
// normal ones with Procedure 1. A failed detector fit degrades the
// object to filter-only evidence instead of failing the scan. ws may
// be nil (a workspace is allocated per call).
func (p *Pipeline) ScanObject(ws *detector.Workspace, obj rating.ObjectID, all []rating.Rating, start, end float64) (ObjectScan, error) {
	var window []rating.Rating
	for _, r := range all {
		if r.Time >= start && r.Time < end {
			window = append(window, r)
		}
	}
	if len(window) == 0 {
		return ObjectScan{}, nil
	}

	filterSpan := p.cfg.Metrics.stage(StageFilter)
	res, err := p.cfg.Filter.Apply(window)
	filterSpan.End()
	if err != nil {
		return ObjectScan{}, fmt.Errorf("core: filter object %d: %w", obj, err)
	}

	dcfg := p.cfg.Detector
	dcfg.Mode = detector.WindowByTime
	dcfg.T0 = start
	dcfg.End = end
	rep := ObjectReport{
		Object:     obj,
		Considered: len(window),
		Filtered:   len(res.Rejected),
		Accepted:   res.Accepted,
		Rejected:   res.Rejected,
	}
	fitSpan := p.cfg.Metrics.stage(StageARFit)
	det, err := detector.DetectWS(res.Accepted, dcfg, ws)
	fitSpan.End()
	if err != nil {
		// Graceful degradation: one object's failed fit (e.g. a
		// singular AR system) must not fail the whole maintenance
		// window. The object keeps its filter evidence and contributes
		// no suspicion.
		rep.Degraded = true
		rep.DetectorError = fmt.Sprintf("core: detect object %d: %v", obj, err)
	} else {
		rep.Detection = det
	}
	return ObjectScan{Report: rep, Window: window, OK: true}, nil
}

// Charge folds one object scan into the per-rater Procedure 2
// observations: n from the raw window, f from the filter, s and C from
// the detector (which only saw accepted ratings, so f + s <= n holds
// by construction). Callers must fold scans in ascending object order
// — suspicion mass is a float sum, so the fold order is part of the
// bit-exact contract.
func (p *Pipeline) Charge(obs map[rating.RaterID]trust.Observation, scan ObjectScan) {
	for _, r := range scan.Window {
		o := obs[r.Rater]
		o.N++
		obs[r.Rater] = o
	}
	for _, r := range scan.Report.Rejected {
		o := obs[r.Rater]
		o.Filtered++
		obs[r.Rater] = o
	}
	for id, stats := range scan.Report.Detection.PerRater {
		o := obs[id]
		o.Suspicious += stats.SuspiciousRatings
		o.SuspicionMass += stats.Suspicion
		obs[id] = o
	}
}

// ChargeWindow runs the configured window-level detectors — the
// collusion graph and the iterative filter, both of which need the
// whole window's cross-object evidence rather than one object's — over
// the accepted ratings of every scan and folds their suspicion into
// obs. It must be called after every per-object Charge fold: the
// clamping below relies on each rater's n and f already being final.
// A no-op when neither detector is configured, so the paper's baseline
// pipeline (and its golden fixtures) are untouched.
//
// Both callers (System and the sharded engine) pass scans in ascending
// object order and the detectors canonicalize internally, so the added
// mass is a pure function of the window's ratings — part of the
// bit-exact contract.
func (p *Pipeline) ChargeWindow(obs map[rating.RaterID]trust.Observation, scans []ObjectScan) error {
	if p.cfg.Collusion == nil && p.cfg.Iterative == nil {
		return nil
	}
	var accepted []rating.Rating
	counts := make(map[rating.RaterID]int)
	for _, scan := range scans {
		if !scan.OK {
			continue
		}
		for _, r := range scan.Report.Accepted {
			accepted = append(accepted, r)
			counts[r.Rater]++
		}
	}
	if len(accepted) == 0 {
		return nil
	}

	mass := make(map[rating.RaterID]float64)
	if p.cfg.Collusion != nil {
		rep, err := collusion.Detect(accepted, *p.cfg.Collusion)
		if err != nil {
			return fmt.Errorf("core: collusion: %w", err)
		}
		for id, s := range rep.Suspicion {
			mass[id] += s
		}
	}
	if p.cfg.Iterative != nil {
		res, err := detector.IterativeFilter(accepted, *p.cfg.Iterative)
		if err != nil {
			return fmt.Errorf("core: iterative: %w", err)
		}
		for id, s := range res.Suspicion {
			mass[id] += s
		}
	}
	if len(mass) == 0 {
		return nil
	}

	ids := make([]rating.RaterID, 0, len(mass))
	for id := range mass {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		o := obs[id]
		o.SuspicionMass += mass[id]
		// Mark the rater's accepted in-window ratings suspicious, but
		// never past Observation.Validate's f + s <= n invariant (the AR
		// detector may have claimed some already).
		inc := counts[id]
		if room := o.N - o.Filtered - o.Suspicious; inc > room {
			inc = room
		}
		if inc > 0 {
			o.Suspicious += inc
		}
		obs[id] = o
	}
	return nil
}

// AggregateRatings produces one object's trust-enhanced aggregate from
// its candidate ratings (already restricted to any time window):
// ratings from raters below the malicious-trust threshold are dropped,
// the filter removes abnormal ratings, each remaining rater
// contributes their latest rating, and the configured aggregator
// weighs them by trust (falling back per the config). trustOf supplies
// the current trust in a rater.
func (p *Pipeline) AggregateRatings(obj rating.ObjectID, all []rating.Rating, trustOf func(rating.RaterID) float64) (AggregateResult, error) {
	threshold := p.cfg.Trust.MaliciousThreshold
	if threshold == 0 {
		threshold = 0.5
	}
	kept := make([]rating.Rating, 0, len(all))
	for _, r := range all {
		if trustOf(r.Rater) >= threshold {
			kept = append(kept, r)
		}
	}
	if len(kept) == 0 {
		// Every rater is distrusted; aggregate what exists rather than
		// failing (the fallback aggregator owns this case).
		kept = all
	}
	res, err := p.cfg.Filter.Apply(kept)
	if err != nil {
		return AggregateResult{}, fmt.Errorf("core: filter object %d: %w", obj, err)
	}
	// Latest rating per rater (input is time-sorted, so overwriting
	// keeps the newest), then a deterministic rater order.
	latest := make(map[rating.RaterID]float64)
	for _, r := range res.Accepted {
		latest[r.Rater] = r.Value
	}
	ids := make([]rating.RaterID, 0, len(latest))
	for id := range latest {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	values := make([]float64, len(ids))
	trusts := make([]float64, len(ids))
	for i, id := range ids {
		values[i] = latest[id]
		trusts[i] = trustOf(id)
	}

	out := AggregateResult{Object: obj, Used: len(ids), Filtered: len(res.Rejected)}
	v, err := p.cfg.Aggregator.Aggregate(values, trusts)
	if errors.Is(err, trust.ErrNoTrustedRaters) {
		out.FellBack = true
		v, err = p.cfg.Fallback.Aggregate(values, trusts)
	}
	if err != nil {
		return AggregateResult{}, fmt.Errorf("core: aggregate object %d: %w", obj, err)
	}
	out.Value = v
	return out, nil
}
