package core

import (
	"io"
	"sync"

	"repro/internal/rating"
	"repro/internal/trust"
)

// SafeSystem wraps a System with a mutex so it can back a concurrent
// service (cmd/ratingd). Reads and writes both take the exclusive lock:
// the underlying store and trust manager interleave reads with
// incremental state, so a reader-writer split would be incorrect, and
// every operation is far from contention-bound in practice.
type SafeSystem struct {
	mu  sync.Mutex
	sys *System
}

// NewSafeSystem builds the wrapper.
func NewSafeSystem(cfg Config) (*SafeSystem, error) {
	sys, err := NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	return &SafeSystem{sys: sys}, nil
}

// Submit records one raw rating.
func (s *SafeSystem) Submit(r rating.Rating) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.Submit(r)
}

// SubmitAll records a batch of raw ratings atomically with respect to
// other callers (partial batches can still remain if a rating is
// invalid, mirroring System.SubmitAll).
func (s *SafeSystem) SubmitAll(rs []rating.Rating) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.SubmitAll(rs)
}

// Len returns the number of stored ratings.
func (s *SafeSystem) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.Len()
}

// ProcessWindow runs one maintenance pass.
func (s *SafeSystem) ProcessWindow(start, end float64) (ProcessReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.ProcessWindow(start, end)
}

// Aggregate returns the object's trust-enhanced aggregate.
func (s *SafeSystem) Aggregate(obj rating.ObjectID) (AggregateResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.Aggregate(obj)
}

// AggregateWindow returns the aggregate over ratings in [start, end).
func (s *SafeSystem) AggregateWindow(obj rating.ObjectID, start, end float64) (AggregateResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.AggregateWindow(obj, start, end)
}

// TrustIn returns the system's trust in a rater.
func (s *SafeSystem) TrustIn(id rating.RaterID) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.TrustIn(id)
}

// TrustSnapshot returns every tracked rater's trust.
func (s *SafeSystem) TrustSnapshot() map[rating.RaterID]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.TrustSnapshot()
}

// MaliciousRaters returns raters below the malicious-trust threshold.
func (s *SafeSystem) MaliciousRaters() []rating.RaterID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.MaliciousRaters()
}

// TrustDistribution bins every tracked rater's trust into the given
// sorted upper bounds (cumulative counts; see trust.Manager).
func (s *SafeSystem) TrustDistribution(bounds []float64) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.TrustDistribution(bounds)
}

// RaterCount returns the number of tracked trust records.
func (s *SafeSystem) RaterCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.RaterCount()
}

// RecordRecommendations computes indirect trust from recommendations.
func (s *SafeSystem) RecordRecommendations(about rating.RaterID, recs []trust.Recommendation) (float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.RecordRecommendations(about, recs)
}

// WriteSnapshot serializes the state. The lock is held only while a
// point-in-time copy of the state is captured; the (much slower) JSON
// encoding runs outside the critical section, so snapshots and WAL
// compaction don't stall ingest for the duration of serialization.
func (s *SafeSystem) WriteSnapshot(w io.Writer) error {
	s.mu.Lock()
	view := s.sys.View()
	s.mu.Unlock()
	return view.Encode(w)
}

// LoadSnapshot replaces the state while holding the lock.
func (s *SafeSystem) LoadSnapshot(r io.Reader) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.LoadSnapshot(r)
}
