package core

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/detector"
	"repro/internal/rating"
)

func TestSafeSystemBasics(t *testing.T) {
	s, err := NewSafeSystem(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(rating.Rating{Rater: 1, Object: 1, Value: 0.5, Time: 1}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.TrustIn(1) != 0.5 {
		t.Fatal("trust")
	}
}

func TestNewSafeSystemValidation(t *testing.T) {
	if _, err := NewSafeSystem(Config{Detector: detector.Config{Order: -1}}); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestSafeSystemConcurrentUse(t *testing.T) {
	// Hammer the wrapper from many goroutines; run with -race this
	// verifies the locking discipline.
	s, err := NewSafeSystem(Config{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				r := rating.Rating{
					Rater:  rating.RaterID(w*1000 + i),
					Object: rating.ObjectID(i % 3),
					Value:  0.5,
					Time:   float64(i),
				}
				if err := s.Submit(r); err != nil {
					t.Error(err)
					return
				}
				_ = s.TrustIn(r.Rater)
				_, _ = s.Aggregate(r.Object)
				_ = s.TrustSnapshot()
				_ = s.MaliciousRaters()
			}
		}()
	}
	// Concurrent maintenance and snapshots.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, err := s.ProcessWindow(0, 60); err != nil {
				t.Error(err)
				return
			}
			var buf bytes.Buffer
			if err := s.WriteSnapshot(&buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if s.Len() != workers*50 {
		t.Fatalf("Len = %d, want %d", s.Len(), workers*50)
	}
}

func TestSafeSystemSnapshotRoundTrip(t *testing.T) {
	s, err := NewSafeSystem(Config{})
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Submit(rating.Rating{Rater: 1, Object: 1, Value: 0.6, Time: 1})
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := NewSafeSystem(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 1 {
		t.Fatalf("Len = %d", restored.Len())
	}
}
