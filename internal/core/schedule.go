package core

import (
	"fmt"
)

// Scheduler drives a System's maintenance on a fixed cadence without
// the caller tracking window boundaries — the online shape of the §IV
// "process once per month" loop. Feed it the current (simulation or
// wall-clock-derived) time via AdvanceTo and it runs every complete
// window that has elapsed.
//
// The scheduler is as (un)safe for concurrent use as the system it
// wraps: pair it with SafeSystem externally if needed.
type Scheduler struct {
	sys *System
	// width is the maintenance window length in days.
	width float64
	// next is the start of the next unprocessed window.
	next float64
}

// NewScheduler wraps sys with a maintenance cadence of width days
// starting at start.
func NewScheduler(sys *System, start, width float64) (*Scheduler, error) {
	if sys == nil {
		return nil, fmt.Errorf("core: scheduler needs a system")
	}
	if width <= 0 {
		return nil, fmt.Errorf("core: scheduler width %g", width)
	}
	return &Scheduler{sys: sys, width: width, next: start}, nil
}

// Pending returns the start of the next unprocessed window.
func (s *Scheduler) Pending() float64 { return s.next }

// AdvanceTo processes every maintenance window that ends at or before
// now, in order, and returns their reports. A now before the next
// window boundary is a no-op. Processing stops at the first error; the
// windows already processed stay processed (their reports are returned
// alongside the error).
func (s *Scheduler) AdvanceTo(now float64) ([]ProcessReport, error) {
	var reports []ProcessReport
	for s.next+s.width <= now {
		rep, err := s.sys.ProcessWindow(s.next, s.next+s.width)
		if err != nil {
			return reports, fmt.Errorf("core: scheduler window [%g,%g): %w", s.next, s.next+s.width, err)
		}
		s.next += s.width
		reports = append(reports, rep)
	}
	return reports, nil
}
