package core

import (
	"testing"

	"repro/internal/rating"
)

func TestNewSchedulerValidation(t *testing.T) {
	sys := newTestSystem(t, Config{})
	if _, err := NewScheduler(nil, 0, 30); err == nil {
		t.Fatal("nil system accepted")
	}
	if _, err := NewScheduler(sys, 0, 0); err == nil {
		t.Fatal("zero width accepted")
	}
	if _, err := NewScheduler(sys, 0, -5); err == nil {
		t.Fatal("negative width accepted")
	}
}

func TestSchedulerProcessesCompleteWindows(t *testing.T) {
	sys := newTestSystem(t, Config{})
	for i := 0; i < 90; i++ {
		if err := sys.Submit(rating.Rating{
			Rater: rating.RaterID(i), Object: 1, Value: 0.7, Time: float64(i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	sched, err := NewScheduler(sys, 0, 30)
	if err != nil {
		t.Fatal(err)
	}

	// Mid-window: nothing to do.
	reports, err := sched.AdvanceTo(29)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 0 || sched.Pending() != 0 {
		t.Fatalf("early advance: %d reports, pending %g", len(reports), sched.Pending())
	}

	// Exactly one boundary.
	reports, err = sched.AdvanceTo(30)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || reports[0].Start != 0 || reports[0].End != 30 {
		t.Fatalf("reports = %+v", reports)
	}
	if sched.Pending() != 30 {
		t.Fatalf("pending = %g", sched.Pending())
	}

	// Jumping far ahead catches up every missed window.
	reports, err = sched.AdvanceTo(95)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("%d catch-up reports", len(reports))
	}
	if reports[1].Start != 60 || sched.Pending() != 90 {
		t.Fatalf("windows misaligned: %+v, pending %g", reports[1], sched.Pending())
	}

	// Time never re-processed.
	reports, err = sched.AdvanceTo(95)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 0 {
		t.Fatal("window re-processed")
	}
}

func TestSchedulerMatchesManualWindows(t *testing.T) {
	// Scheduler-driven processing must produce identical trust to the
	// manual monthly loop.
	build := func(useScheduler bool) map[rating.RaterID]float64 {
		sys := newTestSystem(t, Config{})
		for i := 0; i < 120; i++ {
			_ = sys.Submit(rating.Rating{
				Rater: rating.RaterID(i % 10), Object: 1, Value: 0.7, Time: float64(i) / 2,
			})
		}
		if useScheduler {
			sched, err := NewScheduler(sys, 0, 30)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sched.AdvanceTo(60); err != nil {
				t.Fatal(err)
			}
		} else {
			for _, w := range [][2]float64{{0, 30}, {30, 60}} {
				if _, err := sys.ProcessWindow(w[0], w[1]); err != nil {
					t.Fatal(err)
				}
			}
		}
		return sys.TrustSnapshot()
	}
	a, b := build(true), build(false)
	if len(a) != len(b) {
		t.Fatalf("snapshot sizes %d vs %d", len(a), len(b))
	}
	for id, v := range a {
		if b[id] != v {
			t.Fatalf("rater %d: %g vs %g", id, v, b[id])
		}
	}
}

func TestSchedulerNegativeStart(t *testing.T) {
	// Windows may start anywhere, including negative simulation time.
	sys := newTestSystem(t, Config{})
	sched, err := NewScheduler(sys, -30, 30)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := sched.AdvanceTo(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || reports[0].Start != -30 {
		t.Fatalf("reports = %+v", reports)
	}
}
