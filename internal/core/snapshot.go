package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/rating"
	"repro/internal/trust"
)

// snapshotVersion is bumped on incompatible snapshot-format changes.
const snapshotVersion = 1

// ErrSnapshotVersion is returned when loading a snapshot written by an
// incompatible format version.
var ErrSnapshotVersion = errors.New("core: unsupported snapshot version")

// snapshot is the on-disk envelope. Ratings and trust records are
// stored exhaustively; configuration is NOT persisted — the caller
// reconstructs the System with its own Config, so operational tuning
// (thresholds, filters) can change across restarts without invalidating
// the state.
type snapshot struct {
	Version int              `json:"version"`
	Ratings []snapshotRating `json:"ratings"`
	Records []snapshotRecord `json:"records"`
}

type snapshotRating struct {
	Rater  int     `json:"rater"`
	Object int     `json:"object"`
	Value  float64 `json:"value"`
	Time   float64 `json:"time"`
}

type snapshotRecord struct {
	Rater      int     `json:"rater"`
	S          float64 `json:"s"`
	F          float64 `json:"f"`
	LastUpdate float64 `json:"lastUpdate"`
}

// WriteSnapshot serializes the system's full state (ratings + trust
// records) as JSON.
func (s *System) WriteSnapshot(w io.Writer) error {
	snap := snapshot{Version: snapshotVersion}
	for _, obj := range s.store.Objects() {
		rs, err := s.store.ForObject(obj)
		if err != nil {
			return fmt.Errorf("core: snapshot: %w", err)
		}
		for _, r := range rs {
			snap.Ratings = append(snap.Ratings, snapshotRating{
				Rater:  int(r.Rater),
				Object: int(r.Object),
				Value:  r.Value,
				Time:   r.Time,
			})
		}
	}
	for id, rec := range s.manager.Records() {
		snap.Records = append(snap.Records, snapshotRecord{
			Rater:      int(id),
			S:          rec.S,
			F:          rec.F,
			LastUpdate: rec.LastUpdate,
		})
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(snap); err != nil {
		return fmt.Errorf("core: snapshot encode: %w", err)
	}
	return nil
}

// LoadSnapshot replaces the system's state with a snapshot previously
// produced by WriteSnapshot. The system's configuration is kept. On
// error the system's previous state is preserved.
func (s *System) LoadSnapshot(r io.Reader) error {
	var snap snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&snap); err != nil {
		return fmt.Errorf("core: snapshot decode: %w", err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("core: snapshot version %d: %w", snap.Version, ErrSnapshotVersion)
	}

	store := rating.NewStore()
	for i, sr := range snap.Ratings {
		if err := store.Add(rating.Rating{
			Rater:  rating.RaterID(sr.Rater),
			Object: rating.ObjectID(sr.Object),
			Value:  sr.Value,
			Time:   sr.Time,
		}); err != nil {
			return fmt.Errorf("core: snapshot rating %d: %w", i, err)
		}
	}
	records := make(map[rating.RaterID]trust.Record, len(snap.Records))
	for _, rec := range snap.Records {
		records[rating.RaterID(rec.Rater)] = trust.Record{
			S:          rec.S,
			F:          rec.F,
			LastUpdate: rec.LastUpdate,
		}
	}
	manager, err := trust.NewManager(s.cfg.Trust)
	if err != nil {
		return fmt.Errorf("core: snapshot: %w", err)
	}
	if err := manager.Restore(records); err != nil {
		return fmt.Errorf("core: snapshot: %w", err)
	}

	s.store = store
	s.manager = manager
	return nil
}
