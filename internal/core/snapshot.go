package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/rating"
	"repro/internal/trust"
)

// snapshotVersion is bumped on incompatible snapshot-format changes.
const snapshotVersion = 1

// ErrSnapshotVersion is returned when loading a snapshot written by an
// incompatible format version.
var ErrSnapshotVersion = errors.New("core: unsupported snapshot version")

// snapshot is the on-disk envelope. Ratings and trust records are
// stored exhaustively; configuration is NOT persisted — the caller
// reconstructs the System with its own Config, so operational tuning
// (thresholds, filters) can change across restarts without invalidating
// the state.
type snapshot struct {
	Version int              `json:"version"`
	Ratings []snapshotRating `json:"ratings"`
	Records []snapshotRecord `json:"records"`
}

type snapshotRating struct {
	Rater  int     `json:"rater"`
	Object int     `json:"object"`
	Value  float64 `json:"value"`
	Time   float64 `json:"time"`
}

type snapshotRecord struct {
	Rater      int     `json:"rater"`
	S          float64 `json:"s"`
	F          float64 `json:"f"`
	LastUpdate float64 `json:"lastUpdate"`
}

// StateView is a point-in-time copy of a system's persistent state:
// every stored rating plus every trust record. Capturing a view is a
// plain memory copy, so a concurrent wrapper can take it under a
// short critical section and serialize outside the lock — snapshots
// then cost ingest only the copy, not the encoding.
type StateView struct {
	Ratings []rating.Rating
	Records map[rating.RaterID]trust.Record
}

// View captures the system's current state as a copy. The ratings are
// emitted per object in the store's first-seen object order, each
// object's ratings time-sorted — the same order WriteSnapshot has
// always serialized.
func (s *System) View() StateView {
	v := StateView{Records: s.manager.Records()}
	for _, obj := range s.store.Objects() {
		rs, err := s.store.ForObject(obj)
		if err != nil {
			continue // unreachable: Objects() only lists known objects
		}
		v.Ratings = append(v.Ratings, rs...)
	}
	return v
}

// Encode serializes the view in the snapshot wire format.
func (v StateView) Encode(w io.Writer) error {
	snap := snapshot{Version: snapshotVersion}
	for _, r := range v.Ratings {
		snap.Ratings = append(snap.Ratings, snapshotRating{
			Rater:  int(r.Rater),
			Object: int(r.Object),
			Value:  r.Value,
			Time:   r.Time,
		})
	}
	for id, rec := range v.Records {
		snap.Records = append(snap.Records, snapshotRecord{
			Rater:      int(id),
			S:          rec.S,
			F:          rec.F,
			LastUpdate: rec.LastUpdate,
		})
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(snap); err != nil {
		return fmt.Errorf("core: snapshot encode: %w", err)
	}
	return nil
}

// DecodeSnapshot parses a snapshot previously produced by Encode (or
// WriteSnapshot) back into a state view, validating the format
// version. The ratings keep their serialized order.
func DecodeSnapshot(r io.Reader) (StateView, error) {
	var snap snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&snap); err != nil {
		return StateView{}, fmt.Errorf("core: snapshot decode: %w", err)
	}
	if snap.Version != snapshotVersion {
		return StateView{}, fmt.Errorf("core: snapshot version %d: %w", snap.Version, ErrSnapshotVersion)
	}
	v := StateView{Records: make(map[rating.RaterID]trust.Record, len(snap.Records))}
	if len(snap.Ratings) > 0 {
		v.Ratings = make([]rating.Rating, len(snap.Ratings))
	}
	for i, sr := range snap.Ratings {
		v.Ratings[i] = rating.Rating{
			Rater:  rating.RaterID(sr.Rater),
			Object: rating.ObjectID(sr.Object),
			Value:  sr.Value,
			Time:   sr.Time,
		}
	}
	for _, rec := range snap.Records {
		v.Records[rating.RaterID(rec.Rater)] = trust.Record{
			S:          rec.S,
			F:          rec.F,
			LastUpdate: rec.LastUpdate,
		}
	}
	return v, nil
}

// WriteSnapshot serializes the system's full state (ratings + trust
// records) as JSON.
func (s *System) WriteSnapshot(w io.Writer) error {
	return s.View().Encode(w)
}

// LoadSnapshot replaces the system's state with a snapshot previously
// produced by WriteSnapshot. The system's configuration is kept. On
// error the system's previous state is preserved.
func (s *System) LoadSnapshot(r io.Reader) error {
	v, err := DecodeSnapshot(r)
	if err != nil {
		return err
	}

	store := rating.NewStore()
	for i, sr := range v.Ratings {
		if err := store.Add(sr); err != nil {
			return fmt.Errorf("core: snapshot rating %d: %w", i, err)
		}
	}
	manager, err := trust.NewManager(s.cfg.Trust)
	if err != nil {
		return fmt.Errorf("core: snapshot: %w", err)
	}
	if err := manager.Restore(v.Records); err != nil {
		return fmt.Errorf("core: snapshot: %w", err)
	}

	s.store = store
	s.manager = manager
	return nil
}
