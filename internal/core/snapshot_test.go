package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/detector"
	"repro/internal/randx"
	"repro/internal/rating"
	"repro/internal/sim"
)

// populatedSystem builds a system with trust state from the
// illustrative trace.
func populatedSystem(t *testing.T) *System {
	t.Helper()
	s := newTestSystem(t, Config{Detector: detector.Config{Threshold: 0.05}})
	ls, err := sim.GenerateIllustrative(randx.New(1), sim.DefaultIllustrative())
	if err != nil {
		t.Fatal(err)
	}
	submitTrace(t, s, ls)
	for _, w := range [][2]float64{{0, 30}, {30, 60}} {
		if _, err := s.ProcessWindow(w[0], w[1]); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestSnapshotRoundTrip(t *testing.T) {
	orig := populatedSystem(t)

	var buf bytes.Buffer
	if err := orig.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	restored := newTestSystem(t, Config{Detector: detector.Config{Threshold: 0.05}})
	if err := restored.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	if restored.Len() != orig.Len() {
		t.Fatalf("ratings %d != %d", restored.Len(), orig.Len())
	}
	origTrust := orig.TrustSnapshot()
	restoredTrust := restored.TrustSnapshot()
	if len(restoredTrust) != len(origTrust) {
		t.Fatalf("records %d != %d", len(restoredTrust), len(origTrust))
	}
	for id, tr := range origTrust {
		if restoredTrust[id] != tr {
			t.Fatalf("rater %d trust %g != %g", id, restoredTrust[id], tr)
		}
	}
	// The restored system must behave identically downstream.
	a1, err := orig.Aggregate(0)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := restored.Aggregate(0)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatalf("aggregate diverged: %+v vs %+v", a1, a2)
	}
}

func TestSnapshotContinuesProcessing(t *testing.T) {
	// A restored system must accept further windows seamlessly.
	orig := populatedSystem(t)
	var buf bytes.Buffer
	if err := orig.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored := newTestSystem(t, Config{Detector: detector.Config{Threshold: 0.05}})
	if err := restored.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if err := restored.Submit(rating.Rating{Rater: 5, Object: 0, Value: 0.7, Time: 61}); err != nil {
		t.Fatal(err)
	}
	if _, err := restored.ProcessWindow(60, 90); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotVersionRejected(t *testing.T) {
	s := newTestSystem(t, Config{})
	err := s.LoadSnapshot(strings.NewReader(`{"version": 99}`))
	if !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("err = %v", err)
	}
}

func TestSnapshotMalformedJSON(t *testing.T) {
	s := newTestSystem(t, Config{})
	if err := s.LoadSnapshot(strings.NewReader(`{`)); err == nil {
		t.Fatal("malformed snapshot accepted")
	}
}

func TestSnapshotInvalidRatingPreservesState(t *testing.T) {
	s := populatedSystem(t)
	before := s.Len()
	bad := `{"version":1,"ratings":[{"rater":1,"object":1,"value":7,"time":0}],"records":[]}`
	if err := s.LoadSnapshot(strings.NewReader(bad)); err == nil {
		t.Fatal("invalid rating accepted")
	}
	if s.Len() != before {
		t.Fatal("failed load corrupted the system")
	}
}

func TestSnapshotInvalidRecordRejected(t *testing.T) {
	s := newTestSystem(t, Config{})
	bad := `{"version":1,"ratings":[],"records":[{"rater":1,"s":-3,"f":0}]}`
	if err := s.LoadSnapshot(strings.NewReader(bad)); err == nil {
		t.Fatal("invalid record accepted")
	}
}

func TestSnapshotEmptySystem(t *testing.T) {
	s := newTestSystem(t, Config{})
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored := newTestSystem(t, Config{})
	if err := restored.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 0 {
		t.Fatalf("Len = %d", restored.Len())
	}
}
