// Package core assembles the paper's primary contribution: the
// trust-enhanced rating aggregation system of Fig 1. It wires the
// rating filter (feature extraction I), the AR-signal-modeling detector
// (feature extraction II, Procedure 1), the trust manager (Procedure 2
// with record maintenance and malicious-rater detection) and the
// trust-weighted rating aggregation (Method 3) into one System with the
// lifecycle the evaluation uses: submit ratings, process maintenance
// windows, read aggregated ratings and trust.
package core

import (
	"fmt"
	"sort"

	"repro/internal/collusion"
	"repro/internal/detector"
	"repro/internal/filter"
	"repro/internal/parallel"
	"repro/internal/rating"
	"repro/internal/trust"
)

// Config assembles a System. Zero fields take the paper's §IV defaults.
type Config struct {
	// Filter is feature extraction I's rating filter; nil means the
	// Beta filter with sensitivity 0.1.
	Filter filter.Filter
	// Detector configures Procedure 1. Its windowing mode/interval are
	// overridden per maintenance window; width, step, order, threshold,
	// scale and signal options are honored (§IV: width 10, step 5,
	// threshold 0.02, b = 1).
	Detector detector.Config
	// Trust configures Procedure 2 and record maintenance.
	Trust trust.ManagerConfig
	// Collusion, when non-nil, runs the collusion-graph detector over
	// each maintenance window's accepted ratings and charges grouped
	// raters' suspicion mass into Procedure 2 alongside the AR
	// detector's. Nil disables it (the paper's baseline pipeline).
	Collusion *collusion.Config
	// Iterative, when non-nil, runs the iterative-filtering baseline
	// (de Kerchove & Van Dooren) over each maintenance window's
	// accepted ratings and charges low-weight raters the same way. Nil
	// disables it.
	Iterative *detector.IterativeConfig
	// Aggregator combines filtered ratings with trust; nil means the
	// modified weighted average (Method 3).
	Aggregator trust.Aggregator
	// Fallback is used when Aggregator reports ErrNoTrustedRaters; nil
	// means the simple average. Set to NoFallback to propagate the
	// error instead.
	Fallback trust.Aggregator
	// Workers bounds the per-object fan-out of ProcessWindow: each
	// object's filter+detector pass is independent, so a maintenance
	// window over many objects parallelizes cleanly. 0 or 1 means
	// serial (the library default); reports are committed in object
	// order either way, so results are bit-identical for any value.
	Workers int
	// Metrics receives pipeline telemetry (stage spans, per-window
	// gauges, degraded-object counts); nil disables instrumentation.
	Metrics *Metrics
}

// NoFallback disables the aggregation fallback: Aggregate returns
// trust.ErrNoTrustedRaters when every rater is at the floor.
var NoFallback trust.Aggregator = noFallback{}

type noFallback struct{}

func (noFallback) Name() string { return "no-fallback" }
func (noFallback) Aggregate(_, _ []float64) (float64, error) {
	return 0, trust.ErrNoTrustedRaters
}

func (c Config) withDefaults() Config {
	if c.Filter == nil {
		c.Filter = filter.Beta{Q: 0.1}
	}
	if c.Aggregator == nil {
		c.Aggregator = trust.ModifiedWeightedAverage{}
	}
	if c.Fallback == nil {
		c.Fallback = trust.SimpleAverage{}
	}
	return c
}

// System is the assembled trust-enhanced rating system. It is not safe
// for concurrent use.
type System struct {
	// cfg aliases the pipeline's defaulted configuration, so in-place
	// tuning (tests flip detector knobs after construction) reaches
	// the scans the pipeline runs.
	cfg     *Config
	pipe    *Pipeline
	store   *rating.Store
	manager *trust.Manager
}

// NewSystem builds a System; it returns an error on invalid
// sub-configuration.
func NewSystem(cfg Config) (*System, error) {
	pipe, err := NewPipeline(cfg)
	if err != nil {
		return nil, err
	}
	manager, err := trust.NewManager(pipe.cfg.Trust)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &System{cfg: &pipe.cfg, pipe: pipe, store: rating.NewStore(), manager: manager}, nil
}

// Submit records one raw rating.
func (s *System) Submit(r rating.Rating) error {
	if err := s.store.Add(r); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}

// SubmitAll records a batch of raw ratings, stopping at the first
// invalid one.
func (s *System) SubmitAll(rs []rating.Rating) error {
	for _, r := range rs {
		if err := s.Submit(r); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the number of stored ratings.
func (s *System) Len() int { return s.store.Len() }

// ObjectReport is the per-object outcome of one maintenance window.
type ObjectReport struct {
	Object rating.ObjectID
	// Considered is how many of the object's ratings fell inside the
	// window.
	Considered int
	// Filtered is how many the rating filter rejected.
	Filtered int
	// Accepted and Rejected are the filter's partition of the window's
	// ratings; Detection's window indices (Lo, Hi) refer to Accepted.
	Accepted, Rejected []rating.Rating
	// Detection is Procedure 1's report over the accepted ratings.
	Detection detector.Report
	// Degraded reports that the detector failed on this object (e.g. a
	// singular AR fit) and the window fell back to filter-only
	// evidence: the object still contributes n and f to Procedure 2,
	// but no suspicion. DetectorError carries the failure.
	Degraded      bool
	DetectorError string
}

// FlaggedRatings returns the accepted ratings lying in at least one
// suspicious window — the per-rating detections the fig9 experiment
// scores against ground truth.
func (o ObjectReport) FlaggedRatings() []rating.Rating {
	marked := make([]bool, len(o.Accepted))
	for _, w := range o.Detection.Windows {
		if !w.Suspicious {
			continue
		}
		for i := w.Window.Lo; i < w.Window.Hi && i < len(marked); i++ {
			marked[i] = true
		}
	}
	var out []rating.Rating
	for i, m := range marked {
		if m {
			out = append(out, o.Accepted[i])
		}
	}
	return out
}

// ProcessReport summarizes one maintenance window.
type ProcessReport struct {
	Start, End float64
	Objects    []ObjectReport
	// Observations are the per-rater Procedure 2 inputs that were
	// applied to the trust manager.
	Observations map[rating.RaterID]trust.Observation
}

// DegradedObjects returns the objects whose detector pass failed and
// fell back to filter-only evidence, in report order.
func (r ProcessReport) DegradedObjects() []rating.ObjectID {
	var out []rating.ObjectID
	for _, o := range r.Objects {
		if o.Degraded {
			out = append(out, o.Object)
		}
	}
	return out
}

// ProcessWindow runs one maintenance pass over every object's ratings
// with time in [start, end): the filter splits normal from abnormal
// ratings, the detector scans the normal ones for suspicious intervals,
// and the combined evidence updates every involved rater's trust record
// (Procedure 2) at time `end`.
//
// The §IV schedule calls this once per 30-day month.
func (s *System) ProcessWindow(start, end float64) (ProcessReport, error) {
	if end <= start {
		return ProcessReport{}, fmt.Errorf("core: window [%g,%g)", start, end)
	}
	winSpan := s.cfg.Metrics.startWindow()
	report := ProcessReport{
		Start:        start,
		End:          end,
		Observations: make(map[rating.RaterID]trust.Observation),
	}

	objects := s.store.Objects()
	sort.Slice(objects, func(i, j int) bool { return objects[i] < objects[j] })

	// Per-object scans are independent (the store is read-only during a
	// maintenance pass), so they fan out over the worker pool; results
	// are committed in object order, making the report bit-identical
	// for any worker count. Each worker owns one detector workspace.
	workers := s.cfg.Workers
	if workers < 1 {
		workers = 1
	}
	scans, err := parallel.MapLocal(len(objects), workers,
		detector.NewWorkspace,
		func(i int, ws *detector.Workspace) (ObjectScan, error) {
			obj := objects[i]
			all, err := s.store.ForObject(obj)
			if err != nil {
				return ObjectScan{}, fmt.Errorf("core: %w", err)
			}
			return s.pipe.ScanObject(ws, obj, all, start, end)
		})
	if err != nil {
		return ProcessReport{}, err
	}

	chargeSpan := s.cfg.Metrics.stage(StageCharge)
	for _, scan := range scans {
		if !scan.OK {
			continue
		}
		report.Objects = append(report.Objects, scan.Report)
		s.pipe.Charge(report.Observations, scan)
	}
	if err := s.pipe.ChargeWindow(report.Observations, scans); err != nil {
		return ProcessReport{}, err
	}
	chargeSpan.End()

	trustSpan := s.cfg.Metrics.stage(StageTrustUpdate)
	if err := s.manager.UpdateBatch(report.Observations, end); err != nil {
		return ProcessReport{}, fmt.Errorf("core: %w", err)
	}
	trustSpan.End()
	winSpan.End()
	s.cfg.Metrics.windowDone(&report)
	return report, nil
}

// AggregateResult is the outcome of aggregating one object's ratings.
type AggregateResult struct {
	Object rating.ObjectID
	// Value is the aggregated rating.
	Value float64
	// Used is how many (rater-deduplicated, filter-accepted) ratings
	// entered the aggregation.
	Used int
	// Filtered is how many ratings the filter removed first.
	Filtered int
	// FellBack reports that the primary aggregator found no rater above
	// the trust floor and the fallback was used.
	FellBack bool
}

// AggregateWindow is Aggregate restricted to ratings with time in
// [start, end) — the paper's motivating use of small time windows "to
// catch the dynamic behavior of the object being rated" (§I). The
// restriction is exactly where the majority rule gets thin and the
// trust pipeline earns its keep.
func (s *System) AggregateWindow(obj rating.ObjectID, start, end float64) (AggregateResult, error) {
	if end <= start {
		return AggregateResult{}, fmt.Errorf("core: aggregate window [%g,%g)", start, end)
	}
	return s.aggregate(obj, func(r rating.Rating) bool {
		return r.Time >= start && r.Time < end
	})
}

// Aggregate produces the object's trust-enhanced aggregated rating:
// ratings from raters already below the malicious-trust threshold are
// dropped first (so a detected clique cannot steer the filter's
// majority estimate — see the ablation-attacks experiment), then the
// filter removes abnormal ratings, each remaining rater contributes
// their latest rating, and the configured aggregator weighs them by
// trust.
func (s *System) Aggregate(obj rating.ObjectID) (AggregateResult, error) {
	return s.aggregate(obj, func(rating.Rating) bool { return true })
}

func (s *System) aggregate(obj rating.ObjectID, include func(rating.Rating) bool) (AggregateResult, error) {
	stored, err := s.store.ForObject(obj)
	if err != nil {
		return AggregateResult{}, fmt.Errorf("core: %w", err)
	}
	all := make([]rating.Rating, 0, len(stored))
	for _, r := range stored {
		if include(r) {
			all = append(all, r)
		}
	}
	return s.pipe.AggregateRatings(obj, all, s.manager.Trust)
}

// TrustIn returns the system's current trust in a rater (0.5 for
// unknown raters).
func (s *System) TrustIn(id rating.RaterID) float64 { return s.manager.Trust(id) }

// TrustSnapshot returns every tracked rater's trust.
func (s *System) TrustSnapshot() map[rating.RaterID]float64 { return s.manager.Snapshot() }

// TrustDistribution bins every tracked rater's trust into the given
// sorted upper bounds (cumulative counts; see trust.Manager).
func (s *System) TrustDistribution(bounds []float64) []int {
	return s.manager.TrustDistribution(bounds)
}

// RaterCount returns the number of tracked trust records.
func (s *System) RaterCount() int { return s.manager.Len() }

// MaliciousRaters returns raters currently below the malicious-trust
// threshold, sorted by ID.
func (s *System) MaliciousRaters() []rating.RaterID { return s.manager.Malicious() }

// RecordRecommendations exposes indirect trust: it returns the
// recommendation-derived trust in `about` given the buffered
// recommendations (Fig 1's Recommendation Buffer path).
func (s *System) RecordRecommendations(about rating.RaterID, recs []trust.Recommendation) (float64, error) {
	v, err := s.manager.IndirectTrust(about, recs)
	if err != nil {
		return 0, fmt.Errorf("core: %w", err)
	}
	return v, nil
}
