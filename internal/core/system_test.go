package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/detector"
	"repro/internal/filter"
	"repro/internal/randx"
	"repro/internal/rating"
	"repro/internal/sim"
	"repro/internal/trust"
)

func newTestSystem(t *testing.T, cfg Config) *System {
	t.Helper()
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(Config{Detector: detector.Config{Order: -1}}); err == nil {
		t.Fatal("bad detector config accepted")
	}
	if _, err := NewSystem(Config{Trust: trust.ManagerConfig{B: 5}}); err == nil {
		t.Fatal("bad trust config accepted")
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newTestSystem(t, Config{})
	if err := s.Submit(rating.Rating{Value: 2, Time: 0}); err == nil {
		t.Fatal("invalid rating accepted")
	}
	if err := s.Submit(rating.Rating{Rater: 1, Object: 1, Value: 0.5, Time: 0}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestProcessWindowValidation(t *testing.T) {
	s := newTestSystem(t, Config{})
	if _, err := s.ProcessWindow(10, 10); err == nil {
		t.Fatal("empty window accepted")
	}
	if _, err := s.ProcessWindow(10, 5); err == nil {
		t.Fatal("inverted window accepted")
	}
}

func TestProcessWindowEmptySystem(t *testing.T) {
	s := newTestSystem(t, Config{})
	rep, err := s.ProcessWindow(0, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Objects) != 0 || len(rep.Observations) != 0 {
		t.Fatalf("report = %+v", rep)
	}
}

// submitTrace loads a generated single-object trace into a system.
func submitTrace(t *testing.T, s *System, ls []sim.LabeledRating) {
	t.Helper()
	if err := s.SubmitAll(sim.Ratings(ls)); err != nil {
		t.Fatal(err)
	}
}

func TestObservationBookkeeping(t *testing.T) {
	// n must count every rating in the window; f + s <= n must hold;
	// ratings outside the window must not be counted.
	s := newTestSystem(t, Config{})
	ls, err := sim.GenerateIllustrative(randx.New(1), sim.DefaultIllustrative())
	if err != nil {
		t.Fatal(err)
	}
	submitTrace(t, s, ls)
	rep, err := s.ProcessWindow(0, 30)
	if err != nil {
		t.Fatal(err)
	}
	var inWindow int
	for _, l := range ls {
		if l.Rating.Time < 30 {
			inWindow++
		}
	}
	var counted int
	for _, obs := range rep.Observations {
		counted += obs.N
		if obs.Filtered+obs.Suspicious > obs.N {
			t.Fatalf("observation %+v breaks f+s <= n", obs)
		}
	}
	if counted != inWindow {
		t.Fatalf("observed %d ratings, window holds %d", counted, inWindow)
	}
	if len(rep.Objects) != 1 {
		t.Fatalf("%d objects", len(rep.Objects))
	}
	if rep.Objects[0].Considered != inWindow {
		t.Fatalf("considered %d, want %d", rep.Objects[0].Considered, inWindow)
	}
}

func TestTrustSeparatesColludersOverTime(t *testing.T) {
	// Run the illustrative scenario through monthly maintenance windows
	// with a detector threshold calibrated to the scenario; colluders'
	// mean trust must end below honest raters' mean trust.
	cfg := Config{
		Detector: detector.Config{Threshold: 0.05, Width: 10, TimeStep: 5},
	}
	var honestSum, honestN, colluderSum, colluderN float64
	for seed := int64(0); seed < 5; seed++ {
		s := newTestSystem(t, cfg)
		p := sim.DefaultIllustrative()
		p.BadVar = 0.002 // tight clique, as in the smart strategy
		ls, err := sim.GenerateIllustrative(randx.New(seed), p)
		if err != nil {
			t.Fatal(err)
		}
		submitTrace(t, s, ls)
		for _, w := range [][2]float64{{0, 30}, {30, 60}} {
			if _, err := s.ProcessWindow(w[0], w[1]); err != nil {
				t.Fatal(err)
			}
		}
		for id, tr := range s.TrustSnapshot() {
			if id >= 100000 {
				colluderSum += tr
				colluderN++
			} else {
				honestSum += tr
				honestN++
			}
		}
	}
	if colluderN == 0 || honestN == 0 {
		t.Fatal("missing a population")
	}
	honestMean := honestSum / honestN
	colluderMean := colluderSum / colluderN
	if colluderMean >= honestMean-0.02 {
		t.Fatalf("colluder trust %.3f not clearly below honest %.3f", colluderMean, honestMean)
	}
}

func TestAggregateUnknownObject(t *testing.T) {
	s := newTestSystem(t, Config{})
	if _, err := s.Aggregate(42); !errors.Is(err, rating.ErrUnknownObject) {
		t.Fatalf("err = %v", err)
	}
}

func TestAggregateUsesLatestPerRater(t *testing.T) {
	s := newTestSystem(t, Config{Filter: filter.Noop{}})
	_ = s.Submit(rating.Rating{Rater: 1, Object: 1, Value: 0.2, Time: 1})
	_ = s.Submit(rating.Rating{Rater: 1, Object: 1, Value: 0.8, Time: 2})
	res, err := s.Aggregate(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Used != 1 {
		t.Fatalf("used %d raters, want 1", res.Used)
	}
	// Fresh rater trust 0.5 -> M3 has no one above floor -> fallback to
	// the simple average of the single latest value.
	if !res.FellBack || res.Value != 0.8 {
		t.Fatalf("result = %+v, want fallback value 0.8", res)
	}
}

func TestAggregateWeighsByTrust(t *testing.T) {
	// Build divergent trust through real processing: rater 1 emits
	// noisy honest ratings (object 2: unpredictable, trust rises);
	// rater 2 emits a constant stream (object 3: perfectly predictable,
	// every window suspicious, trust collapses). The aggregate of
	// object 1 must then follow rater 1 alone.
	s := newTestSystem(t, Config{
		Filter:   filter.Noop{},
		Detector: detector.Config{Threshold: 0.05},
	})
	_ = s.Submit(rating.Rating{Rater: 1, Object: 1, Value: 0.8, Time: 31})
	_ = s.Submit(rating.Rating{Rater: 2, Object: 1, Value: 0.2, Time: 31})
	rng := randx.New(11)
	for i := 0; i < 60; i++ {
		tm := rng.Uniform(0, 30)
		if err := s.Submit(rating.Rating{Rater: 1, Object: 2, Value: randx.Quantize(rng.NormalVar(0.7, 0.04), 11, true), Time: tm}); err != nil {
			t.Fatal(err)
		}
		if err := s.Submit(rating.Rating{Rater: 2, Object: 3, Value: 0.9, Time: tm}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.ProcessWindow(0, 30); err != nil {
		t.Fatal(err)
	}
	if tr1, tr2 := s.TrustIn(1), s.TrustIn(2); tr1 <= 0.5 || tr2 >= 0.5 {
		t.Fatalf("trust did not diverge: rater1 %.3f rater2 %.3f", tr1, tr2)
	}
	res, err := s.Aggregate(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.FellBack {
		t.Fatalf("unexpected fallback: %+v", res)
	}
	if math.Abs(res.Value-0.8) > 1e-9 {
		t.Fatalf("aggregate = %g, want 0.8 (rater 2 excluded)", res.Value)
	}
}

func TestAggregateNoFallback(t *testing.T) {
	s := newTestSystem(t, Config{Filter: filter.Noop{}, Fallback: NoFallback})
	_ = s.Submit(rating.Rating{Rater: 1, Object: 1, Value: 0.5, Time: 1})
	if _, err := s.Aggregate(1); !errors.Is(err, trust.ErrNoTrustedRaters) {
		t.Fatalf("err = %v", err)
	}
}

func TestMaliciousRatersExposed(t *testing.T) {
	cfg := Config{Detector: detector.Config{Threshold: 0.05}}
	s := newTestSystem(t, cfg)
	p := sim.DefaultIllustrative()
	p.BadVar = 0.002
	ls, err := sim.GenerateIllustrative(randx.New(3), p)
	if err != nil {
		t.Fatal(err)
	}
	submitTrace(t, s, ls)
	for _, w := range [][2]float64{{0, 30}, {30, 60}} {
		if _, err := s.ProcessWindow(w[0], w[1]); err != nil {
			t.Fatal(err)
		}
	}
	// The call must work and only list raters that indeed have trust
	// below the threshold.
	for _, id := range s.MaliciousRaters() {
		if s.TrustIn(id) >= 0.5 {
			t.Fatalf("rater %d listed malicious at trust %g", id, s.TrustIn(id))
		}
	}
}

func TestRecordRecommendations(t *testing.T) {
	s := newTestSystem(t, Config{})
	if _, err := s.RecordRecommendations(9, nil); !errors.Is(err, trust.ErrNoRecommendations) {
		t.Fatalf("err = %v", err)
	}
}

// Property: after any sequence of windows, trust values stay in (0, 1)
// and aggregation (when defined) stays in [0, 1].
func TestSystemBoundsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := randx.New(seed)
		s, err := NewSystem(Config{Detector: detector.Config{Threshold: 0.1}})
		if err != nil {
			return false
		}
		p := sim.DefaultIllustrative()
		p.RecruitPower1 = rng.Float64()
		p.BiasShift2 = rng.Uniform(0.05, 0.3)
		ls, err := sim.GenerateIllustrative(rng, p)
		if err != nil {
			return false
		}
		if err := s.SubmitAll(sim.Ratings(ls)); err != nil {
			return false
		}
		for _, w := range [][2]float64{{0, 20}, {20, 40}, {40, 60}} {
			if _, err := s.ProcessWindow(w[0], w[1]); err != nil {
				return false
			}
		}
		for _, tr := range s.TrustSnapshot() {
			if tr <= 0 || tr >= 1 {
				return false
			}
		}
		res, err := s.Aggregate(0)
		if err != nil {
			return false
		}
		return res.Value >= 0 && res.Value <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestProcessWindowWorkerInvariance checks the Config.Workers contract:
// the per-object fan-out must produce a report identical to the serial
// scan — same object order, same detections, same observations.
func TestProcessWindowWorkerInvariance(t *testing.T) {
	p := sim.DefaultMarketplace()
	p.Reliable, p.Careless, p.PC = 40, 20, 60
	p.HonestPerMonth, p.DishonestPerMonth = 3, 2
	p.Months = 2
	trace, err := sim.GenerateMarketplace(randx.New(9), p)
	if err != nil {
		t.Fatal(err)
	}

	process := func(workers int) []ProcessReport {
		s := newTestSystem(t, Config{
			Filter:   filter.Beta{Q: 0.1},
			Detector: detector.Config{Width: 10, TimeStep: 5, Order: 4, Threshold: 0.10, MinWindow: 25},
			Trust:    trust.ManagerConfig{B: 1},
			Workers:  workers,
		})
		if err := s.SubmitAll(sim.Ratings(trace.Ratings)); err != nil {
			t.Fatal(err)
		}
		var reps []ProcessReport
		for m := 0; m < p.Months; m++ {
			start := float64(m * p.DaysPerMonth)
			rep, err := s.ProcessWindow(start, start+float64(p.DaysPerMonth))
			if err != nil {
				t.Fatal(err)
			}
			reps = append(reps, rep)
		}
		return reps
	}

	serial := process(1)
	for _, workers := range []int{0, 4, 16} {
		got := process(workers)
		for m := range serial {
			a, b := serial[m], got[m]
			if len(a.Objects) != len(b.Objects) {
				t.Fatalf("workers=%d month %d: %d objects vs %d", workers, m, len(b.Objects), len(a.Objects))
			}
			for i := range a.Objects {
				oa, ob := a.Objects[i], b.Objects[i]
				if oa.Object != ob.Object || oa.Considered != ob.Considered || oa.Filtered != ob.Filtered {
					t.Fatalf("workers=%d month %d object %d differs", workers, m, i)
				}
				if len(oa.Detection.Windows) != len(ob.Detection.Windows) {
					t.Fatalf("workers=%d month %d object %d: window counts differ", workers, m, i)
				}
				for w := range oa.Detection.Windows {
					if oa.Detection.Windows[w].Level != ob.Detection.Windows[w].Level ||
						oa.Detection.Windows[w].Suspicious != ob.Detection.Windows[w].Suspicious {
						t.Fatalf("workers=%d month %d object %d window %d differs", workers, m, i, w)
					}
				}
			}
			if len(a.Observations) != len(b.Observations) {
				t.Fatalf("workers=%d month %d: observation sizes differ", workers, m)
			}
			for id, obs := range a.Observations {
				if b.Observations[id] != obs {
					t.Fatalf("workers=%d month %d rater %d: %+v vs %+v", workers, m, id, obs, b.Observations[id])
				}
			}
		}
	}
}
