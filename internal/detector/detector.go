// Package detector implements Procedure 1 of the paper: AR
// signal-modeling detection of collaborative unfair ratings.
//
// The ratings of one object are split into (possibly overlapping)
// windows; each window is fitted with an all-pole AR model (covariance
// method by default) and its normalized model error e(k) computed. A
// window whose error falls below a threshold is marked suspicious with
// level L(k), and every rater with a rating inside a suspicious window
// accrues suspicion mass C(i) — the quantity Procedure 2 later converts
// into distrust.
package detector

import (
	"errors"
	"fmt"

	"repro/internal/rating"
	"repro/internal/signal"
)

// WindowMode selects how an object's rating sequence is windowed.
type WindowMode int

const (
	// WindowByCount cuts windows of Size ratings advancing by Step
	// ratings (Fig 4's "50 ratings in each window").
	WindowByCount WindowMode = iota + 1
	// WindowByTime cuts windows of Width days advancing by TimeStep
	// days over [T0, End) (§IV: width 10, step 5).
	WindowByTime
)

// Config parameterizes a detection run. Zero values select the paper's
// defaults where one exists.
type Config struct {
	// Mode selects windowing; zero value means WindowByCount.
	Mode WindowMode
	// Size and Step configure WindowByCount. Zero means 50 and 25.
	Size, Step int
	// T0, End, Width and TimeStep configure WindowByTime. Width and
	// TimeStep zero mean 10 and 5 days (§IV.A). End zero means the time
	// of the last rating.
	T0, End, Width, TimeStep float64
	// Order is the AR model order; zero means 4.
	Order int
	// Threshold is the model-error cutoff below which a window is
	// suspicious; zero means 0.02 (§IV.A).
	Threshold float64
	// Scale is Procedure 1's scaling factor in (0, 1]; zero means 1.
	Scale float64
	// MinWindow is the minimum number of ratings a window needs to be
	// fitted. Zero means the AR method's own minimum (2·Order+1 for the
	// covariance method). Short windows overfit — an order-4 model on a
	// dozen ratings produces spuriously low errors — so workloads with
	// sparse tail windows should raise this (§IV uses 25).
	MinWindow int
	// Signal configures the AR fit (method, demeaning, ridge).
	Signal signal.Options
	// LiteralLevel uses the paper's printed formula
	// L(k) = Scale·(1−e(k))/Threshold, which exceeds 1 for any error
	// under a small threshold. The default is the bounded reading
	// L(k) = Scale·(1 − e(k)/Threshold) ∈ (0, Scale]; see DESIGN.md.
	LiteralLevel bool
}

func (c Config) withDefaults() Config {
	if c.Mode == 0 {
		c.Mode = WindowByCount
	}
	if c.Size == 0 {
		c.Size = 50
	}
	if c.Step == 0 {
		c.Step = 25
	}
	if c.Width == 0 {
		c.Width = 10
	}
	if c.TimeStep == 0 {
		c.TimeStep = 5
	}
	if c.Order == 0 {
		c.Order = 4
	}
	if c.Threshold == 0 {
		c.Threshold = 0.02
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	return c
}

// Validate reports configuration errors after defaulting.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Mode != WindowByCount && c.Mode != WindowByTime {
		return fmt.Errorf("detector: unknown window mode %d", int(c.Mode))
	}
	if c.Size < 1 || c.Step < 1 {
		return fmt.Errorf("detector: size=%d step=%d", c.Size, c.Step)
	}
	if c.Width <= 0 || c.TimeStep <= 0 {
		return fmt.Errorf("detector: width=%g timestep=%g", c.Width, c.TimeStep)
	}
	if c.Order < 1 {
		return fmt.Errorf("detector: order %d", c.Order)
	}
	if c.Threshold <= 0 || c.Threshold >= 1 {
		return fmt.Errorf("detector: threshold %g outside (0,1)", c.Threshold)
	}
	if c.Scale <= 0 || c.Scale > 1 {
		return fmt.Errorf("detector: scale %g outside (0,1]", c.Scale)
	}
	if c.MinWindow < 0 {
		return fmt.Errorf("detector: min window %d", c.MinWindow)
	}
	return nil
}

// WindowReport is the per-window outcome.
type WindowReport struct {
	Window rating.Window
	// Fitted reports whether the window had enough ratings for the AR
	// fit; unfitted windows are never suspicious.
	Fitted bool
	// Model is the AR fit (zero when !Fitted).
	Model signal.Model
	// Suspicious marks e(k) < Threshold.
	Suspicious bool
	// Level is Procedure 1's L(k) (zero when not suspicious).
	Level float64
}

// RaterStats aggregates Procedure 1's per-rater outputs over one run.
type RaterStats struct {
	// Suspicion is C(i), the accumulated suspicion mass.
	Suspicion float64
	// SuspiciousRatings is s_i: how many of the rater's ratings lie in
	// at least one suspicious window.
	SuspiciousRatings int
	// TotalRatings is n_i within this run.
	TotalRatings int
}

// Report is the outcome of one detection run over one object.
type Report struct {
	Windows  []WindowReport
	PerRater map[rating.RaterID]RaterStats
}

// SuspiciousWindows returns the indices of suspicious windows.
func (r Report) SuspiciousWindows() []int {
	var out []int
	for i, w := range r.Windows {
		if w.Suspicious {
			out = append(out, i)
		}
	}
	return out
}

// ModelErrors returns (center, e(k)) pairs for every fitted window —
// the series plotted in Fig 4 (lower) and Fig 5. Center is the midpoint
// of the window's covered interval.
func (r Report) ModelErrors() (centers, errs []float64) {
	for _, w := range r.Windows {
		if !w.Fitted {
			continue
		}
		centers = append(centers, (w.Window.Start+w.Window.End)/2)
		errs = append(errs, w.Model.NormalizedError)
	}
	return centers, errs
}

// Workspace carries the reusable state of a detection run: the AR-fit
// scratch (signal.Workspace), the per-window value buffer, Procedure 1's
// L_latest map and suspicious-rating marks, plus a rater-count hint used
// to pre-size each report's PerRater map. Reusing one Workspace across
// the thousands of Detect calls a marketplace replay makes removes every
// per-call map/slice rebuild except the returned Report itself.
//
// A Workspace is not safe for concurrent use: one Workspace per
// goroutine, never shared (parallel.MapLocal builds exactly that).
type Workspace struct {
	sig          signal.Workspace
	values       []float64
	latest       map[rating.RaterID]float64
	inSuspicious []bool
	raterHint    int
}

// NewWorkspace returns an empty Workspace, ready for DetectWS.
func NewWorkspace() *Workspace { return &Workspace{} }

// begin shapes the workspace for a run over rs and returns a report
// with pre-sized maps.
func (ws *Workspace) begin(rs []rating.Rating, windows int) Report {
	if ws.latest == nil {
		ws.latest = make(map[rating.RaterID]float64, ws.raterHint)
	} else {
		clear(ws.latest)
	}
	if cap(ws.inSuspicious) < len(rs) {
		ws.inSuspicious = make([]bool, len(rs))
	} else {
		ws.inSuspicious = ws.inSuspicious[:len(rs)]
		for i := range ws.inSuspicious {
			ws.inSuspicious[i] = false
		}
	}
	hint := ws.raterHint
	if hint == 0 || hint > len(rs) {
		hint = len(rs)
	}
	return Report{
		Windows:  make([]WindowReport, 0, windows),
		PerRater: make(map[rating.RaterID]RaterStats, hint),
	}
}

// finish folds the suspicious-rating marks into the report and records
// the rater count as the next run's pre-sizing hint.
func (ws *Workspace) finish(report *Report, rs []rating.Rating) {
	for idx, marked := range ws.inSuspicious {
		if marked {
			s := report.PerRater[rs[idx].Rater]
			s.SuspiciousRatings++
			report.PerRater[rs[idx].Rater] = s
		}
	}
	ws.raterHint = len(report.PerRater)
}

// Detect runs Procedure 1 over the time-sorted ratings of one object.
// Windows too short for the configured AR order are skipped (reported
// with Fitted == false).
func Detect(rs []rating.Rating, cfg Config) (Report, error) {
	return DetectWS(rs, cfg, nil)
}

// DetectWS is Detect with an explicit scratch workspace, for callers
// that scan many objects or maintenance windows in a loop. A nil ws
// uses a transient workspace. The report produced is identical to
// Detect's for any workspace history.
func DetectWS(rs []rating.Rating, cfg Config, ws *Workspace) (Report, error) {
	if err := cfg.Validate(); err != nil {
		return Report{}, err
	}
	cfg = cfg.withDefaults()
	if ws == nil {
		ws = &Workspace{}
	}

	windows, err := buildWindows(rs, cfg)
	if err != nil {
		return Report{}, err
	}

	report := ws.begin(rs, len(windows))
	for _, r := range rs {
		s := report.PerRater[r.Rater]
		s.TotalRatings++
		report.PerRater[r.Rater] = s
	}

	minSamples := signal.MinSamples(effectiveMethod(cfg.Signal), cfg.Order)
	if cfg.MinWindow > minSamples {
		minSamples = cfg.MinWindow
	}

	for _, w := range windows {
		wr := WindowReport{Window: w}
		if len(w.Ratings) >= minSamples {
			ws.values = rating.AppendValues(ws.values[:0], w.Ratings)
			model, ferr := signal.FitWS(ws.values, cfg.Order, cfg.Signal, &ws.sig)
			if ferr != nil {
				if !errors.Is(ferr, signal.ErrTooShort) {
					return Report{}, fmt.Errorf("detector: window %d: %w", w.Index, ferr)
				}
			} else {
				wr.Fitted = true
				wr.Model = model
				if model.NormalizedError < cfg.Threshold {
					wr.Suspicious = true
					wr.Level = suspicionLevel(model.NormalizedError, cfg)
				}
			}
		}
		if wr.Suspicious {
			// Procedure 1 steps 8-16: accrue per-rater suspicion. A rater
			// whose latest level already covers L(k) accrues only the
			// increment, so overlapping suspicious windows count once at
			// their maximum level.
			accrue(&report, rs, w, wr.Level, ws.latest, ws.inSuspicious)
		}
		report.Windows = append(report.Windows, wr)
	}

	ws.finish(&report, rs)
	return report, nil
}

// buildWindows cuts rs into windows per the configured mode.
func buildWindows(rs []rating.Rating, cfg Config) ([]rating.Window, error) {
	var (
		windows []rating.Window
		err     error
	)
	switch cfg.Mode {
	case WindowByCount:
		windows, err = rating.CountWindows(rs, cfg.Size, cfg.Step)
	case WindowByTime:
		end := cfg.End
		if end == 0 && len(rs) > 0 {
			end = rs[len(rs)-1].Time + 1e-9
		}
		windows, err = rating.TimeWindows(rs, cfg.T0, end, cfg.Width, cfg.TimeStep)
	}
	if err != nil {
		return nil, fmt.Errorf("detector: windowing: %w", err)
	}
	return windows, nil
}

func effectiveMethod(opts signal.Options) signal.Method {
	if opts.Method == 0 {
		return signal.MethodCovariance
	}
	return opts.Method
}

func suspicionLevel(e float64, cfg Config) float64 {
	if cfg.LiteralLevel {
		return cfg.Scale * (1 - e) / cfg.Threshold
	}
	return cfg.Scale * (1 - e/cfg.Threshold)
}

// Merge accumulates per-rater statistics from several per-object
// reports — the multi-object extension the paper describes ("running
// procedure 1 for each object" with C initialized once).
func Merge(reports ...Report) map[rating.RaterID]RaterStats {
	out := make(map[rating.RaterID]RaterStats)
	for _, rep := range reports {
		for id, s := range rep.PerRater {
			acc := out[id]
			acc.Suspicion += s.Suspicion
			acc.SuspiciousRatings += s.SuspiciousRatings
			acc.TotalRatings += s.TotalRatings
			out[id] = acc
		}
	}
	return out
}
