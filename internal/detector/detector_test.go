package detector

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/randx"
	"repro/internal/rating"
	"repro/internal/signal"
)

// genScenario builds a §III.A.2-style trace: honest Poisson ratings for
// one object over 60 days, plus (optionally) type-2 collaborative
// ratings in days [30, 44]. Honest raters get IDs from 0, colluders
// from 10000.
func genScenario(seed int64, withAttack bool) []rating.Rating {
	rng := randx.New(seed)
	var rs []rating.Rating
	next := rating.RaterID(0)
	for _, tm := range rng.PoissonProcess(3, 0, 60) {
		quality := 0.7 + 0.1*tm/60 // drifts 0.7 -> 0.8
		rs = append(rs, rating.Rating{
			Rater: next,
			Value: randx.Quantize(rng.NormalVar(quality, 0.04), 11, true),
			Time:  tm,
		})
		next++
	}
	if withAttack {
		colluder := rating.RaterID(10000)
		for _, tm := range rng.PoissonProcess(4.5, 30, 44) {
			quality := 0.7 + 0.1*tm/60
			rs = append(rs, rating.Rating{
				Rater: colluder,
				Value: randx.Quantize(rng.NormalVar(quality+0.15, 0.002), 11, true),
				Time:  tm,
			})
			colluder++
		}
	}
	rating.SortByTime(rs)
	return rs
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	bad := []Config{
		{Mode: WindowMode(9)},
		{Size: -1},
		{Step: -1},
		{Width: -1},
		{TimeStep: -2},
		{Order: -1},
		{Threshold: 1.5},
		{Threshold: -0.1},
		{Scale: 2},
		{Scale: -0.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestDetectEmptyInput(t *testing.T) {
	rep, err := Detect(nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Windows) != 0 || len(rep.PerRater) != 0 {
		t.Fatalf("empty input: %+v", rep)
	}
}

func TestModelErrorDropsUnderAttack(t *testing.T) {
	// The central claim (Fig 4): model error inside attacked windows is
	// markedly lower than in honest-only windows.
	var honestErrs, attackErrs []float64
	for seed := int64(0); seed < 10; seed++ {
		cfg := Config{Mode: WindowByCount, Size: 50, Step: 25, Threshold: 0.5}
		repH, err := Detect(genScenario(seed, false), cfg)
		if err != nil {
			t.Fatal(err)
		}
		repA, err := Detect(genScenario(seed, true), cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range repH.Windows {
			if w.Fitted {
				honestErrs = append(honestErrs, w.Model.NormalizedError)
			}
		}
		for _, w := range repA.Windows {
			// Windows fully inside the attack interval.
			if w.Fitted && w.Window.Start >= 30 && w.Window.End <= 44 {
				attackErrs = append(attackErrs, w.Model.NormalizedError)
			}
		}
	}
	if len(attackErrs) == 0 {
		t.Fatal("no attack windows found")
	}
	meanH := mean(honestErrs)
	meanA := mean(attackErrs)
	if meanA >= 0.7*meanH {
		t.Fatalf("attack error %.4f not clearly below honest error %.4f", meanA, meanH)
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// calibratedThreshold returns a threshold halfway between the mean
// honest and mean attacked error levels for the test scenario.
func calibratedThreshold(t *testing.T) float64 {
	t.Helper()
	cfg := Config{Mode: WindowByCount, Size: 50, Step: 25, Threshold: 0.999}
	var hErrs, aErrs []float64
	for seed := int64(0); seed < 6; seed++ {
		repH, err := Detect(genScenario(seed, false), cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range repH.Windows {
			if w.Fitted {
				hErrs = append(hErrs, w.Model.NormalizedError)
			}
		}
		repA, err := Detect(genScenario(seed, true), cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range repA.Windows {
			if w.Fitted && w.Window.Start >= 30 && w.Window.End <= 44 {
				aErrs = append(aErrs, w.Model.NormalizedError)
			}
		}
	}
	return (mean(hErrs) + mean(aErrs)) / 2
}

func TestSuspicionConcentratesOnColluders(t *testing.T) {
	threshold := calibratedThreshold(t)
	var colluderHits, colluders int
	var flaggedRuns int
	for seed := int64(20); seed < 30; seed++ {
		rs := genScenario(seed, true)
		rep, err := Detect(rs, Config{Mode: WindowByCount, Size: 50, Step: 25, Threshold: threshold})
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.SuspiciousWindows()) == 0 {
			continue
		}
		flaggedRuns++
		for id, s := range rep.PerRater {
			if id >= 10000 {
				colluders++
				if s.Suspicion > 0 {
					colluderHits++
				}
			}
		}
	}
	if flaggedRuns < 5 {
		t.Fatalf("attack flagged in only %d/10 runs", flaggedRuns)
	}
	if colluders == 0 || float64(colluderHits)/float64(colluders) < 0.4 {
		t.Fatalf("only %d/%d colluders accrued suspicion", colluderHits, colluders)
	}
}

func TestHonestRunsRarelyFlagged(t *testing.T) {
	threshold := calibratedThreshold(t)
	suspicious := 0
	total := 0
	for seed := int64(40); seed < 50; seed++ {
		rep, err := Detect(genScenario(seed, false), Config{
			Mode: WindowByCount, Size: 50, Step: 25, Threshold: threshold,
		})
		if err != nil {
			t.Fatal(err)
		}
		suspicious += len(rep.SuspiciousWindows())
		for _, w := range rep.Windows {
			if w.Fitted {
				total++
			}
		}
	}
	if total == 0 {
		t.Fatal("no fitted windows")
	}
	if rate := float64(suspicious) / float64(total); rate > 0.35 {
		t.Fatalf("false-alarm window rate %.2f too high", rate)
	}
}

func TestTimeWindowMode(t *testing.T) {
	rs := genScenario(1, true)
	rep, err := Detect(rs, Config{
		Mode: WindowByTime, T0: 0, End: 60, Width: 10, TimeStep: 5,
		Threshold: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Windows) != 12 {
		t.Fatalf("%d windows, want 12 for [0,60) width 10 step 5", len(rep.Windows))
	}
	// ~30 ratings per 10-day window: all should be fitted at order 4.
	fitted := 0
	for _, w := range rep.Windows {
		if w.Fitted {
			fitted++
		}
	}
	if fitted < 10 {
		t.Fatalf("only %d/12 windows fitted", fitted)
	}
}

func TestTimeWindowModeDefaultEnd(t *testing.T) {
	rs := genScenario(2, false)
	rep, err := Detect(rs, Config{Mode: WindowByTime, Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Windows) == 0 {
		t.Fatal("no windows with default end")
	}
	last := rep.Windows[len(rep.Windows)-1]
	if last.Window.Start > rs[len(rs)-1].Time {
		t.Fatal("window past the last rating")
	}
}

func TestShortWindowsSkipped(t *testing.T) {
	// 3 ratings cannot support an order-4 covariance fit.
	rs := genScenario(3, false)[:3]
	rep, err := Detect(rs, Config{Mode: WindowByTime, T0: 0, End: 60})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range rep.Windows {
		if w.Fitted || w.Suspicious {
			t.Fatalf("short window fitted: %+v", w)
		}
	}
}

func TestSuspicionLevelFormulas(t *testing.T) {
	cfg := Config{Threshold: 0.02, Scale: 0.5}.withDefaults()
	// Bounded reading: e = 0.01 -> 0.5 * (1 - 0.5) = 0.25.
	if got := suspicionLevel(0.01, cfg); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("bounded level = %g, want 0.25", got)
	}
	// Literal formula: 0.5 * 0.99 / 0.02 = 24.75.
	cfg.LiteralLevel = true
	if got := suspicionLevel(0.01, cfg); math.Abs(got-24.75) > 1e-12 {
		t.Fatalf("literal level = %g, want 24.75", got)
	}
}

func TestLevelBoundedWithinScale(t *testing.T) {
	rs := genScenario(4, true)
	rep, err := Detect(rs, Config{Threshold: 0.9, Scale: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range rep.Windows {
		if w.Suspicious && (w.Level <= 0 || w.Level > 0.7) {
			t.Fatalf("level %g outside (0, 0.7]", w.Level)
		}
	}
}

func TestOverlappingWindowsCountIncrementalMax(t *testing.T) {
	// Constant ratings from one rater: every window is perfectly
	// predictable (e = 0, L = Scale). Overlapping suspicious windows
	// must accrue Scale once, not once per window.
	var rs []rating.Rating
	for i := 0; i < 40; i++ {
		rs = append(rs, rating.Rating{Rater: 7, Value: 0.8, Time: float64(i)})
	}
	rep, err := Detect(rs, Config{Mode: WindowByCount, Size: 20, Step: 5, Threshold: 0.5, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(rep.SuspiciousWindows()); n < 2 {
		t.Fatalf("want multiple suspicious windows, got %d", n)
	}
	s := rep.PerRater[7]
	if math.Abs(s.Suspicion-1) > 1e-9 {
		t.Fatalf("suspicion = %g, want exactly 1 (incremental max)", s.Suspicion)
	}
	if s.SuspiciousRatings != 40 {
		t.Fatalf("suspicious ratings = %d, want 40", s.SuspiciousRatings)
	}
}

func TestPerRaterTotals(t *testing.T) {
	rs := genScenario(5, true)
	rep, err := Detect(rs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range rep.PerRater {
		total += s.TotalRatings
		if s.SuspiciousRatings > s.TotalRatings {
			t.Fatalf("s_i > n_i: %+v", s)
		}
	}
	if total != len(rs) {
		t.Fatalf("per-rater totals %d != %d ratings", total, len(rs))
	}
}

func TestModelErrors(t *testing.T) {
	rs := genScenario(6, false)
	rep, err := Detect(rs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	centers, errs := rep.ModelErrors()
	if len(centers) != len(errs) || len(centers) == 0 {
		t.Fatalf("series lengths %d, %d", len(centers), len(errs))
	}
	for i := 1; i < len(centers); i++ {
		if centers[i] <= centers[i-1] {
			t.Fatal("window centers not increasing")
		}
	}
}

func TestMerge(t *testing.T) {
	a := Report{PerRater: map[rating.RaterID]RaterStats{
		1: {Suspicion: 0.5, SuspiciousRatings: 2, TotalRatings: 5},
		2: {TotalRatings: 3},
	}}
	b := Report{PerRater: map[rating.RaterID]RaterStats{
		1: {Suspicion: 0.25, SuspiciousRatings: 1, TotalRatings: 4},
		3: {Suspicion: 1, SuspiciousRatings: 3, TotalRatings: 3},
	}}
	m := Merge(a, b)
	if got := m[1]; got.Suspicion != 0.75 || got.SuspiciousRatings != 3 || got.TotalRatings != 9 {
		t.Fatalf("merged rater 1 = %+v", got)
	}
	if got := m[2]; got.TotalRatings != 3 {
		t.Fatalf("merged rater 2 = %+v", got)
	}
	if got := m[3]; got.Suspicion != 1 {
		t.Fatalf("merged rater 3 = %+v", got)
	}
}

// Property: detector bookkeeping is consistent for arbitrary traces —
// levels bounded, totals conserved, suspicious ratings only when a
// suspicious window exists.
func TestDetectorInvariantsProperty(t *testing.T) {
	prop := func(seed int64, timeMode bool) bool {
		rng := randx.New(seed)
		n := rng.Intn(150)
		rs := make([]rating.Rating, n)
		for i := range rs {
			rs[i] = rating.Rating{
				Rater: rating.RaterID(rng.Intn(30)),
				Value: randx.Quantize(rng.Float64(), 11, true),
				Time:  rng.Uniform(0, 60),
			}
		}
		rating.SortByTime(rs)
		cfg := Config{Threshold: 0.3, Scale: 0.9}
		if timeMode {
			cfg.Mode = WindowByTime
			cfg.End = 60
		} else {
			cfg.Mode = WindowByCount
			cfg.Size = 20
			cfg.Step = 10
		}
		rep, err := Detect(rs, cfg)
		if err != nil {
			return false
		}
		total := 0
		anySuspicious := len(rep.SuspiciousWindows()) > 0
		for _, s := range rep.PerRater {
			total += s.TotalRatings
			if s.Suspicion < 0 || s.SuspiciousRatings < 0 || s.SuspiciousRatings > s.TotalRatings {
				return false
			}
			if !anySuspicious && (s.Suspicion != 0 || s.SuspiciousRatings != 0) {
				return false
			}
		}
		if total != n {
			return false
		}
		for _, w := range rep.Windows {
			if w.Suspicious && (w.Level <= 0 || w.Level > cfg.Scale) {
				return false
			}
			if w.Suspicious && !w.Fitted {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: detection is deterministic — same input, same report.
func TestDetectorDeterministicProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rs := genScenario(seed, true)
		cfg := Config{Signal: signal.Options{Method: signal.MethodCovariance}}
		r1, err1 := Detect(rs, cfg)
		r2, err2 := Detect(rs, cfg)
		if err1 != nil || err2 != nil {
			return false
		}
		if len(r1.Windows) != len(r2.Windows) {
			return false
		}
		for i := range r1.Windows {
			if r1.Windows[i].Model.NormalizedError != r2.Windows[i].Model.NormalizedError {
				return false
			}
		}
		for id, s := range r1.PerRater {
			if r2.PerRater[id] != s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestDetectWSMatchesDetect(t *testing.T) {
	// A dirty, reused workspace must produce exactly Detect's report —
	// same windows, same per-rater stats — across alternating attacked
	// and honest traces.
	cfg := Config{Size: 50, Step: 25, Order: 4, Threshold: 0.105}
	ws := NewWorkspace()
	for trial := 0; trial < 8; trial++ {
		rs := genScenario(int64(trial+1), trial%2 == 0)
		want, errWant := Detect(rs, cfg)
		got, errGot := DetectWS(rs, cfg, ws)
		if (errWant == nil) != (errGot == nil) {
			t.Fatalf("trial %d: err %v vs %v", trial, errWant, errGot)
		}
		if errWant != nil {
			continue
		}
		if len(got.Windows) != len(want.Windows) {
			t.Fatalf("trial %d: %d windows vs %d", trial, len(got.Windows), len(want.Windows))
		}
		for i := range want.Windows {
			a, b := want.Windows[i], got.Windows[i]
			if a.Fitted != b.Fitted || a.Suspicious != b.Suspicious || a.Level != b.Level ||
				a.Model.NormalizedError != b.Model.NormalizedError {
				t.Fatalf("trial %d window %d differs: %+v vs %+v", trial, i, a, b)
			}
		}
		if len(got.PerRater) != len(want.PerRater) {
			t.Fatalf("trial %d: PerRater sizes %d vs %d", trial, len(got.PerRater), len(want.PerRater))
		}
		for id, s := range want.PerRater {
			if got.PerRater[id] != s {
				t.Fatalf("trial %d rater %d: %+v vs %+v", trial, id, s, got.PerRater[id])
			}
		}
	}
}

func TestDetectWSNilWorkspace(t *testing.T) {
	cfg := Config{Size: 50, Step: 25, Order: 4, Threshold: 0.105}
	rs := genScenario(5, true)
	want, err := Detect(rs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DetectWS(rs, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Windows) != len(want.Windows) || len(got.PerRater) != len(want.PerRater) {
		t.Fatal("nil-workspace DetectWS differs from Detect")
	}
}
