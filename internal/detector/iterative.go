package detector

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rating"
)

// IterativeConfig parameterizes the iterative-filtering baseline in the
// style of de Kerchove & Van Dooren ("Iterative filtering in reputation
// systems"): object reputations are the weight-averaged ratings, rater
// weights are inversely proportional to each rater's squared distance
// from the reputations, and the two are iterated to a fixed point.
// Raters whose converged (normalized) weight falls below
// WeightThreshold are flagged with suspicion 1 - weight.
type IterativeConfig struct {
	// MaxIter bounds the fixed-point iteration. Zero means 50.
	MaxIter int
	// Tol is the convergence tolerance on the max reputation change
	// between iterations. Zero means 1e-10.
	Tol float64
	// Epsilon regularizes the inverse-distance weight so perfectly
	// agreeing raters do not get infinite weight, and damps the spread
	// between honest raters whose residual noise differs by luck. Zero
	// means 1e-3 (squared-distance scale for unit-interval ratings).
	Epsilon float64
	// WeightThreshold flags raters whose normalized weight (median
	// rater = 1, clamped) ends below it. Zero means 0.25; must lie in
	// (0, 1].
	WeightThreshold float64
}

func (c IterativeConfig) withDefaults() IterativeConfig {
	if c.MaxIter == 0 {
		c.MaxIter = 50
	}
	if c.Tol == 0 {
		c.Tol = 1e-10
	}
	if c.Epsilon == 0 {
		c.Epsilon = 1e-3
	}
	if c.WeightThreshold == 0 {
		c.WeightThreshold = 0.25
	}
	return c
}

// Validate reports configuration errors after defaulting.
func (c IterativeConfig) Validate() error {
	c = c.withDefaults()
	if c.MaxIter < 1 {
		return fmt.Errorf("iterative: max iterations %d", c.MaxIter)
	}
	if c.Tol <= 0 || math.IsNaN(c.Tol) || math.IsInf(c.Tol, 0) {
		return fmt.Errorf("iterative: tolerance %g", c.Tol)
	}
	if c.Epsilon <= 0 || math.IsNaN(c.Epsilon) || math.IsInf(c.Epsilon, 0) {
		return fmt.Errorf("iterative: epsilon %g", c.Epsilon)
	}
	if c.WeightThreshold <= 0 || c.WeightThreshold > 1 || math.IsNaN(c.WeightThreshold) {
		return fmt.Errorf("iterative: weight threshold %g outside (0,1]", c.WeightThreshold)
	}
	return nil
}

// IterativeResult is the converged state of one filtering pass.
type IterativeResult struct {
	// Reputation is the weight-averaged value per object.
	Reputation map[rating.ObjectID]float64
	// Weights maps each rater to its converged weight, normalized so
	// the median rater has weight 1 and clamped to [0, 1]. The median
	// anchor is robust: one rater with near-zero residual cannot crush
	// everyone else's normalized weight the way a max anchor would.
	Weights map[rating.RaterID]float64
	// Suspicion maps each rater whose normalized weight fell below
	// WeightThreshold to 1 - weight, in [0, 1]. Heavier raters are
	// absent.
	Suspicion map[rating.RaterID]float64
	// Iterations is how many fixed-point rounds ran.
	Iterations int
	// Converged reports whether the loop hit Tol before MaxIter.
	Converged bool
}

// IterativeFilter runs reputation/weight fixed-point iteration over rs.
// Malformed records (NaN/Inf values or times) are dropped, mirroring
// collusion.Detect. The pass is deterministic: raters and objects are
// processed in ascending ID order, so the result is a pure function of
// the rating multiset and the config.
func IterativeFilter(rs []rating.Rating, cfg IterativeConfig) (IterativeResult, error) {
	if err := cfg.Validate(); err != nil {
		return IterativeResult{}, err
	}
	cfg = cfg.withDefaults()

	// Fold each rater's ratings per object to a mean, dropping
	// malformed records. Accumulation in (rater, object, time, value)
	// order keeps float folds input-order independent.
	type key struct {
		rater  rating.RaterID
		object rating.ObjectID
	}
	clean := make([]rating.Rating, 0, len(rs))
	for _, r := range rs {
		if math.IsNaN(r.Value) || math.IsInf(r.Value, 0) ||
			math.IsNaN(r.Time) || math.IsInf(r.Time, 0) {
			continue
		}
		clean = append(clean, r)
	}
	sort.Slice(clean, func(i, j int) bool {
		a, b := clean[i], clean[j]
		if a.Rater != b.Rater {
			return a.Rater < b.Rater
		}
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		return a.Value < b.Value
	})
	sums := make(map[key]*struct {
		sum float64
		n   int
	})
	for _, r := range clean {
		k := key{r.Rater, r.Object}
		agg := sums[k]
		if agg == nil {
			agg = &struct {
				sum float64
				n   int
			}{}
			sums[k] = agg
		}
		agg.sum += r.Value
		agg.n++
	}
	if len(sums) == 0 {
		return IterativeResult{
			Reputation: map[rating.ObjectID]float64{},
			Weights:    map[rating.RaterID]float64{},
			Suspicion:  map[rating.RaterID]float64{},
			Converged:  true,
		}, nil
	}

	// Index raters and objects in ascending order.
	raterSet := make(map[rating.RaterID]bool)
	objectSet := make(map[rating.ObjectID]bool)
	for k := range sums {
		raterSet[k.rater] = true
		objectSet[k.object] = true
	}
	raters := make([]rating.RaterID, 0, len(raterSet))
	for id := range raterSet {
		raters = append(raters, id)
	}
	sort.Slice(raters, func(i, j int) bool { return raters[i] < raters[j] })
	objects := make([]rating.ObjectID, 0, len(objectSet))
	for id := range objectSet {
		objects = append(objects, id)
	}
	sort.Slice(objects, func(i, j int) bool { return objects[i] < objects[j] })
	objIndex := make(map[rating.ObjectID]int, len(objects))
	for i, id := range objects {
		objIndex[id] = i
	}

	// Per-rater dense-ish view: (object index, mean value) ascending.
	type entry struct {
		obj int
		val float64
	}
	byRater := make([][]entry, len(raters))
	for i, id := range raters {
		var es []entry
		for _, obj := range objects {
			if agg, ok := sums[key{id, obj}]; ok {
				es = append(es, entry{objIndex[obj], agg.sum / float64(agg.n)})
			}
		}
		byRater[i] = es
	}

	// Fixed point: r_j = sum_i w_i x_ij / sum_i w_i over raters who
	// rated j; d_i = mean_j (x_ij - r_j)^2; w_i = 1 / (d_i + eps).
	weights := make([]float64, len(raters))
	for i := range weights {
		weights[i] = 1
	}
	rep := make([]float64, len(objects))
	prev := make([]float64, len(objects))
	var iter int
	converged := false
	for iter = 1; iter <= cfg.MaxIter; iter++ {
		num := make([]float64, len(objects))
		den := make([]float64, len(objects))
		for i, es := range byRater {
			w := weights[i]
			for _, e := range es {
				num[e.obj] += w * e.val
				den[e.obj] += w
			}
		}
		for j := range rep {
			if den[j] > 0 {
				rep[j] = num[j] / den[j]
			}
		}
		for i, es := range byRater {
			var d float64
			for _, e := range es {
				diff := e.val - rep[e.obj]
				d += diff * diff
			}
			if len(es) > 0 {
				d /= float64(len(es))
			}
			weights[i] = 1 / (d + cfg.Epsilon)
		}
		var delta float64
		for j := range rep {
			if diff := math.Abs(rep[j] - prev[j]); diff > delta {
				delta = diff
			}
		}
		copy(prev, rep)
		if iter > 1 && delta < cfg.Tol {
			converged = true
			break
		}
	}
	if iter > cfg.MaxIter {
		iter = cfg.MaxIter
	}

	// Normalize weights so the median rater sits at 1 (clamped): the
	// bulk of raters are presumed honest, so "suspicious" means "far
	// below the typical weight", not "below the single best".
	sortedW := append([]float64(nil), weights...)
	sort.Float64s(sortedW)
	var wmed float64
	if n := len(sortedW); n%2 == 1 {
		wmed = sortedW[n/2]
	} else {
		wmed = (sortedW[n/2-1] + sortedW[n/2]) / 2
	}
	result := IterativeResult{
		Reputation: make(map[rating.ObjectID]float64, len(objects)),
		Weights:    make(map[rating.RaterID]float64, len(raters)),
		Suspicion:  make(map[rating.RaterID]float64),
		Iterations: iter,
		Converged:  converged,
	}
	for j, obj := range objects {
		result.Reputation[obj] = rep[j]
	}
	for i, id := range raters {
		w := weights[i]
		if wmed > 0 {
			w /= wmed
		}
		if w > 1 {
			w = 1
		}
		result.Weights[id] = w
		if w < cfg.WeightThreshold {
			s := 1 - w
			if s < 0 {
				s = 0
			}
			if s > 1 {
				s = 1
			}
			result.Suspicion[id] = s
		}
	}
	return result, nil
}
