package detector

import (
	"math"
	"testing"

	"repro/internal/randx"
	"repro/internal/rating"
)

// iterativeWorkload: honest raters rate every object near its true
// quality; outliers push a flat +bias everywhere.
func iterativeWorkload(seed int64) ([]rating.Rating, []rating.RaterID) {
	rng := randx.New(seed)
	quality := []float64{0.2, 0.5, 0.8}
	var rs []rating.Rating
	for id := 0; id < 10; id++ {
		for obj, q := range quality {
			for k := 0; k < 3; k++ {
				rs = append(rs, rating.Rating{
					Rater:  rating.RaterID(id),
					Object: rating.ObjectID(obj),
					Value:  q + rng.Normal(0, 0.05),
					Time:   float64(k * 10),
				})
			}
		}
	}
	bad := []rating.RaterID{50, 51}
	for _, id := range bad {
		for obj := range quality {
			for k := 0; k < 3; k++ {
				rs = append(rs, rating.Rating{
					Rater:  id,
					Object: rating.ObjectID(obj),
					Value:  0.95,
					Time:   float64(k * 10),
				})
			}
		}
	}
	return rs, bad
}

func TestIterativeFilterDownweightsOutliers(t *testing.T) {
	rs, bad := iterativeWorkload(1)
	res, err := IterativeFilter(rs, IterativeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge in %d iterations", res.Iterations)
	}
	for _, id := range bad {
		s, ok := res.Suspicion[id]
		if !ok {
			t.Fatalf("outlier %d not flagged (weights %v)", id, res.Weights)
		}
		if s < 0.5 || s > 1 {
			t.Fatalf("outlier %d suspicion %g", id, s)
		}
	}
	for id, w := range res.Weights {
		if id < 50 && w < 0.2 {
			t.Fatalf("honest rater %d weight %g collapsed", id, w)
		}
	}
	// The filtered reputation of object 0 (true quality 0.2) must sit
	// much closer to the truth than the naive mean, which the 0.95
	// outliers drag upward.
	if r := res.Reputation[0]; math.Abs(r-0.2) > 0.1 {
		t.Fatalf("object 0 reputation %g, want near 0.2", r)
	}
}

func TestIterativeFilterDeterministic(t *testing.T) {
	rs, _ := iterativeWorkload(2)
	a, err := IterativeFilter(rs, IterativeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rev := make([]rating.Rating, len(rs))
	for i, r := range rs {
		rev[len(rs)-1-i] = r
	}
	b, err := IterativeFilter(rev, IterativeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for obj, r := range a.Reputation {
		if b.Reputation[obj] != r {
			t.Fatalf("reputation for %d differs: %g vs %g", obj, r, b.Reputation[obj])
		}
	}
	for id, w := range a.Weights {
		if b.Weights[id] != w {
			t.Fatalf("weight for %d differs: %g vs %g", id, w, b.Weights[id])
		}
	}
}

func TestIterativeFilterEmptyAndMalformed(t *testing.T) {
	res, err := IterativeFilter(nil, IterativeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Weights) != 0 || !res.Converged {
		t.Fatalf("empty input: %+v", res)
	}
	res, err = IterativeFilter([]rating.Rating{
		{Rater: 1, Object: 1, Value: math.NaN(), Time: 0},
		{Rater: 2, Object: 1, Value: 0.5, Time: math.Inf(-1)},
	}, IterativeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Weights) != 0 {
		t.Fatalf("malformed input produced weights: %+v", res)
	}
}

func TestIterativeConfigValidate(t *testing.T) {
	bad := []IterativeConfig{
		{MaxIter: -1},
		{Tol: -1},
		{Tol: math.NaN()},
		{Epsilon: -1},
		{WeightThreshold: 1.5},
		{WeightThreshold: -0.1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
	if err := (IterativeConfig{}).Validate(); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
}

func TestIterativeFilterAllAgree(t *testing.T) {
	// Unanimous raters must all keep weight 1 and flag nobody.
	var rs []rating.Rating
	for id := 0; id < 5; id++ {
		rs = append(rs, rating.Rating{
			Rater: rating.RaterID(id), Object: 1, Value: 0.6, Time: 1,
		})
	}
	res, err := IterativeFilter(rs, IterativeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Suspicion) != 0 {
		t.Fatalf("unanimous raters flagged: %+v", res.Suspicion)
	}
	for id, w := range res.Weights {
		if w != 1 {
			t.Fatalf("rater %d weight %g, want 1", id, w)
		}
	}
	if res.Reputation[1] != 0.6 {
		t.Fatalf("reputation %g, want 0.6", res.Reputation[1])
	}
}
