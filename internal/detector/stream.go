package detector

import (
	"errors"
	"fmt"

	"repro/internal/rating"
	"repro/internal/signal"
)

// ErrOutOfOrder is returned when a streamed rating arrives with a time
// before the previous one.
var ErrOutOfOrder = errors.New("detector: rating out of time order")

// Stream is the online form of Procedure 1: ratings for one object are
// pushed as they arrive and window reports are emitted the moment each
// count window completes, with the same suspicion bookkeeping as the
// batch Detect. Memory stays bounded: ratings older than the next
// window start are discarded.
//
// Only count-based windowing is supported (a live system knows "every
// 50 ratings" immediately, whereas a time window can only close when a
// later rating — or an external clock — proves it is over; callers with
// a clock can run batch Detect per maintenance interval instead, as
// core.System does).
type Stream struct {
	// OnAccrue, when non-nil, is invoked for every positive suspicion
	// increment with the rater, the delta just added to its Suspicion,
	// and the time of the rating that completed the window. It fires
	// inside Push, so it must not call back into the Stream.
	OnAccrue func(id rating.RaterID, delta, at float64)

	cfg        Config
	minSamples int

	// sig and values are the reusable AR-fit scratch: a Stream is
	// single-goroutine by contract, so it owns one workspace for life.
	sig    signal.Workspace
	values []float64

	buf []rating.Rating
	// emitted counts windows already reported.
	emitted int
	// consumed is the absolute index (over all pushed ratings) of
	// buf[0].
	consumed int
	total    int
	lastTime float64

	latest   map[rating.RaterID]float64
	perRater map[rating.RaterID]RaterStats
	// pendingSuspicious marks buffered ratings (relative to consumed)
	// whose membership in a suspicious window has been counted.
	pendingSuspicious map[int]bool
}

// NewStream builds a streaming detector. cfg.Mode must be
// WindowByCount (or zero, which defaults to it).
func NewStream(cfg Config) (*Stream, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if cfg.Mode != WindowByCount {
		return nil, fmt.Errorf("detector: stream supports count windows only")
	}
	minSamples := signal.MinSamples(effectiveMethod(cfg.Signal), cfg.Order)
	if cfg.MinWindow > minSamples {
		minSamples = cfg.MinWindow
	}
	return &Stream{
		cfg:               cfg,
		minSamples:        minSamples,
		latest:            make(map[rating.RaterID]float64),
		perRater:          make(map[rating.RaterID]RaterStats),
		pendingSuspicious: make(map[int]bool),
	}, nil
}

// Push appends one rating and returns the window reports completed by
// it (zero or one for step >= 1; exactly one at each step boundary once
// the first window has filled). Ratings must arrive in non-decreasing
// time order.
func (s *Stream) Push(r rating.Rating) ([]WindowReport, error) {
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("detector: %w", err)
	}
	if s.total > 0 && r.Time < s.lastTime {
		return nil, fmt.Errorf("detector: %g after %g: %w", r.Time, s.lastTime, ErrOutOfOrder)
	}
	s.lastTime = r.Time
	s.buf = append(s.buf, r)
	s.total++
	// With Step > Size, ratings can land in the gap between windows;
	// they are dead on arrival and trimmed immediately so the buffer
	// stays bounded by Size+Step regardless of geometry.
	s.compact()

	stats := s.perRater[r.Rater]
	stats.TotalRatings++
	s.perRater[r.Rater] = stats

	var out []WindowReport
	for {
		start := s.emitted * s.cfg.Step // absolute index of next window
		if start+s.cfg.Size > s.total {
			break
		}
		rel := start - s.consumed
		member := s.buf[rel : rel+s.cfg.Size]
		wr, err := s.fitWindow(member, start)
		if err != nil {
			return nil, err
		}
		if wr.Suspicious {
			s.accrueWindow(member, rel, wr.Level)
		}
		out = append(out, wr)
		s.emitted++
		s.compact()
	}
	return out, nil
}

func (s *Stream) fitWindow(member []rating.Rating, start int) (WindowReport, error) {
	w := rating.Window{
		Index:   s.emitted,
		Start:   member[0].Time,
		End:     member[len(member)-1].Time,
		Lo:      start,
		Hi:      start + len(member),
		Ratings: member,
	}
	wr := WindowReport{Window: w}
	if len(member) < s.minSamples {
		return wr, nil
	}
	s.values = rating.AppendValues(s.values[:0], member)
	model, err := signal.FitWS(s.values, s.cfg.Order, s.cfg.Signal, &s.sig)
	if err != nil {
		if errors.Is(err, signal.ErrTooShort) {
			return wr, nil
		}
		return WindowReport{}, fmt.Errorf("detector: stream window %d: %w", s.emitted, err)
	}
	wr.Fitted = true
	wr.Model = model
	if model.NormalizedError < s.cfg.Threshold {
		wr.Suspicious = true
		wr.Level = suspicionLevel(model.NormalizedError, s.cfg)
	}
	return wr, nil
}

// accrueWindow applies Procedure 1's per-rater update for one
// suspicious window whose members start at buffer offset rel.
func (s *Stream) accrueWindow(member []rating.Rating, rel int, level float64) {
	for i, r := range member {
		abs := s.consumed + rel + i
		if !s.pendingSuspicious[abs] {
			s.pendingSuspicious[abs] = true
			stats := s.perRater[r.Rater]
			stats.SuspiciousRatings++
			s.perRater[r.Rater] = stats
		}
		prev := s.latest[r.Rater]
		if level <= prev {
			continue
		}
		delta := level - prev
		stats := s.perRater[r.Rater]
		stats.Suspicion += delta
		s.perRater[r.Rater] = stats
		s.latest[r.Rater] = level
		if s.OnAccrue != nil {
			s.OnAccrue(r.Rater, delta, s.lastTime)
		}
	}
}

// compact drops buffered ratings that can no longer appear in a window.
// When Step > Size the next window start can exceed what has been
// pushed so far (a gap); only what is actually buffered is droppable
// now, and arrivals landing in the gap are trimmed by the next call.
func (s *Stream) compact() {
	nextStart := s.emitted * s.cfg.Step
	drop := nextStart - s.consumed
	if drop > len(s.buf) {
		drop = len(s.buf)
	}
	if drop <= 0 {
		return
	}
	for abs := s.consumed; abs < s.consumed+drop; abs++ {
		delete(s.pendingSuspicious, abs)
	}
	s.buf = append(s.buf[:0], s.buf[drop:]...)
	s.consumed += drop
}

// PerRater returns a copy of the accumulated per-rater statistics —
// the same quantities batch Detect reports.
func (s *Stream) PerRater() map[rating.RaterID]RaterStats {
	out := make(map[rating.RaterID]RaterStats, len(s.perRater))
	for id, st := range s.perRater {
		out[id] = st
	}
	return out
}

// Windows returns how many windows have been emitted.
func (s *Stream) Windows() int { return s.emitted }

// Buffered returns how many ratings are currently held.
func (s *Stream) Buffered() int { return len(s.buf) }
