package detector

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/randx"
	"repro/internal/rating"
)

func TestNewStreamValidation(t *testing.T) {
	if _, err := NewStream(Config{Mode: WindowByTime}); err == nil {
		t.Fatal("time mode accepted")
	}
	if _, err := NewStream(Config{Order: -1}); err == nil {
		t.Fatal("bad config accepted")
	}
	// Zero mode defaults to count.
	if _, err := NewStream(Config{}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamRejectsOutOfOrder(t *testing.T) {
	s, err := NewStream(Config{Size: 10, Step: 5, Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Push(rating.Rating{Rater: 1, Value: 0.5, Time: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Push(rating.Rating{Rater: 2, Value: 0.5, Time: 4}); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.Push(rating.Rating{Rater: 3, Value: 2, Time: 6}); err == nil {
		t.Fatal("invalid rating accepted")
	}
}

func TestStreamEmitsAtBoundaries(t *testing.T) {
	s, err := NewStream(Config{Size: 10, Step: 5, Order: 2, Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var emitted int
	for i := 0; i < 25; i++ {
		reports, err := s.Push(rating.Rating{Rater: rating.RaterID(i), Value: 0.8, Time: float64(i)})
		if err != nil {
			t.Fatal(err)
		}
		emitted += len(reports)
		// First window completes at the 10th rating, then every 5th.
		switch {
		case i < 9 && len(reports) != 0:
			t.Fatalf("report before first window at i=%d", i)
		case i == 9 && len(reports) != 1:
			t.Fatalf("no report at first boundary")
		case i == 14 && len(reports) != 1:
			t.Fatalf("no report at second boundary")
		}
	}
	if emitted != 4 || s.Windows() != 4 {
		t.Fatalf("emitted %d windows", emitted)
	}
	// Buffer stays bounded near Size.
	if s.Buffered() > 15 {
		t.Fatalf("buffer grew to %d", s.Buffered())
	}
}

// streamOver pushes a full trace and returns all window reports.
func streamOver(t *testing.T, rs []rating.Rating, cfg Config) ([]WindowReport, map[rating.RaterID]RaterStats) {
	t.Helper()
	s, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var windows []WindowReport
	for _, r := range rs {
		reports, err := s.Push(r)
		if err != nil {
			t.Fatal(err)
		}
		windows = append(windows, reports...)
	}
	return windows, s.PerRater()
}

func TestStreamMatchesBatchDetect(t *testing.T) {
	// The streaming detector must reproduce batch Detect exactly:
	// same windows, same models, same per-rater statistics.
	for seed := int64(0); seed < 5; seed++ {
		rs := genScenario(seed, true)
		cfg := Config{Mode: WindowByCount, Size: 50, Step: 25, Threshold: 0.08}

		batch, err := Detect(rs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		streamed, perRater := streamOver(t, rs, cfg)

		if len(streamed) != len(batch.Windows) {
			t.Fatalf("seed %d: %d streamed windows vs %d batch", seed, len(streamed), len(batch.Windows))
		}
		for i := range streamed {
			b := batch.Windows[i]
			s := streamed[i]
			if s.Fitted != b.Fitted || s.Suspicious != b.Suspicious {
				t.Fatalf("seed %d window %d: flags differ", seed, i)
			}
			if s.Model.NormalizedError != b.Model.NormalizedError {
				t.Fatalf("seed %d window %d: error %g vs %g", seed, i,
					s.Model.NormalizedError, b.Model.NormalizedError)
			}
			if s.Level != b.Level {
				t.Fatalf("seed %d window %d: level %g vs %g", seed, i, s.Level, b.Level)
			}
		}
		if len(perRater) != len(batch.PerRater) {
			t.Fatalf("seed %d: per-rater sizes differ", seed)
		}
		for id, st := range batch.PerRater {
			if perRater[id] != st {
				t.Fatalf("seed %d rater %d: %+v vs %+v", seed, id, perRater[id], st)
			}
		}
	}
}

func TestStreamConstantCliqueFlagged(t *testing.T) {
	s, err := NewStream(Config{Size: 20, Step: 10, Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var suspicious int
	for i := 0; i < 40; i++ {
		reports, err := s.Push(rating.Rating{Rater: 7, Value: 0.9, Time: float64(i)})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range reports {
			if w.Suspicious {
				suspicious++
			}
		}
	}
	if suspicious < 2 {
		t.Fatalf("%d suspicious windows", suspicious)
	}
	st := s.PerRater()[7]
	// Incremental max across overlapping windows: exactly one level's
	// worth (the ridge leaves a ~1e-9 residual under 1).
	if math.Abs(st.Suspicion-1) > 1e-8 {
		t.Fatalf("suspicion = %g", st.Suspicion)
	}
	if st.SuspiciousRatings != 40 {
		t.Fatalf("suspicious ratings = %d", st.SuspiciousRatings)
	}
}

// TestStreamGappedWindows pins the Step > Size geometry: windows are
// disjoint with dead ratings between them, which the buffer must trim
// on arrival instead of hoarding (or, as before this test, panicking).
func TestStreamGappedWindows(t *testing.T) {
	cfg := Config{Mode: WindowByCount, Size: 8, Step: 19, Order: 2, Threshold: 0.3}
	rng := randx.New(11)
	var rs []rating.Rating
	for i := 0; i < 120; i++ {
		rs = append(rs, rating.Rating{
			Rater: rating.RaterID(rng.Intn(10)),
			Value: randx.Quantize(rng.Float64(), 11, true),
			Time:  float64(i),
		})
	}
	batch, err := Detect(rs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, werr := NewStream(cfg)
	if werr != nil {
		t.Fatal(werr)
	}
	var streamed []WindowReport
	for _, r := range rs {
		reports, err := s.Push(r)
		if err != nil {
			t.Fatal(err)
		}
		streamed = append(streamed, reports...)
		if s.Buffered() > cfg.Size {
			t.Fatalf("buffer grew to %d with gapped windows", s.Buffered())
		}
	}
	if len(streamed) != len(batch.Windows) || len(streamed) == 0 {
		t.Fatalf("%d streamed windows vs %d batch", len(streamed), len(batch.Windows))
	}
	for i := range streamed {
		if streamed[i].Model.NormalizedError != batch.Windows[i].Model.NormalizedError {
			t.Fatalf("window %d: error %g vs %g", i,
				streamed[i].Model.NormalizedError, batch.Windows[i].Model.NormalizedError)
		}
	}
	per := s.PerRater()
	for id, st := range batch.PerRater {
		if per[id] != st {
			t.Fatalf("rater %d: %+v vs %+v", id, per[id], st)
		}
	}
}

// TestStreamOnAccrue checks that the accrual hook sees exactly the
// per-rater suspicion mass: summing the deltas reproduces PerRater.
func TestStreamOnAccrue(t *testing.T) {
	s, err := NewStream(Config{Size: 20, Step: 10, Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	sums := map[rating.RaterID]float64{}
	var lastAt float64
	s.OnAccrue = func(id rating.RaterID, delta, at float64) {
		if delta <= 0 {
			t.Fatalf("non-positive delta %g", delta)
		}
		sums[id] += delta
		lastAt = at
	}
	for i := 0; i < 45; i++ {
		if _, err := s.Push(rating.Rating{Rater: rating.RaterID(i % 3), Value: 0.9, Time: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if len(sums) == 0 {
		t.Fatal("hook never fired")
	}
	if lastAt == 0 {
		t.Fatal("hook never saw a completion time")
	}
	for id, st := range s.PerRater() {
		if st.Suspicion != sums[id] {
			t.Fatalf("rater %d: hook sum %g vs suspicion %g", id, sums[id], st.Suspicion)
		}
	}
}

// Property: streaming equals batch for arbitrary traces and window
// geometries.
func TestStreamEquivalenceProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := randx.New(seed)
		n := 30 + rng.Intn(150)
		rs := make([]rating.Rating, n)
		now := 0.0
		for i := range rs {
			// Times are non-decreasing with a fat tie mass so duplicate
			// timestamps land inside and across windows.
			if i == 0 || rng.Float64() > 0.3 {
				now += rng.Float64()
			}
			rs[i] = rating.Rating{
				Rater: rating.RaterID(rng.Intn(20)),
				Value: randx.Quantize(rng.Float64(), 11, true),
				Time:  now,
			}
		}
		size := 10 + rng.Intn(30)
		// Step ranges past Size: gapped windows discard the ratings
		// that land between consecutive windows.
		step := 1 + rng.Intn(2*size)
		// Force duplicate timestamps exactly at window boundaries: the
		// last rating of a window shares its time with the first rating
		// after it.
		for b := step; b < n; b += step {
			if rng.Float64() < 0.5 {
				// Lowering rs[b] to its predecessor keeps the trace
				// non-decreasing: rs[b+1] >= old rs[b] >= new rs[b].
				rs[b].Time = rs[b-1].Time
			}
		}
		cfg := Config{Mode: WindowByCount, Size: size, Step: step, Threshold: 0.3}

		batch, err := Detect(rs, cfg)
		if err != nil {
			return false
		}
		s, err := NewStream(cfg)
		if err != nil {
			return false
		}
		var streamed []WindowReport
		for _, r := range rs {
			reports, err := s.Push(r)
			if err != nil {
				return false
			}
			streamed = append(streamed, reports...)
		}
		if len(streamed) != len(batch.Windows) {
			return false
		}
		for i := range streamed {
			if streamed[i].Suspicious != batch.Windows[i].Suspicious ||
				streamed[i].Model.NormalizedError != batch.Windows[i].Model.NormalizedError {
				return false
			}
		}
		per := s.PerRater()
		for id, st := range batch.PerRater {
			if per[id] != st {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
