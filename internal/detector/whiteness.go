package detector

import (
	"fmt"

	"repro/internal/rating"
	"repro/internal/stat"
)

// WhitenessConfig parameterizes DetectWhiteness.
type WhitenessConfig struct {
	// Config supplies the windowing (and Scale); Threshold and Order
	// are unused by this detector.
	Config
	// Lags is the number of autocorrelation lags Ljung-Box tests; zero
	// means 10.
	Lags int
	// Alpha is the significance level: a window whose whiteness
	// p-value falls below Alpha is marked suspicious. Zero means 0.05.
	Alpha float64
}

func (c WhitenessConfig) withDefaults() WhitenessConfig {
	c.Config = c.Config.withDefaults()
	if c.Lags == 0 {
		c.Lags = 10
	}
	if c.Alpha == 0 {
		c.Alpha = 0.05
	}
	return c
}

// Validate reports configuration errors.
func (c WhitenessConfig) Validate() error {
	cd := c.withDefaults()
	if err := cd.Config.Validate(); err != nil {
		return err
	}
	if cd.Lags < 1 {
		return fmt.Errorf("detector: whiteness lags %d", cd.Lags)
	}
	if cd.Alpha <= 0 || cd.Alpha >= 1 {
		return fmt.Errorf("detector: whiteness alpha %g outside (0,1)", cd.Alpha)
	}
	return nil
}

// DetectWhiteness is the statistically textbook rendering of the
// paper's §III.A.1 premise — "(x(t)−E(x(t))) should approximately be
// white noise" for honest ratings — as a detector: each window is
// demeaned and Ljung-Box tested; windows where whiteness is rejected
// (p < Alpha) are suspicious.
//
// It exists as a baseline: the ablation-whiteness experiment shows that
// interleaved collaborative ratings barely disturb the autocorrelation
// sequence, so this detector misses the smart attack that the paper's
// raw AR-error heuristic (which keys on the clique's variance collapse)
// catches. The WindowReport's Model is left zero; the whiteness
// p-value is stored in Model.NormalizedError for plotting symmetry.
func DetectWhiteness(rs []rating.Rating, cfg WhitenessConfig) (Report, error) {
	if err := cfg.Validate(); err != nil {
		return Report{}, err
	}
	cfg = cfg.withDefaults()

	windows, err := buildWindows(rs, cfg.Config)
	if err != nil {
		return Report{}, err
	}

	ws := &Workspace{}
	report := ws.begin(rs, len(windows))
	for _, r := range rs {
		s := report.PerRater[r.Rater]
		s.TotalRatings++
		report.PerRater[r.Rater] = s
	}

	minSamples := cfg.Lags + 2
	if cfg.MinWindow > minSamples {
		minSamples = cfg.MinWindow
	}

	for _, w := range windows {
		wr := WindowReport{Window: w}
		if len(w.Ratings) >= minSamples {
			ws.values = rating.AppendValues(ws.values[:0], w.Ratings)
			_, p, lerr := stat.LjungBox(ws.values, cfg.Lags)
			if lerr != nil {
				return Report{}, fmt.Errorf("detector: whiteness window %d: %w", w.Index, lerr)
			}
			wr.Fitted = true
			wr.Model.NormalizedError = p
			if p < cfg.Alpha {
				wr.Suspicious = true
				wr.Level = cfg.Scale * (1 - p/cfg.Alpha)
			}
		}
		if wr.Suspicious {
			accrue(&report, rs, w, wr.Level, ws.latest, ws.inSuspicious)
		}
		report.Windows = append(report.Windows, wr)
	}

	ws.finish(&report, rs)
	return report, nil
}

// accrue applies Procedure 1's per-rater suspicion update for one
// suspicious window (shared by both detectors).
func accrue(report *Report, rs []rating.Rating, w rating.Window, level float64, latest map[rating.RaterID]float64, inSuspicious []bool) {
	for idx := w.Lo; idx < w.Hi && idx < len(rs); idx++ {
		inSuspicious[idx] = true
		j := rs[idx].Rater
		prev := latest[j]
		switch {
		case prev == 0:
			s := report.PerRater[j]
			s.Suspicion += level
			report.PerRater[j] = s
			latest[j] = level
		case level > prev:
			s := report.PerRater[j]
			s.Suspicion += level - prev
			report.PerRater[j] = s
			latest[j] = level
		}
	}
}
