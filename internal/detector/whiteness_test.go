package detector

import (
	"testing"

	"repro/internal/randx"
	"repro/internal/rating"
)

func TestWhitenessConfigValidate(t *testing.T) {
	if err := (WhitenessConfig{}).Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	bad := []WhitenessConfig{
		{Lags: -1},
		{Alpha: 1},
		{Alpha: -0.5},
		{Config: Config{Size: -1}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestDetectWhitenessOnWhiteNoise(t *testing.T) {
	// Honest-like iid ratings: at alpha = 0.05, about 5% of windows
	// should be flagged. Over many windows, require < 15%.
	rng := randx.New(1)
	var rs []rating.Rating
	for i := 0; i < 2000; i++ {
		rs = append(rs, rating.Rating{
			Rater: rating.RaterID(i),
			Value: randx.Quantize(rng.NormalVar(0.7, 0.04), 11, true),
			Time:  float64(i),
		})
	}
	rep, err := DetectWhiteness(rs, WhitenessConfig{
		Config: Config{Mode: WindowByCount, Size: 100, Step: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	fitted, flagged := 0, 0
	for _, w := range rep.Windows {
		if w.Fitted {
			fitted++
			if w.Suspicious {
				flagged++
			}
		}
	}
	if fitted == 0 {
		t.Fatal("no windows fitted")
	}
	if rate := float64(flagged) / float64(fitted); rate > 0.15 {
		t.Fatalf("white-noise flag rate %.2f", rate)
	}
}

func TestDetectWhitenessOnCorrelatedSeries(t *testing.T) {
	// A strongly autocorrelated rating stream (slow oscillation between
	// camps) must be flagged.
	var rs []rating.Rating
	for i := 0; i < 400; i++ {
		v := 0.4
		if (i/40)%2 == 0 {
			v = 0.8
		}
		rs = append(rs, rating.Rating{
			Rater: rating.RaterID(i),
			Value: v,
			Time:  float64(i),
		})
	}
	rep, err := DetectWhiteness(rs, WhitenessConfig{
		Config: Config{Mode: WindowByCount, Size: 100, Step: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.SuspiciousWindows()) == 0 {
		t.Fatal("oscillating stream not flagged")
	}
	// Rater bookkeeping mirrors the AR detector's.
	total := 0
	for _, s := range rep.PerRater {
		total += s.TotalRatings
		if s.SuspiciousRatings > s.TotalRatings {
			t.Fatalf("bad stats %+v", s)
		}
	}
	if total != len(rs) {
		t.Fatalf("totals %d != %d", total, len(rs))
	}
}

func TestDetectWhitenessSkipsShortWindows(t *testing.T) {
	var rs []rating.Rating
	for i := 0; i < 8; i++ {
		rs = append(rs, rating.Rating{Rater: rating.RaterID(i), Value: 0.5, Time: float64(i)})
	}
	rep, err := DetectWhiteness(rs, WhitenessConfig{
		Config: Config{Mode: WindowByCount, Size: 8, Step: 8},
		Lags:   10,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range rep.Windows {
		if w.Fitted {
			t.Fatal("short window fitted")
		}
	}
}

// TestWhitenessMissesSmartCollusion documents the baseline's blind
// spot: interleaved low-variance colluders barely disturb the
// autocorrelation, so Ljung-Box sees "white".
func TestWhitenessMissesSmartCollusion(t *testing.T) {
	flagged := 0
	const runs = 10
	for seed := int64(0); seed < runs; seed++ {
		rs := genScenario(seed, true)
		rep, err := DetectWhiteness(rs, WhitenessConfig{
			Config: Config{Mode: WindowByCount, Size: 50, Step: 25},
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range rep.Windows {
			if w.Suspicious && w.Window.Start >= 30 && w.Window.End <= 44 {
				flagged++
				break
			}
		}
	}
	// The AR detector catches most of these runs; whiteness should
	// catch notably fewer (allow some, it is a statistical test).
	if flagged > runs/2 {
		t.Fatalf("whiteness flagged %d/%d smart-collusion runs; expected it to mostly miss", flagged, runs)
	}
}
