package experiments

import (
	"fmt"

	"repro/internal/detector"
	"repro/internal/mathx"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/randx"
	"repro/internal/signal"
	"repro/internal/sim"
	"repro/internal/stat"
	"repro/internal/trust"
)

// separation holds one detector configuration's honest-vs-attacked
// error statistics on the illustrative workload. The operating point is
// chosen per configuration as the threshold whose run-level false-alarm
// rate is 5% (the 5th percentile of each honest run's minimum window
// error), so detection numbers are comparable across configurations
// with different absolute error scales.
type separation struct {
	honestErr, attackErr float64
	threshold            float64 // the 5%-false-alarm threshold
	detection            float64 // run-level detection at that threshold
}

// separationStudy measures how well a detector configuration separates
// honest from attacked windows on the §III.A.2 workload.
func separationStudy(seed int64, runs, workers int, cfg detector.Config) (separation, error) {
	rng := randx.New(seed)
	probe := cfg
	probe.Threshold = 0.999

	type runErrs struct {
		honestErrs, attackErrs []float64
		honestMin, attackMin   float64
	}
	seeds := rng.Seeds(runs)
	perRun, err := parallel.MapLocal(runs, workers,
		detector.NewWorkspace,
		func(i int, ws *detector.Workspace) (runErrs, error) {
			local := randx.New(seeds[i])
			p := sim.DefaultIllustrative()
			attacked, err := sim.GenerateIllustrative(local, p)
			if err != nil {
				return runErrs{}, err
			}
			repA, err := detector.DetectWS(sim.Ratings(attacked), probe, ws)
			if err != nil {
				return runErrs{}, err
			}
			pHonest := p
			pHonest.Attack = false
			honest, err := sim.GenerateIllustrative(local.Split(), pHonest)
			if err != nil {
				return runErrs{}, err
			}
			repH, err := detector.DetectWS(sim.Ratings(honest), probe, ws)
			if err != nil {
				return runErrs{}, err
			}

			out := runErrs{honestMin: 1.0, attackMin: 1.0}
			for _, w := range repH.Windows {
				if w.Fitted {
					out.honestErrs = append(out.honestErrs, w.Model.NormalizedError)
					if w.Model.NormalizedError < out.honestMin {
						out.honestMin = w.Model.NormalizedError
					}
				}
			}
			for _, w := range repA.Windows {
				if !w.Fitted {
					continue
				}
				center := (w.Window.Start + w.Window.End) / 2
				if center >= p.AStart && center <= p.AEnd {
					out.attackErrs = append(out.attackErrs, w.Model.NormalizedError)
					if w.Model.NormalizedError < out.attackMin {
						out.attackMin = w.Model.NormalizedError
					}
				}
			}
			return out, nil
		})
	if err != nil {
		return separation{}, err
	}
	var honestErrs, attackErrs, honestMins []float64
	var attackMins []float64 // per attacked run: min error among in-attack windows
	for _, r := range perRun {
		honestErrs = append(honestErrs, r.honestErrs...)
		attackErrs = append(attackErrs, r.attackErrs...)
		honestMins = append(honestMins, r.honestMin)
		attackMins = append(attackMins, r.attackMin)
	}

	out := separation{
		honestErr: stat.Mean(honestErrs),
		attackErr: stat.Mean(attackErrs),
	}
	thr, err := stat.Quantile(honestMins, 0.05)
	if err != nil {
		return separation{}, err
	}
	out.threshold = thr
	var det int
	for _, m := range attackMins {
		if m < thr {
			det++
		}
	}
	out.detection = float64(det) / float64(len(attackMins))
	return out, nil
}

// anySuspiciousUnder re-thresholds a probe report (run with threshold
// ~1) at the given threshold, restricted to windows overlapping
// [start, end].
func anySuspiciousUnder(rep detector.Report, threshold, start, end float64) bool {
	for _, w := range rep.Windows {
		if !w.Fitted {
			continue
		}
		if w.Window.End >= start && w.Window.Start <= end && w.Model.NormalizedError < threshold {
			return true
		}
	}
	return false
}

func separationRow(label string, s separation) []string {
	return []string{
		label, f(s.honestErr), f(s.attackErr),
		f(s.honestErr / mathx.Clamp(s.attackErr, 1e-9, 1)),
		f(s.threshold), f(s.detection),
	}
}

var separationColumns = []string{
	"config", "honest err", "attack err", "separation", "thr@5%FA", "detection@5%FA",
}

// AblationDemean contrasts fitting raw rating windows (the paper's
// Matlab covm pipeline) against demeaning first. Demeaning removes the
// DC component the detector keys on, collapsing the separation — the
// evidence for DESIGN.md's choice of raw fits.
func AblationDemean(seed int64, mode Mode, opt Options) (Result, error) {
	runs := runsFor(mode, 120, 20)
	workers := parallel.Workers(opt.Workers)
	table := Table{Title: "raw vs demeaned AR fits", Columns: separationColumns}
	for _, demean := range []bool{false, true} {
		cfg := illustrativeDetectorConfig()
		cfg.Signal = signal.Options{Demean: demean}
		s, err := separationStudy(seed, runs, workers, cfg)
		if err != nil {
			return Result{}, err
		}
		label := "raw (paper)"
		if demean {
			label = "demeaned"
		}
		table.Rows = append(table.Rows, separationRow(label, s))
	}
	return Result{
		ID:     "ablation-demean",
		Title:  "Ablation: demeaning the window before the AR fit",
		Notes:  []string{fmt.Sprintf("%d runs; separation = honest/attack mean error ratio (higher is better)", runs)},
		Tables: []Table{table},
	}, nil
}

// AblationARMethod compares the covariance method against Yule-Walker
// and Burg estimators.
func AblationARMethod(seed int64, mode Mode, opt Options) (Result, error) {
	runs := runsFor(mode, 120, 20)
	workers := parallel.Workers(opt.Workers)
	table := Table{Title: "AR estimator comparison", Columns: separationColumns}
	for _, method := range []signal.Method{signal.MethodCovariance, signal.MethodYuleWalker, signal.MethodBurg} {
		cfg := illustrativeDetectorConfig()
		cfg.Signal = signal.Options{Method: method}
		s, err := separationStudy(seed, runs, workers, cfg)
		if err != nil {
			return Result{}, err
		}
		table.Rows = append(table.Rows, separationRow(method.String(), s))
	}
	return Result{
		ID:     "ablation-armethod",
		Title:  "Ablation: AR parameter estimation method",
		Notes:  []string{fmt.Sprintf("%d runs on the illustrative workload", runs)},
		Tables: []Table{table},
	}, nil
}

// AblationOrder sweeps the AR model order.
func AblationOrder(seed int64, mode Mode, opt Options) (Result, error) {
	runs := runsFor(mode, 120, 20)
	workers := parallel.Workers(opt.Workers)
	table := Table{Title: "AR model order sweep", Columns: separationColumns}
	for _, order := range []int{2, 4, 6, 8, 12} {
		cfg := illustrativeDetectorConfig()
		cfg.Order = order
		s, err := separationStudy(seed, runs, workers, cfg)
		if err != nil {
			return Result{}, err
		}
		table.Rows = append(table.Rows, separationRow(fmt.Sprintf("order %d", order), s))
	}
	return Result{
		ID:     "ablation-order",
		Title:  "Ablation: AR model order",
		Notes:  []string{fmt.Sprintf("%d runs; window of 50 ratings", runs)},
		Tables: []Table{table},
	}, nil
}

// AblationWindow sweeps the detection window size (with 50% overlap).
func AblationWindow(seed int64, mode Mode, opt Options) (Result, error) {
	runs := runsFor(mode, 120, 20)
	workers := parallel.Workers(opt.Workers)
	table := Table{Title: "detector window sweep", Columns: separationColumns}
	for _, size := range []int{30, 50, 70, 100} {
		cfg := illustrativeDetectorConfig()
		cfg.Size = size
		cfg.Step = size / 2
		s, err := separationStudy(seed, runs, workers, cfg)
		if err != nil {
			return Result{}, err
		}
		table.Rows = append(table.Rows, separationRow(fmt.Sprintf("%d ratings", size), s))
	}
	return Result{
		ID:     "ablation-window",
		Title:  "Ablation: detection window size (50% overlap)",
		Notes:  []string{fmt.Sprintf("%d runs", runs)},
		Tables: []Table{table},
	}, nil
}

// AblationThresholdROC sweeps the model-error threshold and reports the
// resulting detection/false-alarm operating curve.
func AblationThresholdROC(seed int64, mode Mode, opt Options) (Result, error) {
	runs := runsFor(mode, 120, 20)
	rng := randx.New(seed)
	probe := illustrativeDetectorConfig()
	probe.Threshold = 0.999

	type pair struct {
		attacked, honest detector.Report
		start, end       float64
	}
	seeds := rng.Seeds(runs)
	pairs, err := parallel.MapLocal(runs, parallel.Workers(opt.Workers),
		detector.NewWorkspace,
		func(i int, ws *detector.Workspace) (pair, error) {
			local := randx.New(seeds[i])
			p := sim.DefaultIllustrative()
			attacked, err := sim.GenerateIllustrative(local, p)
			if err != nil {
				return pair{}, err
			}
			repA, err := detector.DetectWS(sim.Ratings(attacked), probe, ws)
			if err != nil {
				return pair{}, err
			}
			p.Attack = false
			honest, err := sim.GenerateIllustrative(local.Split(), p)
			if err != nil {
				return pair{}, err
			}
			repH, err := detector.DetectWS(sim.Ratings(honest), probe, ws)
			if err != nil {
				return pair{}, err
			}
			return pair{attacked: repA, honest: repH, start: 30, end: 44}, nil
		})
	if err != nil {
		return Result{}, err
	}

	det := Series{Name: "detection-ratio"}
	fa := Series{Name: "false-alarm-ratio"}
	for thr := 0.02; thr <= 0.30001; thr += 0.02 {
		var d, a int
		for _, pr := range pairs {
			if anySuspiciousUnder(pr.attacked, thr, pr.start, pr.end) {
				d++
			}
			if anySuspiciousUnder(pr.honest, thr, 0, 1e18) {
				a++
			}
		}
		det.X = append(det.X, thr)
		det.Y = append(det.Y, float64(d)/float64(runs))
		fa.X = append(fa.X, thr)
		fa.Y = append(fa.Y, float64(a)/float64(runs))
	}

	// Threshold-free summary: run-level AUC over minimum window errors
	// (lower error = more attack-like, so scores are negated).
	var scores []metrics.Score
	for _, pr := range pairs {
		scores = append(scores,
			metrics.Score{Score: -minWindowError(pr.attacked, pr.start, pr.end), Positive: true},
			metrics.Score{Score: -minWindowError(pr.honest, 0, 1e18), Positive: false},
		)
	}
	auc, err := metrics.AUC(scores)
	if err != nil {
		return Result{}, err
	}

	return Result{
		ID:    "ablation-threshold",
		Title: "Ablation: model-error threshold ROC",
		Notes: []string{
			fmt.Sprintf("%d runs; the paper operates at detection 0.782 / false alarm 0.06", runs),
			fmt.Sprintf("run-level AUC of the minimum window error: %.4f", auc),
		},
		Series: []Series{det, fa},
	}, nil
}

// minWindowError returns the smallest fitted error among windows
// overlapping [start, end] (1 when none are fitted).
func minWindowError(rep detector.Report, start, end float64) float64 {
	minErr := 1.0
	for _, w := range rep.Windows {
		if !w.Fitted {
			continue
		}
		if w.Window.End >= start && w.Window.Start <= end && w.Model.NormalizedError < minErr {
			minErr = w.Model.NormalizedError
		}
	}
	return minErr
}

// AblationTrustFloor sweeps Method 3's trust floor on the tab2 case
// study (floor 0.5 is the paper's "neutral" cut; floor 0 degenerates to
// the plain trust-weighted average).
func AblationTrustFloor(seed int64, mode Mode, opt Options) (Result, error) {
	runs := runsFor(mode, 500, 50)
	rng := randx.New(seed)

	aggs := []struct {
		label string
		agg   trust.Aggregator
	}{
		{"floor 0 (plain weighted)", trust.PlainWeightedAverage{}},
		{"floor 0.3", trust.ModifiedWeightedAverage{Floor: 0.3}},
		{"floor 0.5 (paper)", trust.ModifiedWeightedAverage{Floor: 0.5}},
		{"floor 0.6", trust.ModifiedWeightedAverage{Floor: 0.6}},
		{"floor 0.7", trust.ModifiedWeightedAverage{Floor: 0.7}},
	}
	type runVals struct {
		vals []float64
		fail []bool
	}
	seeds := rng.Seeds(runs)
	perRun, err := parallel.Map(runs, parallel.Workers(opt.Workers),
		func(i int) (runVals, error) {
			local := randx.New(seeds[i])
			var ratings, trusts []float64
			for j := 0; j < 10; j++ {
				ratings = append(ratings, mathx.Clamp(local.Normal(0.8, 0.05), 0, 1))
				trusts = append(trusts, mathx.Clamp(local.Normal(0.95, 0.05), 0, 1))
			}
			for j := 0; j < 10; j++ {
				ratings = append(ratings, mathx.Clamp(local.Normal(0.4, 0.02), 0, 1))
				trusts = append(trusts, mathx.Clamp(local.Normal(0.6, 0.1), 0, 1))
			}
			out := runVals{vals: make([]float64, len(aggs)), fail: make([]bool, len(aggs))}
			for k, a := range aggs {
				v, err := a.agg.Aggregate(ratings, trusts)
				if err != nil {
					out.fail[k] = true
					continue
				}
				out.vals[k] = v
			}
			return out, nil
		})
	if err != nil {
		return Result{}, err
	}
	sums := make([]float64, len(aggs))
	fails := make([]int, len(aggs))
	for _, r := range perRun {
		for k := range aggs {
			if r.fail[k] {
				fails[k]++
			} else {
				sums[k] += r.vals[k]
			}
		}
	}
	table := Table{
		Title:   "trust-floor sweep (desired 0.8)",
		Columns: []string{"floor", "mean Rag", "undefined runs"},
	}
	for k, a := range aggs {
		ok := runs - fails[k]
		mean := 0.0
		if ok > 0 {
			mean = sums[k] / float64(ok)
		}
		table.Rows = append(table.Rows, []string{a.label, f(mean), fmt.Sprintf("%d", fails[k])})
	}
	return Result{
		ID:     "ablation-floor",
		Title:  "Ablation: Method 3 trust floor",
		Notes:  []string{fmt.Sprintf("%d runs of the tab2 case study", runs)},
		Tables: []Table{table},
	}, nil
}
