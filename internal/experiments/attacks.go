package experiments

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/parallel"
	"repro/internal/randx"
	"repro/internal/rating"
	"repro/internal/sim"
	"repro/internal/stat"
)

// AblationAttacks evaluates the full pipeline against the adaptive
// collusion strategies of internal/attack — the paper's future-work
// question ("possible attacks to the proposed solutions"). For every
// strategy it reports, over repeated runs on the illustrative workload:
//
//   - detection ratio: runs with at least one suspicious window
//     overlapping the campaign;
//   - naive damage: how far the simple average moves versus the simple
//     average of the honest-only trace;
//   - proposed damage: how far the full system's trust-weighted
//     aggregate moves versus the same pipeline run on the honest-only
//     trace (same-pipeline baselining cancels the Beta filter's
//     truncation bias, which raises any aggregate of wide honest noise);
//   - residual damage: proposed / naive (lower = better defense).
func AblationAttacks(seed int64, mode Mode, opt Options) (Result, error) {
	runs := runsFor(mode, 60, 10)
	rng := randx.New(seed)
	workers := parallel.Workers(opt.Workers)
	strats := attack.All()

	table := Table{
		Title: "adaptive-attack robustness (illustrative workload)",
		Columns: []string{
			"strategy", "detection", "naive damage", "proposed damage", "residual",
		},
	}

	// The serial loop drew one stream seed per (strategy, run) in
	// flat order, so all of them are pre-drawn at once.
	seeds := rng.Seeds(len(strats) * runs)
	type outcome struct {
		detected               bool
		naiveDamage, propDamage float64
	}

	var notes []string
	for s, strat := range strats {
		outs, err := parallel.MapLocal(runs, workers,
			detector.NewWorkspace,
			func(i int, ws *detector.Workspace) (outcome, error) {
				local := randx.New(seeds[s*runs+i])
				p := sim.DefaultIllustrative()
				p.Attack = false
				honest, err := sim.GenerateIllustrative(local, p)
				if err != nil {
					return outcome{}, err
				}
				// local.Int63() is the seed local.Split() would have
				// consumed, so the planned campaigns are unchanged.
				campaign, err := strat.Plan(local.Int63(), attack.Params{
					Object:   p.Object,
					Start:    p.AStart,
					End:      p.AEnd,
					Rate:     p.ArrivalRate * p.RecruitPower2,
					Bias:     p.BiasShift2,
					Variance: p.BadVar,
					Levels:   p.RLevels,
				}, attack.FlatQuality(p.Quality))
				if err != nil {
					return outcome{}, fmt.Errorf("%s: %w", strat.Name(), err)
				}
				combined := append(append([]sim.LabeledRating(nil), honest...), campaign...)
				sim.SortByTime(combined)
				rs := sim.Ratings(combined)

				rep, err := detector.DetectWS(rs, illustrativeDetectorConfig(), ws)
				if err != nil {
					return outcome{}, err
				}
				var out outcome
				out.detected = anySuspiciousOverlapping(rep, p.AStart, p.AEnd)

				honestMean := stat.Mean(rating.Values(sim.Ratings(honest)))
				naive := stat.Mean(rating.Values(rs))

				attackedAgg, err := pipelineAggregate(rs, p.Object)
				if err != nil {
					return outcome{}, err
				}
				honestAgg, err := pipelineAggregate(sim.Ratings(honest), p.Object)
				if err != nil {
					return outcome{}, err
				}
				out.naiveDamage = naive - honestMean
				out.propDamage = attackedAgg - honestAgg
				return out, nil
			})
		if err != nil {
			return Result{}, err
		}
		var detected int
		naiveDamage := make([]float64, 0, runs)
		proposedDamage := make([]float64, 0, runs)
		for _, o := range outs {
			if o.detected {
				detected++
			}
			naiveDamage = append(naiveDamage, o.naiveDamage)
			proposedDamage = append(proposedDamage, o.propDamage)
		}

		nd := stat.Mean(naiveDamage)
		pd := stat.Mean(proposedDamage)
		residual := 0.0
		if nd > 1e-9 {
			residual = pd / nd
		}
		table.Rows = append(table.Rows, []string{
			strat.Name(),
			f(float64(detected) / float64(runs)),
			f(nd), f(pd), f(residual),
		})
		notes = append(notes, fmt.Sprintf("%s: detection %.2f, damage %.3f→%.3f",
			strat.Name(), float64(detected)/float64(runs), nd, pd))
	}

	return Result{
		ID:    "ablation-attacks",
		Title: "Robustness against adaptive collusion strategies (future work of §V)",
		Notes: append([]string{
			fmt.Sprintf("%d runs per strategy at the tab1 operating threshold %.3f", runs, illustrativeThreshold),
		}, notes...),
		Tables: []Table{table},
	}, nil
}

// pipelineAggregate runs one trace through the full system (two 30-day
// maintenance windows) and returns the trust-weighted aggregate.
func pipelineAggregate(rs []rating.Rating, obj rating.ObjectID) (float64, error) {
	sys, err := core.NewSystem(core.Config{
		Detector: detector.Config{
			Width: 10, TimeStep: 5, Order: 4,
			Threshold: illustrativeThreshold, MinWindow: 25,
		},
	})
	if err != nil {
		return 0, err
	}
	if err := sys.SubmitAll(rs); err != nil {
		return 0, err
	}
	for _, w := range [][2]float64{{0, 30}, {30, 60}} {
		if _, err := sys.ProcessWindow(w[0], w[1]); err != nil {
			return 0, err
		}
	}
	agg, err := sys.Aggregate(obj)
	if err != nil {
		return 0, err
	}
	return agg.Value, nil
}
