package experiments

import (
	"fmt"

	"repro/internal/filter"
	"repro/internal/parallel"
	"repro/internal/rating"
)

// AblationBaselines quantifies the paper's §IV.B punchline — "no
// existing algorithms are able to detect collaborative unfair raters
// that use their second strategy... the detection ratios are all 0" —
// by scoring every majority-rule baseline filter on the marketplace
// workload at rating level: what fraction of ground-truth unfair
// ratings does each filter reject (detection), and what fraction of
// fair ratings does it reject (false alarm)? The proposed AR pipeline
// (filter rejections plus suspicious-window membership, as in fig9) is
// the last row.
func AblationBaselines(seed int64, mode Mode, opt Options) (Result, error) {
	run, err := runMarketplace(seed, paramsFor(mode, nil), parallel.Workers(opt.Workers))
	if err != nil {
		return Result{}, err
	}

	type key struct {
		r rating.RaterID
		o rating.ObjectID
	}
	unfair := make(map[key]bool)
	var unfairTotal, fairTotal int
	for _, l := range run.trace.Ratings {
		if l.Unfair {
			unfair[key{l.Rating.Rater, l.Rating.Object}] = true
			unfairTotal++
		} else {
			fairTotal++
		}
	}
	if unfairTotal == 0 || fairTotal == 0 {
		return Result{}, fmt.Errorf("experiments: degenerate trace (%d unfair, %d fair)", unfairTotal, fairTotal)
	}

	baselines := []filter.Filter{
		filter.Beta{Q: 0.1},
		filter.Quantile{Q: 0.1},
		filter.Entropy{Levels: run.params.Levels},
		filter.Endorsement{},
		filter.Cluster{},
	}

	table := Table{
		Title:   "rating-level detection on the §IV marketplace",
		Columns: []string{"method", "unfair detection", "fair false alarm"},
	}

	// Baselines: apply each filter to the same monthly per-object
	// batches the system processes.
	for _, flt := range baselines {
		var unfairHit, fairHit int
		for m := 0; m < run.params.Months; m++ {
			start := float64(m * run.params.DaysPerMonth)
			end := start + float64(run.params.DaysPerMonth) + 1e-9
			perObject := make(map[rating.ObjectID][]rating.Rating)
			for _, l := range run.trace.Ratings {
				if l.Rating.Time >= start && l.Rating.Time < end {
					perObject[l.Rating.Object] = append(perObject[l.Rating.Object], l.Rating)
				}
			}
			for _, rs := range perObject {
				res, err := flt.Apply(rs)
				if err != nil {
					return Result{}, fmt.Errorf("%s: %w", flt.Name(), err)
				}
				for _, r := range res.Rejected {
					if unfair[key{r.Rater, r.Object}] {
						unfairHit++
					} else {
						fairHit++
					}
				}
			}
		}
		table.Rows = append(table.Rows, []string{
			flt.Name(),
			f(float64(unfairHit) / float64(unfairTotal)),
			f(float64(fairHit) / float64(fairTotal)),
		})
	}

	// The proposed pipeline: filter rejections plus suspicious-window
	// membership, from the already-processed reports.
	var unfairHit, fairHit int
	for _, rep := range run.reports {
		for _, obj := range rep.Objects {
			flagged := make(map[key]bool)
			for _, r := range obj.Rejected {
				flagged[key{r.Rater, r.Object}] = true
			}
			for _, r := range obj.FlaggedRatings() {
				flagged[key{r.Rater, r.Object}] = true
			}
			for k := range flagged {
				if unfair[k] {
					unfairHit++
				} else {
					fairHit++
				}
			}
		}
	}
	table.Rows = append(table.Rows, []string{
		"AR pipeline (proposed)",
		f(float64(unfairHit) / float64(unfairTotal)),
		f(float64(fairHit) / float64(fairTotal)),
	})

	return Result{
		ID:         "ablation-baselines",
		Title:      "Baseline filters vs the AR pipeline on collaborative unfair ratings",
		PaperClaim: "no existing algorithms are able to detect collaborative unfair raters that use their second strategy — the detection ratios are all 0",
		Notes: []string{
			fmt.Sprintf("%d unfair / %d fair ratings over %d months", unfairTotal, fairTotal, run.params.Months),
		},
		Tables: []Table{table},
	}, nil
}
