package experiments

import (
	"fmt"

	"repro/internal/mathx"
	"repro/internal/parallel"
	"repro/internal/randx"
	"repro/internal/trust"
)

// Tab2Aggregators regenerates the §III.B.2 comparison of rating
// aggregation methods: 10 honest raters (ratings ~ N(0.8, σ 0.05),
// trust ~ N(0.95, σ 0.05)) versus 10 collaborative raters (ratings ~
// N(0.4, σ 0.02), trust ~ N(0.6, σ 0.1)), no filtering, averaged over
// 500 runs. The paper reports M1 0.6365, M2 0.6138, M3 0.7445,
// M4 0.5985; the desired value is the honest mean 0.8.
//
// The case study's tight spreads are treated as standard deviations
// (see DESIGN.md, variance semantics).
func Tab2Aggregators(seed int64, mode Mode, opt Options) (Result, error) {
	runs := runsFor(mode, 500, 50)
	rng := randx.New(seed)

	methods := trust.Methods()
	seeds := rng.Seeds(runs)
	perRun, err := parallel.Map(runs, parallel.Workers(opt.Workers),
		func(i int) ([]float64, error) {
			local := randx.New(seeds[i])
			ratings := make([]float64, 0, 20)
			trusts := make([]float64, 0, 20)
			for j := 0; j < 10; j++ {
				ratings = append(ratings, mathx.Clamp(local.Normal(0.8, 0.05), 0, 1))
				trusts = append(trusts, mathx.Clamp(local.Normal(0.95, 0.05), 0, 1))
			}
			for j := 0; j < 10; j++ {
				ratings = append(ratings, mathx.Clamp(local.Normal(0.4, 0.02), 0, 1))
				trusts = append(trusts, mathx.Clamp(local.Normal(0.6, 0.1), 0, 1))
			}
			vals := make([]float64, len(methods))
			for k, m := range methods {
				v, err := m.Aggregate(ratings, trusts)
				if err != nil {
					return nil, fmt.Errorf("tab2 %s: %w", m.Name(), err)
				}
				vals[k] = v
			}
			return vals, nil
		})
	if err != nil {
		return Result{}, err
	}
	// Summed in run order, so the floating-point totals match the
	// serial loop exactly.
	sums := make(map[string]float64)
	for _, vals := range perRun {
		for k, m := range methods {
			sums[m.Name()] += vals[k]
		}
	}

	paper := map[string]string{
		"simple-average":            "0.6365",
		"beta-aggregation":          "0.6138",
		"modified-weighted-average": "0.7445",
		"trust-weighted-beta":       "0.5985",
	}
	table := Table{
		Title:   "average aggregated rating (desired 0.8, 50% colluders)",
		Columns: []string{"method", "paper", "measured"},
	}
	for i, m := range methods {
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("M%d %s", i+1, m.Name()),
			paper[m.Name()],
			f(sums[m.Name()] / float64(runs)),
		})
	}

	m3 := sums["modified-weighted-average"] / float64(runs)
	return Result{
		ID:         "tab2",
		Title:      "Comparison of rating aggregation methods under 50% collusion",
		PaperClaim: "the modified weighted average (M3) drops only 7% from the desired 0.8; all other methods fall near 0.6",
		Notes: []string{
			fmt.Sprintf("measured over %d runs; M3 deficit from desired 0.8: %.1f%%", runs, 100*(0.8-m3)/0.8),
		},
		Tables: []Table{table},
	}, nil
}
