package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/randx"
	"repro/internal/rating"
)

// AblationChurn studies population turnover — a deployment concern the
// paper does not evaluate. Every month a fraction of the rater
// population is replaced by fresh identities that start at the neutral
// trust 0.5, exactly at Method 3's floor, so they carry no aggregation
// weight until they build history. The sweep measures, per churn rate:
//
//   - mean trust of the active population at year end;
//   - fallback rate: how often the trust-weighted aggregate (read
//     mid-month, before that month's maintenance pass) found no rater
//     above the floor and fell back to the simple average;
//   - aggregate RMSE against true product quality.
//
// The expected shape: moderate churn costs little (one month of history
// already lifts honest raters above the floor), while extreme churn
// starves the trust-weighted path and degrades toward the naive
// average.
func AblationChurn(seed int64, mode Mode, opt Options) (Result, error) {
	months := 12
	population := 100
	if mode == Quick {
		months = 6
		population = 60
	}
	const (
		daysPerMonth = 30
		ratingsEach  = 3 // ratings per active rater per month
	)
	churnRates := []float64{0, 0.1, 0.25, 0.5, 0.9, 1.0}

	table := Table{
		Title:   "population churn sweep",
		Columns: []string{"monthly churn", "mean active trust", "fallback rate", "aggregate RMSE"},
	}

	rng := randx.New(seed)
	// One stream per churn rate; the whole sweep fans out.
	seeds := rng.Seeds(len(churnRates))
	rows, err := parallel.Map(len(churnRates), parallel.Workers(opt.Workers), func(ci int) ([]string, error) {
		churn := churnRates[ci]
		local := randx.New(seeds[ci])
		sys, err := core.NewSystem(core.Config{})
		if err != nil {
			return nil, err
		}

		active := make([]rating.RaterID, population)
		for i := range active {
			active[i] = rating.RaterID(i)
		}
		nextID := rating.RaterID(population)

		var fallbacks, aggregates int
		var sqErr float64
		for m := 0; m < months; m++ {
			// Replace churn·N raters with fresh identities.
			replace := int(churn * float64(population))
			for _, idx := range local.SampleWithoutReplacement(population, replace) {
				active[idx] = nextID
				nextID++
			}
			obj := rating.ObjectID(m + 1)
			quality := local.Uniform(0.4, 0.6)
			start := float64(m * daysPerMonth)
			for _, id := range active {
				for k := 0; k < ratingsEach; k++ {
					v := randx.Quantize(local.NormalVar(quality, 0.04), 11, true)
					if err := sys.Submit(rating.Rating{
						Rater:  id,
						Object: obj,
						Value:  v,
						Time:   start + local.Uniform(0, daysPerMonth),
					}); err != nil {
						return nil, err
					}
				}
			}
			// The aggregate is read while the month is still live — before
			// its maintenance pass — which is when cold start bites: this
			// month's newcomers still sit at the neutral floor.
			agg, err := sys.Aggregate(obj)
			if err != nil {
				return nil, err
			}
			if _, err := sys.ProcessWindow(start, start+daysPerMonth); err != nil {
				return nil, err
			}
			aggregates++
			if agg.FellBack {
				fallbacks++
			}
			sqErr += (agg.Value - quality) * (agg.Value - quality)
		}

		var trustSum float64
		for _, id := range active {
			trustSum += sys.TrustIn(id)
		}
		return []string{
			fmt.Sprintf("%.0f%%", 100*churn),
			f(trustSum / float64(population)),
			f(float64(fallbacks) / float64(aggregates)),
			f(math.Sqrt(sqErr / float64(aggregates))),
		}, nil
	})
	if err != nil {
		return Result{}, err
	}
	table.Rows = append(table.Rows, rows...)

	return Result{
		ID:    "ablation-churn",
		Title: "Ablation: rater-population churn and trust cold start",
		Notes: []string{
			fmt.Sprintf("%d months, %d active raters, %d ratings each per month; newcomers start at the neutral 0.5",
				months, population, ratingsEach),
			"month 1 always falls back (no history exists yet); at 100% churn every month does — the trust-weighted path needs surviving history, and in an honest-only world the fallback is benign",
		},
		Tables: []Table{table},
	}, nil
}
