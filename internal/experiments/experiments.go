// Package experiments defines one deterministic runner per table and
// figure of the paper's evaluation, plus the ablation studies listed in
// DESIGN.md. Each runner is a pure function of (seed, mode) returning a
// structured Result that cmd/experiments renders as text/CSV and the
// root benchmarks execute.
//
// Monte-Carlo runners fan their independent iterations out over
// internal/parallel. The per-iteration stream seeds are pre-drawn from
// the base RNG in index order (randx.Rand.Seeds), so the Result is
// bit-identical for every worker count — Options.Workers only changes
// wall-clock time, never a number.
package experiments

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Mode selects experiment fidelity.
type Mode int

const (
	// Full runs the paper-scale Monte Carlo (e.g. 500 runs for tab1).
	Full Mode = iota + 1
	// Quick shrinks run counts for benchmarks and CI while keeping the
	// workload shape.
	Quick
)

// Series is one named (x, y) line of a figure.
type Series struct {
	Name string
	X, Y []float64
}

// Table is a printable table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Result is one experiment's structured output.
type Result struct {
	// ID is the experiment key ("fig4", "tab2", "ablation-order", ...).
	ID string
	// Title restates what the paper artifact shows.
	Title string
	// PaperClaim records what the paper reports, for EXPERIMENTS.md.
	PaperClaim string
	// Notes carry measured headline numbers and substitutions.
	Notes []string
	// Series hold figure lines; Tables hold table artifacts.
	Series []Series
	Tables []Table
}

// Options carries cross-cutting execution knobs. The zero value is the
// default configuration.
type Options struct {
	// Workers bounds the Monte-Carlo fan-out; <= 0 means GOMAXPROCS.
	// Results are bit-identical for every value (see the package doc).
	Workers int
}

// Runner executes one experiment.
type Runner func(seed int64, mode Mode, opt Options) (Result, error)

// ErrUnknownExperiment is returned for unregistered IDs.
var ErrUnknownExperiment = errors.New("experiments: unknown experiment")

// registry maps experiment IDs to runners. Populated by Register calls
// from each experiment file's runners() wiring.
func registry() map[string]Runner {
	return map[string]Runner{
		"fig2":  Fig2RawRatings,
		"fig3":  Fig3Histogram,
		"fig4":  Fig4ModelError,
		"tab1":  Tab1DetectionRates,
		"fig5":  Fig5Netflix,
		"tab2":  Tab2Aggregators,
		"fig6":  Fig6TrustEvolution,
		"fig7":  Fig7TrustMonth6,
		"fig8":  Fig8TrustMonth12,
		"fig9":  Fig9DetectionCapability,
		"fig10": Fig10HonestProducts,
		"fig11": Fig11DishonestProducts,
		"fig12": Fig12DishonestProductsBias02,

		"ablation-attacks":    AblationAttacks,
		"ablation-whiteness":  AblationWhiteness,
		"ablation-forgetting": AblationForgetting,
		"ablation-baselines":  AblationBaselines,
		"ablation-churn":      AblationChurn,
		"ablation-latency":    AblationLatency,
		"ablation-prior":      AblationPrior,
		"matrix":              Matrix,
		"ablation-demean":     AblationDemean,
		"ablation-armethod":   AblationARMethod,
		"ablation-order":      AblationOrder,
		"ablation-window":     AblationWindow,
		"ablation-threshold":  AblationThresholdROC,
		"ablation-floor":      AblationTrustFloor,
	}
}

// IDs returns every registered experiment ID, sorted.
func IDs() []string {
	reg := registry()
	out := make([]string, 0, len(reg))
	for id := range reg {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by ID with default Options.
func Run(id string, seed int64, mode Mode) (Result, error) {
	return RunWith(id, seed, mode, Options{})
}

// RunWith executes one experiment by ID with explicit Options.
func RunWith(id string, seed int64, mode Mode, opt Options) (Result, error) {
	runner, ok := registry()[id]
	if !ok {
		return Result{}, fmt.Errorf("%q: %w", id, ErrUnknownExperiment)
	}
	return runner(seed, mode, opt)
}

// RenderText writes a human-readable report of r.
func RenderText(w io.Writer, r Result) error {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s — %s ===\n", r.ID, r.Title)
	if r.PaperClaim != "" {
		fmt.Fprintf(&b, "paper: %s\n", r.PaperClaim)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note:  %s\n", n)
	}
	for _, t := range r.Tables {
		fmt.Fprintf(&b, "\n%s\n", t.Title)
		fmt.Fprintf(&b, "  %s\n", strings.Join(t.Columns, "\t"))
		for _, row := range t.Rows {
			fmt.Fprintf(&b, "  %s\n", strings.Join(row, "\t"))
		}
	}
	for _, s := range r.Series {
		fmt.Fprintf(&b, "\nseries %s (%d points)\n", s.Name, len(s.X))
		for i := range s.X {
			fmt.Fprintf(&b, "  %.4f\t%.6f\n", s.X[i], s.Y[i])
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV writes each series and table of r into dir as CSV files
// named <id>_<artifact>.csv.
func WriteCSV(dir string, r Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	for _, s := range r.Series {
		rows := [][]string{{"x", "y"}}
		for i := range s.X {
			rows = append(rows, []string{
				strconv.FormatFloat(s.X[i], 'g', -1, 64),
				strconv.FormatFloat(s.Y[i], 'g', -1, 64),
			})
		}
		if err := writeCSVFile(filepath.Join(dir, csvName(r.ID, "series", s.Name)), rows); err != nil {
			return err
		}
	}
	for _, t := range r.Tables {
		rows := [][]string{t.Columns}
		rows = append(rows, t.Rows...)
		if err := writeCSVFile(filepath.Join(dir, csvName(r.ID, "table", t.Title)), rows); err != nil {
			return err
		}
	}
	return nil
}

func csvName(id, kind, name string) string {
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '-'
		}
	}, name)
	return fmt.Sprintf("%s_%s_%s.csv", id, kind, clean)
}

func writeCSVFile(path string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		return fmt.Errorf("experiments: write %s: %w", path, err)
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return fmt.Errorf("experiments: flush %s: %w", path, err)
	}
	return nil
}

// runsFor scales a Monte-Carlo count by mode.
func runsFor(mode Mode, full, quick int) int {
	if mode == Quick {
		return quick
	}
	return full
}

func f(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
