package experiments

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

func TestIDsRegistered(t *testing.T) {
	ids := IDs()
	want := []string{
		"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "tab1", "tab2",
		"ablation-demean", "ablation-armethod", "ablation-order",
		"ablation-window", "ablation-threshold", "ablation-floor",
		"ablation-attacks", "ablation-whiteness", "ablation-forgetting", "ablation-baselines", "ablation-churn", "ablation-latency", "ablation-prior",
		"matrix",
	}
	if len(ids) != len(want) {
		t.Fatalf("%d experiments registered, want %d: %v", len(ids), len(want), ids)
	}
	have := make(map[string]bool, len(ids))
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", 1, Quick); !errors.Is(err, ErrUnknownExperiment) {
		t.Fatalf("err = %v", err)
	}
}

func TestRenderTextAndCSV(t *testing.T) {
	res := Result{
		ID:         "x",
		Title:      "test artifact",
		PaperClaim: "the claim",
		Notes:      []string{"a note"},
		Series:     []Series{{Name: "s one", X: []float64{1, 2}, Y: []float64{3, 4}}},
		Tables: []Table{{
			Title:   "t",
			Columns: []string{"a", "b"},
			Rows:    [][]string{{"1", "2"}},
		}},
	}
	var buf bytes.Buffer
	if err := RenderText(&buf, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"test artifact", "the claim", "a note", "series s one", "1.0000\t3.000000"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}

	dir := t.TempDir()
	if err := WriteCSV(dir, res); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("%d CSV files, want 2", len(entries))
	}
	data, err := os.ReadFile(filepath.Join(dir, "x_series_s-one.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "x,y") || !strings.Contains(string(data), "1,3") {
		t.Fatalf("series csv = %q", data)
	}
}

// TestAllExperimentsRunQuick executes every registered experiment in
// Quick mode and sanity-checks the structural output. This is the
// repository's end-to-end regression net over the entire evaluation.
func TestAllExperimentsRunQuick(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := Run(id, 1, Quick)
			if err != nil {
				t.Fatal(err)
			}
			if res.ID != id {
				t.Fatalf("result ID %q", res.ID)
			}
			if res.Title == "" {
				t.Fatal("empty title")
			}
			if len(res.Series) == 0 && len(res.Tables) == 0 {
				t.Fatal("experiment produced no artifacts")
			}
			for _, s := range res.Series {
				if len(s.X) != len(s.Y) {
					t.Fatalf("series %s length mismatch", s.Name)
				}
			}
			for _, tb := range res.Tables {
				for _, row := range tb.Rows {
					if len(row) != len(tb.Columns) {
						t.Fatalf("table %s row width mismatch", tb.Title)
					}
				}
			}
		})
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	for _, id := range []string{"fig4", "tab2", "fig6"} {
		a, err := Run(id, 7, Quick)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(id, 7, Quick)
		if err != nil {
			t.Fatal(err)
		}
		var bufA, bufB bytes.Buffer
		if err := RenderText(&bufA, a); err != nil {
			t.Fatal(err)
		}
		if err := RenderText(&bufB, b); err != nil {
			t.Fatal(err)
		}
		if bufA.String() != bufB.String() {
			t.Fatalf("%s not deterministic", id)
		}
	}
}

// --- Reproduction-shape assertions: the paper's qualitative claims ---

func tableCell(t *testing.T, res Result, rowPrefix string, col int) string {
	t.Helper()
	for _, tb := range res.Tables {
		for _, row := range tb.Rows {
			if strings.HasPrefix(row[0], rowPrefix) {
				return row[col]
			}
		}
	}
	t.Fatalf("row %q not found in %s", rowPrefix, res.ID)
	return ""
}

func parse(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestTab1Shape(t *testing.T) {
	res, err := Run("tab1", 1, Quick)
	if err != nil {
		t.Fatal(err)
	}
	det := parse(t, tableCell(t, res, "detection ratio", 2))
	fa := parse(t, tableCell(t, res, "false alarm ratio", 2))
	if det < 0.5 {
		t.Fatalf("detection ratio %.3f too low", det)
	}
	if fa > 0.25 {
		t.Fatalf("false alarm ratio %.3f too high", fa)
	}
	if det <= fa+0.3 {
		t.Fatalf("detection %.3f does not dominate false alarm %.3f", det, fa)
	}
}

func TestTab2Shape(t *testing.T) {
	res, err := Run("tab2", 1, Quick)
	if err != nil {
		t.Fatal(err)
	}
	m1 := parse(t, tableCell(t, res, "M1", 2))
	m2 := parse(t, tableCell(t, res, "M2", 2))
	m3 := parse(t, tableCell(t, res, "M3", 2))
	m4 := parse(t, tableCell(t, res, "M4", 2))
	if !(m3 > m1 && m3 > m2 && m3 > m4) {
		t.Fatalf("M3 %.3f is not the winner (%.3f %.3f %.3f)", m3, m1, m2, m4)
	}
	if m3 < 0.70 {
		t.Fatalf("M3 %.3f too far from the paper's 0.7445", m3)
	}
}

func TestFig4Shape(t *testing.T) {
	res, err := Run("fig4", 1, Quick)
	if err != nil {
		t.Fatal(err)
	}
	series := map[string]Series{}
	for _, s := range res.Series {
		series[s.Name] = s
	}
	errH, okH := series["model-error-without-CR"]
	errA, okA := series["model-error-with-CR"]
	if !okH || !okA {
		t.Fatal("model error series missing")
	}
	// Minimum error with the attack present must undercut the honest
	// trace's minimum (the Fig 4 drop).
	minH, minA := minOf(errH.Y), minOf(errA.Y)
	if minA >= minH {
		t.Fatalf("attacked min error %.4f not below honest min %.4f", minA, minH)
	}
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

func TestFig5Shape(t *testing.T) {
	res, err := Run("fig5", 1, Quick)
	if err != nil {
		t.Fatal(err)
	}
	var orig, attacked Series
	for _, s := range res.Series {
		switch s.Name {
		case "model-error-original":
			orig = s
		case "model-error-with-collaborative":
			attacked = s
		}
	}
	// Error inside the attack window must dip below the original's
	// values at comparable times.
	origIn := meanWhere(orig, 212, 272)
	attackedIn := meanWhere(attacked, 212, 272)
	if attackedIn >= 0.8*origIn {
		t.Fatalf("attacked error %.4f not clearly below original %.4f in the attack window", attackedIn, origIn)
	}
}

func meanWhere(s Series, lo, hi float64) float64 {
	var sum float64
	var n int
	for i, x := range s.X {
		if x >= lo && x <= hi {
			sum += s.Y[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func TestFig6Shape(t *testing.T) {
	res, err := Run("fig6", 1, Quick)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Series{}
	for _, s := range res.Series {
		byName[s.Name] = s
	}
	rel := byName["reliable"]
	pc := byName["dishonest (PC)"]
	last := len(rel.Y) - 1
	if rel.Y[last] < 0.8 {
		t.Fatalf("reliable final trust %.3f too low", rel.Y[last])
	}
	if pc.Y[last] > 0.5 {
		t.Fatalf("PC final trust %.3f not below 0.5", pc.Y[last])
	}
	if pc.Y[last] >= pc.Y[0] {
		t.Fatal("PC trust did not fall over the year")
	}
}

func TestFig9Shape(t *testing.T) {
	res, err := Run("fig9", 1, Quick)
	if err != nil {
		t.Fatal(err)
	}
	var det, fa Series
	for _, s := range res.Series {
		switch s.Name {
		case "unfair-rating-detection":
			det = s
		case "fair-rating-false-alarm":
			fa = s
		}
	}
	// Over the year, aggregate detection must dominate false alarm.
	if meanOf(det.Y) <= meanOf(fa.Y) {
		t.Fatalf("mean detection %.3f not above mean false alarm %.3f", meanOf(det.Y), meanOf(fa.Y))
	}
	if meanOf(fa.Y) > 0.15 {
		t.Fatalf("mean false alarm %.3f too high", meanOf(fa.Y))
	}
}

func meanOf(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

func TestFig12Shape(t *testing.T) {
	res, err := Run("fig12", 1, Quick)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Series{}
	for _, s := range res.Series {
		byName[s.Name] = s
	}
	simple := byName["simple-average"]
	proposed := byName["modified-weighted-average (proposed)"]
	quality := byName["quality-of-product"]
	devSimple := maxAbsDiff(simple, quality)
	devProposed := maxAbsDiff(proposed, quality)
	if devProposed >= devSimple {
		t.Fatalf("proposed deviation %.3f not below simple %.3f", devProposed, devSimple)
	}
	// Simple average must be visibly boosted on dishonest products.
	if devSimple < 0.05 {
		t.Fatalf("simple-average deviation %.3f suspiciously small — attack missing?", devSimple)
	}
}

// TestWorkerCountInvariance is the package's core determinism contract:
// every registered experiment must produce a bit-identical Result no
// matter how many workers the Monte-Carlo fan-out uses.
func TestWorkerCountInvariance(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			ref, err := RunWith(id, 11, Quick, Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			got, err := RunWith(id, 11, Quick, Options{Workers: 3})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ref, got) {
				var bufA, bufB bytes.Buffer
				_ = RenderText(&bufA, ref)
				_ = RenderText(&bufB, got)
				t.Fatalf("workers=1 vs workers=3 differ:\n--- 1 ---\n%s\n--- 3 ---\n%s", bufA.String(), bufB.String())
			}
		})
	}
}

// TestWorkerSweepTab1Fig6 deepens the invariance check on the two
// benchmark-anchor experiments across a wider worker sweep.
func TestWorkerSweepTab1Fig6(t *testing.T) {
	for _, id := range []string{"tab1", "fig6"} {
		id := id
		t.Run(id, func(t *testing.T) {
			ref, err := RunWith(id, 5, Quick, Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{4, 16} {
				got, err := RunWith(id, 5, Quick, Options{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(ref, got) {
					t.Fatalf("%s: workers=%d Result differs from workers=1", id, workers)
				}
			}
		})
	}
}
