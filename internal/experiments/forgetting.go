package experiments

import (
	"fmt"

	"repro/internal/trust"
)

// AblationForgetting exercises the Record Maintenance module's
// forgetting scheme (§III.B, inherited from [8]): "an honest rater may
// become compromised or an incapable rater may become capable", so old
// observations should weigh less than recent ones.
//
// Two regime-switch scenarios are scored for each per-day forgetting
// factor λ:
//
//   - turncoat: 12 months honest, then colluding — how many months
//     until trust falls below the 0.5 malicious line;
//   - redemption: 12 months colluding, then honest — months until
//     trust recovers above 0.5.
//
// Without forgetting (λ = 1) a long history dominates and both lags
// blow up; aggressive forgetting shortens them at the cost of less
// stable steady-state trust.
func AblationForgetting(seed int64, mode Mode, _ Options) (Result, error) {
	_ = seed // fully deterministic scenario
	const (
		months     = 12
		monthDays  = 30
		maxTrack   = 48 // give slow configurations room to converge
		honestObs  = 10 // clean ratings per month
		colludeObs = 10 // suspicious ratings per month
	)
	factors := []float64{1.0, 0.995, 0.98, 0.95, 0.9}

	table := Table{
		Title:   "forgetting factor sweep (per-day λ)",
		Columns: []string{"lambda", "steady honest trust", "turncoat lag (months)", "redemption lag (months)"},
	}

	for _, lambda := range factors {
		steady, err := steadyHonestTrust(lambda, months, monthDays, honestObs)
		if err != nil {
			return Result{}, err
		}
		turncoat, err := regimeSwitchLag(lambda, months, monthDays, maxTrack, honestObs, colludeObs, true)
		if err != nil {
			return Result{}, err
		}
		redemption, err := regimeSwitchLag(lambda, months, monthDays, maxTrack, honestObs, colludeObs, false)
		if err != nil {
			return Result{}, err
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%.3f", lambda), f(steady), lagString(turncoat, maxTrack), lagString(redemption, maxTrack),
		})
	}

	return Result{
		ID:    "ablation-forgetting",
		Title: "Ablation: record-maintenance forgetting under regime switches",
		Notes: []string{
			fmt.Sprintf("deterministic scenario: %d months in the first regime, then switched; %d observations/month", months, honestObs),
			"lag = months after the switch until trust crosses the 0.5 malicious line ('>' means never within the horizon)",
		},
		Tables: []Table{table},
	}, nil
}

func lagString(lag, maxTrack int) string {
	if lag < 0 {
		return fmt.Sprintf(">%d", maxTrack)
	}
	return fmt.Sprintf("%d", lag)
}

// steadyHonestTrust returns the trust of a purely honest rater after
// the build-up period.
func steadyHonestTrust(lambda float64, months, monthDays, obs int) (float64, error) {
	m, err := trust.NewManager(trust.ManagerConfig{Forgetting: lambda})
	if err != nil {
		return 0, err
	}
	for month := 1; month <= months; month++ {
		if err := m.Update(1, trust.Observation{N: obs}, float64(month*monthDays)); err != nil {
			return 0, err
		}
	}
	return m.Trust(1), nil
}

// regimeSwitchLag builds `months` of one behavior, switches, and
// returns how many months the new behavior needs to push trust across
// 0.5 (negative if it never does within maxTrack months).
func regimeSwitchLag(lambda float64, months, monthDays, maxTrack, honestObs, colludeObs int, honestFirst bool) (int, error) {
	m, err := trust.NewManager(trust.ManagerConfig{Forgetting: lambda})
	if err != nil {
		return 0, err
	}
	honest := trust.Observation{N: honestObs}
	collude := trust.Observation{
		N:             colludeObs,
		Suspicious:    colludeObs,
		SuspicionMass: float64(colludeObs),
	}
	first, second := honest, collude
	if !honestFirst {
		first, second = collude, honest
	}
	now := 0.0
	for month := 1; month <= months; month++ {
		now = float64(month * monthDays)
		if err := m.Update(1, first, now); err != nil {
			return 0, err
		}
	}
	for lag := 1; lag <= maxTrack; lag++ {
		now += float64(monthDays)
		if err := m.Update(1, second, now); err != nil {
			return 0, err
		}
		crossed := m.Trust(1) < 0.5
		if !honestFirst {
			crossed = m.Trust(1) > 0.5
		}
		if crossed {
			return lag, nil
		}
	}
	return -1, nil
}
