package experiments

import (
	"fmt"

	"repro/internal/detector"
	"repro/internal/filter"
	"repro/internal/parallel"
	"repro/internal/randx"
	"repro/internal/rating"
	"repro/internal/sim"
	"repro/internal/stat"
)

// illustrativeDetector is the Procedure-1 configuration for the
// §III.A.2 single-object scenario: Fig 4's "50 ratings in each window"
// with 50% overlap. The model-error threshold is calibrated to this
// library's covariance-method error levels (the paper's absolute 0.02
// belongs to its Matlab pipeline; see EXPERIMENTS.md).
const illustrativeThreshold = 0.105

func illustrativeDetectorConfig() detector.Config {
	return detector.Config{
		Mode:      detector.WindowByCount,
		Size:      50,
		Step:      25,
		Order:     4,
		Threshold: illustrativeThreshold,
		Scale:     1,
	}
}

// Fig2RawRatings regenerates Fig 2: the raw rating scatter of the
// illustrative scenario, one series per rater class.
func Fig2RawRatings(seed int64, _ Mode, _ Options) (Result, error) {
	rng := randx.New(seed)
	ls, err := sim.GenerateIllustrative(rng, sim.DefaultIllustrative())
	if err != nil {
		return Result{}, err
	}
	bySeries := map[string]*Series{}
	order := []string{"honest", "type1-collaborative", "type2-collaborative"}
	for _, name := range order {
		bySeries[name] = &Series{Name: name}
	}
	for _, l := range ls {
		name := "honest"
		switch l.Class {
		case sim.Type1Collaborative:
			name = "type1-collaborative"
		case sim.Type2Collaborative:
			name = "type2-collaborative"
		}
		s := bySeries[name]
		s.X = append(s.X, l.Rating.Time)
		s.Y = append(s.Y, l.Rating.Value)
	}
	res := Result{
		ID:         "fig2",
		Title:      "Raw ratings before filtering (honest dots, type-1 and type-2 colluders)",
		PaperClaim: "collaborative ratings between day 30 and 44 are visually interleaved with honest ratings",
	}
	for _, name := range order {
		res.Series = append(res.Series, *bySeries[name])
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"%d honest, %d type-1, %d type-2 ratings",
		len(bySeries["honest"].X), len(bySeries["type1-collaborative"].X), len(bySeries["type2-collaborative"].X)))
	return res, nil
}

// Fig3Histogram regenerates Fig 3: rating-score histograms with and
// without collaborative raters, demonstrating that the histogram alone
// cannot separate the populations.
func Fig3Histogram(seed int64, _ Mode, _ Options) (Result, error) {
	rng := randx.New(seed)
	p := sim.DefaultIllustrative()
	attacked, err := sim.GenerateIllustrative(rng, p)
	if err != nil {
		return Result{}, err
	}
	p.Attack = false
	honest, err := sim.GenerateIllustrative(rng.Split(), p)
	if err != nil {
		return Result{}, err
	}

	mkSeries := func(name string, ls []sim.LabeledRating) (Series, error) {
		h, err := stat.NewHistogram(0, 1, p.RLevels)
		if err != nil {
			return Series{}, err
		}
		for _, l := range ls {
			h.Add(l.Rating.Value)
		}
		s := Series{Name: name}
		for i, c := range h.Counts {
			s.X = append(s.X, float64(i)/float64(p.RLevels-1))
			s.Y = append(s.Y, float64(c))
		}
		return s, nil
	}
	sHonest, err := mkSeries("without-collaborative", honest)
	if err != nil {
		return Result{}, err
	}
	sAttacked, err := mkSeries("with-collaborative", attacked)
	if err != nil {
		return Result{}, err
	}

	// Quantify the paper's point: the two histograms' shapes overlap so
	// heavily that thresholding scores cannot isolate the attack.
	overlap := histogramOverlap(sHonest.Y, sAttacked.Y)
	return Result{
		ID:         "fig3",
		Title:      "Histogram of ratings with/without collaborative raters",
		PaperClaim: "the information presented in the histogram is not sufficient to differentiate honest and collaborative ratings",
		Notes: []string{
			fmt.Sprintf("histogram overlap coefficient %.3f (1 = identical shapes)", overlap),
		},
		Series: []Series{sHonest, sAttacked},
	}, nil
}

// histogramOverlap is the overlap coefficient of two count vectors
// after normalization: Σ min(p_i, q_i).
func histogramOverlap(a, b []float64) float64 {
	var ta, tb float64
	for i := range a {
		ta += a[i]
		tb += b[i]
	}
	if ta == 0 || tb == 0 {
		return 0
	}
	var s float64
	for i := range a {
		pa, pb := a[i]/ta, b[i]/tb
		if pa < pb {
			s += pa
		} else {
			s += pb
		}
	}
	return s
}

// Fig4ModelError regenerates Fig 4: the moving average of ratings
// (honest-only, with collaborative raters, and after beta filtering)
// and the AR model error with/without collaborative raters.
func Fig4ModelError(seed int64, _ Mode, _ Options) (Result, error) {
	rng := randx.New(seed)
	p := sim.DefaultIllustrative()
	attacked, err := sim.GenerateIllustrative(rng, p)
	if err != nil {
		return Result{}, err
	}
	pHonest := p
	pHonest.Attack = false
	honest, err := sim.GenerateIllustrative(rng.Split(), pHonest)
	if err != nil {
		return Result{}, err
	}

	movingAvg := func(name string, rs []rating.Rating) (Series, error) {
		pts, err := stat.MovingAverage(rating.Values(rs), rating.Times(rs), 20, 10)
		if err != nil {
			return Series{}, err
		}
		s := Series{Name: name}
		for _, pt := range pts {
			s.X = append(s.X, pt.Center)
			s.Y = append(s.Y, pt.Mean)
		}
		return s, nil
	}

	attackedRatings := sim.Ratings(attacked)
	honestRatings := sim.Ratings(honest)
	fres, err := filter.Beta{Q: 0.1}.Apply(attackedRatings)
	if err != nil {
		return Result{}, err
	}

	maHonest, err := movingAvg("mean-without-CR", honestRatings)
	if err != nil {
		return Result{}, err
	}
	maAttacked, err := movingAvg("mean-with-CR", attackedRatings)
	if err != nil {
		return Result{}, err
	}
	maFiltered, err := movingAvg("mean-with-CR-beta-filtered", fres.Accepted)
	if err != nil {
		return Result{}, err
	}

	cfg := illustrativeDetectorConfig()
	repHonest, err := detector.Detect(honestRatings, cfg)
	if err != nil {
		return Result{}, err
	}
	repAttacked, err := detector.Detect(attackedRatings, cfg)
	if err != nil {
		return Result{}, err
	}
	xs, ys := repHonest.ModelErrors()
	errHonest := Series{Name: "model-error-without-CR", X: xs, Y: ys}
	xs, ys = repAttacked.ModelErrors()
	errAttacked := Series{Name: "model-error-with-CR", X: xs, Y: ys}

	// Headline numbers: mean error inside the attack interval for each
	// trace (the Fig 4 "drop"), and how far the filter moved the mean.
	dropH := meanErrorIn(repHonest, p.AStart, p.AEnd)
	dropA := meanErrorIn(repAttacked, p.AStart, p.AEnd)
	return Result{
		ID:         "fig4",
		Title:      "Moving average of ratings and AR model error (window of 50 ratings)",
		PaperClaim: "beta filtering barely moves the aggregate; the model error drops significantly when collaborative ratings are present",
		Notes: []string{
			fmt.Sprintf("mean model error in attack interval: honest %.4f vs attacked %.4f", dropH, dropA),
			fmt.Sprintf("beta filter removed %d of %d ratings", len(fres.Rejected), len(attackedRatings)),
			fmt.Sprintf("suspicious windows (threshold %.3f): honest %d, attacked %d",
				cfg.Threshold, len(repHonest.SuspiciousWindows()), len(repAttacked.SuspiciousWindows())),
		},
		Series: []Series{maHonest, maAttacked, maFiltered, errHonest, errAttacked},
	}, nil
}

func meanErrorIn(rep detector.Report, start, end float64) float64 {
	var xs []float64
	for _, w := range rep.Windows {
		if !w.Fitted {
			continue
		}
		center := (w.Window.Start + w.Window.End) / 2
		if center >= start && center <= end {
			xs = append(xs, w.Model.NormalizedError)
		}
	}
	return stat.Mean(xs)
}

// Tab1DetectionRates regenerates the §III.A.2 headline numbers: over
// repeated runs, the fraction of attacked traces with at least one
// suspicious window overlapping the attack interval (detection ratio)
// and the fraction of honest traces with any suspicious window (false
// alarm ratio). The paper reports 0.782 / 0.06 over 500 runs.
func Tab1DetectionRates(seed int64, mode Mode, opt Options) (Result, error) {
	runs := runsFor(mode, 500, 40)
	rng := randx.New(seed)
	cfg := illustrativeDetectorConfig()

	// Per-run stream seeds are pre-drawn in index order, so the fan-out
	// below reproduces the serial per-run Split draws exactly.
	seeds := rng.Seeds(runs)
	type outcome struct{ detected, falseAlarm bool }
	outs, err := parallel.MapLocal(runs, parallel.Workers(opt.Workers),
		detector.NewWorkspace,
		func(i int, ws *detector.Workspace) (outcome, error) {
			local := randx.New(seeds[i])
			p := sim.DefaultIllustrative()
			attacked, err := sim.GenerateIllustrative(local, p)
			if err != nil {
				return outcome{}, err
			}
			rep, err := detector.DetectWS(sim.Ratings(attacked), cfg, ws)
			if err != nil {
				return outcome{}, err
			}
			var out outcome
			out.detected = anySuspiciousOverlapping(rep, p.AStart, p.AEnd)
			p.Attack = false
			honest, err := sim.GenerateIllustrative(local.Split(), p)
			if err != nil {
				return outcome{}, err
			}
			rep, err = detector.DetectWS(sim.Ratings(honest), cfg, ws)
			if err != nil {
				return outcome{}, err
			}
			out.falseAlarm = len(rep.SuspiciousWindows()) > 0
			return out, nil
		})
	if err != nil {
		return Result{}, err
	}
	var detected, falseAlarm int
	for _, o := range outs {
		if o.detected {
			detected++
		}
		if o.falseAlarm {
			falseAlarm++
		}
	}
	det := float64(detected) / float64(runs)
	fa := float64(falseAlarm) / float64(runs)
	return Result{
		ID:         "tab1",
		Title:      "Detection and false-alarm ratio of the AR detector (illustrative scenario)",
		PaperClaim: "Detection Ratio = 0.782; False Alarm Ratio = 0.06 (500 runs)",
		Notes: []string{
			fmt.Sprintf("measured over %d runs at threshold %.3f", runs, cfg.Threshold),
		},
		Tables: []Table{{
			Title:   "detection rates",
			Columns: []string{"metric", "paper", "measured"},
			Rows: [][]string{
				{"detection ratio", "0.782", f(det)},
				{"false alarm ratio", "0.060", f(fa)},
			},
		}},
	}, nil
}

func anySuspiciousOverlapping(rep detector.Report, start, end float64) bool {
	for _, w := range rep.Windows {
		if w.Suspicious && w.Window.End >= start && w.Window.Start <= end {
			return true
		}
	}
	return false
}
