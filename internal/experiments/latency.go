package experiments

import (
	"fmt"

	"repro/internal/detector"
	"repro/internal/parallel"
	"repro/internal/randx"
	"repro/internal/sim"
	"repro/internal/stat"
)

// AblationLatency measures detection latency — a deployment metric the
// paper does not report: replaying the illustrative attack through the
// streaming detector, how many days pass between the attack's onset and
// the first suspicious window that overlaps it? Smaller window steps
// trade extra AR fits for earlier alarms, so the sweep runs over step
// sizes at a fixed 50-rating window.
func AblationLatency(seed int64, mode Mode, opt Options) (Result, error) {
	runs := runsFor(mode, 120, 20)
	rng := randx.New(seed)
	workers := parallel.Workers(opt.Workers)

	table := Table{
		Title:   "streaming detection latency (days after attack onset)",
		Columns: []string{"window step", "detected", "mean", "median", "p90"},
	}

	steps := []int{5, 10, 25, 50}
	// One stream seed per (step, run), pre-drawn in the serial loop's
	// flat order.
	seeds := rng.Seeds(len(steps) * runs)
	for si, step := range steps {
		cfg := detector.Config{
			Mode:      detector.WindowByCount,
			Size:      50,
			Step:      step,
			Order:     4,
			Threshold: illustrativeThreshold,
			Scale:     1,
		}
		alarms, err := parallel.Map(runs, workers, func(i int) (float64, error) {
			local := randx.New(seeds[si*runs+i])
			p := sim.DefaultIllustrative()
			trace, err := sim.GenerateIllustrative(local, p)
			if err != nil {
				return 0, err
			}
			stream, err := detector.NewStream(cfg)
			if err != nil {
				return 0, err
			}
			alarm := -1.0
		replay:
			for _, l := range trace {
				reports, err := stream.Push(l.Rating)
				if err != nil {
					return 0, err
				}
				for _, w := range reports {
					if w.Suspicious && w.Window.End >= p.AStart && w.Window.Start <= p.AEnd {
						alarm = l.Rating.Time
						break replay
					}
				}
			}
			return alarm, nil
		})
		if err != nil {
			return Result{}, err
		}
		var latencies []float64
		detected := 0
		for _, alarm := range alarms {
			if alarm >= 0 {
				detected++
				latency := alarm - sim.DefaultIllustrative().AStart
				if latency < 0 {
					latency = 0
				}
				latencies = append(latencies, latency)
			}
		}

		row := []string{fmt.Sprintf("%d ratings", step), f(float64(detected) / float64(runs))}
		if len(latencies) > 0 {
			med, err := stat.Median(latencies)
			if err != nil {
				return Result{}, err
			}
			p90, err := stat.Quantile(latencies, 0.9)
			if err != nil {
				return Result{}, err
			}
			row = append(row, f(stat.Mean(latencies)), f(med), f(p90))
		} else {
			row = append(row, "-", "-", "-")
		}
		table.Rows = append(table.Rows, row)
	}

	return Result{
		ID:    "ablation-latency",
		Title: "Ablation: streaming detection latency vs window step",
		Notes: []string{
			fmt.Sprintf("%d runs; 50-rating windows at threshold %.3f; latency = first overlapping alarm minus attack onset (day %.0f)",
				runs, illustrativeThreshold, sim.DefaultIllustrative().AStart),
		},
		Tables: []Table{table},
	}, nil
}
