package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/filter"
	"repro/internal/parallel"
	"repro/internal/randx"
	"repro/internal/rating"
	"repro/internal/sim"
	"repro/internal/trust"
)

// marketplaceThreshold is the Procedure-1 model-error threshold used in
// the §IV marketplace. The paper's 0.02 belongs to its Matlab error
// scale; this value is calibrated to this library's covariance-method
// levels: honest product windows sit around error 0.11-0.25 while the
// colluder-dominated recruit windows of dishonest products fall to
// 0.02-0.06.
const marketplaceThreshold = 0.10

func marketplaceDetectorConfig() detector.Config {
	return detector.Config{
		// ProcessWindow overrides the mode/interval; width 10, step 5
		// follow §IV.A. MinWindow 25 skips sparse month-end windows
		// whose order-4 fits overfit into false alarms.
		Width:     10,
		TimeStep:  5,
		Order:     4,
		Threshold: marketplaceThreshold,
		Scale:     1,
		MinWindow: 25,
	}
}

func marketplaceSystemConfig(workers int) core.Config {
	return core.Config{
		Filter:   filter.Beta{Q: 0.1},
		Detector: marketplaceDetectorConfig(),
		Trust:    trust.ManagerConfig{B: 1},
		Workers:  workers,
	}
}

// marketplaceParams picks §IV parameters, shrunk in Quick mode while
// preserving per-product rating volumes (the AR fit needs them).
//
// The §IV spread parameters (goodVar 0.2, carelessVar 0.3, badVar 0.02)
// are read as standard deviations and squared into the generator's
// variance fields: with ~90 honest ratings per product, the paper's
// reported aggregate deviations (proposed ≤0.02 vs ~0.1 for the
// baselines, Figs 10-12) sit exactly at the σ=0.2 sampling-noise floor,
// whereas variance semantics (σ≈0.45) would bury the collusion signal
// under ±0.1 honest noise. See DESIGN.md, variance semantics.
func marketplaceParams() sim.MarketplaceParams {
	p := sim.DefaultMarketplace()
	p.GoodVar = 0.2 * 0.2
	p.CarelessVar = 0.3 * 0.3
	p.BadVar = 0.02 * 0.02
	return p
}

// scaleQuick shrinks the honest population 4x with PRate scaled up 4x,
// keeping the per-product daily honest volume (and thus the AR windows)
// identical. A1 and A2 are scaled down by the same factor so every
// per-day rate (a_i·PRate) matches full scale, and the PC population is
// left at 150 because each colluder rates a dishonest product at most
// once — colluder volume equals the recruited population and cannot be
// recovered through PRate.
func scaleQuick(p sim.MarketplaceParams) sim.MarketplaceParams {
	p.Reliable, p.Careless, p.PC = 100, 50, 150
	p.PRate = 0.1
	p.A1 = p.A1 / 4
	p.A2 = p.A2 / 4
	return p
}

// paramsFor assembles the scenario: paper parameters, an optional
// per-figure adjustment (applied at full scale), then quick scaling.
func paramsFor(mode Mode, adjust func(*sim.MarketplaceParams)) sim.MarketplaceParams {
	p := marketplaceParams()
	if adjust != nil {
		adjust(&p)
	}
	if mode == Quick {
		p = scaleQuick(p)
	}
	return p
}

// marketplaceRun is one simulated year processed through the system.
type marketplaceRun struct {
	params    sim.MarketplaceParams
	trace     *sim.MarketplaceTrace
	sys       *core.System
	snapshots []map[rating.RaterID]float64 // trust after each month
	reports   []core.ProcessReport
}

func runMarketplace(seed int64, p sim.MarketplaceParams, workers int) (*marketplaceRun, error) {
	rng := randx.New(seed)
	trace, err := sim.GenerateMarketplace(rng, p)
	if err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(marketplaceSystemConfig(workers))
	if err != nil {
		return nil, err
	}
	if err := sys.SubmitAll(sim.Ratings(trace.Ratings)); err != nil {
		return nil, err
	}
	run := &marketplaceRun{params: p, trace: trace, sys: sys}
	for m := 0; m < p.Months; m++ {
		start := float64(m * p.DaysPerMonth)
		rep, err := sys.ProcessWindow(start, start+float64(p.DaysPerMonth)+1e-9)
		if err != nil {
			return nil, err
		}
		run.reports = append(run.reports, rep)
		run.snapshots = append(run.snapshots, sys.TrustSnapshot())
	}
	return run, nil
}

// classMeans returns the mean trust of each identity class in a
// snapshot. Raters that never rated keep the neutral 0.5.
func (r *marketplaceRun) classMeans(snapshot map[rating.RaterID]float64) map[sim.RaterClass]float64 {
	sums := map[sim.RaterClass]float64{}
	counts := map[sim.RaterClass]int{}
	for id := 0; id < r.params.TotalRaters(); id++ {
		class := r.params.RaterClassOf(rating.RaterID(id))
		v, ok := snapshot[rating.RaterID(id)]
		if !ok {
			v = 0.5
		}
		sums[class] += v
		counts[class]++
	}
	out := make(map[sim.RaterClass]float64, len(sums))
	for class, s := range sums {
		out[class] = s / float64(counts[class])
	}
	return out
}

// classRates returns, for a snapshot, the fraction of each class with
// trust below the malicious threshold 0.5 — the detection rate for PC
// raters and the false-alarm rate for honest classes.
func (r *marketplaceRun) classRates(snapshot map[rating.RaterID]float64) map[sim.RaterClass]float64 {
	below := map[sim.RaterClass]int{}
	counts := map[sim.RaterClass]int{}
	for id := 0; id < r.params.TotalRaters(); id++ {
		class := r.params.RaterClassOf(rating.RaterID(id))
		v, ok := snapshot[rating.RaterID(id)]
		if !ok {
			v = 0.5
		}
		if v < 0.5 {
			below[class]++
		}
		counts[class]++
	}
	out := make(map[sim.RaterClass]float64, len(counts))
	for class, n := range counts {
		out[class] = float64(below[class]) / float64(n)
	}
	return out
}

// Fig6TrustEvolution regenerates Fig 6: mean trust of reliable,
// careless and PC raters over the 12 months.
func Fig6TrustEvolution(seed int64, mode Mode, opt Options) (Result, error) {
	run, err := runMarketplace(seed, paramsFor(mode, nil), parallel.Workers(opt.Workers))
	if err != nil {
		return Result{}, err
	}
	series := map[sim.RaterClass]*Series{
		sim.Reliable:               {Name: "reliable"},
		sim.Careless:               {Name: "careless"},
		sim.PotentialCollaborative: {Name: "dishonest (PC)"},
	}
	for m, snap := range run.snapshots {
		means := run.classMeans(snap)
		for class, s := range series {
			s.X = append(s.X, float64(m+1))
			s.Y = append(s.Y, means[class])
		}
	}
	last := run.classMeans(run.snapshots[len(run.snapshots)-1])
	return Result{
		ID:         "fig6",
		Title:      "Mean of raters' trust over 12 months",
		PaperClaim: "PC raters' mean trust falls quickly toward 0.4 while reliable and careless raters' trust rises; careless trails reliable slightly",
		Notes: []string{
			fmt.Sprintf("final mean trust: reliable %.3f, careless %.3f, PC %.3f",
				last[sim.Reliable], last[sim.Careless], last[sim.PotentialCollaborative]),
		},
		Series: []Series{*series[sim.Reliable], *series[sim.Careless], *series[sim.PotentialCollaborative]},
	}, nil
}

// trustAtMonth renders the per-rater trust snapshot of one month as a
// figure plus detection/false-alarm notes (Figs 7 and 8).
func trustAtMonth(id, title, claim string, month int, seed int64, mode Mode, opt Options) (Result, error) {
	p := paramsFor(mode, nil)
	if month > p.Months {
		return Result{}, fmt.Errorf("experiments: month %d beyond %d-month run", month, p.Months)
	}
	run, err := runMarketplace(seed, p, parallel.Workers(opt.Workers))
	if err != nil {
		return Result{}, err
	}
	snap := run.snapshots[month-1]
	s := Series{Name: fmt.Sprintf("trust-month-%d", month)}
	for idx := 0; idx < p.TotalRaters(); idx++ {
		v, ok := snap[rating.RaterID(idx)]
		if !ok {
			v = 0.5
		}
		s.X = append(s.X, float64(idx))
		s.Y = append(s.Y, v)
	}
	rates := run.classRates(snap)
	return Result{
		ID:         id,
		Title:      title,
		PaperClaim: claim,
		Notes: []string{
			fmt.Sprintf("false alarm: reliable %.1f%%, careless %.1f%%; PC detection %.1f%% (trust < 0.5)",
				100*rates[sim.Reliable], 100*rates[sim.Careless], 100*rates[sim.PotentialCollaborative]),
		},
		Series: []Series{s},
	}, nil
}

// Fig7TrustMonth6 regenerates Fig 7.
func Fig7TrustMonth6(seed int64, mode Mode, opt Options) (Result, error) {
	return trustAtMonth("fig7", "Raters' trust in the 6th month",
		"false alarm 1% (reliable) / 3% (careless); 72% of PC raters detected", 6, seed, mode, opt)
}

// Fig8TrustMonth12 regenerates Fig 8.
func Fig8TrustMonth12(seed int64, mode Mode, opt Options) (Result, error) {
	return trustAtMonth("fig8", "Raters' trust in the 12th month",
		"false alarm 0%; 87% of PC raters detected", 12, seed, mode, opt)
}

// Fig9DetectionCapability regenerates Fig 9: per-month rating-level
// unfair-rating detection ratio and fair-rating false-alarm ratio. A
// rating counts as detected when the filter rejected it or it lies in
// at least one suspicious AR window.
func Fig9DetectionCapability(seed int64, mode Mode, opt Options) (Result, error) {
	p := paramsFor(mode, nil)
	run, err := runMarketplace(seed, p, parallel.Workers(opt.Workers))
	if err != nil {
		return Result{}, err
	}

	type key struct {
		r rating.RaterID
		o rating.ObjectID
	}
	unfair := make(map[key]bool)
	for _, l := range run.trace.Ratings {
		if l.Unfair {
			unfair[key{l.Rating.Rater, l.Rating.Object}] = true
		}
	}

	det := Series{Name: "unfair-rating-detection"}
	fa := Series{Name: "fair-rating-false-alarm"}
	var notesLast string
	for m, rep := range run.reports {
		var unfairTotal, unfairHit, fairTotal, fairHit int
		for _, obj := range rep.Objects {
			flagged := make(map[key]bool)
			for _, r := range obj.Rejected {
				flagged[key{r.Rater, r.Object}] = true
			}
			for _, r := range obj.FlaggedRatings() {
				flagged[key{r.Rater, r.Object}] = true
			}
			count := func(rs []rating.Rating) {
				for _, r := range rs {
					k := key{r.Rater, r.Object}
					if unfair[k] {
						unfairTotal++
						if flagged[k] {
							unfairHit++
						}
					} else {
						fairTotal++
						if flagged[k] {
							fairHit++
						}
					}
				}
			}
			count(obj.Accepted)
			count(obj.Rejected)
		}
		var dRatio, fRatio float64
		if unfairTotal > 0 {
			dRatio = float64(unfairHit) / float64(unfairTotal)
		}
		if fairTotal > 0 {
			fRatio = float64(fairHit) / float64(fairTotal)
		}
		det.X = append(det.X, float64(m+1))
		det.Y = append(det.Y, dRatio)
		fa.X = append(fa.X, float64(m+1))
		fa.Y = append(fa.Y, fRatio)
		notesLast = fmt.Sprintf("month %d: detection %.3f, false alarm %.3f (%d unfair / %d fair ratings)",
			m+1, dRatio, fRatio, unfairTotal, fairTotal)
	}
	return Result{
		ID:         "fig9",
		Title:      "Unfair-rating detection capability over time",
		PaperClaim: "detection ratio rises toward 87% while false alarm decays to negligible; existing majority-rule schemes detect 0% of this attack",
		Notes:      []string{notesLast},
		Series:     []Series{det, fa},
	}, nil
}

// productAggregation runs the a1=8 marketplace and aggregates every
// product three ways (Figs 10-12): simple average, beta-function
// aggregation, and the proposed filter+trust pipeline (Method 3 with
// year-end trust).
func productAggregation(seed int64, mode Mode, opt Options, biasShift2 float64, dishonestOnly bool) ([]Series, *marketplaceRun, error) {
	p := paramsFor(mode, func(p *sim.MarketplaceParams) {
		p.A1 = 8
		p.BiasShift2 = biasShift2
	})
	run, err := runMarketplace(seed, p, parallel.Workers(opt.Workers))
	if err != nil {
		return nil, nil, err
	}

	var products []sim.Product
	if dishonestOnly {
		products = run.trace.DishonestProducts()
	} else {
		products = run.trace.HonestProducts()
	}

	simple := Series{Name: "simple-average"}
	beta := Series{Name: "beta-function-aggregation"}
	proposed := Series{Name: "modified-weighted-average (proposed)"}
	quality := Series{Name: "quality-of-product"}
	for i, pr := range products {
		ls := run.trace.ByProduct(pr.ID)
		if len(ls) == 0 {
			continue
		}
		values := make([]float64, len(ls))
		for j, l := range ls {
			values[j] = l.Rating.Value
		}
		m1, err := trust.SimpleAverage{}.Aggregate(values, nil)
		if err != nil {
			return nil, nil, err
		}
		m2, err := trust.BetaAggregation{}.Aggregate(values, nil)
		if err != nil {
			return nil, nil, err
		}
		agg, err := run.sys.Aggregate(pr.ID)
		if err != nil {
			return nil, nil, err
		}
		x := float64(i + 1)
		if dishonestOnly {
			// Paper numbers dishonest products 49..60.
			x = float64(len(run.trace.HonestProducts()) + i + 1)
		}
		simple.X, simple.Y = append(simple.X, x), append(simple.Y, m1)
		beta.X, beta.Y = append(beta.X, x), append(beta.Y, m2)
		proposed.X, proposed.Y = append(proposed.X, x), append(proposed.Y, agg.Value)
		quality.X, quality.Y = append(quality.X, x), append(quality.Y, pr.Quality)
	}
	return []Series{simple, beta, proposed, quality}, run, nil
}

// maxAbsDiff returns the largest |a.Y[i] − b.Y[i]|.
func maxAbsDiff(a, b Series) float64 {
	var maxDiff float64
	for i := range a.Y {
		d := a.Y[i] - b.Y[i]
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	return maxDiff
}

// Fig10HonestProducts regenerates Fig 10: aggregated ratings for the
// honest products (biasShift2 = 0.15, a1 = 8) — all three schemes track
// quality.
func Fig10HonestProducts(seed int64, mode Mode, opt Options) (Result, error) {
	series, _, err := productAggregation(seed, mode, opt, 0.15, false)
	if err != nil {
		return Result{}, err
	}
	return Result{
		ID:         "fig10",
		Title:      "Rating aggregation for honest products (bias 0.15)",
		PaperClaim: "all three schemes stay close to the true product quality on honest products",
		Notes: []string{
			fmt.Sprintf("max |simple − quality| %.3f; max |proposed − quality| %.3f",
				maxAbsDiff(series[0], series[3]), maxAbsDiff(series[2], series[3])),
		},
		Series: series,
	}, nil
}

// Fig11DishonestProducts regenerates Fig 11 (bias 0.15).
func Fig11DishonestProducts(seed int64, mode Mode, opt Options) (Result, error) {
	return dishonestFigure(seed, mode, opt, "fig11", 0.15,
		"the proposed scheme stays near quality while simple/beta aggregates are boosted by the colluders")
}

// Fig12DishonestProductsBias02 regenerates Fig 12 (bias 0.2): the paper
// reports a max deviation of only 0.02 for the proposed scheme versus
// about 0.1 for the others.
func Fig12DishonestProductsBias02(seed int64, mode Mode, opt Options) (Result, error) {
	return dishonestFigure(seed, mode, opt, "fig12", 0.2,
		"proposed max deviation ~0.02; simple/beta deviation ~0.1 — an order of magnitude higher")
}

func dishonestFigure(seed int64, mode Mode, opt Options, id string, bias float64, claim string) (Result, error) {
	series, _, err := productAggregation(seed, mode, opt, bias, true)
	if err != nil {
		return Result{}, err
	}
	return Result{
		ID:         id,
		Title:      fmt.Sprintf("Rating aggregation for dishonest products (bias %.2f)", bias),
		PaperClaim: claim,
		Notes: []string{
			fmt.Sprintf("max deviation from quality: simple %.3f, beta %.3f, proposed %.3f",
				maxAbsDiff(series[0], series[3]), maxAbsDiff(series[1], series[3]), maxAbsDiff(series[2], series[3])),
		},
		Series: series,
	}, nil
}
