package experiments

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/attack"
	"repro/internal/collusion"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/parallel"
	"repro/internal/randx"
	"repro/internal/rating"
	"repro/internal/sim"
	"repro/internal/stat"
)

// The detector×attack matrix: every detector configuration of the
// pipeline against every strategy in the adversary zoo, on the zoo
// background workload (persistent honest raters, multiple objects —
// the workload the collusion graph and iterative filter need). Each
// cell reports ROC/AUC over final per-rater trust, detection rate and
// latency (attack start → first true malicious flag), and the
// aggregation error the campaign leaves behind.
//
// Determinism: per-cell seeds derive from the base seed with
// randx.Derive — the same schedule-free derivation internal/parallel
// uses for per-item streams — and the (cell, run) fan-out commits
// results in item order, so the matrix is bit-identical at any worker
// count.

// Zoo-scale tuning. The background uses low honest variance
// (persistent, careful raters) so a coordinated bias is separable from
// noise — the regime where the iterative filter is meaningful at all.
const (
	zooGoodVar     = 0.01 // honest rating variance on the zoo background
	zooAttackBias  = 0.35 // campaign bias above true quality
	zooAttackVar   = 0.005
	zooAttackRate  = 4 // unfair ratings/day across the clique
	zooColluders   = 8
	zooAStart      = 20
	zooAEnd        = 44
	zooWindowDays  = 10
	zooWindows     = 6
	// zooARThreshold is calibrated for low false alarm on the zoo
	// background: honest window errors there sit at p5≈0.013 (tight
	// honest noise fits the AR model well), so the paper's low-error
	// signature inverts — attack windows, a bimodal honest+clique
	// mixture, have HIGHER error than honest ones. The threshold sits
	// below the honest bulk (≈p2), which keeps false charges rare and
	// makes the "ar" row an honest negative result: this zoo is built
	// from strategies that evade Procedure 1's signature, and the
	// collusion graph / iterative filter are what restore detection.
	zooARThreshold = 0.012
	mutedThreshold = 1e-9 // AR effectively off: no window error is ever below it
)

// MatrixCell is one detector×attack cell's aggregated outcome.
type MatrixCell struct {
	Detector string  `json:"detector"`
	Attack   string  `json:"attack"`
	AUC      float64 `json:"auc"`
	// DetectRate is the fraction of runs in which at least one true
	// campaign identity was flagged malicious by the end.
	DetectRate float64 `json:"detect_rate"`
	// LatencyDays is the mean days from attack start to the first
	// maintenance window that flags a true campaign identity;
	// undetected runs are censored at the remaining horizon.
	LatencyDays float64 `json:"latency_days"`
	// AggError is the mean absolute error of the final trust-weighted
	// aggregate versus true quality over the attacked objects.
	AggError float64 `json:"agg_error"`
}

// MatrixResult is the full grid plus its axes.
type MatrixResult struct {
	Detectors []string     `json:"detectors"`
	Attacks   []string     `json:"attacks"`
	Runs      int          `json:"runs"`
	Cells     []MatrixCell `json:"cells"`
}

// Cell returns the cell for (detector, attack), or false.
func (m MatrixResult) Cell(det, att string) (MatrixCell, bool) {
	for _, c := range m.Cells {
		if c.Detector == det && c.Attack == att {
			return c, true
		}
	}
	return MatrixCell{}, false
}

type matrixDetector struct {
	name string
	cfg  func() core.Config
}

func matrixCollusionConfig() *collusion.Config {
	return &collusion.Config{
		// Cosine, not PCC: a constant-bias clique has near-constant
		// residuals, which Pearson's demeaning wipes out.
		Metric: collusion.MetricCosine,
		// Sub-window buckets so co-rating inside one 10-day maintenance
		// window still yields several shared cells.
		BucketDays:    2.5,
		MinCoRatings:  3,
		MinSimilarity: 0.85,
		MinGroupSize:  3,
	}
}

func matrixDetectors() []matrixDetector {
	ar := detector.Config{
		Width: 10, TimeStep: 5, Order: 4,
		Threshold: zooARThreshold, MinWindow: 25,
	}
	muted := ar
	muted.Threshold = mutedThreshold
	return []matrixDetector{
		{"ar", func() core.Config {
			return core.Config{Detector: ar}
		}},
		{"collusion", func() core.Config {
			return core.Config{Detector: muted, Collusion: matrixCollusionConfig()}
		}},
		{"iterfilter", func() core.Config {
			return core.Config{Detector: muted, Iterative: &detector.IterativeConfig{}}
		}},
		{"combined", func() core.Config {
			return core.Config{
				Detector:  ar,
				Collusion: matrixCollusionConfig(),
				Iterative: &detector.IterativeConfig{},
			}
		}},
	}
}

// matrixAttacks is the zoo with its free knobs tuned to the zoo
// background (camouflage and the honest phases mimic zooGoodVar, not
// the illustrative workload's 0.2).
func matrixAttacks() []attack.Strategy {
	return []attack.Strategy{
		attack.Constant{},
		attack.Camouflage{HonestVariance: zooGoodVar},
		attack.OnOff{BurstDays: 3, SleepDays: 3},
		attack.Ramp{},
		attack.TrustThenStrike{BuildRatio: 0.5, HonestVariance: zooGoodVar},
		attack.Sybil{},
		attack.Whitewash{IdentityRatings: 3},
		attack.RotatingTarget{},
		attack.Oscillate{HonestDays: 4, AttackDays: 4, HonestVariance: zooGoodVar},
	}
}

func matrixZooParams() sim.ZooParams {
	p := sim.DefaultZoo()
	p.GoodVar = zooGoodVar
	return p
}

type matrixRunOut struct {
	auc, latency, aggErr float64
	detected             bool
}

// matrixRun executes one (detector, attack) simulation from its
// derived seed: zoo background + planned campaign, six sequential
// 10-day maintenance windows, then scoring.
func matrixRun(runSeed int64, det matrixDetector, strat attack.Strategy) (matrixRunOut, error) {
	trace, err := sim.GenerateZoo(randx.DeriveRand(runSeed, 0), matrixZooParams())
	if err != nil {
		return matrixRunOut{}, err
	}
	campaign, err := strat.Plan(randx.Derive(runSeed, 1), attack.Params{
		Object:    1,
		Targets:   trace.ObjectIDs(),
		Start:     zooAStart,
		End:       zooAEnd,
		Rate:      zooAttackRate,
		Bias:      zooAttackBias,
		Variance:  zooAttackVar,
		Levels:    trace.Params.RLevels,
		Colluders: zooColluders,
	}, trace.QualityOf)
	if err != nil {
		return matrixRunOut{}, err
	}

	combined := append(append([]sim.LabeledRating(nil), trace.Ratings...), campaign...)
	sim.SortByTime(combined)

	// Ground truth: identities that emit at least one unfair rating,
	// and the objects those ratings hit.
	malicious := make(map[rating.RaterID]bool)
	attacked := make(map[rating.ObjectID]bool)
	for _, l := range campaign {
		if l.Unfair {
			malicious[l.Rating.Rater] = true
			attacked[l.Rating.Object] = true
		}
	}

	sys, err := core.NewSystem(det.cfg())
	if err != nil {
		return matrixRunOut{}, err
	}
	if err := sys.SubmitAll(sim.Ratings(combined)); err != nil {
		return matrixRunOut{}, err
	}

	horizon := float64(zooWindows * zooWindowDays)
	out := matrixRunOut{latency: horizon - zooAStart} // censored until detected
	for k := 0; k < zooWindows; k++ {
		start, end := float64(k*zooWindowDays), float64((k+1)*zooWindowDays)
		if _, err := sys.ProcessWindow(start, end); err != nil {
			return matrixRunOut{}, err
		}
		if !out.detected {
			for _, id := range sys.MaliciousRaters() {
				if malicious[id] {
					out.detected = true
					out.latency = end - zooAStart
					break
				}
			}
		}
	}

	// AUC over every tracked rater: score = 1 - trust, label = truly
	// malicious. Raters and scores in sorted order for determinism.
	snapshot := sys.TrustSnapshot()
	ids := make([]rating.RaterID, 0, len(snapshot))
	for id := range snapshot {
		ids = append(ids, id)
	}
	sortRaterIDs(ids)
	scores := make([]float64, len(ids))
	labels := make([]bool, len(ids))
	for i, id := range ids {
		scores[i] = 1 - snapshot[id]
		labels[i] = malicious[id]
	}
	out.auc = stat.AUC(scores, labels)

	var errSum float64
	var n int
	objs := make([]rating.ObjectID, 0, len(attacked))
	for obj := range attacked {
		objs = append(objs, obj)
	}
	sortObjectIDs(objs)
	for _, obj := range objs {
		agg, err := sys.Aggregate(obj)
		if err != nil {
			return matrixRunOut{}, err
		}
		errSum += math.Abs(agg.Value - trace.QualityOf(obj, 0))
		n++
	}
	if n > 0 {
		out.aggErr = errSum / float64(n)
	}
	return out, nil
}

// RunMatrix executes the full grid and returns it in typed form (the
// registry wrapper Matrix formats it; cmd/benchreport embeds it).
func RunMatrix(seed int64, mode Mode, opt Options) (MatrixResult, error) {
	runs := runsFor(mode, 15, 3)
	dets := matrixDetectors()
	atts := matrixAttacks()
	workers := parallel.Workers(opt.Workers)

	cells := len(dets) * len(atts)
	outs, err := parallel.Map(cells*runs, workers, func(i int) (matrixRunOut, error) {
		cell, run := i/runs, i%runs
		// Per-cell base stream, then per-run derivation — the same
		// schedule-free shape parallel.Map itself uses for items, so
		// adding runs to one cell never shifts another cell's streams.
		runSeed := randx.Derive(randx.Derive(seed, cell), run)
		return matrixRun(runSeed, dets[cell/len(atts)], atts[cell%len(atts)])
	})
	if err != nil {
		return MatrixResult{}, err
	}

	result := MatrixResult{Runs: runs}
	for _, d := range dets {
		result.Detectors = append(result.Detectors, d.name)
	}
	for _, a := range atts {
		result.Attacks = append(result.Attacks, a.Name())
	}
	for cell := 0; cell < cells; cell++ {
		var auc, latency, aggErr, detected float64
		for run := 0; run < runs; run++ {
			o := outs[cell*runs+run]
			auc += o.auc
			latency += o.latency
			aggErr += o.aggErr
			if o.detected {
				detected++
			}
		}
		r := float64(runs)
		result.Cells = append(result.Cells, MatrixCell{
			Detector:    dets[cell/len(atts)].name,
			Attack:      atts[cell%len(atts)].Name(),
			AUC:         auc / r,
			DetectRate:  detected / r,
			LatencyDays: latency / r,
			AggError:    aggErr / r,
		})
	}
	return result, nil
}

// Matrix is the registry runner: the detector×attack grid rendered as
// one table per metric (rows = attacks, columns = detectors).
func Matrix(seed int64, mode Mode, opt Options) (Result, error) {
	m, err := RunMatrix(seed, mode, opt)
	if err != nil {
		return Result{}, err
	}

	metricTable := func(title string, pick func(MatrixCell) float64) Table {
		t := Table{Title: title, Columns: append([]string{"attack"}, m.Detectors...)}
		for _, att := range m.Attacks {
			row := []string{att}
			for _, det := range m.Detectors {
				c, ok := m.Cell(det, att)
				if !ok {
					return Table{}
				}
				row = append(row, f(pick(c)))
			}
			t.Rows = append(t.Rows, row)
		}
		return t
	}

	return Result{
		ID:    "matrix",
		Title: "Detector × attack benchmark matrix on the adversary-zoo workload",
		Notes: []string{
			fmt.Sprintf("%d detectors × %d attacks, %d runs per cell", len(m.Detectors), len(m.Attacks), m.Runs),
			fmt.Sprintf("zoo background: %d objects, %d persistent raters, %g-day horizon; campaign bias %+g on [%g,%g]",
				matrixZooParams().Objects, matrixZooParams().Raters, float64(zooWindows*zooWindowDays), float64(zooAttackBias), float64(zooAStart), float64(zooAEnd)),
			"auc ranks raters by 1-trust against ground truth; latency is censored at the remaining horizon when undetected",
		},
		Tables: []Table{
			metricTable("AUC (rater ranking by 1-trust)", func(c MatrixCell) float64 { return c.AUC }),
			metricTable("detection rate (runs with a true malicious flag)", func(c MatrixCell) float64 { return c.DetectRate }),
			metricTable("detection latency (days from attack start)", func(c MatrixCell) float64 { return c.LatencyDays }),
			metricTable("aggregation error on attacked objects", func(c MatrixCell) float64 { return c.AggError }),
		},
	}, nil
}

func sortRaterIDs(ids []rating.RaterID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

func sortObjectIDs(ids []rating.ObjectID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
