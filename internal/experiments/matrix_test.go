package experiments

import (
	"reflect"
	"testing"
)

// The matrix's determinism contract: the full grid is bit-identical at
// any worker count, because per-(cell, run) seeds are derived with
// randx.Derive rather than drawn from a shared stream.
func TestMatrixWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix grid in -short mode")
	}
	want, err := RunMatrix(1, Quick, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := RunMatrix(1, Quick, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("matrix differs between 1 and %d workers", workers)
		}
	}
}

func TestMatrixGridShape(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix grid in -short mode")
	}
	m, err := RunMatrix(2, Quick, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Detectors) < 3 {
		t.Fatalf("%d detectors, want >= 3", len(m.Detectors))
	}
	if len(m.Attacks) < 5 {
		t.Fatalf("%d attacks, want >= 5", len(m.Attacks))
	}
	if want := len(m.Detectors) * len(m.Attacks); len(m.Cells) != want {
		t.Fatalf("%d cells, want %d", len(m.Cells), want)
	}
	horizon := float64(zooWindows*zooWindowDays) - zooAStart
	for _, c := range m.Cells {
		if c.AUC < 0 || c.AUC > 1 {
			t.Fatalf("cell %s/%s AUC %g", c.Detector, c.Attack, c.AUC)
		}
		if c.DetectRate < 0 || c.DetectRate > 1 {
			t.Fatalf("cell %s/%s detect rate %g", c.Detector, c.Attack, c.DetectRate)
		}
		if c.LatencyDays <= 0 || c.LatencyDays > horizon {
			t.Fatalf("cell %s/%s latency %g outside (0,%g]", c.Detector, c.Attack, c.LatencyDays, horizon)
		}
		if c.AggError < 0 {
			t.Fatalf("cell %s/%s negative agg error", c.Detector, c.Attack)
		}
	}
	// The combined detector must flag the baseline clique reliably —
	// if this regresses, the whole charging path broke.
	c, ok := m.Cell("combined", "constant")
	if !ok {
		t.Fatal("no combined/constant cell")
	}
	if c.DetectRate < 1 {
		t.Fatalf("combined detector missed the constant clique: %+v", c)
	}
}

func TestMatrixRegistered(t *testing.T) {
	if _, ok := registry()["matrix"]; !ok {
		t.Fatal("matrix not registered")
	}
}
