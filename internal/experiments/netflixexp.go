package experiments

import (
	"fmt"

	"repro/internal/detector"
	"repro/internal/netflix"
	"repro/internal/randx"
	"repro/internal/sim"
)

// Fig5Netflix regenerates Fig 5: AR model error over a movie rating
// trace, with and without inserted collaborative ratings (attack days
// 212-272, the paper's exact insertion parameters). The paper used the
// Netflix Prize trace of "Dinosaur Planet"; that dataset is withdrawn,
// so the default trace is the synthetic substitute from
// internal/netflix (see DESIGN.md). Drop-in of a real Netflix per-movie
// file is supported by cmd/detect.
func Fig5Netflix(seed int64, _ Mode, _ Options) (Result, error) {
	rng := randx.New(seed)
	movie, err := netflix.GenerateSynthetic(rng, netflix.SyntheticParams{})
	if err != nil {
		return Result{}, err
	}
	attack := netflix.DefaultAttack()
	attacked, err := netflix.InsertCollaborative(rng.Split(), movie, attack)
	if err != nil {
		return Result{}, err
	}

	cfg := detector.Config{
		Mode:      detector.WindowByCount,
		Size:      50,
		Step:      25,
		Order:     4,
		Threshold: 0.999, // report the raw error series; thresholding is fig4/tab1's job
		Scale:     1,
	}
	repOrig, err := detector.Detect(movie.Ratings, cfg)
	if err != nil {
		return Result{}, err
	}
	repAttacked, err := detector.Detect(sim.Ratings(attacked), cfg)
	if err != nil {
		return Result{}, err
	}

	xs, ys := repOrig.ModelErrors()
	sOrig := Series{Name: "model-error-original", X: xs, Y: ys}
	xs, ys = repAttacked.ModelErrors()
	sAttacked := Series{Name: "model-error-with-collaborative", X: xs, Y: ys}

	origIn := meanErrorIn(repOrig, attack.AStart, attack.AEnd)
	attackedIn := meanErrorIn(repAttacked, attack.AStart, attack.AEnd)
	origOut := meanErrorOutside(repOrig, attack.AStart, attack.AEnd)
	attackedOut := meanErrorOutside(repAttacked, attack.AStart, attack.AEnd)

	return Result{
		ID:         "fig5",
		Title:      "Model error on movie rating data, original vs inserted collaborative ratings",
		PaperClaim: "the model error drops significantly during the time when the collaborative unfair ratings are present (Dinosaur Planet, 2003)",
		Notes: []string{
			"trace: synthetic Dinosaur-Planet-like substitute (Netflix Prize data withdrawn); see DESIGN.md",
			fmt.Sprintf("mean error inside attack days [%g,%g]: original %.4f vs attacked %.4f",
				attack.AStart, attack.AEnd, origIn, attackedIn),
			fmt.Sprintf("mean error outside attack: original %.4f vs attacked %.4f", origOut, attackedOut),
		},
		Series: []Series{sOrig, sAttacked},
	}, nil
}

func meanErrorOutside(rep detector.Report, start, end float64) float64 {
	var sum float64
	var n int
	for _, w := range rep.Windows {
		if !w.Fitted {
			continue
		}
		center := (w.Window.Start + w.Window.End) / 2
		if center < start || center > end {
			sum += w.Model.NormalizedError
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
