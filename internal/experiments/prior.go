package experiments

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/parallel"
	"repro/internal/randx"
	"repro/internal/rating"
	"repro/internal/sim"
	"repro/internal/stat"
	"repro/internal/trust"
)

// AblationPrior sweeps the newcomer trust prior (Record Maintenance's
// initialization, §III.B) against the sybil strategy — the attack that
// specifically exploits fresh identities. A skeptical prior (InitialF >
// 0) starts newcomers below Method 3's aggregation floor, so sybil
// ratings carry no weight until an identity builds history it cannot
// afford to build; the cost is a slower honest cold start. The table
// reports the sybil campaign's residual damage through the full
// pipeline and how many clean months an honest newcomer needs to rise
// above the floor.
func AblationPrior(seed int64, mode Mode, opt Options) (Result, error) {
	runs := runsFor(mode, 40, 8)
	rng := randx.New(seed)
	workers := parallel.Workers(opt.Workers)

	table := Table{
		Title:   "newcomer-prior sweep vs the sybil strategy",
		Columns: []string{"prior (S0,F0)", "newcomer trust", "sybil damage", "honest cold start (months)"},
	}

	priors := []struct{ s, f float64 }{{0, 0}, {0, 1}, {0, 2}, {1, 2}}
	// One stream seed per (prior, run), pre-drawn in the serial loop's
	// flat order.
	seeds := rng.Seeds(len(priors) * runs)
	for pi, prior := range priors {
		trustCfg := trust.ManagerConfig{B: 1, InitialS: prior.s, InitialF: prior.f}
		damage, err := parallel.Map(runs, workers,
			func(i int) (float64, error) {
				local := randx.New(seeds[pi*runs+i])
				p := sim.DefaultIllustrative()
				p.Attack = false
				honest, err := sim.GenerateIllustrative(local, p)
				if err != nil {
					return 0, err
				}
				campaign, err := attack.Sybil{}.Plan(local.Int63(), attack.Params{
					Object:   p.Object,
					Start:    p.AStart,
					End:      p.AEnd,
					Rate:     p.ArrivalRate,
					Bias:     p.BiasShift2,
					Variance: p.BadVar,
					Levels:   p.RLevels,
				}, attack.FlatQuality(p.Quality))
				if err != nil {
					return 0, err
				}
				combined := append(append([]sim.LabeledRating(nil), honest...), campaign...)
				sim.SortByTime(combined)

				attacked, err := priorPipelineAggregate(sim.Ratings(combined), p.Object, trustCfg)
				if err != nil {
					return 0, err
				}
				clean, err := priorPipelineAggregate(sim.Ratings(honest), p.Object, trustCfg)
				if err != nil {
					return 0, err
				}
				return attacked - clean, nil
			})
		if err != nil {
			return Result{}, err
		}

		coldStart, err := honestColdStartMonths(trustCfg)
		if err != nil {
			return Result{}, err
		}
		newcomer := (trust.Record{S: prior.s, F: prior.f}).Trust()
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("(%g,%g)", prior.s, prior.f),
			f(newcomer),
			f(stat.Mean(damage)),
			fmt.Sprintf("%d", coldStart),
		})
	}

	return Result{
		ID:    "ablation-prior",
		Title: "Ablation: newcomer trust prior vs sybil identities",
		Notes: []string{
			fmt.Sprintf("%d runs per prior; sybil damage = aggregate shift vs the honest-only pipeline", runs),
			"cold start = clean months (10 honest ratings each) an honest newcomer needs to rise above the 0.5 floor",
			"negative result: on this one-shot-rater workload every honest rater also starts below the floor under a skeptical prior, so the trust-weighted path collapses to the fallback and damage can exceed the neutral prior's — skeptical priors only pay off where raters have sustained activity (the detector, not the prior, is what neutralizes sybils here; compare ablation-attacks)",
		},
		Tables: []Table{table},
	}, nil
}

func priorPipelineAggregate(rs []rating.Rating, obj rating.ObjectID, trustCfg trust.ManagerConfig) (float64, error) {
	sys, err := core.NewSystem(core.Config{
		Detector: detector.Config{
			Width: 10, TimeStep: 5, Order: 4,
			Threshold: illustrativeThreshold, MinWindow: 25,
		},
		Trust: trustCfg,
	})
	if err != nil {
		return 0, err
	}
	if err := sys.SubmitAll(rs); err != nil {
		return 0, err
	}
	for _, w := range [][2]float64{{0, 30}, {30, 60}} {
		if _, err := sys.ProcessWindow(w[0], w[1]); err != nil {
			return 0, err
		}
	}
	agg, err := sys.Aggregate(obj)
	if err != nil {
		return 0, err
	}
	return agg.Value, nil
}

// honestColdStartMonths counts months of clean activity until the
// prior-seeded trust crosses 0.5 (0 when the prior already starts at or
// above it; capped at 24).
func honestColdStartMonths(cfg trust.ManagerConfig) (int, error) {
	m, err := trust.NewManager(cfg)
	if err != nil {
		return 0, err
	}
	if m.Trust(1) > 0.5 {
		return 0, nil
	}
	for month := 1; month <= 24; month++ {
		if err := m.Update(1, trust.Observation{N: 10}, float64(month*30)); err != nil {
			return 0, err
		}
		if m.Trust(1) > 0.5 {
			return month, nil
		}
	}
	return 24, nil
}
