package experiments

import (
	"fmt"

	"repro/internal/detector"
	"repro/internal/parallel"
	"repro/internal/randx"
	"repro/internal/sim"
)

// AblationWhiteness contrasts the paper's AR-model-error detector with
// the statistically textbook alternative its own premise suggests:
// testing each demeaned window for whiteness (Ljung-Box). Run-level
// detection and false-alarm ratios on the illustrative workload show
// why the paper's heuristic is the right one — interleaved colluders
// barely disturb the autocorrelation sequence, so the whiteness test is
// nearly blind to the smart attack, while the raw AR error keys on the
// clique's variance collapse.
func AblationWhiteness(seed int64, mode Mode, opt Options) (Result, error) {
	runs := runsFor(mode, 120, 20)
	rng := randx.New(seed)

	arCfg := illustrativeDetectorConfig()
	wCfg := detector.WhitenessConfig{
		Config: detector.Config{Mode: detector.WindowByCount, Size: 50, Step: 25},
		Lags:   10,
		Alpha:  0.05,
	}

	seeds := rng.Seeds(runs)
	type outcome struct{ arDet, arFA, wDet, wFA bool }
	outs, err := parallel.MapLocal(runs, parallel.Workers(opt.Workers),
		detector.NewWorkspace,
		func(i int, ws *detector.Workspace) (outcome, error) {
			local := randx.New(seeds[i])
			p := sim.DefaultIllustrative()
			attacked, err := sim.GenerateIllustrative(local, p)
			if err != nil {
				return outcome{}, err
			}
			p.Attack = false
			honest, err := sim.GenerateIllustrative(local.Split(), p)
			if err != nil {
				return outcome{}, err
			}
			attackedRatings := sim.Ratings(attacked)
			honestRatings := sim.Ratings(honest)

			arA, err := detector.DetectWS(attackedRatings, arCfg, ws)
			if err != nil {
				return outcome{}, err
			}
			arH, err := detector.DetectWS(honestRatings, arCfg, ws)
			if err != nil {
				return outcome{}, err
			}
			wA, err := detector.DetectWhiteness(attackedRatings, wCfg)
			if err != nil {
				return outcome{}, err
			}
			wH, err := detector.DetectWhiteness(honestRatings, wCfg)
			if err != nil {
				return outcome{}, err
			}

			return outcome{
				arDet: anySuspiciousOverlapping(arA, p.AStart, p.AEnd),
				arFA:  len(arH.SuspiciousWindows()) > 0,
				wDet:  anySuspiciousOverlapping(wA, p.AStart, p.AEnd),
				wFA:   len(wH.SuspiciousWindows()) > 0,
			}, nil
		})
	if err != nil {
		return Result{}, err
	}
	var arDet, arFA, wDet, wFA int
	for _, o := range outs {
		if o.arDet {
			arDet++
		}
		if o.arFA {
			arFA++
		}
		if o.wDet {
			wDet++
		}
		if o.wFA {
			wFA++
		}
	}

	rate := func(n int) string { return f(float64(n) / float64(runs)) }
	table := Table{
		Title:   "AR model error vs Ljung-Box whiteness test",
		Columns: []string{"detector", "detection", "false alarm"},
		Rows: [][]string{
			{fmt.Sprintf("AR covariance (thr %.3f)", arCfg.Threshold), rate(arDet), rate(arFA)},
			{fmt.Sprintf("Ljung-Box whiteness (alpha %.2f)", wCfg.Alpha), rate(wDet), rate(wFA)},
		},
	}
	return Result{
		ID:    "ablation-whiteness",
		Title: "Ablation: AR-error detector vs whiteness-test detector",
		Notes: []string{
			fmt.Sprintf("%d runs; same 50-rating windows with 50%% overlap for both detectors", runs),
		},
		Tables: []Table{table},
	}, nil
}
