// Package faultinject is the filesystem seam the durability layer is
// built on. Everything that must survive a crash — the write-ahead log
// and the snapshot writer — talks to an FS interface instead of the os
// package, so tests can swap in an in-memory filesystem with real
// power-loss semantics (unsynced writes vanish, un-dir-synced renames
// roll back) and deterministic, seed-driven failpoints (short writes,
// write/sync/rename errors, crash-stop at a chosen operation).
//
// The model is deliberately pessimistic where POSIX is vague:
//
//   - File contents become durable only when File.Sync succeeds.
//   - A rename (or remove, or create) becomes durable only when
//     FS.SyncDir on the parent directory succeeds afterwards.
//   - A crash discards everything volatile and reverts the filesystem
//     to its durable view.
//
// Code that recovers correctly against this model recovers correctly
// against any real filesystem that honors fsync.
package faultinject

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"sort"
)

// File is the subset of *os.File the durability layer needs.
type File interface {
	io.Reader
	io.Writer
	Truncate(size int64) error
	Sync() error
	Close() error
}

// FS is the filesystem seam. Paths are plain strings; implementations
// interpret them like the os package does.
type FS interface {
	// OpenFile mirrors os.OpenFile for the flag subset O_RDONLY,
	// O_RDWR, O_WRONLY, O_CREATE, O_APPEND and O_TRUNC.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	Rename(oldname, newname string) error
	Remove(name string) error
	MkdirAll(dir string, perm fs.FileMode) error
	// ReadDir returns the names (not paths) of the directory's
	// entries in lexical order.
	ReadDir(dir string) ([]string, error)
	// SyncDir fsyncs the directory itself, making prior renames,
	// removes and creates in it durable.
	SyncDir(dir string) error
}

// OS returns the real filesystem.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) MkdirAll(dir string, perm fs.FileMode) error {
	return os.MkdirAll(dir, perm)
}

func (osFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	syncErr := d.Sync()
	closeErr := d.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// Errors injected or produced by the crash model.
var (
	// ErrInjected is the base error of every injected fault.
	ErrInjected = errors.New("faultinject: injected fault")
	// ErrCrashed is returned by every operation after a crash-stop
	// fault until the test rebuilds the filesystem via Crash.
	ErrCrashed = errors.New("faultinject: filesystem crashed")
)

// Op describes one filesystem operation about to execute, in the order
// the filesystem sees them. Index counts all operations on the
// filesystem, starting at 0.
type Op struct {
	Index int
	Kind  string // "open", "write", "sync", "close", "truncate", "rename", "remove", "syncdir"
	Name  string
}

// Fault is an injector's verdict for one operation.
type Fault struct {
	// Err is returned from the operation. For writes, Keep bytes are
	// applied first (a short write); for everything else the operation
	// has no effect.
	Err error
	// Keep is how many bytes of a failing write still reach the file.
	Keep int
	// Crash turns the fault into a crash-stop: the operation fails
	// with ErrCrashed, as does every later operation, and all
	// volatile state is lost when the test calls Crash.
	Crash bool
}

// Injector decides, per operation, whether to inject a fault. A nil
// return means the operation proceeds normally. Injectors must be
// deterministic functions of the Op stream so chaos runs reproduce
// from their seed.
type Injector func(Op) *Fault

// CrashAtOp returns an Injector that crash-stops the filesystem at the
// n-th operation whose kind is in kinds (all kinds when empty),
// counting from 0.
func CrashAtOp(n int, kinds ...string) Injector {
	seen := 0
	match := make(map[string]bool, len(kinds))
	for _, k := range kinds {
		match[k] = true
	}
	return func(op Op) *Fault {
		if len(match) > 0 && !match[op.Kind] {
			return nil
		}
		seen++
		if seen-1 == n {
			return &Fault{Crash: true}
		}
		return nil
	}
}
