package faultinject

import (
	"errors"
	"io"
	"os"
	"testing"
)

func writeFile(t *testing.T, m *MemFS, name, data string) File {
	t.Helper()
	f, err := m.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(data)); err != nil {
		t.Fatal(err)
	}
	return f
}

func readAll(t *testing.T, m *MemFS, name string) string {
	t.Helper()
	f, err := m.OpenFile(name, os.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestUnsyncedWritesVanishOnCrash(t *testing.T) {
	m := NewMemFS()
	f := writeFile(t, m, "d/a", "hello")
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if _, err := m.OpenFile("d/a", os.O_RDONLY, 0); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("unsynced+undirsynced file survived crash: %v", err)
	}
}

func TestSyncedContentNeedsDirSyncForEntry(t *testing.T) {
	m := NewMemFS()
	f := writeFile(t, m, "d/a", "hello")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Content synced, entry not: file still lost.
	files := m.DurableFiles()
	if _, ok := files["d/a"]; ok {
		t.Fatal("entry durable without dir sync")
	}
	if err := m.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if got := readAll(t, m, "d/a"); got != "hello" {
		t.Fatalf("recovered %q, want hello", got)
	}
}

func TestRenameWithoutDirSyncRollsBack(t *testing.T) {
	m := NewMemFS()
	f := writeFile(t, m, "d/a.tmp", "v1")
	f.Sync()
	f.Close()
	m.SyncDir("d")

	if err := m.Rename("d/a.tmp", "d/a"); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if got := readAll(t, m, "d/a.tmp"); got != "v1" {
		t.Fatalf("old name lost: %q", got)
	}
	if _, err := m.OpenFile("d/a", os.O_RDONLY, 0); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("rename survived crash without dir sync")
	}
}

func TestRenameOfUnsyncedFileLeavesEmptyFile(t *testing.T) {
	// The classic broken atomic-rename: temp file written but never
	// fsynced, renamed over the target, dir synced. The entry is
	// durable but the content is not — crash leaves an empty file.
	m := NewMemFS()
	f := writeFile(t, m, "d/state.tmp", "important")
	f.Close() // no Sync
	m.SyncDir("d")
	m.Rename("d/state.tmp", "d/state")
	m.SyncDir("d")
	m.Crash()
	if got := readAll(t, m, "d/state"); got != "" {
		t.Fatalf("unsynced content became durable: %q", got)
	}
}

func TestAppendTruncateRoundTrip(t *testing.T) {
	m := NewMemFS()
	f := writeFile(t, m, "d/log", "abcdef")
	f.Sync()
	f.Close()
	m.SyncDir("d")

	g, err := m.OpenFile("d/log", os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Truncate(3); err != nil {
		t.Fatal(err)
	}
	g.Sync()
	g.Close()
	if got := readAll(t, m, "d/log"); got != "abc" {
		t.Fatalf("truncate: %q", got)
	}

	a, err := m.OpenFile("d/log", os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	a.Write([]byte("XY"))
	a.Sync()
	a.Close()
	if got := readAll(t, m, "d/log"); got != "abcXY" {
		t.Fatalf("append after truncate: %q", got)
	}
}

func TestStaleHandleAfterCrash(t *testing.T) {
	m := NewMemFS()
	f := writeFile(t, m, "d/a", "x")
	f.Sync()
	m.SyncDir("d")
	m.Crash()
	if _, err := f.Write([]byte("y")); err == nil {
		t.Fatal("stale handle write succeeded")
	}
}

func TestCrashAtOpStopsEverything(t *testing.T) {
	m := NewMemFS()
	m.SetInjector(CrashAtOp(1, "sync"))
	f := writeFile(t, m, "d/a", "x")
	if err := f.Sync(); err != nil { // sync #0: fine
		t.Fatal(err)
	}
	f.Write([]byte("y"))
	if err := f.Sync(); !errors.Is(err, ErrCrashed) { // sync #1: crash
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	if _, err := f.Write([]byte("z")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash op: %v", err)
	}
	if !m.Crashed() {
		t.Fatal("not marked crashed")
	}
	m.Crash()
	if m.Crashed() {
		t.Fatal("Crash did not reboot")
	}
}

func TestShortWriteKeepsPrefix(t *testing.T) {
	m := NewMemFS()
	m.SetInjector(func(op Op) *Fault {
		if op.Kind == "write" {
			return &Fault{Err: ErrInjected, Keep: 2}
		}
		return nil
	})
	f, err := m.OpenFile("d/a", os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("hello"))
	if !errors.Is(err, ErrInjected) || n != 2 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	m.SetInjector(nil)
	f.Sync()
	m.SyncDir("d")
	if got := readAll(t, m, "d/a"); got != "he" {
		t.Fatalf("short write kept %q", got)
	}
}

func TestSeededInjectorIsDeterministic(t *testing.T) {
	run := func() []string {
		in := NewSeededInjector(42, 0.5)
		var out []string
		for i := 0; i < 200; i++ {
			kind := []string{"write", "sync", "rename", "syncdir", "open"}[i%5]
			f := in(Op{Index: i, Kind: kind, Name: "x"})
			switch {
			case f == nil:
				out = append(out, "ok")
			case f.Crash:
				out = append(out, "crash")
			default:
				out = append(out, f.Err.Error())
			}
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d: %q vs %q", i, a[i], b[i])
		}
	}
	faults := 0
	for _, s := range a {
		if s != "ok" {
			faults++
		}
	}
	if faults == 0 || faults == len(a) {
		t.Fatalf("degenerate injector: %d/%d faults", faults, len(a))
	}
}

func TestOSFSBasics(t *testing.T) {
	dir := t.TempDir()
	fsys := OS()
	if err := fsys.MkdirAll(dir+"/sub", 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := fsys.OpenFile(dir+"/sub/a.log", os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir(dir + "/sub"); err != nil {
		t.Fatal(err)
	}
	names, err := fsys.ReadDir(dir + "/sub")
	if err != nil || len(names) != 1 || names[0] != "a.log" {
		t.Fatalf("names=%v err=%v", names, err)
	}
	if err := fsys.Rename(dir+"/sub/a.log", dir+"/sub/b.log"); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Remove(dir + "/sub/b.log"); err != nil {
		t.Fatal(err)
	}
}
