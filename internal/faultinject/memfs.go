package faultinject

import (
	"fmt"
	"io"
	"io/fs"
	"path"
	"strings"
	"sync"

	"repro/internal/randx"
)

// MemFS is an in-memory FS with explicit durability: like a disk
// behind a volatile page cache, it keeps a volatile view (what reads
// see) and a durable view (what survives a crash). File contents reach
// the durable view on File.Sync; namespace changes — creates, renames,
// removes — reach it on SyncDir of the parent directory. Crash
// discards the volatile view.
//
// An optional Injector sees every operation in order and can fail it,
// shorten a write, or crash-stop the filesystem. MemFS is safe for
// concurrent use; the operation order the injector sees is whatever
// order the callers' operations serialize in.
type MemFS struct {
	mu      sync.Mutex
	gen     int // bumped on Crash; stale handles fail
	inodes  map[int]*inode
	nextIno int
	vol     map[string]int // volatile namespace: path -> inode
	dur     map[string]int // durable namespace
	inject  Injector
	opIndex int
	crashed bool
}

type inode struct {
	data   []byte // volatile contents
	synced []byte // contents as of the last successful Sync
}

// NewMemFS returns an empty MemFS with no fault injection.
func NewMemFS() *MemFS {
	return &MemFS{
		inodes: make(map[int]*inode),
		vol:    make(map[string]int),
		dur:    make(map[string]int),
	}
}

// NewMemFSFromFiles returns a MemFS whose volatile and durable views
// both hold the given files — the disk of a machine that just booted.
func NewMemFSFromFiles(files map[string][]byte) *MemFS {
	m := NewMemFS()
	for name, data := range files {
		ino := m.nextIno
		m.nextIno++
		m.inodes[ino] = &inode{
			data:   append([]byte(nil), data...),
			synced: append([]byte(nil), data...),
		}
		m.vol[name] = ino
		m.dur[name] = ino
	}
	return m
}

// SetInjector installs (or clears, with nil) the fault injector.
func (m *MemFS) SetInjector(in Injector) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inject = in
}

// Ops returns how many operations the filesystem has seen.
func (m *MemFS) Ops() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.opIndex
}

// Crashed reports whether a crash-stop fault has fired.
func (m *MemFS) Crashed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashed
}

// Crash simulates power loss and reboot: the volatile view is
// discarded, the durable view becomes the new contents, every open
// handle goes stale, and the filesystem accepts operations again.
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gen++
	m.crashed = false
	vol := make(map[string]int, len(m.dur))
	live := make(map[int]*inode, len(m.dur))
	for name, ino := range m.dur {
		vol[name] = ino
		nd := m.inodes[ino]
		nd.data = append([]byte(nil), nd.synced...)
		live[ino] = nd
	}
	m.vol = vol
	m.inodes = live
}

// DurableFiles returns a deep copy of the durable view — the byte-for-
// byte disk image a crash at this instant would leave behind.
func (m *MemFS) DurableFiles() map[string][]byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string][]byte, len(m.dur))
	for name, ino := range m.dur {
		out[name] = append([]byte(nil), m.inodes[ino].synced...)
	}
	return out
}

// step consults the injector for one operation. It returns the fault
// to apply (nil for none) and whether the filesystem is usable.
func (m *MemFS) step(kind, name string) (*Fault, error) {
	if m.crashed {
		return nil, ErrCrashed
	}
	op := Op{Index: m.opIndex, Kind: kind, Name: name}
	m.opIndex++
	if m.inject == nil {
		return nil, nil
	}
	f := m.inject(op)
	if f == nil {
		return nil, nil
	}
	if f.Crash {
		m.crashed = true
		return nil, ErrCrashed
	}
	return f, nil
}

type memHandle struct {
	fs     *MemFS
	gen    int
	name   string
	ino    int
	pos    int
	app    bool // opened with O_APPEND
	rd, wr bool
	closed bool
}

// OpenFile implements FS.
func (m *MemFS) OpenFile(name string, flag int, _ fs.FileMode) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, err := m.step("open", name); err != nil {
		return nil, err
	} else if f != nil && f.Err != nil {
		return nil, f.Err
	}
	ino, ok := m.vol[name]
	switch {
	case !ok && flag&osCreate == 0:
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	case !ok:
		ino = m.nextIno
		m.nextIno++
		m.inodes[ino] = &inode{}
		m.vol[name] = ino
	case flag&osTrunc != 0:
		nd := m.inodes[ino]
		nd.data = nil
	}
	h := &memHandle{
		fs:   m,
		gen:  m.gen,
		name: name,
		ino:  ino,
		app:  flag&osAppend != 0,
		rd:   flag&(osWronly) == 0,
		wr:   flag&(osWronly|osRdwr) != 0,
	}
	return h, nil
}

// Flag values mirroring the os package (kept local so this package
// stays importable everywhere without touching os flags directly).
const (
	osRdonly = 0x0
	osWronly = 0x1
	osRdwr   = 0x2
	osAppend = 0x400
	osCreate = 0x40
	osTrunc  = 0x200
)

func (h *memHandle) node() (*inode, error) {
	if h.closed {
		return nil, fs.ErrClosed
	}
	if h.gen != h.fs.gen {
		return nil, fmt.Errorf("faultinject: stale handle for %s after crash", h.name)
	}
	nd, ok := h.fs.inodes[h.ino]
	if !ok {
		return nil, fs.ErrInvalid
	}
	return nd, nil
}

// Read implements io.Reader.
func (h *memHandle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	nd, err := h.node()
	if err != nil {
		return 0, err
	}
	if !h.rd {
		return 0, fs.ErrPermission
	}
	if h.pos >= len(nd.data) {
		return 0, io.EOF
	}
	n := copy(p, nd.data[h.pos:])
	h.pos += n
	return n, nil
}

// Write implements io.Writer. With O_APPEND, writes go to the end of
// the file regardless of position, as with os.File.
func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	nd, err := h.node()
	if err != nil {
		return 0, err
	}
	if !h.wr {
		return 0, fs.ErrPermission
	}
	keep := len(p)
	var injected error
	if f, err := h.fs.step("write", h.name); err != nil {
		return 0, err
	} else if f != nil && f.Err != nil {
		injected = f.Err
		if f.Keep < keep {
			keep = f.Keep
		}
	}
	if h.app {
		h.pos = len(nd.data)
	}
	if grow := h.pos + keep - len(nd.data); grow > 0 {
		nd.data = append(nd.data, make([]byte, grow)...)
	}
	copy(nd.data[h.pos:], p[:keep])
	h.pos += keep
	if injected != nil {
		return keep, injected
	}
	return keep, nil
}

// Truncate implements File.
func (h *memHandle) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	nd, err := h.node()
	if err != nil {
		return err
	}
	if f, err := h.fs.step("truncate", h.name); err != nil {
		return err
	} else if f != nil && f.Err != nil {
		return f.Err
	}
	if size < 0 || size > int64(len(nd.data)) {
		return fs.ErrInvalid
	}
	nd.data = nd.data[:size]
	if h.pos > int(size) {
		h.pos = int(size)
	}
	return nil
}

// Sync makes the file's current contents durable.
func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	nd, err := h.node()
	if err != nil {
		return err
	}
	if f, err := h.fs.step("sync", h.name); err != nil {
		return err
	} else if f != nil && f.Err != nil {
		return f.Err
	}
	nd.synced = append([]byte(nil), nd.data...)
	return nil
}

// Close implements File. Closing never syncs.
func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	h.closed = true
	if f, err := h.fs.step("close", h.name); err != nil {
		return err
	} else if f != nil && f.Err != nil {
		return f.Err
	}
	return nil
}

// Rename implements FS. The rename is volatile until the parent
// directory is synced.
func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, err := m.step("rename", oldname); err != nil {
		return err
	} else if f != nil && f.Err != nil {
		return f.Err
	}
	ino, ok := m.vol[oldname]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldname, Err: fs.ErrNotExist}
	}
	delete(m.vol, oldname)
	m.vol[newname] = ino
	return nil
}

// Remove implements FS. The removal is volatile until the parent
// directory is synced.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, err := m.step("remove", name); err != nil {
		return err
	} else if f != nil && f.Err != nil {
		return f.Err
	}
	if _, ok := m.vol[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(m.vol, name)
	return nil
}

// MkdirAll implements FS. Directories are implicit in MemFS.
func (m *MemFS) MkdirAll(string, fs.FileMode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	return nil
}

// ReadDir implements FS over the volatile namespace.
func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	prefix := strings.TrimSuffix(dir, "/") + "/"
	var names []string
	for name := range m.vol {
		if strings.HasPrefix(name, prefix) && !strings.Contains(name[len(prefix):], "/") {
			names = append(names, path.Base(name))
		}
	}
	sortStrings(names)
	return names, nil
}

// SyncDir implements FS: the directory's current volatile listing
// becomes its durable listing.
func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, err := m.step("syncdir", dir); err != nil {
		return err
	} else if f != nil && f.Err != nil {
		return f.Err
	}
	prefix := strings.TrimSuffix(dir, "/") + "/"
	inDir := func(name string) bool {
		return strings.HasPrefix(name, prefix) && !strings.Contains(name[len(prefix):], "/")
	}
	for name := range m.dur {
		if inDir(name) {
			delete(m.dur, name)
		}
	}
	for name, ino := range m.vol {
		if inDir(name) {
			m.dur[name] = ino
		}
	}
	return nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// NewSeededInjector returns a deterministic Injector: each operation
// independently faults with probability density, and the fault flavor
// (plain error, short write, crash-stop) is drawn from the same
// seeded stream. The Op stream plus the seed fully determine every
// chaos run, so a failing seed reproduces exactly.
func NewSeededInjector(seed int64, density float64) Injector {
	rng := randx.New(seed)
	return func(op Op) *Fault {
		// Draw in a fixed order regardless of op kind so the stream
		// stays aligned with the op index sequence.
		hit := rng.Bernoulli(density)
		flavor := rng.Float64()
		short := rng.Intn(48)
		if !hit {
			return nil
		}
		switch op.Kind {
		case "write":
			if flavor < 0.10 {
				return &Fault{Crash: true}
			}
			if flavor < 0.55 {
				return &Fault{
					Err:  fmt.Errorf("%w: short write on %s", ErrInjected, op.Name),
					Keep: short,
				}
			}
			return &Fault{Err: fmt.Errorf("%w: write %s", ErrInjected, op.Name)}
		case "sync", "syncdir":
			if flavor < 0.15 {
				return &Fault{Crash: true}
			}
			return &Fault{Err: fmt.Errorf("%w: %s %s", ErrInjected, op.Kind, op.Name)}
		case "rename", "remove", "open", "truncate":
			return &Fault{Err: fmt.Errorf("%w: %s %s", ErrInjected, op.Kind, op.Name)}
		default:
			// Closes stay reliable; failing them adds little coverage.
			return nil
		}
	}
}
