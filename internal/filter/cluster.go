package filter

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rating"
	"repro/internal/stat"
)

// Cluster is the Dellarocas-style clustering filter [3]: ratings are
// split into two clusters by one-dimensional 2-means; when the clusters
// are clearly separated, the smaller cluster is deemed the unfair
// faction and rejected. With balanced or poorly separated clusters the
// filter abstains (accepts everything) — exactly the majority-rule
// failure mode the paper exploits: a clique that is comparable in size
// to the honest population, or close to it in value, is untouchable.
type Cluster struct {
	// MinSeparation is the minimum distance between cluster means, in
	// units of the pooled within-cluster standard deviation, for the
	// split to count as real; 0 means 2.
	MinSeparation float64
	// MaxMinorityShare is the largest fraction of ratings the rejected
	// cluster may hold; 0 means 0.35 (rejecting a near-half "cluster"
	// would just be taking sides).
	MaxMinorityShare float64
	// MaxIter bounds the Lloyd iterations; 0 means 50.
	MaxIter int
}

var _ Filter = Cluster{}

// Name implements Filter.
func (Cluster) Name() string { return "cluster" }

// Apply implements Filter.
func (c Cluster) Apply(rs []rating.Rating) (Result, error) {
	minSep := c.MinSeparation
	if minSep <= 0 {
		minSep = 2
	}
	maxShare := c.MaxMinorityShare
	if maxShare <= 0 {
		maxShare = 0.35
	}
	if maxShare >= 0.5 {
		return Result{}, fmt.Errorf("filter: cluster MaxMinorityShare %g must be below 0.5", maxShare)
	}
	maxIter := c.MaxIter
	if maxIter <= 0 {
		maxIter = 50
	}
	if len(rs) < 4 {
		// Too few ratings to call anything a faction.
		return Result{Accepted: append([]rating.Rating(nil), rs...)}, nil
	}

	values := rating.Values(rs)
	assign, meanLo, meanHi, ok := twoMeans(values, maxIter)
	if !ok {
		return Result{Accepted: append([]rating.Rating(nil), rs...)}, nil
	}

	// Pooled within-cluster spread.
	var lo, hi []float64
	for i, v := range values {
		if assign[i] == 0 {
			lo = append(lo, v)
		} else {
			hi = append(hi, v)
		}
	}
	within := (stat.Variance(lo)*float64(len(lo)) + stat.Variance(hi)*float64(len(hi))) / float64(len(values))
	spread := math.Sqrt(within)
	if spread <= 1e-9 {
		spread = 1e-9
	}
	if (meanHi-meanLo)/spread < minSep {
		return Result{Accepted: append([]rating.Rating(nil), rs...)}, nil
	}

	minority := 0 // cluster index of the smaller faction
	if len(lo) > len(hi) {
		minority = 1
	}
	minoritySize := len(lo)
	if minority == 1 {
		minoritySize = len(hi)
	}
	if float64(minoritySize)/float64(len(values)) > maxShare {
		return Result{Accepted: append([]rating.Rating(nil), rs...)}, nil
	}

	accepted := make([]bool, len(rs))
	for i := range rs {
		accepted[i] = assign[i] != minority
	}
	return partition(rs, accepted), nil
}

// twoMeans runs Lloyd's algorithm with k = 2 on one-dimensional data,
// seeded at the lower/upper quartiles. It returns per-point assignments
// (0 = low cluster, 1 = high cluster) and the two means; ok is false
// when the data cannot be split (all values equal or a cluster emptied).
func twoMeans(values []float64, maxIter int) (assign []int, meanLo, meanHi float64, ok bool) {
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if sorted[0] == sorted[len(sorted)-1] {
		return nil, 0, 0, false
	}
	meanLo = sorted[len(sorted)/4]
	meanHi = sorted[(3*len(sorted))/4]
	if meanLo == meanHi {
		meanLo, meanHi = sorted[0], sorted[len(sorted)-1]
	}

	assign = make([]int, len(values))
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		var sumLo, sumHi float64
		var nLo, nHi int
		for i, v := range values {
			cluster := 0
			if v-meanLo > meanHi-v {
				cluster = 1
			}
			if assign[i] != cluster {
				assign[i] = cluster
				changed = true
			}
			if cluster == 0 {
				sumLo += v
				nLo++
			} else {
				sumHi += v
				nHi++
			}
		}
		if nLo == 0 || nHi == 0 {
			return nil, 0, 0, false
		}
		meanLo, meanHi = sumLo/float64(nLo), sumHi/float64(nHi)
		if !changed {
			break
		}
	}
	return assign, meanLo, meanHi, true
}
