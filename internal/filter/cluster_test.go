package filter

import (
	"testing"
	"testing/quick"

	"repro/internal/randx"
	"repro/internal/rating"
)

func TestClusterRejectsSmallFarFaction(t *testing.T) {
	rng := randx.New(1)
	var rs []rating.Rating
	// 30 honest around 0.8, 8 downgraders at 0.1.
	for i := 0; i < 30; i++ {
		rs = append(rs, rating.Rating{
			Rater: rating.RaterID(i),
			Value: randx.Quantize(rng.NormalVar(0.8, 0.005), 11, true),
			Time:  float64(i),
		})
	}
	for i := 0; i < 8; i++ {
		rs = append(rs, rating.Rating{
			Rater: rating.RaterID(1000 + i),
			Value: 0.1,
			Time:  float64(30 + i),
		})
	}
	res, err := Cluster{}.Apply(rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rejected) != 8 {
		t.Fatalf("rejected %d, want the 8-member faction", len(res.Rejected))
	}
	for _, r := range res.Rejected {
		if r.Rater < 1000 {
			t.Fatalf("honest rater %d rejected", r.Rater)
		}
	}
}

func TestClusterAbstainsOnBalancedSplit(t *testing.T) {
	// Two equal camps: taking sides would be arbitrary; the filter must
	// abstain.
	var rs []rating.Rating
	for i := 0; i < 20; i++ {
		v := 0.2
		if i%2 == 0 {
			v = 0.9
		}
		rs = append(rs, rating.Rating{Rater: rating.RaterID(i), Value: v, Time: float64(i)})
	}
	res, err := Cluster{}.Apply(rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rejected) != 0 {
		t.Fatalf("balanced split rejected %d ratings", len(res.Rejected))
	}
}

func TestClusterAbstainsOnPoorSeparation(t *testing.T) {
	// Wide unimodal noise: 2-means always "finds" two clusters, but the
	// separation test must reject the split.
	rng := randx.New(2)
	var rs []rating.Rating
	for i := 0; i < 60; i++ {
		rs = append(rs, rating.Rating{
			Rater: rating.RaterID(i),
			Value: randx.Quantize(rng.NormalVar(0.5, 0.2), 11, true),
			Time:  float64(i),
		})
	}
	res, err := Cluster{}.Apply(rs)
	if err != nil {
		t.Fatal(err)
	}
	if frac := float64(len(res.Rejected)) / float64(len(rs)); frac > 0.2 {
		t.Fatalf("unimodal noise: rejected %.2f of ratings", frac)
	}
}

// TestClusterMissesSmartCollusion: the §III.A.2 point again — a clique
// at quality+0.15 is too close to separate, and one comparable in size
// to the honest side is protected by the minority-share guard.
func TestClusterMissesSmartCollusion(t *testing.T) {
	rng := randx.New(3)
	var rs []rating.Rating
	for i := 0; i < 40; i++ {
		rs = append(rs, rating.Rating{
			Rater: rating.RaterID(i),
			Value: randx.Quantize(rng.NormalVar(0.7, 0.04), 11, true),
			Time:  float64(i),
		})
	}
	var colluders int
	for i := 0; i < 35; i++ {
		rs = append(rs, rating.Rating{
			Rater: rating.RaterID(500 + i),
			Value: randx.Quantize(rng.NormalVar(0.85, 0.002), 11, true),
			Time:  float64(40 + i),
		})
		colluders++
	}
	res, err := Cluster{}.Apply(rs)
	if err != nil {
		t.Fatal(err)
	}
	caught := 0
	for _, r := range res.Rejected {
		if r.Rater >= 500 {
			caught++
		}
	}
	if caught > colluders/4 {
		t.Fatalf("cluster filter caught %d/%d smart colluders; expected it to mostly miss", caught, colluders)
	}
}

func TestClusterSmallBatches(t *testing.T) {
	res, err := Cluster{}.Apply(batch(0.1, 0.9, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rejected) != 0 {
		t.Fatal("tiny batch must be accepted wholesale")
	}
	res, err = Cluster{}.Apply(nil)
	if err != nil || len(res.Accepted) != 0 {
		t.Fatalf("empty: %+v %v", res, err)
	}
}

func TestClusterConstantValues(t *testing.T) {
	res, err := Cluster{}.Apply(batch(0.5, 0.5, 0.5, 0.5, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rejected) != 0 {
		t.Fatal("constant batch rejected ratings")
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := (Cluster{MaxMinorityShare: 0.6}).Apply(batch(0.1, 0.2, 0.3, 0.4)); err == nil {
		t.Fatal("MaxMinorityShare >= 0.5 accepted")
	}
}

// Property: the cluster filter partitions its input and, when it does
// reject, rejects a minority whose values all sit on one side of the
// accepted values' range.
func TestClusterPartitionProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := randx.New(seed)
		n := rng.Intn(80)
		rs := make([]rating.Rating, n)
		for i := range rs {
			rs[i] = rating.Rating{
				Rater: rating.RaterID(i),
				Value: randx.Quantize(rng.Float64(), 11, true),
				Time:  float64(i),
			}
		}
		res, err := Cluster{}.Apply(rs)
		if err != nil {
			return false
		}
		if len(res.Accepted)+len(res.Rejected) != n {
			return false
		}
		if len(res.Rejected) == 0 {
			return true
		}
		if len(res.Rejected)*2 >= n {
			return false // never reject a majority
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
