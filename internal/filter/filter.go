// Package filter implements rating filters: algorithms that split a
// batch of raw ratings into "normal" and "abnormal" before aggregation
// (the Feature Extraction I + Rating Filter path of Fig 1).
//
// The paper's system uses the Beta-function filter of Whitby, Jøsang
// and Indulska [4] with sensitivity 0.1 (§IV.A); the quantile, entropy
// [5] and endorsement [2] filters are the related-work baselines that
// the evaluation contrasts against. All of them embody the majority
// rule, which is exactly what the smart type-2 attack circumvents —
// reproducing that failure is part of reproducing the paper.
package filter

import (
	"errors"
	"fmt"

	"repro/internal/mathx"
	"repro/internal/rating"
	"repro/internal/stat"
)

// Result partitions a batch of ratings.
type Result struct {
	// Accepted are the ratings that passed, in input order.
	Accepted []rating.Rating
	// Rejected are the ratings filtered out as abnormal, in input order.
	Rejected []rating.Rating
}

// AcceptedValues returns the values of the accepted ratings.
func (r Result) AcceptedValues() []float64 { return rating.Values(r.Accepted) }

// Filter is a rating filter.
type Filter interface {
	// Name identifies the filter in reports and benchmarks.
	Name() string
	// Apply partitions rs. Implementations must not mutate rs.
	Apply(rs []rating.Rating) (Result, error)
}

// ErrTooFew is returned when a filter needs more ratings than supplied.
var ErrTooFew = errors.New("filter: too few ratings")

// Noop accepts everything; the "no filtering technique is used"
// configuration of §III.B.2.
type Noop struct{}

var _ Filter = Noop{}

// Name implements Filter.
func (Noop) Name() string { return "noop" }

// Apply implements Filter.
func (Noop) Apply(rs []rating.Rating) (Result, error) {
	return Result{Accepted: append([]rating.Rating(nil), rs...)}, nil
}

// Beta is the Whitby-Jøsang-Indulska statistical filter for
// Beta-reputation systems [4]. Each rating r induces an individual
// opinion Beta(1+r, 1+(1−r)); a rating is judged unfair when the
// majority's mean falls outside the [q, 1−q] quantile band of that
// individual distribution — i.e. when the rater's opinion effectively
// excludes the majority. Excluded ratings are removed and the majority
// re-estimated until a fixed point. Because each individual Beta is
// wide, only ratings far from the majority get caught, which is exactly
// the weakness against moderate-bias collusion the paper exploits.
type Beta struct {
	// Q is the sensitivity parameter (the paper runs 0.1). Larger is
	// more aggressive. Must lie in (0, 0.5).
	Q float64
	// MaxIter bounds the exclude-refit loop; 0 means 20.
	MaxIter int
	// MinKeep stops the filter from emptying the batch; 0 means 2.
	MinKeep int
}

var _ Filter = Beta{}

// Name implements Filter.
func (Beta) Name() string { return "beta" }

// Apply implements Filter.
func (f Beta) Apply(rs []rating.Rating) (Result, error) {
	if f.Q <= 0 || f.Q >= 0.5 {
		return Result{}, fmt.Errorf("filter: beta sensitivity q=%g outside (0,0.5)", f.Q)
	}
	maxIter := f.MaxIter
	if maxIter <= 0 {
		maxIter = 20
	}
	minKeep := f.MinKeep
	if minKeep <= 0 {
		minKeep = 2
	}
	if len(rs) == 0 {
		return Result{}, nil
	}

	accepted := make([]bool, len(rs))
	for i := range accepted {
		accepted[i] = true
	}
	nAccepted := len(rs)

	for iter := 0; iter < maxIter; iter++ {
		if nAccepted <= minKeep {
			break
		}
		// Majority opinion: mean of Beta(1+Σr, 1+Σ(1−r)) over accepted.
		alpha, beta := 1.0, 1.0
		for i, r := range rs {
			if accepted[i] {
				alpha += r.Value
				beta += 1 - r.Value
			}
		}
		majority := mathx.BetaMean(alpha, beta)

		changed := false
		for i, r := range rs {
			if !accepted[i] {
				continue
			}
			lo, err := mathx.BetaQuantile(f.Q, 1+r.Value, 2-r.Value)
			if err != nil {
				return Result{}, fmt.Errorf("filter: beta lower quantile: %w", err)
			}
			hi, err := mathx.BetaQuantile(1-f.Q, 1+r.Value, 2-r.Value)
			if err != nil {
				return Result{}, fmt.Errorf("filter: beta upper quantile: %w", err)
			}
			if majority < lo || majority > hi {
				accepted[i] = false
				nAccepted--
				changed = true
				if nAccepted <= minKeep {
					break
				}
			}
		}
		if !changed {
			break
		}
	}
	return partition(rs, accepted), nil
}

// Quantile rejects ratings outside the empirical [q, 1−q] quantile band
// of the batch itself — the crudest robust filter, used as a baseline.
type Quantile struct {
	// Q is the tail mass trimmed on each side; must lie in (0, 0.5).
	Q float64
}

var _ Filter = Quantile{}

// Name implements Filter.
func (Quantile) Name() string { return "quantile" }

// Apply implements Filter.
func (f Quantile) Apply(rs []rating.Rating) (Result, error) {
	if f.Q <= 0 || f.Q >= 0.5 {
		return Result{}, fmt.Errorf("filter: quantile q=%g outside (0,0.5)", f.Q)
	}
	if len(rs) == 0 {
		return Result{}, nil
	}
	values := rating.Values(rs)
	lo, err := stat.Quantile(values, f.Q)
	if err != nil {
		return Result{}, err
	}
	hi, err := stat.Quantile(values, 1-f.Q)
	if err != nil {
		return Result{}, err
	}
	accepted := make([]bool, len(rs))
	for i, r := range rs {
		accepted[i] = r.Value >= lo && r.Value <= hi
	}
	return partition(rs, accepted), nil
}

// Entropy is the sequential entropy filter of Weng, Miao and Goh [5]:
// a new rating that increases the uncertainty (Shannon entropy) of the
// rating distribution by more than Threshold bits is flagged unfair.
// Ratings are processed in input (time) order.
type Entropy struct {
	// Levels is the number of histogram bins over [0, 1]; 0 means 11.
	Levels int
	// Threshold is the entropy-increase cutoff in bits; 0 means 0.05.
	Threshold float64
	// MinSamples is how many ratings seed the distribution before the
	// test activates; 0 means 10.
	MinSamples int
}

var _ Filter = Entropy{}

// Name implements Filter.
func (Entropy) Name() string { return "entropy" }

// Apply implements Filter.
func (f Entropy) Apply(rs []rating.Rating) (Result, error) {
	levels := f.Levels
	if levels <= 0 {
		levels = 11
	}
	threshold := f.Threshold
	if threshold <= 0 {
		threshold = 0.05
	}
	minSamples := f.MinSamples
	if minSamples <= 0 {
		minSamples = 10
	}
	hist, err := stat.NewHistogram(0, 1, levels)
	if err != nil {
		return Result{}, err
	}
	accepted := make([]bool, len(rs))
	for i, r := range rs {
		if hist.Total() < minSamples {
			accepted[i] = true
			hist.Add(r.Value)
			continue
		}
		before := hist.Entropy()
		hist.Add(r.Value)
		after := hist.Entropy()
		if after-before > threshold {
			accepted[i] = false
			hist.Remove(r.Value)
			continue
		}
		accepted[i] = true
	}
	return partition(rs, accepted), nil
}

// Endorsement is the Chen-Singh style quality estimator [2]: each
// rating is endorsed by every other rating in proportion to their
// agreement, and ratings whose normalized endorsement falls below
// Threshold are rejected.
type Endorsement struct {
	// Bandwidth is the disagreement distance at which endorsement
	// reaches zero; 0 means 0.3.
	Bandwidth float64
	// Threshold is the minimum normalized endorsement in [0, 1];
	// 0 means 0.2.
	Threshold float64
}

var _ Filter = Endorsement{}

// Name implements Filter.
func (Endorsement) Name() string { return "endorsement" }

// Apply implements Filter.
func (f Endorsement) Apply(rs []rating.Rating) (Result, error) {
	bandwidth := f.Bandwidth
	if bandwidth <= 0 {
		bandwidth = 0.3
	}
	threshold := f.Threshold
	if threshold <= 0 {
		threshold = 0.2
	}
	n := len(rs)
	if n < 2 {
		// A single rating has no endorsers; accept it.
		return Result{Accepted: append([]rating.Rating(nil), rs...)}, nil
	}
	accepted := make([]bool, n)
	for i := range rs {
		var quality float64
		for j := range rs {
			if i == j {
				continue
			}
			d := rs[i].Value - rs[j].Value
			if d < 0 {
				d = -d
			}
			if d < bandwidth {
				quality += 1 - d/bandwidth
			}
		}
		accepted[i] = quality/float64(n-1) >= threshold
	}
	return partition(rs, accepted), nil
}

func partition(rs []rating.Rating, accepted []bool) Result {
	var out Result
	for i, r := range rs {
		if accepted[i] {
			out.Accepted = append(out.Accepted, r)
		} else {
			out.Rejected = append(out.Rejected, r)
		}
	}
	return out
}
