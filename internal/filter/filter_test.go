package filter

import (
	"testing"
	"testing/quick"

	"repro/internal/randx"
	"repro/internal/rating"
)

// batch builds ratings from values, times = index.
func batch(values ...float64) []rating.Rating {
	rs := make([]rating.Rating, len(values))
	for i, v := range values {
		rs[i] = rating.Rating{Rater: rating.RaterID(i), Value: v, Time: float64(i)}
	}
	return rs
}

// honestPlusOutliers builds a tight honest cluster around 0.8 plus far
// outliers.
func honestPlusOutliers(rng *randx.Rand, nHonest int, outliers ...float64) []rating.Rating {
	var rs []rating.Rating
	for i := 0; i < nHonest; i++ {
		rs = append(rs, rating.Rating{
			Rater: rating.RaterID(i),
			Value: randx.Quantize(rng.NormalVar(0.8, 0.01), 11, true),
			Time:  float64(i),
		})
	}
	for j, v := range outliers {
		rs = append(rs, rating.Rating{
			Rater: rating.RaterID(1000 + j),
			Value: v,
			Time:  float64(nHonest + j),
		})
	}
	return rs
}

func TestNoopAcceptsEverything(t *testing.T) {
	rs := batch(0, 0.5, 1)
	res, err := Noop{}.Apply(rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Accepted) != 3 || len(res.Rejected) != 0 {
		t.Fatalf("noop = %+v", res)
	}
	if (Noop{}).Name() != "noop" {
		t.Fatal("name")
	}
}

func TestNoopCopies(t *testing.T) {
	rs := batch(0.5)
	res, _ := Noop{}.Apply(rs)
	res.Accepted[0].Value = 0.9
	if rs[0].Value != 0.5 {
		t.Fatal("noop aliases its input")
	}
}

func TestBetaFilterRejectsFarOutliers(t *testing.T) {
	// A downgrading clique at 0/0.05 against a majority near 0.8 is far
	// enough outside each outlier's individual Beta quantile band to be
	// caught. (A 1.0 rating against a 0.8 majority would NOT be: the
	// individual Beta(2,1) band reaches the majority — the filter is
	// asymmetric by construction.)
	rng := randx.New(1)
	rs := honestPlusOutliers(rng, 30, 0.0, 0.05)
	res, err := Beta{Q: 0.1}.Apply(rs)
	if err != nil {
		t.Fatal(err)
	}
	rejected := make(map[rating.RaterID]bool)
	for _, r := range res.Rejected {
		rejected[r.Rater] = true
	}
	for j := 0; j < 2; j++ {
		if !rejected[rating.RaterID(1000+j)] {
			t.Fatalf("outlier %d not rejected; rejected set: %v", j, res.Rejected)
		}
	}
	if len(res.Rejected) > 4 {
		t.Fatalf("filter over-rejected: %d ratings", len(res.Rejected))
	}
}

// TestBetaFilterMissesSmartCollusion reproduces the paper's point: the
// type-2 strategy (moderate bias, low variance) slips through the Beta
// filter because it is not far from the majority (§III.A.2, Fig 4).
func TestBetaFilterMissesSmartCollusion(t *testing.T) {
	rng := randx.New(2)
	var rs []rating.Rating
	for i := 0; i < 40; i++ {
		rs = append(rs, rating.Rating{
			Rater: rating.RaterID(i),
			Value: randx.Quantize(rng.NormalVar(0.7, 0.2), 11, true),
			Time:  float64(i),
		})
	}
	var colluders int
	for i := 0; i < 40; i++ {
		v := randx.Quantize(rng.NormalVar(0.85, 0.02), 11, true)
		rs = append(rs, rating.Rating{
			Rater: rating.RaterID(500 + i),
			Value: v,
			Time:  float64(40 + i),
		})
		colluders++
	}
	res, err := Beta{Q: 0.1}.Apply(rs)
	if err != nil {
		t.Fatal(err)
	}
	caught := 0
	for _, r := range res.Rejected {
		if r.Rater >= 500 {
			caught++
		}
	}
	if caught > colluders/4 {
		t.Fatalf("beta filter caught %d/%d smart colluders; the paper's premise expects it to miss most", caught, colluders)
	}
}

func TestBetaFilterValidation(t *testing.T) {
	if _, err := (Beta{Q: 0}).Apply(batch(0.5)); err == nil {
		t.Fatal("q = 0 accepted")
	}
	if _, err := (Beta{Q: 0.5}).Apply(batch(0.5)); err == nil {
		t.Fatal("q = 0.5 accepted")
	}
}

func TestBetaFilterEmptyAndTiny(t *testing.T) {
	res, err := Beta{Q: 0.1}.Apply(nil)
	if err != nil || len(res.Accepted) != 0 {
		t.Fatalf("empty: %+v, %v", res, err)
	}
	// MinKeep prevents emptying a 2-rating batch.
	res, err = Beta{Q: 0.1}.Apply(batch(0.1, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Accepted) < 2 {
		t.Fatalf("tiny batch reduced below MinKeep: %+v", res)
	}
}

func TestQuantileFilter(t *testing.T) {
	rs := batch(0.0, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 1.0)
	res, err := Quantile{Q: 0.15}.Apply(rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rejected) != 2 {
		t.Fatalf("rejected %d, want the two extremes", len(res.Rejected))
	}
	for _, r := range res.Rejected {
		if r.Value != 0 && r.Value != 1 {
			t.Fatalf("rejected %+v", r)
		}
	}
}

func TestQuantileFilterValidation(t *testing.T) {
	if _, err := (Quantile{Q: 0.6}).Apply(batch(0.5)); err == nil {
		t.Fatal("q > 0.5 accepted")
	}
	res, err := Quantile{Q: 0.1}.Apply(nil)
	if err != nil || len(res.Accepted) != 0 {
		t.Fatalf("empty: %+v %v", res, err)
	}
}

func TestEntropyFilterFlagsDistributionShift(t *testing.T) {
	// Seed with a tight cluster; a far rating increases entropy and is
	// rejected, a conforming rating is accepted.
	var rs []rating.Rating
	for i := 0; i < 20; i++ {
		rs = append(rs, rating.Rating{Rater: rating.RaterID(i), Value: 0.7, Time: float64(i)})
	}
	rs = append(rs,
		rating.Rating{Rater: 100, Value: 0.1, Time: 20},
		rating.Rating{Rater: 101, Value: 0.7, Time: 21},
	)
	res, err := Entropy{}.Apply(rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rejected) != 1 || res.Rejected[0].Rater != 100 {
		t.Fatalf("rejected = %+v", res.Rejected)
	}
}

func TestEntropyFilterSeedPhaseAcceptsAll(t *testing.T) {
	rs := batch(0.1, 0.9, 0.2, 0.8)
	res, err := Entropy{MinSamples: 10}.Apply(rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rejected) != 0 {
		t.Fatalf("seed phase rejected %+v", res.Rejected)
	}
}

func TestEndorsementFilter(t *testing.T) {
	rng := randx.New(3)
	rs := honestPlusOutliers(rng, 20, 0.05)
	res, err := Endorsement{}.Apply(rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rejected) != 1 || res.Rejected[0].Rater != 1000 {
		t.Fatalf("rejected = %+v", res.Rejected)
	}
}

func TestEndorsementFilterSingleRating(t *testing.T) {
	res, err := Endorsement{}.Apply(batch(0.4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Accepted) != 1 {
		t.Fatalf("single rating: %+v", res)
	}
}

// Property: every filter partitions its input exactly — accepted plus
// rejected is the input multiset, order preserved within each side, and
// the input itself is never mutated.
func TestFiltersPartitionProperty(t *testing.T) {
	filters := []Filter{
		Noop{},
		Beta{Q: 0.1},
		Quantile{Q: 0.1},
		Entropy{},
		Endorsement{},
		Cluster{},
	}
	prop := func(seed int64) bool {
		rng := randx.New(seed)
		n := rng.Intn(60)
		rs := make([]rating.Rating, n)
		for i := range rs {
			rs[i] = rating.Rating{
				Rater: rating.RaterID(i),
				Value: randx.Quantize(rng.Float64(), 11, true),
				Time:  float64(i),
			}
		}
		before := append([]rating.Rating(nil), rs...)
		for _, f := range filters {
			res, err := f.Apply(rs)
			if err != nil {
				return false
			}
			if len(res.Accepted)+len(res.Rejected) != n {
				return false
			}
			// Each side must preserve input (time) order.
			for _, side := range [][]rating.Rating{res.Accepted, res.Rejected} {
				for i := 1; i < len(side); i++ {
					if side[i].Time < side[i-1].Time {
						return false
					}
				}
			}
			// Input untouched.
			for i := range rs {
				if rs[i] != before[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
