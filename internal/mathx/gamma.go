package mathx

import (
	"fmt"
	"math"
)

// RegLowerGamma computes the regularized lower incomplete gamma function
// P(a, x) = γ(a, x) / Γ(a) for a > 0, x >= 0, via the series expansion
// for x < a+1 and the continued fraction for x >= a+1 (Numerical
// Recipes gser/gcf layout). P(a, x) is the CDF of a Gamma(a, 1)
// distribution; the chi-squared CDF used by the Ljung-Box whiteness
// test is P(k/2, x/2).
func RegLowerGamma(a, x float64) (float64, error) {
	switch {
	case a <= 0:
		return 0, fmt.Errorf("reglowergamma: non-positive shape a=%g: %w", a, ErrDimension)
	case math.IsNaN(x) || x < 0:
		return 0, fmt.Errorf("reglowergamma: x=%g negative: %w", x, ErrDimension)
	case x == 0:
		return 0, nil
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	q, err := gammaContinuedFraction(a, x)
	if err != nil {
		return 0, err
	}
	return 1 - q, nil
}

// RegUpperGamma computes Q(a, x) = 1 - P(a, x).
func RegUpperGamma(a, x float64) (float64, error) {
	p, err := RegLowerGamma(a, x)
	if err != nil {
		return 0, err
	}
	return 1 - p, nil
}

// ChiSquaredSurvival returns Pr[X > x] for X ~ chi-squared with k
// degrees of freedom — the p-value of a chi-squared test statistic.
func ChiSquaredSurvival(x float64, k int) (float64, error) {
	if k < 1 {
		return 0, fmt.Errorf("chisquared: %d degrees of freedom: %w", k, ErrDimension)
	}
	if x <= 0 {
		return 1, nil
	}
	return RegUpperGamma(float64(k)/2, x/2)
}

func gammaSeries(a, x float64) (float64, error) {
	const (
		maxIter = 500
		eps     = 3e-15
	)
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			return sum * math.Exp(-x+a*math.Log(x)-lg), nil
		}
	}
	return 0, fmt.Errorf("reglowergamma: series did not converge for a=%g x=%g", a, x)
}

func gammaContinuedFraction(a, x float64) (float64, error) {
	const (
		maxIter = 500
		eps     = 3e-15
		tiny    = 1e-300
	)
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			return h * math.Exp(-x+a*math.Log(x)-lg), nil
		}
	}
	return 0, fmt.Errorf("reguppergamma: continued fraction did not converge for a=%g x=%g", a, x)
}
