package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegLowerGammaKnown(t *testing.T) {
	// P(1, x) = 1 - exp(-x).
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		got, err := RegLowerGamma(1, x)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 - math.Exp(-x)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("P(1,%g) = %g, want %g", x, got, want)
		}
	}
	// P(1/2, x) = erf(sqrt(x)).
	for _, x := range []float64{0.2, 1, 3, 8} {
		got, err := RegLowerGamma(0.5, x)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Erf(math.Sqrt(x))
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("P(0.5,%g) = %g, want %g", x, got, want)
		}
	}
}

func TestRegLowerGammaEdges(t *testing.T) {
	if got, _ := RegLowerGamma(3, 0); got != 0 {
		t.Fatalf("P(3,0) = %g", got)
	}
	if _, err := RegLowerGamma(0, 1); err == nil {
		t.Fatal("a = 0 accepted")
	}
	if _, err := RegLowerGamma(1, -1); err == nil {
		t.Fatal("x < 0 accepted")
	}
}

func TestRegUpperGammaComplement(t *testing.T) {
	for _, c := range []struct{ a, x float64 }{{0.7, 0.3}, {2, 2}, {5, 9}, {10, 3}} {
		p, err1 := RegLowerGamma(c.a, c.x)
		q, err2 := RegUpperGamma(c.a, c.x)
		if err1 != nil || err2 != nil {
			t.Fatalf("errors: %v %v", err1, err2)
		}
		if math.Abs(p+q-1) > 1e-12 {
			t.Errorf("P+Q = %g at %+v", p+q, c)
		}
	}
}

func TestChiSquaredSurvivalKnown(t *testing.T) {
	// Chi-squared with 2 dof: survival = exp(-x/2).
	for _, x := range []float64{0.5, 2, 6} {
		got, err := ChiSquaredSurvival(x, 2)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Exp(-x / 2)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("surv(%g, 2) = %g, want %g", x, got, want)
		}
	}
	// 95th percentile of chi2(1) is about 3.841.
	got, err := ChiSquaredSurvival(3.841, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.05) > 1e-3 {
		t.Errorf("surv(3.841, 1) = %g, want about 0.05", got)
	}
}

func TestChiSquaredSurvivalEdges(t *testing.T) {
	if got, _ := ChiSquaredSurvival(0, 3); got != 1 {
		t.Fatalf("surv(0) = %g", got)
	}
	if got, _ := ChiSquaredSurvival(-2, 3); got != 1 {
		t.Fatalf("surv(-2) = %g", got)
	}
	if _, err := ChiSquaredSurvival(1, 0); err == nil {
		t.Fatal("0 dof accepted")
	}
}

// Property: P(a, x) is monotone non-decreasing in x and within [0, 1].
func TestRegLowerGammaMonotoneProperty(t *testing.T) {
	prop := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		a := 0.2 + 15*local.Float64()
		x1 := 30 * local.Float64()
		x2 := 30 * local.Float64()
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		p1, err1 := RegLowerGamma(a, x1)
		p2, err2 := RegLowerGamma(a, x2)
		if err1 != nil || err2 != nil {
			return false
		}
		return p1 >= 0 && p2 <= 1 && p1 <= p2+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
