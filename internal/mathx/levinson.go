package mathx

import "fmt"

// LevinsonDurbin solves the Toeplitz normal equations of the AR
// autocorrelation (Yule-Walker) method.
//
// Given autocorrelation estimates r[0..p] it returns the AR coefficients
// a[1..p] of the all-pole model
//
//	x(n) = -a(1) x(n-1) - ... - a(p) x(n-p) + e(n)
//
// (so the full polynomial is [1, a(1), ..., a(p)]), the final prediction
// error power, and the reflection coefficients k[1..p]. The returned
// coefficient slice has length p and holds a(1..p); the implicit leading
// 1 is omitted.
//
// It fails when r[0] <= 0 (no signal energy) or when the recursion
// produces a non-positive error power before the requested order, which
// indicates an invalid (non positive-semidefinite) autocorrelation
// sequence.
func LevinsonDurbin(r []float64, p int) (a []float64, errPower float64, k []float64, err error) {
	if p < 1 {
		return nil, 0, nil, fmt.Errorf("levinson: order %d: %w", p, ErrDimension)
	}
	if len(r) < p+1 {
		return nil, 0, nil, fmt.Errorf("levinson: need %d lags, have %d: %w", p+1, len(r), ErrDimension)
	}
	if r[0] <= 0 {
		return nil, 0, nil, fmt.Errorf("levinson: zero-energy signal: %w", ErrSingular)
	}

	a = make([]float64, p)
	k = make([]float64, p)
	prev := make([]float64, p)
	e := r[0]

	for j := 1; j <= p; j++ {
		acc := r[j]
		for i := 1; i < j; i++ {
			acc += a[i-1] * r[j-i]
		}
		kj := -acc / e
		k[j-1] = kj

		copy(prev, a[:j-1])
		for i := 1; i < j; i++ {
			a[i-1] = prev[i-1] + kj*prev[j-i-1]
		}
		a[j-1] = kj

		e *= 1 - kj*kj
		if e <= 0 {
			return nil, 0, nil, fmt.Errorf("levinson: error power vanished at order %d: %w", j, ErrSingular)
		}
	}
	return a, e, k, nil
}
