package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLevinsonDurbinOrderOne(t *testing.T) {
	// AR(1): r(0)=1, r(1)=rho -> a(1) = -rho, error = 1 - rho^2.
	const rho = 0.6
	a, e, k, err := LevinsonDurbin([]float64{1, rho}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a[0]+rho) > 1e-12 {
		t.Fatalf("a(1) = %g, want %g", a[0], -rho)
	}
	if math.Abs(e-(1-rho*rho)) > 1e-12 {
		t.Fatalf("error power = %g, want %g", e, 1-rho*rho)
	}
	if math.Abs(k[0]+rho) > 1e-12 {
		t.Fatalf("k(1) = %g, want %g", k[0], -rho)
	}
}

func TestLevinsonDurbinMatchesDirectSolve(t *testing.T) {
	// Levinson must agree with a direct Toeplitz solve of the
	// Yule-Walker equations R a = -r.
	r := []float64{2.0, 1.1, 0.6, 0.25, 0.1}
	const p = 4
	a, _, _, err := LevinsonDurbin(r, p)
	if err != nil {
		t.Fatal(err)
	}
	// Build the Toeplitz system.
	m := NewMatrix(p, p)
	rhs := make([]float64, p)
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			m[i][j] = r[abs(i-j)]
		}
		rhs[i] = -r[i+1]
	}
	want, err := SymSolve(m, rhs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(a[i]-want[i]) > 1e-9 {
			t.Fatalf("a = %v, direct solve = %v", a, want)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestLevinsonDurbinWhiteNoise(t *testing.T) {
	// White noise has r = [s, 0, 0, ...]: all coefficients zero, error = s.
	a, e, _, err := LevinsonDurbin([]float64{3, 0, 0, 0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range a {
		if v != 0 {
			t.Fatalf("a(%d) = %g, want 0", i+1, v)
		}
	}
	if e != 3 {
		t.Fatalf("error = %g, want 3", e)
	}
}

func TestLevinsonDurbinErrors(t *testing.T) {
	if _, _, _, err := LevinsonDurbin([]float64{1, 0.5}, 0); err == nil {
		t.Fatal("order 0 accepted")
	}
	if _, _, _, err := LevinsonDurbin([]float64{1}, 1); err == nil {
		t.Fatal("too few lags accepted")
	}
	if _, _, _, err := LevinsonDurbin([]float64{0, 0}, 1); err == nil {
		t.Fatal("zero-energy signal accepted")
	}
	// |rho| = 1 collapses the error power at order 2.
	if _, _, _, err := LevinsonDurbin([]float64{1, 1, 1}, 2); err == nil {
		t.Fatal("degenerate autocorrelation accepted")
	}
}

// Property: error power is positive and non-increasing with model order,
// and all reflection coefficients have magnitude < 1 for valid sequences.
func TestLevinsonDurbinMonotoneErrorProperty(t *testing.T) {
	prop := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		// Build a valid autocorrelation from a random signal.
		n := 64
		x := make([]float64, n)
		for i := range x {
			x[i] = local.NormFloat64()
		}
		const maxP = 6
		r := make([]float64, maxP+1)
		for lag := 0; lag <= maxP; lag++ {
			for i := lag; i < n; i++ {
				r[lag] += x[i] * x[i-lag]
			}
		}
		prevErr := r[0]
		for p := 1; p <= maxP; p++ {
			_, e, k, err := LevinsonDurbin(r, p)
			if err != nil {
				return false
			}
			if e <= 0 || e > prevErr+1e-12 {
				return false
			}
			for _, kv := range k {
				if math.Abs(kv) >= 1 {
					return false
				}
			}
			prevErr = e
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
