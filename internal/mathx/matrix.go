// Package mathx provides the small dense linear-algebra and
// special-function kernels the rest of the library builds on: symmetric
// linear solves for the AR covariance method, the Levinson-Durbin
// recursion for the autocorrelation method, and the regularized
// incomplete beta function family for Beta-reputation filtering.
//
// Everything is written against plain [][]float64 / []float64 so callers
// never depend on an opaque matrix type. All functions treat their
// arguments as read-only unless documented otherwise.
package mathx

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("mathx: matrix is singular to working precision")

// ErrDimension is returned when matrix/vector dimensions do not agree.
var ErrDimension = errors.New("mathx: dimension mismatch")

// NewMatrix allocates an n-by-m matrix of zeros backed by a single slice
// row per line. n and m must be non-negative.
func NewMatrix(n, m int) [][]float64 {
	rows := make([][]float64, n)
	backing := make([]float64, n*m)
	for i := range rows {
		rows[i], backing = backing[:m:m], backing[m:]
	}
	return rows
}

// CloneMatrix returns a deep copy of a.
func CloneMatrix(a [][]float64) [][]float64 {
	if len(a) == 0 {
		return nil
	}
	out := NewMatrix(len(a), len(a[0]))
	for i, row := range a {
		copy(out[i], row)
	}
	return out
}

// MatVec computes a*x. It returns ErrDimension when the shapes disagree.
func MatVec(a [][]float64, x []float64) ([]float64, error) {
	if len(a) == 0 {
		return nil, nil
	}
	if len(a[0]) != len(x) {
		return nil, fmt.Errorf("matvec %dx%d by %d: %w", len(a), len(a[0]), len(x), ErrDimension)
	}
	out := make([]float64, len(a))
	for i, row := range a {
		out[i] = Dot(row, x)
	}
	return out, nil
}

// Dot returns the inner product of two equal-length vectors. It panics if
// the lengths differ because that is always a programming error in this
// code base, never a data condition.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mathx: dot of lengths %d and %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Cholesky computes the lower-triangular factor L with A = L Lᵀ for a
// symmetric positive-definite matrix a. Only the lower triangle of a is
// read. The boolean result reports whether the factorization succeeded;
// it fails when a is not (numerically) positive definite.
func Cholesky(a [][]float64) ([][]float64, bool) {
	n := len(a)
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a[j][j]
		for k := 0; k < j; k++ {
			d -= l[j][k] * l[j][k]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, false
		}
		l[j][j] = math.Sqrt(d)
		for i := j + 1; i < n; i++ {
			s := a[i][j]
			for k := 0; k < j; k++ {
				s -= l[i][k] * l[j][k]
			}
			l[i][j] = s / l[j][j]
		}
	}
	return l, true
}

// SolveCholesky solves A x = b given the Cholesky factor L of A, via one
// forward and one backward substitution.
func SolveCholesky(l [][]float64, b []float64) ([]float64, error) {
	n := len(l)
	if len(b) != n {
		return nil, fmt.Errorf("cholesky solve order %d with rhs %d: %w", n, len(b), ErrDimension)
	}
	// Forward: L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l[i][k] * y[k]
		}
		y[i] = s / l[i][i]
	}
	// Backward: Lᵀ x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l[k][i] * x[k]
		}
		x[i] = s / l[i][i]
	}
	return x, nil
}

// SolveLU solves A x = b by Gaussian elimination with partial pivoting.
// a and b are not modified. It returns ErrSingular when no pivot above
// working precision can be found.
func SolveLU(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if len(b) != n {
		return nil, fmt.Errorf("lu solve order %d with rhs %d: %w", n, len(b), ErrDimension)
	}
	m := CloneMatrix(a)
	x := make([]float64, n)
	copy(x, b)

	for col := 0; col < n; col++ {
		// Partial pivot: largest magnitude in this column at/below the diagonal.
		pivot, pivotAbs := col, math.Abs(m[col][col])
		for r := col + 1; r < n; r++ {
			if abs := math.Abs(m[r][col]); abs > pivotAbs {
				pivot, pivotAbs = r, abs
			}
		}
		if pivotAbs < 1e-300 || math.IsNaN(pivotAbs) {
			return nil, fmt.Errorf("pivot %d: %w", col, ErrSingular)
		}
		if pivot != col {
			m[pivot], m[col] = m[col], m[pivot]
			x[pivot], x[col] = x[col], x[pivot]
		}
		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			m[r][col] = 0
			for c := col + 1; c < n; c++ {
				m[r][c] -= f * m[col][c]
			}
			x[r] -= f * x[col]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= m[i][k] * x[k]
		}
		x[i] = s / m[i][i]
	}
	return x, nil
}

// SymSolve solves A x = b for a symmetric matrix a, preferring Cholesky
// (fast, stable for the positive-definite systems produced by the AR
// covariance method) and falling back to pivoted LU when a is
// semi-definite or indefinite, as happens for degenerate rating windows.
func SymSolve(a [][]float64, b []float64) ([]float64, error) {
	if l, ok := Cholesky(a); ok {
		return SolveCholesky(l, b)
	}
	return SolveLU(a, b)
}

// RidgeSymSolve solves (A + λI) x = b. A small ridge keeps the covariance
// normal equations solvable on constant or near-constant rating windows.
func RidgeSymSolve(a [][]float64, b []float64, lambda float64) ([]float64, error) {
	n := len(a)
	x := make([]float64, n)
	ws := NewSolveWorkspace(n)
	if err := RidgeSymSolveInto(x, a, b, lambda, ws); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveWorkspace holds the scratch an in-place symmetric solve needs:
// one n×n matrix and one length-n vector. One workspace serves any
// system of order <= its capacity; it is not safe for concurrent use
// (one workspace per goroutine, never shared).
type SolveWorkspace struct {
	order int
	m     [][]float64
	y     []float64
	back  []float64
}

// NewSolveWorkspace allocates scratch for systems up to order n.
func NewSolveWorkspace(n int) *SolveWorkspace {
	ws := &SolveWorkspace{}
	ws.ensure(n)
	return ws
}

// ensure shapes the scratch for order n, allocating only when the order
// actually changes (the detector fits thousands of same-order windows).
func (ws *SolveWorkspace) ensure(n int) {
	if ws.order == n && ws.m != nil {
		return
	}
	if cap(ws.back) < n*n {
		ws.back = make([]float64, n*n)
	}
	if cap(ws.y) < n {
		ws.y = make([]float64, n)
	}
	ws.m = make([][]float64, n)
	for i := range ws.m {
		ws.m[i] = ws.back[i*n : (i+1)*n : (i+1)*n]
	}
	ws.y = ws.y[:n]
	ws.order = n
}

// RidgeSymSolveInto solves (A + λI) x = b into x without allocating:
// all scratch comes from ws (grown as needed). It prefers an in-place
// Cholesky factorization and falls back to in-place pivoted LU when the
// ridged matrix is not numerically positive definite. a and b are not
// modified.
func RidgeSymSolveInto(x []float64, a [][]float64, b []float64, lambda float64, ws *SolveWorkspace) error {
	n := len(a)
	if len(b) != n || len(x) != n {
		return fmt.Errorf("ridge solve order %d with rhs %d into %d: %w", n, len(b), len(x), ErrDimension)
	}
	ws.ensure(n)
	loadRidged := func() {
		for i, row := range a {
			copy(ws.m[i], row)
			ws.m[i][i] += lambda
		}
	}
	loadRidged()
	if choleskyInPlace(ws.m) {
		solveCholeskyInto(x, ws.m, b, ws.y)
		return nil
	}
	loadRidged() // the failed factorization clobbered the lower triangle
	return solveLUInPlace(x, ws.m, b)
}

// choleskyInPlace overwrites the lower triangle of m with its Cholesky
// factor L (m = L Lᵀ), reading only the lower triangle. It reports
// failure when m is not numerically positive definite, in which case
// the lower triangle is partially overwritten.
func choleskyInPlace(m [][]float64) bool {
	n := len(m)
	for j := 0; j < n; j++ {
		d := m[j][j]
		for k := 0; k < j; k++ {
			d -= m[j][k] * m[j][k]
		}
		if d <= 0 || math.IsNaN(d) {
			return false
		}
		m[j][j] = math.Sqrt(d)
		for i := j + 1; i < n; i++ {
			s := m[i][j]
			for k := 0; k < j; k++ {
				s -= m[i][k] * m[j][k]
			}
			m[i][j] = s / m[j][j]
		}
	}
	return true
}

// solveCholeskyInto solves A x = b given the in-place factor L, using y
// as forward-substitution scratch.
func solveCholeskyInto(x []float64, l [][]float64, b, y []float64) {
	n := len(l)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l[i][k] * y[k]
		}
		y[i] = s / l[i][i]
	}
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l[k][i] * x[k]
		}
		x[i] = s / l[i][i]
	}
}

// solveLUInPlace is SolveLU operating destructively on m (already a
// scratch copy), writing the solution into x.
func solveLUInPlace(x []float64, m [][]float64, b []float64) error {
	n := len(m)
	copy(x, b)
	for col := 0; col < n; col++ {
		pivot, pivotAbs := col, math.Abs(m[col][col])
		for r := col + 1; r < n; r++ {
			if abs := math.Abs(m[r][col]); abs > pivotAbs {
				pivot, pivotAbs = r, abs
			}
		}
		if pivotAbs < 1e-300 || math.IsNaN(pivotAbs) {
			return fmt.Errorf("pivot %d: %w", col, ErrSingular)
		}
		if pivot != col {
			m[pivot], m[col] = m[col], m[pivot]
			x[pivot], x[col] = x[col], x[pivot]
		}
		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			m[r][col] = 0
			for c := col + 1; c < n; c++ {
				m[r][c] -= f * m[col][c]
			}
			x[r] -= f * x[col]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= m[i][k] * x[k]
		}
		x[i] = s / m[i][i]
	}
	return nil
}
