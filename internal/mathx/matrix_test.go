package mathx

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMatrixShape(t *testing.T) {
	m := NewMatrix(3, 5)
	if len(m) != 3 {
		t.Fatalf("rows = %d, want 3", len(m))
	}
	for i, row := range m {
		if len(row) != 5 {
			t.Fatalf("row %d length = %d, want 5", i, len(row))
		}
		for j, v := range row {
			if v != 0 {
				t.Fatalf("m[%d][%d] = %g, want 0", i, j, v)
			}
		}
	}
}

func TestNewMatrixRowsIndependent(t *testing.T) {
	m := NewMatrix(2, 2)
	m[0] = append(m[0], 99) // must not clobber row 1
	if m[1][0] != 0 || m[1][1] != 0 {
		t.Fatalf("appending to row 0 corrupted row 1: %v", m[1])
	}
}

func TestCloneMatrixIndependence(t *testing.T) {
	a := [][]float64{{1, 2}, {3, 4}}
	b := CloneMatrix(a)
	b[0][0] = 42
	if a[0][0] != 1 {
		t.Fatal("CloneMatrix shares backing storage with source")
	}
}

func TestCloneMatrixEmpty(t *testing.T) {
	if got := CloneMatrix(nil); got != nil {
		t.Fatalf("CloneMatrix(nil) = %v, want nil", got)
	}
}

func TestMatVec(t *testing.T) {
	a := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	got, err := MatVec(a, []float64{1, -1})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-1, -1, -1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MatVec = %v, want %v", got, want)
		}
	}
}

func TestMatVecDimensionError(t *testing.T) {
	_, err := MatVec([][]float64{{1, 2}}, []float64{1})
	if !errors.Is(err, ErrDimension) {
		t.Fatalf("err = %v, want ErrDimension", err)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched lengths did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

// randomSPD builds a random symmetric positive-definite matrix M Mᵀ + nI.
func randomSPD(rng *rand.Rand, n int) [][]float64 {
	m := NewMatrix(n, n)
	for i := range m {
		for j := range m[i] {
			m[i][j] = rng.NormFloat64()
		}
	}
	spd := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				spd[i][j] += m[i][k] * m[j][k]
			}
		}
		spd[i][i] += float64(n)
	}
	return spd
}

func TestCholeskyReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(8)
		a := randomSPD(rng, n)
		l, ok := Cholesky(a)
		if !ok {
			t.Fatalf("trial %d: Cholesky failed on SPD matrix", trial)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for k := 0; k < n; k++ {
					s += l[i][k] * l[j][k]
				}
				if math.Abs(s-a[i][j]) > 1e-9*float64(n) {
					t.Fatalf("trial %d: (LLᵀ)[%d][%d] = %g, want %g", trial, i, j, s, a[i][j])
				}
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := [][]float64{{1, 0}, {0, -1}}
	if _, ok := Cholesky(a); ok {
		t.Fatal("Cholesky accepted an indefinite matrix")
	}
}

func TestSolveCholeskyKnown(t *testing.T) {
	a := [][]float64{{4, 2}, {2, 3}}
	l, ok := Cholesky(a)
	if !ok {
		t.Fatal("Cholesky failed")
	}
	x, err := SolveCholesky(l, []float64{10, 9})
	if err != nil {
		t.Fatal(err)
	}
	// 4x+2y=10, 2x+3y=9 -> x=1.5, y=2.
	if math.Abs(x[0]-1.5) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Fatalf("x = %v, want [1.5 2]", x)
	}
}

func TestSolveCholeskyDimensionError(t *testing.T) {
	l, _ := Cholesky([][]float64{{1}})
	if _, err := SolveCholesky(l, []float64{1, 2}); !errors.Is(err, ErrDimension) {
		t.Fatalf("err = %v, want ErrDimension", err)
	}
}

func TestSolveLUKnown(t *testing.T) {
	a := [][]float64{{0, 2, 1}, {1, -2, -3}, {-1, 1, 2}}
	b := []float64{-8, 0, 3}
	x, err := SolveLU(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MatVec(a, x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if math.Abs(got[i]-b[i]) > 1e-10 {
			t.Fatalf("A x = %v, want %v", got, b)
		}
	}
}

func TestSolveLUNeedsPivoting(t *testing.T) {
	// Zero on the leading diagonal forces a row swap.
	a := [][]float64{{0, 1}, {1, 0}}
	x, err := SolveLU(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 3 || x[1] != 2 {
		t.Fatalf("x = %v, want [3 2]", x)
	}
}

func TestSolveLUSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	if _, err := SolveLU(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveLUDoesNotMutateInputs(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{3, 5}
	if _, err := SolveLU(a, b); err != nil {
		t.Fatal(err)
	}
	if a[0][0] != 2 || a[1][0] != 1 || b[0] != 3 {
		t.Fatal("SolveLU mutated its inputs")
	}
}

func TestSymSolveFallsBackToLU(t *testing.T) {
	// Symmetric indefinite: Cholesky fails, LU must still solve it.
	a := [][]float64{{0, 1}, {1, 0}}
	x, err := SymSolve(a, []float64{5, 7})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 7 || x[1] != 5 {
		t.Fatalf("x = %v, want [7 5]", x)
	}
}

func TestRidgeSymSolveRegularizesSingular(t *testing.T) {
	a := [][]float64{{1, 1}, {1, 1}}
	if _, err := SymSolve(a, []float64{1, 1}); err == nil {
		t.Fatal("expected the unridged singular system to fail")
	}
	x, err := RidgeSymSolve(a, []float64{1, 1}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	// Symmetric problem: both components equal, near 0.5.
	if math.Abs(x[0]-x[1]) > 1e-9 || math.Abs(x[0]-0.5) > 1e-3 {
		t.Fatalf("x = %v, want approx [0.5 0.5]", x)
	}
}

// Property: for random SPD systems, SymSolve returns x with A x ≈ b.
func TestSymSolveResidualProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	prop := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		n := 1 + local.Intn(10)
		a := randomSPD(local, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = local.NormFloat64() * 10
		}
		x, err := SymSolve(a, b)
		if err != nil {
			return false
		}
		ax, err := MatVec(a, x)
		if err != nil {
			return false
		}
		for i := range b {
			if math.Abs(ax[i]-b[i]) > 1e-7*(1+math.Abs(b[i])) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Cholesky solve and LU solve agree on SPD systems.
func TestCholeskyAgreesWithLUProperty(t *testing.T) {
	prop := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		n := 2 + local.Intn(6)
		a := randomSPD(local, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = local.NormFloat64()
		}
		l, ok := Cholesky(a)
		if !ok {
			return false
		}
		x1, err1 := SolveCholesky(l, b)
		x2, err2 := SolveLU(a, b)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range x1 {
			if math.Abs(x1[i]-x2[i]) > 1e-7*(1+math.Abs(x1[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
