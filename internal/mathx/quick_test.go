package mathx

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/randx"
)

// The property tests below are seed-driven: quick generates an int64
// seed, a deterministic randx stream expands it into a structured
// instance (an SPD system, a stable AR model, a beta distribution),
// and the property is checked to tolerance. Failures therefore shrink
// to a single reproducible seed.

// TestQuickSymSolveRecovers: for any random well-conditioned SPD
// system A = B·Bᵀ + n·I with known solution x, SymSolve(A, A·x) must
// recover x.
func TestQuickSymSolveRecovers(t *testing.T) {
	prop := func(seed int64) bool {
		rng := randx.New(seed)
		n := 1 + rng.Intn(8)
		bm := NewMatrix(n, n)
		for i := range bm {
			for j := range bm[i] {
				bm[i][j] = rng.Uniform(-1, 1)
			}
		}
		// A = B·Bᵀ + n·I is symmetric positive definite with a bounded
		// condition number, so the recovery tolerance can be tight.
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				for k := 0; k < n; k++ {
					a[i][j] += bm[i][k] * bm[j][k]
				}
			}
			a[i][i] += float64(n)
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.Uniform(-5, 5)
		}
		rhs, err := MatVec(a, want)
		if err != nil {
			return false
		}
		got, err := SymSolve(a, rhs)
		if err != nil {
			return false
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-8*(1+math.Abs(want[i])) {
				t.Logf("seed %d: x[%d] = %g, want %g", seed, i, got[i], want[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRidgeSolveMatchesPlain: with lambda = 0 the ridge path
// (including the workspace-reusing variant) must agree with SymSolve.
func TestQuickRidgeSolveMatchesPlain(t *testing.T) {
	ws := NewSolveWorkspace(0)
	prop := func(seed int64) bool {
		rng := randx.New(seed)
		n := 1 + rng.Intn(6)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				v := rng.Uniform(-1, 1)
				a[i][j], a[j][i] = v, v
			}
			a[i][i] += float64(n) // diagonally dominant => SPD
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.Uniform(-3, 3)
		}
		plain, err := SymSolve(a, b)
		if err != nil {
			return false
		}
		ridge, err := RidgeSymSolve(a, b, 0)
		if err != nil {
			return false
		}
		into := make([]float64, n)
		if err := RidgeSymSolveInto(into, a, b, 0, ws); err != nil {
			return false
		}
		for i := range plain {
			if math.Abs(plain[i]-ridge[i]) > 1e-10 || math.Abs(plain[i]-into[i]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// stepUp converts reflection coefficients into the autocorrelation
// sequence of the AR process they define (the inverse of the
// Levinson-Durbin recursion): at each order j,
//
//	r[j] = -k_j·e_{j-1} - Σ_{i<j} a_i·r[j-i],  e_j = e_{j-1}·(1-k_j²)
//
// with r[0] = 1. Feeding that r back into LevinsonDurbin must recover
// exactly the k we started from.
func stepUp(k []float64) []float64 {
	p := len(k)
	r := make([]float64, p+1)
	r[0] = 1
	a := make([]float64, 0, p)
	e := 1.0
	for j := 1; j <= p; j++ {
		kj := k[j-1]
		sum := 0.0
		for i, ai := range a {
			sum += ai * r[j-1-i]
		}
		r[j] = -kj*e - sum
		// Step up the coefficients: a'_i = a_i + k_j·a_{j-1-i}, a'_j = k_j.
		next := make([]float64, j)
		for i := 0; i < j-1; i++ {
			next[i] = a[i] + kj*a[j-2-i]
		}
		next[j-1] = kj
		a = next
		e *= 1 - kj*kj
	}
	return r
}

// TestQuickLevinsonRoundTrip: random stable reflection coefficients
// (|k| <= 0.9) → autocorrelation via step-up → LevinsonDurbin must
// return the same reflection coefficients and the matching prediction
// error power Π(1-k²).
func TestQuickLevinsonRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := randx.New(seed)
		p := 1 + rng.Intn(6)
		k := make([]float64, p)
		for i := range k {
			k[i] = rng.Uniform(-0.9, 0.9)
		}
		r := stepUp(k)
		_, errPower, gotK, err := LevinsonDurbin(r, p)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		wantE := 1.0
		for i := range k {
			wantE *= 1 - k[i]*k[i]
			if math.Abs(gotK[i]-k[i]) > 1e-8 {
				t.Logf("seed %d: k[%d] = %g, want %g", seed, i, gotK[i], k[i])
				return false
			}
		}
		if math.Abs(errPower-wantE) > 1e-8*(1+wantE) {
			t.Logf("seed %d: errPower = %g, want %g", seed, errPower, wantE)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBetaRoundTrip: the regularized incomplete beta and its
// inverse must compose to the identity across random shapes.
func TestQuickBetaRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := randx.New(seed)
		a := rng.Uniform(0.5, 20)
		b := rng.Uniform(0.5, 20)
		p := rng.Uniform(0.001, 0.999)
		x, err := BetaQuantile(p, a, b)
		if err != nil {
			t.Logf("seed %d: quantile: %v", seed, err)
			return false
		}
		if x < 0 || x > 1 {
			return false
		}
		back, err := RegIncBeta(x, a, b)
		if err != nil {
			t.Logf("seed %d: regincbeta: %v", seed, err)
			return false
		}
		if math.Abs(back-p) > 1e-7 {
			t.Logf("seed %d: I(Q(%g)) = %g (a=%g b=%g)", seed, p, back, a, b)
			return false
		}
		// Monotonicity spot check: a higher p never maps below x.
		p2 := p + (1-p)*0.5
		x2, err := BetaQuantile(p2, a, b)
		if err != nil {
			return false
		}
		return x2 >= x-1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
