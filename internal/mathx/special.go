package mathx

import (
	"fmt"
	"math"
)

// LogBeta returns ln B(a, b) = ln Γ(a) + ln Γ(b) − ln Γ(a+b) for a, b > 0.
func LogBeta(a, b float64) float64 {
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	return la + lb - lab
}

// RegIncBeta computes the regularized incomplete beta function
// I_x(a, b) = B(x; a, b) / B(a, b) for a, b > 0 and x in [0, 1], using
// the Lentz continued-fraction evaluation (Numerical Recipes betacf
// layout), switching to the symmetry relation for fast convergence.
//
// I_x(a, b) is the CDF of the Beta(a, b) distribution, which is what the
// Whitby-style reputation filter needs.
func RegIncBeta(x, a, b float64) (float64, error) {
	switch {
	case a <= 0 || b <= 0:
		return 0, fmt.Errorf("regincbeta: non-positive shape a=%g b=%g: %w", a, b, ErrDimension)
	case math.IsNaN(x) || x < 0 || x > 1:
		return 0, fmt.Errorf("regincbeta: x=%g outside [0,1]: %w", x, ErrDimension)
	case x == 0:
		return 0, nil
	case x == 1:
		return 1, nil
	}
	// Prefactor x^a (1-x)^b / (a B(a,b)) computed in log space.
	ln := a*math.Log(x) + b*math.Log1p(-x) - LogBeta(a, b)
	front := math.Exp(ln)
	if x < (a+1)/(a+b+2) {
		cf, err := betaContinuedFraction(x, a, b)
		if err != nil {
			return 0, err
		}
		return front * cf / a, nil
	}
	cf, err := betaContinuedFraction(1-x, b, a)
	if err != nil {
		return 0, err
	}
	return 1 - front*cf/b, nil
}

// betaContinuedFraction evaluates the continued fraction for the
// incomplete beta function by the modified Lentz method.
func betaContinuedFraction(x, a, b float64) (float64, error) {
	const (
		maxIter = 500
		eps     = 3e-15
		tiny    = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		// Even step.
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		// Odd step.
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			return h, nil
		}
	}
	return 0, fmt.Errorf("regincbeta: continued fraction did not converge for a=%g b=%g x=%g", a, b, x)
}

// BetaQuantile returns the p-quantile of the Beta(a, b) distribution,
// i.e. the x with I_x(a, b) = p, via bisection refined by Newton steps.
// p must lie in [0, 1].
func BetaQuantile(p, a, b float64) (float64, error) {
	switch {
	case a <= 0 || b <= 0:
		return 0, fmt.Errorf("betaquantile: non-positive shape a=%g b=%g: %w", a, b, ErrDimension)
	case math.IsNaN(p) || p < 0 || p > 1:
		return 0, fmt.Errorf("betaquantile: p=%g outside [0,1]: %w", p, ErrDimension)
	case p == 0:
		return 0, nil
	case p == 1:
		return 1, nil
	}

	lo, hi := 0.0, 1.0
	x := 0.5
	for iter := 0; iter < 200; iter++ {
		cdf, err := RegIncBeta(x, a, b)
		if err != nil {
			return 0, err
		}
		if cdf > p {
			hi = x
		} else {
			lo = x
		}
		// Newton step from the current point; fall back to bisection when
		// it leaves the bracket or the density underflows.
		pdfLn := (a-1)*math.Log(x) + (b-1)*math.Log1p(-x) - LogBeta(a, b)
		next := x
		if pdf := math.Exp(pdfLn); pdf > 1e-300 {
			next = x - (cdf-p)/pdf
		}
		if next <= lo || next >= hi || math.IsNaN(next) {
			next = (lo + hi) / 2
		}
		if math.Abs(next-x) < 1e-13 {
			return next, nil
		}
		x = next
	}
	return x, nil
}

// BetaMean returns the mean a/(a+b) of a Beta(a, b) distribution.
func BetaMean(a, b float64) float64 { return a / (a + b) }

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo
	case v > hi:
		return hi
	default:
		return v
	}
}
