package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLogBetaKnown(t *testing.T) {
	cases := []struct {
		a, b, want float64
	}{
		{1, 1, 0},                  // B(1,1)=1
		{2, 3, math.Log(1.0 / 12)}, // B(2,3)=1/12
		{0.5, 0.5, math.Log(math.Pi)},
	}
	for _, c := range cases {
		if got := LogBeta(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("LogBeta(%g,%g) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestRegIncBetaKnown(t *testing.T) {
	cases := []struct {
		x, a, b, want float64
	}{
		{0.5, 1, 1, 0.5},         // uniform CDF
		{0.25, 1, 1, 0.25},       // uniform CDF
		{0.5, 2, 2, 0.5},         // symmetric
		{0.3, 1, 2, 1 - 0.7*0.7}, // I_x(1,2) = 1-(1-x)^2
		{0.7, 2, 1, 0.49},        // I_x(2,1) = x^2
	}
	for _, c := range cases {
		got, err := RegIncBeta(c.x, c.a, c.b)
		if err != nil {
			t.Fatalf("RegIncBeta(%g,%g,%g): %v", c.x, c.a, c.b, err)
		}
		if math.Abs(got-c.want) > 1e-10 {
			t.Errorf("RegIncBeta(%g,%g,%g) = %g, want %g", c.x, c.a, c.b, got, c.want)
		}
	}
}

func TestRegIncBetaBoundaries(t *testing.T) {
	if got, _ := RegIncBeta(0, 3, 4); got != 0 {
		t.Fatalf("I_0 = %g, want 0", got)
	}
	if got, _ := RegIncBeta(1, 3, 4); got != 1 {
		t.Fatalf("I_1 = %g, want 1", got)
	}
}

func TestRegIncBetaInvalid(t *testing.T) {
	if _, err := RegIncBeta(0.5, -1, 2); err == nil {
		t.Fatal("negative shape accepted")
	}
	if _, err := RegIncBeta(1.5, 1, 2); err == nil {
		t.Fatal("x > 1 accepted")
	}
	if _, err := RegIncBeta(math.NaN(), 1, 2); err == nil {
		t.Fatal("NaN x accepted")
	}
}

func TestRegIncBetaSymmetry(t *testing.T) {
	// I_x(a,b) = 1 - I_{1-x}(b,a).
	for _, c := range []struct{ x, a, b float64 }{
		{0.1, 2.5, 7}, {0.9, 0.7, 0.4}, {0.42, 10, 3},
	} {
		lhs, err1 := RegIncBeta(c.x, c.a, c.b)
		rhs, err2 := RegIncBeta(1-c.x, c.b, c.a)
		if err1 != nil || err2 != nil {
			t.Fatalf("errors: %v %v", err1, err2)
		}
		if math.Abs(lhs-(1-rhs)) > 1e-11 {
			t.Errorf("symmetry violated at %+v: %g vs %g", c, lhs, 1-rhs)
		}
	}
}

func TestBetaQuantileKnown(t *testing.T) {
	// Uniform distribution: quantile is identity.
	for _, p := range []float64{0.01, 0.25, 0.5, 0.9, 0.999} {
		got, err := BetaQuantile(p, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-p) > 1e-10 {
			t.Errorf("BetaQuantile(%g,1,1) = %g, want %g", p, got, p)
		}
	}
	// I_x(2,1)=x^2 so quantile(p) = sqrt(p).
	got, err := BetaQuantile(0.25, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 1e-9 {
		t.Errorf("BetaQuantile(0.25,2,1) = %g, want 0.5", got)
	}
}

func TestBetaQuantileBoundaries(t *testing.T) {
	if got, _ := BetaQuantile(0, 5, 2); got != 0 {
		t.Fatalf("quantile(0) = %g", got)
	}
	if got, _ := BetaQuantile(1, 5, 2); got != 1 {
		t.Fatalf("quantile(1) = %g", got)
	}
	if _, err := BetaQuantile(-0.1, 1, 1); err == nil {
		t.Fatal("p < 0 accepted")
	}
	if _, err := BetaQuantile(0.5, 0, 1); err == nil {
		t.Fatal("zero shape accepted")
	}
}

// Property: BetaQuantile inverts RegIncBeta across random shapes.
func TestBetaQuantileInverseProperty(t *testing.T) {
	prop := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		a := 0.2 + 20*local.Float64()
		b := 0.2 + 20*local.Float64()
		p := local.Float64()
		x, err := BetaQuantile(p, a, b)
		if err != nil {
			return false
		}
		back, err := RegIncBeta(x, a, b)
		if err != nil {
			return false
		}
		return math.Abs(back-p) < 1e-8
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: RegIncBeta is monotone non-decreasing in x.
func TestRegIncBetaMonotoneProperty(t *testing.T) {
	prop := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		a := 0.3 + 10*local.Float64()
		b := 0.3 + 10*local.Float64()
		x1, x2 := local.Float64(), local.Float64()
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		v1, err1 := RegIncBeta(x1, a, b)
		v2, err2 := RegIncBeta(x2, a, b)
		if err1 != nil || err2 != nil {
			return false
		}
		return v1 <= v2+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBetaMean(t *testing.T) {
	if got := BetaMean(1, 1); got != 0.5 {
		t.Fatalf("BetaMean(1,1) = %g", got)
	}
	if got := BetaMean(3, 1); got != 0.75 {
		t.Fatalf("BetaMean(3,1) = %g", got)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ v, lo, hi, want float64 }{
		{-1, 0, 1, 0},
		{2, 0, 1, 1},
		{0.5, 0, 1, 0.5},
		{0, 0, 1, 0},
		{1, 0, 1, 1},
	}
	for _, c := range cases {
		if got := Clamp(c.v, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%g,%g,%g) = %g, want %g", c.v, c.lo, c.hi, got, c.want)
		}
	}
}
