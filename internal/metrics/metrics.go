// Package metrics provides the binary-classification measures the
// evaluation uses to score detectors: confusion-matrix rates, ROC
// curves and AUC (via the Mann-Whitney rank statistic, with tie
// handling), so detector comparisons do not depend on any single
// threshold choice.
package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Confusion is a binary confusion matrix.
type Confusion struct {
	TP, FP, TN, FN int
}

// Precision returns TP/(TP+FP), or 0 when nothing was predicted
// positive.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN) — the detection ratio — or 0 when there are
// no positives.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// FallOut returns FP/(FP+TN) — the false-alarm ratio — or 0 when there
// are no negatives.
func (c Confusion) FallOut() float64 {
	if c.FP+c.TN == 0 {
		return 0
	}
	return float64(c.FP) / float64(c.FP+c.TN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy returns (TP+TN)/total, or 0 for an empty matrix.
func (c Confusion) Accuracy() float64 {
	total := c.TP + c.FP + c.TN + c.FN
	if total == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(total)
}

// Score is one scored example: higher Score means "more positive".
type Score struct {
	Score    float64
	Positive bool
}

// ErrDegenerate is returned when a measure needs both classes present.
var ErrDegenerate = errors.New("metrics: need at least one positive and one negative example")

// AUC computes the area under the ROC curve via the Mann-Whitney U
// statistic: the probability that a random positive scores above a
// random negative, with ties counting half. NaN scores are rejected.
func AUC(scores []Score) (float64, error) {
	var pos, neg int
	for _, s := range scores {
		if math.IsNaN(s.Score) {
			return 0, fmt.Errorf("metrics: NaN score")
		}
		if s.Positive {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0, ErrDegenerate
	}

	sorted := append([]Score(nil), scores...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Score < sorted[j].Score })

	// Average ranks over tie groups.
	var rankSumPos float64
	i := 0
	for i < len(sorted) {
		j := i
		for j < len(sorted) && sorted[j].Score == sorted[i].Score {
			j++
		}
		avgRank := float64(i+j+1) / 2 // ranks are 1-based: (i+1 + j)/2
		for k := i; k < j; k++ {
			if sorted[k].Positive {
				rankSumPos += avgRank
			}
		}
		i = j
	}
	u := rankSumPos - float64(pos)*float64(pos+1)/2
	return u / (float64(pos) * float64(neg)), nil
}

// ROCPoint is one operating point of a ROC curve.
type ROCPoint struct {
	// Threshold classifies Score >= Threshold as positive.
	Threshold float64
	// TPR and FPR are the true- and false-positive rates at that
	// threshold.
	TPR, FPR float64
}

// ROC returns the full ROC curve: one point per distinct score
// (descending thresholds), prefixed by the all-negative point and
// suffixed by the all-positive one.
func ROC(scores []Score) ([]ROCPoint, error) {
	var pos, neg int
	for _, s := range scores {
		if math.IsNaN(s.Score) {
			return nil, fmt.Errorf("metrics: NaN score")
		}
		if s.Positive {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return nil, ErrDegenerate
	}
	sorted := append([]Score(nil), scores...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Score > sorted[j].Score })

	curve := []ROCPoint{{Threshold: math.Inf(1), TPR: 0, FPR: 0}}
	tp, fp := 0, 0
	i := 0
	for i < len(sorted) {
		j := i
		for j < len(sorted) && sorted[j].Score == sorted[i].Score {
			if sorted[j].Positive {
				tp++
			} else {
				fp++
			}
			j++
		}
		curve = append(curve, ROCPoint{
			Threshold: sorted[i].Score,
			TPR:       float64(tp) / float64(pos),
			FPR:       float64(fp) / float64(neg),
		})
		i = j
	}
	return curve, nil
}

// Classify builds a confusion matrix from scores at a threshold
// (Score >= threshold predicts positive).
func Classify(scores []Score, threshold float64) Confusion {
	var c Confusion
	for _, s := range scores {
		predicted := s.Score >= threshold
		switch {
		case predicted && s.Positive:
			c.TP++
		case predicted && !s.Positive:
			c.FP++
		case !predicted && s.Positive:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}
