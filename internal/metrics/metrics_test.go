package metrics

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/randx"
)

func TestConfusionMeasures(t *testing.T) {
	c := Confusion{TP: 8, FP: 2, TN: 85, FN: 5}
	if got := c.Precision(); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("precision %g", got)
	}
	if got := c.Recall(); math.Abs(got-8.0/13) > 1e-12 {
		t.Fatalf("recall %g", got)
	}
	if got := c.FallOut(); math.Abs(got-2.0/87) > 1e-12 {
		t.Fatalf("fallout %g", got)
	}
	if got := c.Accuracy(); math.Abs(got-0.93) > 1e-12 {
		t.Fatalf("accuracy %g", got)
	}
	p, r := c.Precision(), c.Recall()
	if got := c.F1(); math.Abs(got-2*p*r/(p+r)) > 1e-12 {
		t.Fatalf("f1 %g", got)
	}
}

func TestConfusionEmptyEdges(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.FallOut() != 0 || c.F1() != 0 || c.Accuracy() != 0 {
		t.Fatal("empty matrix must report zeros")
	}
}

func TestAUCPerfectSeparation(t *testing.T) {
	scores := []Score{
		{0.9, true}, {0.8, true}, {0.3, false}, {0.1, false},
	}
	auc, err := AUC(scores)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 1 {
		t.Fatalf("AUC = %g", auc)
	}
	// Inverted scores: AUC 0.
	for i := range scores {
		scores[i].Score = -scores[i].Score
	}
	auc, err = AUC(scores)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 0 {
		t.Fatalf("inverted AUC = %g", auc)
	}
}

func TestAUCAllTied(t *testing.T) {
	scores := []Score{{0.5, true}, {0.5, false}, {0.5, true}, {0.5, false}}
	auc, err := AUC(scores)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 0.5 {
		t.Fatalf("tied AUC = %g", auc)
	}
}

func TestAUCKnownValue(t *testing.T) {
	// Positives at 3 and 1, negatives at 2 and 0: P(pos > neg) pairs:
	// (3>2, 3>0, 1>0) = 3 of 4 -> 0.75.
	scores := []Score{{3, true}, {1, true}, {2, false}, {0, false}}
	auc, err := AUC(scores)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 0.75 {
		t.Fatalf("AUC = %g", auc)
	}
}

func TestAUCErrors(t *testing.T) {
	if _, err := AUC([]Score{{1, true}}); !errors.Is(err, ErrDegenerate) {
		t.Fatalf("err = %v", err)
	}
	if _, err := AUC([]Score{{math.NaN(), true}, {0, false}}); err == nil {
		t.Fatal("NaN accepted")
	}
}

func TestROCCurve(t *testing.T) {
	scores := []Score{{0.9, true}, {0.7, false}, {0.5, true}, {0.2, false}}
	curve, err := ROC(scores)
	if err != nil {
		t.Fatal(err)
	}
	// Start at (0,0), end at (1,1), monotone in both axes.
	first, last := curve[0], curve[len(curve)-1]
	if first.TPR != 0 || first.FPR != 0 {
		t.Fatalf("first = %+v", first)
	}
	if last.TPR != 1 || last.FPR != 1 {
		t.Fatalf("last = %+v", last)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].TPR < curve[i-1].TPR || curve[i].FPR < curve[i-1].FPR {
			t.Fatalf("curve not monotone at %d: %+v", i, curve)
		}
	}
	if _, err := ROC([]Score{{1, true}}); !errors.Is(err, ErrDegenerate) {
		t.Fatalf("err = %v", err)
	}
}

func TestClassify(t *testing.T) {
	scores := []Score{{0.9, true}, {0.7, false}, {0.5, true}, {0.2, false}}
	c := Classify(scores, 0.6)
	if c.TP != 1 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	// Threshold below everything: all predicted positive.
	c = Classify(scores, -1)
	if c.TP != 2 || c.FP != 2 || c.TN != 0 || c.FN != 0 {
		t.Fatalf("confusion = %+v", c)
	}
}

// Property: AUC is within [0, 1], invariant under any strictly
// monotone transform of the scores, and complementary under negation.
func TestAUCInvarianceProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := randx.New(seed)
		n := 4 + rng.Intn(60)
		scores := make([]Score, n)
		havePos, haveNeg := false, false
		for i := range scores {
			scores[i] = Score{Score: rng.Normal(0, 1), Positive: rng.Bernoulli(0.5)}
			if scores[i].Positive {
				havePos = true
			} else {
				haveNeg = true
			}
		}
		if !havePos || !haveNeg {
			return true
		}
		auc, err := AUC(scores)
		if err != nil || auc < 0 || auc > 1 {
			return false
		}
		// Monotone transform: exp.
		transformed := make([]Score, n)
		for i, s := range scores {
			transformed[i] = Score{Score: math.Exp(s.Score), Positive: s.Positive}
		}
		auc2, err := AUC(transformed)
		if err != nil || math.Abs(auc-auc2) > 1e-9 {
			return false
		}
		// Negation flips.
		negated := make([]Score, n)
		for i, s := range scores {
			negated[i] = Score{Score: -s.Score, Positive: s.Positive}
		}
		auc3, err := AUC(negated)
		return err == nil && math.Abs(auc+auc3-1) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: AUC equals the trapezoidal area under the ROC curve.
func TestAUCMatchesROCAreaProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := randx.New(seed)
		n := 4 + rng.Intn(50)
		scores := make([]Score, n)
		havePos, haveNeg := false, false
		for i := range scores {
			// Quantized scores force ties.
			scores[i] = Score{Score: float64(rng.Intn(6)), Positive: rng.Bernoulli(0.5)}
			if scores[i].Positive {
				havePos = true
			} else {
				haveNeg = true
			}
		}
		if !havePos || !haveNeg {
			return true
		}
		auc, err := AUC(scores)
		if err != nil {
			return false
		}
		curve, err := ROC(scores)
		if err != nil {
			return false
		}
		var area float64
		for i := 1; i < len(curve); i++ {
			area += (curve[i].FPR - curve[i-1].FPR) * (curve[i].TPR + curve[i-1].TPR) / 2
		}
		return math.Abs(area-auc) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
