package netflix

import (
	"bufio"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Title is one row of the Netflix Prize movie_titles.txt index.
type Title struct {
	ID int
	// Year is the release year; 0 when the dataset row says NULL.
	Year int
	Name string
}

// ParseTitles reads the movie_titles.txt format:
//
//	1,2003,Dinosaur Planet
//	2,2004,Isle of Man TT 2004 Review
//	4,NULL,Something with, commas
//
// The title field may itself contain commas, so only the first two
// commas split fields.
func ParseTitles(r io.Reader) (map[int]Title, error) {
	out := make(map[int]Title)
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for scanner.Scan() {
		line++
		text := strings.TrimSpace(scanner.Text())
		if text == "" {
			continue
		}
		parts := strings.SplitN(text, ",", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("netflix: titles line %d %q: %w", line, text, ErrBadFormat)
		}
		id, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("netflix: titles line %d id: %w", line, ErrBadFormat)
		}
		year := 0
		if parts[1] != "NULL" {
			year, err = strconv.Atoi(parts[1])
			if err != nil {
				return nil, fmt.Errorf("netflix: titles line %d year %q: %w", line, parts[1], ErrBadFormat)
			}
		}
		out[id] = Title{ID: id, Year: year, Name: parts[2]}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("netflix: titles scan: %w", err)
	}
	return out, nil
}

// WalkDataset streams every per-movie file (mv_*.txt) under dir, in
// filename order, to fn. Processing stops at the first error from fn.
// The Netflix Prize layout keeps ~17k such files in training_set/; the
// walk never holds more than one movie in memory.
func WalkDataset(dir string, fn func(*Movie) error) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("netflix: dataset dir: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.Type().IsRegular() && strings.HasPrefix(e.Name(), "mv_") && strings.HasSuffix(e.Name(), ".txt") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return fmt.Errorf("netflix: no mv_*.txt files in %s: %w", dir, fs.ErrNotExist)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := walkOne(filepath.Join(dir, name), fn); err != nil {
			return err
		}
	}
	return nil
}

func walkOne(path string, fn func(*Movie) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("netflix: %w", err)
	}
	defer f.Close()
	m, err := ParseMovie(f)
	if err != nil {
		return fmt.Errorf("netflix: %s: %w", filepath.Base(path), err)
	}
	return fn(m)
}

// Dataset is an eagerly loaded collection of movies plus their titles.
type Dataset struct {
	Movies []*Movie
	byID   map[int]*Movie
}

// LoadDataset reads every movie under dir and, when titlesPath is
// non-empty, attaches titles from the movie_titles.txt index.
func LoadDataset(dir, titlesPath string) (*Dataset, error) {
	var titles map[int]Title
	if titlesPath != "" {
		f, err := os.Open(titlesPath)
		if err != nil {
			return nil, fmt.Errorf("netflix: titles: %w", err)
		}
		titles, err = ParseTitles(f)
		f.Close()
		if err != nil {
			return nil, err
		}
	}
	ds := &Dataset{byID: make(map[int]*Movie)}
	err := WalkDataset(dir, func(m *Movie) error {
		if t, ok := titles[m.ID]; ok {
			m.Title = t.Name
		}
		ds.Movies = append(ds.Movies, m)
		ds.byID[m.ID] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ds, nil
}

// Movie returns the movie with the given ID, or false.
func (d *Dataset) Movie(id int) (*Movie, bool) {
	m, ok := d.byID[id]
	return m, ok
}

// TotalRatings sums the rating counts across all movies.
func (d *Dataset) TotalRatings() int {
	var n int
	for _, m := range d.Movies {
		n += len(m.Ratings)
	}
	return n
}
