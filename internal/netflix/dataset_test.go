package netflix

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const titlesSample = `1,2003,Dinosaur Planet
2,2004,Isle of Man TT 2004 Review
3,NULL,Character
4,1994,Movie, With Commas: Part 2
`

func TestParseTitles(t *testing.T) {
	titles, err := ParseTitles(strings.NewReader(titlesSample))
	if err != nil {
		t.Fatal(err)
	}
	if len(titles) != 4 {
		t.Fatalf("%d titles", len(titles))
	}
	if titles[1].Name != "Dinosaur Planet" || titles[1].Year != 2003 {
		t.Fatalf("title 1 = %+v", titles[1])
	}
	if titles[3].Year != 0 {
		t.Fatalf("NULL year = %d", titles[3].Year)
	}
	if titles[4].Name != "Movie, With Commas: Part 2" {
		t.Fatalf("comma title = %q", titles[4].Name)
	}
}

func TestParseTitlesErrors(t *testing.T) {
	cases := []string{
		"1,2003\n",      // too few fields
		"x,2003,Name\n", // bad id
		"1,20x3,Name\n", // bad year
	}
	for i, c := range cases {
		if _, err := ParseTitles(strings.NewReader(c)); !errors.Is(err, ErrBadFormat) {
			t.Errorf("case %d: err = %v", i, err)
		}
	}
	// Blank lines are fine.
	titles, err := ParseTitles(strings.NewReader("\n1,2003,A\n\n"))
	if err != nil || len(titles) != 1 {
		t.Fatalf("blank lines: %v, %d", err, len(titles))
	}
}

func writeDataset(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"mv_0000001.txt": "1:\n101,3,2004-01-01\n102,4,2004-02-01\n",
		"mv_0000002.txt": "2:\n201,5,2005-01-01\n",
		"notes.txt":      "ignore me",
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "movie_titles.txt"), []byte(titlesSample), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestWalkDataset(t *testing.T) {
	dir := writeDataset(t)
	var ids []int
	err := WalkDataset(dir, func(m *Movie) error {
		ids = append(ids, m.ID)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("ids = %v", ids)
	}
}

func TestWalkDatasetStopsOnError(t *testing.T) {
	dir := writeDataset(t)
	sentinel := errors.New("stop")
	var count int
	err := WalkDataset(dir, func(*Movie) error {
		count++
		return sentinel
	})
	if !errors.Is(err, sentinel) || count != 1 {
		t.Fatalf("err = %v after %d movies", err, count)
	}
}

func TestWalkDatasetEmptyDir(t *testing.T) {
	if err := WalkDataset(t.TempDir(), func(*Movie) error { return nil }); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
	if err := WalkDataset("/does/not/exist", func(*Movie) error { return nil }); err == nil {
		t.Fatal("missing dir accepted")
	}
}

func TestWalkDatasetMalformedMovie(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "mv_0000009.txt"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WalkDataset(dir, func(*Movie) error { return nil }); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("err = %v", err)
	}
}

func TestLoadDataset(t *testing.T) {
	dir := writeDataset(t)
	ds, err := LoadDataset(dir, filepath.Join(dir, "movie_titles.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Movies) != 2 {
		t.Fatalf("%d movies", len(ds.Movies))
	}
	m, ok := ds.Movie(1)
	if !ok || m.Title != "Dinosaur Planet" {
		t.Fatalf("movie 1 = %+v", m)
	}
	if _, ok := ds.Movie(99); ok {
		t.Fatal("phantom movie")
	}
	if ds.TotalRatings() != 3 {
		t.Fatalf("total ratings = %d", ds.TotalRatings())
	}
}

func TestLoadDatasetWithoutTitles(t *testing.T) {
	dir := writeDataset(t)
	ds, err := LoadDataset(dir, "")
	if err != nil {
		t.Fatal(err)
	}
	if m, _ := ds.Movie(1); m.Title != "" {
		t.Fatalf("unexpected title %q", m.Title)
	}
}

func TestLoadDatasetMissingTitles(t *testing.T) {
	dir := writeDataset(t)
	if _, err := LoadDataset(dir, filepath.Join(dir, "nope.txt")); err == nil {
		t.Fatal("missing titles accepted")
	}
}
