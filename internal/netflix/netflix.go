// Package netflix is the real-data substrate for Fig 5. The paper runs
// the detector on the Netflix Prize ratings of the first movie in the
// dataset ("Dinosaur Planet", 2003) and on the same data with inserted
// collaborative ratings.
//
// The Netflix Prize dataset was withdrawn and is not redistributable,
// so this package provides two paths (see DESIGN.md, substitutions):
//
//   - ParseMovie reads the published per-movie text format
//     ("MovieID:" header, then "CustomerID,Rating,Date" rows), so the
//     real file can be dropped in when available;
//   - GenerateSynthetic produces a Dinosaur-Planet-like trace — ~700
//     days of 1-5 star ratings with nonstationary daily volume and a
//     slowly drifting mean — exercising the identical detector path.
//
// InsertCollaborative adds type-1/type-2 collaborative ratings with the
// paper's Fig 5 parameters.
package netflix

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/randx"
	"repro/internal/rating"
	"repro/internal/sim"
	"repro/internal/stat"
)

// Levels is the Netflix star scale: 1..5 stars mapped to 0.2..1.0.
const Levels = 5

// Movie is one movie's rating history. Times are days since the
// movie's first rating.
type Movie struct {
	ID      int
	Title   string
	Ratings []rating.Rating
}

// Span returns the number of days covered (last rating time).
func (m *Movie) Span() float64 {
	if len(m.Ratings) == 0 {
		return 0
	}
	return m.Ratings[len(m.Ratings)-1].Time
}

// ErrBadFormat is returned for malformed Netflix-format input.
var ErrBadFormat = errors.New("netflix: malformed input")

// ParseMovie reads one movie in the Netflix Prize per-movie format:
//
//	1:
//	1488844,3,2005-09-06
//	822109,5,2005-05-13
//
// Star ratings are mapped to the [0,1] scale as stars/5 and times to
// fractional days since the earliest rating in the file. Rows are
// returned time-sorted.
func ParseMovie(r io.Reader) (*Movie, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)

	if !scanner.Scan() {
		if err := scanner.Err(); err != nil {
			return nil, fmt.Errorf("netflix: read header: %w", err)
		}
		return nil, fmt.Errorf("netflix: empty input: %w", ErrBadFormat)
	}
	header := strings.TrimSpace(scanner.Text())
	if !strings.HasSuffix(header, ":") {
		return nil, fmt.Errorf("netflix: header %q: %w", header, ErrBadFormat)
	}
	id, err := strconv.Atoi(strings.TrimSuffix(header, ":"))
	if err != nil {
		return nil, fmt.Errorf("netflix: movie id in %q: %w", header, ErrBadFormat)
	}

	type row struct {
		customer int
		stars    int
		date     time.Time
	}
	var rows []row
	line := 1
	for scanner.Scan() {
		line++
		text := strings.TrimSpace(scanner.Text())
		if text == "" {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("netflix: line %d %q: %w", line, text, ErrBadFormat)
		}
		customer, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("netflix: line %d customer: %w", line, ErrBadFormat)
		}
		stars, err := strconv.Atoi(parts[1])
		if err != nil || stars < 1 || stars > 5 {
			return nil, fmt.Errorf("netflix: line %d stars %q: %w", line, parts[1], ErrBadFormat)
		}
		date, err := time.Parse("2006-01-02", parts[2])
		if err != nil {
			return nil, fmt.Errorf("netflix: line %d date %q: %w", line, parts[2], ErrBadFormat)
		}
		rows = append(rows, row{customer: customer, stars: stars, date: date})
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("netflix: scan: %w", err)
	}
	if len(rows) == 0 {
		return &Movie{ID: id}, nil
	}

	sort.Slice(rows, func(i, j int) bool { return rows[i].date.Before(rows[j].date) })
	epoch := rows[0].date
	m := &Movie{ID: id, Ratings: make([]rating.Rating, 0, len(rows))}
	for _, rw := range rows {
		m.Ratings = append(m.Ratings, rating.Rating{
			Rater:  rating.RaterID(rw.customer),
			Object: rating.ObjectID(id),
			Value:  float64(rw.stars) / Levels,
			Time:   rw.date.Sub(epoch).Hours() / 24,
		})
	}
	return m, nil
}

// FormatMovie writes a movie back in the Netflix per-movie format,
// using epoch (the date of day 0) to reconstruct dates.
func FormatMovie(w io.Writer, m *Movie, epoch time.Time) error {
	if _, err := fmt.Fprintf(w, "%d:\n", m.ID); err != nil {
		return fmt.Errorf("netflix: write header: %w", err)
	}
	for _, r := range m.Ratings {
		stars := int(math.Round(r.Value * Levels))
		if stars < 1 {
			stars = 1
		}
		if stars > 5 {
			stars = 5
		}
		date := epoch.AddDate(0, 0, int(r.Time))
		if _, err := fmt.Fprintf(w, "%d,%d,%s\n", int(r.Rater), stars, date.Format("2006-01-02")); err != nil {
			return fmt.Errorf("netflix: write row: %w", err)
		}
	}
	return nil
}

// SyntheticParams shapes the synthetic movie trace.
type SyntheticParams struct {
	// MovieID and Title label the trace (defaults 1, "Dinosaur Planet
	// (synthetic)").
	MovieID int
	Title   string
	// Days is the trace length (default 700, matching Fig 5's axis).
	Days int
	// BaseRate is the average daily rating volume (default 4).
	BaseRate float64
	// VolumeWalkSigma is the per-day log random-walk step of popularity
	// (default 0.05), producing the bursty nonstationary volume real
	// movie traces show.
	VolumeWalkSigma float64
	// MeanStart and MeanEnd drift the true mean star value, on the
	// [0, 1] scale (defaults 0.62 → 0.66 — "Dinosaur Planet" sits near
	// 3.1-3.3 stars).
	MeanStart, MeanEnd float64
	// StarSigma is the rating noise standard deviation on the [0, 1]
	// scale before quantization to stars (default 0.22).
	StarSigma float64
}

func (p SyntheticParams) withDefaults() SyntheticParams {
	if p.MovieID == 0 {
		p.MovieID = 1
	}
	if p.Title == "" {
		p.Title = "Dinosaur Planet (synthetic)"
	}
	if p.Days == 0 {
		p.Days = 700
	}
	if p.BaseRate == 0 {
		p.BaseRate = 4
	}
	if p.VolumeWalkSigma == 0 {
		p.VolumeWalkSigma = 0.05
	}
	if p.MeanStart == 0 {
		p.MeanStart = 0.62
	}
	if p.MeanEnd == 0 {
		p.MeanEnd = 0.66
	}
	if p.StarSigma == 0 {
		p.StarSigma = 0.22
	}
	return p
}

// Validate reports parameter errors after defaulting.
func (p SyntheticParams) Validate() error {
	p = p.withDefaults()
	switch {
	case p.Days < 1:
		return fmt.Errorf("netflix: days %d", p.Days)
	case p.BaseRate <= 0:
		return fmt.Errorf("netflix: base rate %g", p.BaseRate)
	case p.MeanStart < 0 || p.MeanStart > 1 || p.MeanEnd < 0 || p.MeanEnd > 1:
		return fmt.Errorf("netflix: mean drift %g→%g outside [0,1]", p.MeanStart, p.MeanEnd)
	case p.StarSigma < 0:
		return fmt.Errorf("netflix: negative sigma")
	case p.VolumeWalkSigma < 0:
		return fmt.Errorf("netflix: negative volume walk sigma")
	}
	return nil
}

// GenerateSynthetic produces the substitute trace. Each rater ID is
// fresh (real Netflix raters rate a movie once).
func GenerateSynthetic(rng *randx.Rand, p SyntheticParams) (*Movie, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	m := &Movie{ID: p.MovieID, Title: p.Title}
	logVolume := 0.0
	next := rating.RaterID(1)
	for day := 0; day < p.Days; day++ {
		logVolume += rng.Normal(0, p.VolumeWalkSigma)
		// Keep the walk from dying out or exploding.
		if logVolume > 1.2 {
			logVolume = 1.2
		}
		if logVolume < -1.2 {
			logVolume = -1.2
		}
		mean := p.MeanStart + (p.MeanEnd-p.MeanStart)*float64(day)/float64(p.Days)
		for _, tm := range rng.PoissonProcess(p.BaseRate*math.Exp(logVolume), float64(day), float64(day+1)) {
			m.Ratings = append(m.Ratings, rating.Rating{
				Rater:  next,
				Object: rating.ObjectID(p.MovieID),
				Value:  randx.Quantize(rng.Normal(mean, p.StarSigma), Levels, false),
				Time:   tm,
			})
			next++
		}
	}
	return m, nil
}

// AttackParams describe the Fig 5 insertion: type-1 colluders bend a
// fraction of existing ratings upward, type-2 colluders add new biased
// ratings, both inside [AStart, AEnd].
type AttackParams struct {
	// AStart and AEnd delimit the attack (paper: days 212 and 272).
	AStart, AEnd float64
	// BiasShift1 and RecruitPower1 (paper: 0.2, 0.5).
	BiasShift1, RecruitPower1 float64
	// BiasShift2 and RecruitPower2 (paper: 0.25, 1 — type-2 arrival rate
	// is RecruitPower2 times the trace's own mean daily rate inside the
	// interval).
	BiasShift2, RecruitPower2 float64
	// BadVarScale scales the original ratings' variance to get the
	// colluders' variance (paper: badVar = 0.25·goodVar).
	BadVarScale float64
}

// DefaultAttack returns the Fig 5 insertion parameters.
func DefaultAttack() AttackParams {
	return AttackParams{
		AStart:        212,
		AEnd:          272,
		BiasShift1:    0.2,
		RecruitPower1: 0.5,
		BiasShift2:    0.25,
		RecruitPower2: 1,
		BadVarScale:   0.25,
	}
}

// Validate reports parameter errors.
func (a AttackParams) Validate() error {
	switch {
	case a.AEnd < a.AStart:
		return fmt.Errorf("netflix: attack interval [%g,%g]", a.AStart, a.AEnd)
	case a.RecruitPower1 < 0 || a.RecruitPower1 > 1:
		return fmt.Errorf("netflix: recruitPower1 %g", a.RecruitPower1)
	case a.RecruitPower2 < 0:
		return fmt.Errorf("netflix: recruitPower2 %g", a.RecruitPower2)
	case a.BadVarScale < 0:
		return fmt.Errorf("netflix: badVarScale %g", a.BadVarScale)
	}
	return nil
}

// InsertCollaborative returns the movie's ratings with the attack
// inserted, as labeled ratings (original ratings keep Unfair == false;
// bent type-1 copies and new type-2 ratings are marked unfair). The
// movie itself is not modified.
func InsertCollaborative(rng *randx.Rand, m *Movie, a AttackParams) ([]sim.LabeledRating, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	values := rating.Values(m.Ratings)
	goodVar := stat.Variance(values)
	mean := stat.Mean(values)
	badVar := a.BadVarScale * goodVar

	var out []sim.LabeledRating
	for _, r := range m.Ratings {
		l := sim.LabeledRating{Rating: r, Class: sim.Reliable}
		if r.Time >= a.AStart && r.Time <= a.AEnd {
			if rng.Bernoulli(a.RecruitPower1) {
				l.Rating.Value = randx.Quantize(r.Value+a.BiasShift1, Levels, false)
				l.Class = sim.Type1Collaborative
				l.Unfair = true
			}
		}
		out = append(out, l)
	}

	// Type-2 arrival rate: RecruitPower2 × the trace's own mean daily
	// volume across the whole span.
	span := m.Span()
	if span > 0 && a.RecruitPower2 > 0 {
		dailyRate := float64(len(m.Ratings)) / span
		colluder := rating.RaterID(10_000_000)
		for _, tm := range rng.PoissonProcess(dailyRate*a.RecruitPower2, a.AStart, math.Min(a.AEnd, span)) {
			out = append(out, sim.LabeledRating{
				Rating: rating.Rating{
					Rater:  colluder,
					Object: rating.ObjectID(m.ID),
					Value:  randx.Quantize(rng.NormalVar(mean+a.BiasShift2, badVar), Levels, false),
					Time:   tm,
				},
				Class:  sim.Type2Collaborative,
				Unfair: true,
			})
			colluder++
		}
	}
	sim.SortByTime(out)
	return out, nil
}
