package netflix

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/randx"
	"repro/internal/sim"
	"repro/internal/stat"
)

const sample = `1:
1488844,3,2005-09-06
822109,5,2005-05-13
885013,4,2005-10-19
30878,4,2005-12-26
823519,3,2004-05-03
`

func TestParseMovie(t *testing.T) {
	m, err := ParseMovie(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if m.ID != 1 {
		t.Fatalf("id = %d", m.ID)
	}
	if len(m.Ratings) != 5 {
		t.Fatalf("%d ratings", len(m.Ratings))
	}
	// Earliest date (2004-05-03) is day 0.
	if m.Ratings[0].Time != 0 || m.Ratings[0].Rater != 823519 {
		t.Fatalf("first rating = %+v", m.Ratings[0])
	}
	if m.Ratings[0].Value != 3.0/5 {
		t.Fatalf("value = %g", m.Ratings[0].Value)
	}
	for i := 1; i < len(m.Ratings); i++ {
		if m.Ratings[i].Time < m.Ratings[i-1].Time {
			t.Fatal("not time-sorted")
		}
	}
	// 2005-05-13 is 375 days after 2004-05-03.
	if math.Abs(m.Ratings[1].Time-375) > 1e-9 {
		t.Fatalf("second time = %g, want 375", m.Ratings[1].Time)
	}
	if m.Span() != m.Ratings[4].Time {
		t.Fatal("span mismatch")
	}
}

func TestParseMovieErrors(t *testing.T) {
	cases := []string{
		"",                         // empty
		"abc\n",                    // no colon
		"x:\n",                     // bad id
		"1:\n1,2\n",                // too few fields
		"1:\nx,3,2005-01-01\n",     // bad customer
		"1:\n5,9,2005-01-01\n",     // stars out of range
		"1:\n5,three,2005-01-01\n", // non-numeric stars
		"1:\n5,3,01/02/2005\n",     // bad date
	}
	for i, c := range cases {
		if _, err := ParseMovie(strings.NewReader(c)); !errors.Is(err, ErrBadFormat) {
			t.Errorf("case %d: err = %v, want ErrBadFormat", i, err)
		}
	}
}

func TestParseMovieEmptyBody(t *testing.T) {
	m, err := ParseMovie(strings.NewReader("7:\n"))
	if err != nil {
		t.Fatal(err)
	}
	if m.ID != 7 || len(m.Ratings) != 0 || m.Span() != 0 {
		t.Fatalf("movie = %+v", m)
	}
}

func TestParseMovieSkipsBlankLines(t *testing.T) {
	m, err := ParseMovie(strings.NewReader("1:\n\n822109,5,2005-05-13\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Ratings) != 1 {
		t.Fatalf("%d ratings", len(m.Ratings))
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	m, err := ParseMovie(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	epoch := time.Date(2004, 5, 3, 0, 0, 0, 0, time.UTC)
	var buf bytes.Buffer
	if err := FormatMovie(&buf, m, epoch); err != nil {
		t.Fatal(err)
	}
	again, err := ParseMovie(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Ratings) != len(m.Ratings) {
		t.Fatalf("round trip lost ratings: %d vs %d", len(again.Ratings), len(m.Ratings))
	}
	for i := range m.Ratings {
		if m.Ratings[i] != again.Ratings[i] {
			t.Fatalf("rating %d: %+v vs %+v", i, m.Ratings[i], again.Ratings[i])
		}
	}
}

func TestSyntheticParamsValidate(t *testing.T) {
	if err := (SyntheticParams{}).Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	bad := []SyntheticParams{
		{Days: -1},
		{BaseRate: -2},
		{MeanStart: 1.5},
		{StarSigma: -1},
		{VolumeWalkSigma: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestGenerateSynthetic(t *testing.T) {
	m, err := GenerateSynthetic(randx.New(1), SyntheticParams{})
	if err != nil {
		t.Fatal(err)
	}
	if m.ID != 1 || m.Title == "" {
		t.Fatalf("movie meta = %+v", m)
	}
	// ~4/day * 700 days, modulated: expect a few thousand.
	if len(m.Ratings) < 1000 || len(m.Ratings) > 10000 {
		t.Fatalf("%d ratings", len(m.Ratings))
	}
	stars := make(map[float64]bool)
	for i, r := range m.Ratings {
		if i > 0 && r.Time < m.Ratings[i-1].Time {
			t.Fatal("not time-sorted")
		}
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
		stars[r.Value] = true
		if r.Value < 0.2-1e-9 {
			t.Fatalf("value %g below 1 star", r.Value)
		}
	}
	if len(stars) != 5 {
		t.Fatalf("star values seen: %v, want all 5", stars)
	}
	// Mean near the configured drift band.
	mean := stat.Mean(ratingValues(m))
	if mean < 0.55 || mean < 0.5 || mean > 0.75 {
		t.Fatalf("mean %g outside drift band", mean)
	}
}

func ratingValues(m *Movie) []float64 {
	out := make([]float64, len(m.Ratings))
	for i, r := range m.Ratings {
		out[i] = r.Value
	}
	return out
}

func TestGenerateSyntheticNonstationaryVolume(t *testing.T) {
	m, err := GenerateSynthetic(randx.New(3), SyntheticParams{})
	if err != nil {
		t.Fatal(err)
	}
	// Daily volumes must vary beyond Poisson noise: compare the busiest
	// and quietest 50-day halves.
	counts := make([]float64, 700)
	for _, r := range m.Ratings {
		counts[int(r.Time)]++
	}
	minV, maxV, err := stat.MinMax(windowSums(counts, 50))
	if err != nil {
		t.Fatal(err)
	}
	if maxV < 1.5*minV {
		t.Fatalf("volume too flat: min %g max %g per 50 days", minV, maxV)
	}
}

func windowSums(xs []float64, w int) []float64 {
	var out []float64
	for i := 0; i+w <= len(xs); i += w {
		var s float64
		for _, v := range xs[i : i+w] {
			s += v
		}
		out = append(out, s)
	}
	return out
}

func TestDefaultAttackValid(t *testing.T) {
	if err := DefaultAttack().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []AttackParams{
		{AStart: 10, AEnd: 5},
		{RecruitPower1: 2},
		{RecruitPower2: -1},
		{BadVarScale: -1},
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("bad attack %d accepted", i)
		}
	}
}

func TestInsertCollaborative(t *testing.T) {
	rng := randx.New(5)
	m, err := GenerateSynthetic(rng, SyntheticParams{})
	if err != nil {
		t.Fatal(err)
	}
	origLen := len(m.Ratings)
	a := DefaultAttack()
	ls, err := InsertCollaborative(rng, m, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Ratings) != origLen {
		t.Fatal("InsertCollaborative mutated the movie")
	}
	if len(ls) <= origLen {
		t.Fatalf("no type-2 ratings added: %d vs %d", len(ls), origLen)
	}
	var type1, type2 int
	for i, l := range ls {
		if i > 0 && l.Rating.Time < ls[i-1].Rating.Time {
			t.Fatal("not time-sorted")
		}
		if l.Unfair && (l.Rating.Time < a.AStart || l.Rating.Time > a.AEnd) {
			t.Fatalf("unfair rating outside attack interval: %+v", l)
		}
		switch l.Class {
		case sim.Type1Collaborative:
			type1++
		case sim.Type2Collaborative:
			type2++
			if l.Rating.Rater < 10_000_000 {
				t.Fatal("type-2 rater not in reserved range")
			}
		}
	}
	if type1 == 0 || type2 == 0 {
		t.Fatalf("type1=%d type2=%d", type1, type2)
	}
	// Roughly half the in-window originals become type-1 at power 0.5.
	var inWindow int
	for _, r := range m.Ratings {
		if r.Time >= a.AStart && r.Time <= a.AEnd {
			inWindow++
		}
	}
	frac := float64(type1) / float64(inWindow)
	if frac < 0.35 || frac > 0.65 {
		t.Fatalf("type-1 fraction %g, want near 0.5", frac)
	}
}

// Property: insertion only adds/bends ratings inside the window and
// never invalidates a rating.
func TestInsertCollaborativeInvariantProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := randx.New(seed)
		m, err := GenerateSynthetic(rng, SyntheticParams{Days: 120, BaseRate: 3})
		if err != nil {
			return false
		}
		a := AttackParams{
			AStart:        30,
			AEnd:          60,
			BiasShift1:    rng.Uniform(0, 0.3),
			RecruitPower1: rng.Float64(),
			BiasShift2:    rng.Uniform(0, 0.3),
			RecruitPower2: rng.Uniform(0, 2),
			BadVarScale:   rng.Float64(),
		}
		ls, err := InsertCollaborative(rng, m, a)
		if err != nil {
			return false
		}
		if len(ls) < len(m.Ratings) {
			return false
		}
		for _, l := range ls {
			if l.Rating.Validate() != nil {
				return false
			}
			if l.Unfair && (l.Rating.Time < a.AStart || l.Rating.Time > a.AEnd) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
