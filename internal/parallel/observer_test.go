package parallel

import (
	"sync"
	"testing"
	"time"
)

// TestObserverReceivesReports installs an observer and checks the
// serial and parallel paths both report items, workers and plausible
// timings; results must be identical to the unobserved run.
func TestObserverReceivesReports(t *testing.T) {
	var mu sync.Mutex
	var reports []Report
	SetObserver(func(r Report) {
		mu.Lock()
		reports = append(reports, r)
		mu.Unlock()
	})
	defer SetObserver(nil)

	fn := func(i int) (int, error) {
		time.Sleep(time.Millisecond)
		return i * i, nil
	}
	for _, workers := range []int{1, 4} {
		mu.Lock()
		reports = nil
		mu.Unlock()
		out, err := Map(16, workers, fn)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
		mu.Lock()
		got := append([]Report(nil), reports...)
		mu.Unlock()
		if len(got) != 1 {
			t.Fatalf("workers=%d: %d reports, want 1", workers, len(got))
		}
		r := got[0]
		if r.Items != 16 || r.Workers != workers {
			t.Fatalf("workers=%d: report %+v", workers, r)
		}
		if r.Wall <= 0 || r.Busy <= 0 {
			t.Fatalf("workers=%d: non-positive timings %+v", workers, r)
		}
		// Busy is summed across workers; it can never exceed wall time
		// times the pool width (within scheduler jitter).
		if r.Busy > r.Wall*time.Duration(workers)*2 {
			t.Fatalf("workers=%d: busy %v exceeds wall %v x workers", workers, r.Busy, r.Wall)
		}
	}
}

// TestNoObserverMeansNoReports pins the default: uninstalled observer,
// no callbacks, results unchanged.
func TestNoObserverMeansNoReports(t *testing.T) {
	SetObserver(nil)
	called := false
	SetObserver(func(Report) { called = true })
	SetObserver(nil)
	out, err := Map(8, 4, func(i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 8 {
		t.Fatalf("len = %d", len(out))
	}
	if called {
		t.Fatal("observer called after uninstall")
	}
}
