// Package parallel is the deterministic fan-out substrate for the
// Monte-Carlo experiment drivers and the per-object maintenance scans.
// Its contract is bit-identical results regardless of worker count:
//
//   - work items are independent and identified only by their index;
//   - randomness, when needed, comes from a per-item stream derived
//     from (base seed, item index) — never from a shared stream whose
//     draw order would depend on scheduling (see randx.Seeds and
//     randx.Derive);
//   - results are committed in item order, so reductions fold exactly
//     as a serial loop would.
//
// The pool is bounded: min(workers, items) goroutines pull indices from
// a shared counter, so a long-tailed item never strands the others.
// Workers resolves the count from GOMAXPROCS when the caller passes 0.
//
// Mutable per-worker state (e.g. a signal.Workspace) goes through
// MapLocal, which builds one local value per worker goroutine — one
// workspace per goroutine, never shared.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Report describes one completed Map/MapLocal/MapReduce call for an
// Observer: how many items ran on how many workers, the call's wall
// time, and the summed busy time across workers. Busy/(Wall·Workers)
// is the pool's utilization; Items/Wall.Seconds() its throughput.
type Report struct {
	Items, Workers int
	Wall, Busy     time.Duration
}

// observer holds the installed Observer; nil means no instrumentation
// (and no clock reads at all on the fan-out path).
var observer atomic.Pointer[Observer]

// Observer receives one Report per completed fan-out call. It may be
// called concurrently from different fan-outs and must be safe for
// concurrent use.
type Observer func(Report)

// SetObserver installs fn as the process-wide fan-out observer
// (telemetry wiring in cmd/ratingd); nil uninstalls it. Timing costs
// are only paid while an observer is installed.
func SetObserver(fn Observer) {
	if fn == nil {
		observer.Store(nil)
		return
	}
	observer.Store(&fn)
}

// Workers resolves a requested worker count: n >= 1 is used as given,
// anything else (0 or negative) means runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(i) for every i in [0, n) on a bounded worker pool and
// returns the results indexed by item. The output is bit-identical for
// every worker count because item i's result always lands in slot i and
// fn receives nothing but the index.
//
// On failure Map returns the error of the lowest-indexed failing item.
// Every item still runs (there is no early cancellation), so the error
// returned — like the results — is independent of scheduling.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	return MapLocal(n, workers, func() struct{} { return struct{}{} },
		func(i int, _ struct{}) (T, error) { return fn(i) })
}

// MapLocal is Map with per-worker local state: newLocal is invoked once
// per worker goroutine and its value is passed to every fn call that
// worker executes. It exists for reusable scratch (workspaces, buffers)
// that is cheap to share across items but must never be shared across
// goroutines. fn must not let the local escape into its result.
func MapLocal[T, L any](n, workers int, newLocal func() L, fn func(i int, local L) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	obs := observer.Load()
	var began time.Time
	if obs != nil {
		began = time.Now()
	}
	if workers == 1 {
		// Serial fast path: no goroutines, same commit order.
		local := newLocal()
		for i := 0; i < n; i++ {
			v, err := fn(i, local)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		if obs != nil {
			wall := time.Since(began)
			(*obs)(Report{Items: n, Workers: 1, Wall: wall, Busy: wall})
		}
		return out, nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	var busy atomic.Int64 // summed per-worker busy nanoseconds
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			var workerBegan time.Time
			if obs != nil {
				workerBegan = time.Now()
				defer func() { busy.Add(int64(time.Since(workerBegan))) }()
			}
			local := newLocal()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				v, err := fn(i, local)
				if err != nil {
					errs[i] = err
					continue
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if obs != nil {
		(*obs)(Report{
			Items:   n,
			Workers: workers,
			Wall:    time.Since(began),
			Busy:    time.Duration(busy.Load()),
		})
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// MapReduce runs fn over [0, n) like Map and folds the results in item
// order: acc = reduce(acc, result[0]), then result[1], and so on. The
// fold is strictly ordered, so non-commutative reductions are safe.
func MapReduce[T, A any](n, workers int, fn func(i int) (T, error), acc A, reduce func(A, T) A) (A, error) {
	results, err := Map(n, workers, fn)
	if err != nil {
		var zero A
		return zero, err
	}
	for _, r := range results {
		acc = reduce(acc, r)
	}
	return acc, nil
}
