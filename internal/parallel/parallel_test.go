package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(1); got != 1 {
		t.Fatalf("Workers(1) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Workers(0); got != want {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := Workers(-5); got != want {
		t.Fatalf("Workers(-5) = %d, want GOMAXPROCS %d", got, want)
	}
}

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		out, err := Map(100, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 100 {
			t.Fatalf("workers=%d: len %d", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(0, 4, func(i int) (int, error) { return 0, nil })
	if err != nil || out != nil {
		t.Fatalf("Map(0) = %v, %v", out, err)
	}
}

func TestMapWorkerInvariance(t *testing.T) {
	// The contract: identical outputs for every worker count, even when
	// each item does schedule-sensitive amounts of work.
	ref, err := Map(64, 1, func(i int) (float64, error) {
		s := 0.0
		for k := 0; k < (i%7+1)*1000; k++ {
			s += float64(k) * 1e-9
		}
		return s + float64(i), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		got, err := Map(64, workers, func(i int) (float64, error) {
			s := 0.0
			for k := 0; k < (i%7+1)*1000; k++ {
				s += float64(k) * 1e-9
			}
			return s + float64(i), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: out[%d] = %v != %v", workers, i, got[i], ref[i])
			}
		}
	}
}

func TestMapLowestIndexError(t *testing.T) {
	// Items 3 and 7 fail; the error surfaced must be item 3's for every
	// worker count (schedule-independent error identity).
	for _, workers := range []int{1, 2, 8} {
		_, err := Map(10, workers, func(i int) (int, error) {
			if i == 3 || i == 7 {
				return 0, fmt.Errorf("item %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "item 3 failed" {
			t.Fatalf("workers=%d: err = %v, want item 3's", workers, err)
		}
	}
}

func TestMapAllItemsRunDespiteError(t *testing.T) {
	// No early cancellation: every item must run even when an early
	// index fails.
	var ran atomic.Int64
	_, err := Map(50, 4, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, errors.New("first item failed")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if got := ran.Load(); got != 50 {
		t.Fatalf("ran %d of 50 items", got)
	}
}

func TestMapLocalOnePerWorker(t *testing.T) {
	// Each worker gets exactly one local; with workers=4 and plenty of
	// items, at most 4 locals are constructed.
	var made atomic.Int64
	type local struct{ id int64 }
	out, err := MapLocal(200, 4,
		func() *local { return &local{id: made.Add(1)} },
		func(i int, l *local) (int64, error) { return l.id, nil })
	if err != nil {
		t.Fatal(err)
	}
	if n := made.Load(); n < 1 || n > 4 {
		t.Fatalf("made %d locals with 4 workers", n)
	}
	seen := map[int64]bool{}
	for _, id := range out {
		seen[id] = true
	}
	if len(seen) > 4 {
		t.Fatalf("items saw %d distinct locals", len(seen))
	}
}

func TestMapLocalSerialFastPath(t *testing.T) {
	var made atomic.Int64
	out, err := MapLocal(10, 1,
		func() int { return int(made.Add(1)) },
		func(i int, l int) (int, error) { return i + l, nil })
	if err != nil {
		t.Fatal(err)
	}
	if made.Load() != 1 {
		t.Fatalf("serial path made %d locals", made.Load())
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapReduceOrderedFold(t *testing.T) {
	// Fold order must be item order: build a string so any reorder shows.
	for _, workers := range []int{1, 3, 8} {
		s, err := MapReduce(6, workers,
			func(i int) (string, error) { return fmt.Sprintf("%d", i), nil },
			"", func(acc, v string) string { return acc + v })
		if err != nil {
			t.Fatal(err)
		}
		if s != "012345" {
			t.Fatalf("workers=%d: fold = %q", workers, s)
		}
	}
}

func TestWorkersCappedAtItems(t *testing.T) {
	// More workers than items must not deadlock or misbehave.
	out, err := Map(3, 64, func(i int) (int, error) { return i, nil })
	if err != nil || len(out) != 3 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}
