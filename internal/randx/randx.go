// Package randx is the deterministic randomness substrate for the
// library. Every stochastic component — rating generators, attack
// models, Monte-Carlo experiment drivers — draws from an explicit
// *Rand so that every table and figure is reproducible from a seed.
//
// It wraps math/rand (stdlib only) and adds the distributions the paper
// needs: Gaussian ratings parameterized by variance, Poisson arrival
// counts and arrival-time processes, Bernoulli trials, discrete rating
// quantization, and sampling without replacement for recruiting
// collaborative raters.
package randx

import (
	"fmt"
	"math"
	"math/rand"
)

// Rand is a deterministic random source. It is not safe for concurrent
// use; create one per goroutine (Split derives independent streams).
type Rand struct {
	src *rand.Rand
}

// New returns a Rand seeded with seed.
func New(seed int64) *Rand {
	return &Rand{src: rand.New(rand.NewSource(seed))}
}

// Split derives a new, independently seeded stream from r. Experiments
// use one split per Monte-Carlo run so runs stay independent while the
// whole sweep remains a pure function of the top-level seed.
func (r *Rand) Split() *Rand {
	return New(r.src.Int63())
}

// Seeds pre-draws n stream seeds from r in index order — exactly the
// seeds a serial loop of n Split calls would consume. Fanning a
// Monte-Carlo sweep out over a worker pool with Seeds therefore
// reproduces the serial sweep bit for bit: item i runs on New(seeds[i])
// no matter which goroutine executes it or in what order.
func (r *Rand) Seeds(n int) []int64 {
	if n <= 0 {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = r.src.Int63()
	}
	return out
}

// Derive maps (base seed, item index) to a stream seed without touching
// any shared stream state — the schedule-free alternative to Seeds for
// code that never had a serial draw order to preserve. It finalizes the
// pair with SplitMix64 so that neighboring indices land on statistically
// independent streams (see the cross-correlation test).
func Derive(base int64, index int) int64 {
	z := uint64(base) + (uint64(index)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z &^ (1 << 63))
}

// DeriveRand returns a Rand on the stream Derive(base, index) selects.
func DeriveRand(base int64, index int) *Rand {
	return New(Derive(base, index))
}

// Float64 returns a uniform sample from [0, 1).
func (r *Rand) Float64() float64 { return r.src.Float64() }

// Intn returns a uniform integer in [0, n). It panics if n <= 0, same
// as math/rand.
func (r *Rand) Intn(n int) int { return r.src.Intn(n) }

// Int63 returns a non-negative 63-bit integer.
func (r *Rand) Int63() int64 { return r.src.Int63() }

// Uniform returns a uniform sample from [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.src.Float64()
}

// UniformInt returns a uniform integer in [lo, hi] inclusive.
// It panics if hi < lo.
func (r *Rand) UniformInt(lo, hi int) int {
	if hi < lo {
		panic(fmt.Sprintf("randx: UniformInt bounds [%d,%d]", lo, hi))
	}
	return lo + r.src.Intn(hi-lo+1)
}

// Bernoulli reports true with probability p (clamped to [0,1]).
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.src.Float64() < p
}

// Normal returns a Gaussian sample with the given mean and standard
// deviation.
func (r *Rand) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.src.NormFloat64()
}

// NormalVar returns a Gaussian sample parameterized by variance, the
// convention the paper uses ("variance being 0.2"). Negative variance
// is treated as zero spread.
func (r *Rand) NormalVar(mean, variance float64) float64 {
	if variance <= 0 {
		return mean
	}
	return r.Normal(mean, math.Sqrt(variance))
}

// Poisson returns a Poisson-distributed count with the given mean.
// It uses Knuth's product method for small means and a Gaussian
// approximation (rounded, floored at zero) for large means, which is
// more than accurate enough for arrival counts.
func (r *Rand) Poisson(mean float64) int {
	switch {
	case mean <= 0:
		return 0
	case mean < 30:
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= r.src.Float64()
			if p <= l {
				return k
			}
			k++
		}
	default:
		n := math.Round(r.Normal(mean, math.Sqrt(mean)))
		if n < 0 {
			return 0
		}
		return int(n)
	}
}

// PoissonProcess returns event times of a homogeneous Poisson process
// with the given rate (events per unit time) over [start, end), in
// increasing order. A non-positive rate or empty interval yields no
// events.
func (r *Rand) PoissonProcess(rate, start, end float64) []float64 {
	if rate <= 0 || end <= start {
		return nil
	}
	var times []float64
	t := start
	for {
		// Exponential inter-arrival gap.
		t += -math.Log(1-r.src.Float64()) / rate
		if t >= end {
			return times
		}
		times = append(times, t)
	}
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.src.Perm(n) }

// SampleWithoutReplacement returns k distinct integers drawn uniformly
// from [0, n). It returns all n when k >= n, and nil when k <= 0.
func (r *Rand) SampleWithoutReplacement(n, k int) []int {
	if k <= 0 || n <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	return r.src.Perm(n)[:k]
}

// Shuffle randomly permutes the first n elements using swap, mirroring
// math/rand.Shuffle.
func (r *Rand) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// Quantize maps v onto one of `levels` equally spaced rating scores and
// clamps to the scale. The paper's scales are either
//
//	11 levels: 0, 0.1, ..., 1.0   (zeroBased = true,  §III.A.2)
//	10 levels: 0.1, 0.2, ..., 1.0 (zeroBased = false, §IV.A)
//
// With zeroBased, the scores are i/(levels-1) for i in [0, levels-1];
// without, they are i/levels for i in [1, levels].
func Quantize(v float64, levels int, zeroBased bool) float64 {
	if levels < 2 {
		panic(fmt.Sprintf("randx: Quantize with %d levels", levels))
	}
	if zeroBased {
		steps := float64(levels - 1)
		i := math.Round(clamp01(v) * steps)
		return i / steps
	}
	steps := float64(levels)
	i := math.Round(clamp01(v) * steps)
	if i < 1 {
		i = 1
	}
	return i / steps
}

func clamp01(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	default:
		return v
	}
}
