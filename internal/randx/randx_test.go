package randx

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(1)
	s1 := r.Split()
	s2 := r.Split()
	same := true
	for i := 0; i < 20; i++ {
		if s1.Float64() != s2.Float64() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two splits produced identical streams")
	}
}

func TestUniformRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(0.4, 0.6)
		if v < 0.4 || v >= 0.6 {
			t.Fatalf("Uniform(0.4,0.6) = %g out of range", v)
		}
	}
}

func TestUniformIntRange(t *testing.T) {
	r := New(4)
	seen := make(map[int]bool)
	for i := 0; i < 2000; i++ {
		v := r.UniformInt(1, 20)
		if v < 1 || v > 20 {
			t.Fatalf("UniformInt(1,20) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 20 {
		t.Fatalf("expected all 20 values to occur, saw %d", len(seen))
	}
}

func TestUniformIntPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for hi < lo")
		}
	}()
	New(1).UniformInt(5, 4)
}

func TestBernoulliEdges(t *testing.T) {
	r := New(5)
	for i := 0; i < 50; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := New(6)
	const n, p = 20000, 0.3
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-p) > 0.02 {
		t.Fatalf("Bernoulli(0.3) frequency = %g", got)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(7)
	const n = 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Normal(0.7, 0.2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-0.7) > 0.01 {
		t.Fatalf("mean = %g, want 0.7", mean)
	}
	if math.Abs(variance-0.04) > 0.005 {
		t.Fatalf("variance = %g, want 0.04", variance)
	}
}

func TestNormalVarSemantics(t *testing.T) {
	r := New(8)
	const n = 50000
	var sumSq, sum float64
	for i := 0; i < n; i++ {
		v := r.NormalVar(0, 0.2)
		sum += v
		sumSq += v * v
	}
	variance := sumSq/n - (sum/n)*(sum/n)
	if math.Abs(variance-0.2) > 0.02 {
		t.Fatalf("NormalVar variance = %g, want 0.2", variance)
	}
	if v := r.NormalVar(0.5, 0); v != 0.5 {
		t.Fatalf("zero-variance sample = %g, want the mean", v)
	}
	if v := r.NormalVar(0.5, -1); v != 0.5 {
		t.Fatalf("negative-variance sample = %g, want the mean", v)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(9)
	for _, mean := range []float64{0.5, 3, 12, 80} {
		const n = 20000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Fatalf("Poisson(%g) mean = %g", mean, got)
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-3) != 0 {
		t.Fatal("non-positive mean must yield 0")
	}
}

func TestPoissonProcess(t *testing.T) {
	r := New(10)
	const rate, start, end = 3.0, 0.0, 60.0
	var total int
	const runs = 300
	for i := 0; i < runs; i++ {
		times := r.PoissonProcess(rate, start, end)
		if !sort.Float64sAreSorted(times) {
			t.Fatal("arrival times not sorted")
		}
		for _, tm := range times {
			if tm < start || tm >= end {
				t.Fatalf("arrival %g outside [%g,%g)", tm, start, end)
			}
		}
		total += len(times)
	}
	gotMean := float64(total) / runs
	want := rate * (end - start)
	if math.Abs(gotMean-want) > 0.05*want {
		t.Fatalf("mean arrivals = %g, want about %g", gotMean, want)
	}
}

func TestPoissonProcessEmpty(t *testing.T) {
	r := New(11)
	if got := r.PoissonProcess(0, 0, 10); got != nil {
		t.Fatalf("rate 0 produced %v", got)
	}
	if got := r.PoissonProcess(5, 10, 10); got != nil {
		t.Fatalf("empty interval produced %v", got)
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := New(12)
	got := r.SampleWithoutReplacement(10, 4)
	if len(got) != 4 {
		t.Fatalf("len = %d, want 4", len(got))
	}
	seen := make(map[int]bool)
	for _, v := range got {
		if v < 0 || v >= 10 {
			t.Fatalf("value %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("duplicate value %d", v)
		}
		seen[v] = true
	}
	if got := r.SampleWithoutReplacement(3, 10); len(got) != 3 {
		t.Fatalf("k > n: len = %d, want 3", len(got))
	}
	if got := r.SampleWithoutReplacement(3, 0); got != nil {
		t.Fatalf("k = 0 produced %v", got)
	}
}

func TestQuantizeElevenLevelsZeroBased(t *testing.T) {
	// §III.A.2: ratings can be 0, 0.1, ..., 1.
	cases := []struct{ in, want float64 }{
		{0, 0}, {0.04, 0}, {0.06, 0.1}, {0.55, 0.6}, {1, 1}, {1.7, 1}, {-0.3, 0},
	}
	for _, c := range cases {
		if got := Quantize(c.in, 11, true); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantize(%g, 11, true) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestQuantizeTenLevelsOneBased(t *testing.T) {
	// §IV.A: rating scores are 0.1, 0.2, ..., 1 — zero is not a score.
	cases := []struct{ in, want float64 }{
		{0, 0.1}, {0.02, 0.1}, {0.55, 0.6}, {0.96, 1}, {1, 1}, {-2, 0.1},
	}
	for _, c := range cases {
		if got := Quantize(c.in, 10, false); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantize(%g, 10, false) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestQuantizePanicsOnOneLevel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for < 2 levels")
		}
	}()
	Quantize(0.5, 1, true)
}

// Property: quantized values are always valid scores on the scale.
func TestQuantizeAlwaysOnScaleProperty(t *testing.T) {
	prop := func(v float64, zeroBased bool) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		levels := 10
		if zeroBased {
			levels = 11
		}
		q := Quantize(v, levels, zeroBased)
		if q < 0 || q > 1 {
			return false
		}
		// Must land exactly on a grid point.
		var steps float64
		if zeroBased {
			steps = float64(levels - 1)
		} else {
			steps = float64(levels)
		}
		i := q * steps
		return math.Abs(i-math.Round(i)) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSeedsMatchSerialSplit(t *testing.T) {
	// Seeds(n) must consume exactly the stream seeds a serial loop of
	// Split calls would, in the same order — the property the parallel
	// experiment fan-out relies on for bit-identical results.
	serial := New(42)
	var want []int64
	for i := 0; i < 50; i++ {
		local := serial.Split()
		want = append(want, local.Int63()) // probe the split stream
	}

	batched := New(42)
	seeds := batched.Seeds(50)
	for i, s := range seeds {
		if got := New(s).Int63(); got != want[i] {
			t.Fatalf("seed %d: stream differs from serial Split", i)
		}
	}
	// And the parent streams are left in the same state.
	if serial.Int63() != batched.Int63() {
		t.Fatal("parent stream state differs after Seeds vs Split loop")
	}
}

func TestSeedsEmpty(t *testing.T) {
	r := New(1)
	if s := r.Seeds(0); s != nil {
		t.Fatalf("Seeds(0) = %v", s)
	}
	if s := r.Seeds(-3); s != nil {
		t.Fatalf("Seeds(-3) = %v", s)
	}
}

func TestDeriveDistinctAndNonNegative(t *testing.T) {
	seen := make(map[int64]bool)
	for _, base := range []int64{0, 1, 7, 1 << 40} {
		for i := 0; i < 1000; i++ {
			s := Derive(base, i)
			if s < 0 {
				t.Fatalf("Derive(%d,%d) = %d negative", base, i, s)
			}
			if seen[s] {
				t.Fatalf("Derive collision at base %d index %d", base, i)
			}
			seen[s] = true
		}
	}
}

func TestDeriveStreamIndependence(t *testing.T) {
	// Streams derived from adjacent indices must be statistically
	// independent: the cross-correlation of their uniform draws should
	// vanish (|r| well under 3/sqrt(n) ~ 0.03 for n = 10000 would be the
	// 3-sigma band; allow 0.05 for slack).
	const n = 10000
	a := DeriveRand(123, 0)
	b := DeriveRand(123, 1)
	var sa, sb, saa, sbb, sab float64
	for i := 0; i < n; i++ {
		x, y := a.Float64(), b.Float64()
		sa += x
		sb += y
		saa += x * x
		sbb += y * y
		sab += x * y
	}
	cov := sab/n - (sa/n)*(sb/n)
	va := saa/n - (sa/n)*(sa/n)
	vb := sbb/n - (sb/n)*(sb/n)
	corr := cov / math.Sqrt(va*vb)
	if math.Abs(corr) > 0.05 {
		t.Fatalf("cross-stream correlation %.4f, want ~0", corr)
	}
}
