// Package rating defines the core data model: a Rating is one score for
// one object by one rater at one point in time, and the paper's central
// move is to stop treating a batch of ratings as i.i.d. samples and
// start treating the time-ordered sequence as a realization of a random
// process (§III.A.1). Windowing — by time with overlap, or by rating
// count — is therefore a first-class operation here.
package rating

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"
)

// RaterID identifies a rater.
type RaterID int

// ObjectID identifies a rated object (product, movie, seller, ...).
type ObjectID int

// Rating is a single rating event. Value is on the [0, 1] scale the
// paper uses throughout; Time is in days (fractional) from the start of
// the observation period.
type Rating struct {
	Rater  RaterID
	Object ObjectID
	Value  float64
	Time   float64
}

// Validate reports whether the rating is well-formed.
func (r Rating) Validate() error {
	if math.IsNaN(r.Value) || r.Value < 0 || r.Value > 1 {
		return fmt.Errorf("rating: value %g outside [0,1]", r.Value)
	}
	if math.IsNaN(r.Time) || math.IsInf(r.Time, 0) {
		return fmt.Errorf("rating: invalid time %g", r.Time)
	}
	return nil
}

// ErrUnknownObject is returned when a store has no ratings for the
// requested object.
var ErrUnknownObject = errors.New("rating: unknown object")

// Store holds ratings grouped by object, kept sorted by time. The zero
// value is not usable; call NewStore.
type Store struct {
	byObject map[ObjectID][]Rating
	objects  []ObjectID
	n        int

	// groups and groupOf are AddBatch's reusable per-object bucket
	// state: instead of a full (object, time) comparison sort of the
	// batch, ratings are scattered into per-object buckets in one map-
	// lookup pass and only each (small) bucket is sorted by time. Both
	// are reused across batches so the steady-state ingest path
	// allocates nothing once they have grown to the widest batch seen.
	groups  [][]Rating
	groupOf map[ObjectID]int
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{byObject: make(map[ObjectID][]Rating)}
}

// Add inserts a rating, maintaining per-object time order. It rejects
// malformed ratings.
func (s *Store) Add(r Rating) error {
	if err := r.Validate(); err != nil {
		return err
	}
	rs := s.byObject[r.Object]
	if rs == nil {
		s.objects = append(s.objects, r.Object)
	}
	// Insert keeping time order; appends are the common case because
	// simulations emit chronologically.
	i := len(rs)
	for i > 0 && rs[i-1].Time > r.Time {
		i--
	}
	rs = append(rs, Rating{})
	copy(rs[i+1:], rs[i:])
	rs[i] = r
	s.byObject[r.Object] = rs
	s.n++
	return nil
}

// AddBatch inserts a batch of ratings in one pass per object: the
// batch is stably sorted by (object, time) and each object's group is
// merged into its existing slice with a single linear merge, instead
// of one ordered insert (worst case O(len(slice)) memmove) per
// rating. Acceptance is all-or-nothing: the batch is validated up
// front and an invalid rating rejects the whole batch untouched.
//
// AddBatch is equivalent to calling Add for each rating in order:
// ties on time keep existing ratings before batch ratings and batch
// ratings in submission order, exactly like repeated Add.
func (s *Store) AddBatch(rs []Rating) error {
	for i, r := range rs {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("rating %d: %w", i, err)
		}
	}
	s.AddBatchValidated(rs)
	return nil
}

// AddBatchValidated is AddBatch without the validation pre-scan: the
// caller guarantees every rating passes Validate (the sharded engine
// fuses validation with its shard-placement check in one pass, and
// the router validates at the submission edge). Passing an invalid
// rating corrupts no invariants here but stores a value downstream
// consumers were promised never to see — so only trusted ingest paths
// may call this.
func (s *Store) AddBatchValidated(rs []Rating) {
	if len(rs) == 0 {
		return
	}
	// Scatter the batch into per-object buckets: one map lookup per
	// rating instead of a comparison sort of the whole batch. Unseen
	// objects register in submission order (first-seen order is
	// observable through Objects()), and within a bucket submission
	// order is preserved, so equal-time ratings keep Add's ordering.
	if s.groupOf == nil {
		s.groupOf = make(map[ObjectID]int, 64)
	}
	clear(s.groupOf)
	used := 0
	for _, r := range rs {
		gi, ok := s.groupOf[r.Object]
		if !ok {
			if _, seen := s.byObject[r.Object]; !seen {
				s.byObject[r.Object] = nil
				s.objects = append(s.objects, r.Object)
			}
			if used == len(s.groups) {
				s.groups = append(s.groups, nil)
			}
			gi = used
			s.groupOf[r.Object] = gi
			s.groups[gi] = s.groups[gi][:0]
			used++
		}
		s.groups[gi] = append(s.groups[gi], r)
	}
	for _, g := range s.groups[:used] {
		sortGroupByTime(g)
		s.mergeObject(g[0].Object, g)
	}
	s.n += len(rs)
}

// sortGroupByTime stably sorts one object's bucket by time. Buckets
// are small and chronological feeds arrive nearly sorted, so straight
// insertion sort wins below a crossover; big disordered buckets fall
// back to the library's stable sort.
func sortGroupByTime(g []Rating) {
	if len(g) <= 32 {
		for i := 1; i < len(g); i++ {
			for j := i; j > 0 && g[j-1].Time > g[j].Time; j-- {
				g[j-1], g[j] = g[j], g[j-1]
			}
		}
		return
	}
	slices.SortStableFunc(g, func(a, b Rating) int {
		if a.Time < b.Time {
			return -1
		}
		if a.Time > b.Time {
			return 1
		}
		return 0
	})
}

// mergeObject merges the time-sorted group `add` (all for object id)
// into the object's existing time-sorted slice. The merge runs in
// place (backward, inside the existing slice's capacity) whenever it
// can, so steady-state ingest only allocates on amortized slice
// growth.
func (s *Store) mergeObject(id ObjectID, add []Rating) {
	old := s.byObject[id]
	// Fast path: the whole group lands at or after the current tail
	// (chronological ingest), so it is a plain append.
	if len(old) == 0 || old[len(old)-1].Time <= add[0].Time {
		s.byObject[id] = append(old, add...)
		return
	}
	need := len(old) + len(add)
	dst := old
	if cap(dst) < need {
		// Grow like append does so merge-into-the-middle ingest keeps
		// amortized O(1) allocations per rating.
		newCap := 2 * cap(dst)
		if newCap < need {
			newCap = need
		}
		dst = make([]Rating, len(old), newCap)
		copy(dst, old)
	}
	dst = dst[:need]
	// Backward merge: write position k never catches the unread old
	// tail (k = i+j+1 > i while batch ratings remain), so merging into
	// the slice being read is safe. On time ties the batch rating is
	// placed later, keeping existing ratings ahead of equal-time batch
	// ratings — Add's insertion rule.
	i, j := len(old)-1, len(add)-1
	for k := need - 1; j >= 0; k-- {
		if i >= 0 && dst[i].Time > add[j].Time {
			dst[k] = dst[i]
			i--
		} else {
			dst[k] = add[j]
			j--
		}
	}
	s.byObject[id] = dst
}

// AddAll inserts every rating, stopping at the first invalid one.
func (s *Store) AddAll(rs []Rating) error {
	for i, r := range rs {
		if err := s.Add(r); err != nil {
			return fmt.Errorf("rating %d: %w", i, err)
		}
	}
	return nil
}

// Len returns the total number of stored ratings.
func (s *Store) Len() int { return s.n }

// Objects returns the object IDs in first-seen order. The slice is a
// copy.
func (s *Store) Objects() []ObjectID {
	return append([]ObjectID(nil), s.objects...)
}

// ForObject returns the ratings of one object in time order. The slice
// is a copy, so callers may slice and mutate freely.
func (s *Store) ForObject(id ObjectID) ([]Rating, error) {
	rs, ok := s.byObject[id]
	if !ok {
		return nil, fmt.Errorf("object %d: %w", id, ErrUnknownObject)
	}
	return append([]Rating(nil), rs...), nil
}

// Values extracts the rating values of rs in order.
func Values(rs []Rating) []float64 {
	return AppendValues(make([]float64, 0, len(rs)), rs)
}

// AppendValues appends the rating values of rs to dst and returns the
// extended slice — the allocation-free form of Values for hot loops
// that reuse a scratch buffer (dst[:0]).
func AppendValues(dst []float64, rs []Rating) []float64 {
	for _, r := range rs {
		dst = append(dst, r.Value)
	}
	return dst
}

// Times extracts the rating times of rs in order.
func Times(rs []Rating) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.Time
	}
	return out
}

// Raters returns the distinct raters appearing in rs, in first-seen
// order.
func Raters(rs []Rating) []RaterID {
	seen := make(map[RaterID]bool, len(rs))
	var out []RaterID
	for _, r := range rs {
		if !seen[r.Rater] {
			seen[r.Rater] = true
			out = append(out, r.Rater)
		}
	}
	return out
}

// SortByTime sorts rs in place by time (stable, so equal-time ratings
// keep their relative order).
func SortByTime(rs []Rating) {
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].Time < rs[j].Time })
}

// Window is a contiguous run of ratings with its covering interval.
type Window struct {
	// Index is the window's ordinal (the k of Procedure 1).
	Index int
	// Start and End delimit the covered time interval [Start, End).
	Start, End float64
	// Lo and Hi are the half-open index range [Lo, Hi) of the member
	// ratings within the slice the window was cut from, so callers can
	// mark individual ratings across overlapping windows.
	Lo, Hi int
	// Ratings are the member ratings in time order. The slice aliases
	// the input to the windowing function.
	Ratings []Rating
}

// Values returns the member rating values.
func (w Window) Values() []float64 { return Values(w.Ratings) }

// CountWindows splits rs (which must be time-sorted) into windows of
// exactly `size` ratings, advancing by `step` ratings, so adjacent
// windows overlap by size−step. This is Fig 4's "50 ratings in each
// window" mode. A trailing partial window is dropped, matching the
// paper's fixed-size fits.
func CountWindows(rs []Rating, size, step int) ([]Window, error) {
	if size < 1 || step < 1 {
		return nil, fmt.Errorf("rating: count windows size=%d step=%d", size, step)
	}
	var out []Window
	for start := 0; start+size <= len(rs); start += step {
		member := rs[start : start+size]
		out = append(out, Window{
			Index:   len(out),
			Start:   member[0].Time,
			End:     member[len(member)-1].Time,
			Lo:      start,
			Hi:      start + size,
			Ratings: member,
		})
	}
	return out, nil
}

// TimeWindows splits rs (time-sorted) into windows covering
// [t0 + k·step, t0 + k·step + width) for k = 0.. until end. §IV uses
// width 10 days with step 5 (50% overlap). Windows with no ratings are
// still emitted (empty Ratings) so downstream indexing by time stays
// regular; callers skip windows that are too small to model.
func TimeWindows(rs []Rating, t0, end, width, step float64) ([]Window, error) {
	if width <= 0 || step <= 0 {
		return nil, fmt.Errorf("rating: time windows width=%g step=%g", width, step)
	}
	if end < t0 {
		return nil, fmt.Errorf("rating: time windows end %g before start %g", end, t0)
	}
	var out []Window
	for start := t0; start < end; start += step {
		stop := start + width
		lo := sort.Search(len(rs), func(i int) bool { return rs[i].Time >= start })
		hi := sort.Search(len(rs), func(i int) bool { return rs[i].Time >= stop })
		out = append(out, Window{
			Index:   len(out),
			Start:   start,
			End:     stop,
			Lo:      lo,
			Hi:      hi,
			Ratings: rs[lo:hi],
		})
	}
	return out, nil
}
