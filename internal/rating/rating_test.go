package rating

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/randx"
)

func TestRatingValidate(t *testing.T) {
	ok := Rating{Rater: 1, Object: 1, Value: 0.5, Time: 3}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Rating{
		{Value: -0.1, Time: 0},
		{Value: 1.1, Time: 0},
		{Value: math.NaN(), Time: 0},
		{Value: 0.5, Time: math.NaN()},
		{Value: 0.5, Time: math.Inf(1)},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad rating %d accepted: %+v", i, r)
		}
	}
}

func TestStoreAddAndRetrieve(t *testing.T) {
	s := NewStore()
	in := []Rating{
		{Rater: 1, Object: 7, Value: 0.5, Time: 2},
		{Rater: 2, Object: 7, Value: 0.6, Time: 1},
		{Rater: 3, Object: 9, Value: 0.7, Time: 5},
	}
	if err := s.AddAll(in); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	rs, err := s.ForObject(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].Time != 1 || rs[1].Time != 2 {
		t.Fatalf("object 7 ratings = %+v", rs)
	}
	objs := s.Objects()
	if len(objs) != 2 || objs[0] != 7 || objs[1] != 9 {
		t.Fatalf("objects = %v", objs)
	}
}

func TestStoreForObjectCopies(t *testing.T) {
	s := NewStore()
	if err := s.Add(Rating{Object: 1, Value: 0.5, Time: 1}); err != nil {
		t.Fatal(err)
	}
	rs, _ := s.ForObject(1)
	rs[0].Value = 0.9
	again, _ := s.ForObject(1)
	if again[0].Value != 0.5 {
		t.Fatal("ForObject exposed internal storage")
	}
}

func TestStoreUnknownObject(t *testing.T) {
	s := NewStore()
	if _, err := s.ForObject(5); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("err = %v", err)
	}
}

func TestStoreRejectsInvalid(t *testing.T) {
	s := NewStore()
	if err := s.Add(Rating{Value: 2, Time: 0}); err == nil {
		t.Fatal("invalid rating accepted")
	}
	if err := s.AddAll([]Rating{{Value: 0.5, Time: 1}, {Value: -1, Time: 2}}); err == nil {
		t.Fatal("invalid batch accepted")
	}
	if s.Len() != 1 {
		t.Fatalf("partial batch Len = %d, want 1", s.Len())
	}
}

func TestValuesTimesRaters(t *testing.T) {
	rs := []Rating{
		{Rater: 4, Value: 0.1, Time: 1},
		{Rater: 2, Value: 0.2, Time: 2},
		{Rater: 4, Value: 0.3, Time: 3},
	}
	v := Values(rs)
	if v[0] != 0.1 || v[2] != 0.3 {
		t.Fatalf("Values = %v", v)
	}
	tm := Times(rs)
	if tm[0] != 1 || tm[2] != 3 {
		t.Fatalf("Times = %v", tm)
	}
	raters := Raters(rs)
	if len(raters) != 2 || raters[0] != 4 || raters[1] != 2 {
		t.Fatalf("Raters = %v", raters)
	}
}

func TestSortByTimeStable(t *testing.T) {
	rs := []Rating{
		{Rater: 1, Time: 5},
		{Rater: 2, Time: 1},
		{Rater: 3, Time: 5},
	}
	SortByTime(rs)
	if rs[0].Rater != 2 || rs[1].Rater != 1 || rs[2].Rater != 3 {
		t.Fatalf("sorted = %+v", rs)
	}
}

func makeSequential(n int) []Rating {
	rs := make([]Rating, n)
	for i := range rs {
		rs[i] = Rating{Rater: RaterID(i), Value: 0.5, Time: float64(i)}
	}
	return rs
}

func TestCountWindowsPaperGeometry(t *testing.T) {
	// Fig 4 lower plot: 50 ratings per window. With step 25 over 100
	// ratings: windows at 0, 25, 50.
	rs := makeSequential(100)
	ws, err := CountWindows(rs, 50, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 {
		t.Fatalf("%d windows, want 3", len(ws))
	}
	if ws[0].Start != 0 || ws[0].End != 49 || len(ws[0].Ratings) != 50 {
		t.Fatalf("w0 = %+v", ws[0])
	}
	if ws[2].Ratings[0].Time != 50 {
		t.Fatalf("w2 starts at %g", ws[2].Ratings[0].Time)
	}
	for i, w := range ws {
		if w.Index != i {
			t.Fatalf("window %d has index %d", i, w.Index)
		}
	}
}

func TestCountWindowsDropsPartial(t *testing.T) {
	ws, err := CountWindows(makeSequential(7), 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 1 {
		t.Fatalf("%d windows, want 1 (trailing partial dropped)", len(ws))
	}
}

func TestCountWindowsValidation(t *testing.T) {
	if _, err := CountWindows(nil, 0, 1); err == nil {
		t.Fatal("size 0 accepted")
	}
	if _, err := CountWindows(nil, 1, 0); err == nil {
		t.Fatal("step 0 accepted")
	}
}

func TestTimeWindowsPaperGeometry(t *testing.T) {
	// §IV: width 10 days, step 5 (adjacent windows overlap by 5 days).
	rs := makeSequential(30) // times 0..29
	ws, err := TimeWindows(rs, 0, 30, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 6 {
		t.Fatalf("%d windows, want 6", len(ws))
	}
	if ws[0].Start != 0 || ws[0].End != 10 || len(ws[0].Ratings) != 10 {
		t.Fatalf("w0 = %+v", ws[0])
	}
	if ws[1].Start != 5 || len(ws[1].Ratings) != 10 {
		t.Fatalf("w1 = %+v", ws[1])
	}
	// Overlap: ratings 5..9 are in both window 0 and window 1.
	if ws[1].Ratings[0].Time != 5 {
		t.Fatalf("w1 first time = %g", ws[1].Ratings[0].Time)
	}
	// Last window [25,35) only sees times 25..29.
	last := ws[5]
	if len(last.Ratings) != 5 {
		t.Fatalf("last window has %d ratings", len(last.Ratings))
	}
}

func TestTimeWindowsEmptyWindowsEmitted(t *testing.T) {
	rs := []Rating{{Value: 0.5, Time: 25}}
	ws, err := TimeWindows(rs, 0, 30, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 {
		t.Fatalf("%d windows", len(ws))
	}
	if len(ws[0].Ratings) != 0 || len(ws[1].Ratings) != 0 || len(ws[2].Ratings) != 1 {
		t.Fatalf("windows = %+v", ws)
	}
}

func TestTimeWindowsValidation(t *testing.T) {
	if _, err := TimeWindows(nil, 0, 10, 0, 5); err == nil {
		t.Fatal("width 0 accepted")
	}
	if _, err := TimeWindows(nil, 0, 10, 5, 0); err == nil {
		t.Fatal("step 0 accepted")
	}
	if _, err := TimeWindows(nil, 10, 0, 5, 5); err == nil {
		t.Fatal("end before start accepted")
	}
}

func TestWindowValues(t *testing.T) {
	w := Window{Ratings: []Rating{{Value: 0.2}, {Value: 0.8}}}
	v := w.Values()
	if len(v) != 2 || v[0] != 0.2 || v[1] != 0.8 {
		t.Fatalf("Values = %v", v)
	}
}

// Property: every rating lands in the right number of overlapping time
// windows and window membership respects [Start, End).
func TestTimeWindowsCoverageProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := randx.New(seed)
		n := rng.Intn(200)
		rs := make([]Rating, n)
		for i := range rs {
			rs[i] = Rating{Rater: RaterID(i), Value: 0.5, Time: rng.Uniform(0, 60)}
		}
		SortByTime(rs)
		ws, err := TimeWindows(rs, 0, 60, 10, 5)
		if err != nil {
			return false
		}
		// Each window's members lie inside its interval.
		for _, w := range ws {
			for _, r := range w.Ratings {
				if r.Time < w.Start || r.Time >= w.End {
					return false
				}
			}
		}
		// Count appearances: a rating at time t < 5 appears once, others
		// twice (width 10, step 5), except in the final partial region.
		counts := make(map[RaterID]int)
		for _, w := range ws {
			for _, r := range w.Ratings {
				counts[r.Rater]++
			}
		}
		// Windows start at 0, 5, ..., 55; the last covers [55, 65), so
		// every rating except those in [0, 5) is in exactly two windows.
		for _, r := range rs {
			want := 2
			if r.Time < 5 {
				want = 1
			}
			if counts[r.Rater] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the store keeps per-object ratings sorted regardless of
// insertion order.
func TestStoreSortedProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := randx.New(seed)
		s := NewStore()
		n := 1 + rng.Intn(100)
		for i := 0; i < n; i++ {
			r := Rating{
				Rater:  RaterID(rng.Intn(10)),
				Object: ObjectID(rng.Intn(3)),
				Value:  rng.Float64(),
				Time:   rng.Uniform(0, 100),
			}
			if err := s.Add(r); err != nil {
				return false
			}
		}
		for _, obj := range s.Objects() {
			rs, err := s.ForObject(obj)
			if err != nil {
				return false
			}
			for i := 1; i < len(rs); i++ {
				if rs[i].Time < rs[i-1].Time {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: AddBatch is observably identical to calling Add for each
// rating in order — same object order, same per-object sequences
// (including equal-time tie order), same length.
func TestAddBatchEquivalentToSequentialAdd(t *testing.T) {
	prop := func(seed int64) bool {
		rng := randx.New(seed)
		seq, bat := NewStore(), NewStore()
		// Pre-load both stores so batches merge into existing state.
		pre := 1 + rng.Intn(40)
		for i := 0; i < pre; i++ {
			r := Rating{
				Rater:  RaterID(rng.Intn(8)),
				Object: ObjectID(rng.Intn(4)),
				Value:  rng.Float64(),
				// Quantized times force equal-time ties.
				Time: float64(rng.Intn(20)),
			}
			if err := seq.Add(r); err != nil {
				return false
			}
			if err := bat.Add(r); err != nil {
				return false
			}
		}
		batch := make([]Rating, 1+rng.Intn(60))
		for i := range batch {
			batch[i] = Rating{
				Rater:  RaterID(rng.Intn(8)),
				Object: ObjectID(rng.Intn(4)),
				Value:  rng.Float64(),
				Time:   float64(rng.Intn(20)),
			}
		}
		for _, r := range batch {
			if err := seq.Add(r); err != nil {
				return false
			}
		}
		if err := bat.AddBatch(batch); err != nil {
			return false
		}
		if seq.Len() != bat.Len() {
			return false
		}
		so, bo := seq.Objects(), bat.Objects()
		if len(so) != len(bo) {
			return false
		}
		for i := range so {
			if so[i] != bo[i] {
				return false
			}
		}
		for _, obj := range so {
			a, err := seq.ForObject(obj)
			if err != nil {
				return false
			}
			b, err := bat.ForObject(obj)
			if err != nil {
				return false
			}
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// AddBatch rejects the whole batch when any rating is invalid, leaving
// the store untouched.
func TestAddBatchAllOrNothing(t *testing.T) {
	s := NewStore()
	if err := s.Add(Rating{Rater: 1, Object: 1, Value: 0.5, Time: 1}); err != nil {
		t.Fatal(err)
	}
	batch := []Rating{
		{Rater: 2, Object: 1, Value: 0.6, Time: 2},
		{Rater: 3, Object: 2, Value: math.NaN(), Time: 3},
	}
	if err := s.AddBatch(batch); err == nil {
		t.Fatal("want error for invalid batch rating")
	}
	if s.Len() != 1 {
		t.Fatalf("store mutated by rejected batch: len=%d", s.Len())
	}
	if len(s.Objects()) != 1 {
		t.Fatalf("objects mutated by rejected batch: %v", s.Objects())
	}
}
