package repl_test

// Chaos suite (run under -race by `make chaos-repl`): kill the
// primary mid-batch and promote, kill the follower's bootstrap
// mid-snapshot, and flap the replication stream dozens of times with
// torn-frame injection — asserting zero acked-record loss, clean
// re-bootstrap, and convergence after every flap.

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/repl"
	"repro/internal/shard/shardtest"
	"repro/internal/telemetry"
)

// TestChaosReplPrimaryKillPromote drains the follower, then kills the
// primary while a batch is mid-replication and promotes the follower.
// Every record acked-and-drained before the kill must survive; the
// promoted state must sit exactly at the last complete barrier.
func TestChaosReplPrimaryKillPromote(t *testing.T) {
	w := shardtest.Workload{Seed: 31, Months: 2}
	months := w.Generate()
	p := newPrimaryNode(t, 4)
	fn := newFollowerNode(t, 4, p.url(), nil)

	// Month 0 through its barrier, fully replicated.
	if err := p.SubmitAll(months[0].Ratings); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ProcessWindow(months[0].Start, months[0].End); err != nil {
		t.Fatal(err)
	}
	fn.waitAligned(1, 10*time.Second)

	// An acked batch, drained to the follower: this is the set that
	// must survive the kill.
	acked := months[1].Ratings[:200]
	if err := p.SubmitAll(acked); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "acked batch drained", func() bool {
		records, _, ok := fn.f.Lag()
		return ok && records == 0 && fn.engine.Len() == p.engine.Len()
	})
	drainedLen := fn.engine.Len()
	drainedTrust := fn.engine.TrustSnapshot()
	if !reflect.DeepEqual(drainedTrust, p.engine.TrustSnapshot()) {
		t.Fatal("trust diverged before the kill")
	}

	// Kill the primary while another batch is in flight. Its records
	// were never drained; they may survive partially (whole frames
	// only) or not at all.
	inflight := months[1].Ratings[200:400]
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		_ = p.SubmitAll(inflight) // racing the kill; error or success both fine
	}()
	p.kill()
	<-killed

	// Promote-on-primary-death: wait until contact goes stale, then
	// promote.
	waitFor(t, 10*time.Second, "contact staleness", func() bool {
		return time.Since(fn.f.LastContact()) > 300*time.Millisecond
	})
	next := fn.f.Promote()
	if next != 2 {
		t.Fatalf("promoted next barrier = %d, want 2 (last complete barrier 1)", next)
	}

	// Zero acked-record loss: everything drained pre-kill is present;
	// anything beyond it is a prefix of the in-flight batch.
	got := fn.engine.Len()
	if got < drainedLen {
		t.Fatalf("promoted state lost acked records: len %d < drained %d", got, drainedLen)
	}
	if max := drainedLen + len(inflight); got > max {
		t.Fatalf("promoted state invented records: len %d > %d", got, max)
	}
	// Trust only moves at barriers, and no barrier followed the kill —
	// the promoted trust state must be exactly the drained one.
	if !reflect.DeepEqual(fn.engine.TrustSnapshot(), drainedTrust) {
		t.Fatal("promoted trust state diverged from last complete barrier")
	}

	// The promoted engine keeps working as a primary's engine: new
	// ingest and a new window proceed from the consistent cut.
	if err := fn.engine.SubmitAll(months[1].Ratings[400:]); err != nil {
		t.Fatalf("post-promotion ingest: %v", err)
	}
	if _, err := fn.engine.ProcessWindow(months[1].Start, months[1].End); err != nil {
		t.Fatalf("post-promotion window: %v", err)
	}
}

// TestChaosReplFollowerKilledMidBootstrap truncates the snapshot
// response mid-body several times; the follower must never apply a
// partial snapshot and must bootstrap cleanly once the fault clears.
func TestChaosReplFollowerKilledMidBootstrap(t *testing.T) {
	w := shardtest.Workload{Seed: 47, Months: 1}
	months := w.Generate()
	p := newPrimaryNode(t, 2)
	if err := p.SubmitAll(months[0].Ratings); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ProcessWindow(months[0].Start, months[0].End); err != nil {
		t.Fatal(err)
	}

	front := newChaosFrontend(t, p.url())
	front.snapLimit.Store(200) // every snapshot response dies after 200 bytes

	reg := telemetry.NewRegistry()
	metrics := repl.NewMetrics(reg)
	fn := newFollowerNode(t, 2, front.url(), func(cfg *repl.FollowerConfig) {
		cfg.Metrics = metrics
	})

	waitFor(t, 10*time.Second, "3 truncated bootstrap attempts", func() bool {
		return front.snapCuts.Load() >= 3
	})
	if _, _, ok := fn.f.Lag(); ok {
		t.Fatal("follower claims bootstrap from truncated snapshots")
	}
	if n := fn.engine.Len(); n != 0 {
		t.Fatalf("partial snapshot leaked %d records into the engine", n)
	}

	front.snapLimit.Store(0)
	fn.waitAligned(1, 10*time.Second)
	if n := metrics.Bootstraps.Value(); n != 1 {
		t.Fatalf("bootstraps counter %d, want exactly 1 successful", n)
	}

	want, err := shardtest.Fingerprint(p, w.Objects)
	if err != nil {
		t.Fatal(err)
	}
	got, err := shardtest.Fingerprint(fn.engine, w.Objects)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("post-fault follower diverged:\n--- primary\n%s--- follower\n%s", want, got)
	}
}

// TestChaosReplStreamFlaps severs the replication stream 24 times
// during live ingest — every third flap also injecting a torn frame —
// and requires convergence after every single flap, with the resync
// and reconnect counters actually moving and final lag zero.
func TestChaosReplStreamFlaps(t *testing.T) {
	const chunksPerMonth = 6
	w := shardtest.Workload{Seed: 63, Months: 4, PerMonth: 240}
	months := w.Generate()
	p := newPrimaryNode(t, 2)
	front := newChaosFrontend(t, p.url())

	reg := telemetry.NewRegistry()
	metrics := repl.NewMetrics(reg)
	fn := newFollowerNode(t, 2, front.url(), func(cfg *repl.FollowerConfig) {
		cfg.Metrics = metrics
	})
	fn.waitAligned(0, 10*time.Second)

	flaps := 0
	for m, month := range months {
		n := len(month.Ratings)
		for c := 0; c < chunksPerMonth; c++ {
			chunk := month.Ratings[c*n/chunksPerMonth : (c+1)*n/chunksPerMonth]
			if err := p.SubmitAll(chunk); err != nil {
				t.Fatal(err)
			}
			if flaps%3 == 0 {
				front.armGarble() // the reconnect after this flap eats a torn frame
			}
			front.sever()
			flaps++
			// Convergence after every flap: lag must return to zero.
			waitFor(t, 10*time.Second, fmt.Sprintf("convergence after flap %d", flaps), func() bool {
				records, _, ok := fn.f.Lag()
				return ok && records == 0 && fn.engine.Len() == p.engine.Len()
			})
		}
		if _, err := p.ProcessWindow(month.Start, month.End); err != nil {
			t.Fatal(err)
		}
		fn.waitAligned(uint64(m+1), 10*time.Second)
	}
	if flaps < 20 {
		t.Fatalf("only %d flaps exercised, want >= 20", flaps)
	}

	st := fn.f.Status()
	if st.LagRecords != 0 {
		t.Fatalf("final lag %d records, want 0", st.LagRecords)
	}
	if metrics.Resyncs.Value() == 0 || st.Resyncs == 0 {
		t.Fatalf("repl_resyncs_total = %d (status %d), want > 0 after torn-frame injection",
			metrics.Resyncs.Value(), st.Resyncs)
	}
	if metrics.Reconnects.Value() == 0 || st.Reconnects == 0 {
		t.Fatalf("repl_reconnects_total = %d (status %d), want > 0 after %d flaps",
			metrics.Reconnects.Value(), st.Reconnects, flaps)
	}
	if metrics.Frames.Value() == 0 {
		t.Fatal("repl_frames_total never moved")
	}
	if lag := metrics.LagRecords.Value(); lag != 0 {
		t.Fatalf("repl_lag_records gauge %v, want 0", lag)
	}

	want, err := shardtest.Fingerprint(p, w.Objects)
	if err != nil {
		t.Fatal(err)
	}
	got, err := shardtest.Fingerprint(fn.engine, w.Objects)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("post-flap follower diverged:\n--- primary\n%s--- follower\n%s", want, got)
	}
}
