package repl_test

// Two-node conformance: drive the seeded shardtest workload through a
// primary node while a live follower tails its WAL, and require the
// follower's fingerprint to be byte-identical to both the primary's
// and the single-threaded core.System oracle's at EVERY barrier — at
// 1, 2, 4 and 8 shards.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/shard/shardtest"
)

func TestTwoNodeConformance(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			t.Parallel()
			w := shardtest.Workload{Seed: 1700 + int64(shards)}
			p := newPrimaryNode(t, shards)
			fn := newFollowerNode(t, shards, p.url(), nil)

			// The oracle replays the exact same months, one step behind,
			// inside each checkpoint.
			oracle, err := core.NewSystem(core.Config{})
			if err != nil {
				t.Fatal(err)
			}
			months := w.Generate()

			trace, err := shardtest.RunWithCheckpoints(p, w, func(m int) error {
				if err := oracle.SubmitAll(months[m].Ratings); err != nil {
					return err
				}
				if _, err := oracle.ProcessWindow(months[m].Start, months[m].End); err != nil {
					return err
				}
				fn.waitAligned(uint64(m+1), 10*time.Second)

				want, err := shardtest.Fingerprint(oracle, w.Objects)
				if err != nil {
					return err
				}
				gotPrimary, err := shardtest.Fingerprint(p, w.Objects)
				if err != nil {
					return err
				}
				gotFollower, err := shardtest.Fingerprint(fn.engine, w.Objects)
				if err != nil {
					return err
				}
				if gotPrimary != want {
					return fmt.Errorf("barrier %d: primary fingerprint diverged from oracle:\n--- oracle\n%s--- primary\n%s", m+1, want, gotPrimary)
				}
				if gotFollower != want {
					return fmt.Errorf("barrier %d: follower fingerprint diverged from oracle:\n--- oracle\n%s--- follower\n%s", m+1, want, gotFollower)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if trace == "" {
				t.Fatal("empty conformance trace")
			}

			// Status surfaces should agree on where we ended up.
			st := fn.f.Status()
			if st.BarrierSeq != uint64(len(months)) {
				t.Fatalf("follower barrier %d, want %d", st.BarrierSeq, len(months))
			}
			if st.LagRecords != 0 {
				t.Fatalf("follower lag %d records at quiescence", st.LagRecords)
			}
			if st.Epoch != 1 || st.Shards != shards {
				t.Fatalf("follower status epoch=%d shards=%d", st.Epoch, st.Shards)
			}
		})
	}
}

// TestFollowerBootstrapMidStream starts the follower only after the
// primary has already ingested and compacted — so bootstrap lands on a
// non-trivial snapshot and tailing starts from a mid-history cursor.
func TestFollowerBootstrapMidStream(t *testing.T) {
	w := shardtest.Workload{Seed: 99, Months: 4}
	p := newPrimaryNode(t, 4)
	months := w.Generate()

	// Two months ingested before the follower exists, plus a snapshot
	// cut so early segments can be compacted away.
	for m := 0; m < 2; m++ {
		if err := p.SubmitAll(months[m].Ratings); err != nil {
			t.Fatal(err)
		}
		if _, err := p.ProcessWindow(months[m].Start, months[m].End); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Snapshot(); err != nil {
		t.Fatal(err)
	}

	fn := newFollowerNode(t, 4, p.url(), nil)
	fn.waitAligned(2, 10*time.Second)

	for m := 2; m < 4; m++ {
		if err := p.SubmitAll(months[m].Ratings); err != nil {
			t.Fatal(err)
		}
		if _, err := p.ProcessWindow(months[m].Start, months[m].End); err != nil {
			t.Fatal(err)
		}
	}
	fn.waitAligned(4, 10*time.Second)

	want, err := shardtest.Fingerprint(p, w.Objects)
	if err != nil {
		t.Fatal(err)
	}
	got, err := shardtest.Fingerprint(fn.engine, w.Objects)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("late-joining follower diverged:\n--- primary\n%s--- follower\n%s", want, got)
	}
}
