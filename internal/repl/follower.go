package repl

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/randx"
	"repro/internal/rating"
	"repro/internal/shard"
	"repro/internal/wal"
)

// FollowerConfig configures a replication follower.
type FollowerConfig struct {
	// PrimaryURL is the primary's base URL (no trailing slash needed).
	PrimaryURL string
	// Engine receives the replicated state. The follower owns its
	// mutations: nothing else may write to it while Run is active.
	Engine *shard.Engine
	// Client issues the HTTP requests; nil means a fresh client with
	// no overall timeout (streams long-poll; per-frame liveness is the
	// FrameTimeout watchdog's job).
	Client  *http.Client
	Metrics *Metrics
	// Seed drives the reconnect backoff jitter. Followers sharing a
	// seed still diverge per shard (and per follower via PrimaryURL
	// mixing is the caller's concern — pass distinct seeds).
	Seed int64
	// ReconnectMin/Max bound the decorrelated-jitter backoff between
	// failed connects (defaults 50ms / 5s).
	ReconnectMin time.Duration
	ReconnectMax time.Duration
	// FrameTimeout is the per-frame liveness watchdog: a stream that
	// goes silent this long (no frame, not even a heartbeat) is cut
	// and redialed (default 15s).
	FrameTimeout time.Duration
	// OnApply is called after a batch of ratings lands in the engine;
	// OnWindow after a maintenance window or (re-)bootstrap. The
	// serving layer hooks read-cache invalidation here. Nil is fine.
	OnApply  func(rs []rating.Rating)
	OnWindow func()
	// Warnf receives degradation warnings; nil discards.
	Warnf func(format string, args ...any)
	// Now is a test seam; nil means time.Now.
	Now func() time.Time
}

func (c FollowerConfig) withDefaults() FollowerConfig {
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.ReconnectMin == 0 {
		c.ReconnectMin = 50 * time.Millisecond
	}
	if c.ReconnectMax == 0 {
		c.ReconnectMax = 5 * time.Second
	}
	if c.FrameTimeout == 0 {
		c.FrameTimeout = 15 * time.Second
	}
	if c.Warnf == nil {
		c.Warnf = func(string, ...any) {}
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	c.Metrics = c.Metrics.orNoop()
	return c
}

var (
	errStopped = errors.New("repl: follower stopped")
	errResync  = errors.New("repl: stream resync")
	// errReset asks for a full snapshot re-bootstrap.
	errReset = errors.New("repl: re-bootstrap required")
)

// pendingBarrier is a maintenance barrier some shard streams have
// reached and others haven't. The last arriver applies the window.
type pendingBarrier struct {
	seq        uint64
	start, end float64
	arrived    []bool
	count      int
}

// Follower bootstraps from a primary's snapshot and tails its shard
// logs, keeping its Engine byte-identical to the primary's state at
// every barrier. Reads (Lag, Status) are safe concurrently with Run;
// Stop (or the Run context) ends replication, leaving the engine at
// the last applied batch — promotion then truncates to the last
// complete barrier simply because un-aligned pending barriers are
// dropped, never half-applied.
type Follower struct {
	cfg FollowerConfig

	mu          sync.Mutex
	cond        *sync.Cond
	started     bool
	stopped     bool
	reset       bool
	done        chan struct{}
	cancel      context.CancelFunc
	cancelRound context.CancelFunc

	// Replicated-state tracking, valid once bootstrapped.
	bootstrapped   bool
	epoch          int
	shards         int
	appliedBarrier uint64
	pending        *pendingBarrier
	base           []uint64     // primary appended count at bootstrap, per shard
	applied        []uint64     // records applied since bootstrap, per shard
	total          []uint64     // latest primary appended count seen, per shard
	curs           []wal.Cursor // resume cursors, per shard
	syncTS         []float64    // primary clock of the state we reflect, per shard
	lastContact    time.Time    // last successful read from the primary

	resyncs    uint64
	reconnects uint64
	bootstraps uint64
}

// NewFollower returns an idle follower; call Run to start replicating.
func NewFollower(cfg FollowerConfig) *Follower {
	f := &Follower{cfg: cfg.withDefaults(), done: make(chan struct{})}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// Run replicates until ctx is canceled or Stop is called. It returns
// nil on a clean stop; bootstrap failures are retried with backoff,
// never returned.
func (f *Follower) Run(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	f.mu.Lock()
	if f.started {
		f.mu.Unlock()
		return errors.New("repl: follower already running")
	}
	f.started = true
	f.cancel = cancel
	f.mu.Unlock()
	defer close(f.done)

	stop := context.AfterFunc(ctx, func() {
		f.mu.Lock()
		f.cond.Broadcast()
		f.mu.Unlock()
	})
	defer stop()

	backoff := newBackoff(randx.Derive(f.cfg.Seed, 1<<16), f.cfg.ReconnectMin, f.cfg.ReconnectMax)
	for {
		if f.isStopped() || ctx.Err() != nil {
			return nil
		}
		if err := f.bootstrap(ctx); err != nil {
			if ctx.Err() != nil {
				return nil
			}
			f.cfg.Warnf("repl: bootstrap from %s: %v", f.cfg.PrimaryURL, err)
			if !sleepCtx(ctx, backoff.next()) {
				return nil
			}
			continue
		}
		backoff.reset()

		// Each bootstrap round gets its own context so a reset request
		// (or Stop) wakes tailers blocked in a long-poll read.
		roundCtx, cancelRound := context.WithCancel(ctx)
		f.mu.Lock()
		shards := f.shards
		f.cancelRound = cancelRound
		f.mu.Unlock()
		var wg sync.WaitGroup
		for i := 0; i < shards; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				f.tail(roundCtx, i)
			}(i)
		}
		wg.Wait()
		cancelRound()
		// All tailers exited: stop, context, or a reset request. The
		// loop re-bootstraps in the latter case.
	}
}

// Stop ends replication and waits for Run to return. Idempotent.
func (f *Follower) Stop() {
	f.mu.Lock()
	f.stopped = true
	started := f.started
	cancel := f.cancel
	f.cond.Broadcast()
	f.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	if started {
		<-f.done
	}
}

func (f *Follower) isStopped() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stopped
}

// requestReset asks every tailer to exit so Run re-bootstraps.
func (f *Follower) requestReset(why string, args ...any) {
	f.cfg.Warnf("repl: re-bootstrap: "+why, args...)
	f.mu.Lock()
	f.reset = true
	f.pending = nil
	cancelRound := f.cancelRound
	f.cond.Broadcast()
	f.mu.Unlock()
	if cancelRound != nil {
		cancelRound()
	}
}

func (f *Follower) url(pathAndQuery string) string {
	return f.cfg.PrimaryURL + pathAndQuery
}

// bootstrap fetches a fresh verified snapshot set and replaces the
// engine state with it via the same shard.Recover path local recovery
// uses.
func (f *Follower) bootstrap(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.url("/v1/repl/snapshot"), nil)
	if err != nil {
		return err
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("bootstrap status %d: %s", resp.StatusCode, body)
	}
	var boot api.ReplBootstrapResponse
	if err := json.NewDecoder(resp.Body).Decode(&boot); err != nil {
		return fmt.Errorf("bootstrap decode: %w", err)
	}
	if boot.Shards < 1 || len(boot.Snapshots) != boot.Shards {
		return fmt.Errorf("bootstrap shape: %d snapshots for %d shards", len(boot.Snapshots), boot.Shards)
	}

	// Verify every snapshot end-to-end before any of it touches the
	// engine: the trailing footer binds content, length and the lag
	// baseline together under one CRC32C.
	recovered := make([]shard.RecoveredShard, boot.Shards)
	base := make([]uint64, boot.Shards)
	curs := make([]wal.Cursor, boot.Shards)
	for _, s := range boot.Snapshots {
		if s.Shard < 0 || s.Shard >= boot.Shards {
			return fmt.Errorf("bootstrap shard %d out of range", s.Shard)
		}
		content, ft, present, err := wal.SplitSnapshotFooter(s.Data)
		if err != nil {
			return fmt.Errorf("shard %d snapshot verification: %w", s.Shard, err)
		}
		if !present {
			return fmt.Errorf("shard %d snapshot has no verification footer", s.Shard)
		}
		if ft.Records != s.Base {
			return fmt.Errorf("shard %d snapshot baseline %d != advertised %d", s.Shard, ft.Records, s.Base)
		}
		recovered[s.Shard] = shard.RecoveredShard{Snapshot: content}
		base[s.Shard] = ft.Records
		curs[s.Shard] = wal.Cursor{Seg: s.Seg}
	}
	stats, err := shard.Recover(f.cfg.Engine, recovered, f.cfg.Warnf)
	if err != nil {
		return fmt.Errorf("bootstrap recover: %w", err)
	}
	if want := boot.BarrierSeq + 1; stats.NextSeq != want {
		return fmt.Errorf("bootstrap barrier height %d != advertised %d", stats.NextSeq-1, boot.BarrierSeq)
	}

	now := f.cfg.Now()
	f.mu.Lock()
	f.bootstrapped = true
	f.reset = false
	f.epoch = boot.Epoch
	f.shards = boot.Shards
	f.appliedBarrier = boot.BarrierSeq
	f.pending = nil
	f.base = base
	f.applied = make([]uint64, boot.Shards)
	f.total = append([]uint64(nil), base...)
	f.curs = curs
	f.syncTS = make([]float64, boot.Shards)
	for i := range f.syncTS {
		f.syncTS[i] = boot.TS
	}
	f.lastContact = now
	f.bootstraps++
	f.mu.Unlock()
	f.cfg.Metrics.Bootstraps.Inc()
	if f.cfg.OnWindow != nil {
		f.cfg.OnWindow()
	}
	f.publishLag()
	return nil
}

// tail streams one shard log, reconnecting with decorrelated-jitter
// backoff, until stop/reset/context-end.
func (f *Follower) tail(ctx context.Context, shardIdx int) {
	backoff := newBackoff(randx.Derive(f.cfg.Seed, shardIdx), f.cfg.ReconnectMin, f.cfg.ReconnectMax)
	first := true
	for {
		f.mu.Lock()
		stop := f.stopped || f.reset
		cur := wal.Cursor{}
		epoch := 0
		if !stop {
			cur, epoch = f.curs[shardIdx], f.epoch
		}
		f.mu.Unlock()
		if stop || ctx.Err() != nil {
			return
		}
		err := f.streamOnce(ctx, shardIdx, epoch, cur, &first)
		switch {
		case ctx.Err() != nil || f.isStopped():
			return
		case errors.Is(err, errReset):
			f.requestReset("shard %d: %v", shardIdx, err)
			return
		case errors.Is(err, errStopped):
			return
		case errors.Is(err, errResync):
			// Torn frame / decode garbage: drop the connection and
			// re-request from the last verified cursor.
			f.mu.Lock()
			f.resyncs++
			f.mu.Unlock()
			f.cfg.Metrics.Resyncs.Inc()
		case err != nil:
			if !sleepCtx(ctx, backoff.next()) {
				return
			}
			continue
		}
		// Clean long-poll end (or resync): reconnect promptly.
		backoff.reset()
	}
}

// streamOnce runs a single stream request until it ends. A nil return
// is a clean long-poll end; errResync/errReset request recovery; any
// other error is a transport failure worth backing off from.
func (f *Follower) streamOnce(ctx context.Context, shardIdx, epoch int, cur wal.Cursor, first *bool) error {
	reqCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	u := fmt.Sprintf("%s/v1/repl/stream?shard=%d&epoch=%d&seg=%d&off=%d",
		f.cfg.PrimaryURL, shardIdx, epoch, cur.Seg, cur.Off)
	req, err := http.NewRequestWithContext(reqCtx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusConflict:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("%w: primary refused epoch %d", errReset, epoch)
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("stream status %d", resp.StatusCode)
	}
	if !*first {
		f.mu.Lock()
		f.reconnects++
		f.mu.Unlock()
		f.cfg.Metrics.Reconnects.Inc()
	}
	*first = false

	// Per-frame liveness watchdog: heartbeats arrive even on an idle
	// stream, so silence means a dead peer or a wedged connection.
	watchdog := time.AfterFunc(f.cfg.FrameTimeout, cancel)
	defer watchdog.Stop()

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 4<<20)
	for sc.Scan() {
		watchdog.Stop()
		line := sc.Bytes()
		if len(line) == 0 {
			watchdog.Reset(f.cfg.FrameTimeout)
			continue
		}
		var frame api.ReplFrame
		if err := json.Unmarshal(line, &frame); err != nil {
			return fmt.Errorf("%w: frame decode: %v", errResync, err)
		}
		if err := f.applyFrame(shardIdx, frame); err != nil {
			return err
		}
		watchdog.Reset(f.cfg.FrameTimeout)
	}
	if err := sc.Err(); err != nil && reqCtx.Err() != nil && ctx.Err() == nil {
		// The watchdog cut a silent stream; surface it as a transport
		// error so the tailer backs off and redials.
		return fmt.Errorf("stream silent past frame timeout")
	} else if err != nil {
		return err
	}
	return nil
}

// applyFrame applies one stream frame to the engine and the cursor
// bookkeeping. Barrier frames block until every shard stream aligns.
func (f *Follower) applyFrame(shardIdx int, frame api.ReplFrame) error {
	if frame.Shard != shardIdx {
		return fmt.Errorf("%w: frame for shard %d on stream %d", errResync, frame.Shard, shardIdx)
	}
	switch frame.Type {
	case api.FrameReset:
		return fmt.Errorf("%w: primary compacted past our cursor", errReset)
	case api.FrameRecords:
		rs := make([]rating.Rating, len(frame.Records))
		for i, p := range frame.Records {
			rs[i] = p.Rating()
		}
		if err := f.cfg.Engine.SubmitAll(rs); err != nil {
			// The engine refused replicated records: state may have
			// diverged, only a fresh snapshot reconciles it.
			return fmt.Errorf("%w: apply %d records: %v", errReset, len(rs), err)
		}
		if f.cfg.OnApply != nil {
			f.cfg.OnApply(rs)
		}
		if err := f.advance(shardIdx, frame, uint64(len(rs))); err != nil {
			return err
		}
	case api.FrameBarrier:
		if err := f.applyBarrier(shardIdx, frame); err != nil {
			return err
		}
		if err := f.advance(shardIdx, frame, 1); err != nil {
			return err
		}
	case api.FrameProcess:
		// A plain process window only exists in unsharded logs; with
		// several streams there is no alignment token, so bail.
		f.mu.Lock()
		single := f.shards == 1
		f.mu.Unlock()
		if !single {
			return fmt.Errorf("%w: process frame on %d-shard stream", errReset, frame.Shard)
		}
		if _, err := f.cfg.Engine.ProcessWindow(frame.Start, frame.End); err != nil {
			f.cfg.Warnf("repl: replicated window [%g,%g): %v", frame.Start, frame.End, err)
		}
		if f.cfg.OnWindow != nil {
			f.cfg.OnWindow()
		}
		if err := f.advance(shardIdx, frame, 1); err != nil {
			return err
		}
	case api.FrameSegment, api.FrameHeartbeat:
		if err := f.advance(shardIdx, frame, 0); err != nil {
			return err
		}
	default:
		return fmt.Errorf("%w: unknown frame type %q", errResync, frame.Type)
	}
	f.cfg.Metrics.Frames.Inc()
	return nil
}

// advance moves shardIdx's cursor past frame and refreshes the lag
// accounting.
func (f *Follower) advance(shardIdx int, frame api.ReplFrame, nApplied uint64) error {
	now := f.cfg.Now()
	f.mu.Lock()
	f.curs[shardIdx] = wal.Cursor{Seg: frame.Seg, Off: frame.Off}
	f.applied[shardIdx] += nApplied
	if frame.Total < f.total[shardIdx] {
		// The primary's appended counter went backwards: it restarted
		// (or we're talking to a different one). The state replicated
		// so far is still sound, but the lag baseline isn't; start over
		// from a fresh snapshot rather than serve unmeasurable lag.
		was := f.total[shardIdx]
		f.mu.Unlock()
		return fmt.Errorf("%w: primary appended count regressed %d -> %d",
			errReset, was, frame.Total)
	}
	f.total[shardIdx] = frame.Total
	if f.base[shardIdx]+f.applied[shardIdx] >= frame.Total {
		// Caught up as of this frame: the state we reflect is as fresh
		// as the primary's clock when it sent it.
		f.syncTS[shardIdx] = frame.TS
	}
	f.lastContact = now
	f.mu.Unlock()
	f.publishLag()
	return nil
}

// applyBarrier blocks shardIdx at barrier frame until every shard
// stream arrives, then the last arriver applies the window once.
func (f *Follower) applyBarrier(shardIdx int, frame api.ReplFrame) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.stopped || f.reset {
		return errStopped
	}
	if frame.Seq <= f.appliedBarrier {
		// Duplicate delivery after a resync replayed the barrier frame;
		// the window already ran.
		return nil
	}
	if frame.Seq != f.appliedBarrier+1 {
		return fmt.Errorf("%w: barrier %d after %d (gap)", errReset, frame.Seq, f.appliedBarrier)
	}
	if f.pending == nil {
		f.pending = &pendingBarrier{
			seq: frame.Seq, start: frame.Start, end: frame.End,
			arrived: make([]bool, f.shards),
		}
	} else if f.pending.seq != frame.Seq || f.pending.start != frame.Start || f.pending.end != frame.End {
		return fmt.Errorf("%w: barrier %d mismatch across shards", errReset, frame.Seq)
	}
	if !f.pending.arrived[shardIdx] {
		f.pending.arrived[shardIdx] = true
		f.pending.count++
	}
	if f.pending.count == f.shards {
		// Last arriver applies. Window errors degrade per-object inside
		// the engine; an outright failure is warned and skipped exactly
		// like local WAL replay does.
		if _, err := f.cfg.Engine.ProcessWindow(frame.Start, frame.End); err != nil {
			f.cfg.Warnf("repl: barrier %d window [%g,%g): %v", frame.Seq, frame.Start, frame.End, err)
		}
		f.appliedBarrier = frame.Seq
		f.pending = nil
		f.cond.Broadcast()
		if f.cfg.OnWindow != nil {
			f.cfg.OnWindow()
		}
		return nil
	}
	seq := frame.Seq
	for !f.stopped && !f.reset && f.appliedBarrier < seq {
		f.cond.Wait()
	}
	if f.appliedBarrier >= seq {
		return nil
	}
	// Stopped or reset while waiting: the pending barrier is dropped,
	// never half-applied — promotion truncates to the last complete
	// barrier by construction.
	return errStopped
}

// Lag returns the follower's staleness: records behind the primary
// and the wall-clock age (seconds) of the primary state it reflects.
// ok is false until the first successful bootstrap.
func (f *Follower) Lag() (records uint64, seconds float64, ok bool) {
	now := f.cfg.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lagLocked(now)
}

func (f *Follower) lagLocked(now time.Time) (records uint64, seconds float64, ok bool) {
	if !f.bootstrapped {
		return 0, 0, false
	}
	oldest := 0.0
	for i := range f.total {
		if have := f.base[i] + f.applied[i]; f.total[i] > have {
			records += f.total[i] - have
		}
		if i == 0 || f.syncTS[i] < oldest {
			oldest = f.syncTS[i]
		}
	}
	seconds = float64(now.UnixNano())/1e9 - oldest
	if seconds < 0 {
		seconds = 0
	}
	return records, seconds, true
}

func (f *Follower) publishLag() {
	now := f.cfg.Now()
	f.mu.Lock()
	records, seconds, ok := f.lagLocked(now)
	f.mu.Unlock()
	if ok {
		f.cfg.Metrics.LagRecords.Set(float64(records))
		f.cfg.Metrics.LagSeconds.Set(seconds)
	}
}

// LastContact returns when the follower last heard from the primary
// (zero time before the first bootstrap). The promote-on-death
// harness compares it against its deadline.
func (f *Follower) LastContact() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lastContact
}

// AppliedBarrier returns the last fully applied barrier sequence.
func (f *Follower) AppliedBarrier() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.appliedBarrier
}

// Epoch returns the primary epoch the follower replicated (0 before
// bootstrap).
func (f *Follower) Epoch() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch
}

// Status reports the follower's replication state.
func (f *Follower) Status() api.ReplStatusResponse {
	now := f.cfg.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	records, seconds, _ := f.lagLocked(now)
	resp := api.ReplStatusResponse{
		Role:       api.RoleFollower,
		Epoch:      f.epoch,
		Shards:     f.shards,
		BarrierSeq: f.appliedBarrier,
		Primary:    f.cfg.PrimaryURL,
		LagRecords: records,
		LagSeconds: seconds,
		Resyncs:    f.resyncs,
		Reconnects: f.reconnects,
	}
	for i := range f.curs {
		resp.Cursors = append(resp.Cursors, api.ReplCursor{
			Shard: i, Seg: f.curs[i].Seg, Off: f.curs[i].Off, Records: f.applied[i],
		})
	}
	return resp
}

// Promote stops replication and returns the barrier sequence the
// promoted journal should issue next. Any barrier that was pending
// (seen by some shards, not all) is dropped — the follower's state is
// exactly the last complete barrier plus fully-applied rating
// batches, so a new primary continues from a consistent point.
func (f *Follower) Promote() (nextBarrierSeq uint64) {
	f.Stop()
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.appliedBarrier + 1
}

// sleepCtx sleeps d or until ctx ends; it reports whether the full
// sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

// backoff is AWS-style decorrelated jitter: each delay is uniform in
// [min, 3*prev], capped. Two followers with different seeds draw
// divergent schedules, so a restarted primary isn't hit by a
// synchronized stampede.
type backoff struct {
	rng      *randx.Rand
	min, max time.Duration
	prev     time.Duration
}

func newBackoff(seed int64, min, max time.Duration) *backoff {
	return &backoff{rng: randx.New(seed), min: min, max: max}
}

func (b *backoff) next() time.Duration {
	if b.prev < b.min {
		b.prev = b.min
	}
	hi := 3 * b.prev
	if hi > b.max {
		hi = b.max
	}
	d := b.min
	if hi > b.min {
		d = time.Duration(b.rng.Uniform(float64(b.min), float64(hi)))
	}
	b.prev = d
	return d
}

func (b *backoff) reset() { b.prev = 0 }
