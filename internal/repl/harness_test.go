package repl_test

// Test harness: a miniature primary node — shard.Engine + per-shard
// WALs + a barrier-broadcasting journal mirroring cmd/ratingd's
// shardJournal — served over httptest, plus a follower wrapper and a
// byte-level flaky TCP proxy for the chaos suite.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rating"
	"repro/internal/repl"
	"repro/internal/shard"
	"repro/internal/wal"
)

type primaryNode struct {
	t      *testing.T
	engine *shard.Engine
	logs   []*wal.Log

	mu  sync.Mutex
	seq uint64 // next barrier sequence

	srv       *httptest.Server
	closeOnce sync.Once
}

func newPrimaryNode(t *testing.T, shards int) *primaryNode {
	t.Helper()
	engine, err := shard.NewEngine(core.Config{}, shards)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	dir := t.TempDir()
	logs := make([]*wal.Log, shards)
	for i := range logs {
		l, _, err := wal.Open(wal.Options{
			Dir:    filepath.Join(dir, fmt.Sprintf("shard-%04d", i)),
			Policy: wal.SyncNever,
		})
		if err != nil {
			t.Fatalf("wal %d: %v", i, err)
		}
		logs[i] = l
	}
	p := &primaryNode{t: t, engine: engine, logs: logs, seq: 1}
	rp := repl.NewPrimary(repl.PrimaryConfig{
		Epoch:     1,
		Logs:      logs,
		Journal:   p,
		LongPoll:  2 * time.Second,
		Poll:      time.Millisecond,
		Heartbeat: 20 * time.Millisecond,
	})
	mux := http.NewServeMux()
	rp.Routes(mux)
	p.srv = httptest.NewServer(mux)
	t.Cleanup(p.kill)
	return p
}

// kill abruptly severs every client connection and stops serving —
// the in-process stand-in for kill -9 of the primary's serving side.
func (p *primaryNode) kill() {
	p.closeOnce.Do(func() {
		p.srv.CloseClientConnections()
		p.srv.Close()
	})
}

func (p *primaryNode) url() string { return p.srv.URL }

// SubmitAll appends the batch to the shard logs, then applies it —
// the same [log, apply] atomicity shardJournal provides.
func (p *primaryNode) SubmitAll(rs []rating.Rating) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	groups := make([][]wal.Record, len(p.logs))
	for _, r := range rs {
		i := p.engine.ShardFor(r.Object)
		groups[i] = append(groups[i], wal.RatingRecord(r))
	}
	for i, recs := range groups {
		if len(recs) == 0 {
			continue
		}
		if err := p.logs[i].AppendAll(recs); err != nil {
			return err
		}
	}
	return p.engine.SubmitAll(rs)
}

// ProcessWindow broadcasts a barrier to every shard log, then runs
// the window.
func (p *primaryNode) ProcessWindow(start, end float64) (core.ProcessReport, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, l := range p.logs {
		if err := l.Append(wal.BarrierRecord(p.seq, start, end)); err != nil {
			return core.ProcessReport{}, err
		}
	}
	p.seq++
	return p.engine.ProcessWindow(start, end)
}

// Snapshot implements repl.Journal: rebase every shard log on the
// current state at the current barrier height.
func (p *primaryNode) Snapshot() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	barrier := p.seq - 1
	for i, l := range p.logs {
		i := i
		if err := l.Snapshot(func(w io.Writer) error {
			return shard.WriteShardSnapshot(p.engine, i, barrier, w)
		}); err != nil {
			return err
		}
	}
	return nil
}

func (p *primaryNode) NextBarrierSeq() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.seq
}

// shardtest.System delegation, so the conformance harness can drive
// the node directly.
func (p *primaryNode) Aggregate(obj rating.ObjectID) (core.AggregateResult, error) {
	return p.engine.Aggregate(obj)
}
func (p *primaryNode) TrustSnapshot() map[rating.RaterID]float64 { return p.engine.TrustSnapshot() }
func (p *primaryNode) MaliciousRaters() []rating.RaterID         { return p.engine.MaliciousRaters() }
func (p *primaryNode) Len() int                                  { return p.engine.Len() }

type followerNode struct {
	t       *testing.T
	engine  *shard.Engine
	f       *repl.Follower
	metrics *repl.Metrics
	runDone chan struct{}
}

func newFollowerNode(t *testing.T, shards int, primaryURL string, tweak func(*repl.FollowerConfig)) *followerNode {
	t.Helper()
	engine, err := shard.NewEngine(core.Config{}, shards)
	if err != nil {
		t.Fatalf("follower engine: %v", err)
	}
	cfg := repl.FollowerConfig{
		PrimaryURL:   primaryURL,
		Engine:       engine,
		Seed:         42,
		ReconnectMin: 2 * time.Millisecond,
		ReconnectMax: 40 * time.Millisecond,
		FrameTimeout: 3 * time.Second,
		Warnf:        t.Logf,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	fn := &followerNode{t: t, engine: engine, metrics: cfg.Metrics, runDone: make(chan struct{})}
	fn.f = repl.NewFollower(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		defer close(fn.runDone)
		if err := fn.f.Run(ctx); err != nil {
			t.Errorf("follower run: %v", err)
		}
	}()
	t.Cleanup(func() {
		fn.f.Stop()
		cancel()
		<-fn.runDone
	})
	return fn
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}

// waitAligned waits until the follower has applied barrier seq and
// reports zero record lag.
func (fn *followerNode) waitAligned(seq uint64, d time.Duration) {
	fn.t.Helper()
	waitFor(fn.t, d, fmt.Sprintf("follower at barrier %d with lag 0", seq), func() bool {
		if fn.f.AppliedBarrier() != seq {
			return false
		}
		records, _, ok := fn.f.Lag()
		return ok && records == 0
	})
}

// chaosFrontend sits between follower and primary as an HTTP reverse
// proxy with failure injection:
//   - sever() abruptly kills every in-flight connection (a network
//     flap: streams die mid-chunk with an unexpected EOF);
//   - armGarble() makes the next stream request serve one torn NDJSON
//     frame and end — the follower must reject it and resync;
//   - snapLimit truncates snapshot responses after n bytes — the
//     kill-mid-bootstrap injection.
type chaosFrontend struct {
	t      *testing.T
	target string
	rp     *httputil.ReverseProxy
	srv    *httptest.Server

	garble    atomic.Bool
	snapLimit atomic.Int64
	snapCuts  atomic.Int64
	garbles   atomic.Int64
}

func newChaosFrontend(t *testing.T, targetURL string) *chaosFrontend {
	t.Helper()
	u, err := url.Parse(targetURL)
	if err != nil {
		t.Fatalf("frontend target: %v", err)
	}
	c := &chaosFrontend{t: t, target: targetURL}
	c.rp = httputil.NewSingleHostReverseProxy(u)
	c.rp.FlushInterval = -1                                                // stream frames through immediately
	c.rp.ErrorHandler = func(http.ResponseWriter, *http.Request, error) {} // severed conns are expected
	c.srv = httptest.NewServer(http.HandlerFunc(c.handle))
	t.Cleanup(c.srv.Close)
	return c
}

func (c *chaosFrontend) url() string { return c.srv.URL }

func (c *chaosFrontend) handle(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/repl/stream" && c.garble.CompareAndSwap(true, false) {
		c.garbles.Add(1)
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, `{"type":"records","shard":0,"records":[{"TORN`+"\n")
		return
	}
	if n := c.snapLimit.Load(); n > 0 && r.URL.Path == "/v1/repl/snapshot" {
		c.snapCuts.Add(1)
		resp, err := http.Get(c.target + r.URL.Path)
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		_, _ = io.CopyN(w, resp.Body, n)
		panic(http.ErrAbortHandler) // truncate: no terminal chunk reaches the client
	}
	c.rp.ServeHTTP(w, r)
}

// armGarble makes the next stream request serve a torn frame.
func (c *chaosFrontend) armGarble() { c.garble.Store(true) }

// sever kills every in-flight follower connection.
func (c *chaosFrontend) sever() { c.srv.CloseClientConnections() }
