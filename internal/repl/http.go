package repl

import (
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/api"
	"repro/internal/wal"
)

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, api.NewError(code, "%s", msg))
}

func isSegmentGone(err error) bool { return errors.Is(err, wal.ErrSegmentGone) }

// frameWriter writes NDJSON frames and flushes each one, so a
// long-poll client sees frames as they happen rather than at the
// response's end.
type frameWriter struct {
	enc     *json.Encoder
	flusher http.Flusher
}

func newFrameWriter(w http.ResponseWriter, f http.Flusher) *frameWriter {
	return &frameWriter{enc: json.NewEncoder(w), flusher: f}
}

func (fw *frameWriter) write(frame api.ReplFrame) error {
	if err := fw.enc.Encode(frame); err != nil {
		return err
	}
	if fw.flusher != nil {
		fw.flusher.Flush()
	}
	return nil
}
