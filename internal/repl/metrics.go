package repl

import "repro/internal/telemetry"

// Metrics is the replication telemetry surface. All fields are
// nil-tolerant (telemetry's no-op behavior), so a nil *Metrics or a
// nil registry disables instrumentation without branches.
type Metrics struct {
	// Follower side.
	LagRecords *telemetry.Gauge   // repl_lag_records
	LagSeconds *telemetry.Gauge   // repl_lag_seconds
	Frames     *telemetry.Counter // repl_frames_total
	Resyncs    *telemetry.Counter // repl_resyncs_total
	Reconnects *telemetry.Counter // repl_reconnects_total
	Bootstraps *telemetry.Counter // repl_bootstraps_total

	// Primary side.
	Streams       *telemetry.Counter // repl_streams_total
	StreamRecords *telemetry.Counter // repl_stream_records_total
	SnapshotsSent *telemetry.Counter // repl_snapshots_sent_total
}

// NewMetrics registers the replication metrics on reg (nil reg means
// a fully no-op Metrics).
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		LagRecords: reg.Gauge("repl_lag_records",
			"Follower replication lag in records behind the primary."),
		LagSeconds: reg.Gauge("repl_lag_seconds",
			"Wall-clock age in seconds of the primary state this follower reflects."),
		Frames: reg.Counter("repl_frames_total",
			"Replication stream frames applied by this follower."),
		Resyncs: reg.Counter("repl_resyncs_total",
			"Torn-frame or decode resyncs: the follower dropped a stream and re-requested from its last verified cursor."),
		Reconnects: reg.Counter("repl_reconnects_total",
			"Replication stream connections established after the first."),
		Bootstraps: reg.Counter("repl_bootstraps_total",
			"Full snapshot bootstraps performed by this follower."),
		Streams: reg.Counter("repl_streams_total",
			"Replication stream requests served by this primary."),
		StreamRecords: reg.Counter("repl_stream_records_total",
			"WAL records shipped to followers by this primary."),
		SnapshotsSent: reg.Counter("repl_snapshots_sent_total",
			"Bootstrap snapshots served to followers by this primary."),
	}
}

// orNoop turns a nil *Metrics into a zero one whose nil counters and
// gauges are telemetry's no-ops, so callers never branch.
func (m *Metrics) orNoop() *Metrics {
	if m == nil {
		return &Metrics{}
	}
	return m
}
