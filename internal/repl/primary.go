// Package repl replicates a primary ratingd's write-ahead log to
// followers over the v1 wire contract.
//
// The primary ships the WAL as-is: followers read the same CRC32C
// frames recovery does, via long-poll NDJSON streams resumable at any
// (segment, offset) cursor (see api.ReplFrame for the frame
// vocabulary). A follower bootstraps from the primary's latest
// checksummed snapshot, then tails each shard log and applies records
// through the same shard.Recover/apply path local recovery uses — so
// its in-memory state is byte-identical to the primary's at every
// barrier. Promotion truncates to the last complete barrier and flips
// the follower into a primary through the existing epoch/manifest
// machinery (cmd/ratingd wires that part).
package repl

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/api"
	"repro/internal/wal"
)

// Journal is the primary-side coordination surface repl needs from
// the daemon's WAL journal: a way to cut a fresh verified snapshot
// (bootstrap) and the barrier height it reflects.
type Journal interface {
	// Snapshot rebases every shard log on the current state.
	Snapshot() error
	// NextBarrierSeq returns the sequence the next maintenance barrier
	// will carry; the last applied barrier is NextBarrierSeq()-1.
	NextBarrierSeq() uint64
}

// PrimaryConfig configures a replication primary.
type PrimaryConfig struct {
	// Epoch is the WAL manifest epoch being served; a follower cursor
	// from another epoch is refused (409) so it re-bootstraps.
	Epoch int
	// Logs are the per-shard WALs, indexed by shard.
	Logs []*wal.Log
	// Journal cuts bootstrap snapshots and reports barrier height.
	Journal Journal
	Metrics *Metrics
	// LongPoll bounds one stream response (default 20s); Poll is the
	// idle re-read interval (default 20ms); Heartbeat the idle frame
	// interval (default 3s); MaxBatch the records per frame (default
	// 512).
	LongPoll  time.Duration
	Poll      time.Duration
	Heartbeat time.Duration
	MaxBatch  int
	// Now is a test seam; nil means time.Now.
	Now func() time.Time
}

func (c PrimaryConfig) withDefaults() PrimaryConfig {
	if c.LongPoll == 0 {
		c.LongPoll = 20 * time.Second
	}
	if c.Poll == 0 {
		c.Poll = 20 * time.Millisecond
	}
	if c.Heartbeat == 0 {
		c.Heartbeat = 3 * time.Second
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 512
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	c.Metrics = c.Metrics.orNoop()
	return c
}

// Primary serves the replication endpoints over the daemon's WAL.
type Primary struct {
	cfg PrimaryConfig
}

// NewPrimary returns a Primary serving cfg's logs.
func NewPrimary(cfg PrimaryConfig) *Primary {
	return &Primary{cfg: cfg.withDefaults()}
}

// Routes mounts the replication endpoints on mux.
func (p *Primary) Routes(mux *http.ServeMux) {
	mux.HandleFunc("GET /v1/repl/stream", p.handleStream)
	mux.HandleFunc("GET /v1/repl/snapshot", p.handleSnapshot)
	mux.HandleFunc("GET /v1/repl/status", p.handleStatus)
}

// handleStatus reports the primary's epoch, barrier height and per-
// shard tail cursors.
func (p *Primary) handleStatus(w http.ResponseWriter, r *http.Request) {
	resp := api.ReplStatusResponse{
		Role:       api.RolePrimary,
		Epoch:      p.cfg.Epoch,
		Shards:     len(p.cfg.Logs),
		BarrierSeq: p.cfg.Journal.NextBarrierSeq() - 1,
	}
	for i, l := range p.cfg.Logs {
		tail := l.Tail()
		resp.Cursors = append(resp.Cursors, api.ReplCursor{
			Shard: i, Seg: tail.Seg, Off: tail.Off, Records: l.AppendedRecords(),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSnapshot cuts a fresh snapshot of every shard log and serves
// the raw (footer-verified) snapshot files. Cutting fresh — rather
// than serving whatever snapshot exists — is what makes the lag
// baseline sound: every record past the returned cursors was appended
// by this process and is counted by AppendedRecords.
func (p *Primary) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if err := p.cfg.Journal.Snapshot(); err != nil {
		writeErr(w, http.StatusServiceUnavailable, api.CodeUnavailable,
			fmt.Sprintf("snapshot for bootstrap: %v", err))
		return
	}
	resp := api.ReplBootstrapResponse{
		Epoch:      p.cfg.Epoch,
		Shards:     len(p.cfg.Logs),
		BarrierSeq: p.cfg.Journal.NextBarrierSeq() - 1,
		TS:         float64(p.cfg.Now().UnixNano()) / 1e9,
	}
	for i, l := range p.cfg.Logs {
		data, cur, ft, err := l.LatestSnapshot()
		if err != nil {
			writeErr(w, http.StatusServiceUnavailable, api.CodeUnavailable,
				fmt.Sprintf("shard %d snapshot: %v", i, err))
			return
		}
		resp.Snapshots = append(resp.Snapshots, api.ReplShardSnapshot{
			Shard: i, Seg: cur.Seg, Base: ft.Records, Data: data,
		})
	}
	p.cfg.Metrics.SnapshotsSent.Inc()
	writeJSON(w, http.StatusOK, resp)
}

// handleStream long-polls one shard log from a cursor, writing NDJSON
// ReplFrames. The response ends at the long-poll window (or client
// disconnect); the follower reconnects with the last frame's cursor.
func (p *Primary) handleStream(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	shard, err := strconv.Atoi(q.Get("shard"))
	if err != nil || shard < 0 || shard >= len(p.cfg.Logs) {
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest,
			fmt.Sprintf("shard %q out of range [0,%d)", q.Get("shard"), len(p.cfg.Logs)))
		return
	}
	epoch, err := strconv.Atoi(q.Get("epoch"))
	if err != nil || epoch != p.cfg.Epoch {
		writeErr(w, http.StatusConflict, api.CodeConflict,
			fmt.Sprintf("epoch %q != primary epoch %d; re-bootstrap", q.Get("epoch"), p.cfg.Epoch))
		return
	}
	seg, serr := strconv.Atoi(q.Get("seg"))
	off, oerr := strconv.ParseInt(q.Get("off"), 10, 64)
	if serr != nil || oerr != nil || seg < 0 || off < 0 {
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest,
			fmt.Sprintf("bad cursor seg=%q off=%q", q.Get("seg"), q.Get("off")))
		return
	}
	p.cfg.Metrics.Streams.Inc()

	log := p.cfg.Logs[shard]
	cur := wal.Cursor{Seg: seg, Off: off}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := newFrameWriter(w, flusher)

	ctx := r.Context()
	deadline := p.cfg.Now().Add(p.cfg.LongPoll)
	lastSent := p.cfg.Now()
	for {
		recs, next, rerr := log.ReadFrom(cur, p.cfg.MaxBatch)
		frame := api.ReplFrame{
			Shard: shard, Seg: next.Seg, Off: next.Off,
			Total: log.AppendedRecords(),
			TS:    float64(p.cfg.Now().UnixNano()) / 1e9,
		}
		switch {
		case rerr != nil:
			// ErrSegmentGone tells the follower to re-bootstrap; any
			// other error just ends the stream (the follower retries
			// from its cursor).
			if isSegmentGone(rerr) {
				frame.Type = api.FrameReset
				_ = enc.write(frame)
			}
			return
		case len(recs) > 0 && recs[0].Type == wal.TypeBarrier:
			frame.Type = api.FrameBarrier
			frame.Seq, frame.Start, frame.End = recs[0].Seq, recs[0].Start, recs[0].End
		case len(recs) > 0 && recs[0].Type == wal.TypeProcess:
			frame.Type = api.FrameProcess
			frame.Start, frame.End = recs[0].Start, recs[0].End
		case len(recs) > 0:
			frame.Type = api.FrameRecords
			frame.Records = make([]api.RatingPayload, len(recs))
			for i, rec := range recs {
				frame.Records[i] = api.RatingPayload{
					Rater:  int(rec.Rating.Rater),
					Object: int(rec.Rating.Object),
					Value:  rec.Rating.Value,
					Time:   rec.Rating.Time,
				}
			}
			p.cfg.Metrics.StreamRecords.Add(uint64(len(recs)))
		case next != cur:
			frame.Type = api.FrameSegment
		}
		if frame.Type != "" {
			if enc.write(frame) != nil {
				return
			}
			cur = next
			lastSent = p.cfg.Now()
			if ctx.Err() != nil {
				return
			}
			continue
		}
		// Idle: nothing past the cursor.
		now := p.cfg.Now()
		if now.After(deadline) {
			return
		}
		if now.Sub(lastSent) >= p.cfg.Heartbeat {
			frame.Type = api.FrameHeartbeat
			if enc.write(frame) != nil {
				return
			}
			lastSent = now
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(p.cfg.Poll):
		}
	}
}
