package server

import (
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/api"
)

// AdmissionConfig bounds the mutating routes' concurrency so overload
// degrades into prompt, typed 429s instead of a collapse of timed-out
// requests. The limiter is a semaphore plus a bounded wait queue:
//
//   - up to MaxConcurrent mutations execute simultaneously;
//   - up to MaxQueue more wait for a slot, but never longer than
//     MaxWait and never past the request's own deadline (a request
//     that cannot start in time is shed immediately — queueing work
//     that is doomed to miss its deadline only steals capacity from
//     requests that could still make theirs);
//   - everything else is shed on arrival with 429, a Retry-After
//     header, and an api.Error envelope carrying the same hint.
type AdmissionConfig struct {
	// MaxConcurrent is the number of mutating requests allowed to
	// execute at once. Zero disables admission control.
	MaxConcurrent int
	// MaxQueue is how many requests may wait for a slot beyond
	// MaxConcurrent. Zero means no queue: a busy server sheds
	// immediately.
	MaxQueue int
	// MaxWait bounds the time a queued request waits for a slot
	// before being shed. Zero means 250ms.
	MaxWait time.Duration
	// RetryAfter is the backoff hint attached to shed responses.
	// Zero derives it from MaxWait.
	RetryAfter time.Duration
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.MaxWait == 0 {
		c.MaxWait = 250 * time.Millisecond
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = 2 * c.MaxWait
	}
	return c
}

// admission is the runtime limiter. tokens is a buffered channel used
// as a semaphore; queue is a second semaphore bounding how many
// requests may block on tokens.
type admission struct {
	cfg    AdmissionConfig
	tokens chan struct{}
	queue  chan struct{}
}

func newAdmission(cfg AdmissionConfig) *admission {
	if cfg.MaxConcurrent <= 0 {
		return nil
	}
	cfg = cfg.withDefaults()
	a := &admission{
		cfg:    cfg,
		tokens: make(chan struct{}, cfg.MaxConcurrent),
		queue:  make(chan struct{}, cfg.MaxQueue),
	}
	for i := 0; i < cfg.MaxConcurrent; i++ {
		a.tokens <- struct{}{}
	}
	return a
}

// admissionResult classifies one admission attempt for telemetry.
type admissionResult string

const (
	admitted      admissionResult = "admitted"
	shedQueueFull admissionResult = "queue_full"
	shedTimeout   admissionResult = "wait_timeout"
	shedDeadline  admissionResult = "deadline"
)

// acquire blocks until the request may execute or must be shed.
// release must be called exactly once when acquire admitted.
func (a *admission) acquire(r *http.Request) (admissionResult, time.Duration) {
	// Fast path: a free slot, no queueing.
	select {
	case <-a.tokens:
		return admitted, 0
	default:
	}

	// The wait budget is the configured bound, clipped to the time the
	// request has left. A request whose deadline is nearer than any
	// useful wait is shed now rather than queued to die.
	wait := a.cfg.MaxWait
	deadlineBound := false
	if dl, ok := r.Context().Deadline(); ok {
		left := time.Until(dl)
		if left < wait {
			wait, deadlineBound = left, true
		}
		if wait <= 0 {
			return shedDeadline, 0
		}
	}

	// Claim a queue slot; a full queue sheds immediately.
	select {
	case a.queue <- struct{}{}:
	default:
		return shedQueueFull, 0
	}
	defer func() { <-a.queue }()

	began := time.Now()
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-a.tokens:
		return admitted, time.Since(began)
	case <-r.Context().Done():
		return shedDeadline, time.Since(began)
	case <-timer.C:
		if deadlineBound {
			return shedDeadline, time.Since(began)
		}
		return shedTimeout, time.Since(began)
	}
}

func (a *admission) release() { a.tokens <- struct{}{} }

// QueueDepth reports how many requests are waiting for a slot.
func (a *admission) queueDepth() int {
	if a == nil {
		return 0
	}
	return len(a.queue)
}

// inflight reports how many admitted mutations are executing.
func (a *admission) inflightCount() int {
	if a == nil {
		return 0
	}
	return cap(a.tokens) - len(a.tokens)
}

// admit wraps a mutating handler with admission control. Without a
// limiter it returns the handler untouched.
func (s *Server) admit(h http.HandlerFunc) http.HandlerFunc {
	a := s.admission
	if a == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		result, waited := a.acquire(r)
		s.metrics.admission(string(result), waited)
		if result != admitted {
			retry := a.cfg.RetryAfter
			// Retry-After is whole seconds by spec; round up so the
			// header never promises an earlier retry than the envelope.
			w.Header().Set("Retry-After",
				strconv.Itoa(int(math.Ceil(retry.Seconds()))))
			writeEnvelope(w, r, http.StatusTooManyRequests,
				api.NewError(api.CodeOverloaded,
					"overloaded: mutation shed (%s)", result).
					WithRetryAfter(retry.Seconds()))
			return
		}
		defer a.release()
		h(w, r)
	}
}
