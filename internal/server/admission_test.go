package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/rating"
)

// slowJournal delays every submit, simulating a saturated durability
// path so admission control has something to protect.
type slowJournal struct {
	sys   Backend
	delay time.Duration

	applied atomic.Int64
}

func (j *slowJournal) SubmitAll(rs []rating.Rating) error {
	time.Sleep(j.delay)
	if err := j.sys.SubmitAll(rs); err != nil {
		return err
	}
	j.applied.Add(int64(len(rs)))
	return nil
}

func (j *slowJournal) ProcessWindow(start, end float64) (core.ProcessReport, error) {
	time.Sleep(j.delay)
	return j.sys.ProcessWindow(start, end)
}

func (j *slowJournal) Restore(r io.Reader) error { return j.sys.LoadSnapshot(r) }

func newAdmissionServer(t *testing.T, j *slowJournal, cfg AdmissionConfig) (*Server, *httptest.Server) {
	t.Helper()
	opts := []Option{WithAdmission(cfg)}
	if j != nil {
		opts = append(opts, WithJournal(j))
	}
	srv, err := New(core.Config{Detector: detector.Config{Threshold: 0.05}}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if j != nil {
		j.sys = srv.System()
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func postRating(t *testing.T, ts *httptest.Server, rater int) *http.Response {
	t.Helper()
	body := `[{"rater":` + strconv.Itoa(rater) + `,"object":1,"value":0.5,"time":1}]`
	res, err := ts.Client().Post(ts.URL+"/v1/ratings", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestAdmissionShedsWithTypedEnvelope saturates a single-slot server
// with no queue and checks the shed response end to end: status 429,
// whole-seconds Retry-After header, overloaded envelope with a
// retry_after hint.
func TestAdmissionShedsWithTypedEnvelope(t *testing.T) {
	j := &slowJournal{delay: 200 * time.Millisecond}
	_, ts := newAdmissionServer(t, j, AdmissionConfig{
		MaxConcurrent: 1,
		MaxQueue:      0,
		MaxWait:       10 * time.Millisecond,
		RetryAfter:    1500 * time.Millisecond,
	})

	// Occupy the only slot.
	done := make(chan struct{})
	go func() {
		defer close(done)
		res := postRating(t, ts, 1)
		res.Body.Close()
	}()
	time.Sleep(50 * time.Millisecond) // let the first request start applying

	res := postRating(t, ts, 2)
	defer res.Body.Close()
	<-done

	if res.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d", res.StatusCode)
	}
	if ra := res.Header.Get("Retry-After"); ra != "2" { // ceil(1.5s)
		t.Fatalf("Retry-After = %q", ra)
	}
	var env api.Error
	if err := json.NewDecoder(res.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if err := env.Validate(); err != nil {
		t.Fatalf("envelope invalid: %v (%+v)", err, env)
	}
	if env.Code != api.CodeOverloaded || env.RetryAfter != 1.5 {
		t.Fatalf("envelope = %+v", env)
	}
}

// TestAdmissionQueueAdmitsWithinWait: with a queue, a briefly-blocked
// request waits for a slot instead of shedding.
func TestAdmissionQueueAdmitsWithinWait(t *testing.T) {
	j := &slowJournal{delay: 30 * time.Millisecond}
	_, ts := newAdmissionServer(t, j, AdmissionConfig{
		MaxConcurrent: 1,
		MaxQueue:      4,
		MaxWait:       2 * time.Second,
	})
	var wg sync.WaitGroup
	codes := make([]int, 4)
	for i := range codes {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := postRating(t, ts, i+1)
			codes[i] = res.StatusCode
			res.Body.Close()
		}()
	}
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("request %d: status %d", i, c)
		}
	}
	if got := j.applied.Load(); got != 4 {
		t.Fatalf("applied %d of 4", got)
	}
}

// TestAdmissionDeadlineShed: a request whose context deadline has no
// room left is shed immediately, not queued to die.
func TestAdmissionDeadlineShed(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 4, MaxWait: time.Second})
	<-a.tokens // saturate

	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	req := httptest.NewRequest(http.MethodPost, "/v1/ratings", nil).WithContext(ctx)
	began := time.Now()
	result, _ := a.acquire(req)
	if result != shedDeadline {
		t.Fatalf("result = %v", result)
	}
	if waited := time.Since(began); waited > 100*time.Millisecond {
		t.Fatalf("deadline shed took %v", waited)
	}
}

// TestOverloadSoakShedsGracefully drives mutating traffic at roughly
// 4x the server's configured capacity and checks that overload
// degrades the way the design promises:
//
//   - every request resolves promptly as 200 or typed 429 — nobody is
//     parked past the admission wait bound (no deadline overruns);
//   - the shed fraction is substantial (the limiter, not luck, is
//     providing the protection);
//   - once the burst ends, queue depth and goroutine counts return to
//     baseline (nothing leaked);
//   - a retrying client honoring Retry-After converges: its mutation
//     lands despite arriving mid-overload.
func TestOverloadSoakShedsGracefully(t *testing.T) {
	const (
		slots   = 4
		queue   = 8
		workers = 32 // ≈4x the in-flight capacity of slots+queue
		perW    = 25
	)
	j := &slowJournal{delay: 3 * time.Millisecond}
	srv, ts := newAdmissionServer(t, j, AdmissionConfig{
		MaxConcurrent: slots,
		MaxQueue:      queue,
		MaxWait:       20 * time.Millisecond,
		RetryAfter:    50 * time.Millisecond,
	})

	baseGoroutines := runtime.NumGoroutine()

	var ok200, shed429, other atomic.Int64
	var slowest atomic.Int64 // ns of the slowest request
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				began := time.Now()
				res := postRating(t, ts, w*1000+i)
				el := time.Since(began)
				for {
					cur := slowest.Load()
					if int64(el) <= cur || slowest.CompareAndSwap(cur, int64(el)) {
						break
					}
				}
				switch res.StatusCode {
				case http.StatusOK:
					ok200.Add(1)
				case http.StatusTooManyRequests:
					shed429.Add(1)
					if res.Header.Get("Retry-After") == "" {
						t.Error("shed response missing Retry-After")
					}
					var env api.Error
					if err := json.NewDecoder(res.Body).Decode(&env); err != nil || env.Code != api.CodeOverloaded {
						t.Errorf("shed envelope: %+v err=%v", env, err)
					}
				default:
					other.Add(1)
				}
				res.Body.Close()
			}
		}()
	}
	wg.Wait()

	if other.Load() != 0 {
		t.Fatalf("unexpected statuses: %d", other.Load())
	}
	if shed429.Load() == 0 {
		t.Fatal("overload never shed — limiter not engaging")
	}
	if ok200.Load() == 0 {
		t.Fatal("overload starved every request — no goodput")
	}
	// Deadline-overrun guard: a request is either admitted (bounded by
	// the slow apply plus queueing) or shed within MaxWait. Allow wide
	// scheduler slack; catastrophic queueing would be seconds.
	if s := time.Duration(slowest.Load()); s > 2*time.Second {
		t.Fatalf("slowest request took %v", s)
	}

	// Drain: the limiter must return to empty and goroutines to baseline.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if srv.admission.queueDepth() == 0 && srv.admission.inflightCount() == 0 &&
			runtime.NumGoroutine() <= baseGoroutines+10 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if d := srv.admission.queueDepth(); d != 0 {
		t.Fatalf("queue depth %d after drain", d)
	}
	if f := srv.admission.inflightCount(); f != 0 {
		t.Fatalf("inflight %d after drain", f)
	}
	if g := runtime.NumGoroutine(); g > baseGoroutines+10 {
		t.Fatalf("goroutines grew: %d -> %d", baseGoroutines, g)
	}

	// Convergence: a retrying client that honors Retry-After lands its
	// mutation even if its first attempts hit the tail of the storm.
	rc := NewClient(ts.URL, ts.Client(), WithRetry(RetryPolicy{
		MaxAttempts: 8,
		BaseDelay:   5 * time.Millisecond,
		Seed:        1,
	}))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	n, err := rc.Submit(ctx, []RatingPayload{{Rater: 999999, Object: 2, Value: 0.5, Time: 9}})
	if err != nil || n != 1 {
		t.Fatalf("retrying client did not converge: n=%d err=%v", n, err)
	}
}

// TestClientHonorsRetryAfter pins the client side: a 429 with a hint
// must delay the retry by at least the hint, then succeed.
func TestClientHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	var firstRetryGap atomic.Int64
	var last atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		now := time.Now().UnixNano()
		if prev := last.Swap(now); n == 2 {
			firstRetryGap.Store(now - prev)
		}
		if n == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(&api.Error{
				Code: api.CodeOverloaded, Message: "busy", RetryAfter: 0.2,
			})
			return
		}
		_ = json.NewEncoder(w).Encode(SubmitResponse{Accepted: 1})
	})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)

	c := NewClient(ts.URL, ts.Client(), WithRetry(RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		Seed:        7,
	}))
	n, err := c.Submit(context.Background(), []RatingPayload{{Rater: 1, Object: 1, Value: 0.5, Time: 1}})
	if err != nil || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d", calls.Load())
	}
	// The envelope hint was 0.2s; the 1ms backoff alone would retry far
	// sooner. Require most of the hint to have elapsed.
	if gap := time.Duration(firstRetryGap.Load()); gap < 150*time.Millisecond {
		t.Fatalf("retry fired after %v, ignoring the 0.2s hint", gap)
	}
}
