package server

// The alerts endpoint: a long-poll push surface for the streaming
// detection path. The daemon installs an AlertSource (an adapter over
// shard.Streaming's alert log); clients read with
//
//	GET /v1/alerts?since=<seq>&wait=<seconds>
//
// and get every alert with Seq > since, blocking up to wait seconds
// for one to arrive. A timed-out poll is a 200 with an empty alerts
// array and the unchanged tail sequence — never an error — so clients
// loop on since=Next without special cases. Nodes without streaming
// detection answer 404 not_found; read replicas answer 421
// not_primary, because alerts reflect the primary's live detection
// state and are not replicated.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/api"
)

// alertsPath is the long-poll route; exempt from the whole-request
// timeout (a poll is legitimately open for its full wait budget).
const alertsPath = "/v1/alerts"

// maxAlertWait caps how long one poll may hold its connection; longer
// requested waits are clamped, and clients simply re-poll.
const maxAlertWait = 30 * time.Second

// AlertSource is the detection-alert feed a Server fronts. It is
// declared here — rather than importing the shard package — so the
// server stays backend-agnostic; cmd/ratingd adapts
// shard.Streaming's alert log to it.
type AlertSource interface {
	// Alerts returns the alerts with Seq > since and the log's tail
	// sequence.
	Alerts(since uint64) ([]api.Alert, uint64)
	// WaitAlerts is the blocking form: it waits up to wait (or until
	// ctx is done) for an alert newer than since. A timed-out wait
	// returns an empty slice and the unchanged tail.
	WaitAlerts(ctx context.Context, since uint64, wait time.Duration) ([]api.Alert, uint64)
}

// WithAlerts installs the detection-alert feed at construction.
func WithAlerts(src AlertSource) Option {
	return func(s *Server) { s.alerts = src }
}

// SetAlerts installs or clears (nil) the alert feed at runtime; the
// daemon calls it after enabling streaming detection on a recovered
// engine, and promotion can call it once a follower starts detecting.
func (s *Server) SetAlerts(src AlertSource) {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	s.alerts = src
}

func (s *Server) getAlerts() AlertSource {
	s.jmu.RLock()
	defer s.jmu.RUnlock()
	return s.alerts
}

func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	src := s.getAlerts()
	if src == nil {
		writeError(w, r, http.StatusNotFound,
			errors.New("streaming detection is not enabled on this node"))
		return
	}
	q := r.URL.Query()
	var since uint64
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, r, http.StatusBadRequest, fmt.Errorf("since %q: must be a non-negative integer", v))
			return
		}
		since = n
	}
	var wait time.Duration
	if v := q.Get("wait"); v != "" {
		secs, err := strconv.ParseFloat(v, 64)
		if err != nil || secs < 0 {
			writeError(w, r, http.StatusBadRequest, fmt.Errorf("wait %q: must be non-negative seconds", v))
			return
		}
		wait = time.Duration(secs * float64(time.Second))
		if wait > maxAlertWait {
			wait = maxAlertWait
		}
	}

	var alerts []api.Alert
	var next uint64
	if wait > 0 {
		alerts, next = src.WaitAlerts(r.Context(), since, wait)
	} else {
		alerts, next = src.Alerts(since)
	}
	if alerts == nil {
		alerts = []api.Alert{}
	}
	writeJSON(w, http.StatusOK, api.AlertsResponse{Alerts: alerts, Next: next})
}
