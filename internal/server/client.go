package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Client is a typed HTTP client for a Server. The zero value is not
// usable; call NewClient.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient builds a client for the service at base (e.g.
// "http://localhost:8080"). hc may be nil, in which case
// http.DefaultClient is used.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: base, hc: hc}
}

// APIError is a non-2xx response from the service.
type APIError struct {
	Status  int
	Message string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("server: status %d: %s", e.Status, e.Message)
}

// Submit sends a batch of ratings and returns how many were accepted.
func (c *Client) Submit(ctx context.Context, ratings []RatingPayload) (int, error) {
	var resp SubmitResponse
	if err := c.do(ctx, http.MethodPost, "/v1/ratings", ratings, &resp); err != nil {
		return 0, err
	}
	return resp.Accepted, nil
}

// Process runs one maintenance window.
func (c *Client) Process(ctx context.Context, start, end float64) (ProcessResponse, error) {
	var resp ProcessResponse
	err := c.do(ctx, http.MethodPost, "/v1/process", ProcessRequest{Start: start, End: end}, &resp)
	return resp, err
}

// Aggregate fetches one object's trust-weighted aggregate.
func (c *Client) Aggregate(ctx context.Context, object int) (AggregateResponse, error) {
	var resp AggregateResponse
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/objects/%d/aggregate", object), nil, &resp)
	return resp, err
}

// Trust fetches one rater's trust value.
func (c *Client) Trust(ctx context.Context, rater int) (float64, error) {
	var resp TrustResponse
	if err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/raters/%d/trust", rater), nil, &resp); err != nil {
		return 0, err
	}
	return resp.Trust, nil
}

// Malicious lists the raters currently flagged malicious.
func (c *Client) Malicious(ctx context.Context) ([]int, error) {
	var resp MaliciousResponse
	if err := c.do(ctx, http.MethodGet, "/v1/malicious", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Raters, nil
}

// Stats fetches the service's state summary.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var resp StatsResponse
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &resp)
	return resp, err
}

// Snapshot streams the service's full state into w.
func (c *Client) Snapshot(ctx context.Context, w io.Writer) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/snapshot", nil)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	res, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return decodeError(res)
	}
	if _, err := io.Copy(w, res.Body); err != nil {
		return fmt.Errorf("server: snapshot copy: %w", err)
	}
	return nil
}

// Restore replaces the service's state with the snapshot read from r.
func (c *Client) Restore(ctx context.Context, r io.Reader) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.base+"/v1/snapshot", r)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	res, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusNoContent {
		return decodeError(res)
	}
	return nil
}

// Healthy reports whether the service answers its liveness probe.
func (c *Client) Healthy(ctx context.Context) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return false
	}
	res, err := c.hc.Do(req)
	if err != nil {
		return false
	}
	defer res.Body.Close()
	return res.StatusCode == http.StatusOK
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var reader io.Reader
	if body != nil {
		payload, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("server: encode request: %w", err)
		}
		reader = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, reader)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	res, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	defer res.Body.Close()
	if res.StatusCode/100 != 2 {
		return decodeError(res)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(res.Body).Decode(out); err != nil {
		return fmt.Errorf("server: decode response: %w", err)
	}
	return nil
}

func decodeError(res *http.Response) error {
	var e ErrorResponse
	if err := json.NewDecoder(res.Body).Decode(&e); err != nil || e.Error == "" {
		return &APIError{Status: res.StatusCode, Message: res.Status}
	}
	return &APIError{Status: res.StatusCode, Message: e.Error}
}
