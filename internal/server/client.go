package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/randx"
)

// RetryPolicy configures idempotent retries. Retries fire only on
// transport errors and 5xx responses — never on 4xx, whose meaning a
// retry cannot change. Each logical call carries one X-Request-ID
// across all its attempts, so the server's idempotency cache
// deduplicates a re-sent mutation whose first response was lost.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries; values <= 1 disable
	// retrying.
	MaxAttempts int
	// BaseDelay is the minimum backoff before a retry; the
	// decorrelated-jitter schedule grows from it. Zero means 100ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Zero means 5s.
	MaxDelay time.Duration
	// Seed drives the jitter and the request-ID stream. Each Client
	// mixes a process-wide instance counter into it, so N clients
	// built from the same literal policy — a fleet of followers with
	// one config file — draw divergent schedules and never stampede a
	// recovering server in lockstep, while any single client remains
	// deterministic in (Seed, construction order).
	Seed int64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.BaseDelay == 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = 5 * time.Second
	}
	return p
}

// ClientOption customizes a Client.
type ClientOption func(*Client)

// clientInstance numbers Clients process-wide; WithRetry derives each
// client's RNG from (policy seed, instance number) so same-seed
// clients don't share a jitter stream (or a request-ID stream, which
// would collide in the server's idempotency cache).
var clientInstance atomic.Int64

// WithRetry enables idempotent retries under p.
func WithRetry(p RetryPolicy) ClientOption {
	return func(c *Client) {
		c.retry = p.withDefaults()
		c.rng = randx.New(randx.Derive(p.Seed, int(clientInstance.Add(1))))
	}
}

// maxWrongNodeHops caps how many wrong_node redirects one logical
// call follows before surfacing the error: enough for one stale-table
// bounce plus a concurrent reassignment, small enough that two nodes
// pointing at each other fail fast instead of ping-ponging.
const maxWrongNodeHops = 3

// Client is a typed HTTP client for a Server. The zero value is not
// usable; call NewClient.
type Client struct {
	base   string
	hc     *http.Client
	retry  RetryPolicy
	header http.Header // extra headers on every request (epoch pinning)

	mu        sync.Mutex
	rng       *randx.Rand   // jitter + request IDs; nil when retries are off
	prevDelay time.Duration // decorrelated-jitter state (guarded by mu)
}

// WithHeader attaches a header to every request the client sends; a
// cluster router pins its routing-table epoch with
// WithHeader(api.ClusterEpochHeader, "<epoch>").
func WithHeader(key, value string) ClientOption {
	return func(c *Client) {
		if c.header == nil {
			c.header = make(http.Header)
		}
		c.header.Set(key, value)
	}
}

// NewClient builds a client for the service at base (e.g.
// "http://localhost:8080"). hc may be nil, in which case
// http.DefaultClient is used.
func NewClient(base string, hc *http.Client, opts ...ClientOption) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	c := &Client{base: base, hc: hc}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// nextRequestID draws a request ID from the seeded stream.
func (c *Client) nextRequestID() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return fmt.Sprintf("%016x%016x", uint64(c.rng.Int63()), uint64(c.rng.Int63()))
}

// backoff returns the pre-attempt delay: decorrelated jitter, each
// delay uniform in [BaseDelay, 3×previous] capped at MaxDelay. Unlike
// truncated exponential backoff, consecutive draws share no fixed
// grid, so clients that failed together spread out instead of
// re-colliding on the 2^n marks. retryN == 1 resets the schedule for
// a fresh logical call.
func (c *Client) backoff(retryN int) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	prev := c.prevDelay
	if retryN == 1 || prev < c.retry.BaseDelay {
		prev = c.retry.BaseDelay
	}
	hi := 3 * prev
	if hi > c.retry.MaxDelay || hi <= 0 {
		hi = c.retry.MaxDelay
	}
	d := c.retry.BaseDelay
	if hi > d {
		d = time.Duration(c.rng.Uniform(float64(d), float64(hi)))
	}
	c.prevDelay = d
	return d
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// APIError is a non-2xx response from the service, carrying the typed
// code from the api.Error envelope so callers branch on Code, not on
// message text or raw status.
type APIError struct {
	Status  int
	Code    string // api.Code* constant; empty for pre-envelope peers
	Message string
	// RetryAfter is the server's backoff hint on shed (429) responses;
	// zero when the server sent none.
	RetryAfter time.Duration
	// Owner is the owning node's base URL on wrong_node envelopes.
	Owner string
	// RequestID is the envelope's echoed X-Request-ID, attributing the
	// failure to one logical call across retries and cross-node hops.
	RequestID string
}

// Error implements error.
func (e *APIError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("server: status %d (%s): %s", e.Status, e.Code, e.Message)
	}
	return fmt.Sprintf("server: status %d: %s", e.Status, e.Message)
}

// Submit sends a batch of ratings and returns how many were accepted.
func (c *Client) Submit(ctx context.Context, ratings []RatingPayload) (int, error) {
	var resp SubmitResponse
	if err := c.do(ctx, http.MethodPost, "/v1/ratings", ratings, &resp); err != nil {
		return 0, err
	}
	return resp.Accepted, nil
}

// Process runs one maintenance window.
func (c *Client) Process(ctx context.Context, start, end float64) (ProcessResponse, error) {
	var resp ProcessResponse
	err := c.do(ctx, http.MethodPost, "/v1/process", ProcessRequest{Start: start, End: end}, &resp)
	return resp, err
}

// Aggregate fetches one object's trust-weighted aggregate.
func (c *Client) Aggregate(ctx context.Context, object int) (AggregateResponse, error) {
	var resp AggregateResponse
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/objects/%d/aggregate", object), nil, &resp)
	return resp, err
}

// Trust fetches one rater's trust value.
func (c *Client) Trust(ctx context.Context, rater int) (float64, error) {
	var resp TrustResponse
	if err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/raters/%d/trust", rater), nil, &resp); err != nil {
		return 0, err
	}
	return resp.Trust, nil
}

// Malicious lists the raters currently flagged malicious.
func (c *Client) Malicious(ctx context.Context) ([]int, error) {
	var resp MaliciousResponse
	if err := c.do(ctx, http.MethodGet, "/v1/malicious", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Raters, nil
}

// MaliciousPage lists one page of the flagged raters (ascending ID
// order). limit <= 0 means "from offset to the end". The response's
// Page field reports the pre-pagination total.
func (c *Client) MaliciousPage(ctx context.Context, offset, limit int) (MaliciousResponse, error) {
	q := url.Values{}
	q.Set("offset", strconv.Itoa(offset))
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	var resp MaliciousResponse
	err := c.do(ctx, http.MethodGet, "/v1/malicious?"+q.Encode(), nil, &resp)
	return resp, err
}

// MaliciousPointRange lists the flagged raters whose keyspace point
// falls in [lo, hi) — the disjoint slice a cluster router asks each
// member for before merging the ID-sorted results.
func (c *Client) MaliciousPointRange(ctx context.Context, lo uint32, hi uint64) (MaliciousResponse, error) {
	q := url.Values{}
	q.Set("point_lo", strconv.FormatUint(uint64(lo), 10))
	q.Set("point_hi", strconv.FormatUint(hi, 10))
	var resp MaliciousResponse
	err := c.do(ctx, http.MethodGet, "/v1/malicious?"+q.Encode(), nil, &resp)
	return resp, err
}

// Stats fetches the service's state summary.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var resp StatsResponse
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &resp)
	return resp, err
}

// StatsWithBounds fetches the state summary plus a trust distribution
// binned into the given ascending upper bounds (cumulative counts).
func (c *Client) StatsWithBounds(ctx context.Context, bounds []float64) (StatsResponse, error) {
	parts := make([]string, len(bounds))
	for i, b := range bounds {
		parts[i] = strconv.FormatFloat(b, 'g', -1, 64)
	}
	q := url.Values{}
	q.Set("bounds", strings.Join(parts, ","))
	var resp StatsResponse
	err := c.do(ctx, http.MethodGet, "/v1/stats?"+q.Encode(), nil, &resp)
	return resp, err
}

// SubmitStream bulk-ingests NDJSON-framed ratings from body (one
// RatingPayload object per line) and returns the server's terminal
// summary plus any per-line rejections. The stream is not retried or
// deduplicated — body is consumed once — so callers resume from
// summary.Lines after a failure rather than re-sending blindly. A
// summary carrying a terminal Code is surfaced as an *APIError
// alongside the partial results.
func (c *Client) SubmitStream(ctx context.Context, body io.Reader) (api.StreamSummary, []api.StreamLineError, error) {
	var summary api.StreamSummary
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/ratings:stream", body)
	if err != nil {
		return summary, nil, fmt.Errorf("server: %w", err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	res, err := c.hc.Do(req)
	if err != nil {
		return summary, nil, fmt.Errorf("server: %w", err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return summary, nil, decodeError(res)
	}

	// The response is NDJSON: zero or more line errors, then exactly
	// one summary (the line without a "line" field).
	var rejects []api.StreamLineError
	sawSummary := false
	sc := bufio.NewScanner(res.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Line int `json:"line"`
		}
		if json.Unmarshal(line, &probe) == nil && probe.Line > 0 {
			var le api.StreamLineError
			if err := json.Unmarshal(line, &le); err != nil {
				return summary, rejects, fmt.Errorf("server: decode stream line error: %w", err)
			}
			rejects = append(rejects, le)
			continue
		}
		if err := json.Unmarshal(line, &summary); err != nil {
			return summary, rejects, fmt.Errorf("server: decode stream summary: %w", err)
		}
		sawSummary = true
	}
	if err := sc.Err(); err != nil {
		return summary, rejects, fmt.Errorf("server: read stream response: %w", err)
	}
	if !sawSummary {
		return summary, rejects, fmt.Errorf("server: stream response ended without a summary")
	}
	if summary.Code != "" {
		return summary, rejects, &APIError{
			Status:     res.StatusCode,
			Code:       summary.Code,
			Message:    summary.Message,
			RetryAfter: time.Duration(summary.RetryAfter * float64(time.Second)),
		}
	}
	return summary, rejects, nil
}

// Snapshot streams the service's full state into w.
func (c *Client) Snapshot(ctx context.Context, w io.Writer) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/snapshot", nil)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	res, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return decodeError(res)
	}
	if _, err := io.Copy(w, res.Body); err != nil {
		return fmt.Errorf("server: snapshot copy: %w", err)
	}
	return nil
}

// Restore replaces the service's state with the snapshot read from r.
func (c *Client) Restore(ctx context.Context, r io.Reader) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.base+"/v1/snapshot", r)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	res, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusNoContent {
		return decodeError(res)
	}
	return nil
}

// Healthy reports whether the service answers its liveness probe.
func (c *Client) Healthy(ctx context.Context) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return false
	}
	res, err := c.hc.Do(req)
	if err != nil {
		return false
	}
	defer res.Body.Close()
	return res.StatusCode == http.StatusOK
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return fmt.Errorf("server: encode request: %w", err)
		}
	}
	attempts := c.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	// One request ID spans every attempt of this logical call, so a
	// retried mutation deduplicates server-side instead of
	// double-applying.
	reqID := ""
	if c.rng != nil && method != http.MethodGet {
		reqID = c.nextRequestID()
	}

	var lastErr error
	var hint time.Duration // server's Retry-After from the last shed
	base := c.base
	hops := 0 // wrong_node redirects followed for this logical call
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			delay := c.backoff(attempt)
			// A shed server knows its own recovery horizon better than
			// our exponential schedule: never retry before its hint.
			if hint > delay {
				delay = hint
			}
			hint = 0
			if err := sleepCtx(ctx, delay); err != nil {
				return fmt.Errorf("server: %w (last error: %v)", err, lastErr)
			}
		}
		var reader io.Reader
		if body != nil {
			reader = bytes.NewReader(payload)
		}
		req, err := http.NewRequestWithContext(ctx, method, base+path, reader)
		if err != nil {
			return fmt.Errorf("server: %w", err)
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if reqID != "" {
			req.Header.Set("X-Request-ID", reqID)
		}
		for k, vs := range c.header {
			req.Header[k] = vs
		}
		res, err := c.hc.Do(req)
		if err != nil {
			// Transport failure: retryable unless the context is done.
			lastErr = fmt.Errorf("server: %w", err)
			if ctx.Err() != nil {
				return lastErr
			}
			continue
		}
		// 5xx and 429 are the retryable failures: the request never
		// took effect (or deduplicates via the request ID if it did).
		if res.StatusCode >= 500 || res.StatusCode == http.StatusTooManyRequests {
			apiErr := decodeError(res)
			res.Body.Close()
			lastErr = apiErr
			hint = apiErr.RetryAfter
			continue
		}
		err = func() error {
			defer res.Body.Close()
			if res.StatusCode/100 != 2 {
				return decodeError(res)
			}
			if out == nil {
				return nil
			}
			if err := json.NewDecoder(res.Body).Decode(out); err != nil {
				return fmt.Errorf("server: decode response: %w", err)
			}
			return nil
		}()
		if apiErr, ok := err.(*APIError); ok && apiErr.Code == api.CodeWrongNode &&
			apiErr.Owner != "" && hops < maxWrongNodeHops {
			// The refusing node named the owner: re-issue there without
			// consuming a retry attempt. The hop cap keeps two nodes
			// with disagreeing tables from ping-ponging forever.
			base = strings.TrimSuffix(apiErr.Owner, "/")
			hops++
			attempt--
			continue
		}
		return err
	}
	return lastErr
}

// decodeError turns a non-2xx response into an *APIError. The body is
// expected to be an api.Error envelope; a legacy `{"error": "..."}`
// body (pre-envelope peers, fault-injecting test proxies) degrades to
// a code-less APIError, and anything else falls back to the status
// line.
func decodeError(res *http.Response) *APIError {
	body, _ := io.ReadAll(io.LimitReader(res.Body, 1<<20))
	var env api.Error
	if json.Unmarshal(body, &env) == nil && env.Code != "" {
		e := &APIError{
			Status:     res.StatusCode,
			Code:       env.Code,
			Message:    env.Message,
			RetryAfter: time.Duration(env.RetryAfter * float64(time.Second)),
			Owner:      env.Owner,
			RequestID:  env.RequestID,
		}
		if e.RetryAfter == 0 {
			e.RetryAfter = retryAfterHeader(res)
		}
		return e
	}
	var legacy struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &legacy) == nil && legacy.Error != "" {
		return &APIError{Status: res.StatusCode, Message: legacy.Error}
	}
	return &APIError{Status: res.StatusCode, Message: res.Status}
}

// retryAfterHeader parses a whole-seconds Retry-After header; HTTP
// dates (the header's other legal form) are not produced by this
// service and parse as zero.
func retryAfterHeader(res *http.Response) time.Duration {
	v := res.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}
