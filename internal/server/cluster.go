package server

// Cluster-member serving: a node in a partitioned cluster fronts the
// same Server as a standalone daemon, but installs a ClusterView that
// scopes it to its owned keyspace range. Requests for objects outside
// the range are refused with a typed 421 (wrong_node) envelope naming
// the owner — the typed client follows it, capped hops — and requests
// pinned to a different routing-table epoch (X-Cluster-Epoch) get a
// typed 409 (stale_epoch) instead of a silently misrouted answer.
// Maintenance windows are refused outright: a member scanning only its
// own range must never charge trust locally (trust is replicated
// cluster-wide), so windows run through the router's scan/apply
// orchestration (internal/cluster).

import (
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/api"
	"repro/internal/rating"
)

// ClusterView is the server's window onto cluster membership. It is
// declared here — rather than importing the cluster package — so the
// server stays free of a dependency cycle; internal/cluster.Member
// implements it.
type ClusterView interface {
	// Epoch is the routing table's version; requests pinning another
	// epoch are refused with stale_epoch.
	Epoch() uint64
	// OwnsObject reports whether this node owns the object's keyspace
	// point.
	OwnsObject(obj rating.ObjectID) bool
	// OwnerURL names the base URL of the node owning the object.
	OwnerURL(obj rating.ObjectID) string
	// Doc renders the membership document for GET /v1/cluster.
	Doc() api.ClusterResponse
}

// WithCluster scopes the server to a cluster member's keyspace range.
func WithCluster(view ClusterView) Option {
	return func(s *Server) { s.cluster = view }
}

// SetCluster installs or clears (nil) the cluster view at runtime.
func (s *Server) SetCluster(view ClusterView) {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	s.cluster = view
}

func (s *Server) getCluster() ClusterView {
	s.jmu.RLock()
	defer s.jmu.RUnlock()
	return s.cluster
}

// WithFeatures overrides the discovery document's feature flags; the
// daemon sets them once its optional subsystems are wired.
func WithFeatures(f api.DiscoveryFeatures) Option {
	return func(s *Server) { s.features = f }
}

// SetFeatures replaces the discovery feature flags at runtime
// (promotion and late streaming enablement change them).
func (s *Server) SetFeatures(f api.DiscoveryFeatures) {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	s.features = f
}

func (s *Server) getFeatures() api.DiscoveryFeatures {
	s.jmu.RLock()
	defer s.jmu.RUnlock()
	return s.features
}

// stampVersion marks every response with the contract major version,
// so clients can detect a surface change before decoding. It sits at
// the outermost layer: headers set here survive http.TimeoutHandler's
// 503 cut and the panic-recovery 500.
func stampVersion(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(api.VersionHeader, api.Version)
		next.ServeHTTP(w, r)
	})
}

// clusterGate enforces epoch pinning: a request carrying
// X-Cluster-Epoch on a cluster member must match the member's table
// or be refused with a typed 409, so a router holding a stale table
// never silently misroutes. With no cluster view installed the header
// is ignored (a standalone daemon has no epoch to disagree with).
func (s *Server) clusterGate(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		pinned := r.Header.Get(api.ClusterEpochHeader)
		if pinned == "" {
			next.ServeHTTP(w, r)
			return
		}
		view := s.getCluster()
		if view == nil {
			next.ServeHTTP(w, r)
			return
		}
		epoch, err := strconv.ParseUint(pinned, 10, 64)
		if err != nil {
			writeError(w, r, http.StatusBadRequest,
				fmt.Errorf("%s %q: must be a non-negative integer", api.ClusterEpochHeader, pinned))
			return
		}
		if have := view.Epoch(); epoch != have {
			writeEnvelope(w, r, http.StatusConflict, api.NewError(api.CodeStaleEpoch,
				"request pinned cluster epoch %d but this node's table is epoch %d; refresh from GET /v1/cluster",
				epoch, have))
			return
		}
		next.ServeHTTP(w, r)
	})
}

// checkOwnership refuses requests for objects outside the member's
// range with a typed wrong_node envelope naming the owner. A nil view
// (standalone daemon) owns everything. Returns false when the request
// was refused.
func (s *Server) checkOwnership(w http.ResponseWriter, r *http.Request, obj rating.ObjectID) bool {
	view := s.getCluster()
	if view == nil || view.OwnsObject(obj) {
		return true
	}
	writeEnvelope(w, r, http.StatusMisdirectedRequest,
		api.NewError(api.CodeWrongNode,
			"object %d is owned by another node", obj).
			WithOwner(view.OwnerURL(obj)))
	return false
}

// handleCluster serves the membership document. On a standalone
// daemon the route exists (it is part of v1) but answers not_found.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	view := s.getCluster()
	if view == nil {
		writeErrorCode(w, r, http.StatusNotFound, api.CodeNotFound,
			fmt.Errorf("this node is not a cluster member"))
		return
	}
	writeJSON(w, http.StatusOK, view.Doc())
}

// v1Routes is the discovery document's route list — the full v1
// surface in registration order.
var v1Routes = []string{
	"GET /v1",
	"POST /v1/ratings",
	"POST /v1/ratings:stream",
	"POST /v1/process",
	"GET /v1/objects/{id}/aggregate",
	"GET /v1/raters/{id}/trust",
	"GET /v1/malicious",
	"GET /v1/stats",
	"GET /v1/alerts",
	"GET /v1/cluster",
	"GET /v1/snapshot",
	"PUT /v1/snapshot",
	"GET /healthz",
}

// handleDiscovery serves GET /v1: the contract version, the route
// list, this node's request limits, and its feature flags.
func (s *Server) handleDiscovery(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, api.DiscoveryResponse{
		Version: api.Version,
		Routes:  v1Routes,
		Limits: api.DiscoveryLimits{
			MaxBodyBytes:          s.maxBody,
			MaxStreamLineBytes:    maxStreamLineBytes,
			RequestTimeoutSeconds: s.reqTimeout.Seconds(),
		},
		Features: s.getFeatures(),
	})
}
