package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/rating"
	"repro/internal/repl"
	"repro/internal/trust"
	"repro/internal/wal"
)

var updateContract = flag.Bool("update", false, "rewrite contract fixtures instead of comparing")

// contractFixture is what each checked-in fixture holds: the status,
// the contract-relevant headers, and every JSON value in the body (one
// for ordinary responses, several for NDJSON streams). Bodies are
// stored re-indented, so a fixture diff reads as a field-level wire
// change.
type contractFixture struct {
	Status  int               `json:"status"`
	Headers map[string]string `json:"headers,omitempty"`
	Body    []json.RawMessage `json:"body"`
}

// faultBackend wraps the real backend with deterministic failure
// injection for the error-path fixtures.
type faultBackend struct {
	Backend
	aggregateErr error
	panicMsg     string
}

func (f *faultBackend) Aggregate(obj rating.ObjectID) (core.AggregateResult, error) {
	if f.panicMsg != "" {
		panic(f.panicMsg)
	}
	if f.aggregateErr != nil {
		return core.AggregateResult{}, f.aggregateErr
	}
	return f.Backend.Aggregate(obj)
}

// failingJournal refuses every mutation, producing the 503 envelope.
type failingJournal struct{}

func (failingJournal) SubmitAll([]rating.Rating) error { return errors.New("wal: no space left") }
func (failingJournal) ProcessWindow(float64, float64) (core.ProcessReport, error) {
	return core.ProcessReport{}, errors.New("wal: no space left")
}
func (failingJournal) Restore(io.Reader) error { return errors.New("wal: no space left") }

// contractSeed loads a fixed, deterministic state: a handful of honest
// ratings plus one constant-rating clique that the maintenance pass
// flags, so /v1/malicious and the trust distribution are non-trivial.
func contractSeed(t *testing.T, b Backend) {
	t.Helper()
	var rs []rating.Rating
	for i := 0; i < 10; i++ {
		rs = append(rs, rating.Rating{
			Rater: rating.RaterID(i + 1), Object: 1,
			Value: 0.4 + 0.02*float64(i), Time: float64(i),
		})
	}
	for i := 0; i < 20; i++ {
		rs = append(rs, rating.Rating{
			Rater: rating.RaterID(100 + i), Object: 2,
			Value: 0.95, Time: float64(i),
		})
	}
	if err := b.SubmitAll(rs); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ProcessWindow(0, 30); err != nil {
		t.Fatal(err)
	}
}

// checkFixture canonicalizes a live response against its checked-in
// fixture, and — for every non-2xx single-JSON body — validates the
// envelope against the api.Error contract.
func checkFixture(t *testing.T, name string, res *http.Response) {
	t.Helper()
	raw, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	fix := contractFixture{Status: res.StatusCode}
	addHeader := func(name string) {
		if v := res.Header.Get(name); v != "" {
			if fix.Headers == nil {
				fix.Headers = map[string]string{}
			}
			fix.Headers[name] = v
		}
	}
	addHeader("Retry-After")
	addHeader(ReplicaLagHeader)
	// Every v1 response advertises its contract version; capturing it
	// in each fixture makes a missing or changed stamp a contract
	// break, not a silent drift.
	addHeader(api.VersionHeader)
	for _, line := range bytes.Split(raw, []byte("\n")) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var v json.RawMessage
		if err := json.Unmarshal(line, &v); err != nil {
			t.Fatalf("%s: response line is not JSON: %q (%v)", name, line, err)
		}
		fix.Body = append(fix.Body, v)
	}

	// Envelope validation: every non-2xx body must be a closed-catalogue
	// api.Error.
	if res.StatusCode/100 != 2 {
		if len(fix.Body) != 1 {
			t.Fatalf("%s: error response carries %d JSON values", name, len(fix.Body))
		}
		var env api.Error
		dec := json.NewDecoder(bytes.NewReader(fix.Body[0]))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&env); err != nil {
			t.Fatalf("%s: error body is not an api.Error envelope: %v", name, err)
		}
		if err := env.Validate(); err != nil {
			t.Fatalf("%s: envelope invalid: %v (%+v)", name, err, env)
		}
	}

	got, err := json.MarshalIndent(fix, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "contract", name+".json")
	if *updateContract {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%s: %v (run `go test ./internal/server -run TestWireContract -update` after intentional wire changes)", name, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: wire contract drift.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestWireContract pins the v1 wire surface — success and every error
// code — to checked-in fixtures. A field rename, a dropped field, or a
// code change fails here before any client notices in production.
func TestWireContract(t *testing.T) {
	srv, err := New(core.Config{Detector: detector.Config{Threshold: 0.05}})
	if err != nil {
		t.Fatal(err)
	}
	contractSeed(t, srv.System())
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	get := func(path string) *http.Response {
		res, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	post := func(path, body string) *http.Response {
		res, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	checkFixture(t, "health", get("/healthz"))
	checkFixture(t, "discovery", get("/v1"))
	checkFixture(t, "cluster_not_member", get("/v1/cluster"))
	checkFixture(t, "submit_ok", post("/v1/ratings", `[{"rater":500,"object":1,"value":0.5,"time":40}]`))
	checkFixture(t, "submit_bad_request", post("/v1/ratings", `[{"rater":1,"object":1,"value":7,"time":0}]`))
	checkFixture(t, "process_ok", post("/v1/process", `{"start":0,"end":41}`))
	checkFixture(t, "process_bad_request", post("/v1/process", `{"start":10,"end":5}`))
	checkFixture(t, "aggregate_ok", get("/v1/objects/1/aggregate"))
	checkFixture(t, "aggregate_not_found", get("/v1/objects/404/aggregate"))
	checkFixture(t, "trust_ok", get("/v1/raters/1/trust"))
	checkFixture(t, "malicious_ok", get("/v1/malicious"))
	checkFixture(t, "malicious_page", get("/v1/malicious?offset=2&limit=3"))
	checkFixture(t, "malicious_bad_request", get("/v1/malicious?limit=-1"))
	checkFixture(t, "stats_ok", get("/v1/stats"))
	checkFixture(t, "stats_bounds", get("/v1/stats?bounds=0.25,0.5,0.75,1"))
	checkFixture(t, "stats_bad_request", get("/v1/stats?bounds=0.9,0.1"))
	checkFixture(t, "stream_reject", post("/v1/ratings:stream",
		"{\"rater\":600,\"object\":1,\"value\":0.5,\"time\":50}\n{\"rater\":601,\"object\":1,\"value\":9,\"time\":50}\n"))

	restoreReq, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/snapshot", strings.NewReader("not a snapshot"))
	if err != nil {
		t.Fatal(err)
	}
	restoreRes, err := ts.Client().Do(restoreReq)
	if err != nil {
		t.Fatal(err)
	}
	checkFixture(t, "restore_bad_request", restoreRes)

	// request_id attribution: any envelope for a request carrying
	// X-Request-Id echoes it back.
	ridReq, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/ratings",
		strings.NewReader(`[{"rater":1,"object":1,"value":7,"time":0}]`))
	if err != nil {
		t.Fatal(err)
	}
	ridReq.Header.Set("Content-Type", "application/json")
	ridReq.Header.Set(api.RequestIDHeader, "contract-rid-0001")
	ridRes, err := ts.Client().Do(ridReq)
	if err != nil {
		t.Fatal(err)
	}
	checkFixture(t, "submit_bad_request_request_id", ridRes)
}

// contractClusterView is a deterministic ClusterView for the cluster
// contract fixtures: a fixed two-node table that owns nothing locally,
// so ownership checks produce the wrong_node envelope.
type contractClusterView struct{}

func (contractClusterView) Epoch() uint64                   { return 7 }
func (contractClusterView) OwnsObject(rating.ObjectID) bool { return false }
func (contractClusterView) OwnerURL(rating.ObjectID) string { return "http://node2.example:8080" }
func (contractClusterView) Doc() api.ClusterResponse {
	return api.ClusterResponse{Epoch: 7, Nodes: []api.ClusterNode{
		{URL: "http://node1.example:8080", Lo: 0, Hi: 1 << 31, Status: "ok", WindowEnd: 30, Self: true},
		{URL: "http://node2.example:8080", Lo: 1 << 31, Hi: 1 << 32, Status: "ok", WindowEnd: 30},
	}}
}

// TestWireContractCluster pins the partitioned-serving surface: the
// membership document, the typed wrong_node refusal carrying the
// owner's URL, and the stale_epoch conflict for pinned requests.
func TestWireContractCluster(t *testing.T) {
	srv, err := New(core.Config{Detector: detector.Config{Threshold: 0.05}})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetCluster(contractClusterView{})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	res, err := ts.Client().Get(ts.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	checkFixture(t, "cluster_doc", res)

	res, err = ts.Client().Post(ts.URL+"/v1/ratings", "application/json",
		strings.NewReader(`[{"rater":1,"object":1,"value":0.5,"time":1}]`))
	if err != nil {
		t.Fatal(err)
	}
	checkFixture(t, "cluster_wrong_node", res)

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/stats", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(api.ClusterEpochHeader, "6")
	res, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	checkFixture(t, "cluster_stale_epoch", res)

	req, err = http.NewRequest(http.MethodGet, ts.URL+"/v1/stats", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(api.ClusterEpochHeader, "not-an-epoch")
	res, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	checkFixture(t, "cluster_bad_epoch", res)
}

// TestWireContractErrorPaths covers the envelopes that need induced
// faults: payload caps, journal refusal, overload shedding, handler
// panics, conflicts, and the timeout handler's static body.
func TestWireContractErrorPaths(t *testing.T) {
	t.Run("payload_too_large", func(t *testing.T) {
		srv, err := New(core.Config{Detector: detector.Config{Threshold: 0.05}}, WithMaxBodyBytes(64))
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		big := `[{"rater":1,"object":1,"value":0.5,"time":1},{"rater":2,"object":1,"value":0.5,"time":1}]`
		res, err := ts.Client().Post(ts.URL+"/v1/ratings", "application/json", strings.NewReader(big))
		if err != nil {
			t.Fatal(err)
		}
		checkFixture(t, "submit_payload_too_large", res)
	})

	t.Run("unavailable", func(t *testing.T) {
		srv, err := New(core.Config{Detector: detector.Config{Threshold: 0.05}}, WithJournal(failingJournal{}))
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		res, err := ts.Client().Post(ts.URL+"/v1/ratings", "application/json",
			strings.NewReader(`[{"rater":1,"object":1,"value":0.5,"time":1}]`))
		if err != nil {
			t.Fatal(err)
		}
		checkFixture(t, "submit_unavailable", res)
	})

	t.Run("overloaded", func(t *testing.T) {
		srv, err := New(core.Config{Detector: detector.Config{Threshold: 0.05}},
			WithAdmission(AdmissionConfig{MaxConcurrent: 1, MaxWait: 5 * time.Millisecond, RetryAfter: 2 * time.Second}))
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		<-srv.admission.tokens // saturate the only slot deterministically
		res, err := ts.Client().Post(ts.URL+"/v1/ratings", "application/json",
			strings.NewReader(`[{"rater":1,"object":1,"value":0.5,"time":1}]`))
		if err != nil {
			t.Fatal(err)
		}
		checkFixture(t, "submit_overloaded", res)
	})

	t.Run("stream_overloaded", func(t *testing.T) {
		// Per-batch admission on the stream route: a saturated limiter
		// sheds the first flush, ending the stream with an overloaded
		// summary that carries the retry hint in-band (the response is
		// already streaming, so there is no 429 status to put it on).
		srv, err := New(core.Config{Detector: detector.Config{Threshold: 0.05}},
			WithAdmission(AdmissionConfig{MaxConcurrent: 1, MaxWait: 5 * time.Millisecond, RetryAfter: 2 * time.Second}))
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		<-srv.admission.tokens // saturate the only slot deterministically
		res, err := ts.Client().Post(ts.URL+"/v1/ratings:stream", "application/x-ndjson",
			strings.NewReader("{\"rater\":1,\"object\":1,\"value\":0.5,\"time\":1}\n"))
		if err != nil {
			t.Fatal(err)
		}
		checkFixture(t, "stream_overloaded", res)
	})

	t.Run("conflict", func(t *testing.T) {
		base, err := core.NewSafeSystem(core.Config{Detector: detector.Config{Threshold: 0.05}})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := NewWith(&faultBackend{Backend: base, aggregateErr: trust.ErrNoTrustedRaters})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		res, err := ts.Client().Get(ts.URL + "/v1/objects/1/aggregate")
		if err != nil {
			t.Fatal(err)
		}
		checkFixture(t, "aggregate_conflict", res)
	})

	t.Run("internal", func(t *testing.T) {
		base, err := core.NewSafeSystem(core.Config{Detector: detector.Config{Threshold: 0.05}})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := NewWith(&faultBackend{Backend: base, panicMsg: "induced contract-test panic"})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		res, err := ts.Client().Get(ts.URL + "/v1/objects/1/aggregate")
		if err != nil {
			t.Fatal(err)
		}
		checkFixture(t, "aggregate_internal", res)
	})

	t.Run("timeout", func(t *testing.T) {
		// http.TimeoutHandler writes a static string; require it to be a
		// valid envelope and pin its bytes.
		var env api.Error
		dec := json.NewDecoder(strings.NewReader(timeoutBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&env); err != nil {
			t.Fatalf("timeoutBody is not an envelope: %v", err)
		}
		if err := env.Validate(); err != nil {
			t.Fatal(err)
		}
		if env.Code != api.CodeTimeout {
			t.Fatalf("timeoutBody code = %q", env.Code)
		}

		// End to end: a handler slower than the budget yields 503 with
		// that exact body.
		base, err := core.NewSafeSystem(core.Config{Detector: detector.Config{Threshold: 0.05}})
		if err != nil {
			t.Fatal(err)
		}
		slow := &slowJournal{sys: base, delay: 200 * time.Millisecond}
		srv, err := NewWith(base, WithJournal(slow), WithRequestTimeout(20*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		res, err := ts.Client().Post(ts.URL+"/v1/ratings", "application/json",
			strings.NewReader(`[{"rater":1,"object":1,"value":0.5,"time":1}]`))
		if err != nil {
			t.Fatal(err)
		}
		checkFixture(t, "submit_timeout", res)
	})
}

// stubAlerts is a deterministic AlertSource for the alerts fixtures:
// a fixed log whose wall times are pinned, so fixture bytes never
// drift with the clock.
type stubAlerts struct{ alerts []api.Alert }

func (s stubAlerts) Alerts(since uint64) ([]api.Alert, uint64) {
	next := uint64(len(s.alerts))
	if since >= next {
		return nil, next
	}
	return s.alerts[since:], next
}

func (s stubAlerts) WaitAlerts(ctx context.Context, since uint64, wait time.Duration) ([]api.Alert, uint64) {
	if out, next := s.Alerts(since); len(out) > 0 {
		return out, next
	}
	// The stub log never grows, so a poll past the tail always runs
	// out its (test-sized) wait budget — the timeout shape.
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
	_, next := s.Alerts(since)
	return nil, next
}

// TestWireContractAlerts pins the /v1/alerts long-poll surface: the
// populated read, the empty read, the timed-out poll (200 with an
// empty array, never an error), the 404 on nodes without streaming
// detection, and the 421 refusal on read replicas.
func TestWireContractAlerts(t *testing.T) {
	src := stubAlerts{alerts: []api.Alert{
		{Seq: 1, Rater: 103, Source: "stream", Suspicion: 0.41, FirstFlagged: 12.5, WallNS: 1700000000000000000},
		{Seq: 2, Rater: 107, Source: "collusion", Suspicion: 0.66, FirstFlagged: 19, WallNS: 1700000000250000000},
		{Seq: 3, Rater: 103, Source: "window", Suspicion: 0.05, FirstFlagged: 30, WallNS: 1700000000500000000},
	}}
	srv, err := New(core.Config{Detector: detector.Config{Threshold: 0.05}}, WithAlerts(src))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	get := func(path string) *http.Response {
		res, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	checkFixture(t, "alerts_ok", get("/v1/alerts"))
	checkFixture(t, "alerts_empty", get("/v1/alerts?since=3"))
	checkFixture(t, "alerts_timeout", get("/v1/alerts?since=3&wait=0.02"))
	checkFixture(t, "alerts_bad_request", get("/v1/alerts?wait=-1"))

	// No streaming detection on this node: the route exists but the
	// feed does not.
	bare, err := New(core.Config{Detector: detector.Config{Threshold: 0.05}})
	if err != nil {
		t.Fatal(err)
	}
	tsBare := httptest.NewServer(bare)
	t.Cleanup(tsBare.Close)
	res, err := tsBare.Client().Get(tsBare.URL + "/v1/alerts")
	if err != nil {
		t.Fatal(err)
	}
	checkFixture(t, "alerts_disabled", res)

	// Replicas refuse the read as misdirected even though it is a GET:
	// detection state lives on the primary.
	srv.SetReplica(func() ReplicaInfo {
		return ReplicaInfo{Primary: "http://primary.example:8080", Ready: true}
	})
	res, err = ts.Client().Get(ts.URL + "/v1/alerts")
	if err != nil {
		t.Fatal(err)
	}
	checkFixture(t, "alerts_not_primary", res)
}

// contractReplJournal is the minimal primary-side journal for the
// /v1/repl/status fixture: a fresh daemon at barrier height zero.
type contractReplJournal struct{}

func (contractReplJournal) Snapshot() error        { return nil }
func (contractReplJournal) NextBarrierSeq() uint64 { return 1 }

// TestWireContractReplica pins the replication serving surface: the
// not_primary write refusal, the replica_stale staleness refusal, the
// X-Replica-Lag header on fresh reads, and the primary's
// /v1/repl/status document.
func TestWireContractReplica(t *testing.T) {
	stale := ReplicaInfo{
		Primary: "http://primary.example:8080", Ready: true,
		LagRecords: 1200, LagSeconds: 9.25,
		MaxLagRecords: 1000, MaxLagSeconds: 30,
	}
	srv, err := New(core.Config{Detector: detector.Config{Threshold: 0.05}},
		WithReplica(func() ReplicaInfo { return stale }))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	res, err := ts.Client().Post(ts.URL+"/v1/ratings", "application/json",
		strings.NewReader(`[{"rater":1,"object":1,"value":0.5,"time":1}]`))
	if err != nil {
		t.Fatal(err)
	}
	checkFixture(t, "repl_not_primary", res)

	res, err = ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	checkFixture(t, "repl_replica_stale", res)

	// Within bounds, reads serve normally and still advertise their lag.
	fresh := stale
	fresh.LagRecords, fresh.LagSeconds = 0, 0.042
	srv.SetReplica(func() ReplicaInfo { return fresh })
	res, err = ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	checkFixture(t, "repl_read_fresh", res)

	// The primary's replication status document.
	log, _, err := wal.Open(wal.Options{Dir: filepath.Join(t.TempDir(), "wal"), Policy: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { log.Close() })
	mux := http.NewServeMux()
	repl.NewPrimary(repl.PrimaryConfig{
		Epoch: 1, Logs: []*wal.Log{log}, Journal: contractReplJournal{},
	}).Routes(mux)
	tsRepl := httptest.NewServer(mux)
	t.Cleanup(tsRepl.Close)
	res, err = tsRepl.Client().Get(tsRepl.URL + "/v1/repl/status")
	if err != nil {
		t.Fatal(err)
	}
	checkFixture(t, "repl_status", res)
}

// TestContractFixturesCoverCatalogue fails when an error code exists
// with no fixture pinning its wire shape, so new codes cannot ship
// untested.
func TestContractFixturesCoverCatalogue(t *testing.T) {
	if *updateContract {
		t.Skip("fixtures being rewritten")
	}
	covered := map[string]bool{}
	dir := filepath.Join("testdata", "contract")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		var fix contractFixture
		if err := json.Unmarshal(raw, &fix); err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		for _, body := range fix.Body {
			var env api.Error
			if json.Unmarshal(body, &env) == nil && env.Code != "" {
				covered[env.Code] = true
			}
		}
	}
	for _, code := range []string{
		api.CodeBadRequest, api.CodeNotFound, api.CodeConflict,
		api.CodePayloadTooLarge, api.CodeOverloaded, api.CodeTimeout,
		api.CodeUnavailable, api.CodeInternal,
		api.CodeReplicaStale, api.CodeNotPrimary,
		api.CodeWrongNode, api.CodeStaleEpoch,
	} {
		if !covered[code] {
			t.Errorf("error code %q has no contract fixture", code)
		}
	}
}
