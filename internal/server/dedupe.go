package server

import (
	"bytes"
	"fmt"
	"net/http"
	"sync"
)

// dedupeCache makes mutating endpoints idempotent: a request carrying
// an X-Request-ID header executes at most once, and retries of the
// same ID replay the recorded response instead of re-applying the
// mutation. This is what lets the retrying client re-send a rating
// batch after a lost response without double-counting it.
//
// Responses with 5xx status are deliberately not cached: they mean the
// attempt failed (e.g. the journal was unavailable), so the retry must
// re-execute, not replay the failure.
type dedupeCache struct {
	mu      sync.Mutex
	entries map[string]*dedupeEntry
	order   []string // FIFO eviction
	cap     int
}

type dedupeEntry struct {
	done        chan struct{} // closed when the first execution finishes
	status      int
	contentType string
	body        []byte
}

func newDedupeCache(capacity int) *dedupeCache {
	return &dedupeCache{entries: make(map[string]*dedupeEntry), cap: capacity}
}

// begin registers id. The first caller becomes the leader (executes
// the request); later callers get the same entry to wait on.
func (c *dedupeCache) begin(id string) (e *dedupeEntry, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[id]; ok {
		return e, false
	}
	e = &dedupeEntry{done: make(chan struct{})}
	c.entries[id] = e
	c.order = append(c.order, id)
	for len(c.order) > c.cap {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
	return e, true
}

// finish records the leader's response and wakes waiters. Failed
// attempts (5xx) are forgotten so a retry re-executes.
func (c *dedupeCache) finish(id string, e *dedupeEntry, status int, contentType string, body []byte) {
	c.mu.Lock()
	e.status = status
	e.contentType = contentType
	e.body = body
	if status >= 500 {
		delete(c.entries, id)
	}
	c.mu.Unlock()
	close(e.done)
}

// abort forgets id after a leader panic; waiters see a zero status.
func (c *dedupeCache) abort(id string, e *dedupeEntry) {
	c.mu.Lock()
	delete(c.entries, id)
	c.mu.Unlock()
	close(e.done)
}

// responseRecorder buffers a handler's response so it can be both sent
// and cached.
type responseRecorder struct {
	header http.Header
	status int
	buf    bytes.Buffer
}

func newResponseRecorder() *responseRecorder {
	return &responseRecorder{header: make(http.Header)}
}

func (r *responseRecorder) Header() http.Header { return r.header }

func (r *responseRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
}

func (r *responseRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.buf.Write(p)
}

// idempotent wraps a mutating handler with request-ID deduplication.
// Requests without an X-Request-ID pass straight through.
func (s *Server) idempotent(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" || s.dedupe == nil {
			h(w, r)
			return
		}
		w.Header().Set("X-Request-ID", id)
		e, leader := s.dedupe.begin(id)
		if leader {
			s.metrics.dedupeMiss()
		} else {
			s.metrics.dedupeHit()
		}
		if !leader {
			select {
			case <-e.done:
			case <-r.Context().Done():
				writeError(w, r, http.StatusServiceUnavailable,
					fmt.Errorf("duplicate of in-flight request %s: %w", id, r.Context().Err()))
				return
			}
			if e.status == 0 { // leader aborted
				writeError(w, r, http.StatusServiceUnavailable,
					fmt.Errorf("original request %s aborted; retry", id))
				return
			}
			w.Header().Set("X-Request-Replayed", "true")
			if e.contentType != "" {
				w.Header().Set("Content-Type", e.contentType)
			}
			w.WriteHeader(e.status)
			_, _ = w.Write(e.body)
			return
		}

		rec := newResponseRecorder()
		finished := false
		defer func() {
			if !finished {
				s.dedupe.abort(id, e)
			}
		}()
		h(rec, r)
		finished = true
		body := append([]byte(nil), rec.buf.Bytes()...)
		s.dedupe.finish(id, e, rec.status, rec.header.Get("Content-Type"), body)

		if ct := rec.header.Get("Content-Type"); ct != "" {
			w.Header().Set("Content-Type", ct)
		}
		w.WriteHeader(rec.status)
		_, _ = w.Write(body)
	}
}
