package server_test

// The error catalogue is closed: every envelope a handler emits is
// constructed through api.NewError (which panics on codes outside the
// catalogue), never via raw http.Error or an ad-hoc &api.Error{...}
// literal. This test greps the handler-bearing packages so a new
// endpoint cannot quietly invent an out-of-catalogue error shape.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// handlerPackages are the directories (relative to the repo root) that
// write HTTP error responses.
var handlerPackages = []string{
	"internal/server",
	"internal/repl",
	"internal/cluster",
	"cmd/ratingd",
}

// forbidden are constructions that bypass the catalogue. http.Error
// writes text/plain with no envelope; an &api.Error literal skips
// NewError's closed-code check.
var forbidden = []string{
	"http.Error(",
	"&api.Error{",
}

func TestHandlersConstructErrorsViaCatalogue(t *testing.T) {
	root := "../.."
	for _, pkg := range handlerPackages {
		entries, err := os.ReadDir(filepath.Join(root, pkg))
		if err != nil {
			t.Fatalf("%s: %v", pkg, err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(root, pkg, name)
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(src), "\n") {
				trimmed := strings.TrimSpace(line)
				if strings.HasPrefix(trimmed, "//") {
					continue
				}
				for _, f := range forbidden {
					if strings.Contains(line, f) {
						t.Errorf("%s/%s:%d: %s bypasses the error catalogue; construct envelopes with api.NewError",
							pkg, name, i+1, f)
					}
				}
			}
		}
	}
}
