package server

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/core"
)

// FuzzStreamNDJSON throws arbitrary byte streams at the bulk-ingest
// endpoint. The framing contract under hostile input: never a panic,
// always HTTP 200 (stream errors are in-band), a response that is
// valid NDJSON, and a final line that parses as a StreamSummary whose
// accounting is consistent (rejected plus accepted never exceeds the
// examined line count).
func FuzzStreamNDJSON(f *testing.F) {
	f.Add("")
	f.Add("\n\n\n")
	f.Add(`{"rater":1,"object":42,"value":0.8,"time":3.5}`)
	f.Add("{\"rater\":1,\"object\":42,\"value\":0.8,\"time\":3.5}\n{\"rater\":2,\"object\":42,\"value\":0.6,\"time\":4}\n")
	f.Add("{\"rater\":1,\"object\":1,\"value\":0.5,\"time\":1}\r\nnot json\r\n")
	f.Add(`{"rater":1e999,"object":1,"value":0.5,"time":1}`)
	f.Add(`{"rater":1,"object":1,"value":5,"time":1}`)
	f.Add(`{"rater":1,"object":1,"value":0.5,"time":1,"extra":2}`)
	f.Add(`[{"rater":1}]`)
	f.Add("\x00\xff\xfe\n\x01\x02")
	f.Add("{\"rater\":1,\"object\":1,\"value\":0.5,\"time\":1}\n{")
	f.Add(`{"value":0.30000000000000004,"time":1e-22}`)
	f.Add(strings.Repeat(`{"rater":3,"object":2,"value":0.25,"time":2}`+"\n", 40))

	srv, err := New(core.Config{}, WithStreamBatch(4))
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest("POST", "/v1/ratings:stream", strings.NewReader(body))
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		if w.Code != 200 {
			t.Fatalf("status %d for body %q", w.Code, body)
		}
		lines := bytes.Split(bytes.TrimSpace(w.Body.Bytes()), []byte("\n"))
		if len(lines) == 0 || len(lines[len(lines)-1]) == 0 {
			t.Fatalf("no summary line for body %q", body)
		}
		for _, line := range lines[:len(lines)-1] {
			var le api.StreamLineError
			if err := json.Unmarshal(line, &le); err != nil || le.Line <= 0 || le.Code == "" {
				t.Fatalf("bad line error %q (err %v) for body %q", line, err, body)
			}
		}
		var sum api.StreamSummary
		if err := json.Unmarshal(lines[len(lines)-1], &sum); err != nil {
			t.Fatalf("summary %q: %v", lines[len(lines)-1], err)
		}
		if sum.Accepted < 0 || sum.Rejected < 0 || sum.Accepted+sum.Rejected > sum.Lines {
			t.Fatalf("inconsistent summary %+v for body %q", sum, body)
		}
		if sum.Rejected != len(lines)-1 && sum.Code == "" {
			t.Fatalf("summary %+v but %d line errors for body %q", sum, len(lines)-1, body)
		}
	})
}

// FuzzParseRatingLine differentially tests the fast-path parser
// against the strict decoder: any line the fast path accepts must be
// accepted by the strict decoder with bit-identical fields.
func FuzzParseRatingLine(f *testing.F) {
	f.Add(`{"rater":1,"object":2,"value":0.5,"time":3}`)
	f.Add(`{"rater":-1,"object":0,"value":1e-3,"time":2.5E2}`)
	f.Add(`{"value":0.1}`)
	f.Add(`{}`)
	f.Add(`{"rater":01}`)
	f.Add(`{"value":0.12345678901234567}`)
	f.Add(`{"value":5e22,"time":-0}`)
	f.Add(`{"time":0.000125}`)
	f.Add(` { "rater" : 7 } `)
	f.Add(`{"rater":9223372036854775807}`)
	f.Add(`{"rater":1,"rater":2}`)

	f.Fuzz(func(t *testing.T, line string) {
		fast, ok := parseRatingLine([]byte(line))
		if !ok {
			return // bailing is always allowed
		}
		var strict RatingPayload
		if err := decodeStrict([]byte(line), &strict); err != nil {
			t.Fatalf("fast path accepted %q but strict decoder rejects: %v", line, err)
		}
		if fast.Rater != strict.Rater || fast.Object != strict.Object ||
			math.Float64bits(fast.Value) != math.Float64bits(strict.Value) ||
			math.Float64bits(fast.Time) != math.Float64bits(strict.Time) {
			t.Fatalf("line %q: fast %+v != strict %+v", line, fast, strict)
		}
	})
}
