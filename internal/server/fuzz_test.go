package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
)

// FuzzSubmitRatings throws arbitrary bodies at POST /v1/ratings. The
// contract: malformed or hostile input must map to a 4xx status —
// never a panic (the test binary would crash) and never a 5xx, which
// would trip retry loops in the client.
func FuzzSubmitRatings(f *testing.F) {
	f.Add(`[{"rater":1,"object":42,"value":0.8,"time":3.5}]`)
	f.Add(`{"rater":1,"object":42,"value":0.8,"time":3.5}`)
	f.Add(`[]`)
	f.Add(`[{"rater":1e999}]`)
	f.Add(`[{"value":"NaN"}]`)
	f.Add(`[{"rater":1,"object":2,"value":2.5,"time":-1}]`)
	f.Add(`not json at all`)
	f.Add("\x00\xff\xfe")
	f.Add(`[[[[[[[[[[[[[[[[`)
	f.Add(`[{"rater":9223372036854775807,"object":-9223372036854775808,"value":1,"time":0}]`)

	srv, err := New(core.Config{}, WithMaxBodyBytes(1<<16))
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest("POST", "/v1/ratings", strings.NewReader(body))
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		switch w.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusRequestEntityTooLarge:
		default:
			t.Fatalf("status %d for body %q", w.Code, body)
		}
	})
}
