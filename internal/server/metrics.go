package server

import (
	"net/http"
	"strconv"
	"time"

	"repro/internal/telemetry"
)

// serverMetrics is the HTTP facade's telemetry surface: per-endpoint
// request counts by status code, per-endpoint latency, in-flight
// requests, and idempotency-cache effectiveness.
type serverMetrics struct {
	requests *telemetry.CounterVec   // labels: route, code
	latency  *telemetry.HistogramVec // labels: route
	inflight *telemetry.Gauge

	dedupeHits   *telemetry.Counter // replayed from the idempotency cache
	dedupeMisses *telemetry.Counter // executed as the leader

	readCache  *telemetry.CounterVec // labels: kind (aggregate|malicious), result (hit|miss)
	admissions *telemetry.CounterVec // labels: result (admitted|queue_full|wait_timeout|deadline)
	queueWait  *telemetry.Histogram  // seconds spent waiting for an admission slot

	streamLines    *telemetry.Counter // NDJSON lines examined
	streamRejected *telemetry.Counter // lines rejected per-line
	streamBatches  *telemetry.Counter // group-commit batches submitted
}

func newServerMetrics(r *telemetry.Registry) *serverMetrics {
	if r == nil {
		return nil
	}
	return &serverMetrics{
		requests:       r.CounterVec("http_requests_total", "HTTP requests by endpoint and status code", "route", "code"),
		latency:        r.HistogramVec("http_request_seconds", "HTTP request handling latency by endpoint", nil, "route"),
		inflight:       r.Gauge("http_inflight_requests", "requests currently being handled"),
		dedupeHits:     r.Counter("http_idempotency_hits_total", "requests answered from the idempotency cache"),
		dedupeMisses:   r.Counter("http_idempotency_misses_total", "idempotent requests that executed as leader"),
		readCache:      r.CounterVec("http_read_cache_total", "read-cache lookups by kind and result", "kind", "result"),
		admissions:     r.CounterVec("http_admission_total", "admission-control decisions on mutating routes", "result"),
		queueWait:      r.Histogram("http_admission_queue_seconds", "time spent queued for an admission slot", nil),
		streamLines:    r.Counter("http_stream_lines_total", "NDJSON ingest lines examined"),
		streamRejected: r.Counter("http_stream_rejected_total", "NDJSON ingest lines rejected per-line"),
		streamBatches:  r.Counter("http_stream_batches_total", "NDJSON ingest group-commit batches submitted"),
	}
}

// statusWriter records the response status code written by a handler.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// Unwrap exposes the wrapped writer to http.ResponseController, so
// the stream handler's per-read deadline control reaches the real
// connection through the telemetry wrapper.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// observe wraps one route's handler with request counting and latency
// timing. With telemetry disabled it returns the handler untouched, so
// the uninstrumented request path is byte-for-byte what it was.
func (s *Server) observe(route string, h http.HandlerFunc) http.HandlerFunc {
	m := s.metrics
	if m == nil {
		return h
	}
	hist := m.latency.With(route)
	return func(w http.ResponseWriter, r *http.Request) {
		m.inflight.Add(1)
		sp := hist.Start()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		sp.End()
		m.inflight.Add(-1)
		code := sw.status
		if code == 0 {
			// Handler wrote nothing: net/http sends 200 on return.
			code = http.StatusOK
		}
		m.requests.With(route, strconv.Itoa(code)).Inc()
	}
}

// Nil-safe dedupe-cache counters for the idempotency middleware.

func (m *serverMetrics) dedupeHit() {
	if m != nil {
		m.dedupeHits.Inc()
	}
}

func (m *serverMetrics) dedupeMiss() {
	if m != nil {
		m.dedupeMisses.Inc()
	}
}

// Nil-safe read-cache and admission counters.

func (m *serverMetrics) cacheHit(kind string) {
	if m != nil {
		m.readCache.With(kind, "hit").Inc()
	}
}

func (m *serverMetrics) cacheMiss(kind string) {
	if m != nil {
		m.readCache.With(kind, "miss").Inc()
	}
}

func (m *serverMetrics) admission(result string, waited time.Duration) {
	if m == nil {
		return
	}
	m.admissions.With(result).Inc()
	if waited > 0 {
		m.queueWait.ObserveDuration(waited)
	}
}

// Nil-safe stream-ingest counters.

func (m *serverMetrics) streamLine() {
	if m != nil {
		m.streamLines.Inc()
	}
}

func (m *serverMetrics) streamReject() {
	if m != nil {
		m.streamRejected.Inc()
	}
}

func (m *serverMetrics) streamBatch() {
	if m != nil {
		m.streamBatches.Inc()
	}
}
