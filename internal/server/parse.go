package server

import (
	"strconv"
	"unsafe"

	"repro/internal/api"
)

// parseRatingLine is the streaming ingest's fast path: a hand-rolled
// parser for the overwhelmingly common line shape — a flat JSON object
// whose keys are exactly the RatingPayload fields and whose values are
// plain numbers. It allocates nothing and returns ok=false for
// anything it is not certain about (escaped keys, nested values,
// malformed numbers), in which case the caller re-parses the line
// with the strict encoding/json decoder, which is authoritative for
// both acceptance and error text.
//
// Certainty is the contract: the fast path must never accept a line
// the strict decoder would reject, and every float it produces must be
// bit-identical to encoding/json's. The latter holds because
// parseFloatFast either takes exactly the strconv fast path (exact
// uint64 mantissa of at most 15 digits, decimal exponent within the
// exactly-representable power-of-ten range) or delegates the
// delimited number bytes to strconv.ParseFloat — the conversion
// encoding/json itself performs.
func parseRatingLine(line []byte) (api.RatingPayload, bool) {
	var p api.RatingPayload
	i, n := skipSpace(line, 0), len(line)
	if i >= n || line[i] != '{' {
		return p, false
	}
	i = skipSpace(line, i+1)
	if i < n && line[i] == '}' {
		// Empty object: all fields zero, same as the strict decoder.
		return p, skipSpace(line, i+1) == n
	}
	for {
		key, rest, ok := parseKey(line, i)
		if !ok {
			return p, false
		}
		i = skipSpace(line, rest)
		if i >= n || line[i] != ':' {
			return p, false
		}
		i = skipSpace(line, i+1)

		switch key {
		case fieldRater, fieldObject:
			v, rest, ok := parseIntFast(line, i)
			if !ok {
				return p, false
			}
			if key == fieldRater {
				p.Rater = v
			} else {
				p.Object = v
			}
			i = rest
		case fieldValue, fieldTime:
			v, rest, ok := parseFloatFast(line, i)
			if !ok {
				return p, false
			}
			if key == fieldValue {
				p.Value = v
			} else {
				p.Time = v
			}
			i = rest
		default:
			return p, false
		}

		i = skipSpace(line, i)
		if i >= n {
			return p, false
		}
		switch line[i] {
		case ',':
			i = skipSpace(line, i+1)
		case '}':
			return p, skipSpace(line, i+1) == n
		default:
			return p, false
		}
	}
}

// Field keys, matched byte-for-byte (escaped spellings bail to the
// strict decoder).
type fieldKey int

const (
	fieldUnknown fieldKey = iota
	fieldRater
	fieldObject
	fieldValue
	fieldTime
)

func skipSpace(b []byte, i int) int {
	for i < len(b) {
		switch b[i] {
		case ' ', '\t', '\r', '\n':
			i++
		default:
			return i
		}
	}
	return i
}

// parseKey reads a double-quoted key with no escapes and maps it to a
// known field.
func parseKey(b []byte, i int) (fieldKey, int, bool) {
	if i >= len(b) || b[i] != '"' {
		return fieldUnknown, i, false
	}
	start := i + 1
	j := start
	for j < len(b) && b[j] != '"' {
		if b[j] == '\\' {
			return fieldUnknown, i, false // escaped key: strict decoder's problem
		}
		j++
	}
	if j >= len(b) {
		return fieldUnknown, i, false
	}
	var key fieldKey
	switch string(b[start:j]) { // compiles to an alloc-free comparison
	case "rater":
		key = fieldRater
	case "object":
		key = fieldObject
	case "value":
		key = fieldValue
	case "time":
		key = fieldTime
	default:
		return fieldUnknown, i, false
	}
	return key, j + 1, true
}

// parseIntFast reads a plain JSON integer (optional minus, no leading
// zeros, no fraction or exponent — those forms go to the strict
// decoder, which rejects them for int fields with its own message).
func parseIntFast(b []byte, i int) (int, int, bool) {
	neg := false
	if i < len(b) && b[i] == '-' {
		neg = true
		i++
	}
	start := i
	var v uint64
	for i < len(b) && b[i] >= '0' && b[i] <= '9' {
		if v > (1<<63-1)/10 {
			return 0, i, false // would overflow: let the fallback decide
		}
		v = v*10 + uint64(b[i]-'0')
		i++
	}
	switch {
	case i == start: // no digits
		return 0, i, false
	case b[start] == '0' && i-start > 1: // leading zero is not valid JSON
		return 0, i, false
	case i < len(b) && (b[i] == '.' || b[i] == 'e' || b[i] == 'E'):
		return 0, i, false // not a plain integer
	}
	if neg {
		if v > 1<<63-1 {
			return 0, i, false
		}
		n := -int64(v)
		if int64(int(n)) != n {
			return 0, i, false
		}
		return int(n), i, true
	}
	if v > 1<<63-1 || int64(int(int64(v))) != int64(v) {
		return 0, i, false
	}
	return int(v), i, true
}

// pow10 holds the exactly-representable powers of ten; 10^22 is the
// largest float64 power of ten with no rounding error.
var pow10 = [...]float64{
	1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11,
	1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
}

// parseFloatFast reads a JSON number. When the decimal mantissa has
// at most 15 significant digits and the decimal exponent keeps the
// value within one exact power-of-ten multiply or divide it converts
// inline — the same conditions under which strconv.ParseFloat takes
// its exact fast path. Otherwise it hands the already-delimited number
// bytes to strconv.ParseFloat itself, which is the exact conversion
// encoding/json performs, so either way the result is bit-identical
// to the strict decoder's. Only syntax the strict decoder would also
// reject returns ok=false.
func parseFloatFast(b []byte, i int) (float64, int, bool) {
	numStart := i
	neg := false
	if i < len(b) && b[i] == '-' {
		neg = true
		i++
	}

	// Integer part (JSON: one leading zero, or a nonzero-led run).
	start := i
	var mant uint64
	digits := 0   // significant digits accumulated into mant
	exact := true // mantissa (so far) fits 15 digits: inline convert OK
	for i < len(b) && b[i] >= '0' && b[i] <= '9' {
		if digits == 0 && b[i] == '0' && mant == 0 {
			// Leading zeros contribute nothing; JSON validity of "00"
			// is checked below.
			i++
			continue
		}
		if digits >= 15 {
			exact = false // mantissa would truncate: defer to strconv
		} else {
			mant = mant*10 + uint64(b[i]-'0')
			digits++
		}
		i++
	}
	intDigits := i - start
	if intDigits == 0 {
		return 0, i, false
	}
	if b[start] == '0' && intDigits > 1 {
		return 0, i, false // "00", "01": invalid JSON, let the fallback reject
	}
	exp := 0 // decimal exponent applied to mant

	// Fraction.
	if i < len(b) && b[i] == '.' {
		i++
		fracStart := i
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			if mant == 0 && b[i] == '0' {
				// 0.000x: leading fractional zeros only shift the exponent.
				exp--
				i++
				continue
			}
			if digits >= 15 {
				exact = false
			} else {
				mant = mant*10 + uint64(b[i]-'0')
				digits++
				exp--
			}
			i++
		}
		if i == fracStart {
			return 0, i, false // "1." is not valid JSON
		}
	}

	// Exponent.
	if i < len(b) && (b[i] == 'e' || b[i] == 'E') {
		i++
		eneg := false
		if i < len(b) && (b[i] == '+' || b[i] == '-') {
			eneg = b[i] == '-'
			i++
		}
		eStart := i
		e := 0
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			if e <= 10000 {
				e = e*10 + int(b[i]-'0')
			}
			i++
		}
		if i == eStart {
			return 0, i, false
		}
		if e > 10000 {
			exact = false // far out of range: strconv's ErrRange decides
		}
		if eneg {
			exp -= e
		} else {
			exp += e
		}
	}

	// Exact inline conversion, mirroring strconv's fast path: the
	// mantissa must fit the 52-bit significand and the power of ten
	// must be one exact multiply or divide away.
	if exact && mant>>52 == 0 {
		f := float64(mant)
		if neg {
			f = -f
		}
		switch {
		case exp == 0:
			return f, i, true
		case exp > 0 && exp <= 15+22:
			g := f
			e := exp
			if e > 22 {
				g *= pow10[e-22]
				e = 22
			}
			if g <= 1e15 && g >= -1e15 {
				return g * pow10[e], i, true
			}
			// Rounded multiply: fall through to strconv.
		case exp < 0 && exp >= -22:
			return f / pow10[-exp], i, true
		}
	}

	// High-precision tail: the number's syntax is already delimited, so
	// hand exactly its bytes to strconv.ParseFloat — the conversion
	// encoding/json itself uses — for a bit-identical result without
	// re-decoding the whole line. The unsafe.String view is read-only
	// and does not outlive the call, and the slice is non-empty (at
	// least one digit was consumed above). A conversion error (e.g.
	// ErrRange on a huge exponent) bails to the strict decoder, which
	// owns the authoritative error text.
	num := b[numStart:i]
	f, err := strconv.ParseFloat(unsafe.String(unsafe.SliceData(num), len(num)), 64)
	if err != nil {
		return 0, i, false
	}
	return f, i, true
}
